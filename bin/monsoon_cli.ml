(* Command-line front end: list and run the paper's experiments, or profile
   one under telemetry. *)

open Cmdliner
open Monsoon_harness
open Monsoon_telemetry
module Stats_repo = Monsoon_stats_repo.Stats_repo

let profile_of_flag quick_flag =
  if quick_flag then Experiments.quick else Experiments.full

let find_experiment id =
  List.find_opt (fun (eid, _, _) -> eid = id) Experiments.all

let unknown_experiment id =
  Error (Printf.sprintf "unknown experiment %s (try `list')" id)

let quick_flag =
  Arg.(value & flag & info [ "quick" ] ~doc:"Use the quick (smoke-test) profile.")

let write_file path content =
  try
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc content);
    Ok ()
  with Sys_error msg -> Error (Printf.sprintf "cannot write %s: %s" path msg)

(* Where completed spans go when --trace is given. *)
type trace_dest =
  | Trace_none
  | Trace_jsonl of out_channel
  | Trace_perfetto of string * Trace_event.t

let open_trace_dest ~trace ~trace_format =
  match (trace, trace_format) with
  | None, `Perfetto -> Error "--trace-format perfetto requires --trace FILE"
  | None, `Jsonl -> Ok Trace_none
  | Some "", _ -> Error "--trace requires a non-empty FILE"
  | Some path, `Jsonl -> (
    try Ok (Trace_jsonl (open_out path))
    with Sys_error msg ->
      Error (Printf.sprintf "cannot open trace file: %s" msg))
  | Some path, `Perfetto -> Ok (Trace_perfetto (path, Trace_event.create ()))

let close_trace_dest = function
  | Trace_none -> ()
  | Trace_jsonl oc -> close_out oc
  | Trace_perfetto (path, collector) -> (
    match write_file path (Trace_event.to_string collector) with
    | Ok () -> ()
    | Error msg -> Printf.eprintf "monsoon: %s\n" msg)

(* Builds the telemetry context the run executes under: an optional trace
   sink (JSONL stream or Perfetto collector), when [keep] is set an
   in-memory buffer for the in-process report, and — when [serve] or
   [watch] asks for it — a live Monitor sampling every [interval]
   seconds, optionally exposing /metrics, /healthz, and /snapshot.json
   on 127.0.0.1:[serve]. With [watch], each sampler tick streams a
   one-line differential to stderr and the run ends with the full
   differential report on stdout. *)
let with_telemetry ~trace ~trace_format ~keep ~serve ~interval ~watch f =
  match open_trace_dest ~trace ~trace_format with
  | Error _ as e -> e
  | Ok dest -> (
    let buf = if keep then Some (Span.memory_buffer ()) else None in
    let sinks =
      (match buf with Some b -> [ Span.Memory b ] | None -> [])
      @
      match dest with
      | Trace_none -> []
      | Trace_jsonl oc -> [ Span.Jsonl oc ]
      | Trace_perfetto (_, collector) -> [ Trace_event.sink collector ]
    in
    let sink =
      match sinks with [] -> Span.Null | [ s ] -> s | ss -> Span.Multi ss
    in
    let tel = Ctx.create ~sink () in
    let monitor =
      if serve = None && not watch then None
      else begin
        Monitor.preregister tel.Ctx.registry;
        let prev = ref None in
        let on_tick s =
          if watch then begin
            (match !prev with
            | Some p -> Printf.eprintf "%s\n%!" (Monitor.tick_line p s)
            | None -> ());
            prev := Some s
          end
        in
        Some
          (Monitor.create ~interval ~on_tick
             ~flush:(fun () -> Span.flush sink)
             tel.Ctx.registry)
      end
    in
    let served =
      match (monitor, serve) with
      | Some m, Some port -> (
        match Monitor.serve m ~port with
        | Ok bound ->
          Printf.eprintf "monsoon: serving http://127.0.0.1:%d/metrics\n%!"
            bound;
          Ok ()
        | Error msg -> Error (Printf.sprintf "--serve %d: %s" port msg))
      | _ -> Ok ()
    in
    match served with
    | Error _ as e ->
      Option.iter Monitor.stop monitor;
      close_trace_dest dest;
      e
    | Ok () ->
      Fun.protect
        ~finally:(fun () ->
          (* Every teardown step runs even when an earlier one raises — a
             failed Monitor.stop must not leak the trace file handle. The
             first failure is re-raised once everything is down. *)
          let failure = ref None in
          let step g =
            try g ()
            with e ->
              if !failure = None then
                failure := Some (e, Printexc.get_raw_backtrace ())
          in
          step (fun () -> Option.iter Monitor.stop monitor);
          step (fun () ->
              match monitor with
              | Some m when watch -> (
                match (Monitor.first m, Monitor.latest m) with
                | Some a, Some b when a != b ->
                  print_newline ();
                  print_string (Monitor.diff_report a b)
                | _ -> ())
              | _ -> ());
          step (fun () -> close_trace_dest dest);
          match !failure with
          | Some (e, bt) -> Printexc.raise_with_backtrace e bt
          | None -> ())
        (fun () -> f tel buf);
      Ok ())

(* Run one query under the flight recorder, print the explain report, and
   honor the optional DOT / JSON export destinations. Shared by `explain'
   and `experiment --explain'. *)
let run_explain ?(op_profile = false) profile ~experiment ~query ~dot ~json =
  match Experiments.explain ~op_profile profile ~experiment ~query with
  | Error _ as e -> e
  | Ok recorder ->
    print_string (Explain.report recorder);
    let write_opt dest content =
      match dest with None -> Ok () | Some path -> write_file path content
    in
    Result.bind (write_opt dot (Recorder.to_dot recorder)) (fun () ->
        write_opt json (Json.to_string (Recorder.to_json recorder) ^ "\n"))

let dot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"FILE"
        ~doc:
          "Write the recorded MCTS root decisions as a Graphviz digraph to \
           $(docv) (render with dot -Tsvg).")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Write the full recorded trajectory as JSON to $(docv).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write completed telemetry spans to $(docv) as JSONL, one span per \
           line, for offline analysis.")

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Run (strategy, query) cells on $(docv) domains (default 1 = \
           sequential; 0 = one per core). Experiment tables are identical \
           for every value.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Print the telemetry metrics snapshot after the run.")

let trace_format_arg =
  Arg.(
    value
    & opt (enum [ ("jsonl", `Jsonl); ("perfetto", `Perfetto) ]) `Jsonl
    & info [ "trace-format" ] ~docv:"FORMAT"
        ~doc:
          "Format for the --trace file: $(b,jsonl) (one span per line) or \
           $(b,perfetto) (Chrome trace-event JSON — open it at \
           ui.perfetto.dev to see per-domain span timelines).")

let serve_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "serve" ] ~docv:"PORT"
        ~doc:
          "Expose live monitoring on 127.0.0.1:$(docv) for the duration of \
           the run: /metrics (Prometheus text exposition), /healthz, and \
           /snapshot.json. Port 0 picks an ephemeral port; the bound \
           address is printed to stderr.")

let interval_arg =
  Arg.(
    value
    & opt float 1.0
    & info [ "sample-interval" ] ~docv:"SECONDS"
        ~doc:
          "Cadence of the monitor's sampler (default 1.0), used by --serve \
           and --watch.")

let metrics_report tel =
  Snapshot.metrics_table ~title:"Telemetry metrics" tel.Ctx.registry

let list_cmd =
  let doc = "List the available experiments." in
  let run () =
    List.iter
      (fun (id, descr, _) -> Printf.printf "%-20s %s\n" id descr)
      Experiments.all;
    Ok ()
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let experiment_cmd =
  let doc = "Run one experiment (see `list')." in
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT")
  in
  let explain_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "explain" ] ~docv:"QUERY"
          ~doc:
            "After the experiment table, re-run Monsoon on $(docv) with the \
             decision flight recorder attached and print the explain report \
             (see the `explain' command).")
  in
  let run quick trace trace_format serve interval metrics explain dot jobs id =
    match find_experiment id with
    | None -> unknown_experiment id
    | Some (_, _, f) ->
      let inner = ref (Ok ()) in
      let outer =
        with_telemetry ~trace ~trace_format ~keep:false ~serve ~interval
          ~watch:false (fun tel _ ->
            let profile =
              { (profile_of_flag quick) with Experiments.ctx = tel; jobs }
            in
            print_string (Experiments.run profile ~id f);
            print_newline ();
            if metrics then print_string (metrics_report tel);
            match explain with
            | None -> ()
            | Some query ->
              print_newline ();
              inner :=
                run_explain profile ~experiment:id ~query ~dot ~json:None)
      in
      (match outer with Ok () -> !inner | Error _ as e -> e)
  in
  Cmd.v (Cmd.info "experiment" ~doc)
    Term.(
      const run $ quick_flag $ trace_arg $ trace_format_arg $ serve_arg
      $ interval_arg $ metrics_arg $ explain_arg $ dot_arg $ jobs_arg $ id_arg)

let all_cmd =
  let doc = "Run every experiment in paper order." in
  let run quick trace trace_format serve interval metrics jobs =
    with_telemetry ~trace ~trace_format ~keep:false ~serve ~interval
      ~watch:false (fun tel _ ->
        let profile =
          { (profile_of_flag quick) with Experiments.ctx = tel; jobs }
        in
        List.iter
          (fun (id, _, f) ->
            Printf.printf "=== %s ===\n%s\n%!" id (Experiments.run profile ~id f))
          Experiments.all;
        if metrics then print_string (metrics_report tel))
  in
  Cmd.v (Cmd.info "all" ~doc)
    Term.(
      const run $ quick_flag $ trace_arg $ trace_format_arg $ serve_arg
      $ interval_arg $ metrics_arg $ jobs_arg)

(* `profile table8-quick' is shorthand for `profile --quick table8'. *)
let split_profile_suffix id =
  let strip suffix =
    if
      String.length id > String.length suffix
      && String.ends_with ~suffix id
    then Some (String.sub id 0 (String.length id - String.length suffix))
    else None
  in
  match strip "-quick" with
  | Some base -> (base, Some Experiments.quick)
  | None -> (
    match strip "-full" with
    | Some base -> (base, Some Experiments.full)
    | None -> (id, None))

let profile_cmd =
  let doc =
    "Run one experiment under telemetry and print its profiling report: the \
     span-derived component breakdown plus the metrics registry snapshot. \
     EXPERIMENT may carry a -quick/-full suffix (e.g. table8-quick)."
  in
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT")
  in
  let watch_arg =
    Arg.(
      value & flag
      & info [ "watch" ]
          ~doc:
            "Stream a one-line differential sample to stderr on every \
             monitor tick (see --sample-interval) and print the full \
             differential runtime report — per-metric rates over the run, \
             top movers first, plus GC — after the experiment output.")
  in
  let run quick trace trace_format serve interval watch jobs id =
    let base, forced = split_profile_suffix id in
    match find_experiment base with
    | None -> unknown_experiment base
    | Some (_, _, f) ->
      with_telemetry ~trace ~trace_format ~keep:true ~serve ~interval ~watch
        (fun tel buf ->
          let p =
            match forced with Some p -> p | None -> profile_of_flag quick
          in
          let profile = { p with Experiments.ctx = tel; jobs } in
          print_string (Experiments.run profile ~id:base f);
          print_newline ();
          Printf.printf "jobs: %d%s\n\n" profile.Experiments.jobs
            (if profile.Experiments.jobs = 0 then " (all cores)" else "");
          let spans = Span.buffer_spans (Option.get buf) in
          print_string
            (Snapshot.breakdown_table
               ~title:"Component breakdown (derived from spans)" spans);
          print_newline ();
          print_string (metrics_report tel);
          Option.iter
            (fun file ->
              Printf.printf "\n%d spans written to %s\n" (List.length spans)
                file)
            trace)
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(
      const run $ quick_flag $ trace_arg $ trace_format_arg $ serve_arg
      $ interval_arg $ watch_arg $ jobs_arg $ id_arg)

let explain_cmd =
  let doc =
    "Re-run Monsoon on one benchmark query with the decision flight recorder \
     attached and print an EXPLAIN ANALYZE-style report: the MDP decision \
     timeline with MCTS root statistics, per-node predicted vs observed \
     cardinalities with q-errors, the worst misestimates, and the statistics \
     hardened into the catalog. EXPERIMENT is a benchmark-backed experiment \
     (tpch/table2, imdb/table3..5, ott/table6, udf/table7/figure3)."
  in
  let experiment_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT")
  in
  let query_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY")
  in
  let op_profile_arg =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Attach an execution profile collector: the report's plan \
             tables gain per-operator rows — time share, rows in/out, \
             selectivity, column-representation mix, and whether the \
             fused or scalar path ran. Off by default; profiling only \
             reads, so the run's decisions and costs are unchanged.")
  in
  let run quick dot json op_profile experiment query =
    let profile = profile_of_flag quick in
    run_explain ~op_profile profile ~experiment ~query ~dot ~json
  in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(
      const run $ quick_flag $ dot_arg $ json_arg $ op_profile_arg
      $ experiment_arg $ query_arg)

(* Shared by chaos / serve / load: open the audit log (when asked for),
   run the body, and close it even on error paths. *)
let qlog_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "qlog" ] ~docv:"FILE"
        ~doc:
          "Append one audit-log record per query (JSONL) to $(docv): trace \
           id, fingerprint, outcome, cost, replans, worst q-error. Analyse \
           with `monsoon qlog'.")

let with_qlog path f =
  match path with
  | None -> f None
  | Some p -> (
    match Qlog.create p with
    | Error msg -> Error msg
    | Ok q ->
      Fun.protect ~finally:(fun () -> Qlog.close q) (fun () -> f (Some q)))

let chaos_cmd =
  let doc =
    "Run a benchmark experiment's full suite with the fault plane armed — \
     UDF faults, poisoned rows, failed hash-join builds, killed pool \
     workers — and print a survival report: per-implementation OK / timeout \
     / degraded / retried / quarantined counts plus the resilience \
     counters. The report is deterministic: the same --seed and --faults \
     produce byte-identical output across runs and --jobs values. \
     EXPERIMENT accepts the same ids as `explain'."
  in
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT")
  in
  let faults_arg =
    Arg.(
      value
      & opt string "udf:0.05"
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Comma-separated class:value pairs, e.g. \
             $(b,udf:0.05,worker:1). Classes: $(b,udf), $(b,row), $(b,build) \
             (firing probabilities in [0,1]) and $(b,worker) (pool workers \
             to kill and respawn; needs --jobs > 1).")
  in
  let seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"N"
          ~doc:"Override the profile's suite seed (fault firing included).")
  in
  let retries_arg =
    Arg.(
      value
      & opt int Runner.default_config.Runner.retries
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Extra attempts for a faulted cell before it is quarantined \
             (deterministic backoff, salted per-attempt RNG).")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Cooperative wall-clock deadline per cell attempt; expiry \
             yields a timed-out cell. Wall-clock bounds trade away \
             run-to-run determinism.")
  in
  (* Default 2 (not 1): chaos runs should exercise the pool path, so a
     worker-kill spec has workers to kill without extra flags. *)
  let chaos_jobs_arg =
    Arg.(
      value
      & opt int 2
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Domains running cells (default 2, so worker kills have a pool \
             to act on; 0 = one per core). The report is identical for \
             every value.")
  in
  let run quick trace trace_format serve interval metrics faults seed retries
      deadline jobs qlog_path id =
    match Monsoon_util.Fault.spec_of_string faults with
    | Error msg -> Error (Printf.sprintf "--faults %S: %s" faults msg)
    | Ok spec ->
      with_qlog qlog_path (fun qlog ->
          let inner = ref (Ok ()) in
          let outer =
            with_telemetry ~trace ~trace_format ~keep:false ~serve ~interval
              ~watch:false (fun tel _ ->
                let base = profile_of_flag quick in
                let profile =
                  { base with
                    Experiments.ctx = tel;
                    jobs;
                    seed = Option.value seed ~default:base.Experiments.seed }
                in
                match
                  Experiments.chaos profile ~experiment:id ~faults:spec
                    ~retries ~cell_deadline:deadline ?qlog ()
                with
                | Error msg -> inner := Error msg
                | Ok report ->
                  print_string report;
                  if metrics then begin
                    print_newline ();
                    print_string (metrics_report tel)
                  end)
          in
          match outer with Ok () -> !inner | Error _ as e -> e)
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      const run $ quick_flag $ trace_arg $ trace_format_arg $ serve_arg
      $ interval_arg $ metrics_arg $ faults_arg $ seed_arg $ retries_arg
      $ deadline_arg $ chaos_jobs_arg $ qlog_arg $ id_arg)

(* --- serve / load: the long-running query service --- *)

let parse_faults s =
  if s = "" then Ok Monsoon_util.Fault.no_faults
  else Monsoon_util.Fault.spec_of_string s

let service_faults_arg =
  Arg.(
    value
    & opt string ""
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Arm the fault plane for served requests, e.g. \
           $(b,udf:0.05,worker:1). $(b,udf)/$(b,row)/$(b,build) rates fire \
           per request (Monsoon degrades to a fallback plan — the request \
           still succeeds); $(b,worker) kills that many pool workers, which \
           respawn.")

let service_seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Override the profile's seed (per-request RNG derivation and \
           load-schedule layout).")

let service_experiment_arg =
  Arg.(
    value & pos 0 string "imdb"
    & info [] ~docv:"EXPERIMENT"
        ~doc:
          "Benchmark experiment whose query suite is served (same ids as \
           `explain'; default imdb).")

let max_concurrent_arg =
  Arg.(
    value
    & opt int Monsoon_server.Server.default_config.Monsoon_server.Server.max_concurrent
    & info [ "max-concurrent" ] ~docv:"N"
        ~doc:"Execution slots (worker domains); requests beyond this queue.")

let queue_bound_arg =
  Arg.(
    value
    & opt int Monsoon_server.Server.default_config.Monsoon_server.Server.queue_bound
    & info [ "queue-bound" ] ~docv:"N"
        ~doc:
          "Admission queue bound; a request arriving with the queue full \
           is shed with 429 Retry-After.")

let request_timeout_arg =
  Arg.(
    value
    & opt float 30.0
    & info [ "request-timeout" ] ~docv:"SECONDS"
        ~doc:
          "Per-request deadline: expiry (queued or executing) answers 504. \
           0 disables the deadline.")

let latency_slo_arg =
  Arg.(
    value
    & opt float Monsoon_server.Server.default_config.Monsoon_server.Server.latency_target
    & info [ "latency-slo" ] ~docv:"SECONDS"
        ~doc:"p95 latency objective for the end-of-run SLO report.")

let availability_slo_arg =
  Arg.(
    value
    & opt float
        Monsoon_server.Server.default_config.Monsoon_server.Server.availability_target
    & info [ "availability-slo" ] ~docv:"FRACTION"
        ~doc:
          "Availability objective (ok + degraded share); its complement is \
           the error budget.")

let slow_query_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "slow-query" ] ~docv:"SECONDS"
        ~doc:
          "Slow-query threshold: a request at or over $(docv) seconds pins \
           its flight-recorder capture outside the explain ring (last 256 \
           kept), so slow outliers stay auditable under churn.")

let server_config ~max_concurrent ~queue_bound ~request_timeout ~seed
    ~explain_ring ~latency_slo ~availability_slo ~slow_query ~qlog =
  { Monsoon_server.Server.max_concurrent;
    queue_bound;
    request_timeout =
      (if request_timeout <= 0.0 then None else Some request_timeout);
    seed;
    explain_ring;
    latency_target = latency_slo;
    availability_target = availability_slo;
    slow_query;
    qlog }

(* Builds the service (telemetry context, handler, server) shared by
   `serve' and in-process `load'. *)
let make_server ?stats_repo ~quick ~seed ~experiment ~spec ~config_of () =
  let tel = Ctx.create () in
  Monitor.preregister tel.Ctx.registry;
  let base = profile_of_flag quick in
  let profile =
    { base with
      Experiments.ctx = tel;
      seed = Option.value seed ~default:base.Experiments.seed }
  in
  match Experiments.service profile ~experiment ~faults:spec ?stats_repo () with
  | Error _ as e -> e
  | Ok (handler, names) ->
    let config = config_of ~seed:profile.Experiments.seed in
    let server =
      Monsoon_server.Server.create
        ~env:(Monsoon_telemetry.Ctx.to_env tel)
        ~queries:names config handler
    in
    if spec.Monsoon_util.Fault.worker_kills > 0 then
      Monsoon_server.Server.inject_kills server
        spec.Monsoon_util.Fault.worker_kills;
    Ok (server, names)

let serve_cmd =
  let doc =
    "Serve a benchmark experiment's query suite as a long-running HTTP \
     service on 127.0.0.1: POST /query executes a named query under \
     admission control (bounded queue, 429 + Retry-After on overload), a \
     concurrency limit backed by a pool of worker domains, and a \
     per-request deadline (504 on expiry). GET /metrics, /slo, /queries, \
     /healthz, /snapshot.json and /query/ID/explain expose the live state. \
     SIGINT/SIGTERM drain gracefully: in-flight requests finish, the SLO \
     report prints, and the process exits 0."
  in
  let port_arg =
    Arg.(
      value
      & opt int 0
      & info [ "port" ] ~docv:"PORT"
          ~doc:
            "Port to bind on 127.0.0.1 (default 0 = pick an ephemeral \
             port; the bound port is printed to stderr and available via \
             --port-file).")
  in
  let port_file_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "port-file" ] ~docv:"FILE"
          ~doc:
            "Write the bound port to $(docv) — the programmatic discovery \
             path for tests and CI (no stderr scraping).")
  in
  let explain_ring_arg =
    Arg.(
      value
      & opt int
          Monsoon_server.Server.default_config.Monsoon_server.Server.explain_ring
      & info [ "explain-ring" ] ~docv:"N"
          ~doc:
            "Retain flight-recorder explain reports for the last $(docv) \
             requests (GET /query/ID/explain); 0 disables capture.")
  in
  let repo_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "repo" ] ~docv:"PATH"
          ~doc:
            "Warm-start every request from the statistics repository at \
             $(docv) (see `stats'): tight history seeds the optimizer's \
             catalog and each finished query flushes its measurements \
             back. Omitted = repository-free serving, byte-identical to \
             before the repository existed.")
  in
  let run quick faults seed port port_file max_concurrent queue_bound
      request_timeout explain_ring latency_slo availability_slo slow_query
      qlog_path repo_path experiment =
    match parse_faults faults with
    | Error msg -> Error (Printf.sprintf "--faults %S: %s" faults msg)
    | Ok spec ->
      with_qlog qlog_path @@ fun qlog ->
      (match
        make_server
          ?stats_repo:(Option.map Stats_repo.open_ repo_path)
          ~quick ~seed ~experiment ~spec
          ~config_of:(fun ~seed ->
            server_config ~max_concurrent ~queue_bound ~request_timeout ~seed
              ~explain_ring ~latency_slo ~availability_slo ~slow_query ~qlog)
          ()
      with
      | Error _ as e -> e
      | Ok (server, names) -> (
        match Monsoon_server.Server.listen server ~port with
        | Error msg ->
          Monsoon_server.Server.stop server;
          Error (Printf.sprintf "--port %d: %s" port msg)
        | Ok bound -> (
          Printf.eprintf
            "monsoon: serving %s (%d queries) on http://127.0.0.1:%d — POST \
             /query, GET /metrics /slo /queries /healthz\n\
             %!"
            experiment (List.length names) bound;
          match
            match port_file with
            | None -> Ok ()
            | Some f -> write_file f (string_of_int bound ^ "\n")
          with
          | Error _ as e ->
            Monsoon_server.Server.stop server;
            e
          | Ok () ->
            let stop_requested = Atomic.make false in
            let handler =
              Sys.Signal_handle (fun _ -> Atomic.set stop_requested true)
            in
            let prev_int = Sys.signal Sys.sigint handler in
            let prev_term = Sys.signal Sys.sigterm handler in
            while not (Atomic.get stop_requested) do
              try Unix.sleepf 0.2
              with Unix.Unix_error (Unix.EINTR, _, _) -> ()
            done;
            Sys.set_signal Sys.sigint prev_int;
            Sys.set_signal Sys.sigterm prev_term;
            let adm = Monsoon_server.Server.admission server in
            Printf.eprintf "monsoon: draining (%d in flight, %d queued)\n%!"
              (Monsoon_server.Admission.in_flight adm)
              (Monsoon_server.Admission.queued adm);
            Monsoon_server.Server.stop server;
            print_string
              (Monsoon_server.Slo.report (Monsoon_server.Server.slo server));
            Ok ())))
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ quick_flag $ service_faults_arg $ service_seed_arg
      $ port_arg $ port_file_arg $ max_concurrent_arg $ queue_bound_arg
      $ request_timeout_arg $ explain_ring_arg $ latency_slo_arg
      $ availability_slo_arg $ slow_query_arg $ qlog_arg $ repo_arg
      $ service_experiment_arg)

let load_cmd =
  let doc =
    "Replay a benchmark query suite against a query server and print the \
     per-fingerprint latency/error breakdown plus the SLO report. With \
     --port, drives a `monsoon serve' process over HTTP (the query list \
     comes from GET /queries). Without it, an in-process server is \
     created, hammered, and drained — the deterministic mode: with \
     --clients/--count and a fixed --seed, the request schedule and \
     per-fingerprint counts are byte-stable."
  in
  let host_arg =
    Arg.(
      value
      & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"HOST" ~doc:"Server host for --port mode.")
  in
  let port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "port" ] ~docv:"PORT"
          ~doc:
            "Drive the server listening on HOST:$(docv) over HTTP instead \
             of an in-process one.")
  in
  let clients_arg =
    Arg.(
      value
      & opt int 4
      & info [ "clients" ] ~docv:"N"
          ~doc:
            "Closed-loop mode: $(docv) concurrent clients, each issuing \
             its next request when the previous response lands (ignored \
             with --rate).")
  in
  let rate_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "rate" ] ~docv:"RPS"
          ~doc:
            "Open-loop mode: seeded Poisson arrivals at $(docv) \
             requests/second — a slow server does not throttle arrivals, \
             so overload shows up as queueing and 429s.")
  in
  let count_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "count" ] ~docv:"N"
          ~doc:
            "Issue exactly $(docv) requests (the deterministic stop; takes \
             precedence over --duration).")
  in
  let duration_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "duration" ] ~docv:"SECONDS"
          ~doc:"Issue requests for $(docv) seconds (default 10).")
  in
  let load_json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Also write the run's machine-readable report (overall and \
             per-fingerprint counts, throughput, exact percentiles) to \
             $(docv).")
  in
  let run quick faults seed host port clients rate count duration json
      max_concurrent queue_bound request_timeout latency_slo availability_slo
      qlog_path experiment =
    let arrival =
      match rate with
      | Some r -> Loadgen.Open r
      | None -> Loadgen.Closed clients
    in
    let stop =
      match (count, duration) with
      | Some n, _ -> Loadgen.Requests n
      | None, Some d -> Loadgen.Duration d
      | None, None -> Loadgen.Duration 10.0
    in
    let base = profile_of_flag quick in
    let seed_v = Option.value seed ~default:base.Experiments.seed in
    let lg_config = { Loadgen.arrival; stop; seed = seed_v } in
    let write_json result =
      match json with
      | None -> Ok ()
      | Some f ->
        write_file f (Json.to_string (Loadgen.to_json result) ^ "\n")
    in
    match port with
    | Some p -> (
      let client = Monsoon_server.Load_client.http ~host ~port:p () in
      match Monsoon_server.Load_client.queries client with
      | Error msg ->
        Error (Printf.sprintf "cannot list queries on %s:%d: %s" host p msg)
      | Ok [] -> Error (Printf.sprintf "%s:%d advertises no queries" host p)
      | Ok qs ->
        let result = Loadgen.run client lg_config ~queries:qs in
        print_string (Loadgen.report result);
        (match Monsoon_server.Load_client.slo_report client with
        | Ok r ->
          print_newline ();
          print_string r
        | Error msg -> Printf.eprintf "monsoon: /slo: %s\n" msg);
        write_json result)
    | None -> (
      match parse_faults faults with
      | Error msg -> Error (Printf.sprintf "--faults %S: %s" faults msg)
      | Ok spec ->
        with_qlog qlog_path @@ fun qlog ->
        (match
          make_server ~quick ~seed ~experiment ~spec
            ~config_of:(fun ~seed ->
              server_config ~max_concurrent ~queue_bound ~request_timeout
                ~seed ~explain_ring:0 ~latency_slo ~availability_slo
                ~slow_query:None ~qlog)
            ()
        with
        | Error _ as e -> e
        | Ok (server, names) ->
          let client = Monsoon_server.Load_client.in_process server in
          let result = Loadgen.run client lg_config ~queries:names in
          Monsoon_server.Server.stop server;
          print_string (Loadgen.report result);
          print_newline ();
          print_string
            (Monsoon_server.Slo.report (Monsoon_server.Server.slo server));
          write_json result))
  in
  Cmd.v (Cmd.info "load" ~doc)
    Term.(
      const run $ quick_flag $ service_faults_arg $ service_seed_arg
      $ host_arg $ port_arg $ clients_arg $ rate_arg $ count_arg
      $ duration_arg $ load_json_arg $ max_concurrent_arg $ queue_bound_arg
      $ request_timeout_arg $ latency_slo_arg $ availability_slo_arg
      $ qlog_arg $ service_experiment_arg)

let qlog_cmd =
  let doc =
    "Aggregate a query audit log written by `serve --qlog', `load --qlog' \
     or `chaos --qlog': a per-class table (requests, outcome mix, mean \
     cost, replans, worst q-error), the slowest requests, and the worst \
     cardinality misestimates. With --diff OLD, compares OLD against FILE \
     per query class on the deterministic fields only (cost, outcomes, \
     replans — never wall-clock latency) and renders a regression report; \
     exits 1 when any class regressed, so CI can gate on it."
  in
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:"Query log (JSONL) to aggregate — the NEW log under --diff.")
  in
  let diff_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "diff" ] ~docv:"OLD"
          ~doc:
            "Compare $(docv) (the baseline log) against FILE and report \
             per-class regressions.")
  in
  let top_arg =
    Arg.(
      value
      & opt int 10
      & info [ "top" ] ~docv:"N"
          ~doc:"Rows in the slowest / worst-misestimate rankings.")
  in
  let top_nodes_arg =
    Arg.(
      value
      & opt int 0
      & info [ "top-nodes" ] ~docv:"K"
          ~doc:
            "Also print the $(docv) hottest operators by total wall time, \
             aggregated from the per-node profiles of profiled records \
             (runs under an execution profile collector). 0 (the default) \
             omits the table.")
  in
  let threshold_arg =
    Arg.(
      value
      & opt float 1.1
      & info [ "threshold" ] ~docv:"RATIO"
          ~doc:
            "Mean-cost growth ratio above which a class counts as \
             regressed (default 1.1 = +10%).")
  in
  let run diff top top_nodes threshold file =
    match Qlog.load file with
    | Error msg -> Error (Printf.sprintf "%s: %s" file msg)
    | Ok records -> (
      match diff with
      | None ->
        print_string (Qlog.report ~top records);
        if top_nodes > 0 then begin
          match Qlog.top_nodes ~top:top_nodes records with
          | "" ->
            print_string
              "\nNo operator profiles in this log (run under a profile \
               collector to record them).\n"
          | tbl -> print_string ("\n" ^ tbl)
        end;
        Ok ()
      | Some old_file -> (
        match Qlog.load old_file with
        | Error msg -> Error (Printf.sprintf "%s: %s" old_file msg)
        | Ok old_records ->
          let report, regressions =
            Qlog.diff_report ~threshold ~old_:old_records records
          in
          print_string report;
          if regressions = 0 then Ok ()
          else
            Error
              (Printf.sprintf "%d class%s regressed" regressions
                 (if regressions = 1 then "" else "es"))))
  in
  Cmd.v (Cmd.info "qlog" ~doc)
    Term.(
      const run $ diff_arg $ top_arg $ top_nodes_arg $ threshold_arg
      $ file_arg)

let stats_cmd =
  let doc =
    "Inspect and maintain the persistent cross-query statistics repository \
     (the observation log warm-started runs read — see `experiment \
     warmstart'). ACTION is one of: $(b,show) (render the current log, one \
     row per key, deterministic), $(b,snapshot) (freeze the current \
     aggregate to <repo>.snap-NNNNNN.json), $(b,diff) (compare two \
     snapshot files — explicit OLD NEW positionals, or the repository's \
     two newest snapshots when omitted), $(b,gc) (delete all but the \
     newest --keep snapshots). Every report is byte-stable for the same \
     log contents, so CI can diff double runs."
  in
  let action_arg =
    let actions =
      Arg.enum
        [ ("show", `Show); ("snapshot", `Snapshot); ("diff", `Diff);
          ("gc", `Gc) ]
    in
    Arg.(
      value & pos 0 actions `Show
      & info [] ~docv:"ACTION" ~doc:"show | snapshot | diff | gc.")
  in
  let repo_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "repo" ] ~docv:"PATH"
          ~doc:
            "Repository observation log (JSONL). Defaults to \
             $(b,MONSOON_REPO).")
  in
  let old_arg =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"OLD" ~doc:"diff: baseline snapshot file.")
  in
  let new_arg =
    Arg.(
      value
      & pos 2 (some string) None
      & info [] ~docv:"NEW" ~doc:"diff: new snapshot file.")
  in
  let keep_arg =
    Arg.(
      value & opt int 5
      & info [ "keep" ] ~docv:"N"
          ~doc:"gc: snapshots to retain, newest first (default 5).")
  in
  let run action repo_path old_ new_ keep =
    let repo () =
      match
        (match repo_path with
        | Some p -> Some p
        | None -> Sys.getenv_opt "MONSOON_REPO")
      with
      | Some p -> Ok (Stats_repo.open_ p)
      | None -> Error "no repository: pass --repo PATH or set MONSOON_REPO"
    in
    let print_diff ~old_ ~new_ =
      match Stats_repo.diff ~old_ ~new_ with
      | Ok report ->
        print_string report;
        Ok ()
      | Error msg -> Error msg
    in
    match action with
    | `Show -> (
      match repo () with
      | Error msg -> Error msg
      | Ok r ->
        print_string (Stats_repo.show r);
        Ok ())
    | `Snapshot -> (
      match repo () with
      | Error msg -> Error msg
      | Ok r -> (
        match Stats_repo.snapshot r with
        | Ok file ->
          Printf.printf "snapshot written: %s\n" file;
          Ok ()
        | Error msg -> Error msg))
    | `Gc -> (
      match repo () with
      | Error msg -> Error msg
      | Ok r ->
        let removed = Stats_repo.gc r ~keep in
        let kept = List.length (Stats_repo.snapshots r) in
        Printf.printf "removed %d snapshot%s, kept %d\n" removed
          (if removed = 1 then "" else "s")
          kept;
        Ok ())
    | `Diff -> (
      match (old_, new_) with
      | Some o, Some n -> print_diff ~old_:o ~new_:n
      | Some _, None | None, Some _ ->
        Error "diff takes either both OLD and NEW snapshot files or neither"
      | None, None -> (
        match repo () with
        | Error msg -> Error msg
        | Ok r -> (
          match List.rev (Stats_repo.snapshots r) with
          | newest :: previous :: _ -> print_diff ~old_:previous ~new_:newest
          | _ ->
            Error
              "diff without positionals needs at least two snapshots (run \
               `stats snapshot' twice, or pass OLD NEW explicitly)")))
  in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(const run $ action_arg $ repo_arg $ old_arg $ new_arg $ keep_arg)

let demo_cmd =
  let doc =
    "Walk through the paper's Sec 2.3 example: the MDP, the chosen actions, \
     and the resulting execution."
  in
  let run () =
    print_string (Experiments.table1 ());
    print_newline ();
    print_string (Experiments.figure1 ());
    Ok ()
  in
  Cmd.v (Cmd.info "demo" ~doc) Term.(const run $ const ())

let main =
  let doc = "Monsoon: multi-step optimization and execution (SIGMOD 2020 reproduction)" in
  Cmd.group (Cmd.info "monsoon" ~doc)
    [ list_cmd; experiment_cmd; all_cmd; profile_cmd; explain_cmd; chaos_cmd;
      serve_cmd; load_cmd; qlog_cmd; stats_cmd; demo_cmd ]

let () =
  match Cmd.eval_value main with
  | Ok (`Ok (Error msg)) ->
    Printf.eprintf "monsoon: %s\n" msg;
    exit 1
  | Ok (`Ok (Ok ())) | Ok `Help | Ok `Version -> exit 0
  | Error (`Parse | `Term) -> exit Cmd.Exit.cli_error
  | Error `Exn -> exit Cmd.Exit.internal_error
