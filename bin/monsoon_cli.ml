(* Command-line front end: list and run the paper's experiments, or profile
   one under telemetry. *)

open Cmdliner
open Monsoon_harness
open Monsoon_telemetry

let profile_of_flag quick_flag =
  if quick_flag then Experiments.quick else Experiments.full

let find_experiment id =
  List.find_opt (fun (eid, _, _) -> eid = id) Experiments.all

let unknown_experiment id =
  Error (Printf.sprintf "unknown experiment %s (try `list')" id)

(* Builds the telemetry context the run executes under: an optional JSONL
   file sink plus, when [keep] is set, an in-memory buffer for the
   in-process report. Neither requested: the zero-cost Null sink. *)
let with_telemetry ~trace ~keep f =
  let opened =
    match trace with
    | None -> Ok None
    | Some "" -> Error "--trace requires a non-empty FILE"
    | Some path -> (
      try Ok (Some (open_out path))
      with Sys_error msg -> Error (Printf.sprintf "cannot open trace file: %s" msg))
  in
  match opened with
  | Error _ as e -> e
  | Ok oc ->
    let buf = if keep then Some (Span.memory_buffer ()) else None in
    let sinks =
      (match buf with Some b -> [ Span.Memory b ] | None -> [])
      @ match oc with Some oc -> [ Span.Jsonl oc ] | None -> []
    in
    let sink =
      match sinks with [] -> Span.Null | [ s ] -> s | ss -> Span.Multi ss
    in
    let tel = Ctx.create ~sink () in
    Fun.protect
      ~finally:(fun () -> Option.iter close_out oc)
      (fun () -> f tel buf);
    Ok ()

let quick_flag =
  Arg.(value & flag & info [ "quick" ] ~doc:"Use the quick (smoke-test) profile.")

let write_file path content =
  try
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc content);
    Ok ()
  with Sys_error msg -> Error (Printf.sprintf "cannot write %s: %s" path msg)

(* Run one query under the flight recorder, print the explain report, and
   honor the optional DOT / JSON export destinations. Shared by `explain'
   and `experiment --explain'. *)
let run_explain profile ~experiment ~query ~dot ~json =
  match Experiments.explain profile ~experiment ~query with
  | Error _ as e -> e
  | Ok recorder ->
    print_string (Explain.report recorder);
    let write_opt dest content =
      match dest with None -> Ok () | Some path -> write_file path content
    in
    Result.bind (write_opt dot (Recorder.to_dot recorder)) (fun () ->
        write_opt json (Json.to_string (Recorder.to_json recorder) ^ "\n"))

let dot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"FILE"
        ~doc:
          "Write the recorded MCTS root decisions as a Graphviz digraph to \
           $(docv) (render with dot -Tsvg).")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Write the full recorded trajectory as JSON to $(docv).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write completed telemetry spans to $(docv) as JSONL, one span per \
           line, for offline analysis.")

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Run (strategy, query) cells on $(docv) domains (default 1 = \
           sequential; 0 = one per core). Experiment tables are identical \
           for every value.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Print the telemetry metrics snapshot after the run.")

let metrics_report tel =
  Snapshot.metrics_table ~title:"Telemetry metrics" tel.Ctx.registry

let list_cmd =
  let doc = "List the available experiments." in
  let run () =
    List.iter
      (fun (id, descr, _) -> Printf.printf "%-20s %s\n" id descr)
      Experiments.all;
    Ok ()
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let experiment_cmd =
  let doc = "Run one experiment (see `list')." in
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT")
  in
  let explain_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "explain" ] ~docv:"QUERY"
          ~doc:
            "After the experiment table, re-run Monsoon on $(docv) with the \
             decision flight recorder attached and print the explain report \
             (see the `explain' command).")
  in
  let run quick trace metrics explain dot jobs id =
    match find_experiment id with
    | None -> unknown_experiment id
    | Some (_, _, f) ->
      let inner = ref (Ok ()) in
      let outer =
        with_telemetry ~trace ~keep:false (fun tel _ ->
            let profile =
              { (profile_of_flag quick) with Experiments.ctx = tel; jobs }
            in
            print_string (f profile);
            print_newline ();
            if metrics then print_string (metrics_report tel);
            match explain with
            | None -> ()
            | Some query ->
              print_newline ();
              inner :=
                run_explain profile ~experiment:id ~query ~dot ~json:None)
      in
      (match outer with Ok () -> !inner | Error _ as e -> e)
  in
  Cmd.v (Cmd.info "experiment" ~doc)
    Term.(
      const run $ quick_flag $ trace_arg $ metrics_arg $ explain_arg $ dot_arg
      $ jobs_arg $ id_arg)

let all_cmd =
  let doc = "Run every experiment in paper order." in
  let run quick trace metrics jobs =
    with_telemetry ~trace ~keep:false (fun tel _ ->
        let profile =
          { (profile_of_flag quick) with Experiments.ctx = tel; jobs }
        in
        List.iter
          (fun (id, _, f) -> Printf.printf "=== %s ===\n%s\n%!" id (f profile))
          Experiments.all;
        if metrics then print_string (metrics_report tel))
  in
  Cmd.v (Cmd.info "all" ~doc)
    Term.(const run $ quick_flag $ trace_arg $ metrics_arg $ jobs_arg)

(* `profile table8-quick' is shorthand for `profile --quick table8'. *)
let split_profile_suffix id =
  let strip suffix =
    if
      String.length id > String.length suffix
      && String.ends_with ~suffix id
    then Some (String.sub id 0 (String.length id - String.length suffix))
    else None
  in
  match strip "-quick" with
  | Some base -> (base, Some Experiments.quick)
  | None -> (
    match strip "-full" with
    | Some base -> (base, Some Experiments.full)
    | None -> (id, None))

let profile_cmd =
  let doc =
    "Run one experiment under telemetry and print its profiling report: the \
     span-derived component breakdown plus the metrics registry snapshot. \
     EXPERIMENT may carry a -quick/-full suffix (e.g. table8-quick)."
  in
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT")
  in
  let run quick trace jobs id =
    let base, forced = split_profile_suffix id in
    match find_experiment base with
    | None -> unknown_experiment base
    | Some (_, _, f) ->
      with_telemetry ~trace ~keep:true (fun tel buf ->
          let p =
            match forced with Some p -> p | None -> profile_of_flag quick
          in
          let profile = { p with Experiments.ctx = tel; jobs } in
          print_string (f profile);
          print_newline ();
          Printf.printf "jobs: %d%s\n\n" profile.Experiments.jobs
            (if profile.Experiments.jobs = 0 then " (all cores)" else "");
          let spans = Span.buffer_spans (Option.get buf) in
          print_string
            (Snapshot.breakdown_table
               ~title:"Component breakdown (derived from spans)" spans);
          print_newline ();
          print_string (metrics_report tel);
          Option.iter
            (fun file ->
              Printf.printf "\n%d spans written to %s\n" (List.length spans)
                file)
            trace)
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(const run $ quick_flag $ trace_arg $ jobs_arg $ id_arg)

let explain_cmd =
  let doc =
    "Re-run Monsoon on one benchmark query with the decision flight recorder \
     attached and print an EXPLAIN ANALYZE-style report: the MDP decision \
     timeline with MCTS root statistics, per-node predicted vs observed \
     cardinalities with q-errors, the worst misestimates, and the statistics \
     hardened into the catalog. EXPERIMENT is a benchmark-backed experiment \
     (tpch/table2, imdb/table3..5, ott/table6, udf/table7/figure3)."
  in
  let experiment_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT")
  in
  let query_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY")
  in
  let run quick dot json experiment query =
    let profile = profile_of_flag quick in
    run_explain profile ~experiment ~query ~dot ~json
  in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(
      const run $ quick_flag $ dot_arg $ json_arg $ experiment_arg $ query_arg)

let demo_cmd =
  let doc =
    "Walk through the paper's Sec 2.3 example: the MDP, the chosen actions, \
     and the resulting execution."
  in
  let run () =
    print_string (Experiments.table1 ());
    print_newline ();
    print_string (Experiments.figure1 ());
    Ok ()
  in
  Cmd.v (Cmd.info "demo" ~doc) Term.(const run $ const ())

let main =
  let doc = "Monsoon: multi-step optimization and execution (SIGMOD 2020 reproduction)" in
  Cmd.group (Cmd.info "monsoon" ~doc)
    [ list_cmd; experiment_cmd; all_cmd; profile_cmd; explain_cmd; demo_cmd ]

let () =
  match Cmd.eval_value main with
  | Ok (`Ok (Error msg)) ->
    Printf.eprintf "monsoon: %s\n" msg;
    exit 1
  | Ok (`Ok (Ok ())) | Ok `Help | Ok `Version -> exit 0
  | Error (`Parse | `Term) -> exit Cmd.Exit.cli_error
  | Error `Exn -> exit Cmd.Exit.internal_error
