(* Command-line front end: list and run the paper's experiments, or profile
   one under telemetry. *)

open Cmdliner
open Monsoon_harness
open Monsoon_telemetry

let profile_of_flag quick_flag =
  if quick_flag then Experiments.quick else Experiments.full

let find_experiment id =
  List.find_opt (fun (eid, _, _) -> eid = id) Experiments.all

let unknown_experiment id =
  Error (Printf.sprintf "unknown experiment %s (try `list')" id)

let quick_flag =
  Arg.(value & flag & info [ "quick" ] ~doc:"Use the quick (smoke-test) profile.")

let write_file path content =
  try
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc content);
    Ok ()
  with Sys_error msg -> Error (Printf.sprintf "cannot write %s: %s" path msg)

(* Where completed spans go when --trace is given. *)
type trace_dest =
  | Trace_none
  | Trace_jsonl of out_channel
  | Trace_perfetto of string * Trace_event.t

let open_trace_dest ~trace ~trace_format =
  match (trace, trace_format) with
  | None, `Perfetto -> Error "--trace-format perfetto requires --trace FILE"
  | None, `Jsonl -> Ok Trace_none
  | Some "", _ -> Error "--trace requires a non-empty FILE"
  | Some path, `Jsonl -> (
    try Ok (Trace_jsonl (open_out path))
    with Sys_error msg ->
      Error (Printf.sprintf "cannot open trace file: %s" msg))
  | Some path, `Perfetto -> Ok (Trace_perfetto (path, Trace_event.create ()))

let close_trace_dest = function
  | Trace_none -> ()
  | Trace_jsonl oc -> close_out oc
  | Trace_perfetto (path, collector) -> (
    match write_file path (Trace_event.to_string collector) with
    | Ok () -> ()
    | Error msg -> Printf.eprintf "monsoon: %s\n" msg)

(* Builds the telemetry context the run executes under: an optional trace
   sink (JSONL stream or Perfetto collector), when [keep] is set an
   in-memory buffer for the in-process report, and — when [serve] or
   [watch] asks for it — a live Monitor sampling every [interval]
   seconds, optionally exposing /metrics, /healthz, and /snapshot.json
   on 127.0.0.1:[serve]. With [watch], each sampler tick streams a
   one-line differential to stderr and the run ends with the full
   differential report on stdout. *)
let with_telemetry ~trace ~trace_format ~keep ~serve ~interval ~watch f =
  match open_trace_dest ~trace ~trace_format with
  | Error _ as e -> e
  | Ok dest -> (
    let buf = if keep then Some (Span.memory_buffer ()) else None in
    let sinks =
      (match buf with Some b -> [ Span.Memory b ] | None -> [])
      @
      match dest with
      | Trace_none -> []
      | Trace_jsonl oc -> [ Span.Jsonl oc ]
      | Trace_perfetto (_, collector) -> [ Trace_event.sink collector ]
    in
    let sink =
      match sinks with [] -> Span.Null | [ s ] -> s | ss -> Span.Multi ss
    in
    let tel = Ctx.create ~sink () in
    let monitor =
      if serve = None && not watch then None
      else begin
        Monitor.preregister tel.Ctx.registry;
        let prev = ref None in
        let on_tick s =
          if watch then begin
            (match !prev with
            | Some p -> Printf.eprintf "%s\n%!" (Monitor.tick_line p s)
            | None -> ());
            prev := Some s
          end
        in
        Some
          (Monitor.create ~interval ~on_tick
             ~flush:(fun () -> Span.flush sink)
             tel.Ctx.registry)
      end
    in
    let served =
      match (monitor, serve) with
      | Some m, Some port -> (
        match Monitor.serve m ~port with
        | Ok bound ->
          Printf.eprintf "monsoon: serving http://127.0.0.1:%d/metrics\n%!"
            bound;
          Ok ()
        | Error msg -> Error (Printf.sprintf "--serve %d: %s" port msg))
      | _ -> Ok ()
    in
    match served with
    | Error _ as e ->
      Option.iter Monitor.stop monitor;
      close_trace_dest dest;
      e
    | Ok () ->
      Fun.protect
        ~finally:(fun () ->
          (match monitor with
          | None -> ()
          | Some m ->
            Monitor.stop m;
            if watch then begin
              match (Monitor.first m, Monitor.latest m) with
              | Some a, Some b when a != b ->
                print_newline ();
                print_string (Monitor.diff_report a b)
              | _ -> ()
            end);
          close_trace_dest dest)
        (fun () -> f tel buf);
      Ok ())

(* Run one query under the flight recorder, print the explain report, and
   honor the optional DOT / JSON export destinations. Shared by `explain'
   and `experiment --explain'. *)
let run_explain profile ~experiment ~query ~dot ~json =
  match Experiments.explain profile ~experiment ~query with
  | Error _ as e -> e
  | Ok recorder ->
    print_string (Explain.report recorder);
    let write_opt dest content =
      match dest with None -> Ok () | Some path -> write_file path content
    in
    Result.bind (write_opt dot (Recorder.to_dot recorder)) (fun () ->
        write_opt json (Json.to_string (Recorder.to_json recorder) ^ "\n"))

let dot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"FILE"
        ~doc:
          "Write the recorded MCTS root decisions as a Graphviz digraph to \
           $(docv) (render with dot -Tsvg).")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Write the full recorded trajectory as JSON to $(docv).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write completed telemetry spans to $(docv) as JSONL, one span per \
           line, for offline analysis.")

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Run (strategy, query) cells on $(docv) domains (default 1 = \
           sequential; 0 = one per core). Experiment tables are identical \
           for every value.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Print the telemetry metrics snapshot after the run.")

let trace_format_arg =
  Arg.(
    value
    & opt (enum [ ("jsonl", `Jsonl); ("perfetto", `Perfetto) ]) `Jsonl
    & info [ "trace-format" ] ~docv:"FORMAT"
        ~doc:
          "Format for the --trace file: $(b,jsonl) (one span per line) or \
           $(b,perfetto) (Chrome trace-event JSON — open it at \
           ui.perfetto.dev to see per-domain span timelines).")

let serve_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "serve" ] ~docv:"PORT"
        ~doc:
          "Expose live monitoring on 127.0.0.1:$(docv) for the duration of \
           the run: /metrics (Prometheus text exposition), /healthz, and \
           /snapshot.json. Port 0 picks an ephemeral port; the bound \
           address is printed to stderr.")

let interval_arg =
  Arg.(
    value
    & opt float 1.0
    & info [ "sample-interval" ] ~docv:"SECONDS"
        ~doc:
          "Cadence of the monitor's sampler (default 1.0), used by --serve \
           and --watch.")

let metrics_report tel =
  Snapshot.metrics_table ~title:"Telemetry metrics" tel.Ctx.registry

let list_cmd =
  let doc = "List the available experiments." in
  let run () =
    List.iter
      (fun (id, descr, _) -> Printf.printf "%-20s %s\n" id descr)
      Experiments.all;
    Ok ()
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let experiment_cmd =
  let doc = "Run one experiment (see `list')." in
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT")
  in
  let explain_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "explain" ] ~docv:"QUERY"
          ~doc:
            "After the experiment table, re-run Monsoon on $(docv) with the \
             decision flight recorder attached and print the explain report \
             (see the `explain' command).")
  in
  let run quick trace trace_format serve interval metrics explain dot jobs id =
    match find_experiment id with
    | None -> unknown_experiment id
    | Some (_, _, f) ->
      let inner = ref (Ok ()) in
      let outer =
        with_telemetry ~trace ~trace_format ~keep:false ~serve ~interval
          ~watch:false (fun tel _ ->
            let profile =
              { (profile_of_flag quick) with Experiments.ctx = tel; jobs }
            in
            print_string (Experiments.run profile ~id f);
            print_newline ();
            if metrics then print_string (metrics_report tel);
            match explain with
            | None -> ()
            | Some query ->
              print_newline ();
              inner :=
                run_explain profile ~experiment:id ~query ~dot ~json:None)
      in
      (match outer with Ok () -> !inner | Error _ as e -> e)
  in
  Cmd.v (Cmd.info "experiment" ~doc)
    Term.(
      const run $ quick_flag $ trace_arg $ trace_format_arg $ serve_arg
      $ interval_arg $ metrics_arg $ explain_arg $ dot_arg $ jobs_arg $ id_arg)

let all_cmd =
  let doc = "Run every experiment in paper order." in
  let run quick trace trace_format serve interval metrics jobs =
    with_telemetry ~trace ~trace_format ~keep:false ~serve ~interval
      ~watch:false (fun tel _ ->
        let profile =
          { (profile_of_flag quick) with Experiments.ctx = tel; jobs }
        in
        List.iter
          (fun (id, _, f) ->
            Printf.printf "=== %s ===\n%s\n%!" id (Experiments.run profile ~id f))
          Experiments.all;
        if metrics then print_string (metrics_report tel))
  in
  Cmd.v (Cmd.info "all" ~doc)
    Term.(
      const run $ quick_flag $ trace_arg $ trace_format_arg $ serve_arg
      $ interval_arg $ metrics_arg $ jobs_arg)

(* `profile table8-quick' is shorthand for `profile --quick table8'. *)
let split_profile_suffix id =
  let strip suffix =
    if
      String.length id > String.length suffix
      && String.ends_with ~suffix id
    then Some (String.sub id 0 (String.length id - String.length suffix))
    else None
  in
  match strip "-quick" with
  | Some base -> (base, Some Experiments.quick)
  | None -> (
    match strip "-full" with
    | Some base -> (base, Some Experiments.full)
    | None -> (id, None))

let profile_cmd =
  let doc =
    "Run one experiment under telemetry and print its profiling report: the \
     span-derived component breakdown plus the metrics registry snapshot. \
     EXPERIMENT may carry a -quick/-full suffix (e.g. table8-quick)."
  in
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT")
  in
  let watch_arg =
    Arg.(
      value & flag
      & info [ "watch" ]
          ~doc:
            "Stream a one-line differential sample to stderr on every \
             monitor tick (see --sample-interval) and print the full \
             differential runtime report — per-metric rates over the run, \
             top movers first, plus GC — after the experiment output.")
  in
  let run quick trace trace_format serve interval watch jobs id =
    let base, forced = split_profile_suffix id in
    match find_experiment base with
    | None -> unknown_experiment base
    | Some (_, _, f) ->
      with_telemetry ~trace ~trace_format ~keep:true ~serve ~interval ~watch
        (fun tel buf ->
          let p =
            match forced with Some p -> p | None -> profile_of_flag quick
          in
          let profile = { p with Experiments.ctx = tel; jobs } in
          print_string (Experiments.run profile ~id:base f);
          print_newline ();
          Printf.printf "jobs: %d%s\n\n" profile.Experiments.jobs
            (if profile.Experiments.jobs = 0 then " (all cores)" else "");
          let spans = Span.buffer_spans (Option.get buf) in
          print_string
            (Snapshot.breakdown_table
               ~title:"Component breakdown (derived from spans)" spans);
          print_newline ();
          print_string (metrics_report tel);
          Option.iter
            (fun file ->
              Printf.printf "\n%d spans written to %s\n" (List.length spans)
                file)
            trace)
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(
      const run $ quick_flag $ trace_arg $ trace_format_arg $ serve_arg
      $ interval_arg $ watch_arg $ jobs_arg $ id_arg)

let explain_cmd =
  let doc =
    "Re-run Monsoon on one benchmark query with the decision flight recorder \
     attached and print an EXPLAIN ANALYZE-style report: the MDP decision \
     timeline with MCTS root statistics, per-node predicted vs observed \
     cardinalities with q-errors, the worst misestimates, and the statistics \
     hardened into the catalog. EXPERIMENT is a benchmark-backed experiment \
     (tpch/table2, imdb/table3..5, ott/table6, udf/table7/figure3)."
  in
  let experiment_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT")
  in
  let query_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY")
  in
  let run quick dot json experiment query =
    let profile = profile_of_flag quick in
    run_explain profile ~experiment ~query ~dot ~json
  in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(
      const run $ quick_flag $ dot_arg $ json_arg $ experiment_arg $ query_arg)

let chaos_cmd =
  let doc =
    "Run a benchmark experiment's full suite with the fault plane armed — \
     UDF faults, poisoned rows, failed hash-join builds, killed pool \
     workers — and print a survival report: per-implementation OK / timeout \
     / degraded / retried / quarantined counts plus the resilience \
     counters. The report is deterministic: the same --seed and --faults \
     produce byte-identical output across runs and --jobs values. \
     EXPERIMENT accepts the same ids as `explain'."
  in
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT")
  in
  let faults_arg =
    Arg.(
      value
      & opt string "udf:0.05"
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Comma-separated class:value pairs, e.g. \
             $(b,udf:0.05,worker:1). Classes: $(b,udf), $(b,row), $(b,build) \
             (firing probabilities in [0,1]) and $(b,worker) (pool workers \
             to kill and respawn; needs --jobs > 1).")
  in
  let seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"N"
          ~doc:"Override the profile's suite seed (fault firing included).")
  in
  let retries_arg =
    Arg.(
      value
      & opt int Runner.default_config.Runner.retries
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Extra attempts for a faulted cell before it is quarantined \
             (deterministic backoff, salted per-attempt RNG).")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Cooperative wall-clock deadline per cell attempt; expiry \
             yields a timed-out cell. Wall-clock bounds trade away \
             run-to-run determinism.")
  in
  (* Default 2 (not 1): chaos runs should exercise the pool path, so a
     worker-kill spec has workers to kill without extra flags. *)
  let chaos_jobs_arg =
    Arg.(
      value
      & opt int 2
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Domains running cells (default 2, so worker kills have a pool \
             to act on; 0 = one per core). The report is identical for \
             every value.")
  in
  let run quick trace trace_format serve interval metrics faults seed retries
      deadline jobs id =
    match Monsoon_util.Fault.spec_of_string faults with
    | Error msg -> Error (Printf.sprintf "--faults %S: %s" faults msg)
    | Ok spec ->
      let inner = ref (Ok ()) in
      let outer =
        with_telemetry ~trace ~trace_format ~keep:false ~serve ~interval
          ~watch:false (fun tel _ ->
            let base = profile_of_flag quick in
            let profile =
              { base with
                Experiments.ctx = tel;
                jobs;
                seed = Option.value seed ~default:base.Experiments.seed }
            in
            match
              Experiments.chaos profile ~experiment:id ~faults:spec ~retries
                ~cell_deadline:deadline
            with
            | Error msg -> inner := Error msg
            | Ok report ->
              print_string report;
              if metrics then begin
                print_newline ();
                print_string (metrics_report tel)
              end)
      in
      (match outer with Ok () -> !inner | Error _ as e -> e)
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      const run $ quick_flag $ trace_arg $ trace_format_arg $ serve_arg
      $ interval_arg $ metrics_arg $ faults_arg $ seed_arg $ retries_arg
      $ deadline_arg $ chaos_jobs_arg $ id_arg)

let demo_cmd =
  let doc =
    "Walk through the paper's Sec 2.3 example: the MDP, the chosen actions, \
     and the resulting execution."
  in
  let run () =
    print_string (Experiments.table1 ());
    print_newline ();
    print_string (Experiments.figure1 ());
    Ok ()
  in
  Cmd.v (Cmd.info "demo" ~doc) Term.(const run $ const ())

let main =
  let doc = "Monsoon: multi-step optimization and execution (SIGMOD 2020 reproduction)" in
  Cmd.group (Cmd.info "monsoon" ~doc)
    [ list_cmd; experiment_cmd; all_cmd; profile_cmd; explain_cmd; chaos_cmd;
      demo_cmd ]

let () =
  match Cmd.eval_value main with
  | Ok (`Ok (Error msg)) ->
    Printf.eprintf "monsoon: %s\n" msg;
    exit 1
  | Ok (`Ok (Ok ())) | Ok `Help | Ok `Version -> exit 0
  | Error (`Parse | `Term) -> exit Cmd.Exit.cli_error
  | Error `Exn -> exit Cmd.Exit.internal_error
