open Monsoon_util
open Monsoon_baselines
open Monsoon_workloads
open Monsoon_harness
open Monsoon_telemetry

(* --- Fault specs: parsing and the determinism contract --- *)

let test_spec_parse () =
  match Fault.spec_of_string "udf:0.05,worker:1" with
  | Error msg -> Alcotest.fail msg
  | Ok s ->
    Alcotest.(check (float 1e-9)) "udf" 0.05 s.Fault.udf_rate;
    Alcotest.(check (float 1e-9)) "row" 0.0 s.Fault.row_rate;
    Alcotest.(check (float 1e-9)) "build" 0.0 s.Fault.build_rate;
    Alcotest.(check int) "worker" 1 s.Fault.worker_kills

let test_spec_roundtrip () =
  let s =
    { Fault.udf_rate = 0.25; row_rate = 0.5; build_rate = 1.0; worker_kills = 3 }
  in
  match Fault.spec_of_string (Fault.spec_to_string s) with
  | Error msg -> Alcotest.fail msg
  | Ok s' -> Alcotest.(check bool) "round-trips" true (s = s')

let test_spec_rejects () =
  let bad v =
    match Fault.spec_of_string v with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" v)
  in
  bad "";
  bad "udf:1.5";
  bad "udf:-0.1";
  bad "worker:-1";
  bad "worker:0.5";
  bad "gremlin:0.2";
  bad "udf=0.2"

let test_disabled_is_noop () =
  (* Every checkpoint on the disabled plan is silent; nothing counts. *)
  for _ = 1 to 100 do
    Fault.udf Fault.disabled;
    Fault.row Fault.disabled;
    Fault.build Fault.disabled
  done;
  Alcotest.(check bool) "not armed" false (Fault.armed Fault.disabled);
  Alcotest.(check int) "no firings" 0 (Fault.injected Fault.disabled);
  Alcotest.(check int) "no kills" 0 (Fault.worker_kills Fault.disabled)

let firing_sequence ~seed ~rate ~n =
  let f = Fault.plan { Fault.no_faults with Fault.udf_rate = rate } (Rng.create seed) in
  List.init n (fun _ -> match Fault.udf f with () -> false | exception Fault.Injected _ -> true)

let test_plan_determinism () =
  let a = firing_sequence ~seed:42 ~rate:0.3 ~n:200 in
  let b = firing_sequence ~seed:42 ~rate:0.3 ~n:200 in
  Alcotest.(check bool) "same seed, same firings" true (a = b);
  Alcotest.(check bool) "fires at 0.3 over 200 draws" true (List.mem true a);
  let c = firing_sequence ~seed:43 ~rate:0.3 ~n:200 in
  Alcotest.(check bool) "different seed, different firings" true (a <> c)

let test_rate_zero_never_draws () =
  (* A rate-0 class must not touch the RNG: arming it cannot shift another
     class's stream (and a rate-0 plan fires nothing at all). *)
  let rng = Rng.create 7 in
  let f = Fault.plan Fault.no_faults rng in
  for _ = 1 to 50 do
    Fault.udf f;
    Fault.row f;
    Fault.build f
  done;
  Alcotest.(check int) "rate-0 plan never fires" 0 (Fault.injected f);
  let untouched = Rng.create 7 in
  Alcotest.(check bool) "plan rng never advanced" true
    (Rng.unit_float rng = Rng.unit_float untouched)

(* --- Deadlines and cancellation --- *)

let test_deadline_none () =
  Alcotest.(check bool) "is_none" true (Deadline.is_none Deadline.none);
  Alcotest.(check bool) "never expires" false (Deadline.expired Deadline.none);
  Deadline.cancel Deadline.none;
  (* cancelling the shared sentinel is ignored *)
  Alcotest.(check bool) "still not expired" false (Deadline.expired Deadline.none);
  Deadline.check Deadline.none;
  Alcotest.(check bool) "infinite remaining" true
    (Deadline.remaining Deadline.none = infinity)

let test_deadline_expiry_and_cancel () =
  let d = Deadline.after 0.0 in
  Alcotest.(check bool) "expired immediately" true (Deadline.expired d);
  Alcotest.check_raises "check raises" Deadline.Expired (fun () ->
      Deadline.check d);
  Alcotest.(check (float 1e-9)) "no time left" 0.0 (Deadline.remaining d);
  let c = Deadline.after 3600.0 in
  Alcotest.(check bool) "fresh token live" false (Deadline.expired c);
  Deadline.cancel c;
  Alcotest.(check bool) "cancel trips it" true (Deadline.expired c)

let small_tpch () = Tpch.workload { Tpch.seed = 11; scale = 0.05; skew = Tpch.Plain }

let test_strategy_deadline_times_out () =
  (* An already-expired deadline must come back as a timed-out outcome —
     quickly, and without leaking the exception. *)
  let w = small_tpch () in
  let q = Workload.find_query w "tq1" in
  List.iter
    (fun (s : Strategy.t) ->
      let o =
        s.Strategy.run
          ~env:(Env.with_deadline Env.default (Deadline.after 0.0))
          ~rng:(Rng.create 1) ~budget:1e6 w.Workload.catalog q
      in
      Alcotest.(check bool) (s.Strategy.name ^ " timed out") true
        o.Strategy.timed_out)
    [ Strategy.greedy;
      Strategy.skinner;
      Strategy.monsoon ~iterations:60 ~scale_with_size:false
        Monsoon_stats.Prior.spike_and_slab ]

(* --- Pool: worker kills, respawn, cancellation --- *)

let wait_for ?(timeout = 5.0) pred =
  let t0 = Timer.now () in
  let rec go () =
    if pred () then true
    else if Timer.now () -. t0 > timeout then false
    else begin
      Unix.sleepf 0.005;
      go ()
    end
  in
  go ()

let test_pool_kill_respawn () =
  Pool.with_pool 2 (fun p ->
      Pool.inject_kills p 1;
      let xs = List.init 50 Fun.id in
      let ys = Pool.map p (fun x -> x * x) xs in
      Alcotest.(check (list int)) "no task lost to the kill"
        (List.map (fun x -> x * x) xs)
        ys;
      Alcotest.(check bool) "a worker died and was replaced" true
        (wait_for (fun () -> Pool.respawned p >= 1));
      Alcotest.(check int) "capacity conserved" 2 (Pool.size p);
      (* The pool keeps working after the churn. *)
      Alcotest.(check (list int)) "usable after respawn" [ 2; 4 ]
        (Pool.map p (fun x -> 2 * x) [ 1; 2 ]))

let test_pool_cancel () =
  Pool.with_pool 2 (fun p ->
      let cancel = Deadline.after 3600.0 in
      Deadline.cancel cancel;
      (match Pool.map ~cancel p Fun.id (List.init 20 Fun.id) with
      | _ -> Alcotest.fail "expected Deadline.Expired"
      | exception Deadline.Expired -> ());
      (* A cancelled call leaves the pool usable. *)
      Alcotest.(check (list int)) "usable after cancel" [ 1; 2 ]
        (Pool.map p Fun.id [ 1; 2 ]))

(* --- Suite-level resilience: the properties the chaos command relies on --- *)

let fingerprint (rows : Runner.row list) =
  List.map
    (fun (r : Runner.row) ->
      ( r.Runner.strategy,
        List.map
          (fun (c : Runner.cell) ->
            ( c.Runner.query,
              c.Runner.error,
              c.Runner.attempts,
              Option.map
                (fun (o : Strategy.outcome) ->
                  ( o.Strategy.cost, o.Strategy.timed_out,
                    o.Strategy.stats_cost, o.Strategy.result_card,
                    o.Strategy.degraded, o.Strategy.plan ))
                c.Runner.outcome ))
          r.Runner.cells ))
    rows

let suite_strategies () =
  [ Strategy.defaults; Strategy.greedy; Strategy.sampling;
    Strategy.monsoon ~iterations:60 ~scale_with_size:false
      Monsoon_stats.Prior.spike_and_slab ]

let suite_config ?faults ?(jobs = 1) () =
  { Runner.default_config with
    Runner.budget = 1e6;
    seed = 11;
    queries = Some [ "tq1"; "tq2"; "tq12" ];
    jobs;
    faults }

let test_rate_zero_plan_is_byte_identical () =
  (* The headline property: arming the fault plane at rate 0 changes
     nothing — rows, attempts, recorder-visible outcomes, and the
     fault.injected counter are all exactly as without a plane. *)
  let w = small_tpch () in
  let run faults =
    let tel = Ctx.null () in
    let rows =
      Runner.run_suite ~env:(Ctx.to_env tel) (suite_config ?faults ())
        (suite_strategies ()) w
    in
    let injected =
      Metric.Counter.value (Ctx.counter tel "fault.injected")
    in
    (fingerprint rows, injected)
  in
  let bare, injected_bare = run None in
  let armed, injected_armed = run (Some Fault.no_faults) in
  Alcotest.(check bool) "rows byte-identical" true (bare = armed);
  Alcotest.(check (float 0.0)) "no injections without plane" 0.0 injected_bare;
  Alcotest.(check (float 0.0)) "no injections at rate 0" 0.0 injected_armed

let test_jobs_invariance_under_faults () =
  (* The jobs knob must stay invisible with the fault plane armed: fault
     firing derives from per-cell RNGs, never from scheduling. The kill
     token exercises worker churn on the pooled run. *)
  let w = small_tpch () in
  let faults =
    Some { Fault.no_faults with Fault.udf_rate = 0.001; worker_kills = 1 }
  in
  let seq = Runner.run_suite (suite_config ?faults ()) (suite_strategies ()) w in
  let par =
    Runner.run_suite (suite_config ?faults ~jobs:4 ()) (suite_strategies ()) w
  in
  Alcotest.(check bool) "rows identical for jobs=1 and jobs=4" true
    (fingerprint seq = fingerprint par)

let test_retry_then_quarantine () =
  (* row:1.0 poisons the first scanned row of every attempt: the cell
     retries its full allowance, then lands in quarantine with the fault
     class recorded — and the aggregate surfaces it as an error. *)
  let w = small_tpch () in
  let tel = Ctx.null () in
  let rows =
    Runner.run_suite ~env:(Ctx.to_env tel)
      { (suite_config ()) with
        Runner.queries = Some [ "tq1" ];
        faults = Some { Fault.no_faults with Fault.row_rate = 1.0 };
        retries = 2 }
      [ Strategy.greedy ] w
  in
  (match rows with
  | [ { Runner.cells = [ c ]; _ } ] ->
    Alcotest.(check bool) "quarantined" true (c.Runner.outcome = None);
    Alcotest.(check (option string)) "fault class recorded" (Some "row")
      c.Runner.error;
    Alcotest.(check int) "used every attempt" 3 c.Runner.attempts
  | _ -> Alcotest.fail "expected one row with one cell");
  let agg = Runner.aggregate ~budget:1e6 (List.hd rows) in
  Alcotest.(check int) "agg counts the error" 1 agg.Runner.errors;
  Alcotest.(check int) "no outcome to aggregate" 0 agg.Runner.n;
  Alcotest.(check (float 0.0)) "retries counted" 2.0
    (Metric.Counter.value (Ctx.counter tel "runner.retries"));
  Alcotest.(check (float 0.0)) "quarantine counted" 1.0
    (Metric.Counter.value (Ctx.counter tel "runner.quarantined"))

let test_degraded_execution () =
  (* A UDF fault during a planned EXECUTE must not kill the run: the driver
     falls back to a left-deep plan, records a Degraded event the explain
     report renders, and the outcome still carries a result. Seeds are
     scanned deterministically until one hits the degrade path (a fault
     can also land outside EXECUTE, which retries instead). *)
  let w = Ott.workload { Ott.seed = 5; scale = 0.05; domain = 50 } in
  let monsoon =
    Strategy.monsoon ~iterations:60 ~scale_with_size:false
      Monsoon_stats.Prior.spike_and_slab
  in
  let queries = List.map fst w.Workload.queries in
  let try_one seed qname =
    let q = Workload.find_query w qname in
    let recorder = Recorder.create () in
    let tel = Ctx.with_recorder (Ctx.null ()) recorder in
    let fault =
      Fault.plan { Fault.no_faults with Fault.udf_rate = 5e-4 } (Rng.create seed)
    in
    match
      monsoon.Strategy.run
        ~env:(Env.with_fault (Ctx.to_env tel) fault)
        ~rng:(Rng.create seed) ~budget:1e7 w.Workload.catalog q
    with
    | exception Fault.Injected _ -> None (* fault outside EXECUTE: retry path *)
    | o when o.Strategy.degraded > 0 -> Some (o, recorder, tel)
    | _ -> None
  in
  let hit =
    List.find_map
      (fun seed -> List.find_map (try_one seed) queries)
      (List.init 10 Fun.id)
  in
  match hit with
  | None -> Alcotest.fail "no seed hit the degrade path (raise rate or seeds)"
  | Some (o, recorder, tel) ->
    Alcotest.(check bool) "run completed" false o.Strategy.timed_out;
    let degraded_events =
      List.filter
        (function Recorder.Degraded _ -> true | _ -> false)
        (Recorder.events recorder)
    in
    Alcotest.(check int) "one Degraded event per degraded execute"
      o.Strategy.degraded
      (List.length degraded_events);
    (match degraded_events with
    | Recorder.Degraded { reason; fallback; _ } :: _ ->
      Alcotest.(check string) "reason is the fault class" "udf" reason;
      Alcotest.(check bool) "fallback plan recorded" true
        (String.length fallback > 0)
    | _ -> ());
    let report = Explain.report recorder in
    Alcotest.(check bool) "explain renders the degradation" true
      (let needle = "Degraded execution" in
       let rec search i =
         i + String.length needle <= String.length report
         && (String.sub report i (String.length needle) = needle
            || search (i + 1))
       in
       search 0);
    Alcotest.(check bool) "driver.degraded counted" true
      (Metric.Counter.value (Ctx.counter tel "driver.degraded")
      >= float_of_int o.Strategy.degraded)

let test_mcts_deadline_early_exit () =
  (* An expired deadline stops MCTS gracefully: the search returns a plan
     (from whatever tree exists) instead of raising or spinning. *)
  let w = small_tpch () in
  let q = Workload.find_query w "tq1" in
  let monsoon =
    Strategy.monsoon ~iterations:100_000 ~scale_with_size:false
      Monsoon_stats.Prior.spike_and_slab
  in
  let t0 = Timer.now () in
  let o =
    monsoon.Strategy.run
      ~env:(Env.with_deadline Env.default (Deadline.after 0.05))
      ~rng:(Rng.create 3) ~budget:1e7 w.Workload.catalog q
  in
  Alcotest.(check bool) "timed out cooperatively" true o.Strategy.timed_out;
  Alcotest.(check bool) "did not run the full 100k-iteration search" true
    (Timer.now () -. t0 < 30.0)

let () =
  Alcotest.run "fault"
    [ ( "spec",
        [ Alcotest.test_case "parse" `Quick test_spec_parse;
          Alcotest.test_case "roundtrip" `Quick test_spec_roundtrip;
          Alcotest.test_case "rejects" `Quick test_spec_rejects ] );
      ( "plan",
        [ Alcotest.test_case "disabled noop" `Quick test_disabled_is_noop;
          Alcotest.test_case "determinism" `Quick test_plan_determinism;
          Alcotest.test_case "rate 0 never draws" `Quick test_rate_zero_never_draws ] );
      ( "deadline",
        [ Alcotest.test_case "none sentinel" `Quick test_deadline_none;
          Alcotest.test_case "expiry & cancel" `Quick test_deadline_expiry_and_cancel;
          Alcotest.test_case "strategies time out" `Slow test_strategy_deadline_times_out;
          Alcotest.test_case "mcts early exit" `Slow test_mcts_deadline_early_exit ] );
      ( "pool",
        [ Alcotest.test_case "kill & respawn" `Quick test_pool_kill_respawn;
          Alcotest.test_case "cancel" `Quick test_pool_cancel ] );
      ( "resilience",
        [ Alcotest.test_case "rate-0 byte identity" `Slow test_rate_zero_plan_is_byte_identical;
          Alcotest.test_case "jobs invariance under faults" `Slow test_jobs_invariance_under_faults;
          Alcotest.test_case "retry then quarantine" `Quick test_retry_then_quarantine;
          Alcotest.test_case "degraded execution" `Slow test_degraded_execution ] ) ]
