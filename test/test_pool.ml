open Monsoon_util

(* --- Monsoon_util.Pool: the domain worker pool under the harness --- *)

let test_map_order () =
  Pool.with_pool 4 (fun p ->
      let xs = List.init 100 Fun.id in
      let ys = Pool.map p (fun x -> x * x) xs in
      Alcotest.(check (list int)) "results in input order"
        (List.map (fun x -> x * x) xs)
        ys)

let test_map_empty () =
  Pool.with_pool 2 (fun p ->
      Alcotest.(check (list int)) "empty input" [] (Pool.map p Fun.id []))

let test_size_and_default () =
  Pool.with_pool 3 (fun p -> Alcotest.(check int) "size" 3 (Pool.size p));
  Alcotest.(check bool) "default_jobs >= 1" true (Pool.default_jobs () >= 1)

let test_create_invalid () =
  Alcotest.check_raises "zero workers"
    (Invalid_argument "Pool.create: need at least one worker") (fun () ->
      ignore (Pool.create 0))

exception Boom of int

let test_exception_propagates () =
  Pool.with_pool 4 (fun p ->
      (* The earliest failing index wins; every task still runs (the
         successes settle before [map] re-raises). *)
      let ran = Atomic.make 0 in
      match
        Pool.map p
          (fun x ->
            Atomic.incr ran;
            if x mod 3 = 1 then raise (Boom x) else x)
          (List.init 12 Fun.id)
      with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom x ->
        Alcotest.(check int) "earliest failing input" 1 x;
        Alcotest.(check int) "all tasks ran" 12 (Atomic.get ran))

let test_pool_usable_after_failure () =
  Pool.with_pool 2 (fun p ->
      (match Pool.map p (fun () -> raise Exit) [ () ] with
      | _ -> Alcotest.fail "expected Exit"
      | exception Exit -> ());
      Alcotest.(check (list int)) "next map still works" [ 2; 4 ]
        (Pool.map p (fun x -> 2 * x) [ 1; 2 ]))

let test_iter_effects () =
  Pool.with_pool 4 (fun p ->
      let total = Atomic.make 0 in
      let rec add a x =
        let old = Atomic.get a in
        if not (Atomic.compare_and_set a old (old + x)) then add a x
      in
      Pool.iter p (fun x -> add total x) (List.init 101 Fun.id);
      Alcotest.(check int) "sum 0..100" 5050 (Atomic.get total))

let test_shutdown_drains_and_rejects () =
  let p = Pool.create 2 in
  let done_ = Atomic.make 0 in
  (* Queue work, then shut down: shutdown joins only after the queue
     drains, so every task completes. *)
  let _ =
    Pool.map p
      (fun () ->
        Domain.cpu_relax ();
        Atomic.incr done_)
      (List.init 8 (fun _ -> ()))
  in
  Pool.shutdown p;
  Alcotest.(check int) "all tasks completed" 8 (Atomic.get done_);
  Alcotest.check_raises "map after shutdown"
    (Invalid_argument "Pool: shut down") (fun () ->
      ignore (Pool.map p Fun.id [ 1 ]));
  (* Idempotent. *)
  Pool.shutdown p

(* [map] returns when the last result is delivered, which happens inside
   the task body — the worker's settle accounting (in_flight down,
   completed up) runs just after. The counters are monitor introspection,
   not a synchronization point, so give them a moment to drain. *)
let settled_stats p ~completed =
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec go () =
    let st = Pool.stats p in
    if
      (st.Pool.in_flight = 0 && st.Pool.completed = completed)
      || Unix.gettimeofday () > deadline
    then st
    else begin
      Domain.cpu_relax ();
      go ()
    end
  in
  go ()

let test_stats_drain () =
  Pool.with_pool 3 (fun p ->
      let st0 = Pool.stats p in
      Alcotest.(check int) "starts with nothing queued" 0 st0.Pool.queued;
      Alcotest.(check int) "starts with nothing in flight" 0
        st0.Pool.in_flight;
      Alcotest.(check int) "starts with nothing completed" 0
        st0.Pool.completed;
      let n = 64 in
      let _ = Pool.map p (fun x -> x + 1) (List.init n Fun.id) in
      let st = settled_stats p ~completed:n in
      Alcotest.(check int) "queued drained" 0 st.Pool.queued;
      Alcotest.(check int) "in_flight drained" 0 st.Pool.in_flight;
      Alcotest.(check int) "completed = submissions" n st.Pool.completed;
      (* Failing tasks still count as completed (they left the queue and
         finished executing). *)
      (match Pool.map p (fun () -> raise Exit) [ (); () ] with
      | _ -> Alcotest.fail "expected Exit"
      | exception Exit -> ());
      let st' = settled_stats p ~completed:(n + 2) in
      Alcotest.(check int) "queued drained after failure" 0 st'.Pool.queued;
      Alcotest.(check int) "in_flight drained after failure" 0
        st'.Pool.in_flight;
      Alcotest.(check int) "failures complete too" (n + 2) st'.Pool.completed)

let test_concurrent_maps_on_one_pool () =
  (* Two domains share one pool; per-call completion state must not cross
     wires. *)
  Pool.with_pool 4 (fun p ->
      let run xs () = Pool.map p (fun x -> x + 1) xs in
      let a = List.init 50 Fun.id in
      let b = List.init 50 (fun i -> 1000 + i) in
      let da = Domain.spawn (run a) in
      let rb = run b () in
      let ra = Domain.join da in
      Alcotest.(check (list int)) "first map" (List.map succ a) ra;
      Alcotest.(check (list int)) "second map" (List.map succ b) rb)

let () =
  Alcotest.run "pool"
    [ ( "pool",
        [ Alcotest.test_case "map preserves order" `Quick test_map_order;
          Alcotest.test_case "map on empty" `Quick test_map_empty;
          Alcotest.test_case "size & default_jobs" `Quick test_size_and_default;
          Alcotest.test_case "create rejects n<1" `Quick test_create_invalid;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagates;
          Alcotest.test_case "usable after failure" `Quick
            test_pool_usable_after_failure;
          Alcotest.test_case "iter" `Quick test_iter_effects;
          Alcotest.test_case "shutdown" `Quick test_shutdown_drains_and_rejects;
          Alcotest.test_case "stats drain to zero" `Quick test_stats_drain;
          Alcotest.test_case "concurrent maps" `Quick
            test_concurrent_maps_on_one_pool ] ) ]
