open Monsoon_util
open Monsoon_relalg
open Monsoon_stats
open Monsoon_core

(* --- The Sec 2.3 planning problem, in pure simulation --- *)

let paper_ctx () =
  { Mdp.query = Fixtures.sec23_query (); raw_counts = [| 1e6; 1e4; 1e4 |] }

(* Initial state with d(F1,R) = d(F3,R) = 1000 known, as in the paper. *)
let seeded_state ctx =
  let state = Mdp.init_state ctx in
  Stats_catalog.set_distinct state.Mdp.stats ~term:0 ~scope:Stats_catalog.Wildcard 1000.0;
  Stats_catalog.set_distinct state.Mdp.stats ~term:2 ~scope:Stats_catalog.Wildcard 1000.0;
  state

let two_point =
  Prior.custom ~name:"two-point"
    ~sample:(fun rng ~c_own ~c_partner:_ ->
      if Rng.bool rng then 1.0 else Float.min 10_000.0 c_own)
    ()

let point v = Prior.custom ~name:"point" ~sample:(fun _ ~c_own:_ ~c_partner:_ -> v) ()

let sec23_simulator ?(seed = 17) ctx =
  Simulator.create_with ctx
    ~prior_of:(function
      | 1 | 3 -> two_point (* F2, F4 *)
      | _ -> point 1000.0)
    (Rng.create seed)

let r_mask = Relset.singleton 0
let s_mask = Relset.singleton 1
let t_mask = Relset.singleton 2

(* --- Action legality --- *)

let test_initial_actions () =
  let ctx = paper_ctx () in
  let state = seeded_state ctx in
  let actions = Mdp.legal_actions ctx state in
  (* R⨝S, R⨝T (S×T pruned: connected joins exist), Σ(S), Σ(T);
     Σ(R) is pruned because F1 and F3 are already measured. *)
  Alcotest.(check int) "four actions" 4 (List.length actions);
  let has a = List.mem a actions in
  Alcotest.(check bool) "join R S" true (has (Mdp.Join_exec (r_mask, s_mask)));
  Alcotest.(check bool) "join R T" true (has (Mdp.Join_exec (r_mask, t_mask)));
  Alcotest.(check bool) "sigma S" true (has (Mdp.Add_stats_of_exec s_mask));
  Alcotest.(check bool) "sigma T" true (has (Mdp.Add_stats_of_exec t_mask));
  Alcotest.(check bool) "no execute on empty R_p" false (has Mdp.Execute)

let test_sigma_r_offered_when_unmeasured () =
  let ctx = paper_ctx () in
  let state = Mdp.init_state ctx in
  let actions = Mdp.legal_actions ctx state in
  Alcotest.(check bool) "sigma R available" true
    (List.mem (Mdp.Add_stats_of_exec r_mask) actions);
  Alcotest.(check int) "five actions" 5 (List.length actions)

let test_execute_available_after_plan () =
  let ctx = paper_ctx () in
  let state = seeded_state ctx in
  let state = Mdp.apply_plan_edit state (Mdp.Join_exec (r_mask, s_mask)) in
  let actions = Mdp.legal_actions ctx state in
  Alcotest.(check bool) "execute available" true (List.mem Mdp.Execute actions);
  (* The planned R⨝S can be extended with T (mixed join), or Σ-wrapped. *)
  let rs = Expr.join (Expr.leaf r_mask) (Expr.leaf s_mask) in
  Alcotest.(check bool) "mixed join offered" true
    (List.mem (Mdp.Join_mixed (t_mask, rs)) actions);
  Alcotest.(check bool) "wrap sigma offered" true
    (List.mem (Mdp.Wrap_stats rs) actions)

let test_no_duplicate_plans () =
  let ctx = paper_ctx () in
  let state = seeded_state ctx in
  let state = Mdp.apply_plan_edit state (Mdp.Join_exec (r_mask, s_mask)) in
  let actions = Mdp.legal_actions ctx state in
  Alcotest.(check bool) "R⨝S not offered again" false
    (List.mem (Mdp.Join_exec (r_mask, s_mask)) actions)

let test_plan_edit_rejects_execute () =
  let ctx = paper_ctx () in
  Alcotest.check_raises "execute is not an edit"
    (Invalid_argument "Mdp.apply_plan_edit: Execute is not a plan edit")
    (fun () -> ignore (Mdp.apply_plan_edit (Mdp.init_state ctx) Mdp.Execute))

let test_executed_masks () =
  let full = Expr.join (Expr.join (Expr.base 0) (Expr.base 1)) (Expr.base 2) in
  Alcotest.(check (list int)) "join masks" [ 3; 7 ] (Mdp.executed_masks full);
  Alcotest.(check (list int)) "sigma stripped" [ 1 ]
    (Mdp.executed_masks (Expr.stats (Expr.base 0)))

let test_state_key_distinguishes () =
  let ctx = paper_ctx () in
  let s0 = Mdp.init_state ctx in
  let s1 = Mdp.apply_plan_edit s0 (Mdp.Join_exec (r_mask, s_mask)) in
  Alcotest.(check bool) "plans differ" true (Mdp.state_key s0 <> Mdp.state_key s1);
  let s2 = seeded_state ctx in
  Alcotest.(check bool) "stats differ" true (Mdp.state_key s0 <> Mdp.state_key s2)

(* Regression: an overwrite that leaves every rendered entry identical
   (same size, same %.4g values) used to collide with the pre-overwrite
   key — the catalog's write counter now keeps them apart. *)
let test_state_key_overwrite_no_collision () =
  let ctx = paper_ctx () in
  let s = seeded_state ctx in
  let before = Mdp.state_key s in
  Stats_catalog.set_distinct s.Mdp.stats ~term:0 ~scope:Stats_catalog.Wildcard
    1000.0;
  Alcotest.(check bool) "same-value overwrite changes the key" true
    (Mdp.state_key s <> before)

let test_terminal () =
  let ctx = paper_ctx () in
  let state = Mdp.init_state ctx in
  Alcotest.(check bool) "not terminal initially" false (Mdp.is_terminal ctx state);
  let state = { state with Mdp.r_e = 7 :: state.Mdp.r_e } in
  Alcotest.(check bool) "terminal when full mask present" true
    (Mdp.is_terminal ctx state)

(* --- Simulated transitions --- *)

let expected_cost_of_edits ctx ~seed edits =
  let sim = sec23_simulator ~seed ctx in
  let state =
    List.fold_left (fun s a -> Mdp.apply_plan_edit s a) (seeded_state ctx) edits
  in
  Simulator.expected_execute_cost sim state ~n:4000

let test_sigma_s_costs_one_scan () =
  let ctx = paper_ctx () in
  let c = expected_cost_of_edits ctx ~seed:3 [ Mdp.Add_stats_of_exec s_mask ] in
  Alcotest.(check (float 1.0)) "always 10^4" 1e4 c

let test_guess_plan_expected_cost () =
  (* Executing (R⨝S) costs 10^7 or 10^6 with equal probability. *)
  let ctx = paper_ctx () in
  let c = expected_cost_of_edits ctx ~seed:4 [ Mdp.Join_exec (r_mask, s_mask) ] in
  Alcotest.(check bool) "~5.5e6" true (abs_float (c -. 5.5e6) /. 5.5e6 < 0.05)

let test_full_guess_plan_expected_cost () =
  (* The full plan ((R⨝S)⨝T): final result free, inner join charged. *)
  let ctx = paper_ctx () in
  let rs = Expr.join (Expr.leaf r_mask) (Expr.leaf s_mask) in
  let c =
    expected_cost_of_edits ctx ~seed:5
      [ Mdp.Join_exec (r_mask, s_mask); Mdp.Join_mixed (t_mask, rs) ]
  in
  Alcotest.(check bool) "~5.5e6" true (abs_float (c -. 5.5e6) /. 5.5e6 < 0.05)

let test_execute_transition_updates_state () =
  let ctx = paper_ctx () in
  let sim = sec23_simulator ctx in
  let state =
    Mdp.apply_plan_edit (seeded_state ctx) (Mdp.Add_stats_of_exec s_mask)
  in
  let state', reward = Simulator.step sim state Mdp.Execute in
  Alcotest.(check (float 1.0)) "reward = -10^4" (-1e4) reward;
  Alcotest.(check bool) "R_p cleared" true (state'.Mdp.r_p = []);
  (* Σ(S) hardens a wildcard measurement for F2. *)
  Alcotest.(check bool) "F2 measured" true
    (Stats_catalog.has_measurement state'.Mdp.stats ~term:1);
  (match Stats_catalog.distinct state'.Mdp.stats ~term:1 ~pred:(Some 0) with
  | Some d -> Alcotest.(check bool) "two-point outcome" true (d = 1.0 || d = 1e4)
  | None -> Alcotest.fail "no measurement recorded");
  (* The original state is untouched. *)
  Alcotest.(check bool) "input state unchanged" false
    (Stats_catalog.has_measurement state.Mdp.stats ~term:1)

let test_plan_edits_are_deterministic_steps () =
  let ctx = paper_ctx () in
  let sim = sec23_simulator ctx in
  let state = seeded_state ctx in
  let state', reward = Simulator.step sim state (Mdp.Join_exec (r_mask, s_mask)) in
  Alcotest.(check (float 0.0)) "zero reward" 0.0 reward;
  Alcotest.(check int) "one plan" 1 (List.length state'.Mdp.r_p)

(* After learning d(F2,S) = 10^4, the optimizer can execute the optimal
   ((R⨝S)⨝T) with certainty: cost 10^6. *)
let test_post_observation_certainty () =
  let ctx = paper_ctx () in
  let sim = sec23_simulator ~seed:11 ctx in
  let state = seeded_state ctx in
  Stats_catalog.set_distinct state.Mdp.stats ~term:1 ~scope:Stats_catalog.Wildcard 1e4;
  let rs = Expr.join (Expr.leaf r_mask) (Expr.leaf s_mask) in
  let state =
    List.fold_left (fun s a -> Mdp.apply_plan_edit s a) state
      [ Mdp.Join_exec (r_mask, s_mask); Mdp.Join_mixed (t_mask, rs) ]
  in
  let c = Simulator.expected_execute_cost sim state ~n:500 in
  Alcotest.(check (float 1.0)) "certain 10^6" 1e6 c

(* --- The paper's headline behaviour: MCTS chooses to collect statistics
   first on the Sec 2.3 problem. --- *)

let test_mcts_collects_statistics_first () =
  let ctx = paper_ctx () in
  let sim = sec23_simulator ~seed:1 ctx in
  let problem = Simulator.problem sim in
  let cfg =
    { (Monsoon_mcts.Mcts.default_config ~rng:(Rng.create 42)) with
      Monsoon_mcts.Mcts.iterations = 20_000 }
  in
  match Monsoon_mcts.Mcts.plan cfg problem (seeded_state ctx) with
  | Some (Mdp.Add_stats_of_exec m, _) ->
    Alcotest.(check bool) "scans S or T" true (m = s_mask || m = t_mask)
  | Some (a, _) ->
    Alcotest.failf "expected a Σ action, got %s" (Mdp.describe_action ctx a)
  | None -> Alcotest.fail "no action"

(* --- End-to-end driver on real (small) data --- *)

let test_driver_end_to_end () =
  let rng = Rng.create 91 in
  let q = Fixtures.sec23_query () in
  let cat = Fixtures.sec23_catalog rng ~scale:1000 ~d_s:1 ~d_t:10 in
  let config =
    { (Driver.default_config ~rng:(Rng.create 5)) with
      Driver.budget = 1e8;
      mcts =
        { (Monsoon_mcts.Mcts.default_config ~rng:(Rng.create 5)) with
          Monsoon_mcts.Mcts.iterations = 400 } }
  in
  let outcome = Driver.run config cat q in
  Alcotest.(check bool) "completes" false outcome.Driver.timed_out;
  Alcotest.(check bool) "executed at least once" true (outcome.Driver.executes >= 1);
  Alcotest.(check (float 0.5)) "correct result"
    (float_of_int (Fixtures.brute_force_count cat q))
    outcome.Driver.result_card;
  Alcotest.(check bool) "cost accounted" true
    (outcome.Driver.exec_cost +. outcome.Driver.stats_cost = outcome.Driver.cost)

let test_driver_times_out_on_tiny_budget () =
  let rng = Rng.create 92 in
  let q = Fixtures.sec23_query () in
  let cat = Fixtures.sec23_catalog rng ~scale:1000 ~d_s:1 ~d_t:1 in
  let config =
    { (Driver.default_config ~rng:(Rng.create 6)) with
      Driver.budget = 50.0;
      mcts =
        { (Monsoon_mcts.Mcts.default_config ~rng:(Rng.create 6)) with
          Monsoon_mcts.Mcts.iterations = 200 } }
  in
  let outcome = Driver.run config cat q in
  Alcotest.(check bool) "times out" true outcome.Driver.timed_out

let prop_simulated_reward_never_positive =
  QCheck.Test.make ~name:"EXECUTE rewards are non-positive" ~count:50
    QCheck.(int_range 0 1000)
    (fun seed ->
      let ctx = paper_ctx () in
      let sim = sec23_simulator ~seed ctx in
      let state =
        Mdp.apply_plan_edit (seeded_state ctx) (Mdp.Join_exec (r_mask, s_mask))
      in
      let _, r = Simulator.step sim state Mdp.Execute in
      r <= 0.0)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "core"
    [ ( "mdp actions",
        [ Alcotest.test_case "initial actions" `Quick test_initial_actions;
          Alcotest.test_case "sigma R when unmeasured" `Quick test_sigma_r_offered_when_unmeasured;
          Alcotest.test_case "execute after plan" `Quick test_execute_available_after_plan;
          Alcotest.test_case "no duplicate plans" `Quick test_no_duplicate_plans;
          Alcotest.test_case "plan edit rejects execute" `Quick test_plan_edit_rejects_execute;
          Alcotest.test_case "executed masks" `Quick test_executed_masks;
          Alcotest.test_case "state key" `Quick test_state_key_distinguishes;
          Alcotest.test_case "state key overwrite collision" `Quick
            test_state_key_overwrite_no_collision;
          Alcotest.test_case "terminal" `Quick test_terminal ] );
      ( "simulated transitions",
        [ Alcotest.test_case "sigma costs one scan" `Quick test_sigma_s_costs_one_scan;
          Alcotest.test_case "guess plan expected cost" `Quick test_guess_plan_expected_cost;
          Alcotest.test_case "full guess plan" `Quick test_full_guess_plan_expected_cost;
          Alcotest.test_case "execute updates state" `Quick test_execute_transition_updates_state;
          Alcotest.test_case "plan edits deterministic" `Quick test_plan_edits_are_deterministic_steps;
          Alcotest.test_case "post-observation certainty" `Quick test_post_observation_certainty ] );
      ( "policy",
        [ Alcotest.test_case "MCTS collects statistics first" `Slow test_mcts_collects_statistics_first ] );
      ( "driver",
        [ Alcotest.test_case "end to end" `Quick test_driver_end_to_end;
          Alcotest.test_case "timeout" `Quick test_driver_times_out_on_tiny_budget ] );
      ("properties", qc [ prop_simulated_reward_never_positive ]) ]
