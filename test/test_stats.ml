open Monsoon_util
open Monsoon_stats

(* --- Stats catalog --- *)

let test_counts_roundtrip () =
  let s = Stats_catalog.create () in
  Stats_catalog.set_count s 5 123.0;
  Alcotest.(check (option (float 0.0))) "hit" (Some 123.0) (Stats_catalog.count s 5);
  Alcotest.(check (option (float 0.0))) "miss" None (Stats_catalog.count s 6)

let test_distinct_precedence () =
  let s = Stats_catalog.create () in
  Stats_catalog.set_distinct s ~term:0 ~scope:(Stats_catalog.For_pred 3) 10.0;
  Alcotest.(check (option (float 0.0))) "scoped hit" (Some 10.0)
    (Stats_catalog.distinct s ~term:0 ~pred:(Some 3));
  Alcotest.(check (option (float 0.0))) "other pred misses" None
    (Stats_catalog.distinct s ~term:0 ~pred:(Some 4));
  Alcotest.(check (option (float 0.0))) "selection context misses" None
    (Stats_catalog.distinct s ~term:0 ~pred:None);
  (* A wildcard measurement overrides everything. *)
  Stats_catalog.set_distinct s ~term:0 ~scope:Stats_catalog.Wildcard 42.0;
  Alcotest.(check (option (float 0.0))) "wildcard wins" (Some 42.0)
    (Stats_catalog.distinct s ~term:0 ~pred:(Some 3));
  Alcotest.(check (option (float 0.0))) "wildcard for selections too" (Some 42.0)
    (Stats_catalog.distinct s ~term:0 ~pred:None);
  Alcotest.(check bool) "has measurement" true (Stats_catalog.has_measurement s ~term:0);
  Alcotest.(check bool) "no measurement" false (Stats_catalog.has_measurement s ~term:1)

let test_select_scope () =
  let s = Stats_catalog.create () in
  Stats_catalog.set_distinct s ~term:2 ~scope:Stats_catalog.For_select 7.0;
  Alcotest.(check (option (float 0.0))) "selection hit" (Some 7.0)
    (Stats_catalog.distinct s ~term:2 ~pred:None);
  Alcotest.(check (option (float 0.0))) "join context misses" None
    (Stats_catalog.distinct s ~term:2 ~pred:(Some 0))

let test_copy_isolated () =
  let s = Stats_catalog.create () in
  Stats_catalog.set_count s 1 10.0;
  let s' = Stats_catalog.copy s in
  Stats_catalog.set_count s' 2 20.0;
  Stats_catalog.set_count s' 1 99.0;
  Alcotest.(check (option (float 0.0))) "original untouched" (Some 10.0)
    (Stats_catalog.count s 1);
  Alcotest.(check (option (float 0.0))) "original misses new" None (Stats_catalog.count s 2);
  Alcotest.(check int) "sizes diverge" 1 (Stats_catalog.size s);
  Alcotest.(check int) "copy grew" 2 (Stats_catalog.size s')

let test_version_counter () =
  let s = Stats_catalog.create () in
  Alcotest.(check int) "fresh catalog" 0 (Stats_catalog.version s);
  Stats_catalog.set_count s 5 123.0;
  let v1 = Stats_catalog.version s in
  Alcotest.(check bool) "first write bumps" true (v1 > 0);
  (* The collision that motivated the counter: an overwrite with the very
     same value leaves [size] (and every rendered entry) unchanged. *)
  Stats_catalog.set_count s 5 123.0;
  Alcotest.(check bool) "same-value overwrite bumps" true
    (Stats_catalog.version s > v1);
  Alcotest.(check int) "size blind to the overwrite" 1 (Stats_catalog.size s);
  Stats_catalog.set_distinct s ~term:0 ~scope:Stats_catalog.Wildcard 9.0;
  let v2 = Stats_catalog.version s in
  Stats_catalog.set_distinct s ~term:0 ~scope:Stats_catalog.Wildcard 9.0;
  Alcotest.(check bool) "distinct overwrite bumps" true
    (Stats_catalog.version s > v2);
  let s' = Stats_catalog.copy s in
  Alcotest.(check int) "copy carries the counter" (Stats_catalog.version s)
    (Stats_catalog.version s');
  Stats_catalog.set_count s' 5 123.0;
  Alcotest.(check bool) "copies diverge independently" true
    (Stats_catalog.version s' > Stats_catalog.version s)

let test_enumerations () =
  let s = Stats_catalog.create () in
  Stats_catalog.set_count s 3 5.0;
  Stats_catalog.set_distinct s ~term:1 ~scope:Stats_catalog.Wildcard 2.0;
  Stats_catalog.set_distinct s ~term:1 ~scope:(Stats_catalog.For_pred 0) 3.0;
  Alcotest.(check int) "counts" 1 (List.length (Stats_catalog.counts s));
  Alcotest.(check int) "distincts" 2 (List.length (Stats_catalog.distincts s))

(* --- Priors --- *)

let rng () = Rng.create 2024

let test_all_priors_listed () =
  Alcotest.(check int) "seven priors" 7 (List.length Prior.all);
  Alcotest.(check (list string)) "paper order"
    [ "Uniform"; "Increasing"; "Decreasing"; "U-Shaped"; "Low Biased";
      "Spike and Slab"; "Discrete" ]
    (List.map Prior.name Prior.all)

let test_by_name () =
  Alcotest.(check bool) "found" true (Prior.by_name "spike and slab" <> None);
  Alcotest.(check bool) "missing" true (Prior.by_name "nope" = None)

let test_discrete_point_mass () =
  let r = rng () in
  for _ = 1 to 20 do
    Alcotest.(check (float 0.001)) "0.1 c" 100.0
      (Prior.sample Prior.discrete r ~c_own:1000.0 ~c_partner:None)
  done

let test_spike_and_slab_composition () =
  let r = rng () in
  let c_own = 1000.0 and c_s = 50.0 in
  let n = 50_000 in
  let at_own = ref 0 and at_partner = ref 0 in
  for _ = 1 to n do
    let d = Prior.sample Prior.spike_and_slab r ~c_own ~c_partner:(Some c_s) in
    assert (d >= 1.0 && d <= c_own);
    if d = c_own then incr at_own;
    if d = c_s then incr at_partner
  done;
  let f_own = float_of_int !at_own /. float_of_int n in
  let f_partner = float_of_int !at_partner /. float_of_int n in
  Alcotest.(check bool) "~10% at c(r)" true (abs_float (f_own -. 0.1) < 0.01);
  Alcotest.(check bool) "~10% at c(s)" true (abs_float (f_partner -. 0.1) < 0.01)

let test_increasing_vs_decreasing () =
  let r = rng () in
  let mean prior =
    let acc = ref 0.0 in
    for _ = 1 to 20_000 do
      acc := !acc +. Prior.sample prior r ~c_own:10_000.0 ~c_partner:None
    done;
    !acc /. 20_000.0
  in
  let inc = mean Prior.increasing and dec = mean Prior.decreasing in
  Alcotest.(check bool) "increasing optimistic" true (inc > 6_000.0);
  Alcotest.(check bool) "decreasing pessimistic" true (dec < 4_000.0)

let test_custom_prior () =
  let p =
    Prior.custom ~name:"two-point"
      ~sample:(fun rng ~c_own ~c_partner:_ ->
        if Rng.bool rng then 1.0 else c_own)
      ()
  in
  let r = rng () in
  let lows = ref 0 in
  for _ = 1 to 1000 do
    if Prior.sample p r ~c_own:100.0 ~c_partner:None = 1.0 then incr lows
  done;
  Alcotest.(check bool) "both outcomes occur" true (!lows > 300 && !lows < 700)

let test_density_shapes () =
  (* U-shaped is high near the edges, low in the middle; low-biased peaks
     early. *)
  let u = Prior.density Prior.u_shaped in
  Alcotest.(check bool) "u-shape" true (u ~x:0.05 > u ~x:0.5 && u ~x:0.95 > u ~x:0.5);
  let lb = Prior.density Prior.low_biased in
  Alcotest.(check bool) "low-biased peak" true (lb ~x:0.1 > lb ~x:0.5)

let prop_priors_in_support =
  QCheck.Test.make ~name:"all priors sample within [1, c]" ~count:300
    QCheck.(pair (float_range 1.0 1e6) (option (float_range 1.0 1e6)))
    (fun (c_own, c_partner) ->
      let r = Rng.create (int_of_float c_own) in
      List.for_all
        (fun p ->
          let d = Prior.sample p r ~c_own ~c_partner in
          d >= 1.0 && d <= Float.max 1.0 c_own)
        Prior.all)

let prop_priors_selection_context =
  QCheck.Test.make ~name:"selection context (no partner) works" ~count:100
    QCheck.(float_range 1.0 1e5)
    (fun c_own ->
      let r = Rng.create 55 in
      List.for_all
        (fun p ->
          let d = Prior.sample p r ~c_own ~c_partner:None in
          d >= 1.0 && d <= Float.max 1.0 c_own)
        Prior.all)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "stats"
    [ ( "catalog",
        [ Alcotest.test_case "counts roundtrip" `Quick test_counts_roundtrip;
          Alcotest.test_case "distinct precedence" `Quick test_distinct_precedence;
          Alcotest.test_case "selection scope" `Quick test_select_scope;
          Alcotest.test_case "copy isolation" `Quick test_copy_isolated;
          Alcotest.test_case "enumerations" `Quick test_enumerations;
          Alcotest.test_case "version counter" `Quick test_version_counter ] );
      ( "priors",
        [ Alcotest.test_case "seven priors" `Quick test_all_priors_listed;
          Alcotest.test_case "by name" `Quick test_by_name;
          Alcotest.test_case "discrete point mass" `Quick test_discrete_point_mass;
          Alcotest.test_case "spike-and-slab composition" `Quick test_spike_and_slab_composition;
          Alcotest.test_case "increasing vs decreasing" `Quick test_increasing_vs_decreasing;
          Alcotest.test_case "custom prior" `Quick test_custom_prior;
          Alcotest.test_case "density shapes" `Quick test_density_shapes ] );
      ("properties", qc [ prop_priors_in_support; prop_priors_selection_context ]) ]
