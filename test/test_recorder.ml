(* The decision flight recorder: trajectory invariants on a real driver run,
   q-error arithmetic, export stability under a fixed seed, and the explain
   report. *)

open Monsoon_util
open Monsoon_core
open Monsoon_telemetry

(* One seeded 3-join driver run with the recorder (and a registry, for the
   counter cross-checks) attached. *)
let recorded_run ~seed =
  let rng = Rng.create 91 in
  let q = Fixtures.sec23_query () in
  let cat = Fixtures.sec23_catalog rng ~scale:1000 ~d_s:1 ~d_t:10 in
  let config =
    { (Driver.default_config ~rng:(Rng.create seed)) with
      Driver.budget = 1e8;
      mcts =
        { (Monsoon_mcts.Mcts.default_config ~rng:(Rng.create seed)) with
          Monsoon_mcts.Mcts.iterations = 400 } }
  in
  let tel = Ctx.create ~sink:Span.Null () in
  let recorder = Recorder.create () in
  let outcome =
    Driver.run ~env:(Ctx.to_env (Ctx.with_recorder tel recorder)) config cat q
  in
  (outcome, recorder, tel)

let nodes_of recorder =
  List.concat_map
    (function Recorder.Executed { nodes; _ } -> nodes | _ -> [])
    (Recorder.events recorder)

let test_trajectory_invariants () =
  let outcome, recorder, tel = recorded_run ~seed:5 in
  let events = Recorder.events recorder in
  Alcotest.(check bool) "has events" true (events <> []);
  (match List.hd events with
  | Recorder.Query_start { query; n_rels; state_key } ->
    Alcotest.(check string) "query name" "sec2.3" query;
    Alcotest.(check int) "three instances" 3 n_rels;
    Alcotest.(check bool) "initial state fingerprint" true
      (state_key <> "")
  | _ -> Alcotest.fail "first event must be Query_start");
  (match List.nth events (List.length events - 1) with
  | Recorder.Query_finish { steps; timed_out; cost; result_card } ->
    Alcotest.(check bool) "terminal, not timed out" false timed_out;
    Alcotest.(check (float 1e-9)) "cost matches outcome" outcome.Driver.cost
      cost;
    Alcotest.(check (float 1e-9)) "result card matches"
      outcome.Driver.result_card result_card;
    (* The recorder's step count is the driver.steps counter delta, which
       is also the number of Decision events. *)
    let decisions =
      List.length
        (List.filter
           (function Recorder.Decision _ -> true | _ -> false)
           events)
    in
    Alcotest.(check int) "steps = #decisions" decisions steps;
    let c_steps = Ctx.counter tel "driver.steps" in
    Alcotest.(check int) "steps = counter" steps
      (int_of_float (Metric.Counter.value c_steps))
  | _ -> Alcotest.fail "last event must be Query_finish");
  (* Decisions carry full root statistics and the chosen action is one of
     the candidates. *)
  List.iter
    (function
      | Recorder.Decision { chosen; candidates; root_visits; legal_actions; _ }
        ->
        Alcotest.(check bool) "has candidates" true (candidates <> []);
        Alcotest.(check bool) "chosen among candidates" true
          (List.exists
             (fun (c : Recorder.candidate) -> c.Recorder.cand_action = chosen)
             candidates);
        Alcotest.(check bool) "candidates within legal actions" true
          (List.length candidates <= legal_actions);
        Alcotest.(check bool) "visits sum to root" true
          (List.fold_left
             (fun acc (c : Recorder.candidate) -> acc + c.Recorder.cand_visits)
             0 candidates
          <= root_visits)
      | _ -> ())
    events;
  (* Executed events happened, and every q-error is well-formed. *)
  let nodes = nodes_of recorder in
  Alcotest.(check bool) "materialized nodes recorded" true (nodes <> []);
  List.iter
    (fun (n : Recorder.exec_node) ->
      match n.Recorder.node_q_error with
      | Some qe ->
        Alcotest.(check bool) "q-error >= 1" true (qe >= 1.0);
        Alcotest.(check bool) "q-error implies both sides" true
          (n.Recorder.node_predicted <> None
          && n.Recorder.node_observed <> None)
      | None -> ())
    nodes;
  Alcotest.(check bool) "at least one prediction scored" true
    (List.exists (fun (n : Recorder.exec_node) -> n.Recorder.node_q_error <> None)
       nodes)

let test_qerror_histogram_populated () =
  let _, recorder, tel = recorded_run ~seed:5 in
  let h = Ctx.histogram tel "driver.q_error" in
  let scored =
    List.length
      (List.filter
         (fun (n : Recorder.exec_node) -> n.Recorder.node_q_error <> None)
         (nodes_of recorder))
  in
  Alcotest.(check int) "histogram count = scored nodes" scored
    (Metric.Histogram.count h);
  let h_replans = Ctx.histogram tel "driver.replans_per_query" in
  Alcotest.(check int) "one replan observation per query" 1
    (Metric.Histogram.count h_replans)

let test_qerror_arithmetic () =
  Alcotest.(check (float 1e-9)) "exact" 1.0
    (Recorder.q_error ~predicted:42.0 ~observed:42.0);
  Alcotest.(check (float 1e-9)) "over" 10.0
    (Recorder.q_error ~predicted:1000.0 ~observed:100.0);
  Alcotest.(check (float 1e-9)) "under" 10.0
    (Recorder.q_error ~predicted:100.0 ~observed:1000.0);
  (* Zero observations clamp instead of dividing by zero. *)
  Alcotest.(check (float 1e-9)) "empty result" 50.0
    (Recorder.q_error ~predicted:50.0 ~observed:0.0);
  Alcotest.(check (float 1e-9)) "both below one" 1.0
    (Recorder.q_error ~predicted:0.0 ~observed:0.5)

(* Wall-clock planning times are the one non-deterministic field. *)
let rec strip_timing = function
  | Json.Obj fields ->
    Json.Obj
      (List.filter_map
         (fun (k, v) ->
           if k = "plan_seconds" then None else Some (k, strip_timing v))
         fields)
  | Json.Arr xs -> Json.Arr (List.map strip_timing xs)
  | j -> j

let test_export_stability () =
  (* Two runs under the same seed record identical trajectories, so the
     exports are byte-identical (golden stability) up to wall-clock
     timings. *)
  let _, r1, _ = recorded_run ~seed:5 in
  let _, r2, _ = recorded_run ~seed:5 in
  Alcotest.(check string) "dot deterministic" (Recorder.to_dot r1)
    (Recorder.to_dot r2);
  Alcotest.(check string) "json deterministic"
    (Json.to_string (strip_timing (Recorder.to_json r1)))
    (Json.to_string (strip_timing (Recorder.to_json r2)));
  let dot = Recorder.to_dot r1 in
  Alcotest.(check bool) "digraph header" true
    (String.length dot > 8 && String.sub dot 0 8 = "digraph ");
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has edges" true (contains dot "->");
  Alcotest.(check bool) "marks the chosen edge" true (contains dot "color=red");
  (* The JSON round-trips through the in-repo parser. *)
  match Json.of_string (Json.to_string (Recorder.to_json r1)) with
  | Ok (Json.Arr events) ->
    Alcotest.(check int) "all events exported"
      (List.length (Recorder.events r1))
      (List.length events)
  | Ok _ -> Alcotest.fail "expected a JSON array"
  | Error msg -> Alcotest.failf "export does not parse: %s" msg

let test_explain_report () =
  let _, recorder, _ = recorded_run ~seed:5 in
  let report = Explain.report recorder in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "non-empty" true (String.length report > 0);
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "mentions %S" needle) true
        (contains report needle))
    [ "EXPLAIN sec2.3"; "Decision timeline"; "EXECUTE"; "Q-error";
      "q-error" ];
  Alcotest.(check string) "empty recording" "(empty recording)\n"
    (Explain.report (Recorder.create ()))

let test_null_recorder_records_nothing () =
  let r = Recorder.null () in
  Recorder.record r (Recorder.Note { step = 0; message = "dropped" });
  Alcotest.(check bool) "disabled" false (Recorder.enabled r);
  Alcotest.(check int) "no events" 0 (List.length (Recorder.events r))

let () =
  Alcotest.run "recorder"
    [ ( "flight recorder",
        [ Alcotest.test_case "trajectory invariants" `Quick
            test_trajectory_invariants;
          Alcotest.test_case "q-error histograms" `Quick
            test_qerror_histogram_populated;
          Alcotest.test_case "q-error arithmetic" `Quick test_qerror_arithmetic;
          Alcotest.test_case "export stability" `Quick test_export_stability;
          Alcotest.test_case "explain report" `Quick test_explain_report;
          Alcotest.test_case "null recorder" `Quick
            test_null_recorder_records_nothing ] ) ]
