open Monsoon_baselines
open Monsoon_workloads
open Monsoon_harness
open Monsoon_telemetry
open Monsoon_server

let contains s sub =
  let n = String.length sub and m = String.length s in
  let rec go i =
    i + n <= m && (String.sub s i n = sub || go (i + 1))
  in
  n = 0 || go 0

let tmp_qlog () = Filename.temp_file "monsoon_qlog" ".jsonl"

let writer ?max_bytes path =
  match Qlog.create ?max_bytes path with
  | Ok w -> w
  | Error e -> Alcotest.fail e

(* --- Deriving a record from a recorded trajectory --- *)

let node q =
  { Recorder.node_expr = "R |><| S";
    node_mask = 3;
    node_depth = 0;
    node_predicted = Some 10.0;
    node_observed = Some 20.0;
    node_q_error = q;
    node_profile = None }

let decision step =
  Recorder.Decision
    { step;
      state_key = "k";
      legal_actions = 4;
      chosen = "join";
      selection = "uct(w=1.41)";
      root_visits = 10;
      plan_seconds = 0.001;
      candidates = [] }

let trajectory =
  [ Recorder.Query_start { query = "iq7"; n_rels = 3; state_key = "k" };
    decision 0;
    Recorder.Executed
      { step = 1;
        nodes = [ node (Some 3.0); node (Some 8.0); node None ];
        cost = 40.0;
        timed_out = false };
    decision 2;
    Recorder.Degraded { step = 3; reason = "udf"; fallback = "seq scan" };
    Recorder.Query_finish
      { steps = 5; cost = 123.0; timed_out = false; result_card = 7.0 } ]

let test_of_events_derivation () =
  let r =
    Qlog.of_events ~trace:"t-0-cafe" ~query:"iq7" ~strategy:"serve"
      ~outcome:"degraded" ~latency:0.5 ~queue_wait:0.1 trajectory
  in
  Alcotest.(check string) "trace" "t-0-cafe" r.Qlog.r_trace;
  Alcotest.(check int) "steps from Query_finish" 5 r.Qlog.r_steps;
  Alcotest.(check (float 0.0)) "cost from Query_finish" 123.0 r.Qlog.r_cost;
  Alcotest.(check (float 0.0)) "result card" 7.0 r.Qlog.r_result_card;
  Alcotest.(check int) "replans = Decision count" 2 r.Qlog.r_replans;
  Alcotest.(check int) "executes" 1 r.Qlog.r_executes;
  Alcotest.(check int) "degraded" 1 r.Qlog.r_degraded;
  Alcotest.(check (list string)) "fault detail" [ "udf -> seq scan" ]
    r.Qlog.r_fault_detail;
  Alcotest.(check (option (float 0.0))) "worst q-error" (Some 8.0)
    r.Qlog.r_worst_q_error

let test_of_events_empty () =
  (* The path for outcomes that never reached a recorder (e.g. a
     rejected request): arguments fill in, derived fields stay zero. *)
  let r =
    Qlog.of_events ~trace:"t" ~query:"q" ~strategy:"serve"
      ~outcome:"rejected" ~latency:0.0 ~queue_wait:0.2 ~cost:9.0
      ~result_card:2.0 ~detail:"queue full" []
  in
  Alcotest.(check (float 0.0)) "cost from argument" 9.0 r.Qlog.r_cost;
  Alcotest.(check (float 0.0)) "card from argument" 2.0 r.Qlog.r_result_card;
  Alcotest.(check int) "no steps" 0 r.Qlog.r_steps;
  Alcotest.(check int) "no replans" 0 r.Qlog.r_replans;
  Alcotest.(check (option (float 0.0))) "nothing predicted" None
    r.Qlog.r_worst_q_error;
  Alcotest.(check string) "detail kept" "queue full" r.Qlog.r_detail

let test_json_roundtrip () =
  let roundtrip r =
    match Json.of_string (Json.to_string (Qlog.to_json r)) with
    | Error e -> Alcotest.fail ("reparse: " ^ e)
    | Ok j -> (
      match Qlog.of_json j with
      | Error e -> Alcotest.fail ("of_json: " ^ e)
      | Ok r' -> Alcotest.(check bool) "round-trips" true (r = r'))
  in
  roundtrip
    (Qlog.of_events ~trace:"t-0-cafe" ~query:"iq7" ~strategy:"serve"
       ~outcome:"ok" ~latency:0.25 ~queue_wait:0.0 ~plan:"R |><| S"
       trajectory);
  (* worst_q_error None must survive as JSON null *)
  roundtrip
    (Qlog.of_events ~trace:"t" ~query:"q" ~strategy:"runner" ~outcome:"error"
       ~latency:0.0 ~queue_wait:0.0 ~detail:"kaboom" [])

(* --- The bounded writer --- *)

let test_writer_rotation_and_load () =
  let path = tmp_qlog () in
  let w = writer ~max_bytes:4096 path in
  let record i =
    Qlog.of_events ~trace:(Printf.sprintf "t-%d" i) ~query:"iq7"
      ~strategy:"serve" ~outcome:"ok" ~latency:0.1 ~queue_wait:0.0
      ~plan:(String.make 120 'p') trajectory
  in
  for i = 0 to 39 do
    Qlog.append w (record i)
  done;
  Qlog.close w;
  (* close is idempotent and appends after close are dropped *)
  Qlog.close w;
  Qlog.append w (record 99);
  let rotated = path ^ ".1" in
  Alcotest.(check bool) "rotated file exists" true (Sys.file_exists rotated);
  let load p =
    match Qlog.load p with Ok rs -> rs | Error e -> Alcotest.fail e
  in
  let live = load path and old_ = load rotated in
  Alcotest.(check bool) "live file bounded" true (List.length live < 40);
  Alcotest.(check bool) "rotation kept the previous generation" true
    (List.length old_ > 0);
  (* The newest record always lands in the live file — rotation drops
     the oldest generations, never the tail. *)
  Alcotest.(check bool) "latest record in live file" true
    (List.exists (fun r -> r.Qlog.r_trace = "t-39") live);
  List.iter
    (fun r -> Alcotest.(check string) "records intact" "iq7" r.Qlog.r_query)
    (live @ old_);
  Sys.remove path;
  Sys.remove rotated

(* --- Aggregation --- *)

let rec_ ?(outcome = "ok") ?(latency = 0.1) ?(cost = 10.0) ?(trace = "t")
    query =
  Qlog.of_events ~trace ~query ~strategy:"serve" ~outcome ~latency
    ~queue_wait:0.0 ~cost []

let test_report_content () =
  let records =
    [ rec_ ~trace:"t1" ~cost:10.0 "iq1";
      rec_ ~trace:"t2" ~cost:30.0 ~latency:0.9 "iq1";
      rec_ ~trace:"t3" ~outcome:"timeout" ~cost:5.0 "iq7" ]
  in
  let report = Qlog.report records in
  Alcotest.(check bool) "header" true
    (contains report "Query log: 3 records over 2 classes");
  Alcotest.(check bool) "has iq1 row" true (contains report "iq1");
  Alcotest.(check bool) "has iq7 row" true (contains report "iq7");
  (* The same multiset of records renders identically regardless of
     append order — parallel producers must not change the report. *)
  Alcotest.(check string) "append-order independent" report
    (Qlog.report (List.rev records))

let test_diff_identical_runs () =
  let run latency =
    [ rec_ ~trace:"a" ~latency ~cost:10.0 "iq1";
      rec_ ~trace:"b" ~latency:(latency *. 3.0) ~cost:20.0 "iq7" ]
  in
  (* Latency differs wildly between the runs; the deterministic fields
     are identical, so the diff is clean — and byte-stable. *)
  let report, regressions = Qlog.diff_report ~old_:(run 0.1) (run 2.5) in
  Alcotest.(check int) "no regressions" 0 regressions;
  Alcotest.(check bool) "says zero" true (contains report "0 regressions");
  let report', _ = Qlog.diff_report ~old_:(run 0.4) (run 1.9) in
  Alcotest.(check string) "byte-stable" report report'

let test_diff_detects_regression () =
  let old_ = [ rec_ ~cost:10.0 "iq1"; rec_ ~cost:10.0 "iq7" ] in
  let new_ = [ rec_ ~cost:30.0 "iq1"; rec_ ~cost:10.0 "iq7" ] in
  let report, regressions = Qlog.diff_report ~old_ new_ in
  Alcotest.(check int) "one regression" 1 regressions;
  Alcotest.(check bool) "marked" true (contains report "REGRESSED");
  (* A lost class is categorically worse. *)
  let _, lost = Qlog.diff_report ~old_ [ rec_ ~cost:10.0 "iq1" ] in
  Alcotest.(check int) "lost class regresses" 1 lost;
  (* New timeouts regress even at equal cost. *)
  let _, to_ =
    Qlog.diff_report ~old_
      [ rec_ ~cost:10.0 "iq1"; rec_ ~outcome:"timeout" ~cost:10.0 "iq7" ]
  in
  Alcotest.(check int) "new timeout regresses" 1 to_

(* --- Trace correlation end to end ---

   One served request must leave three artifacts joined on one key: the
   qlog record, the retained explain capture, and the emitted spans. *)

let test_trace_correlation () =
  let buf = Span.memory_buffer () in
  let profile =
    { Experiments.quick with
      Experiments.ctx = Ctx.create ~sink:(Span.Memory buf) () }
  in
  match Experiments.service profile ~experiment:"imdb" () with
  | Error e -> Alcotest.fail e
  | Ok (handler, names) ->
    let path = tmp_qlog () in
    let w = writer path in
    let config =
      { Server.default_config with
        Server.request_timeout = None;
        explain_ring = 4;
        qlog = Some w;
        seed = profile.Experiments.seed }
    in
    let t = Server.create ~queries:names config handler in
    let qname = List.hd names in
    let r = Server.submit t qname in
    Server.stop t;
    Qlog.close w;
    Alcotest.(check int) "served" 200 r.Server.rs_code;
    (match Qlog.load path with
     | Error e -> Alcotest.fail e
     | Ok [ q ] ->
       Alcotest.(check string) "qlog joins on trace" r.Server.rs_trace
         q.Qlog.r_trace;
       Alcotest.(check string) "query name" qname q.Qlog.r_query;
       Alcotest.(check string) "strategy" "serve" q.Qlog.r_strategy;
       Alcotest.(check (float 0.0)) "cost agrees" r.Server.rs_cost
         q.Qlog.r_cost
     | Ok l ->
       Alcotest.fail (Printf.sprintf "expected 1 record, got %d"
                        (List.length l)));
    (match Server.explain t r.Server.rs_id with
     | None -> Alcotest.fail "no explain capture"
     | Some report ->
       Alcotest.(check bool) "explain names the trace" true
         (contains report ("trace " ^ r.Server.rs_trace)));
    let tagged =
      List.filter
        (fun (s : Span.t) ->
          List.exists
            (fun (k, v) -> k = "trace" && v = Span.Str r.Server.rs_trace)
            s.Span.attrs)
        (Span.buffer_spans buf)
    in
    Alcotest.(check bool) "spans carry the trace attr" true
      (List.length tagged > 0);
    Sys.remove path

(* --- The Runner as a producer --- *)

let fingerprint (rows : Runner.row list) =
  List.map
    (fun (r : Runner.row) ->
      ( r.Runner.strategy,
        List.map
          (fun (c : Runner.cell) ->
            ( c.Runner.query,
              c.Runner.error,
              c.Runner.attempts,
              Option.map
                (fun (o : Strategy.outcome) ->
                  ( o.Strategy.cost, o.Strategy.timed_out,
                    o.Strategy.stats_cost, o.Strategy.result_card,
                    o.Strategy.plan ))
                c.Runner.outcome ))
          r.Runner.cells ))
    rows

let test_runner_qlog_differential () =
  let w = Tpch.workload { Tpch.seed = 11; scale = 0.05; skew = Tpch.Plain } in
  let strategies =
    [ Strategy.defaults;
      Strategy.monsoon ~iterations:60 ~scale_with_size:false
        Monsoon_stats.Prior.spike_and_slab ]
  in
  let config qlog =
    { Runner.default_config with
      Runner.budget = 1e6;
      seed = 11;
      queries = Some [ "tq1"; "tq2" ];
      qlog }
  in
  let bare = Runner.run_suite (config None) strategies w in
  let path = tmp_qlog () in
  let wtr = writer path in
  let audited = Runner.run_suite (config (Some wtr)) strategies w in
  Qlog.close wtr;
  (* The headline property: auditing must not change the run. *)
  Alcotest.(check bool) "rows identical with and without qlog" true
    (fingerprint bare = fingerprint audited);
  (match Qlog.load path with
   | Error e -> Alcotest.fail e
   | Ok records ->
     Alcotest.(check int) "one record per cell attempt" 4
       (List.length records);
     List.iter
       (fun r ->
         Alcotest.(check bool)
           (r.Qlog.r_trace ^ " uses the runner trace scheme") true
           (String.length r.Qlog.r_trace > 2
           && String.sub r.Qlog.r_trace 0 2 = "r-");
         Alcotest.(check string) "outcome ok" "ok" r.Qlog.r_outcome;
         Alcotest.(check bool) "cost recorded" true (r.Qlog.r_cost > 0.0))
       records;
     (* Runner trace ids derive from (seed, strategy, query, attempt):
        distinct cells, distinct ids. *)
     let traces =
       List.sort_uniq compare
         (List.map (fun r -> r.Qlog.r_trace) records)
     in
     Alcotest.(check int) "trace ids distinct" 4 (List.length traces);
     (* Golden plan summaries: trace ids and rendered plans are pinned, so
        a change in execution order, trace derivation, or the executor's
        observable behavior (the Monsoon plans depend on the Σ estimates
        the executor feeds back) shows up as a byte diff here. *)
     let golden =
       [ ("r-15ed350a", "Defaults", "tq1", "(c \xe2\xa8\x9d (o \xe2\xa8\x9d l))");
         ("r-3c231c69", "Defaults", "tq2",
          "(l \xe2\xa8\x9d (o \xe2\xa8\x9d (c \xe2\xa8\x9d n)))");
         ("r-22d414e0", "Monsoon", "tq1",
          "plan \xce\xa3(o) | plan c \xe2\xa8\x9d o | EXECUTE | plan [c,o] \
           \xe2\xa8\x9d l | EXECUTE");
         ("r-1e38d398", "Monsoon", "tq2",
          "plan \xce\xa3(c) | plan c \xe2\xa8\x9d o | attach n \xe2\xa8\x9d (c \
           \xe2\xa8\x9d o) | wrap \xce\xa3(((c \xe2\xa8\x9d o) \xe2\xa8\x9d \
           n)) | EXECUTE | plan l \xe2\xa8\x9d [c,o,n] | EXECUTE") ]
     in
     Alcotest.(check (list (pair (pair string string) (pair string string))))
       "golden plan summaries"
       (List.map (fun (a, b, c, d) -> ((a, b), (c, d))) golden)
       (List.map
          (fun r ->
            ((r.Qlog.r_trace, r.Qlog.r_strategy), (r.Qlog.r_query, r.Qlog.r_plan)))
          records));
  Sys.remove path

(* The rendered EXPLAIN plan tables list nodes in obs_nodes completion
   order; pin one deterministic run's tables verbatim so any executor
   change to completion order or observed cardinalities is a visible
   diff. *)
let test_explain_plan_tables_golden () =
  let open Monsoon_core in
  let w = Tpch.workload { Tpch.seed = 11; scale = 0.05; skew = Tpch.Plain } in
  let q = Workload.find_query w "tq1" in
  let rng = Runner.cell_rng ~seed:11 ~strategy:"Monsoon" ~query:"tq1" in
  let mcts =
    { (Monsoon_mcts.Mcts.default_config ~rng) with
      Monsoon_mcts.Mcts.iterations = 60 }
  in
  let config =
    { Driver.prior = Monsoon_stats.Prior.spike_and_slab;
      prior_of = None;
      known_distincts = [];
      mcts;
      mcts_workers = 1;
      budget = 1e6;
      max_steps = 200 }
  in
  let recorder = Recorder.create () in
  let _ =
    Driver.run
      ~env:(Ctx.to_env (Ctx.with_recorder (Ctx.null ()) recorder))
      config w.Workload.catalog q
  in
  let report = Explain.report ~trace:"golden" recorder in
  let step2 =
    "EXECUTE at step 2 (cost 171)\n\
    \  Plan node  Predicted  Observed  Q-error\n\
    \  ---------  ---------  --------  -------\n\
    \  (c \xe2\xa8\x9d o)  5.86204    20        3.41   \n\
    \    c        1.46375    10        6.83   \n\
    \    o        5.1126     151       29.53  \n\
    \  o          5.1126     151       29.53  \n"
  in
  let step4 =
    "EXECUTE at step 4 (cost 0)\n\
    \  Plan node      Predicted  Observed  Q-error\n\
    \  -------------  ---------  --------  -------\n\
    \  ([c,o] \xe2\xa8\x9d l)  3000       84        35.71  \n\
    \    [c,o]        -          20        -      \n\
    \    l            3000       3000      1.00   \n"
  in
  Alcotest.(check bool) "step-2 plan table renders identically" true
    (contains report step2);
  Alcotest.(check bool) "step-4 plan table renders identically" true
    (contains report step4)

let () =
  Alcotest.run "qlog"
    [ ( "records",
        [ Alcotest.test_case "of_events derivation" `Quick
            test_of_events_derivation;
          Alcotest.test_case "of_events on empty trajectory" `Quick
            test_of_events_empty;
          Alcotest.test_case "JSON round-trip" `Quick test_json_roundtrip ] );
      ( "writer",
        [ Alcotest.test_case "rotation and load" `Quick
            test_writer_rotation_and_load ] );
      ( "aggregation",
        [ Alcotest.test_case "report content and order-independence" `Quick
            test_report_content;
          Alcotest.test_case "diff ignores latency, byte-stable" `Quick
            test_diff_identical_runs;
          Alcotest.test_case "diff detects regressions" `Quick
            test_diff_detects_regression ] );
      ( "correlation",
        [ Alcotest.test_case "qlog, explain, spans join on trace" `Quick
            test_trace_correlation ] );
      ( "runner",
        [ Alcotest.test_case "audited run is byte-identical" `Quick
            test_runner_qlog_differential;
          Alcotest.test_case "explain plan tables golden" `Quick
            test_explain_plan_tables_golden ] ) ]
