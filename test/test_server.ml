open Monsoon_util
open Monsoon_server
open Monsoon_telemetry

let contains s needle =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  go 0

let check_contains what haystack needle =
  Alcotest.(check bool)
    (Printf.sprintf "%s contains %S" what needle)
    true (contains haystack needle)

let gauge_value ctx name = Metric.Gauge.value (Ctx.gauge ctx name)

(* --- admission --- *)

let test_admission_basics () =
  let ctx = Ctx.null () in
  let a = Admission.create ~ctx ~max_concurrent:2 ~queue_bound:1 () in
  (match Admission.admit ~deadline:Deadline.none a with
  | Admission.Admitted w -> Alcotest.(check (float 0.0)) "no wait" 0.0 w
  | _ -> Alcotest.fail "first admit should be immediate");
  (match Admission.admit ~deadline:Deadline.none a with
  | Admission.Admitted _ -> ()
  | _ -> Alcotest.fail "second admit should be immediate");
  Alcotest.(check int) "in flight" 2 (Admission.in_flight a);
  Alcotest.(check (float 0.0)) "in-flight gauge" 2.0
    (gauge_value ctx "server.in_flight");
  (* Third request queues; it lands once a slot frees. *)
  let third = ref None in
  let th = Thread.create (fun () -> third := Some (Admission.admit ~deadline:Deadline.none a)) () in
  let rec wait_queued n =
    if Admission.queued a < 1 && n > 0 then begin
      Thread.delay 0.005;
      wait_queued (n - 1)
    end
  in
  wait_queued 400;
  Alcotest.(check int) "queued" 1 (Admission.queued a);
  Alcotest.(check (float 0.0)) "queue-depth gauge" 1.0
    (gauge_value ctx "server.queue_depth");
  (* Fourth request finds the queue at its bound. *)
  (match Admission.admit ~deadline:Deadline.none a with
  | Admission.Rejected -> ()
  | _ -> Alcotest.fail "queue full should reject");
  Admission.release a;
  Thread.join th;
  (match !third with
  | Some (Admission.Admitted w) ->
    Alcotest.(check bool) "queue wait measured" true (w >= 0.0)
  | _ -> Alcotest.fail "queued request should be admitted on release");
  Admission.release a;
  Admission.release a;
  Admission.drain a;
  Alcotest.(check int) "drained" 0 (Admission.in_flight a);
  Alcotest.(check (float 0.0)) "queue-depth gauge drained" 0.0
    (gauge_value ctx "server.queue_depth");
  Alcotest.(check (float 0.0)) "in-flight gauge drained" 0.0
    (gauge_value ctx "server.in_flight");
  match Admission.admit ~deadline:Deadline.none a with
  | Admission.Closed -> ()
  | _ -> Alcotest.fail "admit after drain should be Closed"

let test_admission_deadline () =
  let a = Admission.create ~max_concurrent:1 ~queue_bound:4 () in
  (match Admission.admit ~deadline:Deadline.none a with
  | Admission.Admitted _ -> ()
  | _ -> Alcotest.fail "first admit");
  (* Deadline already expired on entry: no queueing. *)
  let d = Deadline.after 0.001 in
  Thread.delay 0.01;
  (match Admission.admit ~deadline:d a with
  | Admission.Timed_out -> ()
  | _ -> Alcotest.fail "expired deadline should time out on entry");
  (* A queued waiter whose deadline trips resolves Timed_out at the next
     slot handoff, and the handoff is not lost: a second waiter without a
     deadline takes the slot. *)
  let first = ref None and second = ref None in
  let t1 =
    Thread.create
      (fun () -> first := Some (Admission.admit ~deadline:(Deadline.after 0.02) a))
      ()
  in
  Thread.delay 0.05;
  let t2 = Thread.create (fun () -> second := Some (Admission.admit ~deadline:Deadline.none a)) () in
  Thread.delay 0.05;
  Admission.release a;
  Thread.join t1;
  Thread.join t2;
  (match !first with
  | Some Admission.Timed_out -> ()
  | _ -> Alcotest.fail "tripped deadline in queue should be Timed_out");
  (match !second with
  | Some (Admission.Admitted _) -> ()
  | _ -> Alcotest.fail "handoff should pass to the live waiter");
  Admission.release a;
  Admission.drain a

(* --- SLO accounting --- *)

let record_fixture slo =
  List.iter
    (fun (o, l, qw) -> Slo.record slo o ~latency:l ~queue_wait:qw)
    [ (Slo.Ok_, 0.5, 0.0);
      (Slo.Ok_, 0.9, 0.1);
      (Slo.Degraded, 1.5, 0.5);
      (Slo.Timed_out, 2.5, 1.0);
      (Slo.Failed, 0.25, 0.0);
      (Slo.Rejected, 0.001, 0.0) ]

let test_slo_counts () =
  let ctx = Ctx.null () in
  let slo = Slo.create ~ctx () in
  record_fixture slo;
  let c = Slo.counts slo in
  Alcotest.(check int) "total" 6 c.Slo.total;
  Alcotest.(check int) "ok" 2 c.Slo.ok;
  Alcotest.(check int) "degraded" 1 c.Slo.degraded;
  Alcotest.(check int) "rejected" 1 c.Slo.rejected;
  Alcotest.(check int) "timed out" 1 c.Slo.timed_out;
  Alcotest.(check int) "failed" 1 c.Slo.failed;
  (* The same numbers are on the registry for /metrics. *)
  let counter n = Metric.Counter.value (Ctx.counter ctx n) in
  Alcotest.(check (float 0.0)) "server.requests" 6.0 (counter "server.requests");
  Alcotest.(check (float 0.0)) "server.rejected" 1.0 (counter "server.rejected")

let test_slo_report_golden () =
  let slo = Slo.create ~latency_target:1.0 ~availability_target:0.75 () in
  record_fixture slo;
  let expected =
    "SLO report (6 requests)\n\n\
     Outcomes\n\
     \  Outcome   Count  Share \n\
     \  --------  -----  ------\n\
     \  ok        2      33.33%\n\
     \  degraded  1      16.67%\n\
     \  rejected  1      16.67%\n\
     \  timeout   1      16.67%\n\
     \  error     1      16.67%\n\n\
     Latency (log-bucketed: quantiles are bucket upper bounds)\n\
     \  Metric      p50  p95  p99  Max \n\
     \  ----------  ---  ---  ---  ----\n\
     \  latency     1s   4s   4s   2.5s\n\
     \  queue wait  0s   2s   2s   1s  \n\n\
     Objectives\n\
     \  Objective     Target  Achieved  Status      \n\
     \  ------------  ------  --------  ------------\n\
     \  p95 latency   1s      4s        MISSED      \n\
     \  availability  75.00%  50.00%    MISSED      \n\
     \  error budget  25.00%  50.00%    spent 200.0%\n"
  in
  Alcotest.(check string) "byte-stable report" expected (Slo.report slo);
  Alcotest.(check string) "empty report" "SLO report: no requests recorded\n"
    (Slo.report (Slo.create ()))

let test_slo_per_class () =
  let ctx = Ctx.null () in
  let slo = Slo.create ~ctx () in
  Slo.record slo ~klass:"iq7" Slo.Ok_ ~latency:0.5 ~queue_wait:0.0;
  Slo.record slo ~klass:"iq7" Slo.Timed_out ~latency:2.0 ~queue_wait:0.0;
  Slo.record slo ~klass:"iq1" Slo.Ok_ ~latency:0.1 ~queue_wait:0.0;
  let report = Slo.report slo in
  check_contains "report" report "Per-class outcomes and latency";
  (* Sorted by class: iq1 before iq7. *)
  let pos needle =
    let rec go i =
      if i + String.length needle > String.length report then -1
      else if String.sub report i (String.length needle) = needle then i
      else go (i + 1)
    in
    go 0
  in
  Alcotest.(check bool) "classes sorted" true (pos "iq1" < pos "iq7");
  (* The labeled instruments are on the registry, so /metrics exports
     per-class series. *)
  let labeled =
    Metric.Counter.value
      (Ctx.counter ctx ~labels:[ ("class", "iq7") ] "server.requests")
  in
  Alcotest.(check (float 0.0)) "labeled counter" 2.0 labeled;
  check_contains "exporter" (Exporter.render ctx.Ctx.registry)
    "monsoon_server_requests_total{class=\"iq7\"} 2";
  Alcotest.(check (float 0.0)) "mean latency"
    ((0.5 +. 2.0 +. 0.1) /. 3.0)
    (Slo.mean_latency slo)

(* Zero-observation edges: a report over no requests and an exporter
   render over an empty histogram must not divide by zero, and must be
   byte-stable. *)
let test_slo_zero_observations () =
  let slo = Slo.create () in
  Alcotest.(check string) "no requests" "SLO report: no requests recorded\n"
    (Slo.report slo);
  Alcotest.(check (float 0.0)) "mean latency of nothing" 0.0
    (Slo.mean_latency slo)

(* --- the server core, on a synthetic handler --- *)

let synthetic_handler ~id:_ ~rng:_ ~env:_ ~recorder ~trace:_ qname =
  let ok = { Server.x_cost = 1.0; x_timed_out = false; x_degraded = false; x_plan = "p" } in
  match qname with
  | "fast" -> Ok ok
  | "slow" ->
    Thread.delay 0.1;
    Ok ok
  | "note" ->
    (* A Degraded event renders in Explain.report's degradation table, so
       the stored capture is observable end to end. *)
    Recorder.record recorder
      (Recorder.Degraded { step = 0; reason = "served"; fallback = "p" });
    Ok ok
  | "slownote" ->
    (* Slow AND recorded: the case the slow-query retention store exists
       for. *)
    Thread.delay 0.06;
    Recorder.record recorder
      (Recorder.Degraded { step = 0; reason = "served slowly"; fallback = "p" });
    Ok ok
  | "degraded" -> Ok { ok with Server.x_degraded = true }
  | "overrun" -> Ok { ok with Server.x_timed_out = true }
  | "boom" -> failwith "kaboom"
  | "fail" -> Error (`Failed "handler says no")
  | other -> Error (`Unknown_query (Printf.sprintf "unknown query %S" other))

let make_server ?(ctx = Ctx.null ()) ?(config = Server.default_config) () =
  Server.create ~env:(Ctx.to_env ctx)
    ~queries:[ "fast"; "slow"; "note"; "degraded" ]
    config synthetic_handler

let test_submit_outcomes () =
  let config =
    { Server.default_config with
      Server.max_concurrent = 2;
      request_timeout = None;
      explain_ring = 4 }
  in
  let t = make_server ~config () in
  let code q = (Server.submit t q).Server.rs_code in
  Alcotest.(check int) "ok" 200 (code "fast");
  Alcotest.(check int) "degraded is a success" 200 (code "degraded");
  Alcotest.(check int) "budget overrun" 504 (code "overrun");
  Alcotest.(check int) "handler exception" 500 (code "boom");
  Alcotest.(check int) "handler failure" 500 (code "fail");
  Alcotest.(check int) "unknown query" 404 (code "nope");
  let c = Slo.counts (Server.slo t) in
  Alcotest.(check int) "total" 6 c.Slo.total;
  Alcotest.(check int) "ok" 1 c.Slo.ok;
  Alcotest.(check int) "degraded" 1 c.Slo.degraded;
  Alcotest.(check int) "timeout" 1 c.Slo.timed_out;
  Alcotest.(check int) "error" 3 c.Slo.failed;
  Server.stop t;
  (* After stop every submit resolves 503 and counts as shed. *)
  Alcotest.(check int) "post-stop" 503 (code "fast");
  Alcotest.(check int) "post-stop rejected" 1
    (Slo.counts (Server.slo t)).Slo.rejected

let test_explain_ring () =
  let config =
    { Server.default_config with Server.request_timeout = None; explain_ring = 2 }
  in
  let t = make_server ~config () in
  let r1 = Server.submit t "note" in
  let r2 = Server.submit t "note" in
  let r3 = Server.submit t "note" in
  (* "fast" records nothing, so nothing is stored for it. *)
  let r4 = Server.submit t "fast" in
  (match Server.explain t r3.Server.rs_id with
  | Some report -> check_contains "explain" report "served"
  | None -> Alcotest.fail "explain of a recent request should be retained");
  Alcotest.(check bool) "ring evicts oldest" true
    (Server.explain t r1.Server.rs_id = None);
  Alcotest.(check bool) "second still present" true
    (Server.explain t r2.Server.rs_id <> None);
  Alcotest.(check bool) "event-free request stores nothing" true
    (Server.explain t r4.Server.rs_id = None);
  Server.stop t

let test_slow_query_retention () =
  let config =
    { Server.default_config with
      Server.request_timeout = None;
      explain_ring = 1;
      slow_query = Some 0.05 }
  in
  let t = make_server ~config () in
  let slow = Server.submit t "slownote" in
  Alcotest.(check bool) "trace id minted" true
    (String.length slow.Server.rs_trace > 0);
  (* Churn the one-slot ring well past the slow request. *)
  let r2 = Server.submit t "note" in
  let r3 = Server.submit t "note" in
  Alcotest.(check bool) "ring evicted the older capture" true
    (Server.explain t r2.Server.rs_id = None);
  Alcotest.(check bool) "latest still in ring" true
    (Server.explain t r3.Server.rs_id <> None);
  (match Server.explain t slow.Server.rs_id with
  | Some report ->
    check_contains "slow capture" report "served slowly";
    (* The capture carries the same trace id the response reported. *)
    check_contains "slow capture trace" report
      ("trace " ^ slow.Server.rs_trace)
  | None -> Alcotest.fail "slow request should be retained outside the ring");
  (* Fast requests do not hit the slow store: evicted ones stay evicted. *)
  Server.stop t;
  (* Determinism: the trace id derives from (seed, id), so an identical
     server mints the identical id for request 0. *)
  let t2 = make_server ~config () in
  let slow2 = Server.submit t2 "slownote" in
  Server.stop t2;
  Alcotest.(check string) "trace ids deterministic" slow.Server.rs_trace
    slow2.Server.rs_trace

let test_worker_kills () =
  let config =
    { Server.default_config with
      Server.max_concurrent = 2;
      queue_bound = 64;
      request_timeout = None }
  in
  let t = make_server ~config () in
  Server.inject_kills t 2;
  let codes = Array.make 20 0 in
  let threads =
    List.init 4 (fun c ->
        Thread.create
          (fun () ->
            for i = 0 to 4 do
              codes.((c * 5) + i) <- (Server.submit t "fast").Server.rs_code
            done)
          ())
  in
  List.iter Thread.join threads;
  Server.stop t;
  Array.iter (fun c -> Alcotest.(check int) "all served" 200 c) codes;
  Alcotest.(check int) "all counted" 20 (Slo.counts (Server.slo t)).Slo.total

(* --- HTTP front end: hammer + overload --- *)

let http_request port req =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      ignore (Unix.write_substring fd req 0 (String.length req));
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec go () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          go ()
      in
      go ();
      Buffer.contents buf)

let http_get port path =
  http_request port
    (Printf.sprintf "GET %s HTTP/1.1\r\nHost: localhost\r\n\r\n" path)

let http_post port path body =
  http_request port
    (Printf.sprintf
       "POST %s HTTP/1.1\r\n\
        Host: localhost\r\n\
        Content-Type: application/json\r\n\
        Content-Length: %d\r\n\
        \r\n\
        %s"
       path (String.length body) body)

let status_of response =
  match String.split_on_char ' ' response with
  | _ :: code :: _ -> int_of_string code
  | _ -> Alcotest.failf "unparseable response %S" response

(* Full-read check: the advertised Content-Length matches the body. *)
let assert_complete what response =
  let idx =
    let rec find i =
      if i + 4 > String.length response then
        Alcotest.failf "%s: no header terminator" what
      else if String.sub response i 4 = "\r\n\r\n" then i
      else find (i + 1)
    in
    find 0
  in
  let headers = String.sub response 0 idx in
  let body = String.sub response (idx + 4) (String.length response - idx - 4) in
  let want =
    String.split_on_char '\n' headers
    |> List.find_map (fun line ->
           match String.index_opt line ':' with
           | Some i
             when String.lowercase_ascii (String.trim (String.sub line 0 i))
                  = "content-length" ->
             int_of_string_opt
               (String.trim
                  (String.sub line (i + 1) (String.length line - i - 1)))
           | _ -> None)
  in
  match want with
  | None -> Alcotest.failf "%s: no Content-Length" what
  | Some w ->
    Alcotest.(check int) (what ^ ": complete body") w (String.length body);
    body

let test_http_hammer () =
  let ctx = Ctx.null () in
  let config =
    { Server.default_config with
      Server.max_concurrent = 2;
      queue_bound = 4;
      request_timeout = None;
      explain_ring = 0 }
  in
  let t = make_server ~ctx ~config () in
  match Server.listen t ~port:0 with
  | Error e -> Alcotest.fail e
  | Ok port ->
    Alcotest.(check int) "port accessor" port (Server.port t);
    let n_threads = 8 and per_thread = 6 in
    let rejected_seen = Atomic.make 0 in
    let worker i =
      for k = 0 to per_thread - 1 do
        if (i + k) mod 3 = 0 then begin
          let resp = http_get port "/metrics" in
          Alcotest.(check int) "metrics scrape" 200 (status_of resp);
          ignore (assert_complete "metrics" resp)
        end
        else begin
          let resp = http_post port "/query" {|{"query": "slow"}|} in
          let body = assert_complete "query" resp in
          match status_of resp with
          | 200 -> check_contains "query body" body "\"status\":\"ok\""
          | 429 ->
            Atomic.incr rejected_seen;
            check_contains "429 advises retry" resp "Retry-After: 1"
          | other -> Alcotest.failf "unexpected status %d" other
        end
      done
    in
    let threads = List.init n_threads (fun i -> Thread.create worker i) in
    List.iter Thread.join threads;
    Server.stop t;
    let c = Slo.counts (Server.slo t) in
    Alcotest.(check int) "client 429s equal server.rejected"
      (Atomic.get rejected_seen) c.Slo.rejected;
    Alcotest.(check int) "every query accounted" (c.Slo.ok + c.Slo.rejected)
      c.Slo.total;
    (* The occupancy gauges return to zero after the drain. *)
    Alcotest.(check (float 0.0)) "queue-depth gauge" 0.0
      (gauge_value ctx "server.queue_depth");
    Alcotest.(check (float 0.0)) "in-flight gauge" 0.0
      (gauge_value ctx "server.in_flight")

let test_http_overload_and_endpoints () =
  let ctx = Ctx.null () in
  let config =
    { Server.default_config with
      Server.max_concurrent = 1;
      queue_bound = 0;
      request_timeout = None;
      explain_ring = 0 }
  in
  let t = make_server ~ctx ~config () in
  match Server.listen t ~port:0 with
  | Error e -> Alcotest.fail e
  | Ok port ->
    let statuses = Array.make 6 0 in
    let threads =
      List.init 6 (fun i ->
          Thread.create
            (fun () ->
              statuses.(i) <-
                status_of (http_post port "/query" {|{"query": "slow"}|}))
            ())
    in
    List.iter Thread.join threads;
    let count v = Array.to_list statuses |> List.filter (( = ) v) |> List.length in
    Alcotest.(check bool) "some served" true (count 200 >= 1);
    Alcotest.(check bool) "overload sheds 429s" true (count 429 >= 1);
    Alcotest.(check int) "nothing lost" 6 (count 200 + count 429);
    let c = Slo.counts (Server.slo t) in
    Alcotest.(check int) "server.rejected matches" (count 429) c.Slo.rejected;
    (* The sibling endpoints under load. *)
    check_contains "/queries" (http_get port "/queries") "\"fast\"";
    check_contains "/slo" (http_get port "/slo") "SLO report";
    check_contains "/healthz" (http_get port "/healthz") "ok";
    check_contains "/metrics" (http_get port "/metrics")
      "monsoon_server_requests_total";
    Alcotest.(check int) "bad body" 400
      (status_of (http_post port "/query" "not json"));
    Alcotest.(check int) "missing field" 400
      (status_of (http_post port "/query" "{}"));
    Alcotest.(check int) "unknown path" 404 (status_of (http_get port "/nope"));
    Server.stop t;
    Alcotest.(check int) "connection refused after stop" (-1)
      (try status_of (http_get port "/healthz") with Unix.Unix_error _ -> -1)

(* --- load client + load generator --- *)

let test_load_client_in_process () =
  let t = make_server () in
  let client = Load_client.in_process t in
  (match Load_client.query client "fast" with
  | Ok o ->
    Alcotest.(check string) "status" "ok" o.Load_client.o_status;
    Alcotest.(check int) "code" 200 o.Load_client.o_code
  | Error e -> Alcotest.fail e);
  (match Load_client.queries client with
  | Ok qs -> Alcotest.(check (list string)) "advertised"
      [ "fast"; "slow"; "note"; "degraded" ] qs
  | Error e -> Alcotest.fail e);
  (match Load_client.slo_report client with
  | Ok r -> check_contains "slo report" r "SLO report (1 requests)"
  | Error e -> Alcotest.fail e);
  Server.stop t

let test_load_client_http () =
  let t = make_server () in
  match Server.listen t ~port:0 with
  | Error e -> Alcotest.fail e
  | Ok port ->
    let client = Load_client.http ~port () in
    (match Load_client.query client "degraded" with
    | Ok o ->
      Alcotest.(check string) "status" "degraded" o.Load_client.o_status;
      Alcotest.(check int) "code" 200 o.Load_client.o_code
    | Error e -> Alcotest.fail e);
    (match Load_client.queries client with
    | Ok qs -> Alcotest.(check int) "four queries" 4 (List.length qs)
    | Error e -> Alcotest.fail e);
    Server.stop t;
    match Load_client.query client "fast" with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "query after stop should be a transport error"

let test_load_client_keep_alive () =
  let t = make_server () in
  match Server.listen t ~port:0 with
  | Error e -> Alcotest.fail e
  | Ok port ->
    let client = Load_client.http ~port () in
    for _ = 1 to 10 do
      match Load_client.query client "fast" with
      | Ok o -> Alcotest.(check int) "served" 200 o.Load_client.o_code
      | Error e -> Alcotest.fail e
    done;
    (* Keep-alive reuse: ten requests over one TCP connection. *)
    Alcotest.(check int) "one connection for ten requests" 1
      (Load_client.connections client);
    Server.stop t;
    (* The pooled connection is dead after stop; the client reconnects,
       fails, and reports a transport error instead of hanging. *)
    (match Load_client.query client "fast" with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail "query after stop should be a transport error")

let test_http_trace_header_and_keep_alive_optin () =
  let config = { Server.default_config with Server.request_timeout = None } in
  let t = make_server ~config () in
  match Server.listen t ~port:0 with
  | Error e -> Alcotest.fail e
  | Ok port ->
    (* Default clients (no Connection header) keep close semantics: the
       read-to-EOF in [http_request] terminating at all proves the server
       closed the connection. *)
    let resp = http_post port "/query" {|{"query": "fast"}|} in
    let body = assert_complete "query" resp in
    check_contains "close by default" resp "Connection: close";
    check_contains "trace header" resp "X-Monsoon-Trace: t-0-";
    check_contains "trace in body" body "\"trace\":\"t-0-";
    Server.stop t

let lg_config = { Monsoon_harness.Loadgen.arrival = Monsoon_harness.Loadgen.Closed 3;
                  stop = Monsoon_harness.Loadgen.Requests 30;
                  seed = 7 }

let test_loadgen_schedule () =
  let open Monsoon_harness in
  let queries = [ "a"; "b"; "c" ] in
  let s1 = Loadgen.schedule lg_config ~queries in
  let s2 = Loadgen.schedule lg_config ~queries in
  Alcotest.(check int) "length" 30 (List.length s1);
  Alcotest.(check bool) "deterministic" true (s1 = s2);
  List.iter
    (fun (i, c, q) ->
      Alcotest.(check int) "round robin" (i mod 3) c;
      Alcotest.(check bool) "known query" true (List.mem q queries))
    s1;
  (* A different seed lays out a different query sequence. *)
  let s3 = Loadgen.schedule { lg_config with Loadgen.seed = 8 } ~queries in
  Alcotest.(check bool) "seed-sensitive" true (s1 <> s3)

let fingerprint_counts samples =
  List.sort compare
    (List.map
       (fun q ->
         ( q,
           List.length
             (List.filter
                (fun s -> s.Monsoon_harness.Loadgen.s_query = q)
                samples) ))
       [ "fast"; "slow"; "note"; "degraded" ])

let run_closed_once () =
  let open Monsoon_harness in
  let config =
    { Server.default_config with
      Server.max_concurrent = 2;
      request_timeout = None;
      explain_ring = 0 }
  in
  let t = make_server ~config () in
  let result =
    Loadgen.run (Load_client.in_process t) lg_config
      ~queries:[ "fast"; "slow"; "note"; "degraded" ]
  in
  Server.stop t;
  result

let test_loadgen_closed_loop_deterministic () =
  let open Monsoon_harness in
  let r1 = run_closed_once () in
  let r2 = run_closed_once () in
  let shape r =
    List.map
      (fun s ->
        (s.Loadgen.s_index, s.Loadgen.s_client, s.Loadgen.s_query,
         s.Loadgen.s_status))
      r.Loadgen.samples
  in
  Alcotest.(check int) "all issued" 30 (List.length r1.Loadgen.samples);
  (* The determinism contract: ordering, client assignment, query choice
     and outcome are byte-stable run to run. *)
  Alcotest.(check bool) "byte-stable shape" true (shape r1 = shape r2);
  Alcotest.(check bool) "byte-stable fingerprint counts" true
    (fingerprint_counts r1.Loadgen.samples
    = fingerprint_counts r2.Loadgen.samples);
  List.iter
    (fun s ->
      let want = if s.Loadgen.s_query = "degraded" then "degraded" else "ok" in
      Alcotest.(check string) "status tracks query" want s.Loadgen.s_status)
    r1.Loadgen.samples

let test_loadgen_open_loop_and_json () =
  let open Monsoon_harness in
  let config =
    { Server.default_config with
      Server.max_concurrent = 2;
      queue_bound = 64;
      request_timeout = None;
      explain_ring = 0 }
  in
  let t = make_server ~config () in
  let lg =
    { Loadgen.arrival = Loadgen.Open 300.0;
      stop = Loadgen.Requests 20;
      seed = 11 }
  in
  let result =
    Loadgen.run (Load_client.in_process t) lg ~queries:[ "fast"; "note" ]
  in
  Server.stop t;
  Alcotest.(check int) "all issued" 20 (List.length result.Loadgen.samples);
  List.iteri
    (fun i s -> Alcotest.(check int) "issue order" i s.Loadgen.s_index)
    result.Loadgen.samples;
  let text = Loadgen.report result in
  check_contains "report" text "Per-fingerprint breakdown";
  check_contains "report" text "TOTAL";
  check_contains "report" text "fast";
  (match Loadgen.to_json result with
  | Json.Obj _ as j ->
    Alcotest.(check (option int)) "json request count" (Some 20)
      (Option.bind (Json.member "requests" j) Json.to_int);
    (* The JSON report round-trips through the parser. *)
    (match Json.of_string (Json.to_string j) with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e)
  | _ -> Alcotest.fail "to_json should be an object")

(* --- end to end: the real Monsoon handler under faults --- *)

let test_end_to_end_service_chaos () =
  let open Monsoon_harness in
  let profile = Experiments.quick in
  (* The udf rate is per UDF *evaluation* (thousands per query), so a
     survivable rate is tiny — see the README's chaos section. At this
     rate the degradation ladder absorbs every fault on the fallback
     plan; at higher rates the fallback faults too and the request
     legitimately reports 500 (the suite harness retries those; the
     server does not). One closed-loop client keeps request-id
     assignment (hence per-request fault streams) deterministic, so the
     outcome set is pinned, not probabilistic. *)
  let faults =
    match Fault.spec_of_string "udf:0.000015,worker:1" with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  match Experiments.service profile ~experiment:"imdb" ~faults () with
  | Error e -> Alcotest.fail e
  | Ok (handler, names) ->
    Alcotest.(check bool) "suite advertised" true (List.length names > 0);
    let config =
      { Server.default_config with
        Server.max_concurrent = 2;
        queue_bound = 16;
        request_timeout = None;
        explain_ring = 0;
        seed = profile.Experiments.seed }
    in
    let t = Server.create ~queries:names config handler in
    Server.inject_kills t 1;
    let lg =
      { Loadgen.arrival = Loadgen.Closed 1;
        stop = Loadgen.Requests 8;
        seed = 42 }
    in
    let result = Loadgen.run (Load_client.in_process t) lg ~queries:names in
    Server.stop t;
    Alcotest.(check int) "all issued" 8 (List.length result.Loadgen.samples);
    (* Chaos must degrade requests, not fail them: every sample served. *)
    List.iter
      (fun s ->
        Alcotest.(check bool)
          (Printf.sprintf "%s served (%s)" s.Loadgen.s_query
             s.Loadgen.s_status)
          true
          (List.mem s.Loadgen.s_status [ "ok"; "degraded" ]))
      result.Loadgen.samples;
    let degraded =
      List.length
        (List.filter
           (fun s -> s.Loadgen.s_status = "degraded")
           result.Loadgen.samples)
    in
    Alcotest.(check bool) "chaos visibly degraded some requests" true
      (degraded >= 1);
    let c = Slo.counts (Server.slo t) in
    Alcotest.(check int) "accounted" 8 (c.Slo.ok + c.Slo.degraded)

let () =
  Alcotest.run "server"
    [ ( "admission",
        [ Alcotest.test_case "slots, queue, reject, drain" `Quick
            test_admission_basics;
          Alcotest.test_case "deadlines in the queue" `Quick
            test_admission_deadline ] );
      ( "slo",
        [ Alcotest.test_case "counts and registry" `Quick test_slo_counts;
          Alcotest.test_case "golden report" `Quick test_slo_report_golden;
          Alcotest.test_case "per-class rows and labels" `Quick
            test_slo_per_class;
          Alcotest.test_case "zero observations" `Quick
            test_slo_zero_observations ] );
      ( "server",
        [ Alcotest.test_case "submit outcome mapping" `Quick
            test_submit_outcomes;
          Alcotest.test_case "explain ring" `Quick test_explain_ring;
          Alcotest.test_case "slow-query retention" `Quick
            test_slow_query_retention;
          Alcotest.test_case "worker kills" `Quick test_worker_kills ] );
      ( "http",
        [ Alcotest.test_case "concurrent hammer" `Quick test_http_hammer;
          Alcotest.test_case "overload and endpoints" `Quick
            test_http_overload_and_endpoints;
          Alcotest.test_case "trace header, close by default" `Quick
            test_http_trace_header_and_keep_alive_optin ] );
      ( "load",
        [ Alcotest.test_case "client in process" `Quick
            test_load_client_in_process;
          Alcotest.test_case "client over http" `Quick test_load_client_http;
          Alcotest.test_case "client keep-alive reuse" `Quick
            test_load_client_keep_alive;
          Alcotest.test_case "schedule determinism" `Quick
            test_loadgen_schedule;
          Alcotest.test_case "closed loop determinism" `Quick
            test_loadgen_closed_loop_deterministic;
          Alcotest.test_case "open loop + json" `Quick
            test_loadgen_open_loop_and_json ] );
      ( "end-to-end",
        [ Alcotest.test_case "monsoon service under chaos" `Quick
            test_end_to_end_service_chaos ] ) ]
