(* Old-vs-new engine equivalence: the vectorized columnar {!Executor}
   against the frozen row-at-a-time {!Row_engine}, over an identical
   sequence of EXECUTE steps per (workload, query, plan, budget,
   environment) cell. Everything observable must be bit-identical: charged
   cost, [stat_obs] (counts, distincts, stats_cost, obs_nodes in completion
   order), result rows, total produced, Σ objects, remaining budget, and
   which exception (Timeout / fault / deadline) ends a step. *)

open Monsoon_util
open Monsoon_storage
open Monsoon_relalg
open Monsoon_workloads
module E = Monsoon_exec.Executor
module R = Monsoon_exec.Row_engine

(* One fingerprint string per step: hex floats are bit-exact, Expr.key is
   shape-exact, and string equality gives readable Alcotest diffs. *)
let fp_counts cs =
  String.concat ","
    (List.map (fun (m, c) -> Printf.sprintf "%d=%h" (m : Relset.t) c) cs)

let fp_distincts ds =
  String.concat ","
    (List.map (fun (tm, d) -> Printf.sprintf "%d=%h" tm d) ds)

let fp_nodes ns =
  String.concat ","
    (List.map (fun (e, c) -> Printf.sprintf "%s=%h" (Expr.key e) c) ns)

let fp_rows rows =
  (* Cardinality plus a content hash: full row dumps would drown the diff. *)
  Printf.sprintf "%d#%Lx" (Array.length rows)
    (Array.fold_left
       (fun acc row ->
         Array.fold_left
           (fun acc v -> Hashing.combine acc (Value.hash v))
           (Hashing.combine acc 17L) row)
       0L rows)

let run_new ?env cat q ~budget exprs =
  let bud = E.budget budget in
  let exec = E.create ?env cat q bud in
  let steps =
    List.map
      (fun e ->
        match E.execute exec e with
        | cost, obs ->
          Printf.sprintf "cost=%h counts=[%s] dist=[%s] sc=%h nodes=[%s] rows=%s"
            cost
            (fp_counts obs.E.obs_counts)
            (fp_distincts obs.E.obs_distincts)
            obs.E.obs_stats_cost
            (fp_nodes obs.E.obs_nodes)
            (fp_rows (E.result_rows exec e))
        | exception E.Timeout -> "timeout"
        | exception Fault.Injected reason -> "fault:" ^ reason
        | exception Deadline.Expired -> "deadline")
      exprs
  in
  Printf.sprintf "%s | produced=%h sigma=%h left=%h"
    (String.concat " ; " steps)
    (E.total_produced exec) (E.sigma_objects exec) bud.E.remaining

let run_old ?env cat q ~budget exprs =
  let bud = R.budget budget in
  let exec = R.create ?env cat q bud in
  let steps =
    List.map
      (fun e ->
        match R.execute exec e with
        | cost, obs ->
          Printf.sprintf "cost=%h counts=[%s] dist=[%s] sc=%h nodes=[%s] rows=%s"
            cost
            (fp_counts obs.R.obs_counts)
            (fp_distincts obs.R.obs_distincts)
            obs.R.obs_stats_cost
            (fp_nodes obs.R.obs_nodes)
            (fp_rows (R.result_rows exec e))
        | exception R.Timeout -> "timeout"
        | exception Fault.Injected reason -> "fault:" ^ reason
        | exception Deadline.Expired -> "deadline")
      exprs
  in
  Printf.sprintf "%s | produced=%h sigma=%h left=%h"
    (String.concat " ; " steps)
    (R.total_produced exec) (R.sigma_objects exec) bud.R.remaining

let check_cell ~label ?env_new ?env_old cat q ~budget exprs =
  Alcotest.(check string)
    label
    (run_old ?env:env_old cat q ~budget exprs)
    (run_new ?env:env_new cat q ~budget exprs)

(* Step sequences per query: a Σ pass on a base, a join prefix (later
   reused from cache), the full left-deep plan, the full plan again (pure
   cache hit), then Σ on the now-cached prefix, then the reversed join
   order (distinct shape, same final mask). *)
let step_sequences q =
  let n = Query.n_rels q in
  let left_deep order =
    List.fold_left
      (fun acc i -> Expr.join acc (Expr.base i))
      (Expr.base (List.hd order))
      (List.tl order)
  in
  let fwd = List.init n Fun.id in
  let rev = List.rev fwd in
  if n = 1 then [ [ Expr.stats (Expr.base 0); Expr.base 0 ] ]
  else begin
    let prefix = left_deep (List.filteri (fun i _ -> i < 2) fwd) in
    [ [ Expr.stats (Expr.base 0);
        prefix;
        left_deep fwd;
        left_deep fwd;
        Expr.stats prefix;
        left_deep rev ] ]
  end

let check_workload ?(budget = 1e7) ?(queries = max_int) (w : Workload.t) =
  List.iteri
    (fun i (name, q) ->
      if i < queries then
        List.iter
          (fun exprs ->
            check_cell
              ~label:(Printf.sprintf "%s/%s" w.Workload.name name)
              w.Workload.catalog q ~budget exprs)
          (step_sequences q))
    w.Workload.queries

let test_tpch () =
  check_workload ~queries:4
    (Tpch.workload { Tpch.seed = 11; scale = 0.05; skew = Tpch.Plain })

let test_tpch_skewed () =
  check_workload ~queries:3
    (Tpch.workload { Tpch.seed = 12; scale = 0.05; skew = Tpch.High })

let test_ott () =
  check_workload ~queries:3
    (Ott.workload { Ott.seed = 13; scale = 0.2; domain = 40 })

let test_imdb () =
  check_workload ~queries:3
    (Imdb.workload { Imdb.seed = 14; scale = 0.05 })

(* Opaque (non-identity) UDF terms force the scalar fallback inside the
   vectorized engine; the fallback must still match the frozen engine. *)
let test_udf_bench () =
  check_workload ~queries:2
    (Udf_bench.workload
       { Udf_bench.seed = 15; imdb_scale = 0.04; tpch_scale = 0.04 })

(* Hostile value semantics: NaN / -0. float join keys, dictionary string
   keys, and a Null-poisoned int column (demoted to the boxed fallback). *)
let tricky_fixture () =
  let cat = Catalog.create () in
  let fvals = [| 1.5; Float.nan; -0.0; 0.0; 2.5; Float.nan; 1.5 |] in
  let svals = [| "ash"; "birch"; "cedar" |] in
  let mk name n offset =
    let schema =
      Schema.make
        [ { Schema.name = "f"; ty = Value.TFloat };
          { Schema.name = "s"; ty = Value.TStr };
          { Schema.name = "n"; ty = Value.TInt } ]
    in
    Table.of_row_array ~name schema
      (Array.init n (fun i ->
           [| Value.Float fvals.((i + offset) mod Array.length fvals);
              Value.Str svals.((i + offset) mod Array.length svals);
              (if (i + offset) mod 7 = 0 then Value.Null else Value.Int (i mod 5))
           |]))
  in
  Catalog.add cat (mk "A" 60 0);
  Catalog.add cat (mk "B" 45 3);
  cat

let tricky_query ~on ~select =
  let b = Query.Builder.create ~name:(Printf.sprintf "tricky-%s" on) in
  let a = Query.Builder.rel b ~table:"A" ~alias:"A" in
  let c = Query.Builder.rel b ~table:"B" ~alias:"B" in
  let ta = Query.Builder.term b (Udf.identity on) [ (a, on) ] in
  let tb = Query.Builder.term b (Udf.identity on) [ (c, on) ] in
  Query.Builder.join_pred b ta tb;
  (match select with
  | Some (col, v) ->
    let ts = Query.Builder.term b (Udf.identity col) [ (a, col) ] in
    Query.Builder.select_pred b ts v
  | None -> ());
  Query.Builder.build b

let test_tricky_values () =
  let cat = tricky_fixture () in
  List.iter
    (fun (on, select) ->
      let q = tricky_query ~on ~select in
      let full = Expr.join (Expr.base 0) (Expr.base 1) in
      check_cell
        ~label:("tricky join on " ^ on)
        cat q ~budget:1e7
        [ Expr.stats (Expr.base 0); Expr.stats (Expr.base 1); full ])
    [ ("f", None);
      ("s", None);
      ("n", None);
      ("f", Some ("s", Value.Str "birch"));
      ("s", Some ("n", Value.Int 2));
      ("n", Some ("f", Value.Float Float.nan)) ]

(* No connecting predicate: the cross-product path. *)
let test_cross_product () =
  let cat = tricky_fixture () in
  let b = Query.Builder.create ~name:"cross" in
  let a = Query.Builder.rel b ~table:"A" ~alias:"A" in
  let _ = Query.Builder.rel b ~table:"B" ~alias:"B" in
  let ts = Query.Builder.term b (Udf.identity "s") [ (a, "s") ] in
  Query.Builder.select_pred b ts (Value.Str "ash");
  let q = Query.Builder.build b in
  check_cell ~label:"cross product" cat q ~budget:1e7
    [ Expr.join (Expr.base 0) (Expr.base 1) ]

(* Budget exhaustion: both engines must stop at exactly the same emitted
   tuple, leaving identical produced totals and remaining budgets. *)
let test_budget_timeout_parity () =
  let w = Tpch.workload { Tpch.seed = 16; scale = 0.05; skew = Tpch.Plain } in
  List.iter
    (fun budget ->
      List.iteri
        (fun i (name, q) ->
          if i < 3 then
            List.iter
              (fun exprs ->
                check_cell
                  ~label:(Printf.sprintf "timeout %s @%g" name budget)
                  w.Workload.catalog q ~budget exprs)
              (step_sequences q))
        w.Workload.queries)
    [ 50.0; 400.0; 3_000.0 ]

(* Fault checkpoints: same spec + same seed must fire at the same draw in
   both engines (an armed plan pins the new engine to the scalar path). *)
let test_fault_parity () =
  let w = Tpch.workload { Tpch.seed = 17; scale = 0.05; skew = Tpch.Plain } in
  let name, q = List.hd w.Workload.queries in
  List.iter
    (fun (spec, seed) ->
      let env_of () =
        Env.with_fault Env.default (Fault.plan spec (Rng.create seed))
      in
      List.iter
        (fun exprs ->
          check_cell
            ~label:(Printf.sprintf "fault %s %s" name (Fault.spec_to_string spec))
            ~env_new:(env_of ()) ~env_old:(env_of ()) w.Workload.catalog q
            ~budget:1e7 exprs)
        (step_sequences q))
    [ ({ Fault.no_faults with Fault.row_rate = 1.0 }, 5);
      ({ Fault.no_faults with Fault.udf_rate = 2e-4 }, 6);
      ({ Fault.no_faults with Fault.udf_rate = 1e-5; row_rate = 1e-5 }, 7);
      (Fault.no_faults, 8) ]

let test_deadline_parity () =
  let w = Tpch.workload { Tpch.seed = 18; scale = 0.05; skew = Tpch.Plain } in
  let _, q = List.hd w.Workload.queries in
  let env () = Env.with_deadline Env.default (Deadline.after 0.0) in
  List.iter
    (fun exprs ->
      check_cell ~label:"expired deadline" ~env_new:(env ()) ~env_old:(env ())
        w.Workload.catalog q ~budget:1e7 exprs)
    (step_sequences q)

let () =
  Alcotest.run "differential"
    [ ( "engine equivalence",
        [ Alcotest.test_case "tpch" `Quick test_tpch;
          Alcotest.test_case "tpch skewed" `Quick test_tpch_skewed;
          Alcotest.test_case "ott" `Quick test_ott;
          Alcotest.test_case "imdb" `Quick test_imdb;
          Alcotest.test_case "udf bench (opaque terms)" `Quick test_udf_bench;
          Alcotest.test_case "tricky values" `Quick test_tricky_values;
          Alcotest.test_case "cross product" `Quick test_cross_product ] );
      ( "checkpoints",
        [ Alcotest.test_case "budget timeout" `Quick test_budget_timeout_parity;
          Alcotest.test_case "fault plans" `Quick test_fault_parity;
          Alcotest.test_case "deadlines" `Quick test_deadline_parity ] ) ]
