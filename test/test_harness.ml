open Monsoon_baselines
open Monsoon_workloads
open Monsoon_harness

(* --- Report rendering --- *)

let contains s needle =
  let rec search i =
    i + String.length needle <= String.length s
    && (String.sub s i (String.length needle) = needle || search (i + 1))
  in
  search 0

let test_table_render () =
  let s =
    Report.table ~title:"T" ~header:[ "a"; "bb" ]
      [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (contains s needle))
    [ "T"; "a"; "bb"; "333"; "4" ]

let test_cost_format () =
  Alcotest.(check string) "giga" "1.50G" (Report.cost 1.5e9);
  Alcotest.(check string) "mega" "2.30M" (Report.cost 2.3e6);
  Alcotest.(check string) "kilo" "34.5k" (Report.cost 34_500.0);
  Alcotest.(check string) "small" "812" (Report.cost 812.0);
  Alcotest.(check string) "na" "N/A" (Report.opt_cost None)

let test_seconds_format () =
  Alcotest.(check string) "seconds" "2.50s" (Report.seconds 2.5);
  Alcotest.(check string) "millis" "150ms" (Report.seconds 0.15)

let test_series_render () =
  let s = Report.series ~title:"T" ~x_label:"x" ~y_label:"y" [ ("a", 10.0); ("b", 5.0) ] in
  Alcotest.(check bool) "contains bars" true (String.contains s '#')

(* --- Runner aggregation --- *)

let outcome ?(timed_out = false) cost =
  { Strategy.cost; timed_out; wall = 0.0; plan_time = 0.0; stats_cost = 0.0;
    result_card = 0.0; degraded = 0; plan = "" }

let row name cells =
  { Runner.strategy = name;
    cells =
      List.mapi
        (fun i o ->
          { Runner.query = Printf.sprintf "q%d" i; outcome = o; error = None;
            attempts = (match o with Some _ -> 1 | None -> 0) })
        cells }

let test_aggregate_no_timeouts () =
  let r = row "x" [ Some (outcome 10.0); Some (outcome 20.0); Some (outcome 60.0) ] in
  let a = Runner.aggregate ~budget:100.0 r in
  Alcotest.(check int) "timeouts" 0 a.Runner.timeouts;
  Alcotest.(check (option (float 0.01))) "mean" (Some 30.0) a.Runner.mean;
  Alcotest.(check (float 0.01)) "median" 20.0 a.Runner.median;
  Alcotest.(check (option (float 0.01))) "max" (Some 60.0) a.Runner.max_;
  Alcotest.(check int) "n" 3 a.Runner.n

let test_aggregate_with_timeouts () =
  let r = row "x" [ Some (outcome 10.0); Some (outcome ~timed_out:true 0.0) ] in
  let a = Runner.aggregate ~budget:100.0 r in
  Alcotest.(check int) "timeouts" 1 a.Runner.timeouts;
  Alcotest.(check (option (float 0.01))) "mean is N/A" None a.Runner.mean;
  (* Timeouts enter the median at the budget value, as in the paper. *)
  Alcotest.(check (float 0.01)) "median" 55.0 a.Runner.median;
  Alcotest.(check (option (float 0.01))) "max is TO" None a.Runner.max_

let test_aggregate_inapplicable_skipped () =
  let r = row "x" [ None; Some (outcome 10.0) ] in
  let a = Runner.aggregate ~budget:100.0 r in
  Alcotest.(check int) "n counts applicable only" 1 a.Runner.n

let test_relative_buckets () =
  let base = row "base" [ Some (outcome 100.0); Some (outcome 100.0); Some (outcome 100.0) ] in
  let other = row "other" [ Some (outcome 50.0); Some (outcome 100.0); Some (outcome 200.0) ] in
  let low, mid, high = Runner.relative_buckets ~baseline:base other in
  Alcotest.(check (float 0.1)) "low third" 33.3 low;
  Alcotest.(check (float 0.1)) "mid third" 33.3 mid;
  Alcotest.(check (float 0.1)) "high third" 33.3 high

let test_relative_buckets_timeout_is_high () =
  let base = row "base" [ Some (outcome 100.0) ] in
  let other = row "other" [ Some (outcome ~timed_out:true 1.0) ] in
  let _, _, high = Runner.relative_buckets ~baseline:base other in
  Alcotest.(check (float 0.1)) "timeout lands high" 100.0 high

let test_top_k () =
  let base =
    row "base" [ Some (outcome 5.0); Some (outcome 50.0); Some (outcome 20.0) ]
  in
  Alcotest.(check (list string)) "top 2" [ "q1"; "q2" ]
    (Runner.top_k_by ~baseline:base ~k:2);
  let filtered = Runner.filter_queries base [ "q1" ] in
  Alcotest.(check int) "filtered" 1 (List.length filtered.Runner.cells)

let test_run_suite_applicability () =
  (* On a workload with multi-instance UDFs, Postgres cells are None. *)
  let w =
    Udf_bench.workload { Udf_bench.seed = 3; imdb_scale = 0.02; tpch_scale = 0.02 }
  in
  let rows =
    Runner.run_suite
      { Runner.default_config with
        Runner.budget = 1e6;
        seed = 1;
        queries = Some [ "uq16" ];
        jobs = 1 }
      [ Strategy.postgres; Strategy.greedy ]
      w
  in
  (match rows with
  | [ pg; greedy ] ->
    Alcotest.(check bool) "postgres inapplicable" true
      ((List.hd pg.Runner.cells).Runner.outcome = None);
    Alcotest.(check bool) "greedy ran" true
      ((List.hd greedy.Runner.cells).Runner.outcome <> None)
  | _ -> Alcotest.fail "expected two rows")

(* --- Parallel suite determinism ---

   The headline invariant of the jobs knob: the row list is identical for
   every jobs value. Wall-clock fields aside, every outcome field is a
   deterministic function of (seed, strategy, query), so sequential and
   pooled runs must agree exactly. MONSOON_JOBS overrides the parallel
   width (the CI matrix runs 4). *)

let deterministic_fingerprint (rows : Runner.row list) =
  List.map
    (fun (r : Runner.row) ->
      ( r.Runner.strategy,
        List.map
          (fun (c : Runner.cell) ->
            ( c.Runner.query,
              Option.map
                (fun (o : Strategy.outcome) ->
                  ( o.Strategy.cost, o.Strategy.timed_out,
                    o.Strategy.stats_cost, o.Strategy.result_card,
                    o.Strategy.plan ))
                c.Runner.outcome ))
          r.Runner.cells ))
    rows

let test_jobs_invariance () =
  let jobs =
    match Option.bind (Sys.getenv_opt "MONSOON_JOBS") int_of_string_opt with
    | Some n when n >= 0 -> n
    | _ -> 4
  in
  let w =
    Tpch.workload { Tpch.seed = 11; scale = 0.05; skew = Tpch.Plain }
  in
  let strategies =
    [ Strategy.defaults; Strategy.greedy; Strategy.sampling;
      Strategy.monsoon ~iterations:60 ~scale_with_size:false
        Monsoon_stats.Prior.spike_and_slab ]
  in
  let config jobs =
    { Runner.default_config with
      Runner.budget = 1e6;
      seed = 11;
      queries = Some [ "tq1"; "tq2"; "tq12" ];
      jobs }
  in
  let seq = Runner.run_suite (config 1) strategies w in
  let par = Runner.run_suite (config jobs) strategies w in
  Alcotest.(check bool)
    (Printf.sprintf "rows identical for jobs=1 and jobs=%d" jobs)
    true
    (deterministic_fingerprint seq = deterministic_fingerprint par);
  (* Sanity: the suite did real work (some cost is non-zero). *)
  let some_cost =
    List.exists
      (fun (r : Runner.row) ->
        List.exists
          (fun (c : Runner.cell) ->
            match c.Runner.outcome with
            | Some o -> o.Strategy.cost > 0.0
            | None -> false)
          r.Runner.cells)
      seq
  in
  Alcotest.(check bool) "suite produced costs" true some_cost

let test_default_config () =
  Alcotest.(check int) "jobs default" 1 Runner.default_config.Runner.jobs;
  Alcotest.(check bool) "all queries" true
    (Runner.default_config.Runner.queries = None)

(* --- Experiments (fast ones, exactness) --- *)

let test_table1_exact () =
  let s = Experiments.table1 () in
  (* The four scenario rows must reproduce the paper's numbers. *)
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains s needle))
    [ "10.00M"; "1.00M"; "Both"; "((R⨝T)⨝S)"; "((R⨝S)⨝T)" ]

let test_figure2_has_all_priors () =
  let s = Experiments.figure2 () in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " present") true (contains s name))
    [ "Uniform"; "Increasing"; "Decreasing"; "U-Shaped"; "Low Biased" ]

let test_experiment_registry () =
  let ids = List.map (fun (id, _, _) -> id) Experiments.all in
  List.iter
    (fun id -> Alcotest.(check bool) (id ^ " registered") true (List.mem id ids))
    [ "table1"; "table2"; "table3"; "table4"; "table5"; "table6"; "table7";
      "table8"; "figure1"; "figure2"; "figure3"; "warmstart" ];
  Alcotest.(check int) "16 experiments" 16 (List.length ids)

let () =
  Alcotest.run "harness"
    [ ( "report",
        [ Alcotest.test_case "table" `Quick test_table_render;
          Alcotest.test_case "cost format" `Quick test_cost_format;
          Alcotest.test_case "seconds format" `Quick test_seconds_format;
          Alcotest.test_case "series" `Quick test_series_render ] );
      ( "runner",
        [ Alcotest.test_case "aggregate" `Quick test_aggregate_no_timeouts;
          Alcotest.test_case "aggregate timeouts" `Quick test_aggregate_with_timeouts;
          Alcotest.test_case "inapplicable skipped" `Quick test_aggregate_inapplicable_skipped;
          Alcotest.test_case "relative buckets" `Quick test_relative_buckets;
          Alcotest.test_case "timeout bucket" `Quick test_relative_buckets_timeout_is_high;
          Alcotest.test_case "top-k & filter" `Quick test_top_k;
          Alcotest.test_case "applicability" `Quick test_run_suite_applicability;
          Alcotest.test_case "default config" `Quick test_default_config;
          Alcotest.test_case "jobs invariance" `Slow test_jobs_invariance ] );
      ( "experiments",
        [ Alcotest.test_case "table1 exact" `Quick test_table1_exact;
          Alcotest.test_case "figure2 priors" `Quick test_figure2_has_all_priors;
          Alcotest.test_case "registry" `Quick test_experiment_registry ] ) ]
