(* The persistent cross-query statistics repository (lib/stats_repo):
   fingerprint determinism, flush → reopen round trips, the warm-start
   fallback ladder, snapshot / retention / diff maintenance, and the
   load-bearing invariant that an empty or absent repository never changes
   planning (byte-identical runner rows). *)

open Monsoon_relalg
open Monsoon_stats
open Monsoon_baselines
open Monsoon_workloads
open Monsoon_harness
module Stats_repo = Monsoon_stats_repo.Stats_repo

let fresh_path =
  let n = ref 0 in
  fun () ->
    incr n;
    let p =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "monsoon-test-repo-%d-%d.jsonl" (Unix.getpid ()) !n)
    in
    List.iter
      (fun f -> try Sys.remove f with Sys_error _ -> ())
      (p
      :: (try
            Sys.readdir (Filename.dirname p)
            |> Array.to_list
            |> List.filter_map (fun f ->
                   if
                     String.length f > String.length (Filename.basename p)
                     && String.sub f 0 (String.length (Filename.basename p))
                        = Filename.basename p
                   then Some (Filename.concat (Filename.dirname p) f)
                   else None)
          with Sys_error _ -> []));
    p

let q = Fixtures.sec23_query ()
let term i = Query.term q i

let contains s needle =
  let rec search i =
    i + String.length needle <= String.length s
    && (String.sub s i (String.length needle) = needle || search (i + 1))
  in
  search 0

(* --- Fingerprints --- *)

let test_fingerprints () =
  Alcotest.(check string) "count key carries query + mask"
    "sec2.3|R:R,S:S"
    (Stats_repo.count_key q (Relset.union (Relset.singleton 0) (Relset.singleton 1)));
  Alcotest.(check string) "distinct key is query-scoped"
    "sec2.3|id(a)(R.a)"
    (Stats_repo.distinct_key q (term 0));
  Alcotest.(check string) "udf key matches distinct key"
    (Stats_repo.distinct_key q (term 3))
    (Stats_repo.udf_key q (term 3))

(* --- Flush / reopen round trip and the fallback ladder --- *)

let test_roundtrip_and_ladder () =
  let path = fresh_path () in
  let writer = Stats_repo.open_ path in
  (* Term 0: three identical measurements — tight history. Term 1: wildly
     dispersed history. Term 2: never flushed. Term 3: UDF observations. *)
  for _ = 1 to 3 do
    ignore
      (Stats_repo.flush_query writer ~query:q
         ~counts:[ (Relset.singleton 0, 1000.0) ]
         ~distincts:[ (0, 5.0) ]
         ~udf:[ (3, 1000.0, 0.25) ])
  done;
  ignore
    (Stats_repo.flush_query writer ~query:q ~counts:[]
       ~distincts:[ (1, 1.0) ] ~udf:[]);
  ignore
    (Stats_repo.flush_query writer ~query:q ~counts:[]
       ~distincts:[ (1, 100.0) ] ~udf:[]);
  (* The writer's baseline is frozen at open: it must not see its own
     flushes (jobs-invariance of warm lookups). *)
  (match Stats_repo.lookup_distinct writer ~query:q ~term:(term 0) with
  | Stats_repo.Cold -> ()
  | _ -> Alcotest.fail "writer saw its own flushes");
  let repo = Stats_repo.open_ path in
  (match Stats_repo.lookup_distinct repo ~query:q ~term:(term 0) with
  | Stats_repo.Known d -> Alcotest.(check (float 1e-9)) "tight -> Known" 5.0 d
  | _ -> Alcotest.fail "tight history should seed a Known value");
  (match Stats_repo.lookup_distinct repo ~query:q ~term:(term 1) with
  | Stats_repo.Hint _ -> ()
  | _ -> Alcotest.fail "dispersed history should fall back to a Hint prior");
  (match Stats_repo.lookup_distinct repo ~query:q ~term:(term 2) with
  | Stats_repo.Cold -> ()
  | _ -> Alcotest.fail "absent history must stay Cold");
  (match Stats_repo.lookup_udf repo ~query:q ~term:(term 3) with
  | Some (evals, kept) ->
    Alcotest.(check (float 1e-9)) "mean evals" 1000.0 evals;
    Alcotest.(check (float 1e-9)) "mean kept fraction" 0.25 kept
  | None -> Alcotest.fail "udf history should resolve");
  Alcotest.(check (option string)) "udf of unmeasured term misses" None
    (Option.map (fun _ -> "hit")
       (Stats_repo.lookup_udf repo ~query:q ~term:(term 0)))

(* Line order must not matter: a repository written with --jobs 4 is a
   permutation of the sequential one, and every reader folds in canonical
   order. *)
let test_order_invariance () =
  let flush repo (tid, d) =
    ignore
      (Stats_repo.flush_query repo ~query:q ~counts:[] ~distincts:[ (tid, d) ]
         ~udf:[])
  in
  let obs = [ (0, 7.0); (1, 3.0); (0, 9.0); (1, 11.0) ] in
  let p1 = fresh_path () and p2 = fresh_path () in
  List.iter (flush (Stats_repo.open_ p1)) obs;
  List.iter (flush (Stats_repo.open_ p2)) (List.rev obs);
  let r1 = Stats_repo.open_ p1 and r2 = Stats_repo.open_ p2 in
  Alcotest.(check bool) "aggregates identical" true
    (Stats_repo.entries r1 = Stats_repo.entries r2);
  (* [show]'s header names the file; the rows below it must match. *)
  let rows s =
    match String.index_opt s '\n' with
    | Some i -> String.sub s (i + 1) (String.length s - i - 1)
    | None -> s
  in
  Alcotest.(check string) "renderings identical below the header"
    (rows (Stats_repo.show r1))
    (rows (Stats_repo.show r2))

(* --- Snapshots, retention, diff --- *)

let test_snapshots_gc_diff () =
  let path = fresh_path () in
  let repo = Stats_repo.open_ path in
  ignore
    (Stats_repo.flush_query repo ~query:q
       ~counts:[ (Relset.singleton 0, 1000.0) ]
       ~distincts:[ (0, 5.0) ] ~udf:[]);
  let s1 =
    match Stats_repo.snapshot repo with
    | Ok p -> p
    | Error msg -> Alcotest.fail msg
  in
  ignore
    (Stats_repo.flush_query repo ~query:q ~counts:[] ~distincts:[ (1, 8.0) ]
       ~udf:[]);
  let s2 =
    match Stats_repo.snapshot repo with
    | Ok p -> p
    | Error msg -> Alcotest.fail msg
  in
  Alcotest.(check (list string)) "snapshots oldest first" [ s1; s2 ]
    (Stats_repo.snapshots repo);
  (match Stats_repo.diff ~old_:s1 ~new_:s2 with
  | Error msg -> Alcotest.fail msg
  | Ok report ->
    Alcotest.(check bool) "one new key" true (contains report "1 new");
    Alcotest.(check bool) "nothing lost" true (contains report "0 lost");
    (* Deterministic: the same pair diffs to the same bytes. *)
    (match Stats_repo.diff ~old_:s1 ~new_:s2 with
    | Ok again -> Alcotest.(check string) "diff is byte-stable" report again
    | Error msg -> Alcotest.fail msg));
  (match Stats_repo.diff ~old_:s2 ~new_:s2 with
  | Error msg -> Alcotest.fail msg
  | Ok report ->
    Alcotest.(check bool) "self-diff reports no drift" true
      (contains report "0 new, 0 changed, 0 lost"));
  Alcotest.(check int) "gc removes the older snapshot" 1
    (Stats_repo.gc repo ~keep:1);
  Alcotest.(check (list string)) "newest survives" [ s2 ]
    (Stats_repo.snapshots repo);
  Alcotest.(check int) "gc is idempotent" 0 (Stats_repo.gc repo ~keep:1)

(* --- An empty / absent repository never changes planning --- *)

let deterministic_fingerprint (rows : Runner.row list) =
  List.map
    (fun (r : Runner.row) ->
      ( r.Runner.strategy,
        List.map
          (fun (c : Runner.cell) ->
            ( c.Runner.query,
              Option.map
                (fun (o : Strategy.outcome) ->
                  ( o.Strategy.cost, o.Strategy.timed_out,
                    o.Strategy.stats_cost, o.Strategy.result_card,
                    o.Strategy.plan ))
                c.Runner.outcome ))
          r.Runner.cells ))
    rows

let run_small_suite ?stats_repo ~seed () =
  let w = Tpch.workload { Tpch.seed = 11; scale = 0.05; skew = Tpch.Plain } in
  let config =
    { Runner.default_config with
      Runner.budget = 1e6;
      seed;
      queries = Some [ "tq1"; "tq2" ];
      jobs = 1 }
  in
  Runner.run_suite config
    [ Strategy.monsoon ~iterations:40 ~scale_with_size:false ?stats_repo
        Prior.spike_and_slab ]
    w

let prop_empty_repo_is_invisible =
  QCheck.Test.make ~name:"empty repository never changes planning" ~count:5
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let bare = run_small_suite ~seed () in
      let repo = Stats_repo.open_ (fresh_path ()) in
      let with_repo = run_small_suite ~stats_repo:repo ~seed () in
      deterministic_fingerprint bare = deterministic_fingerprint with_repo)

(* --- Warm dominance (the cold-vs-warm experiment's pinned verdict) --- *)

let test_warm_dominates () =
  let report =
    Experiments.warmstart ~repo_path:(fresh_path ()) Experiments.quick
  in
  Alcotest.(check bool)
    "warm strictly dominates cold on objects and replans" true
    (contains report "WARMSTART DOMINANCE: objects=yes replans=yes")

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "stats_repo"
    [ ( "repository",
        [ Alcotest.test_case "fingerprints" `Quick test_fingerprints;
          Alcotest.test_case "roundtrip + fallback ladder" `Quick
            test_roundtrip_and_ladder;
          Alcotest.test_case "order invariance" `Quick test_order_invariance;
          Alcotest.test_case "snapshots, gc, diff" `Quick
            test_snapshots_gc_diff ] );
      ("planning invariance", qc [ prop_empty_repo_is_invisible ]);
      ( "warm start",
        [ Alcotest.test_case "dominance" `Slow test_warm_dominates ] ) ]
