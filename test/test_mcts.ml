open Monsoon_util
open Monsoon_mcts

(* --- Tiny known MDPs --- *)

(* A one-shot choice: action i yields reward rewards.(i), then terminal. *)
let bandit rewards =
  { Mcts.actions = (fun s -> if s = -1 then [] else List.init (Array.length rewards) Fun.id);
    step = (fun _ a -> (-1, rewards.(a)));
    is_terminal = (fun s -> s = -1);
    key = string_of_int;
    rollout_policy = None }

(* A trap MDP: from the start, action 0 gives +5 now but forces a -100
   follow-up; action 1 gives 0 now and +10 later. Greedy-on-immediate picks
   the trap; a planner must look ahead. States: 0 start, 1 trap, 2 good,
   3 terminal. *)
let trap =
  { Mcts.actions =
      (fun s -> match s with 0 -> [ 0; 1 ] | 1 | 2 -> [ 0 ] | _ -> []);
    step =
      (fun s a ->
        match (s, a) with
        | 0, 0 -> (1, 5.0)
        | 0, 1 -> (2, 0.0)
        | 1, _ -> (3, -100.0)
        | 2, _ -> (3, 10.0)
        | _ -> assert false);
    is_terminal = (fun s -> s = 3);
    key = string_of_int;
    rollout_policy = None }

(* A stochastic MDP: action 0 is a fair gamble (±10), action 1 is a sure
   +1. Expected values 0 vs 1: the planner should prefer the sure thing. *)
let gamble rng =
  { Mcts.actions = (fun s -> if s = -1 then [] else [ 0; 1 ]);
    step =
      (fun _ a ->
        if a = 0 then (-1, if Rng.bool rng then 10.0 else -10.0)
        else (-1, 1.0));
    is_terminal = (fun s -> s = -1);
    key = string_of_int;
    rollout_policy = None }

let plan_with ?(iterations = 4000) ?selection problem state =
  let rng = Rng.create 7 in
  let cfg = Mcts.default_config ~rng in
  let cfg =
    { cfg with
      Mcts.iterations;
      selection = Option.value selection ~default:cfg.Mcts.selection }
  in
  Mcts.plan cfg problem state

let test_bandit_picks_best () =
  match plan_with (bandit [| 1.0; 5.0; 3.0 |]) 0 with
  | Some (a, _) -> Alcotest.(check int) "best arm" 1 a
  | None -> Alcotest.fail "no action"

let test_bandit_negative_costs () =
  (* All rewards negative (as in Monsoon): still picks the least bad. *)
  match plan_with (bandit [| -10.0; -2.0; -7.0 |]) 0 with
  | Some (a, _) -> Alcotest.(check int) "least cost" 1 a
  | None -> Alcotest.fail "no action"

let test_trap_avoided_uct () =
  match plan_with trap 0 with
  | Some (a, _) -> Alcotest.(check int) "avoids trap" 1 a
  | None -> Alcotest.fail "no action"

let test_trap_avoided_eps_greedy () =
  match plan_with ~selection:Mcts.Epsilon_greedy trap 0 with
  | Some (a, _) -> Alcotest.(check int) "avoids trap" 1 a
  | None -> Alcotest.fail "no action"

let test_gamble_prefers_sure_thing () =
  let rng = Rng.create 99 in
  match plan_with ~iterations:8000 (gamble rng) 0 with
  | Some (a, _) -> Alcotest.(check int) "sure +1" 1 a
  | None -> Alcotest.fail "no action"

let test_terminal_returns_none () =
  Alcotest.(check bool) "terminal" true (plan_with trap 3 = None)

let test_stats_populated () =
  match plan_with ~iterations:1000 trap 0 with
  | Some (_, st) ->
    Alcotest.(check bool) "visits counted" true (st.Mcts.chosen_visits > 0);
    Alcotest.(check int) "root visits = iterations" 1000 st.Mcts.root_visits
  | None -> Alcotest.fail "no action"

let test_deterministic_given_seed () =
  let run () =
    match plan_with (bandit [| 1.0; 5.0; 3.0 |]) 0 with
    | Some (a, st) -> (a, st.Mcts.chosen_visits)
    | None -> assert false
  in
  Alcotest.(check (pair int int)) "reproducible" (run ()) (run ())

(* A longer chain: rewards only at the end, testing credit assignment over
   depth. Moving right along a 6-state chain yields +10 at the end; bailing
   out yields +1 immediately. *)
let chain =
  let len = 6 in
  { Mcts.actions = (fun s -> if s >= len || s < 0 then [] else [ 0; 1 ]);
    step =
      (fun s a ->
        if a = 1 then ((-1), 1.0)
        else if s = len - 1 then (len, 10.0)
        else (s + 1, 0.0));
    is_terminal = (fun s -> s >= len || s < 0);
    key = string_of_int;
    rollout_policy = None }

let test_chain_long_horizon () =
  match plan_with ~iterations:8000 chain 0 with
  | Some (a, _) -> Alcotest.(check int) "keeps walking" 0 a
  | None -> Alcotest.fail "no action"

(* --- Root-parallel planning --- *)

let parallel_plan ?(workers = 2) ?(iterations = 2000) problem state =
  let rng = Rng.create 7 in
  let cfg = Mcts.default_config ~rng in
  let cfg = { cfg with Mcts.iterations } in
  Mcts.plan ~workers ~problem_of:(fun _rng -> problem) cfg problem state

let test_parallel_picks_best () =
  match parallel_plan (bandit [| 1.0; 5.0; 3.0 |]) 0 with
  | Some (a, _) -> Alcotest.(check int) "best arm" 1 a
  | None -> Alcotest.fail "no action"

let test_parallel_merges_root_stats () =
  (* Each of the [workers] trees runs [iterations / workers] iterations;
     the merged root carries all of them. *)
  match parallel_plan ~workers:4 ~iterations:2000 trap 0 with
  | Some (a, st) ->
    Alcotest.(check int) "avoids trap" 1 a;
    Alcotest.(check int) "merged root visits" 2000 st.Mcts.root_visits;
    Alcotest.(check bool) "chosen visits merged" true
      (st.Mcts.chosen_visits > 500);
    Alcotest.(check bool) "candidates carried over" true
      (List.length st.Mcts.candidates >= 2)
  | None -> Alcotest.fail "no action"

let test_parallel_problem_of_replicas () =
  (* Stochastic problems get a per-worker replica seeded by a split RNG, so
     each tree samples independently yet the whole run is seed-determined. *)
  let run () =
    let rng = Rng.create 7 in
    let cfg = { (Mcts.default_config ~rng) with Mcts.iterations = 4000 } in
    match
      Mcts.plan ~workers:2 ~problem_of:(fun r -> gamble r) cfg
        (gamble (Rng.create 0)) 0
    with
    | Some (a, st) -> (a, st.Mcts.chosen_visits)
    | None -> Alcotest.fail "no action"
  in
  let a, _ = run () in
  Alcotest.(check int) "sure +1" 1 a;
  Alcotest.(check (pair int int)) "reproducible across runs" (run ()) (run ())

let test_parallel_terminal_returns_none () =
  Alcotest.(check bool) "terminal" true (parallel_plan trap 3 = None)

let prop_bandit_always_optimal =
  QCheck.Test.make ~name:"bandit solved for random reward vectors" ~count:25
    QCheck.(array_of_size (QCheck.Gen.int_range 2 6) (float_range (-100.0) 100.0))
    (fun rewards ->
      QCheck.assume (Array.length rewards >= 2);
      (* Make the best arm unique and clearly separated. *)
      let best = ref 0 in
      Array.iteri (fun i v -> if v > rewards.(!best) then best := i) rewards;
      rewards.(!best) <- rewards.(!best) +. 50.0;
      match plan_with ~iterations:2000 (bandit rewards) 0 with
      | Some (a, _) -> a = !best
      | None -> false)

let () =
  Alcotest.run "mcts"
    [ ( "planning",
        [ Alcotest.test_case "bandit best arm" `Quick test_bandit_picks_best;
          Alcotest.test_case "bandit negative" `Quick test_bandit_negative_costs;
          Alcotest.test_case "trap avoided (UCT)" `Quick test_trap_avoided_uct;
          Alcotest.test_case "trap avoided (eps)" `Quick test_trap_avoided_eps_greedy;
          Alcotest.test_case "gamble" `Quick test_gamble_prefers_sure_thing;
          Alcotest.test_case "terminal none" `Quick test_terminal_returns_none;
          Alcotest.test_case "stats populated" `Quick test_stats_populated;
          Alcotest.test_case "deterministic" `Quick test_deterministic_given_seed;
          Alcotest.test_case "long horizon chain" `Quick test_chain_long_horizon ] );
      ( "root-parallel",
        [ Alcotest.test_case "parallel best arm" `Quick test_parallel_picks_best;
          Alcotest.test_case "merged root stats" `Quick
            test_parallel_merges_root_stats;
          Alcotest.test_case "per-worker replicas" `Quick
            test_parallel_problem_of_replicas;
          Alcotest.test_case "parallel terminal none" `Quick
            test_parallel_terminal_returns_none ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_bandit_always_optimal ]) ]
