(* The telemetry subsystem: histogram bucketing and merge, registry
   interning, span nesting and sinks (null / memory / JSONL round-trip),
   snapshot reports, and the driver's span-derived component breakdown. *)

open Monsoon_util
open Monsoon_telemetry
open Monsoon_core
open Monsoon_workloads

let contains s needle =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  go 0

(* --- Histograms --- *)

let test_histogram_buckets () =
  let h = Metric.Histogram.create () in
  Alcotest.(check (option int)) "1.0 -> bucket 0" (Some 0)
    (Metric.Histogram.bucket_index h 1.0);
  Alcotest.(check (option int)) "1.99 -> bucket 0" (Some 0)
    (Metric.Histogram.bucket_index h 1.99);
  Alcotest.(check (option int)) "2.0 -> bucket 1" (Some 1)
    (Metric.Histogram.bucket_index h 2.0);
  Alcotest.(check (option int)) "1024 -> bucket 10" (Some 10)
    (Metric.Histogram.bucket_index h 1024.0);
  Alcotest.(check (option int)) "0.5 -> bucket -1" (Some (-1))
    (Metric.Histogram.bucket_index h 0.5);
  Alcotest.(check (option int)) "0 -> underflow" None
    (Metric.Histogram.bucket_index h 0.0);
  Alcotest.(check (option int)) "negative -> underflow" None
    (Metric.Histogram.bucket_index h (-3.0));
  let lo, hi = Metric.Histogram.bucket_bounds h 0 in
  Alcotest.(check (float 1e-9)) "bucket 0 lower" 1.0 lo;
  Alcotest.(check (float 1e-9)) "bucket 0 upper" 2.0 hi;
  let h10 = Metric.Histogram.create ~base:10.0 () in
  Alcotest.(check (option int)) "base 10: 10 -> bucket 1" (Some 1)
    (Metric.Histogram.bucket_index h10 10.0);
  Alcotest.(check (option int)) "base 10: 100 -> bucket 2" (Some 2)
    (Metric.Histogram.bucket_index h10 100.0);
  Alcotest.(check (option int)) "base 10: 9.99 -> bucket 0" (Some 0)
    (Metric.Histogram.bucket_index h10 9.99)

let test_histogram_observe_and_quantile () =
  let h = Metric.Histogram.create () in
  List.iter (Metric.Histogram.observe h) [ 1.0; 1.5; 3.0; 0.0; 100.0 ];
  Alcotest.(check int) "count" 5 (Metric.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 105.5 (Metric.Histogram.sum h);
  Alcotest.(check (float 1e-9)) "min" 0.0 (Metric.Histogram.min_value h);
  Alcotest.(check (float 1e-9)) "max" 100.0 (Metric.Histogram.max_value h);
  (* Non-empty buckets, underflow first, then increasing bounds. *)
  (match Metric.Histogram.buckets h with
  | (None, 1) :: rest ->
    let lower = List.map (fun (b, _) -> fst (Option.get b)) rest in
    Alcotest.(check bool) "buckets increase" true
      (lower = List.sort compare lower)
  | _ -> Alcotest.fail "expected a leading underflow bucket");
  (* The q-th observation's bucket upper bound: 0 for the underflow value,
     a power of two otherwise. *)
  Alcotest.(check (float 1e-9)) "q=0 hits underflow" 0.0
    (Metric.Histogram.quantile h 0.0);
  Alcotest.(check (float 1e-9)) "q=1 hits the top bucket" 128.0
    (Metric.Histogram.quantile h 1.0)

let test_histogram_merge () =
  let h1 = Metric.Histogram.create () in
  let h2 = Metric.Histogram.create () in
  List.iter (Metric.Histogram.observe h1) [ 1.0; 2.0; 3.0 ];
  List.iter (Metric.Histogram.observe h2) [ 4.0; 5.0 ];
  let m = Metric.Histogram.merge h1 h2 in
  Alcotest.(check int) "merged count" 5 (Metric.Histogram.count m);
  Alcotest.(check (float 1e-9)) "merged sum" 15.0 (Metric.Histogram.sum m);
  Alcotest.(check (float 1e-9)) "merged min" 1.0 (Metric.Histogram.min_value m);
  Alcotest.(check (float 1e-9)) "merged max" 5.0 (Metric.Histogram.max_value m);
  (* Inputs untouched. *)
  Alcotest.(check int) "h1 untouched" 3 (Metric.Histogram.count h1);
  let other = Metric.Histogram.create ~base:10.0 () in
  Alcotest.check_raises "base mismatch"
    (Invalid_argument "Histogram.merge: different bases") (fun () ->
      ignore (Metric.Histogram.merge h1 other))

(* --- Registry --- *)

let test_registry_interning () =
  let r = Registry.create () in
  let c1 = Registry.counter r "hits" in
  let c2 = Registry.counter r "hits" in
  Metric.Counter.inc c1;
  Alcotest.(check (float 1e-9)) "same instrument" 1.0 (Metric.Counter.value c2);
  (* Labels intern order-independently. *)
  let l1 = Registry.counter r ~labels:[ ("b", "2"); ("a", "1") ] "hits" in
  let l2 = Registry.counter r ~labels:[ ("a", "1"); ("b", "2") ] "hits" in
  Metric.Counter.add l1 5.0;
  Alcotest.(check (float 1e-9)) "labels sorted" 5.0 (Metric.Counter.value l2);
  Alcotest.(check bool) "kind mismatch raises" true
    (match Registry.gauge r "hits" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check int) "two keys (unlabeled + labeled)" 2
    (List.length (Registry.to_list r))

(* --- Spans --- *)

let test_span_nesting () =
  let buf = Span.memory_buffer () in
  let tr = Span.make (Span.Memory buf) in
  let r =
    Span.with_span tr "outer" (fun outer ->
        Span.set_attr outer "k" (Span.Int 1);
        let x = Span.with_span tr "inner" (fun _ -> 21) in
        x * 2)
  in
  Alcotest.(check int) "result" 42 r;
  match Span.buffer_spans buf with
  | [ inner; outer ] ->
    Alcotest.(check string) "inner first (completion order)" "inner"
      inner.Span.name;
    Alcotest.(check string) "outer second" "outer" outer.Span.name;
    Alcotest.(check (option int)) "inner's parent" (Some outer.Span.id)
      inner.Span.parent;
    Alcotest.(check (option int)) "outer is a root" None outer.Span.parent;
    Alcotest.(check bool) "attr retained" true
      (List.mem_assoc "k" outer.Span.attrs);
    Alcotest.(check bool) "durations non-negative" true
      (Span.duration inner >= 0.0 && Span.duration outer >= Span.duration inner)
  | spans ->
    Alcotest.failf "expected two completed spans, got %d" (List.length spans)

let test_span_exception_closes () =
  let buf = Span.memory_buffer () in
  let tr = Span.make (Span.Memory buf) in
  (try Span.with_span tr "boom" (fun _ -> failwith "nope") with
  | Failure _ -> ());
  match Span.buffer_spans buf with
  | [ s ] ->
    Alcotest.(check bool) "closed" true (Float.is_finite s.Span.stop);
    Alcotest.(check bool) "error attr" true (List.mem_assoc "error" s.Span.attrs)
  | _ -> Alcotest.fail "expected one completed span"

let test_null_sink_noop () =
  let tr = Span.null () in
  Alcotest.(check bool) "disabled" false (Span.enabled tr);
  let seen = ref None in
  let r =
    Span.with_span tr "a" (fun s ->
        Span.set_attr s "k" (Span.Int 1);
        seen := Some s;
        Span.with_span tr "b" (fun s' -> if s == s' then 7 else 0))
  in
  (* Under Null every with_span hands out the same dummy span and set_attr
     does not accumulate on it. *)
  Alcotest.(check int) "dummy span shared" 7 r;
  Alcotest.(check int) "no attrs retained" 0
    (List.length (Option.get !seen).Span.attrs)

let test_jsonl_roundtrip () =
  let file = Filename.temp_file "monsoon_trace" ".jsonl" in
  let oc = open_out file in
  let tr = Span.make (Span.Jsonl oc) in
  ignore
    (Span.with_span tr "root"
       ~attrs:[ ("s", Span.Str "x\"y"); ("flag", Span.Bool true) ]
       (fun _ ->
         Span.with_span tr "child"
           ~attrs:[ ("n", Span.Int 42); ("f", Span.Float 2.5) ]
           (fun _ -> ())));
  close_out oc;
  match Span.load_jsonl file with
  | Error e -> Alcotest.fail e
  | Ok [ child; root ] ->
    Alcotest.(check string) "child name" "child" child.Span.name;
    Alcotest.(check (option int)) "parent link" (Some root.Span.id)
      child.Span.parent;
    Alcotest.(check bool) "int attr" true
      (List.assoc "n" child.Span.attrs = Span.Int 42);
    Alcotest.(check bool) "float attr" true
      (List.assoc "f" child.Span.attrs = Span.Float 2.5);
    Alcotest.(check bool) "escaped string attr" true
      (List.assoc "s" root.Span.attrs = Span.Str "x\"y");
    Alcotest.(check bool) "bool attr" true
      (List.assoc "flag" root.Span.attrs = Span.Bool true);
    Alcotest.(check bool) "duration preserved" true
      (Span.duration child >= 0.0)
  | Ok spans ->
    Alcotest.failf "expected two spans, got %d" (List.length spans)

let test_jsonl_flush_mid_run () =
  let file = Filename.temp_file "monsoon_trace" ".jsonl" in
  let oc = open_out file in
  let sink = Span.Jsonl oc in
  let tr = Span.make sink in
  Span.with_span tr "first" (fun _ -> ());
  (* Without closing the channel, a flush must make the completed span
     visible to a concurrent reader — this is what lets `tail -f` follow
     a long run. *)
  Span.flush sink;
  (match Span.load_jsonl file with
  | Ok [ s ] -> Alcotest.(check string) "span visible" "first" s.Span.name
  | Ok spans -> Alcotest.failf "expected one span, got %d" (List.length spans)
  | Error e -> Alcotest.fail e);
  Span.with_span tr "second" (fun _ -> ());
  Span.flush (Span.Multi [ Span.Null; sink ]);
  (match Span.load_jsonl file with
  | Ok spans ->
    Alcotest.(check int) "both spans visible after Multi flush" 2
      (List.length spans)
  | Error e -> Alcotest.fail e);
  close_out oc;
  (* Ctx.flush reaches the context's sink; flushing Null/Memory is a
     no-op rather than an error. *)
  Ctx.flush (Ctx.null ());
  Span.flush (Span.Memory (Span.memory_buffer ()))

(* --- Snapshots --- *)

let test_snapshot_reports () =
  let tel = Ctx.create ~sink:Span.Null () in
  Metric.Counter.add (Ctx.counter tel "work.done") 3.0;
  Metric.Gauge.set (Ctx.gauge tel "depth") 2.0;
  Metric.Histogram.observe (Ctx.histogram tel "sizes") 10.0;
  let table = Snapshot.metrics_table ~title:"T" tel.Ctx.registry in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("table mentions " ^ needle) true
        (contains table needle))
    [ "work.done"; "depth"; "sizes" ];
  (* The JSON snapshot parses back. *)
  let json = Json.to_string (Snapshot.metrics_json tel.Ctx.registry) in
  match Json.of_string json with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_exporter_empty_histogram () =
  (* A histogram with zero observations must render without dividing by
     its count — and byte-stably, since /metrics is scraped repeatedly
     on idle servers. *)
  let tel = Ctx.create ~sink:Span.Null () in
  ignore (Ctx.histogram tel "empty.sizes");
  let out = Exporter.render tel.Ctx.registry in
  Alcotest.(check string) "empty histogram golden"
    "# HELP monsoon_empty_sizes Monsoon metric empty_sizes\n\
     # TYPE monsoon_empty_sizes histogram\n\
     monsoon_empty_sizes_bucket{le=\"+Inf\"} 0\n\
     monsoon_empty_sizes_sum 0\n\
     monsoon_empty_sizes_count 0\n\
     # TYPE monsoon_empty_sizes_quantile gauge\n\
     monsoon_empty_sizes_quantile{quantile=\"0.5\"} 0\n\
     monsoon_empty_sizes_quantile{quantile=\"0.95\"} 0\n\
     monsoon_empty_sizes_quantile{quantile=\"0.99\"} 0\n"
    out;
  Alcotest.(check string) "stable across renders" out
    (Exporter.render tel.Ctx.registry)

let test_breakdown_groups_spans () =
  let buf = Span.memory_buffer () in
  let tr = Span.make (Span.Memory buf) in
  ignore
    (Span.with_span tr "work" ~attrs:[ ("objects", Span.Int 10) ] (fun _ -> ()));
  ignore
    (Span.with_span tr "work" ~attrs:[ ("objects", Span.Int 5) ] (fun _ -> ()));
  ignore (Span.with_span tr "other" (fun _ -> ()));
  let comps = Snapshot.breakdown (Span.buffer_spans buf) in
  Alcotest.(check int) "two components" 2 (List.length comps);
  let work = Option.get (Snapshot.component "work" comps) in
  Alcotest.(check int) "work spans" 2 work.Snapshot.comp_spans;
  Alcotest.(check (float 1e-9)) "work objects" 15.0 work.Snapshot.comp_objects

(* --- Domain-safety: hammer the primitives from several domains --- *)

let in_domains n f =
  let ds = List.init n (fun i -> Domain.spawn (fun () -> f i)) in
  List.iter Domain.join ds

let test_counter_hammer () =
  let reg = Registry.create () in
  let per_domain = 25_000 in
  in_domains 4 (fun _ ->
      (* Interning races with the other domains; all four must end up on
         the same instrument. *)
      let c = Registry.counter reg "hammer.hits" in
      for _ = 1 to per_domain do
        Metric.Counter.inc c
      done);
  Alcotest.(check (float 1e-9))
    "no increment lost across 4 domains"
    (float_of_int (4 * per_domain))
    (Metric.Counter.value (Registry.counter reg "hammer.hits"))

let test_histogram_hammer () =
  let h = Metric.Histogram.create () in
  let per_domain = 10_000 in
  in_domains 4 (fun d ->
      for i = 1 to per_domain do
        Metric.Histogram.observe h (float_of_int (((d * per_domain) + i) mod 37))
      done);
  Alcotest.(check int) "no observation lost" (4 * per_domain)
    (Metric.Histogram.count h);
  let bucket_total =
    List.fold_left (fun a (_, c) -> a + c) 0 (Metric.Histogram.buckets h)
  in
  Alcotest.(check int) "buckets account for every observation"
    (4 * per_domain) bucket_total

let test_gauge_and_registry_hammer () =
  let reg = Registry.create () in
  in_domains 4 (fun d ->
      for i = 1 to 1000 do
        (* Same keys from every domain: interning must never produce
           duplicates or crash. *)
        let g = Registry.gauge reg ~labels:[ ("k", string_of_int (i mod 7)) ] "g" in
        Metric.Gauge.set g (float_of_int d)
      done);
  Alcotest.(check int) "7 labeled gauges" 7 (List.length (Registry.to_list reg));
  let v = Metric.Gauge.value (Registry.gauge reg ~labels:[ ("k", "0") ] "g") in
  Alcotest.(check bool) "last write was some domain's" true (v >= 0.0 && v < 4.0)

let test_parallel_spans () =
  let buf = Span.memory_buffer () in
  let tr = Span.make (Span.Memory buf) in
  let per_domain = 500 in
  in_domains 4 (fun d ->
      for i = 1 to per_domain do
        Span.with_span tr "outer" (fun outer ->
            Span.set_attr outer "domain" (Span.Int d);
            Span.with_span tr "inner" (fun _ -> ignore i))
      done);
  let spans = Span.buffer_spans buf in
  Alcotest.(check int) "all spans recorded" (4 * per_domain * 2)
    (List.length spans);
  (* Ids are unique process-wide; parents resolve within each domain. *)
  let ids = List.map (fun s -> s.Span.id) spans in
  Alcotest.(check int) "ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  let by_id = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace by_id s.Span.id s) spans;
  List.iter
    (fun s ->
      match (s.Span.name, s.Span.parent) with
      | "inner", Some p ->
        Alcotest.(check string) "inner's parent is an outer" "outer"
          (Hashtbl.find by_id p).Span.name
      | "inner", None -> Alcotest.fail "inner span lost its parent"
      | _ -> ())
    spans

(* --- The driver's component breakdown, from spans --- *)

let test_driver_breakdown () =
  let w = Tpch.workload { Tpch.seed = 7; scale = 0.03; skew = Tpch.Plain } in
  let q = Workload.find_query w "tq1" in
  let buf = Span.memory_buffer () in
  let tel = Ctx.create ~sink:(Span.Memory buf) () in
  let config =
    { (Driver.default_config ~rng:(Rng.create 3)) with
      Driver.budget = 1e8;
      mcts =
        { (Monsoon_mcts.Mcts.default_config ~rng:(Rng.create 3)) with
          Monsoon_mcts.Mcts.iterations = 150 } }
  in
  let out = Driver.run ~env:(Ctx.to_env tel) config w.Workload.catalog q in
  Alcotest.(check bool) "completes" false out.Driver.timed_out;
  let comps = Snapshot.breakdown (Span.buffer_spans buf) in
  let comp name = Snapshot.component name comps in
  let seconds name =
    match comp name with Some c -> c.Snapshot.comp_seconds | None -> 0.0
  in
  let root = Option.get (comp "driver.run") in
  Alcotest.(check int) "one root span" 1 root.Snapshot.comp_spans;
  (* The root span brackets the outcome's wall measurement... *)
  Alcotest.(check bool) "root covers the wall time" true
    (root.Snapshot.comp_seconds >= out.Driver.wall -. 1e-3
    && root.Snapshot.comp_seconds -. out.Driver.wall < 0.1);
  (* ...and the component spans account for (almost all of) it. *)
  let parts = seconds "mcts.plan" +. seconds "driver.execute" in
  Alcotest.(check bool) "components fit inside the total" true
    (parts <= root.Snapshot.comp_seconds +. 1e-3);
  Alcotest.(check bool) "components dominate the total" true
    (parts >= 0.5 *. root.Snapshot.comp_seconds);
  (* The outcome's own breakdown is the same data. *)
  Alcotest.(check bool) "mcts_time matches the mcts.plan spans" true
    (Float.abs (out.Driver.mcts_time -. seconds "mcts.plan")
    <= 0.02 +. (0.2 *. out.Driver.mcts_time));
  let sigma =
    match comp "exec.sigma" with
    | Some c -> c.Snapshot.comp_objects
    | None -> 0.0
  in
  Alcotest.(check (float 1e-6)) "sigma objects = stats_cost"
    out.Driver.stats_cost sigma;
  Alcotest.(check bool) "executes counted" true
    (match comp "driver.execute" with
    | Some c -> c.Snapshot.comp_spans = out.Driver.executes
    | None -> out.Driver.executes = 0)

let () =
  Alcotest.run "telemetry"
    [ ( "histogram",
        [ Alcotest.test_case "bucket boundaries" `Quick test_histogram_buckets;
          Alcotest.test_case "observe/quantile" `Quick
            test_histogram_observe_and_quantile;
          Alcotest.test_case "merge" `Quick test_histogram_merge ] );
      ( "registry",
        [ Alcotest.test_case "interning" `Quick test_registry_interning ] );
      ( "spans",
        [ Alcotest.test_case "nesting and ordering" `Quick test_span_nesting;
          Alcotest.test_case "exception closes span" `Quick
            test_span_exception_closes;
          Alcotest.test_case "null sink is a no-op" `Quick test_null_sink_noop;
          Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "jsonl flush mid-run" `Quick
            test_jsonl_flush_mid_run ] );
      ( "snapshot",
        [ Alcotest.test_case "metrics reports" `Quick test_snapshot_reports;
          Alcotest.test_case "empty histogram export" `Quick
            test_exporter_empty_histogram;
          Alcotest.test_case "breakdown groups spans" `Quick
            test_breakdown_groups_spans ] );
      ( "domain-safety",
        [ Alcotest.test_case "counter hammer" `Quick test_counter_hammer;
          Alcotest.test_case "histogram hammer" `Quick test_histogram_hammer;
          Alcotest.test_case "gauge/registry hammer" `Quick
            test_gauge_and_registry_hammer;
          Alcotest.test_case "parallel spans" `Quick test_parallel_spans ] );
      ( "driver",
        [ Alcotest.test_case "component breakdown" `Quick
            test_driver_breakdown ] ) ]
