open Monsoon_util
open Monsoon_storage
open Monsoon_relalg
open Monsoon_stats
open Monsoon_baselines

(* --- Stats sources --- *)

let small_catalog rng =
  Fixtures.sec23_catalog rng ~scale:100 ~d_s:7 ~d_t:50

let test_exact_source () =
  let rng = Rng.create 1 in
  let q = Fixtures.sec23_query () in
  let cat = small_catalog rng in
  let src = Stats_source.exact cat q in
  Alcotest.(check bool) "applicable" false src.Stats_source.inapplicable;
  Alcotest.(check (float 0.0)) "free" 0.0 src.Stats_source.acquisition_cost;
  (* d(F2, S) should be exactly the number of distinct b values. *)
  let truth = float_of_int (Table.distinct_exact (Catalog.find cat "S") "b") in
  let d =
    src.Stats_source.env.Cost_model.distinct_of ~term:(Query.term q 1)
      ~pred:(Some 0) ~c_own:100.0 ~c_partner:None
  in
  Alcotest.(check (float 0.0)) "exact distinct" truth d

let test_defaults_source () =
  let rng = Rng.create 2 in
  let q = Fixtures.sec23_query () in
  let cat = small_catalog rng in
  let src = Stats_source.defaults cat q in
  let d =
    src.Stats_source.env.Cost_model.distinct_of ~term:(Query.term q 0)
      ~pred:(Some 0) ~c_own:1000.0 ~c_partner:None
  in
  Alcotest.(check (float 0.0)) "10% magic constant" 100.0 d

let test_on_demand_source () =
  let rng = Rng.create 3 in
  let q = Fixtures.sec23_query () in
  let cat = small_catalog rng in
  let src = Stats_source.on_demand cat q in
  (* One HLL pass per instance: c(R) + c(S) + c(T). *)
  let expected =
    float_of_int
      (Table.cardinality (Catalog.find cat "R")
      + Table.cardinality (Catalog.find cat "S")
      + Table.cardinality (Catalog.find cat "T"))
  in
  Alcotest.(check (float 0.0)) "charged one pass per table" expected
    src.Stats_source.acquisition_cost;
  let truth = float_of_int (Table.distinct_exact (Catalog.find cat "S") "b") in
  let d =
    src.Stats_source.env.Cost_model.distinct_of ~term:(Query.term q 1)
      ~pred:(Some 0) ~c_own:1e9 ~c_partner:None
  in
  Alcotest.(check bool) "HLL close" true (abs_float (d -. truth) /. truth < 0.1)

let test_sampling_source () =
  let rng = Rng.create 4 in
  let q = Fixtures.sec23_query () in
  let cat = small_catalog rng in
  let src = Stats_source.sampling (Rng.create 5) ~fraction:0.1 ~cap:5000 cat q in
  Alcotest.(check bool) "charged something" true (src.Stats_source.acquisition_cost > 0.0);
  let d =
    src.Stats_source.env.Cost_model.distinct_of ~term:(Query.term q 0)
      ~pred:(Some 0) ~c_own:1e9 ~c_partner:None
  in
  (* d(F1, R) = 10 at scale 100; GEE from a 10% sample should be in the
     right ballpark. *)
  Alcotest.(check bool) "GEE sane" true (d >= 5.0 && d <= 100.0)

let test_multi_instance_detection () =
  let b = Query.Builder.create ~name:"multi" in
  let r = Query.Builder.rel b ~table:"R" ~alias:"R" in
  let s = Query.Builder.rel b ~table:"S" ~alias:"S" in
  let t = Query.Builder.rel b ~table:"T" ~alias:"T" in
  let combo =
    Query.Builder.term b
      (Udf.make "combo" (function
        | [| Value.Int a; Value.Int b |] -> Value.Int (a + b)
        | _ -> Value.Null))
      [ (r, "a"); (s, "b") ]
  in
  let ft = Query.Builder.term b (Udf.identity "d") [ (t, "d") ] in
  Query.Builder.join_pred b combo ft;
  let q = Query.Builder.build b in
  Alcotest.(check bool) "detected" true (Stats_source.has_multi_instance_terms q);
  Alcotest.(check bool) "postgres drops it" false (Strategy.postgres.Strategy.applicable q);
  Alcotest.(check bool) "on-demand drops it" false (Strategy.on_demand.Strategy.applicable q);
  Alcotest.(check bool) "sampling keeps it" true (Strategy.sampling.Strategy.applicable q)

(* --- Planner --- *)

let test_dp_picks_optimal_per_table1 () =
  let q = Fixtures.sec23_query () in
  let raw = [| 1e6; 1e4; 1e4 |] in
  let check ~d_s ~d_t ~inner_mask =
    let env =
      Fixtures.fixed_env ~raw ~d:(function
        | 0 | 2 -> 1000.0
        | 1 -> d_s
        | 3 -> d_t
        | _ -> assert false)
    in
    let plan = Planner.best_plan q env in
    match Expr.join_nodes plan with
    | (a, b) :: _ ->
      Alcotest.(check int) "optimal first join" inner_mask (Relset.union a b)
    | [] -> Alcotest.fail "no join nodes"
  in
  (* Rows 2 and 3 of Table 1 have unique optima: first join R⨝T resp.
     R⨝S. *)
  check ~d_s:1.0 ~d_t:1e4 ~inner_mask:(Relset.of_list [ 0; 2 ]);
  check ~d_s:1e4 ~d_t:1.0 ~inner_mask:(Relset.of_list [ 0; 1 ])

let test_dp_avoids_cross_product () =
  let q = Fixtures.sec23_query () in
  let env =
    Fixtures.fixed_env ~raw:[| 1e6; 1e4; 1e4 |] ~d:(fun _ -> 1000.0)
  in
  let plan = Planner.best_plan q env in
  (* (S × T) ⨝ R would be the only cross-product shape; it must not be
     chosen. *)
  Alcotest.(check bool) "no S-T node" true
    (List.for_all
       (fun (a, b) -> Relset.mem 0 (Relset.union a b))
       (List.tl (Expr.join_nodes plan))
    || List.length (Expr.join_nodes plan) = 2)

let prop_dp_matches_brute_force =
  QCheck.Test.make ~name:"DP cost == exhaustive enumeration cost" ~count:60
    QCheck.(quad (int_range 1 10_000) (int_range 1 10_000) (int_range 1 10_000) (int_range 1 10_000))
    (fun (d1, d2, d3, d4) ->
      let q = Fixtures.sec23_query () in
      let d = [| d1; d2; d3; d4 |] in
      let env () =
        Fixtures.fixed_env ~raw:[| 1e5; 3e3; 7e3 |]
          ~d:(fun i -> float_of_int d.(i))
      in
      let dp = Planner.best_plan q (env ()) in
      let bf = Planner.brute_force_best q (env ()) in
      let c_dp = Planner.plan_cost q (env ()) dp in
      let c_bf = Planner.plan_cost q (env ()) bf in
      abs_float (c_dp -. c_bf) <= 1e-6 *. Float.max 1.0 c_bf)

(* A 5-instance chain query for deeper DP validation. *)
let chain_query n =
  let b = Query.Builder.create ~name:"chain" in
  let rels =
    List.init n (fun i ->
        Query.Builder.rel b ~table:(Printf.sprintf "C%d" i)
          ~alias:(Printf.sprintf "c%d" i))
  in
  List.iteri
    (fun i r ->
      if i < n - 1 then begin
        let t1 = Query.Builder.term b (Udf.identity "k") [ (r, "k") ] in
        let t2 =
          Query.Builder.term b (Udf.identity "k") [ (List.nth rels (i + 1), "k") ]
        in
        Query.Builder.join_pred b t1 t2
      end)
    rels;
  Query.Builder.build b

(* Distinct counts stay below the smallest base cardinality (10^3) so
   [Cost_model.clamp_distinct] never binds. Once a d exceeds a child's
   cardinality the clamp makes selectivities depend on the subplan that
   produced the child, the model stops being additive over masks, and
   DP's per-mask best subplan is no longer globally optimal — the
   property below is only a theorem in the unclamped regime. *)
let prop_dp_chain_matches_brute_force =
  QCheck.Test.make ~name:"DP == brute force on 4-chains" ~count:100
    QCheck.(array_of_size (QCheck.Gen.return 6) (int_range 1 999))
    (fun ds ->
      QCheck.assume (Array.length ds = 6);
      let q = chain_query 4 in
      let env () =
        Fixtures.fixed_env ~raw:[| 2e4; 5e3; 8e4; 1e3 |]
          ~d:(fun i -> float_of_int ds.(i))
      in
      let c_dp = Planner.plan_cost q (env ()) (Planner.best_plan q (env ())) in
      let c_bf =
        Planner.plan_cost q (env ()) (Planner.brute_force_best q (env ()))
      in
      abs_float (c_dp -. c_bf) <= 1e-6 *. Float.max 1.0 c_bf)

(* --- Greedy --- *)

let test_greedy_smallest_first_connected () =
  let rng = Rng.create 6 in
  let q = Fixtures.sec23_query () in
  let cat = small_catalog rng in
  (* Sizes: R = 10000, S = T = 100. Greedy starts from S (or T) but must
     not cross-product S with T; it joins R next. *)
  let out = Strategy.greedy.Strategy.run ~rng ~budget:1e9 cat q in
  Alcotest.(check bool) "no timeout" false out.Strategy.timed_out;
  Alcotest.(check bool) "left-deep via R second" true
    (out.Strategy.plan = "((S ⨝ R) ⨝ T)" || out.Strategy.plan = "((R ⨝ S) ⨝ T)"
    || out.Strategy.plan = "((T ⨝ R) ⨝ S)" || out.Strategy.plan = "((R ⨝ T) ⨝ S)")

(* --- End-to-end strategies --- *)

let test_strategies_agree_on_result () =
  let rng = Rng.create 7 in
  let q = Fixtures.sec23_query () in
  let cat = Fixtures.sec23_catalog rng ~scale:500 ~d_s:4 ~d_t:9 in
  let truth = float_of_int (Fixtures.brute_force_count cat q) in
  let strategies =
    [ Strategy.postgres; Strategy.defaults; Strategy.greedy;
      Strategy.on_demand; Strategy.sampling;
      Strategy.monsoon ~iterations:300 Prior.spike_and_slab ]
  in
  List.iter
    (fun (s : Strategy.t) ->
      let out = s.Strategy.run ~rng:(Rng.create 8) ~budget:1e9 cat q in
      Alcotest.(check bool) (s.Strategy.name ^ " completes") false out.Strategy.timed_out;
      Alcotest.(check (float 0.0)) (s.Strategy.name ^ " correct") truth
        out.Strategy.result_card)
    strategies

let test_skinner_completes_small () =
  let rng = Rng.create 9 in
  let q = Fixtures.sec23_query () in
  let cat = Fixtures.sec23_catalog rng ~scale:500 ~d_s:4 ~d_t:9 in
  let truth = float_of_int (Fixtures.brute_force_count cat q) in
  let out = Strategy.skinner.Strategy.run ~rng:(Rng.create 10) ~budget:1e9 cat q in
  Alcotest.(check bool) "completes" false out.Strategy.timed_out;
  Alcotest.(check (float 0.0)) "correct" truth out.Strategy.result_card

let test_skinner_pays_for_restarts () =
  (* Skinner's total processed objects exceed a one-shot good plan's cost
     whenever it needs several episodes. *)
  let rng = Rng.create 11 in
  let q = Fixtures.sec23_query () in
  let cat = Fixtures.sec23_catalog rng ~scale:100 ~d_s:1 ~d_t:100 in
  let skinner_out = Strategy.skinner.Strategy.run ~rng:(Rng.create 12) ~budget:1e9 cat q in
  let pg_out = Strategy.postgres.Strategy.run ~rng:(Rng.create 12) ~budget:1e9 cat q in
  Alcotest.(check bool) "skinner >= postgres cost" true
    (skinner_out.Strategy.cost >= pg_out.Strategy.cost)

let test_postgres_beats_bad_defaults_case () =
  (* d_s = 1 makes R⨝S explode; exact statistics avoid it. Scale 10 keeps
     the S×T cross product expensive too (cross products shrink
     quadratically under downscaling, so tiny scales would make them
     attractive). *)
  let rng = Rng.create 13 in
  let q = Fixtures.sec23_query () in
  let cat = Fixtures.sec23_catalog rng ~scale:10 ~d_s:1 ~d_t:1000 in
  let pg = Strategy.postgres.Strategy.run ~rng:(Rng.create 14) ~budget:1e9 cat q in
  (match Expr.join_nodes (Planner.best_plan q (Stats_source.exact cat q).Stats_source.env) with
  | (a, b) :: _ ->
    Alcotest.(check int) "first join is R⨝T" (Relset.of_list [ 0; 2 ])
      (Relset.union a b)
  | [] -> Alcotest.fail "no joins");
  Alcotest.(check bool) "completes" false pg.Strategy.timed_out

(* --- Least-expected-cost --- *)

let test_lec_picks_dominant_plan () =
  (* With a point-mass prior the sampled worlds are deterministic, so LEC
     must pick the DP-optimal plan for those statistics. *)
  let q = Fixtures.sec23_query () in
  let rng = Rng.create 17 in
  let cat = Fixtures.sec23_catalog rng ~scale:10 ~d_s:1 ~d_t:1000 in
  let point =
    Prior.custom ~name:"pt"
      ~sample:(fun _ ~c_own ~c_partner:_ -> 0.5 *. c_own)
      ()
  in
  let plan = Lec.choose_plan ~k:4 ~k2:8 ~rng:(Rng.create 3) ~prior:point cat q in
  let env =
    Fixtures.fixed_env ~raw:[| 1e5; 1e3; 1e3 |]
      ~d:(fun _ -> 0.0 (* unused: compare shapes only *))
  in
  ignore env;
  Alcotest.(check int) "covers the whole query" 7
    (Monsoon_relalg.Expr.mask plan)

let test_lec_end_to_end () =
  let rng = Rng.create 23 in
  let q = Fixtures.sec23_query () in
  let cat = Fixtures.sec23_catalog rng ~scale:500 ~d_s:4 ~d_t:9 in
  let truth = float_of_int (Fixtures.brute_force_count cat q) in
  let s = Lec.strategy Prior.spike_and_slab in
  let out = s.Strategy.run ~rng:(Rng.create 24) ~budget:1e9 cat q in
  Alcotest.(check bool) "completes" false out.Strategy.timed_out;
  Alcotest.(check (float 0.0)) "correct result" truth out.Strategy.result_card;
  Alcotest.(check bool) "no stats collected" true (out.Strategy.stats_cost = 0.0)

let test_lec_deterministic_given_seed () =
  let rng = Rng.create 29 in
  let q = Fixtures.sec23_query () in
  let cat = Fixtures.sec23_catalog rng ~scale:500 ~d_s:2 ~d_t:2 in
  let plan seed =
    Monsoon_relalg.Expr.key
      (Lec.choose_plan ~rng:(Rng.create seed) ~prior:Prior.uniform cat q)
  in
  Alcotest.(check string) "reproducible" (plan 5) (plan 5)

let test_budget_respected () =
  let rng = Rng.create 15 in
  let q = Fixtures.sec23_query () in
  let cat = Fixtures.sec23_catalog rng ~scale:100 ~d_s:1 ~d_t:1 in
  List.iter
    (fun (s : Strategy.t) ->
      let out = s.Strategy.run ~rng:(Rng.create 16) ~budget:100.0 cat q in
      Alcotest.(check bool) (s.Strategy.name ^ " times out") true out.Strategy.timed_out)
    [ Strategy.defaults; Strategy.greedy; Strategy.skinner ]

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "baselines"
    [ ( "stats sources",
        [ Alcotest.test_case "exact" `Quick test_exact_source;
          Alcotest.test_case "defaults" `Quick test_defaults_source;
          Alcotest.test_case "on demand" `Quick test_on_demand_source;
          Alcotest.test_case "sampling" `Quick test_sampling_source;
          Alcotest.test_case "multi-instance detection" `Quick test_multi_instance_detection ] );
      ( "planner",
        [ Alcotest.test_case "optimal per Table 1" `Quick test_dp_picks_optimal_per_table1;
          Alcotest.test_case "avoids cross products" `Quick test_dp_avoids_cross_product ] );
      ( "greedy",
        [ Alcotest.test_case "smallest-first connected" `Quick test_greedy_smallest_first_connected ] );
      ( "least expected cost",
        [ Alcotest.test_case "dominant plan" `Quick test_lec_picks_dominant_plan;
          Alcotest.test_case "end to end" `Quick test_lec_end_to_end;
          Alcotest.test_case "deterministic" `Quick test_lec_deterministic_given_seed ] );
      ( "end to end",
        [ Alcotest.test_case "strategies agree" `Quick test_strategies_agree_on_result;
          Alcotest.test_case "skinner completes" `Quick test_skinner_completes_small;
          Alcotest.test_case "skinner restart cost" `Quick test_skinner_pays_for_restarts;
          Alcotest.test_case "postgres avoids explosion" `Quick test_postgres_beats_bad_defaults_case;
          Alcotest.test_case "budget respected" `Quick test_budget_respected ] );
      ( "properties",
        qc [ prop_dp_matches_brute_force; prop_dp_chain_matches_brute_force ] ) ]
