open Monsoon_telemetry

let contains s needle =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  go 0

let check_contains what haystack needle =
  Alcotest.(check bool)
    (Printf.sprintf "%s contains %S" what needle)
    true (contains haystack needle)

(* --- Prometheus exposition --- *)

let test_metric_names () =
  Alcotest.(check string) "counter name" "monsoon_driver_steps_total"
    (Exporter.metric_name ~counter:true "driver.steps");
  Alcotest.(check string) "gauge name" "monsoon_pool_queued"
    (Exporter.metric_name "pool.queued");
  Alcotest.(check string) "no double _total" "monsoon_runner_cells_total"
    (Exporter.metric_name ~counter:true "runner.cells_total");
  Alcotest.(check string) "odd characters sanitized" "monsoon_a_b_c"
    (Exporter.metric_name "a-b c");
  Alcotest.(check string) "label escaping" "a\\\"b\\nc\\\\d"
    (Exporter.escape_label "a\"b\nc\\d")

let test_exposition_golden () =
  let reg = Registry.create () in
  Metric.Counter.add (Registry.counter reg "driver.steps") 5.0;
  let h = Registry.histogram reg "exec.latency" in
  List.iter (Metric.Histogram.observe h) [ 1.0; 1.5; 3.0 ];
  Metric.Gauge.set
    (Registry.gauge reg ~labels:[ ("worker", "a\"b\nc\\d") ] "pool.queued")
    2.0;
  let expected =
    String.concat "\n"
      [ "# HELP monsoon_driver_steps_total Monsoon metric driver_steps";
        "# TYPE monsoon_driver_steps_total counter";
        "monsoon_driver_steps_total 5";
        "# HELP monsoon_exec_latency Monsoon metric exec_latency";
        "# TYPE monsoon_exec_latency histogram";
        "monsoon_exec_latency_bucket{le=\"2\"} 2";
        "monsoon_exec_latency_bucket{le=\"4\"} 3";
        "monsoon_exec_latency_bucket{le=\"+Inf\"} 3";
        "monsoon_exec_latency_sum 5.5";
        "monsoon_exec_latency_count 3";
        "# TYPE monsoon_exec_latency_quantile gauge";
        "monsoon_exec_latency_quantile{quantile=\"0.5\"} 2";
        "monsoon_exec_latency_quantile{quantile=\"0.95\"} 4";
        "monsoon_exec_latency_quantile{quantile=\"0.99\"} 4";
        "# HELP monsoon_pool_queued Monsoon metric pool_queued";
        "# TYPE monsoon_pool_queued gauge";
        "monsoon_pool_queued{worker=\"a\\\"b\\nc\\\\d\"} 2";
        "" ]
  in
  Alcotest.(check string) "byte-stable exposition" expected
    (Exporter.render reg);
  (* A second render is byte-identical: ordering is deterministic. *)
  Alcotest.(check string) "stable across scrapes" expected
    (Exporter.render reg)

let test_exposition_underflow_and_labels () =
  let reg = Registry.create () in
  let h = Registry.histogram reg "driver.q_error" in
  Metric.Histogram.observe h (-1.0);
  Metric.Histogram.observe h 1.0;
  let c_a = Registry.counter reg ~labels:[ ("strategy", "a") ] "runner.cells" in
  let c_b = Registry.counter reg ~labels:[ ("strategy", "b") ] "runner.cells" in
  Metric.Counter.add c_a 1.0;
  Metric.Counter.add c_b 2.0;
  let text = Exporter.render reg in
  check_contains "render" text "monsoon_driver_q_error_bucket{le=\"0\"} 1";
  check_contains "render" text "monsoon_driver_q_error_count 2";
  (* One TYPE header covers both labeled series. *)
  check_contains "render" text
    "monsoon_runner_cells_total{strategy=\"a\"} 1\n\
     monsoon_runner_cells_total{strategy=\"b\"} 2";
  let type_lines =
    String.split_on_char '\n' text
    |> List.filter (fun l ->
           String.starts_with ~prefix:"# TYPE monsoon_runner_cells_total" l)
  in
  Alcotest.(check int) "single TYPE header per family" 1
    (List.length type_lines)

(* --- Perfetto trace events --- *)

let events_of_json json =
  match Json.member "traceEvents" json with
  | Some (Json.Arr events) -> events
  | _ -> Alcotest.fail "missing traceEvents array"

let field name ev =
  match Json.member name ev with
  | Some v -> v
  | None -> Alcotest.failf "event missing %S" name

let str_field name ev =
  match Json.to_str (field name ev) with
  | Some s -> s
  | None -> Alcotest.failf "event field %S not a string" name

let int_field name ev =
  match Json.to_int (field name ev) with
  | Some i -> i
  | None -> Alcotest.failf "event field %S not an int" name

let test_perfetto_roundtrip_and_balance () =
  let collector = Trace_event.create () in
  let tr = Span.make (Trace_event.sink collector) in
  Span.with_span tr "root" (fun _ ->
      Span.with_span tr "child"
        ~attrs:[ ("n", Span.Int 3) ]
        (fun _ -> ());
      Span.with_span tr "sibling" (fun _ -> ()));
  let other =
    Domain.spawn (fun () -> Span.with_span tr "other" (fun _ -> ()))
  in
  Domain.join other;
  (* The serialized trace parses back. *)
  let json =
    match Json.of_string (Trace_event.to_string collector) with
    | Ok j -> j
    | Error e -> Alcotest.fail e
  in
  let events = events_of_json json in
  let is_meta ev = str_field "ph" ev = "M" in
  let be_events = List.filter (fun ev -> not (is_meta ev)) events in
  (* Spans ran on two domains: two tids, each with a thread_name event. *)
  let tids = List.sort_uniq compare (List.map (int_field "tid") be_events) in
  Alcotest.(check int) "two domains traced" 2 (List.length tids);
  Alcotest.(check int) "one metadata event per tid" 2
    (List.length (List.filter is_meta events));
  List.iter
    (fun ev ->
      Alcotest.(check string) "category" "monsoon" (str_field "cat" ev))
    (List.filter (fun ev -> str_field "ph" ev = "B") be_events);
  (* Per tid: replay with a stack — B pushes, E must close the top; the
     sequence must be timestamp-ordered and end with an empty stack. *)
  List.iter
    (fun tid ->
      let seq =
        List.filter (fun ev -> int_field "tid" ev = tid) be_events
      in
      let stack = ref [] in
      let last_ts = ref neg_infinity in
      List.iter
        (fun ev ->
          let ts =
            match Json.to_float (field "ts" ev) with
            | Some t -> t
            | None -> Alcotest.fail "ts not a number"
          in
          Alcotest.(check bool) "timestamps non-decreasing" true
            (ts >= !last_ts);
          last_ts := ts;
          match str_field "ph" ev with
          | "B" -> stack := str_field "name" ev :: !stack
          | "E" -> (
            match !stack with
            | top :: rest ->
              Alcotest.(check string) "E closes the innermost B" top
                (str_field "name" ev);
              stack := rest
            | [] -> Alcotest.fail "E with empty stack")
          | ph -> Alcotest.failf "unexpected ph %S" ph)
        seq;
      Alcotest.(check int) "balanced per tid" 0 (List.length !stack))
    tids;
  (* Attributes ride on the B event's args. *)
  let child_b =
    List.find
      (fun ev -> str_field "ph" ev = "B" && str_field "name" ev = "child")
      be_events
  in
  match Json.member "n" (field "args" child_b) with
  | Some n -> Alcotest.(check (option int)) "args.n" (Some 3) (Json.to_int n)
  | None -> Alcotest.fail "child B event lost its args"

(* --- Sampler, ring, diff report --- *)

let gcless ~time probes =
  { Monitor.s_time = time;
    s_minor_words = 0.0;
    s_promoted_words = 0.0;
    s_major_words = 0.0;
    s_minor_collections = 0;
    s_major_collections = 0;
    s_compactions = 0;
    s_heap_words = 0;
    s_probes = probes }

let probe key kind v =
  { Monitor.p_key = key; p_kind = kind; p_value = v }

let test_sample_now () =
  let reg = Registry.create () in
  Metric.Counter.add (Registry.counter reg "driver.steps") 4.0;
  Metric.Gauge.set (Registry.gauge reg "pool.queued") 7.0;
  Metric.Histogram.observe (Registry.histogram reg "exec.latency") 2.0;
  let s = Monitor.sample_now reg in
  let value key =
    match
      List.find_opt (fun p -> p.Monitor.p_key = key) s.Monitor.s_probes
    with
    | Some p -> p.Monitor.p_value
    | None -> Alcotest.failf "probe %S missing" key
  in
  Alcotest.(check (float 0.0)) "counter probe" 4.0 (value "driver.steps");
  Alcotest.(check (float 0.0)) "gauge probe" 7.0 (value "pool.queued");
  Alcotest.(check (float 0.0)) "histogram count probe" 1.0
    (value "exec.latency.count");
  Alcotest.(check (float 0.0)) "histogram sum probe" 2.0
    (value "exec.latency.sum");
  Alcotest.(check bool) "timestamped" true (s.Monitor.s_time > 0.0)

let test_diff_report () =
  let a =
    gcless ~time:10.0
      [ probe "driver.steps" Monitor.Cumulative 0.0;
        probe "pool.queued" Monitor.Level 5.0;
        probe "idle.counter" Monitor.Cumulative 3.0 ]
  in
  let b =
    gcless ~time:12.0
      [ probe "driver.steps" Monitor.Cumulative 100.0;
        probe "pool.queued" Monitor.Level 3.0;
        probe "idle.counter" Monitor.Cumulative 3.0 ]
  in
  let report = Monitor.diff_report a b in
  check_contains "report" report "driver.steps";
  check_contains "report" report "50";
  (* rate: 100 / 2s *)
  check_contains "report" report "pool.queued";
  check_contains "report" report "-2";
  check_contains "report" report "GC";
  Alcotest.(check bool) "unmoved metrics dropped" false
    (contains report "idle.counter");
  (* top=1 keeps only the biggest mover. *)
  let top1 = Monitor.diff_report ~top:1 a b in
  check_contains "top1" top1 "driver.steps";
  Alcotest.(check bool) "top=1 drops the smaller mover" false
    (contains top1 "pool.queued");
  let line = Monitor.tick_line a b in
  check_contains "tick line" line "driver.steps";
  check_contains "tick line" line "50";
  Alcotest.(check bool) "tick line skips gauges" false
    (contains line "pool.queued")

let test_sampler_ring_and_stop () =
  let reg = Registry.create () in
  let ticks = Atomic.make 0 in
  let m =
    Monitor.create ~interval:0.01 ~ring:3
      ~on_tick:(fun _ -> Atomic.incr ticks)
      reg
  in
  (* Let it tick well past the ring size. *)
  Unix.sleepf 0.15;
  Monitor.stop m;
  let n = Atomic.get ticks in
  Alcotest.(check bool) "ticked more than the ring holds" true (n > 3);
  let samples = Monitor.samples m in
  Alcotest.(check bool) "ring bounded" true (List.length samples <= 3);
  Alcotest.(check bool) "ring retains samples" true (List.length samples >= 2);
  (* The monitor's own liveness counter advanced and was sampled. *)
  (match Monitor.latest m with
  | None -> Alcotest.fail "no latest sample"
  | Some s ->
    let tick_probe =
      List.find_opt
        (fun p -> p.Monitor.p_key = "monitor.ticks")
        s.Monitor.s_probes
    in
    Alcotest.(check bool) "monitor.ticks sampled" true
      (match tick_probe with
      | Some p -> p.Monitor.p_value >= 3.0
      | None -> false));
  (* Samples are time-ordered, oldest first. *)
  let times = List.map (fun s -> s.Monitor.s_time) samples in
  Alcotest.(check bool) "oldest first" true
    (List.sort compare times = times);
  (* Stop is idempotent. *)
  Monitor.stop m

(* --- HTTP endpoints --- *)

let http_get port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req =
        Printf.sprintf "GET %s HTTP/1.1\r\nHost: localhost\r\n\r\n" path
      in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 4096 in
      let rec go () =
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          go ()
      in
      go ();
      Buffer.contents buf)

let body_of response =
  let rec find i =
    if i + 4 > String.length response then response
    else if String.sub response i 4 = "\r\n\r\n" then
      String.sub response (i + 4) (String.length response - i - 4)
    else find (i + 1)
  in
  find 0

let test_http_endpoints () =
  let reg = Registry.create () in
  Monitor.preregister reg;
  Metric.Counter.add (Registry.counter reg "driver.steps") 9.0;
  let m = Monitor.create ~interval:0.05 reg in
  match Monitor.serve m ~port:0 with
  | Error e -> Alcotest.fail e
  | Ok port ->
    Alcotest.(check bool) "ephemeral port" true (port > 0);
    Alcotest.(check (option int)) "port accessor" (Some port)
      (Monitor.port m);
    let health = http_get port "/healthz" in
    check_contains "healthz" health "HTTP/1.1 200";
    check_contains "healthz" health "ok";
    let metrics = http_get port "/metrics" in
    check_contains "metrics" metrics "HTTP/1.1 200";
    check_contains "metrics" metrics Exporter.content_type;
    check_contains "metrics" metrics "monsoon_driver_steps_total 9";
    (* preregister makes never-touched metrics visible at zero. *)
    check_contains "metrics" metrics "monsoon_runner_cells_total 0";
    check_contains "metrics" metrics "monsoon_pool_queued 0";
    let snapshot = http_get port "/snapshot.json" in
    check_contains "snapshot" snapshot "HTTP/1.1 200";
    (match Json.of_string (body_of snapshot) with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "snapshot.json does not parse: %s" e);
    let missing = http_get port "/nope" in
    check_contains "unknown path" missing "HTTP/1.1 404";
    (* A second monitor cannot double-serve. *)
    (match Monitor.serve m ~port:0 with
    | Ok _ -> Alcotest.fail "second serve should fail"
    | Error _ -> ());
    Monitor.stop m;
    (match Monitor.serve m ~port:0 with
    | Ok _ -> Alcotest.fail "serve after stop should fail"
    | Error _ -> ());
    (* At least the initial and the final tick landed. *)
    Alcotest.(check bool) "samples recorded" true
      (List.length (Monitor.samples m) >= 2)

let () =
  Alcotest.run "monitor"
    [ ( "exporter",
        [ Alcotest.test_case "metric names & escaping" `Quick
            test_metric_names;
          Alcotest.test_case "golden exposition" `Quick test_exposition_golden;
          Alcotest.test_case "underflow bucket & label families" `Quick
            test_exposition_underflow_and_labels ] );
      ( "perfetto",
        [ Alcotest.test_case "round-trip & B/E balance" `Quick
            test_perfetto_roundtrip_and_balance ] );
      ( "sampler",
        [ Alcotest.test_case "sample_now probes" `Quick test_sample_now;
          Alcotest.test_case "diff report & tick line" `Quick
            test_diff_report;
          Alcotest.test_case "ring bound & stop" `Quick
            test_sampler_ring_and_stop ] );
      ( "http",
        [ Alcotest.test_case "endpoints" `Quick test_http_endpoints ] ) ]
