open Monsoon_util
open Monsoon_storage
open Monsoon_relalg
open Monsoon_exec
open Monsoon_telemetry
module Driver = Monsoon_core.Driver

(* Same two-table fixture as test_exec: R(k, v) ⋈ S(k) on k, optional
   select on R.v. *)
let two_table_query ?(select_const = None) () =
  let b = Query.Builder.create ~name:"two" in
  let r = Query.Builder.rel b ~table:"R" ~alias:"R" in
  let s = Query.Builder.rel b ~table:"S" ~alias:"S" in
  let fr = Query.Builder.term b (Udf.identity "k") [ (r, "k") ] in
  let fs = Query.Builder.term b (Udf.identity "k") [ (s, "k") ] in
  Query.Builder.join_pred b fr fs;
  (match select_const with
  | Some v ->
    let fv = Query.Builder.term b (Udf.identity "v") [ (r, "v") ] in
    Query.Builder.select_pred b fv (Value.Int v)
  | None -> ());
  Query.Builder.build b

let two_table_catalog rng ~n_r ~n_s ~d =
  let cat = Catalog.create () in
  Catalog.add cat
    (Fixtures.make_table rng ~name:"R" ~cols:[ ("k", d); ("v", 3) ] n_r);
  Catalog.add cat (Fixtures.make_table rng ~name:"S" ~cols:[ ("k", d) ] n_s);
  cat

(* Hostile representations (same shape as test_differential): NaN / -0.
   float keys, a dictionary string column, and a Null-poisoned int column
   that demotes to the boxed fallback. *)
let tricky_fixture () =
  let cat = Catalog.create () in
  let fvals = [| 1.5; Float.nan; -0.0; 0.0; 2.5; Float.nan; 1.5 |] in
  let svals = [| "ash"; "birch"; "cedar" |] in
  let mk name n offset =
    let schema =
      Schema.make
        [ { Schema.name = "f"; ty = Value.TFloat };
          { Schema.name = "s"; ty = Value.TStr };
          { Schema.name = "n"; ty = Value.TInt } ]
    in
    Table.of_row_array ~name schema
      (Array.init n (fun i ->
           [| Value.Float fvals.((i + offset) mod Array.length fvals);
              Value.Str svals.((i + offset) mod Array.length svals);
              (if (i + offset) mod 7 = 0 then Value.Null else Value.Int (i mod 5))
           |]))
  in
  Catalog.add cat (mk "A" 60 0);
  Catalog.add cat (mk "B" 45 3);
  cat

let tricky_query ~on ~select =
  let b = Query.Builder.create ~name:(Printf.sprintf "tricky-%s" on) in
  let a = Query.Builder.rel b ~table:"A" ~alias:"A" in
  let c = Query.Builder.rel b ~table:"B" ~alias:"B" in
  let ta = Query.Builder.term b (Udf.identity on) [ (a, on) ] in
  let tb = Query.Builder.term b (Udf.identity on) [ (c, on) ] in
  Query.Builder.join_pred b ta tb;
  (match select with
  | Some (col, v) ->
    let ts = Query.Builder.term b (Udf.identity col) [ (a, col) ] in
    Query.Builder.select_pred b ts v
  | None -> ());
  Query.Builder.build b

let full_join = Expr.join (Expr.base 0) (Expr.base 1)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let run_profiled ?env cat q exprs =
  let prof = Profile.create () in
  let env = Profile.to_env ?env prof in
  let exec = Executor.create ~env cat q (Executor.budget 1e7) in
  List.iter (fun e -> ignore (Executor.execute exec e)) exprs;
  prof

let fingerprints q prof =
  String.concat "\n" (List.map (Profile.fingerprint q) (Profile.nodes prof))

let std_exprs = [ Expr.stats (Expr.base 0); full_join ]

let profile_fingerprint ?env () =
  let rng = Rng.create 42 in
  let q = two_table_query ~select_const:(Some 1) () in
  let cat = two_table_catalog rng ~n_r:200 ~n_s:150 ~d:10 in
  fingerprints q (run_profiled ?env cat q std_exprs)

(* --- Differential: profile rows/selectivity agree with the scalar
   oracle --- *)

let test_rows_match_row_engine () =
  let rng = Rng.create 41 in
  let q = two_table_query ~select_const:(Some 1) () in
  let cat = two_table_catalog rng ~n_r:300 ~n_s:200 ~d:12 in
  let prof = run_profiled cat q std_exprs in
  let old_exec = Row_engine.create cat q (Row_engine.budget 1e7) in
  let old_nodes =
    List.concat_map
      (fun e ->
        let _, obs = Row_engine.execute old_exec e in
        obs.Row_engine.obs_nodes)
      std_exprs
  in
  let nodes = Profile.nodes prof in
  Alcotest.(check bool) "profiled nodes recorded" true (nodes <> []);
  List.iter
    (fun (n : Profile.node) ->
      match n.Profile.n_kind with
      | Profile.Sigma -> ()
      | _ ->
        let expected =
          match
            List.find_opt
              (fun (e, _) -> Expr.equal e n.Profile.n_expr)
              old_nodes
          with
          | Some (_, c) -> c
          | None ->
            Alcotest.failf "no row-engine observation for %s"
              (Expr.describe q n.Profile.n_expr)
        in
        Alcotest.(check (float 0.0))
          ("rows_out vs row engine: " ^ Expr.describe q n.Profile.n_expr)
          expected n.Profile.n_rows_out;
        Alcotest.(check bool) "selectivity in [0,1]" true
          (n.Profile.n_selectivity >= 0.0 && n.Profile.n_selectivity <= 1.0);
        Alcotest.(check bool) "complete" true n.Profile.n_complete)
    nodes

(* --- Byte identity: across worker domains, and audited vs unaudited --- *)

let test_jobs_invariance () =
  let seq = profile_fingerprint () in
  let domains =
    List.init 4 (fun _ -> Domain.spawn (fun () -> profile_fingerprint ()))
  in
  List.iter
    (fun d ->
      Alcotest.(check string) "identical across domains" seq (Domain.join d))
    domains

let test_audit_invariance () =
  let plain = profile_fingerprint () in
  let buf = Span.memory_buffer () in
  let tel =
    Ctx.with_trace_id
      (Ctx.create ~sink:(Span.Memory buf) ~recorder:(Recorder.create ()) ())
      "t-prof-audit"
  in
  let audited = profile_fingerprint ~env:(Ctx.to_env tel) () in
  Alcotest.(check string) "audited profile byte-identical" plain audited

(* --- Representation mix and path attribution --- *)

let join_node nodes =
  List.find (fun (n : Profile.node) -> n.Profile.n_kind = Profile.Join) nodes

let scan_nodes nodes =
  List.filter (fun (n : Profile.node) -> n.Profile.n_kind = Profile.Scan) nodes

let test_repr_ints () =
  let rng = Rng.create 43 in
  let q = two_table_query ~select_const:(Some 1) () in
  let cat = two_table_catalog rng ~n_r:200 ~n_s:150 ~d:10 in
  let prof = run_profiled cat q [ full_join ] in
  let nodes = Profile.nodes prof in
  let j = join_node nodes in
  Alcotest.(check string) "int join is fused" "join_ints" j.Profile.n_path;
  Alcotest.(check (list string))
    "both join inputs are int columns" [ "ints"; "ints" ] j.Profile.n_repr;
  Alcotest.(check bool) "chain stats observed" true (j.Profile.n_chain_max >= 1);
  let filtered =
    List.find
      (fun (n : Profile.node) -> n.Profile.n_path = "sel_eq_const")
      (scan_nodes nodes)
  in
  Alcotest.(check bool) "filtered scan reads an int column" true
    (List.mem "ints" filtered.Profile.n_repr);
  Alcotest.(check bool) "selection density in [0,1]" true
    (filtered.Profile.n_sel_density >= 0.0
    && filtered.Profile.n_sel_density <= 1.0)

let test_repr_dict_and_boxed () =
  let cat = tricky_fixture () in
  (* Dictionary select: join on f (floats), select A.s = "birch". *)
  let q = tricky_query ~on:"f" ~select:(Some ("s", Value.Str "birch")) in
  let prof = run_profiled cat q [ full_join ] in
  let nodes = Profile.nodes prof in
  let a_scan =
    List.find
      (fun (n : Profile.node) -> n.Profile.n_path = "sel_eq_const")
      (scan_nodes nodes)
  in
  Alcotest.(check bool) "dict column in scan mix" true
    (List.mem "dict" a_scan.Profile.n_repr);
  let j = join_node nodes in
  Alcotest.(check string) "float join takes the chained probe" "chained"
    j.Profile.n_path;
  Alcotest.(check bool) "float columns in join mix" true
    (List.mem "floats" j.Profile.n_repr);
  (* Null-poisoned int column: demoted to boxed, so no fused int join. *)
  let qn = tricky_query ~on:"n" ~select:None in
  let profn = run_profiled cat qn [ full_join ] in
  let jn = join_node (Profile.nodes profn) in
  Alcotest.(check string) "boxed join falls back to chained" "chained"
    jn.Profile.n_path;
  Alcotest.(check bool) "boxed column in join mix" true
    (List.mem "boxed" jn.Profile.n_repr)

let test_disabled_collector_noop () =
  let p = Profile.disabled in
  Profile.reset p;
  Profile.set_kind p Profile.Join;
  Profile.set_path p "join_ints";
  Profile.set_input p ~rows:10.0 ~denom:100.0;
  Profile.add_batches p 3;
  Profile.add_repr_rows p;
  Profile.set_sel_density p ~kept:1 ~of_:2;
  Profile.finish p ~expr:(Expr.base 0)
    ~mask:(Expr.mask (Expr.base 0))
    ~default_kind:Profile.Scan ~rows_out:10.0 ~budget:0.0 ~complete:true
    ~seconds:0.0;
  Alcotest.(check bool) "disabled stays dead" false (Profile.live p);
  Alcotest.(check int) "no nodes recorded" 0 (List.length (Profile.nodes p));
  Alcotest.(check int) "nothing to drain" 0 (List.length (Profile.drain p))

(* --- Early-exit paths: Timeout / Deadline / Fault flush consistently --- *)

let test_timeout_flushes_profile_and_counters () =
  let rng = Rng.create 44 in
  let q = two_table_query () in
  (* d = 1: the join is a 500×500 cross blowup; budget 1000 dies inside. *)
  let cat = two_table_catalog rng ~n_r:500 ~n_s:500 ~d:1 in
  let tel = Ctx.create () in
  let prof = Profile.create () in
  let env = Profile.to_env ~env:(Ctx.to_env tel) prof in
  let exec = Executor.create ~env cat q (Executor.budget 1000.0) in
  Alcotest.check_raises "timeout" Executor.Timeout (fun () ->
      ignore (Executor.execute exec full_join));
  let nodes = Profile.nodes prof in
  Alcotest.(check int) "two scans + the dying join" 3 (List.length nodes);
  let last = List.nth nodes 2 in
  Alcotest.(check bool) "join flushed incomplete" false last.Profile.n_complete;
  Alcotest.(check (float 0.0)) "incomplete rows_out is 0" 0.0
    last.Profile.n_rows_out;
  Alcotest.(check bool) "the dying node drew budget" true
    (last.Profile.n_budget > 0.0);
  (* Counter parity: exec.budget_spent was flushed before the raise. *)
  let spent = Metric.Counter.value (Ctx.counter tel "exec.budget_spent") in
  Alcotest.(check (float 0.0)) "budget counter flushed on timeout"
    (Executor.total_produced exec)
    spent;
  (* Per-node budget attribution never exceeds the executor total. *)
  let attributed =
    List.fold_left (fun a (n : Profile.node) -> a +. n.Profile.n_budget) 0.0
      nodes
  in
  Alcotest.(check bool) "attributed budget bounded" true
    (attributed <= Executor.total_produced exec +. 1e-9);
  (* One exec.node_ms observation per flushed node, incomplete included. *)
  let h = Ctx.histogram tel "exec.node_ms" in
  Alcotest.(check int) "node_ms histogram count" 3 (Metric.Histogram.count h)

let test_deadline_leaves_no_phantom_node () =
  let rng = Rng.create 45 in
  let q = two_table_query () in
  let cat = two_table_catalog rng ~n_r:100 ~n_s:100 ~d:5 in
  let prof = Profile.create () in
  let dl = Deadline.after 0.0 in
  let env =
    Profile.to_env ~env:(Env.with_deadline Env.default dl) prof
  in
  let exec = Executor.create ~env cat q (Executor.budget 1e6) in
  Alcotest.check_raises "deadline" Deadline.Expired (fun () ->
      ignore (Executor.execute exec full_join));
  Deadline.cancel dl;
  (* The cooperative check fires at the node boundary, before any
     operator starts: no half-recorded scratch may leak. *)
  Alcotest.(check int) "no phantom nodes" 0
    (List.length (Profile.nodes prof))

let test_fault_flushes_incomplete_node () =
  let rng = Rng.create 46 in
  let q = two_table_query ~select_const:(Some 1) () in
  let cat = two_table_catalog rng ~n_r:100 ~n_s:100 ~d:5 in
  let prof = Profile.create () in
  let fault =
    Fault.plan { Fault.no_faults with Fault.udf_rate = 1.0 } (Rng.create 7)
  in
  let env = Profile.to_env ~env:(Env.with_fault Env.default fault) prof in
  let exec = Executor.create ~env cat q (Executor.budget 1e6) in
  (try
     ignore (Executor.execute exec full_join);
     Alcotest.fail "expected an injected fault"
   with Fault.Injected _ -> ());
  let nodes = Profile.nodes prof in
  Alcotest.(check bool) "dying node flushed" true (nodes <> []);
  let last = List.nth nodes (List.length nodes - 1) in
  Alcotest.(check bool) "flushed incomplete" false last.Profile.n_complete;
  Alcotest.(check string) "armed fault forces the scalar path" "scalar"
    last.Profile.n_path

(* --- Golden explain operator table --- *)

let golden_join =
  { Recorder.p_kind = "hash-join"; p_path = "join_ints"; p_repr = "ints,ints";
    p_rows_in = 450.0; p_rows_out = 30.0; p_selectivity = 0.001;
    p_batches = 2; p_sel_density = 0.001; p_chain_max = 3; p_chain_mean = 1.5;
    p_budget = 30.0; p_complete = true; p_ms = 0.75 }

let golden_scan =
  { Recorder.p_kind = "scan"; p_path = "sel_eq_const"; p_repr = "ints";
    p_rows_in = 300.0; p_rows_out = 150.0; p_selectivity = 0.5;
    p_batches = 1; p_sel_density = 0.25; p_chain_max = 0; p_chain_mean = 0.0;
    p_budget = 150.0; p_complete = false; p_ms = 0.25 }

let golden_node expr depth profile observed =
  { Recorder.node_expr = expr; node_mask = 3; node_depth = depth;
    node_predicted = Some 10.0; node_observed = Some observed;
    node_q_error = Some 3.0; node_profile = profile }

let test_golden_operator_table () =
  let r = Recorder.create () in
  Recorder.record r
    (Recorder.Executed
       { step = 0;
         nodes =
           [ golden_node "(R ⨝ S)" 0 (Some golden_join) 30.0;
             golden_node "R" 1 (Some golden_scan) 150.0 ];
         cost = 30.0;
         timed_out = false });
  let rendered = Explain.plan_tables r in
  Alcotest.(check bool) "profile table present" true
    (contains rendered "Operator profile for step 0");
  let expected =
    String.concat "\n"
      [ "Operator profile for step 0";
        "  Plan node  Op         Path                   Time %  ms     \
         Rows in  Rows out  Sel    Dens   Repr       Chain ";
        "  ---------  ---------  ---------------------  ------  -----  \
         -------  --------  -----  -----  ---------  ------";
        "  (R \xe2\xa8\x9d S)  hash-join  join_ints              75.0    0.750  \
         450      30        0.001  0.001  ints,ints  3/1.50";
        "    R        scan       sel_eq_const (killed)  25.0    0.250  \
         300      150       0.5    0.25   ints       -     " ]
  in
  Alcotest.(check bool) "golden rows rendered" true (contains rendered expected);
  (* Unprofiled events render byte-identically to the pre-profile shape. *)
  let r2 = Recorder.create () in
  Recorder.record r2
    (Recorder.Executed
       { step = 0;
         nodes = [ golden_node "(R ⨝ S)" 0 None 30.0 ];
         cost = 30.0;
         timed_out = false });
  Alcotest.(check bool) "no profile table without profiles" false
    (contains (Explain.plan_tables r2) "Operator profile")

(* --- End to end: one driver run, one trace id, three panes agree --- *)

let test_panes_agree_on_one_trace () =
  let buf = Span.memory_buffer () in
  let recorder = Recorder.create () in
  let tel =
    Ctx.with_trace_id
      (Ctx.create ~sink:(Span.Memory buf) ~recorder ())
      "t-obs-1"
  in
  let prof = Profile.create () in
  let env = Profile.to_env ~env:(Ctx.to_env tel) prof in
  let rng = Rng.create 51 in
  let q = two_table_query ~select_const:(Some 1) () in
  let cat = two_table_catalog rng ~n_r:200 ~n_s:150 ~d:10 in
  let config = Driver.default_config ~rng:(Rng.create 52) in
  let (_ : Driver.outcome) = Driver.run ~env config cat q in
  Ctx.flush tel;
  (* Pull the join node's profile out of the recorder. *)
  let profiled =
    List.concat_map
      (function
        | Recorder.Executed { nodes; _ } ->
          List.filter_map
            (fun (n : Recorder.exec_node) ->
              Option.map (fun p -> (n, p)) n.Recorder.node_profile)
            nodes
        | _ -> [])
      (Recorder.events recorder)
  in
  Alcotest.(check bool) "recorder carries profiles" true (profiled <> []);
  let n, p =
    List.find (fun ((_, p) : _ * Recorder.node_profile) ->
        p.Recorder.p_kind = "hash-join")
      profiled
  in
  (* Pane 1: explain renders the operator table with this node. *)
  let report = Explain.report ~trace:"t-obs-1" recorder in
  Alcotest.(check bool) "explain shows the operator table" true
    (contains report "Operator profile");
  Alcotest.(check bool) "explain shows the join path" true
    (contains report p.Recorder.p_path);
  (* Pane 2: qlog record carries the same node with the same rows. *)
  let qr =
    Qlog.of_events ~trace:"t-obs-1" ~query:"two" ~strategy:"monsoon"
      ~outcome:"ok" ~latency:0.0 ~queue_wait:0.0
      (Recorder.events recorder)
  in
  let qn =
    List.find
      (fun (qn : Qlog.qnode) ->
        qn.Qlog.qn_expr = n.Recorder.node_expr
        && qn.Qlog.qn_kind = "hash-join")
      qr.Qlog.r_nodes
  in
  Alcotest.(check (float 0.0)) "qlog rows agree with recorder"
    p.Recorder.p_rows_out qn.Qlog.qn_rows_out;
  Alcotest.(check string) "qlog path agrees" p.Recorder.p_path
    qn.Qlog.qn_path;
  (* ... and survives the JSONL round trip. *)
  (match Qlog.of_json (Qlog.to_json qr) with
  | Error e -> Alcotest.failf "round trip: %s" e
  | Ok qr2 ->
    Alcotest.(check int) "nodes survive the round trip"
      (List.length qr.Qlog.r_nodes)
      (List.length qr2.Qlog.r_nodes));
  Alcotest.(check bool) "top-nodes report renders" true
    (contains (Qlog.top_nodes [ qr ]) "Hottest operators");
  (* Pane 3: the span timeline has one exec.node child per operator,
     joined on the same expression and trace id. *)
  let spans = Span.buffer_spans buf in
  let node_spans =
    List.filter (fun (s : Span.t) -> s.Span.name = "exec.node") spans
  in
  Alcotest.(check bool) "exec.node spans emitted" true (node_spans <> []);
  let attr s k = List.assoc_opt k s.Span.attrs in
  let joined =
    List.find_opt
      (fun s ->
        attr s "node" = Some (Span.Str n.Recorder.node_expr)
        && attr s "trace" = Some (Span.Str "t-obs-1")
        && attr s "rows_out" = Some (Span.Float p.Recorder.p_rows_out))
      node_spans
  in
  let joined =
    match joined with
    | Some s -> s
    | None -> Alcotest.fail "no exec.node span joins expr + trace + rows"
  in
  (* The operator span nests under its exec.execute parent. *)
  let parent_name =
    match joined.Span.parent with
    | None -> "-"
    | Some pid -> (
      match List.find_opt (fun (s : Span.t) -> s.Span.id = pid) spans with
      | Some s -> s.Span.name
      | None -> "-")
  in
  Alcotest.(check string) "operator span nests under exec.execute"
    "exec.execute" parent_name

let () =
  Alcotest.run "profile"
    [ ( "differential",
        [ Alcotest.test_case "rows match the row engine" `Quick
            test_rows_match_row_engine ] );
      ( "determinism",
        [ Alcotest.test_case "byte-identical across domains" `Quick
            test_jobs_invariance;
          Alcotest.test_case "byte-identical audited vs not" `Quick
            test_audit_invariance ] );
      ( "representation",
        [ Alcotest.test_case "ints: fused join + fused select" `Quick
            test_repr_ints;
          Alcotest.test_case "dict select, float and boxed joins" `Quick
            test_repr_dict_and_boxed;
          Alcotest.test_case "disabled collector records nothing" `Quick
            test_disabled_collector_noop ] );
      ( "early-exit",
        [ Alcotest.test_case "timeout flushes profile + counters" `Quick
            test_timeout_flushes_profile_and_counters;
          Alcotest.test_case "expired deadline leaves no phantom" `Quick
            test_deadline_leaves_no_phantom_node;
          Alcotest.test_case "injected fault flushes incomplete" `Quick
            test_fault_flushes_incomplete_node ] );
      ( "panes",
        [ Alcotest.test_case "golden explain operator table" `Quick
            test_golden_operator_table;
          Alcotest.test_case "explain + qlog + spans agree" `Quick
            test_panes_agree_on_one_trace ] ) ]
