let now () = Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let x = f () in
  (x, now () -. t0)

type accum = { mutable sum : float }

let accum () = { sum = 0.0 }

let add_to acc f =
  let x, dt = time f in
  acc.sum <- acc.sum +. dt;
  x

let total acc = acc.sum
let reset acc = acc.sum <- 0.0
