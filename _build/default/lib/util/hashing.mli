(** 64-bit hashing used by the sketches.

    The HyperLogLog analysis assumes hash outputs that behave like uniform
    64-bit strings; the stdlib [Hashtbl.hash] only produces 30 bits, so we
    provide FNV-1a over strings plus a strong avalanche finisher. *)

val mix : int64 -> int64
(** SplitMix64 finalizer: full-avalanche 64-bit mixing. *)

val string : string -> int64
(** FNV-1a 64-bit over the bytes of the string, then mixed. *)

val int : int -> int64
(** Mixes the two's-complement image of the integer. *)

val combine : int64 -> int64 -> int64
(** Order-dependent combination of two hashes. *)
