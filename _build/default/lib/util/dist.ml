let uniform rng ~lo ~hi = lo +. Rng.float rng (hi -. lo)

let normal rng ~mean ~stddev =
  (* Box–Muller; one value per call keeps the sampler stateless. *)
  let u1 = max (Rng.unit_float rng) 1e-300 in
  let u2 = Rng.unit_float rng in
  let r = sqrt (-2.0 *. log u1) in
  mean +. (stddev *. r *. cos (2.0 *. Float.pi *. u2))

let rec gamma rng ~shape ~scale =
  assert (shape > 0.0 && scale > 0.0);
  if shape < 1.0 then
    (* Boost: Gamma(a) = Gamma(a+1) * U^(1/a). *)
    let g = gamma rng ~shape:(shape +. 1.0) ~scale:1.0 in
    let u = max (Rng.unit_float rng) 1e-300 in
    scale *. g *. (u ** (1.0 /. shape))
  else begin
    (* Marsaglia–Tsang squeeze method. *)
    let d = shape -. (1.0 /. 3.0) in
    let c = 1.0 /. sqrt (9.0 *. d) in
    let rec loop () =
      let x = normal rng ~mean:0.0 ~stddev:1.0 in
      let v = 1.0 +. (c *. x) in
      if v <= 0.0 then loop ()
      else
        let v = v *. v *. v in
        let u = max (Rng.unit_float rng) 1e-300 in
        if u < 1.0 -. (0.0331 *. x *. x *. x *. x) then d *. v
        else if log u < (0.5 *. x *. x) +. (d *. (1.0 -. v +. log v)) then
          d *. v
        else loop ()
    in
    scale *. loop ()
  end

let beta rng ~alpha ~beta =
  let x = gamma rng ~shape:alpha ~scale:1.0 in
  let y = gamma rng ~shape:beta ~scale:1.0 in
  let v = x /. (x +. y) in
  (* Keep strictly inside (0,1) so downstream ceilings stay in range. *)
  Float.min (Float.max v 1e-12) (1.0 -. 1e-12)

(* Lanczos approximation of log-gamma, good to ~1e-13 for x > 0. *)
let lanczos_coef =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec log_gamma x =
  if x < 0.5 then
    (* Reflection formula. *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1.0 -. x)
  else begin
    let g = 7.0 in
    let a = ref lanczos_coef.(0) in
    for i = 1 to 8 do
      a := !a +. (lanczos_coef.(i) /. (x +. float_of_int i -. 1.0))
    done;
    let t = x +. g -. 0.5 in
    (0.5 *. log (2.0 *. Float.pi)) +. ((x -. 0.5) *. log t) -. t +. log !a
  end

let beta_pdf ~alpha ~beta x =
  if x <= 0.0 || x >= 1.0 then 0.0
  else
    let log_b = log_gamma alpha +. log_gamma beta -. log_gamma (alpha +. beta) in
    exp (((alpha -. 1.0) *. log x) +. ((beta -. 1.0) *. log (1.0 -. x)) -. log_b)

let exponential rng ~rate =
  let u = max (Rng.unit_float rng) 1e-300 in
  -.log u /. rate

let bernoulli rng ~p = Rng.unit_float rng < p

type zipf = { cdf : float array }

let zipf_make ~n ~z =
  assert (n > 0);
  let cdf = Array.make n 0.0 in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    total := !total +. (1.0 /. (float_of_int (i + 1) ** z));
    cdf.(i) <- !total
  done;
  let t = !total in
  for i = 0 to n - 1 do
    cdf.(i) <- cdf.(i) /. t
  done;
  { cdf }

let zipf_n { cdf } = Array.length cdf

let zipf_draw rng { cdf } =
  let u = Rng.unit_float rng in
  (* Binary search for the first index with cdf >= u. *)
  let lo = ref 0 and hi = ref (Array.length cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) < u then lo := mid + 1 else hi := mid
  done;
  !lo + 1

let categorical rng weights =
  let total = Array.fold_left ( +. ) 0.0 weights in
  assert (total > 0.0);
  let u = Rng.float rng total in
  let rec go i acc =
    if i = Array.length weights - 1 then i
    else
      let acc = acc +. weights.(i) in
      if u < acc then i else go (i + 1) acc
  in
  go 0 0.0

let mean a =
  assert (Array.length a > 0);
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let percentile a p =
  assert (Array.length a > 0 && p >= 0.0 && p <= 100.0);
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

let median a =
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let n = Array.length sorted in
  if n mod 2 = 1 then sorted.(n / 2)
  else (sorted.((n / 2) - 1) +. sorted.(n / 2)) /. 2.0

let stddev a =
  let m = mean a in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a
    /. float_of_int (Array.length a)
  in
  sqrt var
