lib/util/timer.mli:
