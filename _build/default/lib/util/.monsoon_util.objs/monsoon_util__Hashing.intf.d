lib/util/hashing.mli:
