lib/util/rng.mli:
