(** Samplers for the distributions used by the Monsoon priors and the
    workload generators. All samplers take an explicit {!Rng.t}. *)

val uniform : Rng.t -> lo:float -> hi:float -> float
(** Uniform on [lo, hi). *)

val normal : Rng.t -> mean:float -> stddev:float -> float
(** Gaussian via Box–Muller. *)

val gamma : Rng.t -> shape:float -> scale:float -> float
(** Marsaglia–Tsang for [shape >= 1], boosted for [shape < 1].
    Requires [shape > 0] and [scale > 0]. *)

val beta : Rng.t -> alpha:float -> beta:float -> float
(** Beta(alpha, beta) via two gamma draws. Result in (0, 1). *)

val beta_pdf : alpha:float -> beta:float -> float -> float
(** Density of Beta(alpha, beta) at a point of (0, 1); used to render the
    prior shapes of the paper's Figure 2. *)

val exponential : Rng.t -> rate:float -> float

val bernoulli : Rng.t -> p:float -> bool

type zipf
(** Precomputed Zipf(z) distribution over \{1, ..., n\}. A skew of [z = 0]
    degenerates to uniform. *)

val zipf_make : n:int -> z:float -> zipf
val zipf_draw : Rng.t -> zipf -> int
(** Draws a rank in [1, n]; rank 1 is the most frequent. *)

val zipf_n : zipf -> int

val categorical : Rng.t -> float array -> int
(** [categorical rng weights] draws an index proportionally to
    non-negative [weights]. *)

val mean : float array -> float
val median : float array -> float
(** Median of a non-empty array (the array is not modified). *)

val percentile : float array -> float -> float
(** [percentile a p] with [p] in [0, 100]; nearest-rank. *)

val stddev : float array -> float
