(** Deterministic pseudo-random number generation.

    A small, fast, splittable SplitMix64 generator. Everything stochastic in
    the repository (data generators, priors, MCTS rollouts) threads one of
    these explicitly so that every experiment is reproducible from a seed. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from a seed. *)

val copy : t -> t
(** Independent copy with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new, statistically independent
    generator; useful to give sub-components their own stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform on [0, n-1]. Requires [n > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform on the inclusive range [lo, hi]. *)

val float : t -> float -> float
(** [float t x] is uniform on [0, x). *)

val unit_float : t -> float
(** Uniform on [0, 1). *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
