let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let string s =
  let h = ref fnv_offset in
  for i = 0 to String.length s - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code s.[i]));
    h := Int64.mul !h fnv_prime
  done;
  mix !h

let int i = mix (Int64.of_int i)

let combine a b = mix (Int64.add (Int64.mul a 0x9E3779B97F4A7C15L) b)
