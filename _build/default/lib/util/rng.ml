type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = s }

let int t n =
  assert (n > 0);
  (* Keep 62 bits so the value stays non-negative in OCaml's 63-bit native
     int. Rejection-free modulo is fine for our purposes; bias is < 2^-40
     for the domain sizes used here. *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  v mod n

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let unit_float t =
  (* 53 random bits into [0,1). *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int v *. 0x1p-53

let float t x = unit_float t *. x

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
