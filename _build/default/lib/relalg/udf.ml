open Monsoon_storage

type t = { name : string; fn : Value.t array -> Value.t }

let make name fn = { name; fn }

let identity hint =
  { name = Printf.sprintf "id(%s)" hint;
    fn =
      (function
      | [| v |] -> v
      | args ->
        invalid_arg
          (Printf.sprintf "identity UDF applied to %d args" (Array.length args)));
  }

let apply t args = t.fn args
let name t = t.name
