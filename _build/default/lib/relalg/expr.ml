type t =
  | Leaf of Relset.t
  | Join of t * t
  | Stats of t

let rec mask = function
  | Leaf m -> m
  | Join (a, b) -> Relset.union (mask a) (mask b)
  | Stats e -> mask e

let leaf m =
  if m = Relset.empty then invalid_arg "Expr.leaf: empty mask";
  Leaf m

let base i = leaf (Relset.singleton i)

let has_stats = function Stats _ -> true | Leaf _ | Join _ -> false

let join a b =
  if not (Relset.disjoint (mask a) (mask b)) then
    invalid_arg "Expr.join: overlapping sides";
  if has_stats a || has_stats b then
    invalid_arg "Expr.join: cannot join a Σ-topped expression";
  (* Canonical child order keeps logically identical plans structurally
     identical. *)
  if mask a <= mask b then Join (a, b) else Join (b, a)

let stats e =
  if has_stats e then invalid_arg "Expr.stats: already has Σ";
  Stats e

let strip_stats = function Stats e -> e | (Leaf _ | Join _) as e -> e

let rec key = function
  | Leaf m -> string_of_int m
  | Join (a, b) -> Printf.sprintf "(%s*%s)" (key a) (key b)
  | Stats e -> Printf.sprintf "S%s" (key e)

let compare a b = String.compare (key a) (key b)
let equal a b = compare a b = 0

let join_nodes e =
  let rec go acc = function
    | Leaf _ -> acc
    | Join (a, b) -> ((mask a, mask b) :: go (go acc a) b)
    | Stats e -> go acc e
  in
  List.rev (go [] e)

let rec leaves = function
  | Leaf m -> [ m ]
  | Join (a, b) -> leaves a @ leaves b
  | Stats e -> leaves e

let describe q e =
  let mask_name m =
    match Relset.to_list m with
    | [ i ] -> (Query.rel_by_id q i).Query.alias
    | ids ->
      Printf.sprintf "[%s]"
        (String.concat ","
           (List.map (fun i -> (Query.rel_by_id q i).Query.alias) ids))
  in
  let rec go = function
    | Leaf m -> mask_name m
    | Join (a, b) -> Printf.sprintf "(%s ⨝ %s)" (go a) (go b)
    | Stats e -> Printf.sprintf "Σ(%s)" (go e)
  in
  go e
