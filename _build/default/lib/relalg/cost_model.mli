(** The paper's statistical model (Sec 4.3) and cost function (Sec 4.4).

    Join size follows the classical formula (Eq. 2)
    [c(r1 ⨝ r2) = c(r1)·c(r2) / max(d1, d2)] with one factor per applicable
    equi-join predicate, and equality selections contribute [1/d]. The cost
    of executing a plan is the number of intermediate objects it
    materializes: each join node contributes its output count, a Σ node an
    extra pass over its input, already-materialized leaves contribute
    nothing, and — matching the paper's worked example — the final result of
    the complete query is not charged.

    The estimator is parameterized over an environment so the same code
    serves the MDP simulator (sampling, memoizing), the real driver
    (measured statistics), and the classical baselines (default or estimated
    statistics). *)

type env = {
  count_of : Relset.t -> float option;
      (** Known result counts ("step 1" of the paper's recursive generation:
          a count already in S short-circuits estimation). Must answer every
          materialized mask, including filtered base instances once
          executed. *)
  raw_count : int -> float;
      (** Unfiltered base-table cardinality of a relation instance; always
          known (the paper assumes all input set sizes available). *)
  distinct_of : term:Term.t -> pred:int option -> c_own:float -> c_partner:float option -> float;
      (** Distinct-value count of a term in the context of a predicate
          ([pred = None] for selections). [c_own] is the cardinality of the
          expression the term is evaluated over, [c_partner] of the other
          join side. Implementations may look up measured values, use
          defaults, or sample a prior — but must always answer. The result
          is clamped to [1, c_own] by the caller. *)
  record_count : Relset.t -> float -> unit;
      (** Called once for every newly computed mask count, bottom-up
          ("step 5": add c(r) to S). Pass [ignore] when memoization into a
          statistics set is not wanted. *)
}

val join_selectivity : d1:float -> d2:float -> float
(** [1 / max(d1, d2)], the per-predicate factor of Eq. 2. *)

val estimate : Query.t -> env -> Expr.t -> float
(** Estimated result cardinality of the expression (Σ is transparent).
    Always >= 0; never raises on well-formed inputs. *)

val cost : Query.t -> env -> Expr.t -> float
(** Estimated execution cost (intermediate objects) of materializing the
    expression, assuming every leaf is already materialized. The complete
    query's final materialization is excluded. *)

val clamp_distinct : c_own:float -> float -> float
(** Clamp a distinct count into [1, max(1, c_own)]. *)
