open Monsoon_storage

type t =
  | Join of { id : int; left : Term.t; right : Term.t }
  | Select of { id : int; term : Term.t; value : Value.t }

let id = function Join { id; _ } | Select { id; _ } -> id

let rels = function
  | Join { left; right; _ } -> Relset.union (Term.rels left) (Term.rels right)
  | Select { term; _ } -> Term.rels term

let evaluable p mask = Relset.subset (rels p) mask

let terms = function
  | Join { left; right; _ } -> [ left; right ]
  | Select { term; _ } -> [ term ]

let describe = function
  | Join { left; right; _ } ->
    Printf.sprintf "%s = %s" (Term.describe left) (Term.describe right)
  | Select { term; value; _ } ->
    Printf.sprintf "%s = %s" (Term.describe term) (Value.to_string value)

let join_sides = function
  | Join { left; right; _ } -> Some (left, right)
  | Select _ -> None
