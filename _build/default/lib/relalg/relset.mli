(** Sets of relation instances within one query, as int bitmasks.

    A query names at most 62 relation instances, each identified by a small
    integer id; a [Relset.t] is the bitmask of a subset of them. Join
    enumeration, predicate applicability, and the statistics catalog all key
    on these masks. *)

type t = int

val empty : t
val singleton : int -> t
val add : int -> t -> t
val mem : int -> t -> bool
val union : t -> t -> t
val inter : t -> t -> t
val subset : t -> t -> bool
(** [subset a b] is true when [a] is a subset of [b]. *)

val disjoint : t -> t -> bool
val cardinal : t -> int
val to_list : t -> int list
(** Ascending ids. *)

val of_list : int list -> t
val full : int -> t
(** [full n] is the set of ids 0..n-1. *)

val equal : t -> t -> bool
val min_elt : t -> int
(** Raises [Invalid_argument] on the empty set. *)

val subsets_nonempty : t -> t list
(** All non-empty subsets (for DP enumeration). *)

val pp : Format.formatter -> t -> unit
