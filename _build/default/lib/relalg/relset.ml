type t = int

let empty = 0
let singleton i = 1 lsl i
let add i s = s lor (1 lsl i)
let mem i s = s land (1 lsl i) <> 0
let union = ( lor )
let inter = ( land )
let subset a b = a land b = a
let disjoint a b = a land b = 0

let cardinal s =
  let rec go s acc = if s = 0 then acc else go (s lsr 1) (acc + (s land 1)) in
  go s 0

let to_list s =
  let rec go i s acc =
    if s = 0 then List.rev acc
    else if s land 1 <> 0 then go (i + 1) (s lsr 1) (i :: acc)
    else go (i + 1) (s lsr 1) acc
  in
  go 0 s []

let of_list = List.fold_left (fun acc i -> add i acc) empty

let full n = (1 lsl n) - 1

let equal = Int.equal

let min_elt s =
  if s = 0 then invalid_arg "Relset.min_elt: empty";
  let rec go i s = if s land 1 <> 0 then i else go (i + 1) (s lsr 1) in
  go 0 s

let subsets_nonempty s =
  (* Standard subset-enumeration trick: iterate sub = (sub - 1) land s. *)
  let rec go sub acc =
    if sub = 0 then acc else go ((sub - 1) land s) (sub :: acc)
  in
  if s = 0 then [] else go s []

let pp fmt s =
  Format.fprintf fmt "{%s}"
    (String.concat "," (List.map string_of_int (to_list s)))
