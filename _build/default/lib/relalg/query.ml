type rel = { id : int; table : string; alias : string }

type t = {
  name : string;
  rels : rel array;
  preds : Predicate.t array;
  terms : Term.t array;
  preds_of_term : int list array;   (* term id -> pred ids *)
  select_of_rel : int list array;   (* rel id -> select pred ids *)
}

let name t = t.name
let rels t = t.rels
let rel_by_id t i = t.rels.(i)
let n_rels t = Array.length t.rels
let all_mask t = Relset.full (n_rels t)
let preds t = t.preds
let pred t i = t.preds.(i)
let terms t = t.terms
let term t i = t.terms.(i)

let evaluable_preds t mask =
  Array.to_list t.preds
  |> List.filter (fun p -> Predicate.evaluable p mask)
  |> List.map Predicate.id

let newly_evaluable t ~left ~right =
  let union = Relset.union left right in
  Array.to_list t.preds
  |> List.filter (fun p ->
         Predicate.evaluable p union
         && (not (Predicate.evaluable p left))
         && not (Predicate.evaluable p right))
  |> List.map Predicate.id

let connecting t left right =
  Array.to_list t.preds
  |> List.filter (fun p ->
         match Predicate.join_sides p with
         | None -> false
         | Some (l, r) ->
           let lm = Term.rels l and rm = Term.rels r in
           (Relset.subset lm left && Relset.subset rm right)
           || (Relset.subset lm right && Relset.subset rm left))
  |> List.map Predicate.id

let connected t left right = connecting t left right <> []

let preds_of_term t id = t.preds_of_term.(id)
let select_preds_of_rel t id = t.select_of_rel.(id)

let interesting_terms t mask =
  Array.to_list t.terms
  |> List.filter (fun tm ->
         t.preds_of_term.(tm.Term.id) <> [] && Term.evaluable tm mask)

module Builder = struct
  type query = t

  type t = {
    bname : string;
    mutable brels : rel list;       (* reversed *)
    mutable bterms : Term.t list;   (* reversed *)
    mutable bpreds : Predicate.t list; (* reversed *)
    mutable next_rel : int;
    mutable next_term : int;
    mutable next_pred : int;
  }

  let create ~name =
    { bname = name; brels = []; bterms = []; bpreds = [];
      next_rel = 0; next_term = 0; next_pred = 0 }

  let rel b ~table ~alias =
    let id = b.next_rel in
    if id >= 62 then invalid_arg "Query.Builder.rel: too many instances";
    b.next_rel <- id + 1;
    b.brels <- { id; table; alias } :: b.brels;
    id

  let check_args b args =
    List.iter
      (fun (r, _) ->
        if r < 0 || r >= b.next_rel then
          invalid_arg "Query.Builder.term: unknown relation instance")
      args

  let term b udf args =
    check_args b args;
    let t = Term.make ~id:b.next_term udf args in
    b.next_term <- b.next_term + 1;
    b.bterms <- t :: b.bterms;
    t

  let fresh_pred_id b =
    let id = b.next_pred in
    b.next_pred <- id + 1;
    id

  let join_pred b l r =
    if not (Relset.disjoint (Term.rels l) (Term.rels r)) then
      invalid_arg "Query.Builder.join_pred: overlapping sides";
    b.bpreds <- Predicate.Join { id = fresh_pred_id b; left = l; right = r } :: b.bpreds

  let select_pred b tm value =
    b.bpreds <- Predicate.Select { id = fresh_pred_id b; term = tm; value } :: b.bpreds

  let build b : query =
    if b.next_rel = 0 then invalid_arg "Query.Builder.build: no relations";
    let rels = Array.of_list (List.rev b.brels) in
    let terms = Array.of_list (List.rev b.bterms) in
    let preds = Array.of_list (List.rev b.bpreds) in
    Array.iteri (fun i r -> assert (r.id = i)) rels;
    Array.iteri (fun i tm -> assert (tm.Term.id = i)) terms;
    Array.iteri (fun i p -> assert (Predicate.id p = i)) preds;
    let preds_of_term = Array.make (Array.length terms) [] in
    Array.iter
      (fun p ->
        List.iter
          (fun tm ->
            preds_of_term.(tm.Term.id) <-
              Predicate.id p :: preds_of_term.(tm.Term.id))
          (Predicate.terms p))
      preds;
    Array.iteri (fun i l -> preds_of_term.(i) <- List.rev l) preds_of_term;
    let select_of_rel = Array.make (Array.length rels) [] in
    Array.iter
      (fun p ->
        match p with
        | Predicate.Select { term = tm; _ } when Term.is_single_rel tm ->
          let r = Relset.min_elt (Term.rels tm) in
          select_of_rel.(r) <- Predicate.id p :: select_of_rel.(r)
        | Predicate.Select _ | Predicate.Join _ -> ())
      preds;
    Array.iteri (fun i l -> select_of_rel.(i) <- List.rev l) select_of_rel;
    { name = b.bname; rels; preds; terms; preds_of_term; select_of_rel }
end
