lib/relalg/relset.ml: Format Int List String
