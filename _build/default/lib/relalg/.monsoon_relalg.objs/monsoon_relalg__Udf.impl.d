lib/relalg/udf.ml: Array Monsoon_storage Printf Value
