lib/relalg/expr.mli: Query Relset
