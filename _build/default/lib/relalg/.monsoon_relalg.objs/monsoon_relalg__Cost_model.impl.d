lib/relalg/cost_model.ml: Expr Float List Predicate Query Relset Term
