lib/relalg/term.mli: Monsoon_storage Relset Udf Value
