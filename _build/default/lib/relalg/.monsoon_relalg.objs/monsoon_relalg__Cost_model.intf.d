lib/relalg/cost_model.mli: Expr Query Relset Term
