lib/relalg/query.ml: Array List Predicate Relset Term
