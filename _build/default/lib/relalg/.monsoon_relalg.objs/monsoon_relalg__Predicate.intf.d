lib/relalg/predicate.mli: Monsoon_storage Relset Term Value
