lib/relalg/udf.mli: Monsoon_storage Value
