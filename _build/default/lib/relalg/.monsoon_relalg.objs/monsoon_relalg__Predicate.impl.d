lib/relalg/predicate.ml: Monsoon_storage Printf Relset Term Value
