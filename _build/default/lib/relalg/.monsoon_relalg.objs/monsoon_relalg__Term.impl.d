lib/relalg/term.ml: Array List Monsoon_storage Printf Relset String Udf Value
