lib/relalg/expr.ml: List Printf Query Relset String
