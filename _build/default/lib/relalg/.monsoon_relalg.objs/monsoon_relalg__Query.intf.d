lib/relalg/query.mli: Monsoon_storage Predicate Relset Term Udf
