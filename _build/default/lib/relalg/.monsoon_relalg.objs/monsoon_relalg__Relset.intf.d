lib/relalg/relset.mli: Format
