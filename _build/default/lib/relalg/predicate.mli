(** Partially obscured predicates (paper Sec 3.1).

    Every predicate in scope compares UDF outputs: either an equi-join
    between two terms, or an equality selection of a term against a
    constant. The value-level grammar of the paper reduces to these two
    shapes once every [value] is (w.l.o.g.) a [funcEval]. *)

open Monsoon_storage

type t =
  | Join of { id : int; left : Term.t; right : Term.t }
      (** [F_left(...) = F_right(...)] where the two terms read disjoint
          relation-instance sets. *)
  | Select of { id : int; term : Term.t; value : Value.t }
      (** [F(...) = const]. *)

val id : t -> int

val rels : t -> Relset.t
(** All relation instances the predicate touches. *)

val evaluable : t -> Relset.t -> bool
(** True when every referenced instance is inside the mask, i.e. the
    predicate can be checked on tuples of such an expression. *)

val terms : t -> Term.t list
val describe : t -> string

val join_sides : t -> (Term.t * Term.t) option
(** [Some (l, r)] for join predicates. *)
