(** Query intermediate representation.

    A query is a set of base relation *instances* (the same catalog table may
    appear several times, as [o1]/[o2] in the paper's fraud example) plus a
    conjunction of partially obscured predicates over terms. Join ordering is
    the optimization problem; projections/aggregates are irrelevant to it and
    live outside this IR. *)

type rel = { id : int; table : string; alias : string }

type t

val name : t -> string
val rels : t -> rel array
val rel_by_id : t -> int -> rel
val n_rels : t -> int
val all_mask : t -> Relset.t
val preds : t -> Predicate.t array
val pred : t -> int -> Predicate.t
val terms : t -> Term.t array
(** All distinct terms, indexed by term id. *)

val term : t -> int -> Term.t

val evaluable_preds : t -> Relset.t -> int list
(** Ids of predicates checkable on an expression covering the mask. *)

val newly_evaluable : t -> left:Relset.t -> right:Relset.t -> int list
(** Predicates that become checkable when two disjoint expressions are
    joined: evaluable on the union but on neither side alone. *)

val connecting : t -> Relset.t -> Relset.t -> int list
(** Join predicates usable as equi-join conditions between the two sides:
    one term entirely within [left], the other entirely within [right].
    A subset of {!newly_evaluable}; the rest are applied as post-join
    filters. *)

val connected : t -> Relset.t -> Relset.t -> bool

val preds_of_term : t -> int -> int list
(** Predicates mentioning the term. *)

val select_preds_of_rel : t -> int -> int list
(** Single-instance selection predicates pushed into the scan of a rel. *)

val interesting_terms : t -> Relset.t -> Term.t list
(** Terms that participate in at least one predicate and are evaluable on
    the mask — the ones a Σ pass over such an expression measures. *)

(** Incremental construction. *)
module Builder : sig
  type query := t
  type t

  val create : name:string -> t

  val rel : t -> table:string -> alias:string -> int
  (** Registers a relation instance, returning its id. *)

  val term : t -> Udf.t -> (int * string) list -> Term.t
  (** Creates a term over previously registered instances. Reuse the returned
      value to share one term across several predicates. *)

  val join_pred : t -> Term.t -> Term.t -> unit
  (** Adds [l = r]. The two terms must span disjoint, non-empty instance
      sets. *)

  val select_pred : t -> Term.t -> Monsoon_storage.Value.t -> unit

  val build : t -> query
  (** Validates and freezes. Raises [Invalid_argument] on an ill-formed
      query (no instances, dangling ids, overlapping join sides). *)
end
