type env = {
  count_of : Relset.t -> float option;
  raw_count : int -> float;
  distinct_of :
    term:Term.t -> pred:int option -> c_own:float -> c_partner:float option -> float;
  record_count : Relset.t -> float -> unit;
}

let clamp_distinct ~c_own d = Float.max 1.0 (Float.min d (Float.max 1.0 c_own))

let join_selectivity ~d1 ~d2 = 1.0 /. Float.max 1.0 (Float.max d1 d2)

(* Distinct count of [tm] in the context of predicate [pred], asking the
   environment and clamping to the spanning expression's cardinality. *)
let distinct env ~tm ~pred ~c_own ~c_partner =
  clamp_distinct ~c_own (env.distinct_of ~term:tm ~pred ~c_own ~c_partner)

let select_selectivity q env ~pid ~c_own =
  match Query.pred q pid with
  | Predicate.Select { term = tm; _ } ->
    let d = distinct env ~tm ~pred:None ~c_own ~c_partner:None in
    1.0 /. d
  | Predicate.Join _ -> assert false

(* Selectivity of join predicate [pid] at a node whose sides have masks and
   cardinalities [(lm, lc)] and [(rm, rc)]. Falls back to treating the
   predicate as a filter with selectivity 1/max(d,d) over the smaller side
   when its terms straddle the two children (it is then applied post-join,
   but the size effect is modeled identically). *)
let join_pred_selectivity q env ~pid ~lm ~lc ~rm ~rc =
  match Query.pred q pid with
  | Predicate.Join { left; right; _ } ->
    let orient tl tr =
      let d1 = distinct env ~tm:tl ~pred:(Some pid) ~c_own:lc ~c_partner:(Some rc) in
      let d2 = distinct env ~tm:tr ~pred:(Some pid) ~c_own:rc ~c_partner:(Some lc) in
      join_selectivity ~d1 ~d2
    in
    if Relset.subset (Term.rels left) lm && Relset.subset (Term.rels right) rm
    then orient left right
    else if Relset.subset (Term.rels right) lm && Relset.subset (Term.rels left) rm
    then orient right left
    else begin
      (* Straddling predicate: usable only as a post-join filter. *)
      let c_own = lc *. rc in
      let d1 = distinct env ~tm:left ~pred:(Some pid) ~c_own ~c_partner:None in
      let d2 = distinct env ~tm:right ~pred:(Some pid) ~c_own ~c_partner:None in
      join_selectivity ~d1 ~d2
    end
  | Predicate.Select { term = tm; _ } ->
    let d = distinct env ~tm ~pred:None ~c_own:(lc *. rc) ~c_partner:None in
    1.0 /. d

let rec estimate q env expr =
  match expr with
  | Expr.Stats e -> estimate q env e
  | (Expr.Leaf _ | Expr.Join _) as e -> (
    (* "Step 1": a count already in S short-circuits generation. *)
    match env.count_of (Expr.mask e) with
    | Some c -> c
    | None -> estimate_fresh q env e)

and estimate_fresh q env expr =
  match expr with
  | Expr.Stats _ -> assert false
  | Expr.Leaf m -> (
    match Relset.to_list m with
    | [ i ] ->
      (* Unexecuted base instance: raw size reduced by pushed-down
         selections. *)
      let raw = env.raw_count i in
      let c =
        List.fold_left
          (fun c pid -> c *. select_selectivity q env ~pid ~c_own:raw)
          raw
          (Query.select_preds_of_rel q i)
      in
      env.record_count m c;
      c
    | _ ->
      (* A multi-instance leaf always refers to a materialized intermediate,
         whose count must be known. *)
      invalid_arg "Cost_model.estimate: unmaterialized intermediate leaf")
  | Expr.Join (a, b) ->
    let lc = estimate q env a and rc = estimate q env b in
    let lm = Expr.mask a and rm = Expr.mask b in
    let new_preds = Query.newly_evaluable q ~left:lm ~right:rm in
    let joins, selects =
      List.partition
        (fun pid ->
          match Query.pred q pid with
          | Predicate.Join _ -> true
          | Predicate.Select _ -> false)
        new_preds
    in
    let c = ref (lc *. rc) in
    List.iter
      (fun pid -> c := !c *. join_pred_selectivity q env ~pid ~lm ~lc ~rm ~rc)
      joins;
    (* Multi-instance selections apply after the join predicates. *)
    List.iter
      (fun pid -> c := !c *. select_selectivity q env ~pid ~c_own:!c)
      selects;
    let c = !c in
    env.record_count (Expr.mask expr) c;
    c

let cost q env expr =
  let full = Query.all_mask q in
  let rec node_cost ~is_root e =
    match e with
    | Expr.Leaf _ -> 0.0
    | Expr.Stats inner ->
      (* Materialize the inner expression, then one extra pass for Σ. *)
      let c = estimate q env inner in
      c +. node_cost ~is_root inner
    | Expr.Join (a, b) ->
      let c = estimate q env e in
      let self =
        (* The complete query's final result is not charged (the paper
           excludes the cost of writing the final result). *)
        if is_root && Relset.equal (Expr.mask e) full then 0.0 else c
      in
      self +. node_cost ~is_root:false a +. node_cost ~is_root:false b
  in
  node_cost ~is_root:true expr
