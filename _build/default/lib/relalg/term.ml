open Monsoon_storage

type t = { id : int; udf : Udf.t; args : (int * string) list }

let make ~id udf args =
  assert (args <> []);
  { id; udf; args }

let rels t =
  List.fold_left (fun acc (rel, _) -> Relset.add rel acc) Relset.empty t.args

let is_single_rel t = Relset.cardinal (rels t) = 1

let evaluable t mask = Relset.subset (rels t) mask

let describe t =
  Printf.sprintf "%s[%s]" (Udf.name t.udf)
    (String.concat ";"
       (List.map (fun (r, c) -> Printf.sprintf "r%d.%s" r c) t.args))

type compiled = Value.t array -> Value.t

let compile t ~col_index =
  let slots =
    Array.of_list
      (List.map (fun (rel, col) -> col_index ~rel ~col) t.args)
  in
  let n = Array.length slots in
  let buf = Array.make n Value.Null in
  fun row ->
    for i = 0 to n - 1 do
      buf.(i) <- row.(slots.(i))
    done;
    Udf.apply t.udf buf
