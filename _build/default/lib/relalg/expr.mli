(** Relational-algebra expressions (partial plans).

    Leaves reference *materialized* inputs by their relation-instance mask —
    either a single base instance or an intermediate produced by an earlier
    EXECUTE step. Internal nodes are joins; a [Stats] node is the paper's Σ
    statistics-collection operator and may only appear at the top of an
    expression.

    Predicates are not stored in the tree: by convention every predicate is
    applied at the lowest node where it becomes evaluable, so the tree shape
    determines them (see {!Query.newly_evaluable}). A consequence used
    throughout the system is that the *cardinality* of an expression's result
    depends only on its mask, never on its shape, so result counts are keyed
    by mask. *)

type t = private
  | Leaf of Relset.t
  | Join of t * t
  | Stats of t

val leaf : Relset.t -> t
(** Requires a non-empty mask. *)

val base : int -> t
(** [base i] = [leaf (singleton i)]. *)

val join : t -> t -> t
(** Canonically ordered; raises [Invalid_argument] if masks overlap or
    either side carries a Σ. *)

val stats : t -> t
(** Wraps with Σ; raises [Invalid_argument] if already topped by Σ. *)

val mask : t -> Relset.t
val has_stats : t -> bool
(** Is the top node a Σ? (Σ cannot occur deeper.) *)

val strip_stats : t -> t
val key : t -> string
(** Canonical key: equal for structurally identical plans. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val join_nodes : t -> (Relset.t * Relset.t) list
(** Masks of the two sides of every join node, bottom-up. *)

val leaves : t -> Relset.t list

val describe : Query.t -> t -> string
(** Pretty form using instance aliases, e.g. ["((R ⨝ S) ⨝ T)"]. *)
