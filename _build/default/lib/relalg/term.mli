(** A term is a UDF applied to attributes of specific relation instances:
    the unit whose distinct-value count the whole paper is about.

    [F1(o1.items, o2.items)] is a term spanning two relation instances; it
    can only be evaluated on tuples of an expression that covers both. *)

open Monsoon_storage

type t = {
  id : int;  (** unique within a query; keys the statistics catalog *)
  udf : Udf.t;
  args : (int * string) list;  (** (relation-instance id, column name) *)
}

val make : id:int -> Udf.t -> (int * string) list -> t

val rels : t -> Relset.t
(** Relation instances the term reads from. *)

val is_single_rel : t -> bool

val evaluable : t -> Relset.t -> bool
(** Can the term be computed on tuples covering the given instances? *)

val describe : t -> string

type compiled = Value.t array -> Value.t
(** Evaluator specialized to a tuple layout. *)

val compile :
  t ->
  col_index:(rel:int -> col:string -> int) ->
  compiled
(** [compile t ~col_index] resolves each argument to a slot of the runtime
    tuple via [col_index] and returns a fast evaluator. The argument array
    passed to the UDF is reused across calls; UDFs must not retain it. *)
