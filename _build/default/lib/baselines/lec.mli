(** Least-expected-cost optimization (Chu, Halpern & Gehrke; the paper's
    Sec 2.3 contrast).

    LEC uses the same priors as Monsoon but picks a *single* plan up front:
    the one minimizing the expected cost under the prior, with no option to
    collect statistics or re-plan. The paper's walkthrough shows why this is
    weaker — rows 2 and 3 of Table 1 have equal expected cost, so no fixed
    plan avoids the 10x mistake — and this module exists to measure that gap
    (the `ablation-lec` experiment).

    Implementation: candidate plans are gathered by solving the join-order
    problem under [k] independently sampled statistics environments (each
    sample resolves every unknown distinct count by a prior draw); each
    distinct candidate is then scored by its average cost across [k2] fresh
    samples, and the argmin is executed. *)

open Monsoon_storage
open Monsoon_relalg
open Monsoon_stats

val choose_plan :
  ?k:int ->
  ?k2:int ->
  rng:Monsoon_util.Rng.t ->
  prior:Prior.t ->
  Catalog.t ->
  Query.t ->
  Expr.t
(** The least-expected-cost plan ([k] defaults to 12 candidate-generating
    samples, [k2] to 40 scoring samples). *)

val strategy : Prior.t -> Strategy.t
(** LEC as a benchmark strategy ("LEC"), sharing Monsoon's prior. *)
