open Monsoon_relalg

let plan_cost q env e = Cost_model.cost q env e

(* Splits of [m] into two disjoint non-empty halves, each half yielded once
   (the half containing the lowest bit is [s1]). Cross-product splits are
   dropped when a connected split exists, mirroring standard
   cross-product-averse enumeration. *)
let splits q m =
  let lowest = Relset.singleton (Relset.min_elt m) in
  let halves =
    Relset.subsets_nonempty m
    |> List.filter (fun s1 ->
           Relset.subset lowest s1 && not (Relset.equal s1 m))
    |> List.map (fun s1 -> (s1, m land lnot s1))
  in
  let connected = List.filter (fun (a, b) -> Query.connected q a b) halves in
  if connected <> [] then connected else halves

let best_plan q env =
  let n = Query.n_rels q in
  if n > 20 then invalid_arg "Planner.best_plan: too many instances";
  let full = Query.all_mask q in
  (* best.(m) = (plan, internal cost including m's own materialization) *)
  let best = Hashtbl.create (1 lsl n) in
  for i = 0 to n - 1 do
    Hashtbl.replace best (Relset.singleton i) (Expr.base i, 0.0)
  done;
  let masks =
    Relset.subsets_nonempty full
    |> List.filter (fun m -> Relset.cardinal m >= 2)
    |> List.sort (fun a b -> compare (Relset.cardinal a) (Relset.cardinal b))
  in
  List.iter
    (fun m ->
      let candidates =
        List.filter_map
          (fun (s1, s2) ->
            match (Hashtbl.find_opt best s1, Hashtbl.find_opt best s2) with
            | Some (p1, c1), Some (p2, c2) ->
              let plan = Expr.join p1 p2 in
              let card = Cost_model.estimate q env plan in
              Some (plan, card +. c1 +. c2)
            | _ -> None)
          (splits q m)
      in
      match candidates with
      | [] -> ()
      | _ ->
        let best_c =
          List.fold_left
            (fun acc (p, c) ->
              match acc with
              | None -> Some (p, c)
              | Some (_, c') -> if c < c' then Some (p, c) else acc)
            None candidates
        in
        Hashtbl.replace best m (Option.get best_c))
    masks;
  match Hashtbl.find_opt best full with
  | Some (plan, _) -> plan
  | None -> invalid_arg "Planner.best_plan: no plan found"

let brute_force_best q env =
  let full = Query.all_mask q in
  let rec plans m =
    if Relset.cardinal m = 1 then [ Expr.leaf m ]
    else
      List.concat_map
        (fun (s1, s2) ->
          List.concat_map
            (fun p1 -> List.map (fun p2 -> Expr.join p1 p2) (plans s2))
            (plans s1))
        (splits q m)
  in
  let all = plans full in
  List.fold_left
    (fun acc p ->
      match acc with
      | None -> Some p
      | Some best ->
        if Cost_model.cost q env p < Cost_model.cost q env best then Some p
        else acc)
    None all
  |> Option.get
