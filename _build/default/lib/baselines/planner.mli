(** System-R-style join-order optimization by dynamic programming over
    instance subsets (bushy plans, cross products only when no connected
    split exists). This is the classical optimizer every plan-once baseline
    shares; only the statistics source differs. *)

open Monsoon_relalg

val best_plan : Query.t -> Cost_model.env -> Expr.t
(** The minimum-estimated-cost plan for the complete query under the given
    statistics. Cost is the paper's intermediate-object count (the final
    result is free, so plan ranking matches Sec 4.4). Raises
    [Invalid_argument] on queries with more than 20 instances. *)

val plan_cost : Query.t -> Cost_model.env -> Expr.t -> float
(** Estimated cost of an arbitrary plan under the same statistics
    (re-exported from {!Cost_model.cost} for convenience). *)

val brute_force_best : Query.t -> Cost_model.env -> Expr.t
(** Exhaustive enumeration of all bushy plans (no pruning) — exponentially
    slower; used to validate the DP in tests. Only viable for up to ~6
    instances. *)
