lib/baselines/lec.mli: Catalog Expr Monsoon_relalg Monsoon_stats Monsoon_storage Monsoon_util Prior Query Strategy
