lib/baselines/skinner.ml: Executor Expr Float Fun Hashtbl Intermediate List Monsoon_exec Monsoon_relalg Monsoon_util Option Query Relset Rng
