lib/baselines/stats_source.mli: Catalog Cost_model Monsoon_relalg Monsoon_storage Monsoon_util Query
