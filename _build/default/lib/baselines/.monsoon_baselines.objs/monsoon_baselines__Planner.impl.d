lib/baselines/planner.ml: Cost_model Expr Hashtbl List Monsoon_relalg Option Query Relset
