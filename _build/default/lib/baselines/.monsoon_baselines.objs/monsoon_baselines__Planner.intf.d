lib/baselines/planner.mli: Cost_model Expr Monsoon_relalg Query
