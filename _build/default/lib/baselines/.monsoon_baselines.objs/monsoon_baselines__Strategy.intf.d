lib/baselines/strategy.mli: Catalog Expr Monsoon_mcts Monsoon_relalg Monsoon_stats Monsoon_storage Monsoon_util Query
