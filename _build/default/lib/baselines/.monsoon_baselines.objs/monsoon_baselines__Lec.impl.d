lib/baselines/lec.ml: Array Catalog Cost_model Expr Hashtbl List Monsoon_relalg Monsoon_stats Monsoon_storage Monsoon_util Planner Prior Query Strategy Table Term Timer
