lib/baselines/skinner.mli: Catalog Monsoon_relalg Monsoon_storage Monsoon_util Query
