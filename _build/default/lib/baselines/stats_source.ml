open Monsoon_util
open Monsoon_storage
open Monsoon_relalg
open Monsoon_sketch

type t = {
  env : Cost_model.env;
  acquisition_cost : float;
  inapplicable : bool;
}

let raw_counts catalog q =
  Array.map
    (fun r -> float_of_int (Table.cardinality (Catalog.find catalog r.Query.table)))
    (Query.rels q)

(* All terms that matter: participating in at least one predicate. *)
let interesting_terms q =
  Array.to_list (Query.terms q)
  |> List.filter (fun tm -> Query.preds_of_term q tm.Term.id <> [])

let has_multi_instance_terms q =
  List.exists (fun tm -> not (Term.is_single_rel tm)) (interesting_terms q)

(* Deterministic env: [d_of term ~c_own] supplies distinct counts, result
   counts are memoized locally so the same mask is estimated once. *)
let make_env catalog q ~d_of =
  let raw = raw_counts catalog q in
  let memo = Hashtbl.create 32 in
  { Cost_model.count_of = (fun mask -> Hashtbl.find_opt memo mask);
    raw_count = (fun i -> raw.(i));
    distinct_of =
      (fun ~term ~pred:_ ~c_own ~c_partner:_ -> d_of term ~c_own);
    record_count = (fun mask c -> Hashtbl.replace memo mask c) }

(* Evaluate a single-instance term over its base table's rows. *)
let base_term_values catalog q tm =
  let rel = Relset.min_elt (Term.rels tm) in
  let table = Catalog.find catalog (Query.rel_by_id q rel).Query.table in
  let schema = Table.schema table in
  let ev =
    Term.compile tm ~col_index:(fun ~rel:_ ~col -> Schema.index_of schema col)
  in
  (table, ev)

let default_fraction c_own = 0.1 *. c_own

let exact catalog q =
  let known = Hashtbl.create 8 in
  List.iter
    (fun tm ->
      if Term.is_single_rel tm then begin
        let table, ev = base_term_values catalog q tm in
        let seen = Hashtbl.create 1024 in
        Table.iter (fun row -> Hashtbl.replace seen (ev row) ()) table;
        Hashtbl.replace known tm.Term.id (float_of_int (Hashtbl.length seen))
      end)
    (interesting_terms q);
  let d_of tm ~c_own =
    match Hashtbl.find_opt known tm.Term.id with
    | Some d -> d
    | None -> default_fraction c_own
  in
  { env = make_env catalog q ~d_of;
    acquisition_cost = 0.0;
    inapplicable = has_multi_instance_terms q }

let defaults catalog q =
  { env = make_env catalog q ~d_of:(fun _ ~c_own -> default_fraction c_own);
    acquisition_cost = 0.0;
    inapplicable = false }

let on_demand catalog q =
  let known = Hashtbl.create 8 in
  let scanned = Hashtbl.create 8 in
  List.iter
    (fun tm ->
      if Term.is_single_rel tm then begin
        let table, ev = base_term_values catalog q tm in
        let hll = Hyperloglog.create ~p:14 () in
        Table.iter (fun row -> Hyperloglog.add_hash hll (Value.hash (ev row))) table;
        Hashtbl.replace known tm.Term.id (Float.max 1.0 (Hyperloglog.count hll));
        Hashtbl.replace scanned (Relset.min_elt (Term.rels tm)) ()
      end)
    (interesting_terms q);
  (* One statistics pass per scanned instance (a single pass computes every
     term on that instance). *)
  let raw = raw_counts catalog q in
  let acquisition_cost =
    Hashtbl.fold (fun rel () acc -> acc +. raw.(rel)) scanned 0.0
  in
  let d_of tm ~c_own =
    match Hashtbl.find_opt known tm.Term.id with
    | Some d -> Float.min d c_own
    | None -> default_fraction c_own
  in
  { env = make_env catalog q ~d_of;
    acquisition_cost;
    inapplicable = has_multi_instance_terms q }

let block_sample rng rows k =
  let n = Array.length rows in
  if n <= k then Array.copy rows
  else begin
    (* Block-based: a contiguous run from a random offset (wrapping), the
       cheap single-seek sampling the paper uses for efficiency. *)
    let start = Rng.int rng n in
    Array.init k (fun i -> rows.((start + i) mod n))
  end

let sampling rng ?(fraction = 0.02) ?(cap = 200_000) ?(product_cap = 1_000_000)
    catalog q =
  let raw = raw_counts catalog q in
  let cost = ref 0.0 in
  (* Per-instance subsamples, reused across terms. *)
  let samples = Hashtbl.create 8 in
  let sample_of rel =
    match Hashtbl.find_opt samples rel with
    | Some s -> s
    | None ->
      let table = Catalog.find catalog (Query.rel_by_id q rel).Query.table in
      let n = Table.cardinality table in
      let k = min cap (max 1 (int_of_float (ceil (fraction *. float_of_int n)))) in
      let s = block_sample rng (Table.rows table) k in
      cost := !cost +. float_of_int (Array.length s);
      Hashtbl.replace samples rel s;
      s
  in
  let known = Hashtbl.create 8 in
  List.iter
    (fun tm ->
      let rels = Relset.to_list (Term.rels tm) in
      match rels with
      | [ rel ] ->
        let s = sample_of rel in
        let table = Catalog.find catalog (Query.rel_by_id q rel).Query.table in
        let schema = Table.schema table in
        let ev =
          Term.compile tm ~col_index:(fun ~rel:_ ~col -> Schema.index_of schema col)
        in
        let rendered = Array.map (fun row -> Value.to_string (ev row)) s in
        let d =
          Distinct_estimator.gee ~population:(Table.cardinality table) rendered
        in
        Hashtbl.replace known tm.Term.id d
      | rels ->
        (* Multi-instance UDF: materialize (a cap of) the product of the
           subsamples and apply the UDF to the materialized tuples. *)
        let subsamples = List.map sample_of rels in
        let widths =
          List.map
            (fun rel ->
              let table = Catalog.find catalog (Query.rel_by_id q rel).Query.table in
              Schema.arity (Table.schema table))
            rels
        in
        let offsets =
          let acc = ref 0 in
          List.map2
            (fun rel w ->
              let o = !acc in
              acc := !acc + w;
              (rel, o))
            rels widths
        in
        let table_of rel = Catalog.find catalog (Query.rel_by_id q rel).Query.table in
        let ev =
          Term.compile tm ~col_index:(fun ~rel ~col ->
              List.assoc rel offsets + Schema.index_of (Table.schema (table_of rel)) col)
        in
        let width = List.fold_left ( + ) 0 widths in
        let out = ref [] in
        let produced = ref 0 in
        let row = Array.make width Value.Null in
        let rec product offs = function
          | [] ->
            if !produced < product_cap then begin
              incr produced;
              out := Value.to_string (ev row) :: !out
            end
          | s :: rest ->
            let w = Array.length (s : Table.row array).(0) in
            Array.iter
              (fun r ->
                if !produced < product_cap then begin
                  Array.blit r 0 row offs w;
                  product (offs + w) rest
                end)
              s
        in
        (match subsamples with
        | [] -> ()
        | _ when List.exists (fun s -> Array.length s = 0) subsamples -> ()
        | _ -> product 0 subsamples);
        cost := !cost +. float_of_int !produced;
        let population =
          List.fold_left
            (fun acc rel -> acc *. raw.(rel))
            1.0 rels
          |> int_of_float
        in
        let d =
          Distinct_estimator.gee ~population (Array.of_list !out)
        in
        Hashtbl.replace known tm.Term.id d)
    (interesting_terms q);
  let d_of tm ~c_own =
    match Hashtbl.find_opt known tm.Term.id with
    | Some d -> Float.min d c_own
    | None -> default_fraction c_own
  in
  { env = make_env catalog q ~d_of; acquisition_cost = !cost; inapplicable = false }
