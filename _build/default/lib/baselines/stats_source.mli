(** Statistics sources for the classical (plan-once) optimizers.

    Each source yields a deterministic {!Monsoon_relalg.Cost_model.env}
    (memoizing result counts locally) plus the object-count price paid to
    acquire the statistics — zero for offline/"free" statistics, one pass
    per table for the HyperLogLog pre-pass, the tuples drawn for sampling. *)

open Monsoon_storage
open Monsoon_relalg

type t = {
  env : Cost_model.env;
  acquisition_cost : float;
      (** objects processed to gather the statistics (charged at runtime) *)
  inapplicable : bool;
      (** true when the source cannot honestly provide its statistics —
          e.g. a single-pass pre-scan facing a multi-instance UDF *)
}

val has_multi_instance_terms : Query.t -> bool
(** Does any predicate-participating term span several instances? Single-
    pass pre-collection strategies cannot measure those. *)

val exact : Catalog.t -> Query.t -> t
(** Full statistics computed offline (the paper's "Postgres" baseline):
    exact distinct counts for every single-instance term, free of charge.
    [inapplicable] when the query has multi-instance terms (the paper drops
    this option on the UDF benchmark). *)

val defaults : Catalog.t -> Query.t -> t
(** The magic constant: every distinct count is 10 % of the row count. *)

val on_demand : Catalog.t -> Query.t -> t
(** HyperLogLog pre-pass over every base instance hosting an interesting
    single-instance term; charged one scan per such instance.
    [inapplicable] when multi-instance terms exist. *)

val sampling :
  Monsoon_util.Rng.t ->
  ?fraction:float ->
  ?cap:int ->
  ?product_cap:int ->
  Catalog.t ->
  Query.t ->
  t
(** Block sampling (2 % of each instance, capped at 200k tuples) with the
    Charikar-et-al. GEE distinct estimator; multi-instance terms are
    estimated from a capped materialized product of the per-instance
    subsamples (default cap 1e6 tuples), as the paper describes. *)
