(** Plain-text rendering of the paper's tables and figures. *)

val table : title:string -> header:string list -> string list list -> string
(** Fixed-width ASCII table. *)

val cost : float -> string
(** Human-scaled object counts: ["1.20M"], ["34.5k"], ["812"]. *)

val opt_cost : float option -> string
(** ["N/A"] / ["TO"] fallbacks use {!cost} when present. *)

val seconds : float -> string

val agg_table : title:string -> budget:float -> Runner.agg list -> string
(** The TO/Mean/Median/Max layout of Tables 3, 5, 6 and 7. *)

val series :
  title:string -> x_label:string -> y_label:string ->
  (string * float) list -> string
(** A labeled series plus an ASCII bar rendering — the stand-in for the
    paper's figures. *)
