lib/harness/runner.mli: Monsoon_baselines Monsoon_workloads Strategy Workload
