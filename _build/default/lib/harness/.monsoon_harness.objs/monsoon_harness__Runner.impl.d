lib/harness/runner.ml: Array Dist Float Hashtbl List Monsoon_baselines Monsoon_util Monsoon_workloads Rng Strategy Workload
