lib/harness/experiments.mli:
