open Monsoon_relalg

type scope = Wildcard | For_pred of int | For_select

type t = {
  counts : (Relset.t, float) Hashtbl.t;
  wildcard : (int, float) Hashtbl.t;       (* term id -> measured d *)
  scoped : (int * int, float) Hashtbl.t;   (* (term id, pred id) -> assumed d *)
  sel_scoped : (int, float) Hashtbl.t;     (* term id -> assumed d in selection context *)
}

let create () =
  { counts = Hashtbl.create 32;
    wildcard = Hashtbl.create 16;
    scoped = Hashtbl.create 16;
    sel_scoped = Hashtbl.create 16 }

let copy t =
  { counts = Hashtbl.copy t.counts;
    wildcard = Hashtbl.copy t.wildcard;
    scoped = Hashtbl.copy t.scoped;
    sel_scoped = Hashtbl.copy t.sel_scoped }

let set_count t mask c = Hashtbl.replace t.counts mask c
let count t mask = Hashtbl.find_opt t.counts mask

let set_distinct t ~term ~scope d =
  match scope with
  | Wildcard -> Hashtbl.replace t.wildcard term d
  | For_pred p -> Hashtbl.replace t.scoped (term, p) d
  | For_select -> Hashtbl.replace t.sel_scoped term d

let distinct t ~term ~pred =
  match Hashtbl.find_opt t.wildcard term with
  | Some d -> Some d
  | None -> (
    match pred with
    | Some p -> Hashtbl.find_opt t.scoped (term, p)
    | None -> Hashtbl.find_opt t.sel_scoped term)

let has_measurement t ~term = Hashtbl.mem t.wildcard term

let counts t = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.counts []

let distincts t =
  Hashtbl.fold (fun k v acc -> (k, Wildcard, v) :: acc) t.wildcard []
  @ Hashtbl.fold (fun (tm, p) v acc -> (tm, For_pred p, v) :: acc) t.scoped []
  @ Hashtbl.fold (fun tm v acc -> (tm, For_select, v) :: acc) t.sel_scoped []

let size t =
  Hashtbl.length t.counts + Hashtbl.length t.wildcard + Hashtbl.length t.scoped
  + Hashtbl.length t.sel_scoped
