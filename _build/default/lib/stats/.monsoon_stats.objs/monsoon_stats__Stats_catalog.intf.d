lib/stats/stats_catalog.mli: Monsoon_relalg Relset
