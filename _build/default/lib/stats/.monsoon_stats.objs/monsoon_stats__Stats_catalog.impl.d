lib/stats/stats_catalog.ml: Hashtbl Monsoon_relalg Relset
