lib/stats/prior.ml: Dist Float List Monsoon_util Rng String
