lib/stats/prior.mli: Monsoon_util
