type column = { name : string; ty : Value.ty }

type t = { cols : column array; index : (string, int) Hashtbl.t }

let make cols =
  let arr = Array.of_list cols in
  let index = Hashtbl.create (Array.length arr) in
  Array.iteri
    (fun i c ->
      if Hashtbl.mem index c.name then
        invalid_arg (Printf.sprintf "Schema.make: duplicate column %s" c.name);
      Hashtbl.add index c.name i)
    arr;
  { cols = arr; index }

let columns t = t.cols
let arity t = Array.length t.cols
let index_of t name = Hashtbl.find t.index name
let mem t name = Hashtbl.mem t.index name
let column_name t i = t.cols.(i).name

let pp fmt t =
  Format.fprintf fmt "(%s)"
    (String.concat ", "
       (Array.to_list
          (Array.map
             (fun c -> Printf.sprintf "%s:%s" c.name (Value.ty_to_string c.ty))
             t.cols)))
