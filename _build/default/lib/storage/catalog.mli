(** A named collection of base tables — the database a query runs against. *)

type t

val create : unit -> t
val add : t -> Table.t -> unit
(** Raises [Invalid_argument] if a table with the same name exists. *)

val find : t -> string -> Table.t
(** Raises [Not_found]. *)

val mem : t -> string -> bool
val tables : t -> Table.t list
val total_rows : t -> int
