(** Runtime values.

    Every cell in a table and every output of a UDF is one of these. Dates
    are stored as day counts so arithmetic and bucketing UDFs stay cheap. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Date of int  (** days since 1970-01-01 *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int64
(** Strong 64-bit hash, suitable for HyperLogLog. [Null] hashes to a fixed
    value distinct from all non-null encodings. *)

val to_string : t -> string
(** Rendering used for display and for sample-based distinct estimation. *)

val pp : Format.formatter -> t -> unit

(** Accessors raising [Invalid_argument] on type mismatch. *)

val as_int : t -> int
val as_float : t -> float
val as_string : t -> string
val as_date : t -> int

type ty = TBool | TInt | TFloat | TStr | TDate

val type_of : t -> ty option
(** [None] for [Null]. *)

val ty_to_string : ty -> string
