open Monsoon_util

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Date of int

let equal a b =
  match a, b with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | Date x, Date y -> x = y
  | (Null | Bool _ | Int _ | Float _ | Str _ | Date _), _ -> false

let compare = Stdlib.compare

let hash = function
  | Null -> 0x5D0F0E1EDEADL
  | Bool b -> Hashing.int (if b then 3 else 5)
  | Int i -> Hashing.combine 1L (Hashing.int i)
  | Float f -> Hashing.combine 2L (Hashing.mix (Int64.bits_of_float f))
  | Str s -> Hashing.combine 3L (Hashing.string s)
  | Date d -> Hashing.combine 4L (Hashing.int d)

let to_string = function
  | Null -> "NULL"
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.6g" f
  | Str s -> s
  | Date d -> Printf.sprintf "date:%d" d

let pp fmt v = Format.pp_print_string fmt (to_string v)

let type_error expected v =
  invalid_arg
    (Printf.sprintf "Value: expected %s, got %s" expected (to_string v))

let as_int = function Int i -> i | v -> type_error "int" v
let as_float = function
  | Float f -> f
  | Int i -> float_of_int i
  | v -> type_error "float" v
let as_string = function Str s -> s | v -> type_error "string" v
let as_date = function Date d -> d | v -> type_error "date" v

type ty = TBool | TInt | TFloat | TStr | TDate

let type_of = function
  | Null -> None
  | Bool _ -> Some TBool
  | Int _ -> Some TInt
  | Float _ -> Some TFloat
  | Str _ -> Some TStr
  | Date _ -> Some TDate

let ty_to_string = function
  | TBool -> "bool"
  | TInt -> "int"
  | TFloat -> "float"
  | TStr -> "string"
  | TDate -> "date"
