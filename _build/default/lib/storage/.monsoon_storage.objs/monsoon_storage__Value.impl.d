lib/storage/value.ml: Float Format Hashing Int64 Monsoon_util Printf Stdlib String
