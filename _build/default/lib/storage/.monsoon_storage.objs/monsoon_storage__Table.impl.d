lib/storage/table.ml: Array Hashtbl Schema Value
