(** In-memory row-store tables.

    Rows are immutable-by-convention value arrays matching the schema. The
    executor treats tables as materialized relations; base tables and
    materialized intermediates share this representation. *)

type row = Value.t array
type t

val create : name:string -> Schema.t -> t
val of_rows : name:string -> Schema.t -> row list -> t
val of_row_array : name:string -> Schema.t -> row array -> t

val name : t -> string
val schema : t -> Schema.t
val cardinality : t -> int
val rows : t -> row array
(** The backing array — do not mutate. *)

val append : t -> row -> unit
val get : t -> int -> row
val iter : (row -> unit) -> t -> unit
val fold : ('a -> row -> 'a) -> 'a -> t -> 'a

val column_values : t -> string -> Value.t array
(** All values of one column, in row order. *)

val distinct_exact : t -> string -> int
(** Exact distinct count of a column (test/baseline oracle). *)
