type t = { tables : (string, Table.t) Hashtbl.t }

let create () = { tables = Hashtbl.create 16 }

let add t table =
  let n = Table.name table in
  if Hashtbl.mem t.tables n then
    invalid_arg (Printf.sprintf "Catalog.add: duplicate table %s" n);
  Hashtbl.add t.tables n table

let find t name = Hashtbl.find t.tables name
let mem t name = Hashtbl.mem t.tables name

let tables t = Hashtbl.fold (fun _ tbl acc -> tbl :: acc) t.tables []

let total_rows t =
  Hashtbl.fold (fun _ tbl acc -> acc + Table.cardinality tbl) t.tables 0
