(** Table schemas: an ordered list of named, typed columns. *)

type column = { name : string; ty : Value.ty }
type t

val make : column list -> t
(** Raises [Invalid_argument] on duplicate column names. *)

val columns : t -> column array
val arity : t -> int
val index_of : t -> string -> int
(** Raises [Not_found] for unknown columns. *)

val mem : t -> string -> bool
val column_name : t -> int -> string
val pp : Format.formatter -> t -> unit
