lib/sketch/distinct_estimator.ml: Array Float Hashtbl
