lib/sketch/hyperloglog.ml: Bytes Char Hashing Int64 Monsoon_util
