lib/sketch/hyperloglog.mli:
