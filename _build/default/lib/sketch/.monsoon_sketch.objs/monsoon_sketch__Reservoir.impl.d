lib/sketch/reservoir.ml: Array Monsoon_util Rng
