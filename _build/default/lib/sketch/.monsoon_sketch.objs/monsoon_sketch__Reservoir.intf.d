lib/sketch/reservoir.mli: Monsoon_util
