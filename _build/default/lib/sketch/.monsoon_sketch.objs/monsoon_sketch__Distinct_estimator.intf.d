lib/sketch/distinct_estimator.mli:
