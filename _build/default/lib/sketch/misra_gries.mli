(** Misra–Gries heavy-hitter summary.

    The paper notes that a statistics pass can also compute "heavy hitters
    (most common values with their frequencies)"; this summary provides them
    in one pass with bounded memory. [k] counters guarantee that every value
    with frequency > n/k is reported, with count undercounted by at most
    n/k. *)

type t

val create : k:int -> t
(** Requires [k >= 1]. *)

val add : t -> string -> unit

val heavy_hitters : t -> (string * int) list
(** Candidate heavy hitters with their (under-)estimated counts, most
    frequent first. *)

val processed : t -> int
