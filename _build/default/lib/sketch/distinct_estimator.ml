let frequency_table sample =
  let counts = Hashtbl.create (Array.length sample) in
  Array.iter
    (fun v ->
      let c = try Hashtbl.find counts v with Not_found -> 0 in
      Hashtbl.replace counts v (c + 1))
    sample;
  counts

let gee ~population sample =
  let r = Array.length sample in
  if r = 0 then 0.0
  else begin
    let counts = frequency_table sample in
    let f1 = ref 0 and rest = ref 0 in
    Hashtbl.iter (fun _ c -> if c = 1 then incr f1 else incr rest) counts;
    let est =
      (sqrt (float_of_int population /. float_of_int r) *. float_of_int !f1)
      +. float_of_int !rest
    in
    let seen = float_of_int (Hashtbl.length counts) in
    Float.min (float_of_int population) (Float.max seen est)
  end

let exact sample =
  let counts = frequency_table sample in
  Hashtbl.length counts
