(** Reservoir sampling (Vitter's algorithm R).

    Used by the "Sampling" baseline to draw uniform samples from tables and
    intermediate results in a single pass. *)

type 'a t

val create : Monsoon_util.Rng.t -> capacity:int -> 'a t
val add : 'a t -> 'a -> unit
val seen : 'a t -> int
(** Number of items offered so far. *)

val sample : 'a t -> 'a array
(** A copy of the current reservoir (size [min capacity seen]). *)
