type t = {
  k : int;
  counters : (string, int) Hashtbl.t;
  mutable processed : int;
}

let create ~k =
  assert (k >= 1);
  { k; counters = Hashtbl.create (k * 2); processed = 0 }

let add t v =
  t.processed <- t.processed + 1;
  match Hashtbl.find_opt t.counters v with
  | Some c -> Hashtbl.replace t.counters v (c + 1)
  | None ->
    if Hashtbl.length t.counters < t.k then Hashtbl.replace t.counters v 1
    else begin
      (* Decrement every counter; drop those reaching zero. *)
      let dead = ref [] in
      Hashtbl.iter
        (fun key c ->
          if c = 1 then dead := key :: !dead
          else Hashtbl.replace t.counters key (c - 1))
        t.counters;
      List.iter (Hashtbl.remove t.counters) !dead
    end

let heavy_hitters t =
  Hashtbl.fold (fun v c acc -> (v, c) :: acc) t.counters []
  |> List.sort (fun (_, a) (_, b) -> compare b a)

let processed t = t.processed
