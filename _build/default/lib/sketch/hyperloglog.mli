(** HyperLogLog distinct-value sketch (Flajolet et al., with the HLL++-style
    small-range correction of Heule et al.).

    This is the statistic collector the paper's "On Demand" and "Monsoon"
    options use: one pass over a (possibly UDF-transformed) column produces an
    estimate of the number of distinct values with ~1.04/sqrt(2^p) relative
    standard error. *)

type t

val create : ?p:int -> unit -> t
(** [create ~p ()] uses [2^p] registers; [p] defaults to 12 (4096 registers,
    ~1.6 % standard error). Requires [4 <= p <= 18]. *)

val add_hash : t -> int64 -> unit
(** Feed a pre-hashed item. The hash must be (close to) uniform on 64 bits;
    use {!Monsoon_util.Hashing}. *)

val add_string : t -> string -> unit
val add_int : t -> int -> unit

val count : t -> float
(** Current cardinality estimate. *)

val merge : t -> t -> t
(** Union of the underlying multisets. Both sketches must share [p]. *)

val clear : t -> unit
