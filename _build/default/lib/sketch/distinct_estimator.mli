(** Distinct-count estimation from a uniform sample, after Charikar et al.,
    "Towards Estimation Error Guarantees for Distinct Values" (PODS 2000).

    Given a sample of [r] items from a population of [n], the GEE estimator is
    [sqrt(n/r) * f1 + sum_{i>=2} f_i], where [f_i] is the number of values
    occurring exactly [i] times in the sample. This is what the paper's
    "Sampling" baseline uses to turn 2 % block samples into distinct counts. *)

val gee : population:int -> string array -> float
(** [gee ~population sample] estimates the number of distinct values in the
    population from the sample of string-rendered values. Returns at least the
    number of distincts seen in the sample and at most [population]. *)

val exact : string array -> int
(** Exact distinct count of an array (used as the measurement oracle in
    tests). *)
