open Monsoon_util

type 'a t = {
  rng : Rng.t;
  capacity : int;
  mutable seen : int;
  mutable items : 'a array; (* length = min capacity seen *)
}

let create rng ~capacity =
  assert (capacity > 0);
  { rng; capacity; seen = 0; items = [||] }

let add t x =
  t.seen <- t.seen + 1;
  let n = Array.length t.items in
  if n < t.capacity then t.items <- Array.append t.items [| x |]
  else begin
    let j = Rng.int t.rng t.seen in
    if j < t.capacity then t.items.(j) <- x
  end

let seen t = t.seen
let sample t = Array.copy t.items
