lib/core/simulator.mli: Mdp Monsoon_mcts Monsoon_stats Monsoon_util Prior Rng
