lib/core/simulator.ml: Array Cost_model Expr List Mdp Monsoon_mcts Monsoon_relalg Monsoon_stats Monsoon_util Predicate Prior Query Relset Rng Stats_catalog Term
