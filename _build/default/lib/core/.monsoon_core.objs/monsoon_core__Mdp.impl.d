lib/core/mdp.ml: Array Catalog Expr List Monsoon_relalg Monsoon_stats Monsoon_storage Printf Query Relset Stats_catalog String Table Term
