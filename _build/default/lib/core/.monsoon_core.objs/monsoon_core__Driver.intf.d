lib/core/driver.mli: Catalog Monsoon_mcts Monsoon_relalg Monsoon_stats Monsoon_storage Monsoon_util Prior Query
