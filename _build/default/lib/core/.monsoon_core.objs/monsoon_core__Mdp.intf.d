lib/core/mdp.mli: Catalog Expr Monsoon_relalg Monsoon_stats Monsoon_storage Query Relset Stats_catalog
