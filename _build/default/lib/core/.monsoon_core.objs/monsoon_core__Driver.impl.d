lib/core/driver.ml: Executor Expr Intermediate List Logs Mdp Monsoon_exec Monsoon_mcts Monsoon_relalg Monsoon_stats Monsoon_util Prior Query Relset Simulator Stats_catalog Timer
