lib/mcts/mcts.mli: Monsoon_util
