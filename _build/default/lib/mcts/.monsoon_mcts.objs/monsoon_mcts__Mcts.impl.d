lib/mcts/mcts.ml: Float Hashtbl List Monsoon_util Option Rng
