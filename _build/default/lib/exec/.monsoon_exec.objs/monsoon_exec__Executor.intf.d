lib/exec/executor.mli: Catalog Expr Intermediate Monsoon_relalg Monsoon_storage Query Relset Table
