lib/exec/intermediate.ml: Array Catalog Monsoon_relalg Monsoon_storage Printf Query Relset Schema Table
