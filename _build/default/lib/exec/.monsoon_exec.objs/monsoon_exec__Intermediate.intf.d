lib/exec/intermediate.mli: Catalog Monsoon_relalg Monsoon_storage Query Relset Table
