lib/exec/executor.ml: Array Catalog Expr Float Hashtbl Hyperloglog Intermediate List Monsoon_relalg Monsoon_sketch Monsoon_storage Predicate Query Relset Seq Table Term Value
