open Monsoon_storage
open Monsoon_relalg

type t = {
  mask : Relset.t;
  offsets : int array;
  width : int;
  rows : Table.row array;
}

let of_base q catalog ~rows rel =
  let table = Catalog.find catalog (Query.rel_by_id q rel).Query.table in
  let offsets = Array.make (Query.n_rels q) (-1) in
  offsets.(rel) <- 0;
  { mask = Relset.singleton rel;
    offsets;
    width = Schema.arity (Table.schema table);
    rows }

let cardinality t = Array.length t.rows

let col_index q catalog t ~rel ~col =
  if t.offsets.(rel) < 0 then
    invalid_arg (Printf.sprintf "Intermediate.col_index: instance %d absent" rel);
  let table = Catalog.find catalog (Query.rel_by_id q rel).Query.table in
  t.offsets.(rel) + Schema.index_of (Table.schema table) col

let combined_layout a b =
  assert (Relset.disjoint a.mask b.mask);
  let n = Array.length a.offsets in
  let offsets = Array.make n (-1) in
  for i = 0 to n - 1 do
    if a.offsets.(i) >= 0 then offsets.(i) <- a.offsets.(i)
    else if b.offsets.(i) >= 0 then offsets.(i) <- a.width + b.offsets.(i)
  done;
  (Relset.union a.mask b.mask, offsets, a.width + b.width)
