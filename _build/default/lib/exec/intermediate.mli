(** Materialized (intermediate) relations at runtime.

    A tuple of an intermediate covering instances \{i, j, ...\} is the
    concatenation of one full row from each instance's base table, laid out
    in a fixed per-intermediate order recorded in [offsets]. *)

open Monsoon_storage
open Monsoon_relalg

type t = {
  mask : Relset.t;
  offsets : int array;  (** indexed by instance id; -1 when absent *)
  width : int;
  rows : Table.row array;
}

val of_base : Query.t -> Catalog.t -> rows:Table.row array -> int -> t
(** Wraps rows of a single instance's base table (possibly filtered). *)

val cardinality : t -> int

val col_index : Query.t -> Catalog.t -> t -> rel:int -> col:string -> int
(** Absolute slot of [rel.col] in this intermediate's tuples. Raises
    [Not_found] for unknown columns and [Invalid_argument] if [rel] is not
    covered. *)

val combined_layout : t -> t -> Relset.t * int array * int
(** Layout (mask, offsets, width) of the join of two disjoint
    intermediates, left columns first. *)
