(** The UDF benchmark (paper Sec 6.2.2): 25 queries whose join and
    selection predicates go exclusively through opaque UDFs — 15 IMDB-shaped
    queries using string-extraction UDFs (the paper translates them from the
    Join Order Benchmark) and 10 TPC-H-shaped queries built around
    multi-instance UDFs, whose statistics cannot be collected before a
    partial join has been materialized.

    The database is the union of the IMDB and TPC-H generators (table names
    do not collide). Per the paper, the "Postgres" and "On Demand" options
    are inapplicable here ({!Monsoon_baselines.Strategy.applicable} reports
    it for the multi-instance queries; the harness drops both strategies for
    the whole benchmark). *)

open Monsoon_storage

type config = { seed : int; imdb_scale : float; tpch_scale : float }

val default_config : config

val generate : config -> Catalog.t

val queries : config -> Catalog.t -> (string * Monsoon_relalg.Query.t) list
(** [uq1] … [uq25]. The catalog is needed because the multi-instance
    combiners' output domains are sized from the generated key spaces. *)

val workload : config -> Workload.t
