(** A scaled-down TPC-H-like database generator with optional Zipfian skew
    (the paper's Sec 6.2.1 uses TPC-H SF 100 plus the Chaudhuri–Narasayya
    skewed generator at z = 1, z = 4, and per-column mixed skew).

    Schema shape (keys, foreign keys, fan-outs, small categorical domains)
    follows TPC-H; row counts are scaled so experiments run in-memory. All
    join columns and filter columns use the same relative cardinalities as
    the original, which is what join ordering depends on. *)

open Monsoon_storage

type skew =
  | Plain  (** uniform values, the standard generator *)
  | Low  (** z = 1 *)
  | High  (** z = 4 *)
  | Mixed  (** per-column z drawn uniformly from [0, 4] *)

val skew_name : skew -> string

type config = {
  seed : int;
  scale : float;  (** 1.0 ≈ 87k rows across all tables *)
  skew : skew;
}

val default_config : config

val generate : config -> Catalog.t

val queries : unit -> (string * Monsoon_relalg.Query.t) list
(** Twelve join-order-heavy queries (3–7 instances) modeled on the TPC-H
    queries with a non-trivial join ordering problem (Q2/3/5/7/8/9/10
    shapes plus extra chains). All predicate terms are opaque identity
    UDFs: the optimizer sees no statistics. *)

val workload : config -> Workload.t
