open Monsoon_storage
open Monsoon_relalg

type t = {
  name : string;
  catalog : Catalog.t;
  queries : (string * Query.t) list;
  hand_written : (string -> Query.t -> Expr.t) option;
}

let find_query t name = List.assoc name t.queries
