lib/workloads/udf_bench.ml: Catalog Imdb List Monsoon_relalg Monsoon_storage Printf Query Table Tpch Udf Udf_library Value Workload
