lib/workloads/imdb.ml: Array Catalog Dist List Monsoon_relalg Monsoon_storage Monsoon_util Printf Query Rng Schema Table Udf Value Workload
