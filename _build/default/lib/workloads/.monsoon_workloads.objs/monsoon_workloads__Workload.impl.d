lib/workloads/workload.ml: Catalog Expr List Monsoon_relalg Monsoon_storage Query
