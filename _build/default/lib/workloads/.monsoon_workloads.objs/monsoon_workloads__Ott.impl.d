lib/workloads/ott.ml: Array Catalog Expr Fun List Monsoon_relalg Monsoon_storage Monsoon_util Printf Query Rng Schema Table Udf Value Workload
