lib/workloads/ott.mli: Catalog Monsoon_relalg Monsoon_storage Workload
