lib/workloads/imdb.mli: Catalog Monsoon_relalg Monsoon_storage Workload
