lib/workloads/tpch.mli: Catalog Monsoon_relalg Monsoon_storage Workload
