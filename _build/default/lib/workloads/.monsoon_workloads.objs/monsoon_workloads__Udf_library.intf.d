lib/workloads/udf_library.mli: Monsoon_relalg Udf
