lib/workloads/tpch.ml: Array Catalog Dist List Monsoon_relalg Monsoon_storage Monsoon_util Query Rng Schema Table Udf Value Workload
