lib/workloads/udf_bench.mli: Catalog Monsoon_relalg Monsoon_storage Workload
