lib/workloads/udf_library.ml: Monsoon_relalg Monsoon_storage String Udf Value
