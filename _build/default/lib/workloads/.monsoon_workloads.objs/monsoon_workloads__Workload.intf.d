lib/workloads/workload.mli: Catalog Expr Monsoon_relalg Monsoon_storage Query
