(** A benchmark: a generated database plus a named query suite. *)

open Monsoon_storage
open Monsoon_relalg

type t = {
  name : string;
  catalog : Catalog.t;
  queries : (string * Query.t) list;
  hand_written : (string -> Query.t -> Expr.t) option;
      (** Expert plans, when the benchmark defines them (OTT). Given the
          query name and the query, returns the hand-written plan. *)
}

val find_query : t -> string -> Query.t
(** Raises [Not_found]. *)
