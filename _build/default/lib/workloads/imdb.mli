(** A synthetic IMDB-shaped database and a JOB-style query suite.

    The paper evaluates on the IMDB Join Order Benchmark (Leis et al.): a
    real data set whose difficulty comes from skew and cross-column
    correlations, bootstrap-enlarged 5×. We reproduce those properties
    synthetically: heavy-tailed (Zipf) fan-in on every movie reference,
    correlated attributes (production year depends on title kind; info
    values determine their info type; company country correlates with
    company type), and string-encoded key columns that the UDF benchmark
    parses with opaque extractors.

    The suite contains 60 generated queries over JOB's template shapes
    (3–7 instances, chains and stars around [title]); the 20 most expensive
    under the full-statistics baseline form the paper's "IMDB-20" subset
    (selected by the harness). *)

open Monsoon_storage

type config = { seed : int; scale : float }

val default_config : config

val generate : config -> Catalog.t

val queries : unit -> (string * Monsoon_relalg.Query.t) list
(** The 60 JOB-style queries ([iq1] … [iq60]). *)

val workload : config -> Workload.t
