(** The opaque UDFs used by the UDF benchmark: string extractors in the
    style of the paper's motivating PySpark example (pulling ids out of
    text with [x.index(...)]-style code) and multi-instance combiners whose
    statistics cannot exist before a partial join. All of them are black
    boxes to the optimizer. *)

open Monsoon_relalg

val title_id : Udf.t
(** ["id=123;y=1950"] → [Int 123]. *)

val title_year : Udf.t
(** ["id=123;y=1950"] → [Int 1950]. *)

val movie_ref_id : Udf.t
(** ["m:123"] → [Int 123]. *)

val person_ref_id : Udf.t
(** ["ref(p99)"] → [Int 99]. *)

val name_id : Udf.t
(** ["p:99;g=1"] → [Int 99]. *)

val name_gender : Udf.t
(** ["p:99;g=1"] → [Int 1]. *)

val company_country : Udf.t
(** ["Co#5 (07)"] → [Int 7]. *)

val combine_mod : name:string -> modulus:int -> Udf.t
(** Two int-ish arguments [a, b] → [((a + 37·b) mod modulus) + 1]: the
    multi-instance combiner family; its output domain matches a key space
    of size [modulus]. *)
