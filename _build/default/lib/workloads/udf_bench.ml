open Monsoon_storage
open Monsoon_relalg

type config = { seed : int; imdb_scale : float; tpch_scale : float }

let default_config = { seed = 27_182_818; imdb_scale = 0.5; tpch_scale = 0.5 }

let generate cfg =
  let imdb = Imdb.generate { Imdb.seed = cfg.seed; scale = cfg.imdb_scale } in
  let tpch =
    Tpch.generate
      { Tpch.seed = cfg.seed + 1; scale = cfg.tpch_scale; skew = Tpch.Plain }
  in
  let cat = Catalog.create () in
  List.iter (Catalog.add cat) (Catalog.tables imdb);
  List.iter (Catalog.add cat) (Catalog.tables tpch);
  cat

let jp b t1 t2 = Query.Builder.join_pred b t1 t2
let at b rel col = Query.Builder.term b (Udf.identity col) [ (rel, col) ]
let term b udf args = Query.Builder.term b udf args
let sel b t v = Query.Builder.select_pred b t (Value.Int v)

let q name f =
  let b = Query.Builder.create ~name in
  f b;
  (name, Query.Builder.build b)

(* --- 15 IMDB queries through string-extraction UDFs --- *)

let imdb_udf_queries =
  let open Udf_library in
  (* t x ci x n, everything through string parsing. *)
  let people v b =
    let t = Query.Builder.rel b ~table:"title" ~alias:"t" in
    let ci = Query.Builder.rel b ~table:"cast_info" ~alias:"ci" in
    let n = Query.Builder.rel b ~table:"name" ~alias:"n" in
    jp b (term b title_id [ (t, "id_str") ]) (term b movie_ref_id [ (ci, "movie_ref") ]);
    jp b (term b person_ref_id [ (ci, "person_ref") ]) (term b name_id [ (n, "id_str") ]);
    sel b (term b name_gender [ (n, "id_str") ]) (1 + (v mod 2));
    if v >= 2 then sel b (term b title_year [ (t, "id_str") ]) (1930 + (v * 19))
  in
  (* t x mc x cn: movie ref parsed, company country extracted. *)
  let companies v b =
    let t = Query.Builder.rel b ~table:"title" ~alias:"t" in
    let mc = Query.Builder.rel b ~table:"movie_companies" ~alias:"mc" in
    let cn = Query.Builder.rel b ~table:"company_name" ~alias:"cn" in
    jp b (term b title_id [ (t, "id_str") ]) (term b movie_ref_id [ (mc, "movie_ref") ]);
    jp b (at b mc "company_id") (at b cn "id");
    sel b (term b company_country [ (cn, "name_str") ]) (1 + v)
  in
  (* 5-way star: people + companies. *)
  let star v b =
    let t = Query.Builder.rel b ~table:"title" ~alias:"t" in
    let ci = Query.Builder.rel b ~table:"cast_info" ~alias:"ci" in
    let n = Query.Builder.rel b ~table:"name" ~alias:"n" in
    let mc = Query.Builder.rel b ~table:"movie_companies" ~alias:"mc" in
    let cn = Query.Builder.rel b ~table:"company_name" ~alias:"cn" in
    jp b (term b title_id [ (t, "id_str") ]) (term b movie_ref_id [ (ci, "movie_ref") ]);
    jp b (term b person_ref_id [ (ci, "person_ref") ]) (term b name_id [ (n, "id_str") ]);
    jp b (term b title_id [ (t, "id_str") ]) (term b movie_ref_id [ (mc, "movie_ref") ]);
    jp b (at b mc "company_id") (at b cn "id");
    sel b (term b company_country [ (cn, "name_str") ]) (1 + v);
    sel b (term b name_gender [ (n, "id_str") ]) (1 + (v mod 2))
  in
  (* t x mi x it with a parsed-year filter. *)
  let info v b =
    let t = Query.Builder.rel b ~table:"title" ~alias:"t" in
    let mi = Query.Builder.rel b ~table:"movie_info" ~alias:"mi" in
    let it = Query.Builder.rel b ~table:"info_type" ~alias:"it" in
    jp b (at b t "id") (at b mi "movie_id");
    jp b (at b mi "info_type_id") (at b it "id");
    sel b (term b title_year [ (t, "id_str") ]) (1925 + (v * 23));
    sel b (at b it "info") (1 + (v * 3))
  in
  (* 4-way: keywords with a parsed movie id join. *)
  let keywords v b =
    let t = Query.Builder.rel b ~table:"title" ~alias:"t" in
    let mk = Query.Builder.rel b ~table:"movie_keyword" ~alias:"mk" in
    let k = Query.Builder.rel b ~table:"keyword" ~alias:"k" in
    let ci = Query.Builder.rel b ~table:"cast_info" ~alias:"ci" in
    jp b (at b t "id") (at b mk "movie_id");
    jp b (at b mk "keyword_id") (at b k "id");
    jp b (term b title_id [ (t, "id_str") ]) (term b movie_ref_id [ (ci, "movie_ref") ]);
    sel b (at b k "keyword_code") (1 + (v * 25))
  in
  List.concat
    [ List.init 3 (fun v -> q (Printf.sprintf "uq%d" (v + 1)) (people v));
      List.init 3 (fun v -> q (Printf.sprintf "uq%d" (v + 4)) (companies v));
      List.init 3 (fun v -> q (Printf.sprintf "uq%d" (v + 7)) (star v));
      List.init 3 (fun v -> q (Printf.sprintf "uq%d" (v + 10)) (info v));
      List.init 3 (fun v -> q (Printf.sprintf "uq%d" (v + 13)) (keywords v)) ]

(* --- 10 TPC-H queries with multi-instance UDFs --- *)

let tpch_udf_queries catalog =
  let open Udf_library in
  let card t = Table.cardinality (Catalog.find catalog t) in
  let n_part = card "part" and n_supplier = card "supplier" in
  (* orders x customer joined normally; a combiner over BOTH picks the
     nation — its statistics cannot exist until o⨝c is materialized. *)
  let pick_nation name v b =
    let o = Query.Builder.rel b ~table:"orders" ~alias:"o" in
    let c = Query.Builder.rel b ~table:"customer" ~alias:"c" in
    let n = Query.Builder.rel b ~table:"nation" ~alias:"n" in
    jp b (at b o "o_custkey") (at b c "c_custkey");
    jp b
      (term b (combine_mod ~name ~modulus:25) [ (c, "c_nationkey"); (o, "o_orderpriority") ])
      (at b n "n_nationkey");
    sel b (at b o "o_orderpriority") (1 + (v mod 5))
  in
  (* lineitem x orders; a combiner selects a part. *)
  let pick_part name v b =
    let l = Query.Builder.rel b ~table:"lineitem" ~alias:"l" in
    let o = Query.Builder.rel b ~table:"orders" ~alias:"o" in
    let p = Query.Builder.rel b ~table:"part" ~alias:"p" in
    jp b (at b l "l_orderkey") (at b o "o_orderkey");
    jp b
      (term b (combine_mod ~name ~modulus:n_part) [ (l, "l_partkey"); (o, "o_orderpriority") ])
      (at b p "p_partkey");
    sel b (at b l "l_returnflag") (1 + (v mod 3));
    sel b (at b p "p_size") (1 + (v * 9))
  in
  (* lineitem x supplier; a combiner selects the nation. *)
  let supp_nation name v b =
    let l = Query.Builder.rel b ~table:"lineitem" ~alias:"l" in
    let s = Query.Builder.rel b ~table:"supplier" ~alias:"s" in
    let n = Query.Builder.rel b ~table:"nation" ~alias:"n" in
    jp b (at b l "l_suppkey") (at b s "s_suppkey");
    jp b
      (term b (combine_mod ~name ~modulus:25) [ (s, "s_nationkey"); (l, "l_quantity") ])
      (at b n "n_nationkey");
    sel b (at b l "l_discount") (1 + (v mod 11))
  in
  (* customer x nation; a combiner selects the region. *)
  let cust_region name v b =
    let c = Query.Builder.rel b ~table:"customer" ~alias:"c" in
    let n = Query.Builder.rel b ~table:"nation" ~alias:"n" in
    let r = Query.Builder.rel b ~table:"region" ~alias:"r" in
    jp b (at b c "c_nationkey") (at b n "n_nationkey");
    jp b
      (term b (combine_mod ~name ~modulus:5) [ (c, "c_mktsegment"); (n, "n_regionkey") ])
      (at b r "r_regionkey");
    sel b (at b c "c_mktsegment") (1 + (v mod 5))
  in
  (* 4-way with a supplier-valued combiner over o x c. *)
  let pick_supplier name v b =
    let o = Query.Builder.rel b ~table:"orders" ~alias:"o" in
    let c = Query.Builder.rel b ~table:"customer" ~alias:"c" in
    let s = Query.Builder.rel b ~table:"supplier" ~alias:"s" in
    let n = Query.Builder.rel b ~table:"nation" ~alias:"n" in
    jp b (at b o "o_custkey") (at b c "c_custkey");
    jp b
      (term b (combine_mod ~name ~modulus:n_supplier) [ (o, "o_totalprice"); (c, "c_nationkey") ])
      (at b s "s_suppkey");
    jp b (at b s "s_nationkey") (at b n "n_nationkey");
    sel b (at b n "n_name") (1 + (v * 5))
  in
  [ q "uq16" (pick_nation "combo_cn_a" 0);
    q "uq17" (pick_nation "combo_cn_b" 2);
    q "uq18" (pick_part "combo_lp_a" 0);
    q "uq19" (pick_part "combo_lp_b" 1);
    q "uq20" (supp_nation "combo_sn_a" 0);
    q "uq21" (supp_nation "combo_sn_b" 4);
    q "uq22" (cust_region "combo_cr_a" 1);
    q "uq23" (cust_region "combo_cr_b" 3);
    q "uq24" (pick_supplier "combo_os_a" 0);
    q "uq25" (pick_supplier "combo_os_b" 2) ]

let queries _cfg catalog = imdb_udf_queries @ tpch_udf_queries catalog

let workload cfg =
  let catalog = generate cfg in
  { Workload.name = "UDF";
    catalog;
    queries = queries cfg catalog;
    hand_written = None }
