open Monsoon_storage
open Monsoon_relalg

(* Read the decimal run starting right after [prefix] in [s]; Null when the
   prefix is absent (mirrors how real extraction UDFs fail on malformed
   rows). *)
let int_after prefix s =
  let plen = String.length prefix in
  let slen = String.length s in
  let rec find i =
    if i + plen > slen then None
    else if String.sub s i plen = prefix then Some (i + plen)
    else find (i + 1)
  in
  match find 0 with
  | None -> Value.Null
  | Some start ->
    let stop = ref start in
    while !stop < slen && s.[!stop] >= '0' && s.[!stop] <= '9' do
      incr stop
    done;
    if !stop = start then Value.Null
    else Value.Int (int_of_string (String.sub s start (!stop - start)))

let string_extractor name prefix =
  Udf.make name (function
    | [| Value.Str s |] -> int_after prefix s
    | [| Value.Null |] -> Value.Null
    | _ -> invalid_arg (name ^ ": expected one string"))

let title_id = string_extractor "title_id" "id="
let title_year = string_extractor "title_year" ";y="
let movie_ref_id = string_extractor "movie_ref_id" "m:"
let person_ref_id = string_extractor "person_ref_id" "ref(p"
let name_id = string_extractor "name_id" "p:"
let name_gender = string_extractor "name_gender" ";g="
let company_country = string_extractor "company_country" "("

let as_intish = function
  | Value.Int i -> i
  | Value.Date d -> d
  | v -> invalid_arg ("combine_mod: non-integer input " ^ Value.to_string v)

let combine_mod ~name ~modulus =
  assert (modulus > 0);
  Udf.make name (function
    | [| a; b |] -> Value.Int (((as_intish a + (37 * as_intish b)) mod modulus) + 1)
    | _ -> invalid_arg (name ^ ": expected two arguments"))
