(** Correlated Optimizer Torture Tests, after Wu et al. (SIGMOD 2016),
    Sec 5.3 — the construction the paper's Table 6 uses.

    Each table carries a pair of perfectly correlated columns [x] and [y]
    ([y] is a function of [x]). Every join predicate between two tables
    requires *both* columns to match, so an independence-assuming optimizer
    under-estimates every join by a factor of the domain size D. Selections
    pin [y] to two different constants on two different tables, making the
    final result provably empty — a plan that joins the filtered tables
    early is almost free, while plans that start among the unfiltered
    tables generate enormous intermediates. Hand-written expert plans
    (join the filtered pair first) are provided as the paper's baseline. *)

open Monsoon_storage

type config = {
  seed : int;
  scale : float;
  domain : int;  (** distinct values D of the correlated columns *)
}

val default_config : config

val generate : config -> Catalog.t

val queries : config -> (string * Monsoon_relalg.Query.t) list
(** Twenty torture queries ([oq1] … [oq20]), 3–5 instances each; every
    final result is empty. *)

val hand_written : string -> Monsoon_relalg.Query.t -> Monsoon_relalg.Expr.t
(** The expert plan: left-deep, filtered instances first. *)

val workload : config -> Workload.t
