open Monsoon_storage
open Monsoon_relalg
open Monsoon_exec
open Monsoon_workloads

(* --- TPC-H generator --- *)

let tpch_cfg scale skew = { Tpch.seed = 7; scale; skew }

let test_tpch_tables () =
  let cat = Tpch.generate (tpch_cfg 0.1 Tpch.Plain) in
  List.iter
    (fun t -> Alcotest.(check bool) (t ^ " exists") true (Catalog.mem cat t))
    [ "region"; "nation"; "supplier"; "part"; "partsupp"; "customer"; "orders"; "lineitem" ];
  let card t = Table.cardinality (Catalog.find cat t) in
  Alcotest.(check int) "region" 5 (card "region");
  Alcotest.(check int) "nation" 25 (card "nation");
  Alcotest.(check bool) "lineitem largest" true
    (card "lineitem" > card "orders" && card "orders" > card "customer")

let top_value_share cat table col =
  let counts = Hashtbl.create 64 in
  Table.iter
    (fun row ->
      let v = row.(Schema.index_of (Table.schema (Catalog.find cat table)) col) in
      Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v)))
    (Catalog.find cat table);
  let total = Table.cardinality (Catalog.find cat table) in
  let top = Hashtbl.fold (fun _ c acc -> max c acc) counts 0 in
  float_of_int top /. float_of_int total

let test_tpch_skew () =
  let plain = Tpch.generate (tpch_cfg 0.2 Tpch.Plain) in
  let high = Tpch.generate (tpch_cfg 0.2 Tpch.High) in
  let share_plain = top_value_share plain "orders" "o_orderpriority" in
  let share_high = top_value_share high "orders" "o_orderpriority" in
  Alcotest.(check bool) "plain roughly uniform" true (share_plain < 0.3);
  Alcotest.(check bool) "z=4 head-heavy" true (share_high > 0.85)

let test_tpch_queries_shape () =
  let qs = Tpch.queries () in
  Alcotest.(check int) "twelve queries" 12 (List.length qs);
  List.iter
    (fun (name, q) ->
      Alcotest.(check bool) (name ^ " has 3+ instances") true (Query.n_rels q >= 3);
      Alcotest.(check bool) (name ^ " has joins") true
        (Array.exists
           (fun p -> match p with Predicate.Join _ -> true | Predicate.Select _ -> false)
           (Query.preds q)))
    qs

let test_tpch_query_executes () =
  let cat = Tpch.generate (tpch_cfg 0.1 Tpch.Plain) in
  let q = List.assoc "tq1" (Tpch.queries ()) in
  let exec = Executor.create cat q (Executor.budget 1e7) in
  (* Join in FK order: small intermediates. *)
  let plan = Expr.join (Expr.join (Expr.base 0) (Expr.base 1)) (Expr.base 2) in
  let _ = Executor.execute exec plan in
  Alcotest.(check bool) "produces rows" true
    (Array.length (Executor.result_rows exec plan) > 0)

(* --- IMDB generator --- *)

let imdb_cfg scale = { Imdb.seed = 11; scale }

let test_imdb_tables () =
  let cat = Imdb.generate (imdb_cfg 0.1) in
  List.iter
    (fun t -> Alcotest.(check bool) (t ^ " exists") true (Catalog.mem cat t))
    [ "title"; "movie_companies"; "company_name"; "cast_info"; "name";
      "movie_info"; "info_type"; "kind_type"; "company_type"; "role_type";
      "keyword"; "movie_keyword" ]

let test_imdb_correlations () =
  let cat = Imdb.generate (imdb_cfg 0.2) in
  (* info_val determines info_type: val / 1000 = type. *)
  let mi = Catalog.find cat "movie_info" in
  let ty_idx = Schema.index_of (Table.schema mi) "info_type_id" in
  let val_idx = Schema.index_of (Table.schema mi) "info_val" in
  Table.iter
    (fun row ->
      let ty = Value.as_int row.(ty_idx) and v = Value.as_int row.(val_idx) in
      if v / 1000 <> ty then
        Alcotest.failf "correlation violated: type %d val %d" ty v)
    mi;
  (* production_year depends on kind: mean years must differ across kinds. *)
  let t = Catalog.find cat "title" in
  let kind_idx = Schema.index_of (Table.schema t) "kind_id" in
  let year_idx = Schema.index_of (Table.schema t) "production_year" in
  let sums = Hashtbl.create 8 in
  Table.iter
    (fun row ->
      let k = Value.as_int row.(kind_idx) and y = Value.as_int row.(year_idx) in
      let s, c = Option.value ~default:(0, 0) (Hashtbl.find_opt sums k) in
      Hashtbl.replace sums k (s + y, c + 1))
    t;
  let means =
    Hashtbl.fold
      (fun _ (s, c) acc -> if c > 30 then (float_of_int s /. float_of_int c) :: acc else acc)
      sums []
  in
  Alcotest.(check bool) "at least two populous kinds" true (List.length means >= 2);
  let mn = List.fold_left min infinity means in
  let mx = List.fold_left max neg_infinity means in
  Alcotest.(check bool) "kind shifts the year distribution" true (mx -. mn > 5.0)

let test_imdb_heavy_tail () =
  let cat = Imdb.generate (imdb_cfg 0.2) in
  Alcotest.(check bool) "popular movies dominate cast_info" true
    (top_value_share cat "cast_info" "movie_id" > 0.01)

let test_imdb_queries () =
  let qs = Imdb.queries () in
  Alcotest.(check int) "sixty queries" 60 (List.length qs);
  List.iter
    (fun (name, q) ->
      Alcotest.(check bool) (name ^ " 3+ instances") true (Query.n_rels q >= 3))
    qs;
  (* Names are unique. *)
  let names = List.map fst qs in
  Alcotest.(check int) "unique names" 60 (List.length (List.sort_uniq compare names))

let test_imdb_ref_strings_parse () =
  let cat = Imdb.generate (imdb_cfg 0.05) in
  let ci = Catalog.find cat "cast_info" in
  let sch = Table.schema ci in
  let mid = Schema.index_of sch "movie_id" in
  let mref = Schema.index_of sch "movie_ref" in
  let pid = Schema.index_of sch "person_id" in
  let pref = Schema.index_of sch "person_ref" in
  Table.iter
    (fun row ->
      Alcotest.(check bool) "movie_ref encodes movie_id" true
        (Value.equal
           (Udf.apply Udf_library.movie_ref_id [| row.(mref) |])
           row.(mid));
      Alcotest.(check bool) "person_ref encodes person_id" true
        (Value.equal
           (Udf.apply Udf_library.person_ref_id [| row.(pref) |])
           row.(pid)))
    ci

(* --- OTT --- *)

let ott_cfg scale = { Ott.seed = 13; scale; domain = 50 }

let test_ott_correlation () =
  let cat = Ott.generate (ott_cfg 0.1) in
  let t = Catalog.find cat "ott1" in
  let sch = Table.schema t in
  let x = Schema.index_of sch "x" and y = Schema.index_of sch "y" in
  Table.iter
    (fun row ->
      Alcotest.(check bool) "y = x" true (Value.equal row.(x) row.(y)))
    t

let test_ott_queries_empty_and_cheap () =
  let cfg = ott_cfg 0.1 in
  let cat = Ott.generate cfg in
  let qs = Ott.queries cfg in
  Alcotest.(check int) "twenty queries" 20 (List.length qs);
  List.iter
    (fun (name, q) ->
      let plan = Ott.hand_written name q in
      let exec = Executor.create cat q (Executor.budget 1e7) in
      let cost, _ = Executor.execute exec plan in
      let rows = Executor.result_rows exec plan in
      Alcotest.(check int) (name ^ " empty result") 0 (Array.length rows);
      (* The expert plan stays comparatively cheap. When the two filters sit
         at opposite ends of a long chain even the best left-deep plan
         accumulates some intermediates before the chain closes, so the
         bound is loose; wrong plans run into the tens of millions. *)
      Alcotest.(check bool) (name ^ " cheap expert plan") true (cost < 500_000.0))
    qs

let test_ott_double_preds () =
  let cfg = ott_cfg 0.1 in
  let qs = Ott.queries cfg in
  let _, q = List.hd qs in
  (* Consecutive chain instances share TWO join predicates (x and y). *)
  let conn = Query.connecting q (Relset.singleton 0) (Relset.singleton 1) in
  Alcotest.(check int) "two predicates" 2 (List.length conn)

(* --- UDF benchmark --- *)

let udf_cfg = { Udf_bench.seed = 17; imdb_scale = 0.05; tpch_scale = 0.05 }

let test_udf_parsers () =
  let open Udf_library in
  let check udf s expect =
    Alcotest.(check bool) (Udf.name udf ^ " on " ^ s) true
      (Value.equal (Udf.apply udf [| Value.Str s |]) expect)
  in
  check title_id "id=123;y=1950" (Value.Int 123);
  check title_year "id=123;y=1950" (Value.Int 1950);
  check movie_ref_id "m:42" (Value.Int 42);
  check person_ref_id "ref(p99)" (Value.Int 99);
  check name_id "p:7;g=2" (Value.Int 7);
  check name_gender "p:7;g=2" (Value.Int 2);
  check company_country "Co#5 (07)" (Value.Int 7);
  check title_id "garbage" Value.Null

let test_combine_mod () =
  let u = Udf_library.combine_mod ~name:"c" ~modulus:25 in
  let v = Udf.apply u [| Value.Int 3; Value.Int 4 |] in
  Alcotest.(check bool) "in range" true
    (match v with Value.Int i -> i >= 1 && i <= 25 | _ -> false);
  Alcotest.(check bool) "deterministic" true
    (Value.equal v (Udf.apply u [| Value.Int 3; Value.Int 4 |]))

let test_udf_bench_queries () =
  let cat = Udf_bench.generate udf_cfg in
  let qs = Udf_bench.queries udf_cfg cat in
  Alcotest.(check int) "twenty-five queries" 25 (List.length qs);
  (* The 10 TPC-H queries all have a multi-instance term. *)
  let multi =
    List.filter
      (fun (_, q) -> Monsoon_baselines.Stats_source.has_multi_instance_terms q)
      qs
  in
  Alcotest.(check int) "ten multi-instance queries" 10 (List.length multi)

let test_udf_string_join_matches_int_join () =
  (* Joining t with ci through the parsing UDFs must give the same result
     as the plain integer FK join. *)
  let cat = Udf_bench.generate udf_cfg in
  let via_strings =
    let b = Query.Builder.create ~name:"str" in
    let t = Query.Builder.rel b ~table:"title" ~alias:"t" in
    let ci = Query.Builder.rel b ~table:"cast_info" ~alias:"ci" in
    Query.Builder.join_pred b
      (Query.Builder.term b Udf_library.title_id [ (t, "id_str") ])
      (Query.Builder.term b Udf_library.movie_ref_id [ (ci, "movie_ref") ]);
    Query.Builder.build b
  in
  let via_ints =
    let b = Query.Builder.create ~name:"int" in
    let t = Query.Builder.rel b ~table:"title" ~alias:"t" in
    let ci = Query.Builder.rel b ~table:"cast_info" ~alias:"ci" in
    Query.Builder.join_pred b
      (Query.Builder.term b (Udf.identity "id") [ (t, "id") ])
      (Query.Builder.term b (Udf.identity "movie_id") [ (ci, "movie_id") ]);
    Query.Builder.build b
  in
  let run q =
    let exec = Executor.create cat q (Executor.budget 1e7) in
    let plan = Expr.join (Expr.base 0) (Expr.base 1) in
    let _ = Executor.execute exec plan in
    Array.length (Executor.result_rows exec plan)
  in
  Alcotest.(check int) "same join result" (run via_ints) (run via_strings)

let test_udf_multi_table_query_runs () =
  let cat = Udf_bench.generate udf_cfg in
  let qs = Udf_bench.queries udf_cfg cat in
  let q = List.assoc "uq16" qs in
  (* o x c first (FK), then the combiner-keyed join with nation. *)
  let plan = Expr.join (Expr.join (Expr.base 0) (Expr.base 1)) (Expr.base 2) in
  let exec = Executor.create cat q (Executor.budget 1e8) in
  let _ = Executor.execute exec plan in
  Alcotest.(check bool) "produces rows" true
    (Array.length (Executor.result_rows exec plan) > 0)

let test_workload_wrappers () =
  let w = Tpch.workload (tpch_cfg 0.05 Tpch.Low) in
  Alcotest.(check string) "skew name" "Low" w.Workload.name;
  Alcotest.(check bool) "find_query" true
    (Query.n_rels (Workload.find_query w "tq3") = 6)

let () =
  Alcotest.run "workloads"
    [ ( "tpch",
        [ Alcotest.test_case "tables" `Quick test_tpch_tables;
          Alcotest.test_case "skew" `Quick test_tpch_skew;
          Alcotest.test_case "query shapes" `Quick test_tpch_queries_shape;
          Alcotest.test_case "query executes" `Quick test_tpch_query_executes ] );
      ( "imdb",
        [ Alcotest.test_case "tables" `Quick test_imdb_tables;
          Alcotest.test_case "correlations" `Quick test_imdb_correlations;
          Alcotest.test_case "heavy tail" `Quick test_imdb_heavy_tail;
          Alcotest.test_case "queries" `Quick test_imdb_queries;
          Alcotest.test_case "ref strings parse" `Quick test_imdb_ref_strings_parse ] );
      ( "ott",
        [ Alcotest.test_case "correlation" `Quick test_ott_correlation;
          Alcotest.test_case "queries empty and cheap" `Quick test_ott_queries_empty_and_cheap;
          Alcotest.test_case "double predicates" `Quick test_ott_double_preds ] );
      ( "udf bench",
        [ Alcotest.test_case "parsers" `Quick test_udf_parsers;
          Alcotest.test_case "combine_mod" `Quick test_combine_mod;
          Alcotest.test_case "query suite" `Quick test_udf_bench_queries;
          Alcotest.test_case "string join == int join" `Quick test_udf_string_join_matches_int_join;
          Alcotest.test_case "multi-table query runs" `Quick test_udf_multi_table_query_runs ] );
      ( "workload",
        [ Alcotest.test_case "wrappers" `Quick test_workload_wrappers ] ) ]
