open Monsoon_storage

(* --- Value --- *)

let test_value_equal () =
  Alcotest.(check bool) "ints" true (Value.equal (Value.Int 3) (Value.Int 3));
  Alcotest.(check bool) "cross-type" false (Value.equal (Value.Int 3) (Value.Str "3"));
  Alcotest.(check bool) "nulls" true (Value.equal Value.Null Value.Null);
  Alcotest.(check bool) "dates" false (Value.equal (Value.Date 1) (Value.Date 2))

let test_value_hash_consistent () =
  Alcotest.(check int64) "same" (Value.hash (Value.Str "x")) (Value.hash (Value.Str "x"));
  Alcotest.(check bool) "int/str differ" true
    (Value.hash (Value.Int 3) <> Value.hash (Value.Str "3"))

let test_value_hash_spread () =
  let seen = Hashtbl.create 64 in
  for i = 0 to 999 do
    Hashtbl.replace seen (Value.hash (Value.Int i)) ()
  done;
  Alcotest.(check int) "1000 distinct hashes" 1000 (Hashtbl.length seen)

let test_value_accessors () =
  Alcotest.(check int) "as_int" 5 (Value.as_int (Value.Int 5));
  Alcotest.(check (float 0.0)) "as_float coerces int" 5.0 (Value.as_float (Value.Int 5));
  Alcotest.(check string) "as_string" "hi" (Value.as_string (Value.Str "hi"));
  Alcotest.check_raises "type error" (Invalid_argument "Value: expected int, got hi")
    (fun () -> ignore (Value.as_int (Value.Str "hi")))

let test_value_to_string () =
  Alcotest.(check string) "null" "NULL" (Value.to_string Value.Null);
  Alcotest.(check string) "int" "42" (Value.to_string (Value.Int 42))

(* --- Schema --- *)

let sample_schema () =
  Schema.make
    [ { Schema.name = "a"; ty = Value.TInt };
      { Schema.name = "b"; ty = Value.TStr } ]

let test_schema_index () =
  let s = sample_schema () in
  Alcotest.(check int) "a at 0" 0 (Schema.index_of s "a");
  Alcotest.(check int) "b at 1" 1 (Schema.index_of s "b");
  Alcotest.(check int) "arity" 2 (Schema.arity s);
  Alcotest.(check bool) "mem" true (Schema.mem s "a");
  Alcotest.(check bool) "not mem" false (Schema.mem s "z")

let test_schema_duplicate_rejected () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Schema.make: duplicate column a") (fun () ->
      ignore
        (Schema.make
           [ { Schema.name = "a"; ty = Value.TInt };
             { Schema.name = "a"; ty = Value.TStr } ]))

(* --- Table --- *)

let sample_table () =
  let s = sample_schema () in
  Table.of_rows ~name:"t" s
    [ [| Value.Int 1; Value.Str "x" |];
      [| Value.Int 2; Value.Str "y" |];
      [| Value.Int 1; Value.Str "x" |] ]

let test_table_basics () =
  let t = sample_table () in
  Alcotest.(check int) "cardinality" 3 (Table.cardinality t);
  Alcotest.(check string) "name" "t" (Table.name t);
  Alcotest.(check int) "get" 2 (Value.as_int (Table.get t 1).(0))

let test_table_append_grows () =
  let t = Table.create ~name:"g" (sample_schema ()) in
  for i = 1 to 100 do
    Table.append t [| Value.Int i; Value.Str "s" |]
  done;
  Alcotest.(check int) "appended" 100 (Table.cardinality t);
  Alcotest.(check int) "rows view length" 100 (Array.length (Table.rows t));
  Alcotest.(check int) "last row" 100 (Value.as_int (Table.get t 99).(0))

let test_table_column_values () =
  let t = sample_table () in
  let vals = Table.column_values t "a" in
  Alcotest.(check int) "len" 3 (Array.length vals);
  Alcotest.(check int) "first" 1 (Value.as_int vals.(0))

let test_table_distinct_exact () =
  let t = sample_table () in
  Alcotest.(check int) "distinct a" 2 (Table.distinct_exact t "a");
  Alcotest.(check int) "distinct b" 2 (Table.distinct_exact t "b")

let test_table_fold_iter () =
  let t = sample_table () in
  let sum = Table.fold (fun acc row -> acc + Value.as_int row.(0)) 0 t in
  Alcotest.(check int) "fold sum" 4 sum;
  let n = ref 0 in
  Table.iter (fun _ -> incr n) t;
  Alcotest.(check int) "iter count" 3 !n

(* --- Catalog --- *)

let test_catalog () =
  let c = Catalog.create () in
  Catalog.add c (sample_table ());
  Alcotest.(check bool) "mem" true (Catalog.mem c "t");
  Alcotest.(check int) "find cardinality" 3 (Table.cardinality (Catalog.find c "t"));
  Alcotest.(check int) "total rows" 3 (Catalog.total_rows c);
  Alcotest.check_raises "duplicate" (Invalid_argument "Catalog.add: duplicate table t")
    (fun () -> Catalog.add c (sample_table ()))

let prop_value_hash_equal_consistent =
  let value_gen =
    QCheck.Gen.(
      oneof
        [ map (fun i -> Value.Int i) small_int;
          map (fun s -> Value.Str s) (string_size (int_range 0 8));
          map (fun f -> Value.Float f) (float_bound_inclusive 100.0);
          return Value.Null ])
  in
  QCheck.Test.make ~name:"equal values hash equally" ~count:500
    (QCheck.make value_gen)
    (fun v -> Int64.equal (Value.hash v) (Value.hash v))

let () =
  Alcotest.run "storage"
    [ ( "value",
        [ Alcotest.test_case "equal" `Quick test_value_equal;
          Alcotest.test_case "hash consistent" `Quick test_value_hash_consistent;
          Alcotest.test_case "hash spread" `Quick test_value_hash_spread;
          Alcotest.test_case "accessors" `Quick test_value_accessors;
          Alcotest.test_case "to_string" `Quick test_value_to_string ] );
      ( "schema",
        [ Alcotest.test_case "index" `Quick test_schema_index;
          Alcotest.test_case "duplicate rejected" `Quick test_schema_duplicate_rejected ] );
      ( "table",
        [ Alcotest.test_case "basics" `Quick test_table_basics;
          Alcotest.test_case "append grows" `Quick test_table_append_grows;
          Alcotest.test_case "column values" `Quick test_table_column_values;
          Alcotest.test_case "distinct exact" `Quick test_table_distinct_exact;
          Alcotest.test_case "fold/iter" `Quick test_table_fold_iter ] );
      ("catalog", [ Alcotest.test_case "basics" `Quick test_catalog ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_value_hash_equal_consistent ] ) ]
