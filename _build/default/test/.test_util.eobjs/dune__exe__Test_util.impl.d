test/test_util.ml: Alcotest Array Dist Fun Gen Hashing Hashtbl List Monsoon_util QCheck QCheck_alcotest Rng
