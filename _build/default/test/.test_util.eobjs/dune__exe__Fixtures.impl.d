test/fixtures.ml: Array Catalog Cost_model List Monsoon_relalg Monsoon_storage Monsoon_util Predicate Query Rng Schema Table Term Udf Value
