test/test_core.ml: Alcotest Driver Expr Fixtures Float List Mdp Monsoon_core Monsoon_mcts Monsoon_relalg Monsoon_stats Monsoon_util Prior QCheck QCheck_alcotest Relset Rng Simulator Stats_catalog
