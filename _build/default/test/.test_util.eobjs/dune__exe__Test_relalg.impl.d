test/test_relalg.ml: Alcotest Array Cost_model Expr Fixtures List Monsoon_relalg Monsoon_storage QCheck QCheck_alcotest Query Relset Term Udf Value
