test/test_sketch.ml: Alcotest Array Dist Distinct_estimator Hyperloglog List Misra_gries Monsoon_sketch Monsoon_util Printf QCheck QCheck_alcotest Reservoir Rng
