test/test_harness.ml: Alcotest Experiments List Monsoon_baselines Monsoon_harness Monsoon_workloads Printf Report Runner Strategy String Udf_bench
