test/test_storage.ml: Alcotest Array Catalog Hashtbl Int64 List Monsoon_storage QCheck QCheck_alcotest Schema Table Value
