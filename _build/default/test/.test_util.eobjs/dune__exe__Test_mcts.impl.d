test/test_mcts.ml: Alcotest Array Fun List Mcts Monsoon_mcts Monsoon_util Option QCheck QCheck_alcotest Rng
