test/test_driver_invariants.mli:
