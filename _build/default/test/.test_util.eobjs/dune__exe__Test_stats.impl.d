test/test_stats.ml: Alcotest Float List Monsoon_stats Monsoon_util Prior QCheck QCheck_alcotest Rng Stats_catalog
