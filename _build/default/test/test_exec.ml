open Monsoon_util
open Monsoon_storage
open Monsoon_relalg
open Monsoon_exec

(* A small two-table join fixture with known contents. *)
let two_table_query ?(select_const = None) () =
  let b = Query.Builder.create ~name:"two" in
  let r = Query.Builder.rel b ~table:"R" ~alias:"R" in
  let s = Query.Builder.rel b ~table:"S" ~alias:"S" in
  let fr = Query.Builder.term b (Udf.identity "k") [ (r, "k") ] in
  let fs = Query.Builder.term b (Udf.identity "k") [ (s, "k") ] in
  Query.Builder.join_pred b fr fs;
  (match select_const with
  | Some v ->
    let fv = Query.Builder.term b (Udf.identity "v") [ (r, "v") ] in
    Query.Builder.select_pred b fv (Value.Int v)
  | None -> ());
  Query.Builder.build b

let two_table_catalog rng ~n_r ~n_s ~d =
  let cat = Catalog.create () in
  Catalog.add cat
    (Fixtures.make_table rng ~name:"R" ~cols:[ ("k", d); ("v", 3) ] n_r);
  Catalog.add cat (Fixtures.make_table rng ~name:"S" ~cols:[ ("k", d) ] n_s);
  cat

let full_join _q = Expr.join (Expr.base 0) (Expr.base 1)

let test_join_matches_brute_force () =
  let rng = Rng.create 31 in
  let q = two_table_query () in
  let cat = two_table_catalog rng ~n_r:200 ~n_s:150 ~d:20 in
  let exec = Executor.create cat q (Executor.budget 1e6) in
  let _cost, _obs = Executor.execute exec (full_join q) in
  let rows = Executor.result_rows exec (full_join q) in
  Alcotest.(check int) "same cardinality as brute force"
    (Fixtures.brute_force_count cat q)
    (Array.length rows)

let test_join_root_not_charged () =
  (* A complete 2-way query consists only of its (free) root join. *)
  let rng = Rng.create 32 in
  let q = two_table_query () in
  let cat = two_table_catalog rng ~n_r:100 ~n_s:100 ~d:10 in
  let exec = Executor.create cat q (Executor.budget 1e6) in
  let cost, _ = Executor.execute exec (full_join q) in
  Alcotest.(check (float 0.0)) "zero cost" 0.0 cost

let test_scan_filter_applied () =
  let rng = Rng.create 33 in
  let q = two_table_query ~select_const:(Some 1) () in
  let cat = two_table_catalog rng ~n_r:300 ~n_s:100 ~d:10 in
  let exec = Executor.create cat q (Executor.budget 1e6) in
  let _ = Executor.execute exec (full_join q) in
  (* All result rows must satisfy the filter. *)
  let rows = Executor.result_rows exec (full_join q) in
  let v_idx =
    Intermediate.col_index q cat
      (Option.get (Executor.materialized exec (Query.all_mask q)))
      ~rel:0 ~col:"v"
  in
  Array.iter
    (fun row -> Alcotest.(check int) "filtered" 1 (Value.as_int row.(v_idx)))
    rows;
  Alcotest.(check int) "matches brute force" (Fixtures.brute_force_count cat q)
    (Array.length rows)

let test_budget_timeout () =
  let rng = Rng.create 34 in
  let q = two_table_query () in
  (* d = 1: the join is a full cross product of matches; 500 * 500 rows. *)
  let cat = two_table_catalog rng ~n_r:500 ~n_s:500 ~d:1 in
  let exec = Executor.create cat q (Executor.budget 1000.0) in
  Alcotest.check_raises "timeout" Executor.Timeout (fun () ->
      ignore (Executor.execute exec (full_join q)))

let test_intermediate_cache_reused () =
  let rng = Rng.create 35 in
  let q = Fixtures.sec23_query () in
  let cat = Fixtures.sec23_catalog rng ~scale:1000 ~d_s:1 ~d_t:10 in
  let exec = Executor.create cat q (Executor.budget 1e8) in
  let rs = Expr.join (Expr.base 0) (Expr.base 1) in
  let c1, _ = Executor.execute exec rs in
  Alcotest.(check bool) "first run charged" true (c1 > 0.0);
  let c2, _ = Executor.execute exec rs in
  Alcotest.(check (float 0.0)) "cached rerun free" 0.0 c2;
  (* A plan reusing the cached intermediate as a leaf only pays the top. *)
  let top = Expr.join (Expr.leaf (Relset.of_list [ 0; 1 ])) (Expr.base 2) in
  let c3, _ = Executor.execute exec top in
  Alcotest.(check (float 0.0)) "root of full query free" 0.0 c3

let test_sec23_three_way_ground_truth () =
  let rng = Rng.create 36 in
  let q = Fixtures.sec23_query () in
  let cat = Fixtures.sec23_catalog rng ~scale:2000 ~d_s:1 ~d_t:5 in
  let exec = Executor.create cat q (Executor.budget 1e8) in
  let plan = Expr.join (Expr.join (Expr.base 0) (Expr.base 1)) (Expr.base 2) in
  let _ = Executor.execute exec plan in
  Alcotest.(check int) "matches brute force"
    (Fixtures.brute_force_count cat q)
    (Array.length (Executor.result_rows exec plan))

let test_observed_counts () =
  let rng = Rng.create 37 in
  let q = Fixtures.sec23_query () in
  let cat = Fixtures.sec23_catalog rng ~scale:2000 ~d_s:1 ~d_t:5 in
  let exec = Executor.create cat q (Executor.budget 1e8) in
  let inner = Expr.join (Expr.base 0) (Expr.base 1) in
  let plan = Expr.join inner (Expr.base 2) in
  let cost, obs = Executor.execute exec plan in
  (* Observations cover the two join masks (plus any filtered scans). *)
  let c_of m = List.assoc_opt m obs.Executor.obs_counts in
  let inner_card =
    float_of_int
      (Intermediate.cardinality (Option.get (Executor.materialized exec (Expr.mask inner))))
  in
  Alcotest.(check (option (float 0.0))) "inner count observed" (Some inner_card)
    (c_of (Expr.mask inner));
  Alcotest.(check bool) "full count observed" true (c_of (Query.all_mask q) <> None);
  Alcotest.(check (float 0.0)) "cost = inner cardinality" inner_card cost

let test_sigma_measures_distincts () =
  let rng = Rng.create 38 in
  let q = Fixtures.sec23_query () in
  let cat = Fixtures.sec23_catalog rng ~scale:1000 ~d_s:7 ~d_t:4 in
  let exec = Executor.create cat q (Executor.budget 1e8) in
  let cost, obs = Executor.execute exec (Expr.stats (Expr.base 1)) in
  (* Σ(S) measures d(F2, S): term id 1. *)
  (match List.assoc_opt 1 obs.Executor.obs_distincts with
  | Some d ->
    let truth = float_of_int (Table.distinct_exact (Catalog.find cat "S") "b") in
    Alcotest.(check bool) "HLL close to exact" true
      (abs_float (d -. truth) /. truth < 0.05)
  | None -> Alcotest.fail "no distinct measured for F2");
  (* Cost of Σ over a base table: one pass over its rows. *)
  let c_s = float_of_int (Table.cardinality (Catalog.find cat "S")) in
  Alcotest.(check (float 0.0)) "one pass" c_s cost;
  Alcotest.(check (float 0.0)) "all of it is stats cost" c_s obs.Executor.obs_stats_cost

let test_sigma_on_intermediate () =
  let rng = Rng.create 39 in
  let q = Fixtures.sec23_query () in
  let cat = Fixtures.sec23_catalog rng ~scale:2000 ~d_s:3 ~d_t:5 in
  let exec = Executor.create cat q (Executor.budget 1e8) in
  let inner = Expr.join (Expr.base 0) (Expr.base 1) in
  let cost, obs = Executor.execute exec (Expr.stats inner) in
  let inner_card =
    float_of_int
      (Intermediate.cardinality (Option.get (Executor.materialized exec (Expr.mask inner))))
  in
  (* Materialize (charged) + extra Σ pass. *)
  Alcotest.(check (float 0.0)) "2x inner" (2.0 *. inner_card) cost;
  (* Terms F1, F2, F3 are all evaluable on R⨝S. *)
  let ids = List.sort compare (List.map fst obs.Executor.obs_distincts) in
  Alcotest.(check (list int)) "terms measured" [ 0; 1; 2 ] ids

let test_cross_product_when_unconnected () =
  (* S and T have no connecting predicate: joining them is a cross
     product. *)
  let rng = Rng.create 40 in
  let q = Fixtures.sec23_query () in
  let cat = Fixtures.sec23_catalog rng ~scale:2000 ~d_s:2 ~d_t:2 in
  let exec = Executor.create cat q (Executor.budget 1e8) in
  let st = Expr.join (Expr.base 1) (Expr.base 2) in
  let cost, _ = Executor.execute exec st in
  let c_s = float_of_int (Table.cardinality (Catalog.find cat "S")) in
  let c_t = float_of_int (Table.cardinality (Catalog.find cat "T")) in
  Alcotest.(check (float 0.0)) "|S|*|T|" (c_s *. c_t) cost

(* Property: hash join result always equals the nested-loop oracle. *)
let prop_join_equals_oracle =
  QCheck.Test.make ~name:"hash join == nested loop oracle" ~count:30
    QCheck.(triple (int_range 10 120) (int_range 10 120) (int_range 1 30))
    (fun (n_r, n_s, d) ->
      let rng = Rng.create (n_r + (n_s * 131) + d) in
      let q = two_table_query () in
      let cat = two_table_catalog rng ~n_r ~n_s ~d in
      let exec = Executor.create cat q (Executor.budget 1e7) in
      let _ = Executor.execute exec (full_join q) in
      Array.length (Executor.result_rows exec (full_join q))
      = Fixtures.brute_force_count cat q)

(* Property: three-way plans of either shape produce identical result
   cardinalities. *)
let prop_plan_shape_irrelevant =
  QCheck.Test.make ~name:"plan shape does not change the result" ~count:15
    QCheck.(pair (int_range 1 8) (int_range 1 8))
    (fun (d_s, d_t) ->
      let rng = Rng.create ((d_s * 17) + d_t) in
      let q = Fixtures.sec23_query () in
      let cat = Fixtures.sec23_catalog rng ~scale:4000 ~d_s ~d_t in
      let plan1 = Expr.join (Expr.join (Expr.base 0) (Expr.base 1)) (Expr.base 2) in
      let plan2 = Expr.join (Expr.join (Expr.base 0) (Expr.base 2)) (Expr.base 1) in
      let run plan =
        let exec = Executor.create cat q (Executor.budget 1e8) in
        let _ = Executor.execute exec plan in
        Array.length (Executor.result_rows exec plan)
      in
      run plan1 = run plan2)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "exec"
    [ ( "executor",
        [ Alcotest.test_case "join vs brute force" `Quick test_join_matches_brute_force;
          Alcotest.test_case "root not charged" `Quick test_join_root_not_charged;
          Alcotest.test_case "scan filter" `Quick test_scan_filter_applied;
          Alcotest.test_case "budget timeout" `Quick test_budget_timeout;
          Alcotest.test_case "cache reuse" `Quick test_intermediate_cache_reused;
          Alcotest.test_case "3-way ground truth" `Quick test_sec23_three_way_ground_truth;
          Alcotest.test_case "observed counts" `Quick test_observed_counts;
          Alcotest.test_case "sigma distincts" `Quick test_sigma_measures_distincts;
          Alcotest.test_case "sigma on intermediate" `Quick test_sigma_on_intermediate;
          Alcotest.test_case "cross product" `Quick test_cross_product_when_unconnected ] );
      ("properties", qc [ prop_join_equals_oracle; prop_plan_shape_irrelevant ]) ]
