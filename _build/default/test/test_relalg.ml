open Monsoon_storage
open Monsoon_relalg

(* --- Relset --- *)

let test_relset_basics () =
  let s = Relset.of_list [ 0; 2; 5 ] in
  Alcotest.(check int) "cardinal" 3 (Relset.cardinal s);
  Alcotest.(check (list int)) "to_list" [ 0; 2; 5 ] (Relset.to_list s);
  Alcotest.(check bool) "mem" true (Relset.mem 2 s);
  Alcotest.(check bool) "not mem" false (Relset.mem 1 s);
  Alcotest.(check int) "min_elt" 0 (Relset.min_elt s)

let test_relset_ops () =
  let a = Relset.of_list [ 0; 1 ] and b = Relset.of_list [ 1; 2 ] in
  Alcotest.(check (list int)) "union" [ 0; 1; 2 ] (Relset.to_list (Relset.union a b));
  Alcotest.(check (list int)) "inter" [ 1 ] (Relset.to_list (Relset.inter a b));
  Alcotest.(check bool) "subset" true (Relset.subset a (Relset.union a b));
  Alcotest.(check bool) "not subset" false (Relset.subset b a);
  Alcotest.(check bool) "disjoint" true (Relset.disjoint (Relset.singleton 0) (Relset.singleton 3))

let test_relset_subsets () =
  let s = Relset.of_list [ 0; 1; 2 ] in
  let subs = Relset.subsets_nonempty s in
  Alcotest.(check int) "7 non-empty subsets" 7 (List.length subs);
  List.iter (fun sub -> Alcotest.(check bool) "subset" true (Relset.subset sub s)) subs

let prop_relset_union_cardinal =
  QCheck.Test.make ~name:"inclusion-exclusion" ~count:500
    QCheck.(pair (int_bound 0xFFFF) (int_bound 0xFFFF))
    (fun (a, b) ->
      Relset.cardinal (Relset.union a b) + Relset.cardinal (Relset.inter a b)
      = Relset.cardinal a + Relset.cardinal b)

let prop_relset_subsets_count =
  QCheck.Test.make ~name:"2^n - 1 subsets" ~count:100
    QCheck.(int_bound 0x3FF)
    (fun s ->
      List.length (Relset.subsets_nonempty s)
      = (1 lsl Relset.cardinal s) - 1)

(* --- Query builder and predicates --- *)

let test_builder_sec23 () =
  let q = Fixtures.sec23_query () in
  Alcotest.(check int) "3 instances" 3 (Query.n_rels q);
  Alcotest.(check int) "2 predicates" 2 (Array.length (Query.preds q));
  Alcotest.(check int) "4 terms" 4 (Array.length (Query.terms q));
  Alcotest.(check int) "full mask" 7 (Query.all_mask q)

let test_builder_rejects_overlap () =
  let b = Query.Builder.create ~name:"bad" in
  let r = Query.Builder.rel b ~table:"R" ~alias:"R" in
  let t1 = Query.Builder.term b (Udf.identity "a") [ (r, "a") ] in
  let t2 = Query.Builder.term b (Udf.identity "b") [ (r, "b") ] in
  Alcotest.check_raises "overlap"
    (Invalid_argument "Query.Builder.join_pred: overlapping sides") (fun () ->
      Query.Builder.join_pred b t1 t2)

let test_builder_rejects_unknown_rel () =
  let b = Query.Builder.create ~name:"bad" in
  let _ = Query.Builder.rel b ~table:"R" ~alias:"R" in
  Alcotest.check_raises "unknown instance"
    (Invalid_argument "Query.Builder.term: unknown relation instance")
    (fun () -> ignore (Query.Builder.term b (Udf.identity "x") [ (3, "x") ]))

let test_connectivity () =
  let q = Fixtures.sec23_query () in
  let r = Relset.singleton 0 and s = Relset.singleton 1 and t = Relset.singleton 2 in
  Alcotest.(check bool) "R-S connected" true (Query.connected q r s);
  Alcotest.(check bool) "R-T connected" true (Query.connected q r t);
  Alcotest.(check bool) "S-T not connected" false (Query.connected q s t);
  Alcotest.(check (list int)) "RS pred" [ 0 ] (Query.connecting q r s);
  Alcotest.(check (list int)) "RT pred" [ 1 ] (Query.connecting q r t)

let test_newly_evaluable () =
  let q = Fixtures.sec23_query () in
  let rs = Relset.of_list [ 0; 1 ] and t = Relset.singleton 2 in
  Alcotest.(check (list int)) "RS+T reveals pred 1" [ 1 ]
    (Query.newly_evaluable q ~left:rs ~right:t);
  (* Joining S with T reveals nothing. *)
  Alcotest.(check (list int)) "S+T reveals none" []
    (Query.newly_evaluable q ~left:(Relset.singleton 1) ~right:t)

let test_interesting_terms () =
  let q = Fixtures.sec23_query () in
  let terms_on m =
    List.map (fun tm -> tm.Term.id) (Query.interesting_terms q m)
  in
  Alcotest.(check (list int)) "on R" [ 0; 2 ] (terms_on (Relset.singleton 0));
  Alcotest.(check (list int)) "on S" [ 1 ] (terms_on (Relset.singleton 1));
  Alcotest.(check (list int)) "on RS" [ 0; 1; 2 ] (terms_on (Relset.of_list [ 0; 1 ]))

(* --- Expr --- *)

let test_expr_canonical_join_order () =
  let a = Expr.base 0 and b = Expr.base 1 in
  Alcotest.(check string) "commutative key" (Expr.key (Expr.join a b))
    (Expr.key (Expr.join b a))

let test_expr_shape_distinguished () =
  let r = Expr.base 0 and s = Expr.base 1 and t = Expr.base 2 in
  let left_deep = Expr.join (Expr.join r s) t in
  let other = Expr.join (Expr.join r t) s in
  Alcotest.(check bool) "different shapes differ" false
    (Expr.equal left_deep other);
  Alcotest.(check int) "same mask" (Expr.mask left_deep) (Expr.mask other)

let test_expr_stats_rules () =
  let e = Expr.join (Expr.base 0) (Expr.base 1) in
  let se = Expr.stats e in
  Alcotest.(check bool) "has stats" true (Expr.has_stats se);
  Alcotest.(check bool) "strip" true (Expr.equal e (Expr.strip_stats se));
  Alcotest.check_raises "no double sigma" (Invalid_argument "Expr.stats: already has Σ")
    (fun () -> ignore (Expr.stats se));
  Alcotest.check_raises "no join of sigma"
    (Invalid_argument "Expr.join: cannot join a Σ-topped expression") (fun () ->
      ignore (Expr.join se (Expr.base 2)))

let test_expr_join_disjoint () =
  Alcotest.check_raises "overlap" (Invalid_argument "Expr.join: overlapping sides")
    (fun () -> ignore (Expr.join (Expr.base 0) (Expr.leaf (Relset.of_list [ 0; 1 ]))))

let test_expr_join_nodes () =
  let r = Expr.base 0 and s = Expr.base 1 and t = Expr.base 2 in
  let e = Expr.join (Expr.join r s) t in
  Alcotest.(check int) "two join nodes" 2 (List.length (Expr.join_nodes e));
  Alcotest.(check (list int)) "leaves" [ 1; 2; 4 ]
    (List.sort compare (Expr.leaves e))

let test_expr_describe () =
  let q = Fixtures.sec23_query () in
  let e = Expr.join (Expr.join (Expr.base 0) (Expr.base 1)) (Expr.base 2) in
  Alcotest.(check string) "pretty" "((R ⨝ S) ⨝ T)" (Expr.describe q e)

(* --- Cost model: exact reproduction of the paper's Table 1 --- *)

let paper_raw = [| 1e6; 1e4; 1e4 |]

let plan_rs_t = Expr.join (Expr.join (Expr.base 0) (Expr.base 1)) (Expr.base 2)
let plan_rt_s = Expr.join (Expr.join (Expr.base 0) (Expr.base 2)) (Expr.base 1)

let sec23_env ~d_s ~d_t =
  Fixtures.fixed_env ~raw:paper_raw ~d:(function
    | 0 | 2 -> 1000.0 (* F1, F3 over R *)
    | 1 -> d_s (* F2 over S *)
    | 3 -> d_t (* F4 over T *)
    | _ -> assert false)

let check_scenario ~d_s ~d_t ~cost_rs_t ~cost_rt_s =
  let q = Fixtures.sec23_query () in
  let env = sec23_env ~d_s ~d_t in
  Alcotest.(check (float 1.0)) "cost ((R⨝S)⨝T)" cost_rs_t (Cost_model.cost q env plan_rs_t);
  Alcotest.(check (float 1.0)) "cost ((R⨝T)⨝S)" cost_rt_s (Cost_model.cost q env plan_rt_s)

(* Rows of Table 1: intermediate tuples of the first join under each
   scenario. *)
let test_table1_row1 () = check_scenario ~d_s:1. ~d_t:1. ~cost_rs_t:1e7 ~cost_rt_s:1e7
let test_table1_row2 () = check_scenario ~d_s:1. ~d_t:1e4 ~cost_rs_t:1e7 ~cost_rt_s:1e6
let test_table1_row3 () = check_scenario ~d_s:1e4 ~d_t:1. ~cost_rs_t:1e6 ~cost_rt_s:1e7
let test_table1_row4 () = check_scenario ~d_s:1e4 ~d_t:1e4 ~cost_rs_t:1e6 ~cost_rt_s:1e6

let test_estimate_shape_independent () =
  let q = Fixtures.sec23_query () in
  let env = sec23_env ~d_s:1.0 ~d_t:1e4 in
  Alcotest.(check (float 1.0)) "same estimate"
    (Cost_model.estimate q env plan_rs_t)
    (Cost_model.estimate q env plan_rt_s)

let test_final_result_not_charged () =
  (* The root covers all instances, so only the inner join is charged. *)
  let q = Fixtures.sec23_query () in
  let env = sec23_env ~d_s:1e4 ~d_t:1e4 in
  let inner = Expr.join (Expr.base 0) (Expr.base 1) in
  Alcotest.(check (float 1.0)) "inner charged when root"
    (Cost_model.estimate q env inner)
    (Cost_model.cost q env plan_rs_t)

let test_partial_plan_root_charged () =
  (* A plan that does NOT cover the whole query is charged for its root. *)
  let q = Fixtures.sec23_query () in
  let env = sec23_env ~d_s:1e4 ~d_t:1e4 in
  let inner = Expr.join (Expr.base 0) (Expr.base 1) in
  Alcotest.(check (float 1.0)) "root charged" 1e6 (Cost_model.cost q env inner)

let test_sigma_cost_is_extra_pass () =
  let q = Fixtures.sec23_query () in
  let env = sec23_env ~d_s:1e4 ~d_t:1e4 in
  (* Σ over the materialized S: one pass over 10^4 objects. *)
  Alcotest.(check (float 1.0)) "Σ(S)" 1e4 (Cost_model.cost q env (Expr.stats (Expr.base 1)));
  (* Σ over a planned join: materialize it (charged) plus one extra pass. *)
  let inner = Expr.join (Expr.base 0) (Expr.base 1) in
  Alcotest.(check (float 1.0)) "Σ(R⨝S)" 2e6 (Cost_model.cost q env (Expr.stats inner))

let test_count_shortcircuit () =
  (* A count in S overrides generation (step 1 of Sec 4.3). *)
  let q = Fixtures.sec23_query () in
  let rs = Relset.of_list [ 0; 1 ] in
  let env =
    { (sec23_env ~d_s:1e4 ~d_t:1e4) with
      Cost_model.count_of =
        (fun m -> if Relset.equal m rs then Some 123.0 else None) }
  in
  let inner = Expr.join (Expr.base 0) (Expr.base 1) in
  Alcotest.(check (float 0.01)) "short-circuited" 123.0 (Cost_model.estimate q env inner)

let test_selection_selectivity () =
  (* One select predicate F(R.a) = const with d = 100 over c(R) = 1e6. *)
  let b = Query.Builder.create ~name:"sel" in
  let r = Query.Builder.rel b ~table:"R" ~alias:"R" in
  let s = Query.Builder.rel b ~table:"S" ~alias:"S" in
  let fa = Query.Builder.term b (Udf.identity "a") [ (r, "a") ] in
  let fb = Query.Builder.term b (Udf.identity "b") [ (r, "b") ] in
  let fc = Query.Builder.term b (Udf.identity "c") [ (s, "c") ] in
  Query.Builder.select_pred b fa (Value.Int 7);
  Query.Builder.join_pred b fb fc;
  let q = Query.Builder.build b in
  let env =
    Fixtures.fixed_env ~raw:[| 1e6; 1e4 |] ~d:(function
      | 0 -> 100.0
      | 1 | 2 -> 1e4
      | _ -> assert false)
  in
  Alcotest.(check (float 1.0)) "filtered scan" 1e4
    (Cost_model.estimate q env (Expr.base 0));
  (* Join size: 1e4 * 1e4 / max(1e4, 1e4) -- d clamped to filtered card. *)
  let join = Expr.join (Expr.base 0) (Expr.base 1) in
  Alcotest.(check (float 1.0)) "join of filtered" 1e4
    (Cost_model.estimate q env join)

let test_clamp_distinct () =
  Alcotest.(check (float 0.0)) "upper" 10.0 (Cost_model.clamp_distinct ~c_own:10.0 50.0);
  Alcotest.(check (float 0.0)) "lower" 1.0 (Cost_model.clamp_distinct ~c_own:10.0 0.1);
  Alcotest.(check (float 0.0)) "tiny own" 1.0 (Cost_model.clamp_distinct ~c_own:0.5 0.2)

let prop_join_selectivity_bounds =
  QCheck.Test.make ~name:"join selectivity in (0,1]" ~count:500
    QCheck.(pair (float_range 1.0 1e9) (float_range 1.0 1e9))
    (fun (d1, d2) ->
      let s = Cost_model.join_selectivity ~d1 ~d2 in
      s > 0.0 && s <= 1.0)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "relalg"
    [ ( "relset",
        [ Alcotest.test_case "basics" `Quick test_relset_basics;
          Alcotest.test_case "ops" `Quick test_relset_ops;
          Alcotest.test_case "subsets" `Quick test_relset_subsets ] );
      ( "query",
        [ Alcotest.test_case "sec2.3 builder" `Quick test_builder_sec23;
          Alcotest.test_case "rejects overlap" `Quick test_builder_rejects_overlap;
          Alcotest.test_case "rejects unknown rel" `Quick test_builder_rejects_unknown_rel;
          Alcotest.test_case "connectivity" `Quick test_connectivity;
          Alcotest.test_case "newly evaluable" `Quick test_newly_evaluable;
          Alcotest.test_case "interesting terms" `Quick test_interesting_terms ] );
      ( "expr",
        [ Alcotest.test_case "canonical join order" `Quick test_expr_canonical_join_order;
          Alcotest.test_case "shape distinguished" `Quick test_expr_shape_distinguished;
          Alcotest.test_case "sigma rules" `Quick test_expr_stats_rules;
          Alcotest.test_case "join disjointness" `Quick test_expr_join_disjoint;
          Alcotest.test_case "join nodes" `Quick test_expr_join_nodes;
          Alcotest.test_case "describe" `Quick test_expr_describe ] );
      ( "cost model (Table 1)",
        [ Alcotest.test_case "row 1" `Quick test_table1_row1;
          Alcotest.test_case "row 2" `Quick test_table1_row2;
          Alcotest.test_case "row 3" `Quick test_table1_row3;
          Alcotest.test_case "row 4" `Quick test_table1_row4;
          Alcotest.test_case "estimate shape-independent" `Quick test_estimate_shape_independent;
          Alcotest.test_case "final result free" `Quick test_final_result_not_charged;
          Alcotest.test_case "partial root charged" `Quick test_partial_plan_root_charged;
          Alcotest.test_case "sigma extra pass" `Quick test_sigma_cost_is_extra_pass;
          Alcotest.test_case "count short-circuit" `Quick test_count_shortcircuit;
          Alcotest.test_case "selection selectivity" `Quick test_selection_selectivity;
          Alcotest.test_case "clamp" `Quick test_clamp_distinct ] );
      ("properties", qc [ prop_relset_union_cardinal; prop_relset_subsets_count; prop_join_selectivity_bounds ]) ]
