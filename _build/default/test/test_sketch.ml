open Monsoon_util
open Monsoon_sketch

(* --- HyperLogLog --- *)

let hll_relative_error ~p ~n =
  let hll = Hyperloglog.create ~p () in
  for i = 1 to n do
    Hyperloglog.add_int hll i
  done;
  abs_float (Hyperloglog.count hll -. float_of_int n) /. float_of_int n

let test_hll_small_exactish () =
  (* Linear-counting regime: small cardinalities are near-exact. *)
  let err = hll_relative_error ~p:12 ~n:100 in
  Alcotest.(check bool) "error < 2%" true (err < 0.02)

let test_hll_medium () =
  let err = hll_relative_error ~p:12 ~n:50_000 in
  Alcotest.(check bool) "error < 5%" true (err < 0.05)

let test_hll_large () =
  let err = hll_relative_error ~p:14 ~n:1_000_000 in
  Alcotest.(check bool) "error < 3%" true (err < 0.03)

let test_hll_duplicates_ignored () =
  let hll = Hyperloglog.create ~p:12 () in
  for _ = 1 to 50 do
    for i = 1 to 500 do
      Hyperloglog.add_string hll (string_of_int i)
    done
  done;
  let c = Hyperloglog.count hll in
  Alcotest.(check bool) "counts distincts" true (abs_float (c -. 500.0) < 25.0)

let test_hll_empty () =
  let hll = Hyperloglog.create () in
  Alcotest.(check (float 0.001)) "empty is zero" 0.0 (Hyperloglog.count hll)

let test_hll_merge () =
  let a = Hyperloglog.create ~p:12 () and b = Hyperloglog.create ~p:12 () in
  for i = 1 to 1000 do
    Hyperloglog.add_int a i
  done;
  for i = 501 to 1500 do
    Hyperloglog.add_int b i
  done;
  let m = Hyperloglog.merge a b in
  let c = Hyperloglog.count m in
  Alcotest.(check bool) "union ~1500" true (abs_float (c -. 1500.0) < 75.0)

let test_hll_clear () =
  let hll = Hyperloglog.create ~p:12 () in
  for i = 1 to 1000 do
    Hyperloglog.add_int hll i
  done;
  Hyperloglog.clear hll;
  Alcotest.(check (float 0.001)) "cleared" 0.0 (Hyperloglog.count hll)

let prop_hll_error_bound =
  (* 1.04/sqrt(m) standard error; allow 6 sigma. *)
  QCheck.Test.make ~name:"hll relative error bounded" ~count:20
    QCheck.(int_range 100 200_000)
    (fun n ->
      let err = hll_relative_error ~p:12 ~n in
      err < 6.0 *. (1.04 /. sqrt 4096.0))

(* --- Reservoir --- *)

let test_reservoir_under_capacity () =
  let rng = Rng.create 1 in
  let r = Reservoir.create rng ~capacity:10 in
  List.iter (Reservoir.add r) [ 1; 2; 3 ];
  Alcotest.(check int) "seen" 3 (Reservoir.seen r);
  Alcotest.(check int) "sample size" 3 (Array.length (Reservoir.sample r))

let test_reservoir_at_capacity () =
  let rng = Rng.create 2 in
  let r = Reservoir.create rng ~capacity:100 in
  for i = 1 to 10_000 do
    Reservoir.add r i
  done;
  Alcotest.(check int) "sample capped" 100 (Array.length (Reservoir.sample r));
  Alcotest.(check int) "seen all" 10_000 (Reservoir.seen r)

let test_reservoir_uniformity () =
  (* Each item should appear with probability capacity/n; check the mean of
     sampled values is near the population mean. *)
  let rng = Rng.create 3 in
  let means = ref [] in
  for _ = 1 to 200 do
    let r = Reservoir.create rng ~capacity:50 in
    for i = 1 to 1000 do
      Reservoir.add r i
    done;
    let s = Reservoir.sample r in
    means :=
      (Array.fold_left (fun acc v -> acc +. float_of_int v) 0.0 s
      /. float_of_int (Array.length s))
      :: !means
  done;
  let grand = Dist.mean (Array.of_list !means) in
  Alcotest.(check bool) "mean near 500.5" true (abs_float (grand -. 500.5) < 15.0)

(* --- GEE distinct estimator --- *)

let test_gee_exact_when_full () =
  (* Sample = population: estimator ~ true distinct count. *)
  let sample = Array.init 1000 (fun i -> string_of_int (i mod 100)) in
  let est = Distinct_estimator.gee ~population:1000 sample in
  Alcotest.(check bool) "close to 100" true (abs_float (est -. 100.0) < 10.0)

let test_gee_all_unique_sample () =
  (* All-singleton sample from a big population: estimate sqrt(n/r)*r =
     sqrt(n*r). *)
  let sample = Array.init 100 string_of_int in
  let est = Distinct_estimator.gee ~population:10_000 sample in
  Alcotest.(check (float 1.0)) "sqrt(n*r)" (sqrt (10_000.0 *. 100.0)) est

let test_gee_monotone_bounds () =
  let sample = Array.init 50 (fun i -> string_of_int (i mod 10)) in
  let est = Distinct_estimator.gee ~population:500 sample in
  Alcotest.(check bool) "at least seen distincts" true (est >= 10.0);
  Alcotest.(check bool) "at most population" true (est <= 500.0)

let test_gee_empty () =
  Alcotest.(check (float 0.001)) "empty" 0.0
    (Distinct_estimator.gee ~population:100 [||])

let test_exact_distinct () =
  Alcotest.(check int) "exact" 3
    (Distinct_estimator.exact [| "a"; "b"; "a"; "c"; "b" |])

let prop_gee_bounds =
  QCheck.Test.make ~name:"gee within [seen, population]" ~count:200
    QCheck.(pair (int_range 1 200) (int_range 1 50))
    (fun (n_sample, n_vals) ->
      let rng = Rng.create (n_sample * 31 + n_vals) in
      let sample =
        Array.init n_sample (fun _ -> string_of_int (Rng.int rng n_vals))
      in
      let population = n_sample * 10 in
      let est = Distinct_estimator.gee ~population sample in
      let seen = float_of_int (Distinct_estimator.exact sample) in
      est >= seen && est <= float_of_int population)

(* --- Misra–Gries --- *)

let test_mg_finds_heavy_hitter () =
  let mg = Misra_gries.create ~k:10 in
  (* 5000 copies of "hot", 5000 spread over 1000 cold values. *)
  let rng = Rng.create 4 in
  for _ = 1 to 5000 do
    Misra_gries.add mg "hot"
  done;
  for _ = 1 to 5000 do
    Misra_gries.add mg (Printf.sprintf "cold%d" (Rng.int rng 1000))
  done;
  let hh = Misra_gries.heavy_hitters mg in
  Alcotest.(check bool) "hot is first" true
    (match hh with (v, _) :: _ -> v = "hot" | [] -> false)

let test_mg_undercount_bound () =
  let mg = Misra_gries.create ~k:10 in
  for _ = 1 to 1000 do
    Misra_gries.add mg "x"
  done;
  for i = 1 to 500 do
    Misra_gries.add mg (string_of_int i)
  done;
  let count = List.assoc_opt "x" (Misra_gries.heavy_hitters mg) in
  (match count with
  | Some c ->
    (* Undercount bounded by n/k = 150. *)
    Alcotest.(check bool) "within bound" true (c >= 1000 - 150 && c <= 1000)
  | None -> Alcotest.fail "x evicted despite frequency > n/k");
  Alcotest.(check int) "processed" 1500 (Misra_gries.processed mg)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "sketch"
    [ ( "hyperloglog",
        [ Alcotest.test_case "small" `Quick test_hll_small_exactish;
          Alcotest.test_case "medium" `Quick test_hll_medium;
          Alcotest.test_case "large" `Slow test_hll_large;
          Alcotest.test_case "duplicates" `Quick test_hll_duplicates_ignored;
          Alcotest.test_case "empty" `Quick test_hll_empty;
          Alcotest.test_case "merge" `Quick test_hll_merge;
          Alcotest.test_case "clear" `Quick test_hll_clear ] );
      ( "reservoir",
        [ Alcotest.test_case "under capacity" `Quick test_reservoir_under_capacity;
          Alcotest.test_case "at capacity" `Quick test_reservoir_at_capacity;
          Alcotest.test_case "uniformity" `Quick test_reservoir_uniformity ] );
      ( "distinct estimator",
        [ Alcotest.test_case "full sample" `Quick test_gee_exact_when_full;
          Alcotest.test_case "all unique" `Quick test_gee_all_unique_sample;
          Alcotest.test_case "bounds" `Quick test_gee_monotone_bounds;
          Alcotest.test_case "empty" `Quick test_gee_empty;
          Alcotest.test_case "exact" `Quick test_exact_distinct ] );
      ( "misra-gries",
        [ Alcotest.test_case "heavy hitter" `Quick test_mg_finds_heavy_hitter;
          Alcotest.test_case "undercount bound" `Quick test_mg_undercount_bound ] );
      ("properties", qc [ prop_hll_error_bound; prop_gee_bounds ]) ]
