open Monsoon_util

let check_float = Alcotest.(check (float 1e-9))

(* --- Rng --- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different streams" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_int_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_in () =
  let rng = Rng.create 8 in
  let seen = Hashtbl.create 16 in
  for _ = 1 to 5_000 do
    let v = Rng.int_in rng 3 7 in
    Alcotest.(check bool) "in [3,7]" true (v >= 3 && v <= 7);
    Hashtbl.replace seen v ()
  done;
  Alcotest.(check int) "all values hit" 5 (Hashtbl.length seen)

let test_rng_unit_float () =
  let rng = Rng.create 9 in
  let sum = ref 0.0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Rng.unit_float rng in
    assert (v >= 0.0 && v < 1.0);
    sum := !sum +. v
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (abs_float (mean -. 0.5) < 0.01)

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  Alcotest.(check bool) "split streams differ" true
    (Rng.bits64 a <> Rng.bits64 b)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 11 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

(* --- Dist --- *)

let sample_stats f n =
  let rng = Rng.create 123 in
  let xs = Array.init n (fun _ -> f rng) in
  (Dist.mean xs, Dist.stddev xs)

let test_normal_moments () =
  let mean, sd = sample_stats (fun rng -> Dist.normal rng ~mean:3.0 ~stddev:2.0) 200_000 in
  Alcotest.(check bool) "mean" true (abs_float (mean -. 3.0) < 0.05);
  Alcotest.(check bool) "stddev" true (abs_float (sd -. 2.0) < 0.05)

let test_gamma_moments () =
  (* Gamma(k, θ): mean kθ, var kθ². *)
  let mean, sd = sample_stats (fun rng -> Dist.gamma rng ~shape:4.0 ~scale:0.5) 200_000 in
  Alcotest.(check bool) "mean near 2" true (abs_float (mean -. 2.0) < 0.05);
  Alcotest.(check bool) "sd near 1" true (abs_float (sd -. 1.0) < 0.05)

let test_gamma_small_shape () =
  let mean, _ = sample_stats (fun rng -> Dist.gamma rng ~shape:0.3 ~scale:1.0) 200_000 in
  Alcotest.(check bool) "mean near 0.3" true (abs_float (mean -. 0.3) < 0.02)

let test_beta_moments () =
  (* Beta(3,1): mean 3/4. *)
  let mean, _ = sample_stats (fun rng -> Dist.beta rng ~alpha:3.0 ~beta:1.0) 200_000 in
  Alcotest.(check bool) "mean near 0.75" true (abs_float (mean -. 0.75) < 0.01)

let test_beta_support () =
  let rng = Rng.create 77 in
  for _ = 1 to 10_000 do
    let v = Dist.beta rng ~alpha:0.5 ~beta:0.5 in
    assert (v > 0.0 && v < 1.0)
  done

let test_beta_pdf_integrates () =
  (* Trapezoidal integral of the Beta(2,10) density should be ~1. *)
  let n = 20_000 in
  let acc = ref 0.0 in
  for i = 1 to n - 1 do
    let x = float_of_int i /. float_of_int n in
    acc := !acc +. Dist.beta_pdf ~alpha:2.0 ~beta:10.0 x
  done;
  let integral = !acc /. float_of_int n in
  Alcotest.(check bool) "integrates to 1" true (abs_float (integral -. 1.0) < 0.01)

let test_beta_pdf_uniform_case () =
  check_float "Beta(1,1) is uniform" 1.0 (Dist.beta_pdf ~alpha:1.0 ~beta:1.0 0.42)

let test_zipf_skew () =
  let rng = Rng.create 13 in
  let z = Dist.zipf_make ~n:100 ~z:1.0 in
  let counts = Array.make 101 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let r = Dist.zipf_draw rng z in
    assert (r >= 1 && r <= 100);
    counts.(r) <- counts.(r) + 1
  done;
  (* P(rank 1) / P(rank 2) should be close to 2 for z = 1. *)
  let ratio = float_of_int counts.(1) /. float_of_int counts.(2) in
  Alcotest.(check bool) "zipf ratio" true (abs_float (ratio -. 2.0) < 0.25)

let test_zipf_uniform_when_z0 () =
  let rng = Rng.create 14 in
  let z = Dist.zipf_make ~n:10 ~z:0.0 in
  let counts = Array.make 11 0 in
  for _ = 1 to 50_000 do
    counts.(Dist.zipf_draw rng z) <- counts.(Dist.zipf_draw rng z) + 1
  done;
  let mn = Array.fold_left min max_int (Array.sub counts 1 10) in
  let mx = Array.fold_left max 0 (Array.sub counts 1 10) in
  Alcotest.(check bool) "roughly uniform" true
    (float_of_int mx /. float_of_int (max 1 mn) < 1.3)

let test_categorical () =
  let rng = Rng.create 15 in
  let counts = Array.make 3 0 in
  for _ = 1 to 30_000 do
    let i = Dist.categorical rng [| 1.0; 2.0; 7.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "index 2 dominates" true
    (counts.(2) > counts.(1) && counts.(1) > counts.(0))

let test_median_odd () = check_float "median" 2.0 (Dist.median [| 3.0; 1.0; 2.0 |])

let test_median_even () =
  check_float "median" 2.5 (Dist.median [| 4.0; 1.0; 2.0; 3.0 |])

let test_percentile () =
  let a = Array.init 100 (fun i -> float_of_int (i + 1)) in
  check_float "p50" 50.0 (Dist.percentile a 50.0);
  check_float "p90" 90.0 (Dist.percentile a 90.0);
  check_float "p100" 100.0 (Dist.percentile a 100.0)

(* --- Hashing --- *)

let test_hash_string_stable () =
  Alcotest.(check int64) "stable" (Hashing.string "monsoon") (Hashing.string "monsoon")

let test_hash_string_spread () =
  let seen = Hashtbl.create 1024 in
  for i = 0 to 9_999 do
    Hashtbl.replace seen (Hashing.string (string_of_int i)) ()
  done;
  Alcotest.(check int) "no collisions on 10k" 10_000 (Hashtbl.length seen)

let test_hash_combine_order () =
  let a = Hashing.int 1 and b = Hashing.int 2 in
  Alcotest.(check bool) "order matters" true
    (Hashing.combine a b <> Hashing.combine b a)

(* --- qcheck properties --- *)

let prop_percentile_bounds =
  QCheck.Test.make ~name:"percentile within min/max" ~count:200
    QCheck.(pair (array_of_size Gen.(int_range 1 50) (float_range (-1000.) 1000.)) (float_range 0. 100.))
    (fun (a, p) ->
      QCheck.assume (Array.length a > 0);
      let v = Dist.percentile a p in
      let mn = Array.fold_left min infinity a in
      let mx = Array.fold_left max neg_infinity a in
      v >= mn && v <= mx)

let prop_zipf_in_range =
  QCheck.Test.make ~name:"zipf draws in [1,n]" ~count:100
    QCheck.(pair (int_range 1 500) (float_range 0.0 4.0))
    (fun (n, z) ->
      let rng = Rng.create (n + int_of_float (z *. 1000.)) in
      let d = Dist.zipf_make ~n ~z in
      let ok = ref true in
      for _ = 1 to 100 do
        let v = Dist.zipf_draw rng d in
        if v < 1 || v > n then ok := false
      done;
      !ok)

let prop_beta_in_unit =
  QCheck.Test.make ~name:"beta samples in (0,1)" ~count:100
    QCheck.(pair (float_range 0.1 10.0) (float_range 0.1 10.0))
    (fun (alpha, beta) ->
      let rng = Rng.create 99 in
      let ok = ref true in
      for _ = 1 to 50 do
        let v = Dist.beta rng ~alpha ~beta in
        if not (v > 0.0 && v < 1.0) then ok := false
      done;
      !ok)

let () =
  let qc = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "util"
    [ ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "int_in inclusive" `Quick test_rng_int_in;
          Alcotest.test_case "unit_float mean" `Quick test_rng_unit_float;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation ] );
      ( "dist",
        [ Alcotest.test_case "normal moments" `Quick test_normal_moments;
          Alcotest.test_case "gamma moments" `Quick test_gamma_moments;
          Alcotest.test_case "gamma small shape" `Quick test_gamma_small_shape;
          Alcotest.test_case "beta moments" `Quick test_beta_moments;
          Alcotest.test_case "beta support" `Quick test_beta_support;
          Alcotest.test_case "beta pdf integrates" `Quick test_beta_pdf_integrates;
          Alcotest.test_case "beta pdf uniform" `Quick test_beta_pdf_uniform_case;
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
          Alcotest.test_case "zipf z=0 uniform" `Quick test_zipf_uniform_when_z0;
          Alcotest.test_case "categorical" `Quick test_categorical;
          Alcotest.test_case "median odd" `Quick test_median_odd;
          Alcotest.test_case "median even" `Quick test_median_even;
          Alcotest.test_case "percentile" `Quick test_percentile ] );
      ( "hashing",
        [ Alcotest.test_case "string stable" `Quick test_hash_string_stable;
          Alcotest.test_case "string spread" `Quick test_hash_string_spread;
          Alcotest.test_case "combine order" `Quick test_hash_combine_order ] );
      ( "properties",
        qc [ prop_percentile_bounds; prop_zipf_in_range; prop_beta_in_unit ] ) ]
