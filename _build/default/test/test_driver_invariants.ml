(* Deeper invariants of the Monsoon MDP and driver: termination of random
   walks, monotone growth of knowledge, budget conservation, and the
   duplicate-mask regression (a plan whose result already exists must never
   be offered, and executed masks must always carry result counts). *)

open Monsoon_util
open Monsoon_relalg
open Monsoon_stats
open Monsoon_core
open Monsoon_workloads

let tpch_ctx seed =
  let w = Tpch.workload { Tpch.seed; scale = 0.05; skew = Tpch.Plain } in
  let q = Workload.find_query w "tq6" in
  (* 7 instances *)
  (w, q, Mdp.make_ctx w.Workload.catalog q)

(* Walk the simulated MDP with random legal actions; check invariants at
   every step. *)
let random_walk ~seed ~prior ~steps =
  let _, q, ctx = tpch_ctx 3 in
  let sim = Simulator.create ctx prior (Rng.create seed) in
  let rng = Rng.create (seed * 7) in
  let violations = ref [] in
  let check state =
    (* Every non-singleton mask in R_e must have a result count. *)
    List.iter
      (fun m ->
        if Relset.cardinal m > 1 && Stats_catalog.count state.Mdp.stats m = None
        then violations := Printf.sprintf "mask %d lacks a count" m :: !violations)
      state.Mdp.r_e;
    (* Every plan leaf must reference a materialized mask. *)
    List.iter
      (fun e ->
        List.iter
          (fun leaf ->
            if not (List.mem leaf state.Mdp.r_e) then
              violations :=
                Printf.sprintf "plan leaf %d not in R_e" leaf :: !violations)
          (Expr.leaves e))
      state.Mdp.r_p
  in
  let episodes = ref 0 in
  let state = ref (Mdp.init_state ctx) in
  for _ = 1 to steps do
    if Mdp.is_terminal ctx !state then begin
      incr episodes;
      state := Mdp.init_state ctx
    end
    else begin
      let acts = Mdp.legal_actions ctx !state in
      if acts = [] then
        violations := "non-terminal state with no actions" :: !violations
      else begin
        let a = List.nth acts (Rng.int rng (List.length acts)) in
        let s', reward = Simulator.step sim !state a in
        if reward > 0.0 then violations := "positive reward" :: !violations;
        check s';
        state := s'
      end
    end
  done;
  (!violations, !episodes, Query.n_rels q)

let test_random_walk_invariants () =
  let violations, episodes, _ =
    random_walk ~seed:11 ~prior:Prior.spike_and_slab ~steps:3000
  in
  Alcotest.(check (list string)) "no violations" [] violations;
  Alcotest.(check bool) "terminates repeatedly" true (episodes > 3)

let test_random_walk_all_priors () =
  List.iter
    (fun prior ->
      let violations, _, _ = random_walk ~seed:5 ~prior ~steps:800 in
      Alcotest.(check (list string)) (Prior.name prior ^ " clean") [] violations)
    Prior.all

(* The regression: two overlapping plans in R_p used to leave phantom masks
   in R_e without counts. Construct the exact shape and check legality now
   prevents the duplicate plan. *)
let test_duplicate_mask_plan_suppressed () =
  let _, _, ctx = tpch_ctx 3 in
  let s0 = Mdp.init_state ctx in
  (* Plan A = 0 ⨝ 1 (if connected); then try to create a second plan with
     the same mask through a different route. *)
  let acts = Mdp.legal_actions ctx s0 in
  let join_act =
    List.find_map
      (function Mdp.Join_exec (a, b) -> Some (a, b) | _ -> None)
      acts
  in
  match join_act with
  | None -> Alcotest.fail "no join action at init"
  | Some (a, b) ->
    let s1 = Mdp.apply_plan_edit s0 (Mdp.Join_exec (a, b)) in
    let acts1 = Mdp.legal_actions ctx s1 in
    Alcotest.(check bool) "identical join not offered again" false
      (List.mem (Mdp.Join_exec (a, b)) acts1);
    (* No Join_mixed may produce a mask equal to an existing plan's mask. *)
    List.iter
      (function
        | Mdp.Join_mixed (m, e) ->
          let union = Relset.union m (Expr.mask e) in
          Alcotest.(check bool) "mixed join does not duplicate" false
            (List.exists
               (fun e' ->
                 (not (Expr.equal e e')) && Relset.equal (Expr.mask e') union)
               s1.Mdp.r_p)
        | _ -> ())
      acts1

(* Driver end-to-end across several seeds: knowledge grows, budget is
   respected, final result matches ground truth. *)
let test_driver_many_seeds () =
  let w = Tpch.workload { Tpch.seed = 7; scale = 0.03; skew = Tpch.Plain } in
  let q = Workload.find_query w "tq1" in
  (* Ground truth once, via the full-statistics baseline. *)
  let pg =
    Monsoon_baselines.Strategy.postgres.Monsoon_baselines.Strategy.run
      ~rng:(Rng.create 1) ~budget:1e9 w.Workload.catalog q
  in
  List.iter
    (fun seed ->
      let config =
        { (Driver.default_config ~rng:(Rng.create seed)) with
          Driver.budget = 1e8;
          mcts =
            { (Monsoon_mcts.Mcts.default_config ~rng:(Rng.create seed)) with
              Monsoon_mcts.Mcts.iterations = 150 } }
      in
      let out = Driver.run config w.Workload.catalog q in
      Alcotest.(check bool) "completes" false out.Driver.timed_out;
      Alcotest.(check (float 0.5))
        (Printf.sprintf "seed %d correct result" seed)
        pg.Monsoon_baselines.Strategy.result_card out.Driver.result_card)
    [ 1; 2; 3; 4; 5 ]

(* Σ decisions must pay off on the paper's Sec 2.3 setup — d(F1,R) and
   d(F3,R) known, two-point uncertainty on d(F2,S) and d(F4,T): over the
   four scenarios, Monsoon's total cost must beat the worst fixed plan's
   total. *)
let test_multi_step_beats_worst_fixed_plan () =
  let q = Fixtures.sec23_query () in
  let two_point =
    Prior.custom ~name:"two-point"
      ~sample:(fun rng ~c_own ~c_partner:_ ->
        if Rng.bool rng then 1.0 else Float.min 50.0 c_own)
      ()
  in
  let point v = Prior.custom ~name:"pt" ~sample:(fun _ ~c_own:_ ~c_partner:_ -> v) () in
  let totals = ref (0.0, 0.0, 0.0) in
  List.iter
    (fun (d_s, d_t) ->
      let rng = Rng.create (d_s + (97 * d_t)) in
      let cat = Fixtures.sec23_catalog rng ~scale:200 ~d_s ~d_t in
      let config =
        { (Driver.default_config ~rng:(Rng.create 4)) with
          Driver.budget = 1e9;
          known_distincts = [ (0, 5.0); (2, 5.0) ];
          prior_of =
            Some (function 1 | 3 -> two_point | _ -> point 5.0);
          mcts =
            { (Monsoon_mcts.Mcts.default_config ~rng:(Rng.create 4)) with
              Monsoon_mcts.Mcts.iterations = 2000 } }
      in
      let monsoon = (Driver.run config cat q).Driver.cost in
      let fixed plan =
        let exec = Monsoon_exec.Executor.create cat q (Monsoon_exec.Executor.budget 1e9) in
        fst (Monsoon_exec.Executor.execute exec plan)
      in
      let rs_t = fixed (Expr.join (Expr.join (Expr.base 0) (Expr.base 1)) (Expr.base 2)) in
      let rt_s = fixed (Expr.join (Expr.join (Expr.base 0) (Expr.base 2)) (Expr.base 1)) in
      let m, a, b = !totals in
      totals := (m +. monsoon, a +. rs_t, b +. rt_s))
    [ (1, 1); (1, 50); (50, 1); (50, 50) ];
  let monsoon_total, rs_t_total, rt_s_total = !totals in
  Alcotest.(check bool) "beats the worst fixed order" true
    (monsoon_total < Float.max rs_t_total rt_s_total)

let () =
  Alcotest.run "driver-invariants"
    [ ( "mdp walks",
        [ Alcotest.test_case "invariants hold" `Quick test_random_walk_invariants;
          Alcotest.test_case "all priors" `Quick test_random_walk_all_priors;
          Alcotest.test_case "duplicate masks suppressed" `Quick test_duplicate_mask_plan_suppressed ] );
      ( "driver",
        [ Alcotest.test_case "many seeds" `Quick test_driver_many_seeds;
          Alcotest.test_case "multi-step beats worst fixed" `Slow test_multi_step_beats_worst_fixed_plan ] ) ]
