(* Shared fixtures: the paper's Section 2.3 query, small synthetic data with
   controllable distinct counts, and a nested-loop join oracle. *)

open Monsoon_util
open Monsoon_storage
open Monsoon_relalg

let int_schema cols =
  Schema.make (List.map (fun name -> { Schema.name; ty = Value.TInt }) cols)

(* A table of [n] rows where column [col_i] takes values uniform in
   [0, distinct_i). *)
let make_table rng ~name ~cols n =
  let schema = int_schema (List.map fst cols) in
  let ds = Array.of_list (List.map snd cols) in
  let rows =
    Array.init n (fun _ ->
        Array.map (fun d -> Value.Int (Rng.int rng d)) ds)
  in
  Table.of_row_array ~name schema rows

(* The Sec 2.3 query: SELECT ... FROM R, S, T
   WHERE F1(R.a) = F2(S.b) AND F3(R.c) = F4(T.d).
   All four "UDFs" are identity projections — genuinely opaque to the
   optimizer. Term ids: F1 = 0, F2 = 1, F3 = 2, F4 = 3. *)
let sec23_query () =
  let b = Query.Builder.create ~name:"sec2.3" in
  let r = Query.Builder.rel b ~table:"R" ~alias:"R" in
  let s = Query.Builder.rel b ~table:"S" ~alias:"S" in
  let t = Query.Builder.rel b ~table:"T" ~alias:"T" in
  let f1 = Query.Builder.term b (Udf.identity "a") [ (r, "a") ] in
  let f2 = Query.Builder.term b (Udf.identity "b") [ (s, "b") ] in
  let f3 = Query.Builder.term b (Udf.identity "c") [ (r, "c") ] in
  let f4 = Query.Builder.term b (Udf.identity "d") [ (t, "d") ] in
  Query.Builder.join_pred b f1 f2;
  Query.Builder.join_pred b f3 f4;
  Query.Builder.build b

(* Data realizing one Table-1 scenario, scaled down by [scale] (paper scale:
   c(R)=10^6, c(S)=c(T)=10^4, d(F1,R)=d(F3,R)=10^3, d(F2,S), d(F4,T) ∈
   {1, 10^4}). *)
let sec23_catalog rng ~scale ~d_s ~d_t =
  let c_r = max 1 (1_000_000 / scale) and c_st = max 1 (10_000 / scale) in
  let d_r = max 1 (1_000 / scale) in
  let cat = Catalog.create () in
  Catalog.add cat
    (make_table rng ~name:"R" ~cols:[ ("a", d_r); ("c", d_r) ] c_r);
  Catalog.add cat (make_table rng ~name:"S" ~cols:[ ("b", max 1 d_s) ] c_st);
  Catalog.add cat (make_table rng ~name:"T" ~cols:[ ("d", max 1 d_t) ] c_st);
  cat

(* Cost-model environment with fixed statistics: term id -> d. *)
let fixed_env ~raw ~d =
  { Cost_model.count_of = (fun _ -> None);
    raw_count = (fun i -> raw.(i));
    distinct_of = (fun ~term ~pred:_ ~c_own:_ ~c_partner:_ -> d term.Term.id);
    record_count = (fun _ _ -> ()) }

(* Brute-force evaluation of a query: nested loops over all instances,
   checking every predicate — the ground-truth result cardinality. *)
let brute_force_count catalog q =
  let n = Query.n_rels q in
  let tables =
    Array.init n (fun i ->
        Table.rows (Catalog.find catalog (Query.rel_by_id q i).Query.table))
  in
  (* Combined layout: concatenate in instance order. *)
  let offsets = Array.make n 0 in
  let width = ref 0 in
  Array.iteri
    (fun i rows ->
      offsets.(i) <- !width;
      width := !width + Array.length rows.(0))
    tables;
  let checkers =
    Array.to_list (Query.preds q)
    |> List.map (fun p ->
           let compile tm =
             Term.compile tm ~col_index:(fun ~rel ~col ->
                 let table =
                   Catalog.find catalog (Query.rel_by_id q rel).Query.table
                 in
                 offsets.(rel) + Schema.index_of (Table.schema table) col)
           in
           match p with
           | Predicate.Join { left; right; _ } ->
             let l = compile left and r = compile right in
             fun row -> Value.equal (l row) (r row)
           | Predicate.Select { term; value; _ } ->
             let tv = compile term in
             fun row -> Value.equal (tv row) value)
  in
  let count = ref 0 in
  let row = Array.make !width Value.Null in
  let rec go i =
    if i = n then begin
      if List.for_all (fun c -> c row) checkers then incr count
    end
    else
      Array.iter
        (fun r ->
          Array.blit r 0 row offsets.(i) (Array.length r);
          go (i + 1))
        tables.(i)
  in
  go 0;
  !count
