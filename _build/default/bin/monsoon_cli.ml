(* Command-line front end: list and run the paper's experiments, or run a
   single strategy against a single query for exploration. *)

open Cmdliner
open Monsoon_harness

let profile_of_flag quick_flag =
  if quick_flag then Experiments.quick else Experiments.full

let list_cmd =
  let doc = "List the available experiments." in
  let run () =
    List.iter
      (fun (id, descr, _) -> Printf.printf "%-20s %s\n" id descr)
      Experiments.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let quick_flag =
  Arg.(value & flag & info [ "quick" ] ~doc:"Use the quick (smoke-test) profile.")

let experiment_cmd =
  let doc = "Run one experiment (see `list')." in
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"EXPERIMENT")
  in
  let run quick id =
    match List.find_opt (fun (eid, _, _) -> eid = id) Experiments.all with
    | None ->
      Printf.eprintf "unknown experiment %s (try `list')\n" id;
      exit 1
    | Some (_, _, f) ->
      let profile = profile_of_flag quick in
      print_string (f profile);
      print_newline ()
  in
  Cmd.v (Cmd.info "experiment" ~doc) Term.(const run $ quick_flag $ id_arg)

let all_cmd =
  let doc = "Run every experiment in paper order." in
  let run quick =
    let profile = profile_of_flag quick in
    List.iter
      (fun (id, _, f) ->
        Printf.printf "=== %s ===\n%s\n%!" id (f profile))
      Experiments.all
  in
  Cmd.v (Cmd.info "all" ~doc) Term.(const run $ quick_flag)

let demo_cmd =
  let doc =
    "Walk through the paper's Sec 2.3 example: the MDP, the chosen actions, \
     and the resulting execution."
  in
  let run () =
    print_string (Experiments.table1 ());
    print_newline ();
    print_string (Experiments.figure1 ())
  in
  Cmd.v (Cmd.info "demo" ~doc) Term.(const run $ const ())

let main =
  let doc = "Monsoon: multi-step optimization and execution (SIGMOD 2020 reproduction)" in
  Cmd.group (Cmd.info "monsoon" ~doc) [ list_cmd; experiment_cmd; all_cmd; demo_cmd ]

let () = exit (Cmd.eval main)
