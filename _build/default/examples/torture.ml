(* A miniature Optimizer Torture Test (Wu et al.; paper Table 6).

   Every OTT query's result is provably empty, but the correlated column
   pairs fool independence-assuming estimators, and careless join orders
   generate enormous intermediates. This example runs one torture query
   under the hand-written expert plan, Monsoon, Defaults, and Greedy,
   showing who stays cheap and who burns the budget.

   Run with: dune exec examples/torture.exe *)

open Monsoon_util
open Monsoon_stats
open Monsoon_baselines
open Monsoon_workloads

let () =
  let cfg = { Ott.seed = 99; scale = 0.3; domain = 100 } in
  let w = Ott.workload cfg in
  let budget = 1e6 in
  let qname = "oq15" in
  let q = Workload.find_query w qname in
  Printf.printf "OTT query %s (%d instances, empty result, budget %.0f):\n\n"
    qname (Monsoon_relalg.Query.n_rels q) budget;
  let strategies =
    [ Strategy.fixed_plan ~name:"Hand-written" (fun q -> Ott.hand_written qname q);
      Strategy.monsoon ~iterations:1000 Prior.spike_and_slab;
      Strategy.defaults;
      Strategy.greedy;
      Strategy.skinner ]
  in
  List.iter
    (fun (s : Strategy.t) ->
      let out = s.Strategy.run ~rng:(Rng.create 21) ~budget w.Workload.catalog q in
      Printf.printf "%-13s %s\n" s.Strategy.name
        (if out.Strategy.timed_out then "TIMEOUT (budget exhausted)"
         else Printf.sprintf "cost %-9.0f result %.0f" out.Strategy.cost out.Strategy.result_card))
    strategies
