(* Quickstart: the smallest end-to-end Monsoon program.

   We build a three-table database, write a query whose join keys are
   opaque UDFs (so no statistics exist), and let the Monsoon optimizer
   interleave planning, statistics collection, and execution.

   Run with: dune exec examples/quickstart.exe *)

open Monsoon_util
open Monsoon_storage
open Monsoon_relalg
open Monsoon_core

let () =
  let rng = Rng.create 2020 in

  (* 1. A catalog of base tables. *)
  let catalog = Catalog.create () in
  let int_table name cols n gen =
    let schema =
      Schema.make (List.map (fun c -> { Schema.name = c; ty = Value.TInt }) cols)
    in
    Catalog.add catalog (Table.of_row_array ~name schema (Array.init n gen))
  in
  (* users(uid, region): 5 000 users in 40 regions. *)
  int_table "users" [ "uid"; "region" ] 5_000 (fun i ->
      [| Value.Int i; Value.Int (Rng.int rng 40) |]);
  (* events(uid, kind): 20 000 events, heavily concentrated on few kinds. *)
  int_table "events" [ "uid"; "kind" ] 20_000 (fun _ ->
      [| Value.Int (Rng.int rng 5_000); Value.Int (Rng.int rng 8) |]);
  (* regions(rid): tiny dimension table. *)
  int_table "regions" [ "rid" ] 40 (fun i -> [| Value.Int i |]);

  (* 2. A query. The UDF [bucket] is a black box to the optimizer: it has
     no idea how many distinct values it produces. *)
  let bucket =
    Udf.make "bucket" (function
      | [| Value.Int uid |] -> Value.Int (uid mod 1_000)
      | _ -> Value.Null)
  in
  let b = Query.Builder.create ~name:"quickstart" in
  let u = Query.Builder.rel b ~table:"users" ~alias:"u" in
  let e = Query.Builder.rel b ~table:"events" ~alias:"e" in
  let r = Query.Builder.rel b ~table:"regions" ~alias:"r" in
  let t_u = Query.Builder.term b (Udf.identity "uid") [ (u, "uid") ] in
  let t_e = Query.Builder.term b bucket [ (e, "uid") ] in
  let t_ur = Query.Builder.term b (Udf.identity "region") [ (u, "region") ] in
  let t_r = Query.Builder.term b (Udf.identity "rid") [ (r, "rid") ] in
  Query.Builder.join_pred b t_u t_e;        (* u.uid = bucket(e.uid) *)
  Query.Builder.join_pred b t_ur t_r;       (* u.region = r.rid *)
  Query.Builder.select_pred b
    (Query.Builder.term b (Udf.identity "kind") [ (e, "kind") ])
    (Value.Int 3);
  let query = Query.Builder.build b in

  (* 3. Run the Monsoon optimizer. *)
  let config = Driver.default_config ~rng:(Rng.create 7) in
  let outcome = Driver.run config catalog query in

  Printf.printf "result cardinality : %.0f\n" outcome.Driver.result_card;
  Printf.printf "intermediate objects: %.0f (Σ passes: %.0f)\n"
    outcome.Driver.cost outcome.Driver.stats_cost;
  Printf.printf "EXECUTE steps      : %d\n" outcome.Driver.executes;
  Printf.printf "planning time      : %.3fs\n" outcome.Driver.mcts_time;
  print_endline "action trace:";
  List.iter (fun a -> Printf.printf "  %s\n" a) outcome.Driver.actions
