(* The paper's Sec 2.2 motivating scenario: find potentially fraudulent
   pairs of identical orders placed on one day by customers who logged in
   from the same city.

       SELECT c1.name, c2.name
       FROM   order o1, order o2, sess s1, sess s2
       WHERE  Intersection(o1.items, o2.items) = Union(o1.items, o2.items)
         AND  ExtractDate(o1.when) = '1/11/19'
         AND  ExtractDate(o2.when) = '1/11/19'
         AND  o1.cID = s1.cID AND o2.cID = s2.cID
         AND  City(s1.ipAdd) = City(s2.ipAdd)

   The item-set equality, the date extraction, and the city lookup are all
   opaque UDFs over strings: no statistics exist for any predicate. (The
   paper's o1.cID <> o2.cID inequality is a trivial post-filter and is
   omitted — it does not interact with join ordering.)

   Run with: dune exec examples/fraud_detection.exe *)

open Monsoon_util
open Monsoon_storage
open Monsoon_relalg
open Monsoon_stats
open Monsoon_baselines

let item_pool = [| "hat"; "mug"; "pen"; "fan"; "bag"; "cap"; "toy"; "kit" |]

(* The items column is a "|"-separated bag in arbitrary order; the UDF below
   canonicalizes it — exactly the sort of set comparison the paper's
   Intersection = Union trick expresses. *)
let random_items rng =
  let k = 1 + Rng.int rng 3 in
  let picks = List.init k (fun _ -> item_pool.(Rng.int rng (Array.length item_pool))) in
  String.concat "|" picks

let canonical_items =
  Udf.make "CanonicalItems" (function
    | [| Value.Str s |] ->
      Value.Str
        (String.concat "|"
           (List.sort_uniq compare (String.split_on_char '|' s)))
    | _ -> Value.Null)

let extract_date =
  (* "d=20190111;t=0934" -> 20190111 *)
  Udf.make "ExtractDate" (function
    | [| Value.Str s |] -> (
      match String.index_opt s '=' with
      | Some i -> Value.Int (int_of_string (String.sub s (i + 1) 8))
      | None -> Value.Null)
    | _ -> Value.Null)

let city =
  (* "c17.s3.h99" -> "c17": sessions in the same /16 share a city. *)
  Udf.make "City" (function
    | [| Value.Str s |] -> (
      match String.index_opt s '.' with
      | Some i -> Value.Str (String.sub s 0 i)
      | None -> Value.Null)
    | _ -> Value.Null)

let build_catalog rng =
  let catalog = Catalog.create () in
  let n_customers = 300 in
  let orders_schema =
    Schema.make
      [ { Schema.name = "cID"; ty = Value.TInt };
        { Schema.name = "when_"; ty = Value.TStr };
        { Schema.name = "items"; ty = Value.TStr } ]
  in
  let orders =
    Array.init 2_000 (fun _ ->
        let day = 20190101 + Rng.int rng 20 in
        [| Value.Int (Rng.int rng n_customers);
           Value.Str (Printf.sprintf "d=%d;t=%04d" day (Rng.int rng 2400));
           Value.Str (random_items rng) |])
  in
  Catalog.add catalog (Table.of_row_array ~name:"orders" orders_schema orders);
  let sess_schema =
    Schema.make
      [ { Schema.name = "cID"; ty = Value.TInt };
        { Schema.name = "ipAdd"; ty = Value.TStr } ]
  in
  let sessions =
    Array.init 1_200 (fun _ ->
        [| Value.Int (Rng.int rng n_customers);
           Value.Str
             (Printf.sprintf "c%d.s%d.h%d" (Rng.int rng 25) (Rng.int rng 50)
                (Rng.int rng 250)) |])
  in
  Catalog.add catalog (Table.of_row_array ~name:"sess" sess_schema sessions);
  catalog

let build_query () =
  let b = Query.Builder.create ~name:"fraud" in
  let o1 = Query.Builder.rel b ~table:"orders" ~alias:"o1" in
  let o2 = Query.Builder.rel b ~table:"orders" ~alias:"o2" in
  let s1 = Query.Builder.rel b ~table:"sess" ~alias:"s1" in
  let s2 = Query.Builder.rel b ~table:"sess" ~alias:"s2" in
  Query.Builder.join_pred b
    (Query.Builder.term b canonical_items [ (o1, "items") ])
    (Query.Builder.term b canonical_items [ (o2, "items") ]);
  Query.Builder.select_pred b
    (Query.Builder.term b extract_date [ (o1, "when_") ])
    (Value.Int 20190111);
  Query.Builder.select_pred b
    (Query.Builder.term b extract_date [ (o2, "when_") ])
    (Value.Int 20190111);
  Query.Builder.join_pred b
    (Query.Builder.term b (Udf.identity "cID") [ (o1, "cID") ])
    (Query.Builder.term b (Udf.identity "cID") [ (s1, "cID") ]);
  Query.Builder.join_pred b
    (Query.Builder.term b (Udf.identity "cID") [ (o2, "cID") ])
    (Query.Builder.term b (Udf.identity "cID") [ (s2, "cID") ]);
  Query.Builder.join_pred b
    (Query.Builder.term b city [ (s1, "ipAdd") ])
    (Query.Builder.term b city [ (s2, "ipAdd") ]);
  Query.Builder.build b

let () =
  let catalog = build_catalog (Rng.create 1911) in
  let query = build_query () in
  let budget = 5e7 in
  let run (s : Strategy.t) =
    let out = s.Strategy.run ~rng:(Rng.create 3) ~budget catalog query in
    Printf.printf "%-10s cost %-10s result %-6.0f %s\n" s.Strategy.name
      (if out.Strategy.timed_out then "TIMEOUT" else Printf.sprintf "%.0f" out.Strategy.cost)
      out.Strategy.result_card
      (if String.length out.Strategy.plan > 100 then
         String.sub out.Strategy.plan 0 100 ^ "…"
       else out.Strategy.plan)
  in
  print_endline "Fraud-detection query (4 instances, every predicate obscured by UDFs):";
  List.iter run
    [ Strategy.monsoon ~iterations:1500 Prior.spike_and_slab;
      Strategy.greedy;
      Strategy.defaults;
      Strategy.sampling ]
