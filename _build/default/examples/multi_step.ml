(* The Sec 2.3 walkthrough on real data.

   R (1M-scaled down), S and T (10k-scaled down); F1(R)=F2(S) and
   F3(R)=F4(T). Depending on the data, d(F2,S) and d(F4,T) are each either
   1 or "large" — the four scenarios of the paper's Table 1. A fixed join
   order is right in three scenarios and 10x wrong in one; collecting
   statistics on S (or T) first identifies the optimal order every time.

   This example runs the real Monsoon driver on all four scenarios and
   prints what it chose to do. Run with: dune exec examples/multi_step.exe *)

open Monsoon_util
open Monsoon_storage
open Monsoon_relalg
open Monsoon_core

let scale = 100 (* divide the paper's table sizes by this *)

let build_catalog rng ~d_s ~d_t =
  let catalog = Catalog.create () in
  let table name cols n ds =
    let schema =
      Schema.make (List.map (fun c -> { Schema.name = c; ty = Value.TInt }) cols)
    in
    let rows =
      Array.init n (fun _ ->
          Array.of_list (List.map (fun d -> Value.Int (Rng.int rng d)) ds))
    in
    Catalog.add catalog (Table.of_row_array ~name schema rows)
  in
  let d_r = 1_000 / scale in
  table "R" [ "a"; "c" ] (1_000_000 / scale) [ d_r; d_r ];
  table "S" [ "b" ] (10_000 / scale) [ max 1 d_s ];
  table "T" [ "d" ] (10_000 / scale) [ max 1 d_t ];
  catalog

let build_query () =
  let b = Query.Builder.create ~name:"sec2.3" in
  let r = Query.Builder.rel b ~table:"R" ~alias:"R" in
  let s = Query.Builder.rel b ~table:"S" ~alias:"S" in
  let t = Query.Builder.rel b ~table:"T" ~alias:"T" in
  let f1 = Query.Builder.term b (Udf.identity "a") [ (r, "a") ] in
  let f2 = Query.Builder.term b (Udf.identity "b") [ (s, "b") ] in
  let f3 = Query.Builder.term b (Udf.identity "c") [ (r, "c") ] in
  let f4 = Query.Builder.term b (Udf.identity "d") [ (t, "d") ] in
  Query.Builder.join_pred b f1 f2;
  Query.Builder.join_pred b f3 f4;
  Query.Builder.build b

let () =
  let query = build_query () in
  let scenarios =
    [ (1, 1); (1, 10_000 / scale); (10_000 / scale, 1);
      (10_000 / scale, 10_000 / scale) ]
  in
  List.iter
    (fun (d_s, d_t) ->
      let catalog = build_catalog (Rng.create (d_s + (31 * d_t))) ~d_s ~d_t in
      let config =
        { (Driver.default_config ~rng:(Rng.create 5)) with
          Driver.budget = 1e9;
          mcts =
            { (Monsoon_mcts.Mcts.default_config ~rng:(Rng.create 5)) with
              Monsoon_mcts.Mcts.iterations = 3000 } }
      in
      let out = Driver.run config catalog query in
      Printf.printf "scenario d(F2,S)=%-4d d(F4,T)=%-4d -> cost %-8.0f (Σ %.0f) result %.0f\n"
        d_s d_t out.Driver.cost out.Driver.stats_cost out.Driver.result_card;
      List.iter (fun a -> Printf.printf "    %s\n" a) out.Driver.actions)
    scenarios
