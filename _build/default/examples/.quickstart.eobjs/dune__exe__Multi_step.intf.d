examples/multi_step.mli:
