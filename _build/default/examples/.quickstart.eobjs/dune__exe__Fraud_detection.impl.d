examples/fraud_detection.ml: Array Catalog List Monsoon_baselines Monsoon_relalg Monsoon_stats Monsoon_storage Monsoon_util Printf Prior Query Rng Schema Strategy String Table Udf Value
