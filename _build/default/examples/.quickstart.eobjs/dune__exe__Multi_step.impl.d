examples/multi_step.ml: Array Catalog Driver List Monsoon_core Monsoon_mcts Monsoon_relalg Monsoon_storage Monsoon_util Printf Query Rng Schema Table Udf Value
