examples/torture.ml: List Monsoon_baselines Monsoon_relalg Monsoon_stats Monsoon_util Monsoon_workloads Ott Printf Prior Rng Strategy Workload
