examples/torture.mli:
