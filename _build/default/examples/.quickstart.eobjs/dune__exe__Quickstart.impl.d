examples/quickstart.ml: Array Catalog Driver List Monsoon_core Monsoon_relalg Monsoon_storage Monsoon_util Printf Query Rng Schema Table Udf Value
