examples/quickstart.mli:
