(* The benchmark harness.

   Two parts:
   1. Bechamel micro-benchmarks — one [Test.make] per paper table/figure,
      timing the computational kernel that dominates that experiment.
   2. The experiment reproductions themselves: every table and figure of the
      paper regenerated end-to-end via {!Monsoon_harness.Experiments} and
      printed. Set MONSOON_PROFILE=quick for a fast smoke run; the default
      profile is the full reproduction. *)

open Bechamel
open Monsoon_util
open Monsoon_relalg
open Monsoon_stats
open Monsoon_core
open Monsoon_baselines
open Monsoon_workloads
open Monsoon_harness
open Monsoon_telemetry

(* --- Shared fixtures for the micro-kernels (built once) --- *)

let sec23_query () =
  let b = Query.Builder.create ~name:"sec2.3" in
  let r = Query.Builder.rel b ~table:"R" ~alias:"R" in
  let s = Query.Builder.rel b ~table:"S" ~alias:"S" in
  let t = Query.Builder.rel b ~table:"T" ~alias:"T" in
  let f1 = Query.Builder.term b (Udf.identity "a") [ (r, "a") ] in
  let f2 = Query.Builder.term b (Udf.identity "b") [ (s, "b") ] in
  let f3 = Query.Builder.term b (Udf.identity "c") [ (r, "c") ] in
  let f4 = Query.Builder.term b (Udf.identity "d") [ (t, "d") ] in
  Query.Builder.join_pred b f1 f2;
  Query.Builder.join_pred b f3 f4;
  Query.Builder.build b

let sec23_q = sec23_query ()
let sec23_raw = [| 1e6; 1e4; 1e4 |]

let sec23_env () =
  { Cost_model.count_of = (fun _ -> None);
    raw_count = (fun i -> sec23_raw.(i));
    distinct_of =
      (fun ~term ~pred:_ ~c_own:_ ~c_partner:_ ->
        match term.Term.id with 0 | 2 -> 1000.0 | 1 -> 1.0 | _ -> 1e4);
    record_count = (fun _ _ -> ()) }

let sec23_plan = Expr.join (Expr.join (Expr.base 0) (Expr.base 1)) (Expr.base 2)

let sec23_ctx = { Mdp.query = sec23_q; raw_counts = sec23_raw }
let sec23_sim = Simulator.create sec23_ctx Prior.spike_and_slab (Rng.create 9)

let sec23_exec_state =
  Mdp.apply_plan_edit (Mdp.init_state sec23_ctx)
    (Mdp.Join_exec (Relset.singleton 0, Relset.singleton 1))

let small_imdb = Imdb.workload { Imdb.seed = 5; scale = 0.05 }
let imdb_q = Workload.find_query small_imdb "iq31"
let imdb_defaults = Stats_source.defaults small_imdb.Workload.catalog imdb_q

let ott_cfg = { Ott.seed = 5; scale = 0.05; domain = 50 }
let small_ott = Ott.workload ott_cfg
let ott_pair = List.hd small_ott.Workload.queries
let ott_plan = Ott.hand_written (fst ott_pair) (snd ott_pair)

let prior_rng = Rng.create 31
let combine = Udf_library.combine_mod ~name:"bench_combo" ~modulus:25

let combine_rows =
  Array.init 1000 (fun i ->
      [| Monsoon_storage.Value.Int i; Monsoon_storage.Value.Int (i * 7) |])

let mcts_cfg =
  { (Monsoon_mcts.Mcts.default_config ~rng:(Rng.create 77)) with
    Monsoon_mcts.Mcts.iterations = 100 }

(* Fixtures for the repo/* kernels: the cross-query statistics repository
   (lib/stats_repo). Two separate log files so the flush kernel's append
   growth never changes what the replay / lookup kernels read. The seed
   log gets ten flushed runs up front — a few hundred lines, the size a
   short serving session leaves behind. *)
module Stats_repo = Monsoon_stats_repo.Stats_repo

let repo_terms () =
  Query.interesting_terms imdb_q (Query.all_mask imdb_q)

let repo_observations () =
  let terms = repo_terms () in
  let counts =
    (Query.all_mask imdb_q, 4321.0)
    :: List.map
         (fun tm ->
           (Relset.singleton (fst (List.hd tm.Term.args)), 1000.0))
         terms
  in
  let distincts = List.map (fun tm -> (tm.Term.id, 42.0)) terms in
  let udf = List.map (fun tm -> (tm.Term.id, 1000.0, 0.25)) terms in
  (counts, distincts, udf)

let repo_flush_path = Filename.temp_file "monsoon-bench-repo-flush" ".jsonl"
let repo_seed_path = Filename.temp_file "monsoon-bench-repo-seed" ".jsonl"

let () =
  let repo = Stats_repo.open_ repo_seed_path in
  let counts, distincts, udf = repo_observations () in
  for _ = 1 to 10 do
    ignore (Stats_repo.flush_query repo ~query:imdb_q ~counts ~distincts ~udf)
  done

(* Fixtures for the exec/* kernels: the vectorized columnar {!Executor}
   against the frozen row-at-a-time {!Row_engine} on identical scan /
   hash-join / Σ work. Synthetic int-keyed tables, big enough that
   per-row interpretation overhead dominates the row engine's time
   (equivalence itself is proven in test/test_differential.ml). *)

module Sto = Monsoon_storage

let exec_cat, exec_scan_q, exec_join_q =
  let cat = Sto.Catalog.create () in
  let schema =
    Sto.Schema.make
      [ { Sto.Schema.name = "k"; ty = Sto.Value.TInt };
        { Sto.Schema.name = "v"; ty = Sto.Value.TInt } ]
  in
  let mk name n kmul vmul =
    Sto.Table.of_row_array ~name schema
      (Array.init n (fun i ->
           [| Sto.Value.Int (i * kmul mod 12_000);
              Sto.Value.Int (i * vmul mod 64) |]))
  in
  (* Probe-dominated selective join: E2's 500 keys are the multiples of 3
     below 1500, so ~4% of E1's 40k probe rows match one build row each —
     the kernel measures the build + probe machinery, not row emission. *)
  Sto.Catalog.add cat (mk "E1" 40_000 13 7);
  Sto.Catalog.add cat (mk "E2" 500 3 5);
  List.iter Sto.Table.prime_columns (Sto.Catalog.tables cat);
  let scan_q =
    let b = Query.Builder.create ~name:"exec-scan" in
    let e1 = Query.Builder.rel b ~table:"E1" ~alias:"E1" in
    let tv = Query.Builder.term b (Udf.identity "v") [ (e1, "v") ] in
    Query.Builder.select_pred b tv (Sto.Value.Int 3);
    Query.Builder.build b
  in
  let join_q =
    let b = Query.Builder.create ~name:"exec-join" in
    let e1 = Query.Builder.rel b ~table:"E1" ~alias:"E1" in
    let e2 = Query.Builder.rel b ~table:"E2" ~alias:"E2" in
    let t1 = Query.Builder.term b (Udf.identity "k") [ (e1, "k") ] in
    let t2 = Query.Builder.term b (Udf.identity "k") [ (e2, "k") ] in
    Query.Builder.join_pred b t1 t2;
    Query.Builder.build b
  in
  (cat, scan_q, join_q)

let exec_columnar q e () =
  let exec =
    Monsoon_exec.Executor.create exec_cat q (Monsoon_exec.Executor.budget 1e7)
  in
  ignore (Monsoon_exec.Executor.execute exec e)

let exec_row q e () =
  let exec =
    Monsoon_exec.Row_engine.create exec_cat q
      (Monsoon_exec.Row_engine.budget 1e7)
  in
  ignore (Monsoon_exec.Row_engine.execute exec e)

(* Tiny Runner rows for the aggregation kernels (tables 4 and 5). *)
let synthetic_rows =
  let outcome cost =
    { Strategy.cost; timed_out = false; wall = 0.0; plan_time = 0.0;
      stats_cost = 0.0; result_card = 0.0; degraded = 0; plan = "" }
  in
  let cells f =
    List.init 60 (fun i ->
        { Runner.query = Printf.sprintf "q%d" i; outcome = Some (outcome (f i));
          error = None; attempts = 1 })
  in
  ( { Runner.strategy = "baseline"; cells = cells (fun i -> float_of_int (100 + i)) },
    { Runner.strategy = "other"; cells = cells (fun i -> float_of_int (90 + (2 * i))) } )

(* --- One Test.make per table / figure --- *)

let tests =
  let base, other = synthetic_rows in
  Test.make_grouped ~name:"monsoon"
    [ Test.make ~name:"table1/cost-model-eval"
        (Staged.stage (fun () ->
             let env = sec23_env () in
             ignore (Cost_model.cost sec23_q env sec23_plan)));
      Test.make ~name:"figure1/mdp-execute-transition"
        (Staged.stage (fun () ->
             ignore (Simulator.step sec23_sim sec23_exec_state Mdp.Execute)));
      Test.make ~name:"figure2/prior-density-grid"
        (Staged.stage (fun () ->
             for i = 1 to 50 do
               ignore (Prior.density Prior.low_biased ~x:(float_of_int i /. 51.0))
             done));
      Test.make ~name:"table2/spike-and-slab-sampling"
        (Staged.stage (fun () ->
             for _ = 1 to 100 do
               ignore
                 (Prior.sample Prior.spike_and_slab prior_rng ~c_own:1e5
                    ~c_partner:(Some 1e3))
             done));
      Test.make ~name:"table3/selinger-dp-planning"
        (Staged.stage (fun () ->
             ignore (Planner.best_plan imdb_q imdb_defaults.Stats_source.env)));
      Test.make ~name:"table4/relative-buckets"
        (Staged.stage (fun () -> ignore (Runner.relative_buckets ~baseline:base other)));
      Test.make ~name:"table5/top-k-selection"
        (Staged.stage (fun () -> ignore (Runner.top_k_by ~baseline:base ~k:20)));
      Test.make ~name:"table6/ott-expert-plan-execution"
        (Staged.stage (fun () ->
             let exec =
               Monsoon_exec.Executor.create small_ott.Workload.catalog
                 (snd ott_pair)
                 (Monsoon_exec.Executor.budget 1e7)
             in
             ignore (Monsoon_exec.Executor.execute exec ott_plan)));
      Test.make ~name:"table7/multi-instance-udf-eval"
        (Staged.stage (fun () ->
             Array.iter (fun row -> ignore (Udf.apply combine row)) combine_rows));
      Test.make ~name:"figure3/series-rendering"
        (Staged.stage (fun () ->
             ignore
               (Report.series ~title:"t" ~x_label:"x" ~y_label:"y"
                  (List.init 25 (fun i -> (string_of_int i, float_of_int i))))));
      Test.make ~name:"table8/mcts-planning-step"
        (Staged.stage (fun () ->
             ignore
               (Monsoon_mcts.Mcts.plan mcts_cfg (Simulator.problem sec23_sim)
                  (Mdp.init_state sec23_ctx))));
      (* Columnar engine vs the frozen row engine, same query + plan. Each
         iteration builds a fresh executor, so hash tables and chunk
         buffers are paid inside the measurement for both sides. *)
      Test.make ~name:"exec/scan-filter-columnar"
        (Staged.stage (exec_columnar exec_scan_q (Expr.base 0)));
      Test.make ~name:"exec/scan-filter-row"
        (Staged.stage (exec_row exec_scan_q (Expr.base 0)));
      Test.make ~name:"exec/hash-join-columnar"
        (Staged.stage
           (exec_columnar exec_join_q (Expr.join (Expr.base 0) (Expr.base 1))));
      Test.make ~name:"exec/hash-join-row"
        (Staged.stage
           (exec_row exec_join_q (Expr.join (Expr.base 0) (Expr.base 1))));
      Test.make ~name:"exec/sigma-columnar"
        (Staged.stage (exec_columnar exec_scan_q (Expr.stats (Expr.base 0))));
      Test.make ~name:"exec/sigma-row"
        (Staged.stage (exec_row exec_scan_q (Expr.stats (Expr.base 0))));
      (* Operator profiling: the enabled collector prices the per-node
         scratch writes against the plain join kernel above; the disabled
         mutators must be a single load-and-branch, like the Null sinks
         (the plain exec/* kernels above are the disabled-profile gate). *)
      Test.make ~name:"exec/hash-join-columnar-profiled"
        (Staged.stage (fun () ->
             let prof = Monsoon_exec.Profile.create () in
             let exec =
               Monsoon_exec.Executor.create
                 ~env:(Monsoon_exec.Profile.to_env prof)
                 exec_cat exec_join_q
                 (Monsoon_exec.Executor.budget 1e7)
             in
             ignore
               (Monsoon_exec.Executor.execute exec
                  (Expr.join (Expr.base 0) (Expr.base 1)))));
      Test.make ~name:"profile/disabled-noop-x100"
        (Staged.stage
           (let p = Monsoon_exec.Profile.disabled in
            fun () ->
              for i = 1 to 100 do
                Monsoon_exec.Profile.set_path p "x";
                Monsoon_exec.Profile.add_batches p i;
                Monsoon_exec.Profile.set_input p ~rows:1.0 ~denom:1.0
              done));
      (* Telemetry overhead: the same executor kernel as table6, with spans
         actually retained — against the Null-sink default above. *)
      Test.make ~name:"table6/ott-expert-plan-execution-traced"
        (Staged.stage (fun () ->
             let tel = Ctx.create ~sink:(Span.Memory (Span.memory_buffer ())) () in
             let exec =
               Monsoon_exec.Executor.create
                 ~env:(Ctx.to_env tel)
                 small_ott.Workload.catalog (snd ott_pair)
                 (Monsoon_exec.Executor.budget 1e7)
             in
             ignore (Monsoon_exec.Executor.execute exec ott_plan)));
      (* Telemetry primitives in isolation. *)
      Test.make ~name:"telemetry/null-with-span-x100"
        (Staged.stage
           (let tel = Ctx.null () in
            fun () ->
              for _ = 1 to 100 do
                Ctx.with_span tel "bench" (fun _ -> ())
              done));
      Test.make ~name:"telemetry/memory-with-span-x100"
        (Staged.stage (fun () ->
             let tr = Span.make (Span.Memory (Span.memory_buffer ())) in
             for _ = 1 to 100 do
               Span.with_span tr "bench" (fun _ -> ())
             done));
      Test.make ~name:"telemetry/counter-add-x100"
        (Staged.stage
           (let reg = Registry.create () in
            let c = Registry.counter reg "bench.counter" in
            fun () ->
              for _ = 1 to 100 do
                Metric.Counter.add c 1.0
              done));
      (* Flight recorder: the disabled path must be a branch and nothing
         more; the active path pays the list cons. *)
      Test.make ~name:"telemetry/recorder-null-record-x100"
        (Staged.stage
           (let r = Recorder.null () in
            fun () ->
              for i = 1 to 100 do
                Recorder.record r (Recorder.Note { step = i; message = "x" })
              done));
      Test.make ~name:"telemetry/recorder-active-record-x100"
        (Staged.stage (fun () ->
             let r = Recorder.create () in
             for i = 1 to 100 do
               Recorder.record r (Recorder.Note { step = i; message = "x" })
             done));
      (* Fault plane: the disabled checkpoint must be a single branch
         (compare against armed-at-rate-0, which also only branches, and
         armed-with-a-draw, which pays one RNG draw per checkpoint). *)
      Test.make ~name:"fault/disabled-checkpoint-x100"
        (Staged.stage (fun () ->
             for _ = 1 to 100 do
               Fault.udf Fault.disabled;
               Fault.row Fault.disabled
             done));
      Test.make ~name:"fault/armed-rate0-checkpoint-x100"
        (Staged.stage
           (let f = Fault.plan Fault.no_faults (Rng.create 3) in
            fun () ->
              for _ = 1 to 100 do
                Fault.udf f;
                Fault.row f
              done));
      Test.make ~name:"fault/armed-draw-checkpoint-x100"
        (Staged.stage
           (let f =
              Fault.plan
                { Fault.no_faults with Fault.udf_rate = 1e-12 }
                (Rng.create 3)
            in
            fun () ->
              for _ = 1 to 100 do
                Fault.udf f
              done));
      (* Serve-path overheads (lib/server). Deliberately pool-free: these
         price the admission controller and the SLO bookkeeping that wrap
         every request, not the query work a Pool worker does — and a
         long-lived Pool fixture would drag every other kernel's minor GCs
         into cross-domain stop-the-world barriers. *)
      Test.make ~name:"serve/admission-admit-release-x100"
        (Staged.stage
           (let adm =
              Monsoon_server.Admission.create ~max_concurrent:4
                ~queue_bound:16 ()
            in
            fun () ->
              for _ = 1 to 100 do
                (match
                   Monsoon_server.Admission.admit
                     ~deadline:Monsoon_util.Deadline.none adm
                 with
                | Monsoon_server.Admission.Admitted _ -> ()
                | _ -> assert false);
                Monsoon_server.Admission.release adm
              done));
      Test.make ~name:"serve/slo-record-x100"
        (Staged.stage
           (let slo = Monsoon_server.Slo.create ~ctx:(Ctx.null ()) () in
            fun () ->
              for i = 1 to 100 do
                Monsoon_server.Slo.record slo
                  (if i mod 10 = 0 then Monsoon_server.Slo.Degraded
                   else Monsoon_server.Slo.Ok_)
                  ~latency:(0.001 *. float_of_int i)
                  ~queue_wait:0.0
              done));
      (* Statistics repository (lib/stats_repo): the three costs a
         warm-started run pays — appending one query's observations under
         the line lock, replaying a session-sized log into the aggregate
         at open, and the per-term warm lookups the driver does before
         planning. *)
      Test.make ~name:"repo/flush-query"
        (Staged.stage
           (let repo = Stats_repo.open_ repo_flush_path in
            let counts, distincts, udf = repo_observations () in
            fun () ->
              ignore
                (Stats_repo.flush_query repo ~query:imdb_q ~counts ~distincts
                   ~udf)));
      Test.make ~name:"repo/log-replay"
        (Staged.stage (fun () -> ignore (Stats_repo.open_ repo_seed_path)));
      Test.make ~name:"repo/warm-lookup-x100"
        (Staged.stage
           (let repo = Stats_repo.open_ repo_seed_path in
            let terms = repo_terms () in
            fun () ->
              for _ = 1 to 100 do
                List.iter
                  (fun tm ->
                    ignore
                      (Stats_repo.lookup_distinct repo ~query:imdb_q ~term:tm);
                    ignore (Stats_repo.lookup_udf repo ~query:imdb_q ~term:tm))
                  terms
              done)) ]

(* --- Worker-pool scaling: one small suite, sequential vs parallel ---

   Runs the same (strategy, query) grid with jobs=1 and jobs=N and reports
   the wall-clock ratio plus whether the deterministic projection of the
   rows matched (it must: Runner seeds every cell independently). On a
   single-core host the speedup hovers around 1.0 — the interesting number
   needs >= 4 cores. *)

type suite_speedup = {
  ss_jobs : int;
  ss_workers : int;  (* actual pool size (jobs = 0 resolves to core count) *)
  ss_seq_seconds : float;
  ss_par_seconds : float;
  ss_identical : bool;
}

let row_fingerprint (rows : Runner.row list) =
  List.map
    (fun (r : Runner.row) ->
      ( r.Runner.strategy,
        List.map
          (fun (c : Runner.cell) ->
            ( c.Runner.query,
              Option.map
                (fun (o : Strategy.outcome) ->
                  ( o.Strategy.cost, o.Strategy.timed_out,
                    o.Strategy.stats_cost, o.Strategy.result_card,
                    o.Strategy.plan ))
                c.Runner.outcome ))
          r.Runner.cells ))
    rows

let measure_suite_speedup ~jobs =
  let w = Tpch.workload { Tpch.seed = 11; scale = 0.05; skew = Tpch.Plain } in
  let strategies = [ Strategy.defaults; Strategy.greedy; Strategy.sampling ] in
  let config jobs =
    { Runner.default_config with
      Runner.budget = 1e6;
      seed = 11;
      queries = Some [ "tq1"; "tq2"; "tq12" ];
      jobs }
  in
  let rows_seq, seq_s =
    Timer.time (fun () -> Runner.run_suite (config 1) strategies w)
  in
  let rows_par, par_s =
    Timer.time (fun () -> Runner.run_suite (config jobs) strategies w)
  in
  let workers = if jobs < 1 then Pool.default_jobs () else jobs in
  { ss_jobs = jobs;
    ss_workers = workers;
    ss_seq_seconds = seq_s;
    ss_par_seconds = par_s;
    ss_identical = row_fingerprint rows_seq = row_fingerprint rows_par }

(* --- Sampler overhead: the same small suite with the Monitor ticking at
   a 100 ms cadence vs without one. The sampler runs on its own domain
   and only reads atomics + Gc.quick_stat, so the delta should stay
   within noise (a few percent); the measurement keeps it honest. *)

type sampler_overhead = {
  so_interval : float;
  so_reps : int;
  so_off_seconds : float;
  so_on_seconds : float;
  so_samples : int;
}

let measure_sampler_overhead () =
  let w = Tpch.workload { Tpch.seed = 11; scale = 0.05; skew = Tpch.Plain } in
  let strategies = [ Strategy.defaults; Strategy.greedy; Strategy.sampling ] in
  let config =
    { Runner.default_config with
      Runner.budget = 1e6;
      seed = 11;
      queries = Some [ "tq1"; "tq2"; "tq12" ];
      jobs = 1 }
  in
  let run tel =
    ignore (Runner.run_suite ~env:(Ctx.to_env tel) config strategies w)
  in
  run (Ctx.null ());
  (* warm caches before timing either leg *)
  (* Calibrate repetitions so each timed leg lasts ~1 s: the suite alone
     finishes in milliseconds, far less than one 100 ms tick, so a single
     pass would only measure startup noise. Off and on legs alternate for
     three trials each and the minimum is kept per leg — scheduler jitter
     and GC-pacing drift are several percent per trial, well above the
     effect being measured, and interleaving spreads any drift across
     both legs instead of charging it to one. *)
  let _, once = Timer.time (fun () -> run (Ctx.null ())) in
  let reps =
    min 2000 (max 1 (int_of_float (ceil (1.0 /. Float.max 1e-6 once))))
  in
  let run_n tel =
    for _ = 1 to reps do
      run tel
    done
  in
  let interval = 0.1 in
  let off_best = ref infinity and on_best = ref infinity in
  let samples = ref 0 in
  for _ = 1 to 3 do
    let _, off = Timer.time (fun () -> run_n (Ctx.null ())) in
    off_best := Float.min !off_best off;
    let tel = Ctx.null () in
    let mon = Monitor.create ~interval tel.Ctx.registry in
    let _, on = Timer.time (fun () -> run_n tel) in
    Monitor.stop mon;
    on_best := Float.min !on_best on;
    samples := !samples + List.length (Monitor.samples mon)
  done;
  { so_interval = interval;
    so_reps = reps;
    so_off_seconds = !off_best;
    so_on_seconds = !on_best;
    so_samples = !samples }

let overhead_pct o =
  if o.so_off_seconds > 0.0 then
    Some (100.0 *. (o.so_on_seconds -. o.so_off_seconds) /. o.so_off_seconds)
  else None

(* Machine-readable companion to the console table, for tracking kernel
   performance across commits (see EXPERIMENTS.md). *)
let bench_results_file = "BENCH_results.json"

let write_results_json ~jobs rows speedup overhead =
  let entry (name, ns) =
    Json.Obj
      [ ("kernel", Json.Str name);
        ("ns_per_op", if Float.is_nan ns then Json.Null else Json.Num ns);
        ( "ops_per_sec",
          if Float.is_nan ns || ns <= 0.0 then Json.Null
          else Json.Num (1e9 /. ns) ) ]
  in
  let speedup_json =
    Json.Obj
      [ ("jobs", Json.Num (float_of_int speedup.ss_jobs));
        ("workers", Json.Num (float_of_int speedup.ss_workers));
        ("seq_seconds", Json.Num speedup.ss_seq_seconds);
        ("par_seconds", Json.Num speedup.ss_par_seconds);
        ( "speedup",
          if speedup.ss_par_seconds > 0.0 then
            Json.Num (speedup.ss_seq_seconds /. speedup.ss_par_seconds)
          else Json.Null );
        ("identical_rows", Json.Bool speedup.ss_identical) ]
  in
  let overhead_json =
    Json.Obj
      [ ("interval_seconds", Json.Num overhead.so_interval);
        ("suite_reps", Json.Num (float_of_int overhead.so_reps));
        ("off_seconds", Json.Num overhead.so_off_seconds);
        ("on_seconds", Json.Num overhead.so_on_seconds);
        ( "overhead_pct",
          match overhead_pct overhead with
          | Some p -> Json.Num p
          | None -> Json.Null );
        ("samples", Json.Num (float_of_int overhead.so_samples)) ]
  in
  let oc = open_out bench_results_file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (Json.to_string
           (Json.Obj
              [ ("jobs", Json.Num (float_of_int jobs));
                ("kernels", Json.Arr (List.map entry rows));
                ("suite_speedup", speedup_json);
                ("sampler_overhead", overhead_json) ]));
      output_char oc '\n');
  Printf.printf "  (wrote %d kernel results + suite speedup to %s)\n\n"
    (List.length rows) bench_results_file

(* `bench --append-history FILE` (or MONSOON_BENCH_HISTORY=FILE) appends
   one JSONL line per run — commit sha, unix timestamp, jobs, and every
   kernel's ns/op — so CI accumulates a cross-commit performance history
   (BENCH_HISTORY.jsonl) next to the single-run BENCH_results.json. *)
let history_path () =
  let from_argv =
    let rec scan = function
      | "--append-history" :: v :: _ -> Some v
      | _ :: rest -> scan rest
      | [] -> None
    in
    scan (Array.to_list Sys.argv)
  in
  match from_argv with
  | Some _ as p -> p
  | None -> Sys.getenv_opt "MONSOON_BENCH_HISTORY"

let git_sha () =
  match Unix.open_process_in "git rev-parse HEAD 2>/dev/null" with
  | exception Unix.Unix_error _ -> "unknown"
  | ic ->
    let line = try input_line ic with End_of_file -> "" in
    (match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown")

let append_history path ~jobs rows =
  let entry (name, ns) =
    (name, if Float.is_nan ns then Json.Null else Json.Num ns)
  in
  let line =
    Json.to_string
      (Json.Obj
         [ ("sha", Json.Str (git_sha ()));
           ("timestamp", Json.Num (Unix.time ()));
           ("jobs", Json.Num (float_of_int jobs));
           ("kernels_ns_per_op", Json.Obj (List.map entry rows)) ])
  in
  match open_out_gen [ Open_append; Open_creat ] 0o644 path with
  | exception Sys_error msg ->
    Printf.eprintf "bench: --append-history %s: %s\n" path msg
  | oc ->
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc line;
        output_char oc '\n');
    Printf.printf "  (appended kernel history line to %s)\n\n" path

let run_microbenchmarks () =
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name est acc ->
        let ns =
          match Analyze.OLS.estimates est with Some [ t ] -> t | _ -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  print_endline "=== Micro-benchmarks (one kernel per paper table/figure) ===";
  List.iter
    (fun (name, ns) ->
      let pretty =
        if ns >= 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
        else if ns >= 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
        else Printf.sprintf "%8.0f ns" ns
      in
      Printf.printf "  %-45s %s/run\n" name pretty)
    rows;
  print_newline ();
  rows

(* --- Full experiment regeneration --- *)

let profile () =
  match Sys.getenv_opt "MONSOON_PROFILE" with
  | Some "quick" -> Experiments.quick
  | Some "full" | None -> Experiments.full
  | Some other ->
    Printf.eprintf "unknown MONSOON_PROFILE %S (quick|full); using full\n" other;
    Experiments.full

(* `bench --jobs N` (or MONSOON_JOBS=N) sets the suite parallelism: the
   speedup measurement's parallel leg and the experiment runs both use it.
   0 = one domain per recommended core. *)
let jobs () =
  let parse where v =
    match int_of_string_opt v with
    | Some n when n >= 0 -> Some n
    | _ ->
      Printf.eprintf "bench: ignoring bad %s jobs value %S\n" where v;
      None
  in
  let from_argv =
    let rec scan = function
      | "--jobs" :: v :: _ | "-j" :: v :: _ -> parse "--jobs" v
      | _ :: rest -> scan rest
      | [] -> None
    in
    scan (Array.to_list Sys.argv)
  in
  let from_env =
    Option.bind (Sys.getenv_opt "MONSOON_JOBS") (parse "MONSOON_JOBS")
  in
  match (from_argv, from_env) with
  | Some n, _ -> n
  | None, Some n -> n
  | None, None -> 1

(* `bench --serve PORT` (or MONSOON_SERVE=PORT) exposes /metrics for the
   duration of the experiment reproductions, so a long full-profile run
   can be watched from Prometheus or curl. *)
let serve_port () =
  let parse v =
    match int_of_string_opt v with
    | Some n when n >= 0 -> Some n
    | _ ->
      Printf.eprintf "bench: ignoring bad serve port %S\n" v;
      None
  in
  let from_argv =
    let rec scan = function
      | "--serve" :: v :: _ -> parse v
      | _ :: rest -> scan rest
      | [] -> None
    in
    scan (Array.to_list Sys.argv)
  in
  match from_argv with
  | Some _ as p -> p
  | None -> Option.bind (Sys.getenv_opt "MONSOON_SERVE") parse

let () =
  let jobs = jobs () in
  (* Overhead first: bechamel's stabilize loop (repeated Gc.compact)
     leaves a multi-second GC-pacing transient that would otherwise
     poison whichever leg runs inside the recovery window. *)
  let overhead = measure_sampler_overhead () in
  let kernel_rows = run_microbenchmarks () in
  let speedup =
    measure_suite_speedup
      ~jobs:(if jobs <= 1 then Pool.default_jobs () else jobs)
  in
  Printf.printf
    "=== Suite scaling (3 strategies x 3 TPC-H queries) ===\n\
    \  jobs=1: %.2fs   jobs=%d (%d workers): %.2fs   speedup: %.2fx   rows \
     identical: %b\n\n"
    speedup.ss_seq_seconds speedup.ss_jobs speedup.ss_workers
    speedup.ss_par_seconds
    (if speedup.ss_par_seconds > 0.0 then
       speedup.ss_seq_seconds /. speedup.ss_par_seconds
     else nan)
    speedup.ss_identical;
  Printf.printf
    "=== Sampler overhead (suite above x%d, %.0f ms cadence) ===\n\
    \  off: %.2fs   on: %.2fs   overhead: %s   samples: %d\n\n"
    overhead.so_reps
    (overhead.so_interval *. 1000.0)
    overhead.so_off_seconds overhead.so_on_seconds
    (match overhead_pct overhead with
    | Some p -> Printf.sprintf "%.1f%%" p
    | None -> "n/a")
    overhead.so_samples;
  write_results_json ~jobs kernel_rows speedup overhead;
  Option.iter (fun p -> append_history p ~jobs kernel_rows) (history_path ());
  let profile = { (profile ()) with Experiments.jobs } in
  let monitor =
    match serve_port () with
    | None -> None
    | Some port ->
      let tel = profile.Experiments.ctx in
      Monitor.preregister tel.Ctx.registry;
      let m = Monitor.create tel.Ctx.registry in
      (match Monitor.serve m ~port with
      | Ok bound ->
        Printf.eprintf "bench: serving http://127.0.0.1:%d/metrics\n%!" bound
      | Error msg -> Printf.eprintf "bench: --serve %d: %s\n%!" port msg);
      Some m
  in
  Printf.printf "=== Experiment reproductions (profile: %s, jobs: %d) ===\n\n%!"
    profile.Experiments.label profile.Experiments.jobs;
  List.iter
    (fun (id, descr, f) ->
      let t0 = Timer.now () in
      let output = Experiments.run profile ~id f in
      Printf.printf "--- %s: %s (%.1fs) ---\n%s\n%!" id descr
        (Timer.now () -. t0) output)
    Experiments.all;
  Option.iter Monitor.stop monitor
