open Monsoon_relalg

type scope = Wildcard | For_pred of int | For_select

module IntMap = Map.Make (Int)

module PairMap = Map.Make (struct
  type t = int * int

  let compare = compare
end)

(* Persistent maps behind mutable fields: [copy] is four field reads, not
   four table copies. The simulator clones the catalog on every stochastic
   transition (thousands of times per MCTS planning step), and the clones
   share almost all of their entries — exactly the persistent-structure
   sweet spot. The mutating interface is unchanged; it swaps roots. *)
type t = {
  mutable counts : float IntMap.t;  (* Relset.t masks are ints *)
  mutable wildcard : float IntMap.t;  (* term id -> measured d *)
  mutable scoped : float PairMap.t;  (* (term id, pred id) -> assumed d *)
  mutable sel_scoped : float IntMap.t;  (* term id -> assumed d, selections *)
  mutable version : int;  (* bumped on every set_*; overwrite-safe *)
}

let create () =
  { counts = IntMap.empty;
    wildcard = IntMap.empty;
    scoped = PairMap.empty;
    sel_scoped = IntMap.empty;
    version = 0 }

let copy t =
  { counts = t.counts;
    wildcard = t.wildcard;
    scoped = t.scoped;
    sel_scoped = t.sel_scoped;
    version = t.version }

let set_count t mask c =
  t.counts <- IntMap.add (mask : Relset.t) c t.counts;
  t.version <- t.version + 1

let count t mask = IntMap.find_opt (mask : Relset.t) t.counts

let set_distinct t ~term ~scope d =
  (match scope with
  | Wildcard -> t.wildcard <- IntMap.add term d t.wildcard
  | For_pred p -> t.scoped <- PairMap.add (term, p) d t.scoped
  | For_select -> t.sel_scoped <- IntMap.add term d t.sel_scoped);
  t.version <- t.version + 1

let distinct t ~term ~pred =
  match IntMap.find_opt term t.wildcard with
  | Some d -> Some d
  | None -> (
    match pred with
    | Some p -> PairMap.find_opt (term, p) t.scoped
    | None -> IntMap.find_opt term t.sel_scoped)

let has_measurement t ~term = IntMap.mem term t.wildcard

let counts t = IntMap.fold (fun k v acc -> (k, v) :: acc) t.counts []

let distincts t =
  IntMap.fold (fun k v acc -> (k, Wildcard, v) :: acc) t.wildcard []
  @ PairMap.fold (fun (tm, p) v acc -> (tm, For_pred p, v) :: acc) t.scoped []
  @ IntMap.fold (fun tm v acc -> (tm, For_select, v) :: acc) t.sel_scoped []

let size t =
  IntMap.cardinal t.counts + IntMap.cardinal t.wildcard
  + PairMap.cardinal t.scoped
  + IntMap.cardinal t.sel_scoped

let version t = t.version
