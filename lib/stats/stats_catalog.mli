(** The set of observed statistics S (paper Sec 4.1).

    Two kinds of entries:
    - result counts [c(r)], keyed by the relation-instance mask of the
      expression (result cardinality is shape-independent — see {!Expr});
    - distinct-value counts [d(F, r|s)], keyed by term and scope. A value
      *measured* by an executed Σ pass is stored with [Wildcard] scope and
      answers every predicate context; a value *assumed* while generating a
      transition is scoped to the predicate it was sampled for.

    The catalog is persistent under the hood (balanced maps behind mutable
    roots), so {!copy} is O(1) and clones share structure: MCTS clones the
    catalog at every stochastic transition, thousands of times per
    planning step. *)

open Monsoon_relalg

type scope =
  | Wildcard       (** measured; answers every context *)
  | For_pred of int  (** assumed while costing one join predicate *)
  | For_select     (** assumed while costing a selection *)

type t

val create : unit -> t
val copy : t -> t

val set_count : t -> Relset.t -> float -> unit
val count : t -> Relset.t -> float option

val set_distinct : t -> term:int -> scope:scope -> float -> unit
val distinct : t -> term:int -> pred:int option -> float option
(** Wildcard entries take precedence; [pred = None] (selection context) only
    matches wildcard or selection-scoped entries. *)

val has_measurement : t -> term:int -> bool
(** Is a wildcard (measured) distinct count present for the term? *)

val counts : t -> (Relset.t * float) list
val distincts : t -> (int * scope * float) list

val size : t -> int
(** Total number of entries. Not a safe fingerprint on its own: an
    overwrite leaves [size] unchanged — combine with {!version}. *)

val version : t -> int
(** Monotone write counter: bumped by every [set_count]/[set_distinct],
    including overwrites, and carried by {!copy}. Two catalogs reached by
    different write sequences from the same origin never share a
    (size, version) pair, which is what the MCTS state hash needs. *)
