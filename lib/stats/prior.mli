(** The prior distributions over distinct-value counts (paper Sec 5.2).

    A prior is a family [f(d(F, r|s) | c(r), c(s))]: given the cardinality of
    the expression the term ranges over ([c_own]) and, for join predicates,
    of the join partner ([c_partner]), it yields a distribution over the
    number of distinct values in [1, c_own]. The seven general-purpose
    "magic distributions" evaluated in the paper are provided. *)

type t

val name : t -> string

val sample :
  t -> Monsoon_util.Rng.t -> c_own:float -> c_partner:float option -> float
(** A draw of [d], guaranteed inside [1, max 1 c_own]. [c_partner] is [None]
    in selection contexts; priors that reference [c(s)] (spike-and-slab)
    renormalize without that component. *)

val density : t -> x:float -> float
(** Density of the scale-free part at [x ∈ (0,1)] (the fraction
    [d / c(r)]), used to render the paper's Figure 2. Point masses are not
    included; the Discrete prior reports a zero density. *)

val uniform : t

(** [increasing] is Beta(3,1)·c(r): optimistic, many distincts. *)
val increasing : t

(** [decreasing] is Beta(1,3)·c(r): pessimistic. *)
val decreasing : t

(** [u_shaped] is Beta(0.5,0.5)·c(r). *)
val u_shaped : t

(** [low_biased] is Beta(2,10)·c(r). *)
val low_biased : t

val spike_and_slab : t
(** 80 % uniform on [1, c(r)], 10 % spike at c(r) (key / FK into r), 10 % at
    min(c(s), c(r)) (FK from r into s). The paper's recommended prior. *)

(** [discrete] is a point mass at 0.1·c(r). *)
val discrete : t

val custom :
  name:string ->
  sample:(Monsoon_util.Rng.t -> c_own:float -> c_partner:float option -> float) ->
  ?density:(x:float -> float) ->
  unit ->
  t
(** An arbitrary prior — e.g. the two-point distributions of the paper's
    Sec 2.3 walkthrough, or a data-set-specific "tailored" prior. *)

val empirical : name:string -> mean:float -> lo:float -> hi:float -> t
(** A warm-start prior from repeated observations of the same statistic: a
    50% point mass at the observed [mean] plus a uniform slab over the
    observed range [lo, hi] (a pure point mass when [lo = hi]). Used by the
    cross-query statistics repository ([Monsoon_stats_repo]) when history
    for a term exists but is too spread out to treat as a known value. *)

val all : t list
(** The seven priors in the paper's Table 2 order. *)

val by_name : string -> t option
