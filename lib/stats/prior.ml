open Monsoon_util

type t = {
  name : string;
  sample : Rng.t -> c_own:float -> c_partner:float option -> float;
  density : x:float -> float;
}

let name t = t.name

let clamp ~c_own d = Float.max 1.0 (Float.min d (Float.max 1.0 c_own))

let sample t rng ~c_own ~c_partner =
  clamp ~c_own (t.sample rng ~c_own ~c_partner)

let density t ~x = t.density ~x

let scaled_beta ~alpha ~beta name =
  { name;
    sample =
      (fun rng ~c_own ~c_partner:_ ->
        Float.of_int
          (int_of_float (ceil (Dist.beta rng ~alpha ~beta *. c_own))));
    density = (fun ~x -> Dist.beta_pdf ~alpha ~beta x) }

let uniform =
  { name = "Uniform";
    sample = (fun rng ~c_own ~c_partner:_ -> 1.0 +. Rng.float rng (Float.max 0.0 (c_own -. 1.0)));
    density = (fun ~x -> if x > 0.0 && x < 1.0 then 1.0 else 0.0) }

let increasing = scaled_beta ~alpha:3.0 ~beta:1.0 "Increasing"
let decreasing = scaled_beta ~alpha:1.0 ~beta:3.0 "Decreasing"
let u_shaped = scaled_beta ~alpha:0.5 ~beta:0.5 "U-Shaped"
let low_biased = scaled_beta ~alpha:2.0 ~beta:10.0 "Low Biased"

let spike_and_slab =
  { name = "Spike and Slab";
    sample =
      (fun rng ~c_own ~c_partner ->
        match c_partner with
        | Some c_s ->
          let u = Rng.unit_float rng in
          if u < 0.8 then 1.0 +. Rng.float rng (Float.max 0.0 (c_own -. 1.0))
          else if u < 0.9 then c_own          (* FK from s into r: d = c(r) *)
          else Float.min c_s c_own            (* FK from r into s: d = c(s) *)
        | None ->
          (* Selection context: no partner spike; keep the 8:1 ratio of slab
             to key-spike. *)
          let u = Rng.unit_float rng in
          if u < 8.0 /. 9.0 then 1.0 +. Rng.float rng (Float.max 0.0 (c_own -. 1.0))
          else c_own);
    density = (fun ~x -> if x > 0.0 && x < 1.0 then 0.8 else 0.0) }

let discrete =
  { name = "Discrete";
    sample = (fun _rng ~c_own ~c_partner:_ -> 0.1 *. c_own);
    density = (fun ~x:_ -> 0.0) }

let custom ~name ~sample ?(density = fun ~x:_ -> 0.0) () = { name; sample; density }

let empirical ~name ~mean ~lo ~hi =
  (* A point mass at the observed mean, widened by the observed spread:
     draws are uniform on [lo, hi] with a 50% spike at the mean. With
     lo = hi this is a pure point mass. The usual [1, c_own] clamp in
     {!sample} still applies, so a stale observation larger than the
     current cardinality degrades gracefully. *)
  let lo = Float.min lo hi and hi = Float.max lo hi in
  { name;
    sample =
      (fun rng ~c_own:_ ~c_partner:_ ->
        if Rng.unit_float rng < 0.5 then mean
        else lo +. Rng.float rng (Float.max 0.0 (hi -. lo)));
    density = (fun ~x:_ -> 0.0) }

let all =
  [ uniform; increasing; decreasing; u_shaped; low_biased; spike_and_slab; discrete ]

let by_name n =
  List.find_opt (fun t -> String.lowercase_ascii t.name = String.lowercase_ascii n) all
