(** The sampled model of the Monsoon MDP used during planning.

    Plan edits pass through deterministically with zero reward. EXECUTE is
    simulated by the recursive statistics-generation algorithm of Sec 4.3:
    result counts already in S short-circuit; missing child counts are
    generated bottom-up; missing distinct counts are drawn from the prior
    (scoped to the predicate they serve); Σ-topped expressions additionally
    harden a measured (wildcard) distinct count for every still-unknown
    interesting term. The reward is the negated cost of Sec 4.4. *)

open Monsoon_util
open Monsoon_stats

type t

val create : Mdp.ctx -> Prior.t -> Rng.t -> t
(** One prior for every term — the paper's "general-purpose magic
    distribution" usage. *)

val create_with : Mdp.ctx -> prior_of:(int -> Prior.t) -> Rng.t -> t
(** Per-term priors (term id → prior), for tailored or example-specific
    priors such as the Sec 2.3 walkthrough. *)

val step : t -> Mdp.state -> Mdp.action -> Mdp.state * float
(** One sampled transition. The input state is not mutated. *)

val predict_counts :
  t -> Mdp.state -> (Monsoon_relalg.Relset.t * float) list
(** Plan-time cardinality predictions for one EXECUTE of the state's R_p:
    every mask whose count the model had to compute (not already hardened
    in S) paired with the predicted count, first computation wins. Runs
    over a private statistics copy and consumes draws only from this
    simulator's rng — pass a dedicated simulator (e.g. over a split rng)
    to keep the planning stream undisturbed. *)

val problem : t -> (Mdp.state, Mdp.action) Monsoon_mcts.Mcts.problem
(** Package as an MCTS planning problem. *)

val expected_execute_cost : t -> Mdp.state -> n:int -> float
(** Monte-Carlo mean of the EXECUTE reward magnitude from a state ([n]
    samples) — used by examples and the Figure 1 bench to report expected
    strategy costs. *)
