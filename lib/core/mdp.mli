(** The Monsoon MDP (paper Sec 4): states, actions, and the deterministic
    part of the transition function.

    A state is the triple (R_p, R_e, S): planned-but-unexecuted RA
    expressions, executed/materialized expressions (represented by their
    instance masks — see {!Monsoon_relalg.Expr} for why masks suffice), and
    the set of observed statistics. Plan-editing actions are deterministic;
    the stochastic EXECUTE transition lives in {!Simulator} (sampled model)
    and {!Driver} (real world). *)

open Monsoon_storage
open Monsoon_relalg
open Monsoon_stats

type state = {
  r_p : Expr.t list;  (** sorted by canonical key; keys unique *)
  r_e : Relset.t list;  (** sorted ascending *)
  stats : Stats_catalog.t;
}

type action =
  | Add_stats_of_exec of Relset.t
      (** Σ over a materialized expression (action 1 of Sec 4.2). *)
  | Wrap_stats of Expr.t
      (** Replace r ∈ R_p with Σ(r) (action 2). *)
  | Join_exec of Relset.t * Relset.t
      (** Add a join of two materialized expressions to R_p (action 3). *)
  | Join_planned of Expr.t * Expr.t
      (** Join two planned expressions (action 4). *)
  | Join_mixed of Relset.t * Expr.t
      (** Join a materialized with a planned expression (action 5). *)
  | Execute  (** Materialize everything in R_p. *)

type ctx = { query : Query.t; raw_counts : float array }
(** Per-query immutable context: the instance sizes are the only statistics
    assumed known up front. *)

val make_ctx : Catalog.t -> Query.t -> ctx
val init_state : ctx -> state
(** R_p empty, R_e the base instances, S empty. *)

val is_terminal : ctx -> state -> bool
(** The complete query has been materialized. *)

val legal_actions : ctx -> state -> action list
(** Follows Sec 4.2, with two standard prunings: a join candidate without a
    connecting predicate is only offered when no connected candidate exists
    anywhere (cross products only when necessary), and Σ is only offered
    when it would measure at least one still-unknown statistic. Plans with a
    mask already covered inside R_p are not duplicated. *)

val apply_plan_edit : state -> action -> state
(** The deterministic transitions; raises [Invalid_argument] on [Execute]. *)

val executed_masks : Expr.t -> Relset.t list
(** Masks that executing the expression adds to R_e: every join node plus
    the (Σ-stripped) root. *)

val state_key : state -> string
(** Canonical fingerprint for MCTS chance-node sharing. *)

val pp_action : ctx -> Format.formatter -> action -> unit
(** The single pretty-printer for actions (["plan Σ(S)"], ["EXECUTE"], …);
    every textual rendering of an action goes through it. *)

val describe_action : ctx -> action -> string
(** [Format.asprintf] over {!pp_action}. *)

val describe_mask : ctx -> Relset.t -> string
(** Pretty form of a materialized mask using instance aliases. *)
