open Monsoon_storage
open Monsoon_relalg
open Monsoon_stats

type state = {
  r_p : Expr.t list;
  r_e : Relset.t list;
  stats : Stats_catalog.t;
}

type action =
  | Add_stats_of_exec of Relset.t
  | Wrap_stats of Expr.t
  | Join_exec of Relset.t * Relset.t
  | Join_planned of Expr.t * Expr.t
  | Join_mixed of Relset.t * Expr.t
  | Execute

type ctx = { query : Query.t; raw_counts : float array }

let make_ctx catalog query =
  let raw_counts =
    Array.map
      (fun r ->
        float_of_int (Table.cardinality (Catalog.find catalog r.Query.table)))
      (Query.rels query)
  in
  { query; raw_counts }

let init_state ctx =
  { r_p = [];
    r_e = List.init (Query.n_rels ctx.query) Relset.singleton;
    stats = Stats_catalog.create () }

let is_terminal ctx state = List.mem (Query.all_mask ctx.query) state.r_e

let sort_plans plans = List.sort_uniq Expr.compare plans

(* Does R_p already contain a plan covering (at least) this mask? Used to
   avoid planning redundant work. *)
let covered_in_rp state mask =
  List.exists (fun e -> Relset.subset mask (Expr.mask e)) state.r_p

(* Σ over an expression is useful only when it would measure a statistic
   not yet known. *)
let stats_useful ctx state mask =
  List.exists
    (fun tm -> not (Stats_catalog.has_measurement state.stats ~term:tm.Term.id))
    (Query.interesting_terms ctx.query mask)

let legal_actions ctx state =
  let q = ctx.query in
  let planned_joinable =
    List.filter (fun e -> not (Expr.has_stats e)) state.r_p
  in
  (* Join candidates across the three action types, tagged with
     connectivity. *)
  let candidates = ref [] in
  let add_candidate action left right =
    candidates := (action, Query.connected q left right) :: !candidates
  in
  let rec pairs = function
    | [] -> ()
    | m1 :: rest ->
      List.iter
        (fun m2 ->
          if Relset.disjoint m1 m2 then begin
            let union = Relset.union m1 m2 in
            if (not (List.mem union state.r_e)) && not (covered_in_rp state union)
            then add_candidate (Join_exec (m1, m2)) m1 m2
          end)
        rest;
      pairs rest
  in
  pairs state.r_e;
  (* A join plan whose result already exists (mask in R_e) or duplicates
     another plan's coverage is pointless — and executing duplicates would
     leave inner nodes unmaterialized behind the result cache. *)
  let union_useful ~consumed union =
    (not (List.mem union state.r_e))
    && not
         (List.exists
            (fun e ->
              (not (List.memq e consumed)) && Relset.equal (Expr.mask e) union)
            state.r_p)
  in
  let rec plan_pairs = function
    | [] -> ()
    | e1 :: rest ->
      List.iter
        (fun e2 ->
          if
            Relset.disjoint (Expr.mask e1) (Expr.mask e2)
            && union_useful ~consumed:[ e1; e2 ]
                 (Relset.union (Expr.mask e1) (Expr.mask e2))
          then
            add_candidate (Join_planned (e1, e2)) (Expr.mask e1) (Expr.mask e2))
        rest;
      plan_pairs rest
  in
  plan_pairs planned_joinable;
  List.iter
    (fun m ->
      List.iter
        (fun e ->
          if
            Relset.disjoint m (Expr.mask e)
            && union_useful ~consumed:[ e ] (Relset.union m (Expr.mask e))
          then add_candidate (Join_mixed (m, e)) m (Expr.mask e))
        planned_joinable)
    state.r_e;
  let connected_exists = List.exists snd !candidates in
  let joins =
    !candidates
    |> List.filter (fun (_, conn) -> conn || not connected_exists)
    |> List.map fst
  in
  let sigma_exec =
    state.r_e
    |> List.filter (fun m ->
           stats_useful ctx state m
           && not
                (List.exists
                   (fun e -> Expr.has_stats e && Relset.equal (Expr.mask e) m)
                   state.r_p))
    |> List.map (fun m -> Add_stats_of_exec m)
  in
  let sigma_wrap =
    planned_joinable
    |> List.filter (fun e -> stats_useful ctx state (Expr.mask e))
    |> List.map (fun e -> Wrap_stats e)
  in
  let execute = if state.r_p = [] then [] else [ Execute ] in
  (* Plan-sprawl cap: with two pending plans, only plan-modifying moves and
     EXECUTE are offered — materializing large sets of speculative
     subplans in one step is never useful and bloats the search space. *)
  let opens_new_plan = function
    | Add_stats_of_exec _ | Join_exec _ -> true
    | Wrap_stats _ | Join_planned _ | Join_mixed _ | Execute -> false
  in
  let all = joins @ sigma_exec @ sigma_wrap @ execute in
  if List.length state.r_p >= 2 then
    List.filter (fun a -> not (opens_new_plan a)) all
  else all

let remove_plan state e =
  List.filter (fun e' -> not (Expr.equal e e')) state.r_p

let apply_plan_edit state action =
  let r_p =
    match action with
    | Add_stats_of_exec m -> Expr.stats (Expr.leaf m) :: state.r_p
    | Wrap_stats e -> Expr.stats e :: remove_plan state e
    | Join_exec (m1, m2) -> Expr.join (Expr.leaf m1) (Expr.leaf m2) :: state.r_p
    | Join_planned (e1, e2) ->
      Expr.join e1 e2 :: remove_plan { state with r_p = remove_plan state e1 } e2
    | Join_mixed (m, e) -> Expr.join (Expr.leaf m) e :: remove_plan state e
    | Execute -> invalid_arg "Mdp.apply_plan_edit: Execute is not a plan edit"
  in
  { state with r_p = sort_plans r_p }

let executed_masks e =
  let inner = Expr.strip_stats e in
  let joins = List.map (fun (a, b) -> Relset.union a b) (Expr.join_nodes inner) in
  List.sort_uniq compare (Expr.mask inner :: joins)

let state_key state =
  let plans = String.concat ";" (List.map Expr.key state.r_p) in
  let execs = String.concat "," (List.map string_of_int state.r_e) in
  let counts =
    Stats_catalog.counts state.stats
    |> List.sort compare
    |> List.map (fun (m, c) -> Printf.sprintf "%d:%.4g" m c)
    |> String.concat ","
  in
  let dists =
    Stats_catalog.distincts state.stats
    |> List.sort compare
    |> List.map (fun (tm, scope, d) ->
           let s =
             match scope with
             | Stats_catalog.Wildcard -> "*"
             | Stats_catalog.For_pred p -> string_of_int p
             | Stats_catalog.For_select -> "s"
           in
           Printf.sprintf "%d@%s:%.4g" tm s d)
    |> String.concat ","
  in
  (* The version counter disambiguates overwrites that the %.4g renderings
     above collapse (same key, same printed value, different history). *)
  Printf.sprintf "P[%s]E[%s]C[%s]D[%s]V[%d]" plans execs counts dists
    (Stats_catalog.version state.stats)

let describe_mask ctx m =
  Expr.describe ctx.query (Expr.leaf m)

(* The one pretty-printer for actions: every rendering (driver trace,
   flight-recorder events, logs) goes through here. *)
let pp_action ctx fmt action =
  match action with
  | Add_stats_of_exec m ->
    Format.fprintf fmt "plan Σ(%s)" (describe_mask ctx m)
  | Wrap_stats e -> Format.fprintf fmt "wrap Σ(%s)" (Expr.describe ctx.query e)
  | Join_exec (m1, m2) ->
    Format.fprintf fmt "plan %s ⨝ %s" (describe_mask ctx m1)
      (describe_mask ctx m2)
  | Join_planned (e1, e2) ->
    Format.fprintf fmt "combine %s ⨝ %s" (Expr.describe ctx.query e1)
      (Expr.describe ctx.query e2)
  | Join_mixed (m, e) ->
    Format.fprintf fmt "attach %s ⨝ %s" (describe_mask ctx m)
      (Expr.describe ctx.query e)
  | Execute -> Format.pp_print_string fmt "EXECUTE"

let describe_action ctx action = Format.asprintf "%a" (pp_action ctx) action
