open Monsoon_util
open Monsoon_relalg
open Monsoon_stats

type t = { ctx : Mdp.ctx; prior_of : int -> Prior.t; rng : Rng.t }

let create_with ctx ~prior_of rng = { ctx; prior_of; rng }
let create ctx prior rng = create_with ctx ~prior_of:(fun _ -> prior) rng

(* Cost-model environment over a private statistics copy: lookups hit S
   first; missing distinct counts are sampled from the prior and memoized
   (scoped to their predicate) so one EXECUTE transition is internally
   consistent. *)
let env_over t stats =
  let q = t.ctx.Mdp.query in
  ignore q;
  { Cost_model.count_of = (fun mask -> Stats_catalog.count stats mask);
    raw_count = (fun i -> t.ctx.Mdp.raw_counts.(i));
    distinct_of =
      (fun ~term ~pred ~c_own ~c_partner ->
        let tid = term.Term.id in
        match Stats_catalog.distinct stats ~term:tid ~pred with
        | Some d -> d
        | None ->
          let d = Prior.sample (t.prior_of tid) t.rng ~c_own ~c_partner in
          let scope =
            match pred with
            | Some p -> Stats_catalog.For_pred p
            | None -> Stats_catalog.For_select
          in
          Stats_catalog.set_distinct stats ~term:tid ~scope d;
          d);
    record_count = (fun mask c -> Stats_catalog.set_count stats mask c) }

(* Cardinality of the natural join partner of a term, used to parameterize
   the prior when a Σ pass hardens a wildcard measurement: the other side of
   the first join predicate the term appears in, approximated by the product
   of its base instances' (filtered) sizes. *)
let partner_card t env stats tm =
  let q = t.ctx.Mdp.query in
  let partner_term =
    List.find_map
      (fun pid ->
        match Query.pred q pid with
        | Predicate.Join { left; right; _ } ->
          if left.Term.id = tm.Term.id then Some right
          else if right.Term.id = tm.Term.id then Some left
          else None
        | Predicate.Select _ -> None)
      (Query.preds_of_term q tm.Term.id)
  in
  match partner_term with
  | None -> None
  | Some pt ->
    ignore stats;
    let c =
      List.fold_left
        (fun acc i ->
          acc *. Cost_model.estimate q env (Expr.base i))
        1.0
        (Relset.to_list (Term.rels pt))
    in
    Some c

(* Σ-topped plans harden wildcard measurements into [stats], so that
   costing (and all later planning) sees them. Shared between the EXECUTE
   simulation and [predict_counts]. *)
let harden_sigma_into t env stats r_p =
  let q = t.ctx.Mdp.query in
  List.iter
    (fun e ->
      if Expr.has_stats e then begin
        let inner = Expr.strip_stats e in
        let c = Cost_model.estimate q env inner in
        List.iter
          (fun tm ->
            if not (Stats_catalog.has_measurement stats ~term:tm.Term.id) then begin
              let c_partner = partner_card t env stats tm in
              let d =
                Cost_model.clamp_distinct ~c_own:c
                  (Prior.sample (t.prior_of tm.Term.id) t.rng ~c_own:c ~c_partner)
              in
              Stats_catalog.set_distinct stats ~term:tm.Term.id
                ~scope:Stats_catalog.Wildcard d
            end)
          (Query.interesting_terms q (Expr.mask inner))
      end)
    r_p

let simulate_execute t (state : Mdp.state) =
  let q = t.ctx.Mdp.query in
  let stats = Stats_catalog.copy state.Mdp.stats in
  let env = env_over t stats in
  (* Phase 1: Σ-topped plans harden wildcard measurements, so that costing
     in phase 2 (and all later planning) sees them. *)
  harden_sigma_into t env stats state.Mdp.r_p;
  (* Phase 2: cost every planned expression; estimates are memoized into the
     statistics copy, hardening result counts. *)
  let total =
    List.fold_left (fun acc e -> acc +. Cost_model.cost q env e) 0.0 state.Mdp.r_p
  in
  (* Only masks whose counts actually hardened become materialized: when two
     plans overlap, nodes short-circuited by an already-known result count
     (step 1) were never generated. *)
  let new_masks =
    List.concat_map Mdp.executed_masks state.Mdp.r_p
    |> List.filter (fun m ->
           Relset.cardinal m = 1 || Stats_catalog.count stats m <> None)
  in
  let r_e = List.sort_uniq compare (new_masks @ state.Mdp.r_e) in
  ({ Mdp.r_p = []; r_e; stats }, -.total)

(* Mirror of [simulate_execute]'s estimation pass that reports, instead of
   hiding, the sampled cardinalities: every mask whose count the model had
   to compute (i.e. was not already hardened in S) is returned with its
   predicted count. These are the plan-time predictions the flight recorder
   compares against the executor's observations. *)
let predict_counts t (state : Mdp.state) =
  let stats = Stats_catalog.copy state.Mdp.stats in
  let base = env_over t stats in
  let captured = ref [] in
  let env =
    { base with
      Cost_model.record_count =
        (fun mask c ->
          if not (List.mem_assoc mask !captured) then
            captured := (mask, c) :: !captured;
          base.Cost_model.record_count mask c) }
  in
  harden_sigma_into t env stats state.Mdp.r_p;
  List.iter
    (fun e ->
      ignore (Cost_model.estimate t.ctx.Mdp.query env (Expr.strip_stats e)))
    state.Mdp.r_p;
  List.rev !captured

let step t state action =
  match action with
  | Mdp.Execute -> simulate_execute t state
  | Mdp.Add_stats_of_exec _ | Mdp.Wrap_stats _ | Mdp.Join_exec _
  | Mdp.Join_planned _ | Mdp.Join_mixed _ ->
    (Mdp.apply_plan_edit state action, 0.0)

(* Rollout policy: when a plan is pending, execute it half the time instead
   of wandering through more plan edits. This keeps simulations short and
   makes the value of "EXECUTE now" sharply visible; below the bias,
   actions stay uniformly random. *)
let rollout_policy rng _state acts =
  if List.mem Mdp.Execute acts && Rng.bool rng then Mdp.Execute
  else List.nth acts (Rng.int rng (List.length acts))

let problem t =
  { Monsoon_mcts.Mcts.actions = (fun s -> Mdp.legal_actions t.ctx s);
    step = (fun s a -> step t s a);
    is_terminal = (fun s -> Mdp.is_terminal t.ctx s);
    key = Mdp.state_key;
    rollout_policy = Some rollout_policy }

let expected_execute_cost t state ~n =
  let acc = ref 0.0 in
  for _ = 1 to n do
    let _, r = simulate_execute t state in
    acc := !acc -. r
  done;
  !acc /. float_of_int n
