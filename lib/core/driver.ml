open Monsoon_util
open Monsoon_relalg
open Monsoon_stats
open Monsoon_exec
open Monsoon_telemetry

type config = {
  prior : Prior.t;
  prior_of : (int -> Prior.t) option;
  known_distincts : (int * float) list;
  mcts : Monsoon_mcts.Mcts.config;
  budget : float;
  max_steps : int;
  verbose : bool;
}

let default_config ~rng =
  { prior = Prior.spike_and_slab;
    prior_of = None;
    known_distincts = [];
    mcts = Monsoon_mcts.Mcts.default_config ~rng;
    budget = 5e7;
    max_steps = 200;
    verbose = false }

type outcome = {
  cost : float;
  timed_out : bool;
  wall : float;
  mcts_time : float;
  stats_cost : float;
  exec_cost : float;
  executes : int;
  actions : string list;
  result_card : float;
}

let src = Logs.Src.create "monsoon.driver" ~doc:"Monsoon optimizer driver"

module Log = (val Logs.src_log src : Logs.LOG)

(* Fold one EXECUTE step's observations into the real statistics set. *)
let absorb_observations stats (obs : Executor.stat_obs) =
  List.iter (fun (m, c) -> Stats_catalog.set_count stats m c)
    obs.Executor.obs_counts;
  List.iter
    (fun (tm, d) ->
      Stats_catalog.set_distinct stats ~term:tm ~scope:Stats_catalog.Wildcard d)
    obs.Executor.obs_distincts

let run ?telemetry config catalog query =
  let tel = match telemetry with Some t -> t | None -> Ctx.null () in
  (* The Table-8 component breakdown is derived from the shared telemetry
     registry rather than private accumulators. Counters persist across
     queries on a shared context, so each run reads deltas against the
     values captured here. *)
  let c_mcts = Ctx.counter tel "driver.mcts_seconds" in
  let c_replans = Ctx.counter tel "driver.replans" in
  let c_executes = Ctx.counter tel "driver.executes" in
  let c_sigma = Ctx.counter tel "exec.sigma_objects" in
  let base_mcts = Metric.Counter.value c_mcts in
  let base_executes = Metric.Counter.value c_executes in
  let base_sigma = Metric.Counter.value c_sigma in
  Ctx.with_span tel "driver.run"
    ~attrs:[ ("query", Span.Str (Query.name query)) ]
  @@ fun run_span ->
  let t0 = Timer.now () in
  let ctx = Mdp.make_ctx catalog query in
  let exec =
    Executor.create ~telemetry:tel catalog query (Executor.budget config.budget)
  in
  let total_cost = ref 0.0 in
  let trace = ref [] in
  let finish ~timed_out state =
    let result_card =
      if timed_out then 0.0
      else
        match Executor.materialized exec (Query.all_mask query) with
        | Some inter -> float_of_int (Intermediate.cardinality inter)
        | None -> 0.0
    in
    ignore state;
    let stats_cost = Metric.Counter.value c_sigma -. base_sigma in
    let executes =
      int_of_float (Metric.Counter.value c_executes -. base_executes)
    in
    Span.set_attr run_span "timed_out" (Span.Bool timed_out);
    Span.set_attr run_span "cost" (Span.Float !total_cost);
    Span.set_attr run_span "executes" (Span.Int executes);
    { cost = !total_cost;
      timed_out;
      wall = Timer.now () -. t0;
      mcts_time = Metric.Counter.value c_mcts -. base_mcts;
      stats_cost;
      exec_cost = !total_cost -. stats_cost;
      executes;
      actions = List.rev !trace;
      result_card }
  in
  (* Degenerate single-instance queries have no join-order problem: just
     run the filtered scan. *)
  if Query.n_rels query <= 1 then begin
    match Executor.execute exec (Expr.base 0) with
    | exception Executor.Timeout -> finish ~timed_out:true (Mdp.init_state ctx)
    | _c, _obs -> finish ~timed_out:false (Mdp.init_state ctx)
  end
  else begin
    let sim =
      match config.prior_of with
      | Some prior_of ->
        Simulator.create_with ctx ~prior_of config.mcts.Monsoon_mcts.Mcts.rng
      | None -> Simulator.create ctx config.prior config.mcts.Monsoon_mcts.Mcts.rng
    in
    let problem = Simulator.problem sim in
    let rec loop state steps =
      if Mdp.is_terminal ctx state then finish ~timed_out:false state
      else if steps >= config.max_steps then begin
        Log.warn (fun m ->
            m "query %s: step limit reached before completion" (Query.name query));
        finish ~timed_out:true state
      end
      else begin
        let planned, mcts_dt =
          Timer.time (fun () ->
              Monsoon_mcts.Mcts.plan ~telemetry:tel config.mcts problem state)
        in
        Metric.Counter.add c_mcts mcts_dt;
        Metric.Counter.inc c_replans;
        match planned with
        | None -> finish ~timed_out:false state
        | Some (action, _stats) ->
          trace := Mdp.describe_action ctx action :: !trace;
          if config.verbose then
            Log.info (fun m ->
                m "query %s: %s" (Query.name query) (Mdp.describe_action ctx action));
          (match action with
          | Mdp.Execute -> (
            Metric.Counter.inc c_executes;
            match
              Ctx.with_span tel "driver.execute"
                ~attrs:[ ("step", Span.Int steps) ]
              @@ fun _ ->
              List.fold_left
                (fun acc e ->
                  let c, obs = Executor.execute exec e in
                  absorb_observations state.Mdp.stats obs;
                  acc +. c)
                0.0 state.Mdp.r_p
            with
            | exception Executor.Timeout -> finish ~timed_out:true state
            | c ->
              total_cost := !total_cost +. c;
              (* Only masks the executor actually materialized (and whose
                 counts were therefore observed) become part of R_e: a plan
                 overlapping an earlier one is served from the cache above
                 its unexecuted inner nodes. *)
              let new_masks =
                List.concat_map Mdp.executed_masks state.Mdp.r_p
                |> List.filter (fun m ->
                       Relset.cardinal m = 1
                       || Stats_catalog.count state.Mdp.stats m <> None)
              in
              let r_e =
                List.sort_uniq compare (new_masks @ state.Mdp.r_e)
              in
              loop { state with Mdp.r_p = []; r_e } (steps + 1))
          | Mdp.Add_stats_of_exec _ | Mdp.Wrap_stats _ | Mdp.Join_exec _
          | Mdp.Join_planned _ | Mdp.Join_mixed _ ->
            loop (Mdp.apply_plan_edit state action) (steps + 1))
      end
    in
    let init = Mdp.init_state ctx in
    List.iter
      (fun (term, d) ->
        Stats_catalog.set_distinct init.Mdp.stats ~term
          ~scope:Stats_catalog.Wildcard d)
      config.known_distincts;
    loop init 0
  end
