open Monsoon_util
open Monsoon_relalg
open Monsoon_stats
open Monsoon_exec
open Monsoon_telemetry
module Stats_repo = Monsoon_stats_repo.Stats_repo

type config = {
  prior : Prior.t;
  prior_of : (int -> Prior.t) option;
  known_distincts : (int * float) list;
  mcts : Monsoon_mcts.Mcts.config;
  mcts_workers : int;
  budget : float;
  max_steps : int;
}

let default_config ~rng =
  { prior = Prior.spike_and_slab;
    prior_of = None;
    known_distincts = [];
    mcts = Monsoon_mcts.Mcts.default_config ~rng;
    mcts_workers = 1;
    budget = 5e7;
    max_steps = 200 }

type outcome = {
  cost : float;
  timed_out : bool;
  wall : float;
  mcts_time : float;
  stats_cost : float;
  exec_cost : float;
  executes : int;
  degraded : int;
  actions : string list;
  result_card : float;
}

let selection_name = function
  | Monsoon_mcts.Mcts.Uct w -> Printf.sprintf "uct(w=%.3g)" w
  | Monsoon_mcts.Mcts.Epsilon_greedy -> "eps-greedy"

(* Fold one EXECUTE step's observations into the real statistics set,
   mirroring each hardened statistic into the flight recorder. *)
let absorb_observations ~recorder ~step query stats (obs : Executor.stat_obs) =
  List.iter
    (fun (m, c) ->
      Stats_catalog.set_count stats m c;
      if Recorder.enabled recorder then
        Recorder.record recorder
          (Recorder.Stat_observed
             { step;
               subject = Recorder.Count m;
               pretty = Expr.describe query (Expr.leaf m);
               value = c }))
    obs.Executor.obs_counts;
  List.iter
    (fun (tm, d) ->
      Stats_catalog.set_distinct stats ~term:tm ~scope:Stats_catalog.Wildcard d;
      if Recorder.enabled recorder then
        Recorder.record recorder
          (Recorder.Stat_observed
             { step;
               subject = Recorder.Distinct tm;
               pretty = Term.describe (Query.term query tm);
               value = d }))
    obs.Executor.obs_distincts

(* Pre-order flight-recorder rows for one executed plan: observed
   cardinalities come from what the executor materialized this call
   ([obs_nodes]; the statistics catalog serves cache-hit nodes), predictions
   from the plan-time [Simulator.predict_counts] pass. A mask whose count
   was already measured at plan time has no prediction and hence no
   q-error. *)
let exec_nodes query stats ~predictions ~obs_nodes ~profiles expr =
  let profile_of e =
    match List.find_opt (fun (e', _) -> Expr.equal e' e) profiles with
    | Some (_, p) -> Some p
    | None -> None
  in
  let rec go depth e acc =
    match e with
    | Expr.Stats inner ->
      (* Σ passes take no part in the prediction/observation join, but a
         profiled run still gets their operator row — without a profile
         the walk stays exactly as before, so unprofiled records are
         byte-identical to older ones. *)
      let acc =
        match profile_of e with
        | None -> acc
        | Some p ->
          { Recorder.node_expr = Expr.describe query e;
            node_mask = Expr.mask e;
            node_depth = depth;
            node_predicted = None;
            node_observed = Some p.Recorder.p_rows_out;
            node_q_error = None;
            node_profile = Some p }
          :: acc
      in
      go depth inner acc
    | Expr.Leaf _ | Expr.Join _ ->
      let m = Expr.mask e in
      let observed =
        match List.find_opt (fun (e', _) -> Expr.equal e' e) obs_nodes with
        | Some (_, c) -> Some c
        | None -> Stats_catalog.count stats m
      in
      let predicted = List.assoc_opt m predictions in
      let q_error =
        match (predicted, observed) with
        | Some p, Some o -> Some (Recorder.q_error ~predicted:p ~observed:o)
        | _ -> None
      in
      let node =
        { Recorder.node_expr = Expr.describe query e;
          node_mask = m;
          node_depth = depth;
          node_predicted = predicted;
          node_observed = observed;
          node_q_error = q_error;
          node_profile = profile_of e }
      in
      let acc = node :: acc in
      (match e with
      | Expr.Join (a, b) -> go (depth + 1) b (go (depth + 1) a acc)
      | _ -> acc)
  in
  List.rev (go 0 expr [])

let run ?(env = Env.default) config catalog query =
  let tel = Ctx.of_env env in
  let env = Ctx.to_env ~env tel in
  let deadline = Env.deadline env in
  let recorder = Ctx.recorder tel in
  (* The Table-8 component breakdown comes from per-run accumulators; the
     shared registry counters are incremented in lockstep for dashboards
     but never read back, so concurrent runs on one context (the parallel
     harness) cannot bleed into each other's outcomes. *)
  let c_mcts = Ctx.counter tel "driver.mcts_seconds" in
  let c_replans = Ctx.counter tel "driver.replans" in
  let c_executes = Ctx.counter tel "driver.executes" in
  let c_steps = Ctx.counter tel "driver.steps" in
  let c_degraded = Ctx.counter tel "driver.degraded" in
  let h_qerr = Ctx.histogram tel "driver.q_error" in
  let h_replans = Ctx.histogram tel "driver.replans_per_query" in
  let run_mcts = ref 0.0 in
  let run_replans = ref 0 in
  let run_executes = ref 0 in
  let run_steps = ref 0 in
  let run_degraded = ref 0 in
  Ctx.with_span tel "driver.run"
    ~attrs:[ ("query", Span.Str (Query.name query)) ]
  @@ fun run_span ->
  let t0 = Timer.now () in
  let ctx = Mdp.make_ctx catalog query in
  let exec = Executor.create ~env catalog query (Executor.budget config.budget) in
  (* One batch of profile nodes per Executed event: drain picks up exactly
     what the executor recorded since the previous drain, keyed by plan
     expression for the [exec_nodes] join. With no packed collector the
     drain is the empty list and every record stays byte-identical. *)
  let prof = Executor.profile exec in
  let drain_profiles () =
    List.map
      (fun (n : Profile.node) -> (n.Profile.n_expr, Profile.to_recorder n))
      (Profile.drain prof)
  in
  (* Cross-query statistics repository: resolve every warm-start answer up
     front — before any planning RNG is created or drawn — so a missing or
     empty repository leaves the run byte-identical to a repository-free
     build, and a populated one only changes what the init state knows. *)
  let repo = Stats_repo.of_env env in
  let warm_known = ref [] in
  let warm_priors = ref [] in
  (match repo with
  | None -> ()
  | Some r ->
    let c_lookups = Ctx.counter tel "repo.lookups" in
    let c_hits = Ctx.counter tel "repo.hits" in
    List.iter
      (fun (tm : Term.t) ->
        Metric.Counter.inc c_lookups;
        match Stats_repo.lookup_distinct r ~query ~term:tm with
        | Stats_repo.Cold -> ()
        | Stats_repo.Known d ->
          Metric.Counter.inc c_hits;
          (* Caller-supplied known distincts win over history. *)
          if not (List.mem_assoc tm.Term.id config.known_distincts) then
            warm_known := (tm.Term.id, d) :: !warm_known
        | Stats_repo.Hint p ->
          Metric.Counter.inc c_hits;
          warm_priors := (tm.Term.id, p) :: !warm_priors)
      (Query.interesting_terms query (Query.all_mask query)));
  (* Terms whose Wildcard entry is a seed, not a measurement: excluded from
     the end-of-query flush so the repository never re-absorbs its own
     answers (or the caller's assumptions) as fresh observations. *)
  let seeded = List.map fst config.known_distincts @ List.map fst !warm_known in
  (* The cell deadline also bounds the planner, unless the caller already
     set a tighter one on the MCTS config itself. *)
  let mcts_cfg =
    if Deadline.is_none config.mcts.Monsoon_mcts.Mcts.deadline then
      { config.mcts with Monsoon_mcts.Mcts.deadline }
    else config.mcts
  in
  let total_cost = ref 0.0 in
  let trace = ref [] in
  let record_start state =
    if Recorder.enabled recorder then
      Recorder.record recorder
        (Recorder.Query_start
           { query = Query.name query;
             n_rels = Query.n_rels query;
             state_key = Mdp.state_key state })
  in
  let finish ~timed_out state =
    let result_card =
      if timed_out then 0.0
      else
        match Executor.materialized exec (Query.all_mask query) with
        | Some inter -> float_of_int (Intermediate.cardinality inter)
        | None -> 0.0
    in
    (* The Query_finish repository hook: flush what this run genuinely
       measured. Counts come from the hardened catalog, distincts exclude
       warm-start / known-distinct seeds, UDF observations come straight
       from the executor's accumulator. *)
    (match repo with
    | None -> ()
    | Some r ->
      let measured =
        Stats_catalog.distincts state.Mdp.stats
        |> List.filter_map (fun (tm, scope, d) ->
               match scope with
               | Stats_catalog.Wildcard when not (List.mem tm seeded) ->
                 Some (tm, d)
               | _ -> None)
      in
      let wrote =
        Stats_repo.flush_query r ~query
          ~counts:(Stats_catalog.counts state.Mdp.stats)
          ~distincts:measured
          ~udf:(Executor.udf_observations exec)
      in
      Metric.Counter.inc (Ctx.counter tel "repo.flushes");
      Metric.Counter.add
        (Ctx.counter tel "repo.entries_written")
        (float_of_int wrote));
    let stats_cost = Executor.sigma_objects exec in
    let executes = !run_executes in
    let steps_taken = !run_steps in
    Metric.Histogram.observe h_replans (float_of_int !run_replans);
    Recorder.record recorder
      (Recorder.Query_finish
         { steps = steps_taken; cost = !total_cost; timed_out; result_card });
    Ctx.flush tel;
    Span.set_attr run_span "timed_out" (Span.Bool timed_out);
    Span.set_attr run_span "cost" (Span.Float !total_cost);
    Span.set_attr run_span "executes" (Span.Int executes);
    { cost = !total_cost;
      timed_out;
      wall = Timer.now () -. t0;
      mcts_time = !run_mcts;
      stats_cost;
      exec_cost = !total_cost -. stats_cost;
      executes;
      degraded = !run_degraded;
      actions = List.rev !trace;
      result_card }
  in
  (* Degenerate single-instance queries have no join-order problem: just
     run the filtered scan. *)
  if Query.n_rels query <= 1 then begin
    record_start (Mdp.init_state ctx);
    match Executor.execute exec (Expr.base 0) with
    | exception Executor.Timeout ->
      Recorder.record recorder
        (Recorder.Executed { step = 0; nodes = []; cost = 0.0; timed_out = true });
      finish ~timed_out:true (Mdp.init_state ctx)
    | exception Deadline.Expired ->
      Recorder.record recorder
        (Recorder.Note { step = 0; message = "deadline expired mid-scan" });
      finish ~timed_out:true (Mdp.init_state ctx)
    | c, obs ->
      if Recorder.enabled recorder then
        Recorder.record recorder
          (Recorder.Executed
             { step = 0;
               nodes =
                 exec_nodes query (Stats_catalog.create ()) ~predictions:[]
                   ~obs_nodes:obs.Executor.obs_nodes
                   ~profiles:(drain_profiles ()) (Expr.base 0);
               cost = c;
               timed_out = false });
      finish ~timed_out:false (Mdp.init_state ctx)
  end
  else begin
    let sim_rng = config.mcts.Monsoon_mcts.Mcts.rng in
    (* Repository Hint priors override the configured family per term; with
       no hints this is exactly the old [config.prior_of] dispatch, so a
       repository-free run constructs the very same simulators. *)
    let prior_of_effective =
      match (!warm_priors, config.prior_of) with
      | [], base -> base
      | hints, base ->
        Some
          (fun tid ->
            match List.assoc_opt tid hints with
            | Some p -> p
            | None -> (
              match base with Some f -> f tid | None -> config.prior))
    in
    let make_sim rng =
      match prior_of_effective with
      | Some prior_of -> Simulator.create_with ctx ~prior_of rng
      | None -> Simulator.create ctx config.prior rng
    in
    let sim = make_sim sim_rng in
    (* The predictor samples the prior to price each EXECUTE before it runs;
       it draws from a private split of the planning rng so recording
       predictions never perturbs the MCTS random stream. *)
    let predictor = make_sim (Rng.split (Rng.copy sim_rng)) in
    let problem = Simulator.problem sim in
    let rec loop state steps =
      if Mdp.is_terminal ctx state then finish ~timed_out:false state
      else if steps >= config.max_steps then begin
        Recorder.record recorder
          (Recorder.Note
             { step = steps; message = "step limit reached before completion" });
        finish ~timed_out:true state
      end
      else if Deadline.expired deadline then begin
        (* The planner returns early (and the executor raises) under an
           expired token; this check keeps plan-edit-only step chains from
           spinning through the remaining step budget. *)
        Recorder.record recorder
          (Recorder.Note { step = steps; message = "deadline expired" });
        finish ~timed_out:true state
      end
      else begin
        let planned, mcts_dt =
          Timer.time (fun () ->
              Monsoon_mcts.Mcts.plan ~env ~workers:config.mcts_workers
                ~problem_of:(fun rng -> Simulator.problem (make_sim rng))
                mcts_cfg problem state)
        in
        Metric.Counter.add c_mcts mcts_dt;
        Metric.Counter.inc c_replans;
        run_mcts := !run_mcts +. mcts_dt;
        incr run_replans;
        match planned with
        | None -> finish ~timed_out:false state
        | Some (action, mstats) ->
          Metric.Counter.inc c_steps;
          incr run_steps;
          trace := Mdp.describe_action ctx action :: !trace;
          if Recorder.enabled recorder then
            Recorder.record recorder
              (Recorder.Decision
                 { step = steps;
                   state_key = Mdp.state_key state;
                   legal_actions = List.length (Mdp.legal_actions ctx state);
                   chosen = Mdp.describe_action ctx action;
                   selection =
                     selection_name config.mcts.Monsoon_mcts.Mcts.selection;
                   root_visits = mstats.Monsoon_mcts.Mcts.root_visits;
                   plan_seconds = mcts_dt;
                   candidates =
                     List.map
                       (fun (c : _ Monsoon_mcts.Mcts.candidate) ->
                         { Recorder.cand_action =
                             Mdp.describe_action ctx
                               c.Monsoon_mcts.Mcts.cand_action;
                           cand_visits = c.Monsoon_mcts.Mcts.cand_visits;
                           cand_mean = c.Monsoon_mcts.Mcts.cand_mean })
                       mstats.Monsoon_mcts.Mcts.candidates });
          (match action with
          | Mdp.Execute -> (
            Metric.Counter.inc c_executes;
            incr run_executes;
            let predictions = Simulator.predict_counts predictor state in
            let all_obs_nodes = ref [] in
            match
              Ctx.with_span tel "driver.execute"
                ~attrs:[ ("step", Span.Int steps) ]
              @@ fun _ ->
              List.fold_left
                (fun acc e ->
                  let c, obs = Executor.execute exec e in
                  absorb_observations ~recorder ~step:steps query
                    state.Mdp.stats obs;
                  all_obs_nodes := !all_obs_nodes @ obs.Executor.obs_nodes;
                  acc +. c)
                0.0 state.Mdp.r_p
            with
            | exception Executor.Timeout ->
              (* Mid-plan death: nodes completed before the budget ran out
                 were already absorbed into S, so the catalog fallback in
                 [exec_nodes] still attributes their observed counts. *)
              if Recorder.enabled recorder then begin
                let profiles = drain_profiles () in
                Recorder.record recorder
                  (Recorder.Executed
                     { step = steps;
                       nodes =
                         List.concat_map
                           (exec_nodes query state.Mdp.stats ~predictions
                              ~obs_nodes:!all_obs_nodes ~profiles)
                           state.Mdp.r_p;
                       cost = 0.0;
                       timed_out = true })
              end;
              finish ~timed_out:true state
            | exception Deadline.Expired ->
              Recorder.record recorder
                (Recorder.Note
                   { step = steps; message = "deadline expired mid-execute" });
              finish ~timed_out:true state
            | exception Fault.Injected reason -> (
              (* Degradation ladder: the planned EXECUTE died to a fault, so
                 fall back to the classical left-deep plan over all instances
                 — it reuses every intermediate the executor already cached.
                 If the fallback faults too, re-raise and let the harness
                 retry the whole cell. *)
              Metric.Counter.inc c_degraded;
              incr run_degraded;
              (* The aborted attempt's profile nodes have no Executed event
                 to ride on; drop them so the degraded plan's event carries
                 only its own operators. *)
              ignore (Profile.drain prof);
              let fallback =
                List.fold_left
                  (fun acc i -> Expr.join acc (Expr.base i))
                  (Expr.base 0)
                  (List.init (Query.n_rels query - 1) (fun i -> i + 1))
              in
              Recorder.record recorder
                (Recorder.Degraded
                   { step = steps;
                     reason;
                     fallback = Expr.describe query fallback });
              match
                Ctx.with_span tel "driver.degrade"
                  ~attrs:
                    [ ("step", Span.Int steps); ("reason", Span.Str reason) ]
                @@ fun _ -> Executor.execute exec fallback
              with
              | exception Executor.Timeout ->
                Recorder.record recorder
                  (Recorder.Executed
                     { step = steps; nodes = []; cost = 0.0; timed_out = true });
                finish ~timed_out:true state
              | exception Deadline.Expired ->
                Recorder.record recorder
                  (Recorder.Note
                     { step = steps;
                       message = "deadline expired during degraded execute" });
                finish ~timed_out:true state
              | exception Fault.Injected r2 ->
                Recorder.record recorder
                  (Recorder.Note
                     { step = steps;
                       message = "fallback plan also faulted: " ^ r2 });
                raise (Fault.Injected r2)
              | c, obs ->
                absorb_observations ~recorder ~step:steps query state.Mdp.stats
                  obs;
                total_cost := !total_cost +. c;
                if Recorder.enabled recorder then
                  Recorder.record recorder
                    (Recorder.Executed
                       { step = steps;
                         nodes =
                           exec_nodes query state.Mdp.stats ~predictions
                             ~obs_nodes:obs.Executor.obs_nodes
                             ~profiles:(drain_profiles ()) fallback;
                         cost = c;
                         timed_out = false });
                finish ~timed_out:false state)
            | c ->
              total_cost := !total_cost +. c;
              let profiles = drain_profiles () in
              let nodes =
                List.concat_map
                  (exec_nodes query state.Mdp.stats ~predictions
                     ~obs_nodes:!all_obs_nodes ~profiles)
                  state.Mdp.r_p
              in
              List.iter
                (fun (n : Recorder.exec_node) ->
                  match n.Recorder.node_q_error with
                  | Some q -> Metric.Histogram.observe h_qerr q
                  | None -> ())
                nodes;
              if Recorder.enabled recorder then
                Recorder.record recorder
                  (Recorder.Executed
                     { step = steps; nodes; cost = c; timed_out = false });
              (* Only masks the executor actually materialized (and whose
                 counts were therefore observed) become part of R_e: a plan
                 overlapping an earlier one is served from the cache above
                 its unexecuted inner nodes. *)
              let new_masks =
                List.concat_map Mdp.executed_masks state.Mdp.r_p
                |> List.filter (fun m ->
                       Relset.cardinal m = 1
                       || Stats_catalog.count state.Mdp.stats m <> None)
              in
              let r_e =
                List.sort_uniq compare (new_masks @ state.Mdp.r_e)
              in
              loop { state with Mdp.r_p = []; r_e } (steps + 1))
          | Mdp.Add_stats_of_exec _ | Mdp.Wrap_stats _ | Mdp.Join_exec _
          | Mdp.Join_planned _ | Mdp.Join_mixed _ ->
            loop (Mdp.apply_plan_edit state action) (steps + 1))
      end
    in
    let init = Mdp.init_state ctx in
    List.iter
      (fun (term, d) ->
        Stats_catalog.set_distinct init.Mdp.stats ~term
          ~scope:Stats_catalog.Wildcard d)
      config.known_distincts;
    (* Warm start: tight history behaves exactly like a caller-known
       distinct — the Σ action for the term is pruned by [stats_useful]
       and the paid pass becomes a lookup. *)
    (match !warm_known with
    | [] -> ()
    | ks ->
      let c_warm = Ctx.counter tel "repo.warm_starts" in
      List.iter
        (fun (term, d) ->
          Metric.Counter.inc c_warm;
          Stats_catalog.set_distinct init.Mdp.stats ~term
            ~scope:Stats_catalog.Wildcard d)
        (List.rev ks));
    record_start init;
    loop init 0
  end
