(** The Monsoon optimizer proper (paper Sec 5.3): interleaved MCTS planning
    and real execution.

    From the initial state, MCTS (over the {!Simulator} model seeded with
    the current observed statistics) picks one action at a time. Plan edits
    update the state directly; EXECUTE runs every planned expression on the
    engine, feeds the measured result counts and Σ distinct counts back into
    the statistics set, and planning resumes. The loop ends when the
    complete query has been materialized or the budget is exhausted. *)

open Monsoon_storage
open Monsoon_relalg
open Monsoon_stats

type config = {
  prior : Prior.t;
  prior_of : (int -> Prior.t) option;
      (** per-term (tailored) priors override [prior] when given; the paper
          notes data-set-specific priors "would possibly outperform a
          generic prior" *)
  known_distincts : (int * float) list;
      (** statistics available up front (term id → distinct count): the
          paper initializes the problem with any known statistics *)
  mcts : Monsoon_mcts.Mcts.config;
  mcts_workers : int;
      (** root-parallel MCTS width: [> 1] plans each step with that many
          independent trees on separate domains (each on its own simulator
          replica and split RNG stream), pooling root statistics before the
          choice. 1 = sequential planning (the default). *)
  budget : float;  (** tuple budget standing in for the paper's 20-min timeout *)
  max_steps : int;  (** safety valve on the number of MDP actions *)
}

val default_config : rng:Monsoon_util.Rng.t -> config
(** Spike-and-slab prior, default MCTS, 1 MCTS worker, budget 5e7,
    200 steps. *)

type outcome = {
  cost : float;  (** intermediate objects charged (the paper's cost) *)
  timed_out : bool;
  wall : float;  (** end-to-end seconds *)
  mcts_time : float;  (** planning seconds (Table 8 "MCTS") *)
  stats_cost : float;  (** Σ-pass objects (Table 8 "Σ") *)
  exec_cost : float;  (** join objects (Table 8 "Execution") *)
  executes : int;  (** number of EXECUTE transitions taken *)
  degraded : int;
      (** EXECUTE steps that died to a fault and fell back to the
          left-deep plan *)
  actions : string list;  (** the action trace, for inspection *)
  result_card : float;  (** cardinality of the final result; 0 on timeout *)
}

val run :
  ?env:Monsoon_util.Env.t ->
  config -> Catalog.t -> Query.t -> outcome
(** The environment carries the telemetry context, the fault plan threaded
    into the executor (an EXECUTE step killed by an injected fault degrades
    to the classical left-deep plan — a [Degraded] recorder event +
    [driver.degraded] — instead of crashing the run), and the cooperative
    wall-clock deadline for the whole run (checked between MDP steps, per
    executor plan node, and between MCTS iterations unless
    [mcts.deadline] is already set; expiry yields a normal timed-out
    outcome).

    With a packed context, the run emits a [driver.run] root span (with
    [query] / [timed_out] / [cost] / [executes] attributes), a
    [driver.execute] span per EXECUTE step, and bumps [driver.replans] /
    [driver.executes] / [driver.mcts_seconds] / [driver.steps] counters
    plus the [driver.q_error] (per-node cardinality error factor) and
    [driver.replans_per_query] histograms; the context is threaded into
    {!Monsoon_exec.Executor} and MCTS planning. The [outcome] component
    breakdown ([mcts_time], [stats_cost], [executes]) is derived from
    counter deltas over the run, so a context shared across queries stays
    consistent.

    When the context carries an enabled {!Monsoon_telemetry.Recorder.t}
    (attach one with {!Monsoon_telemetry.Ctx.with_recorder}), the run
    additionally captures its
    full decision trajectory: [Query_start], one [Decision] per chosen
    action (state fingerprint, legal-action count, MCTS root statistics of
    every candidate), one [Executed] per EXECUTE with per-node predicted vs
    observed cardinalities and q-errors, one [Stat_observed] per statistic
    hardened into the catalog, and [Query_finish]. Predictions are sampled
    from a private split of the planning rng, so recording never perturbs
    the optimizer's random stream. Default: a null recorder — the
    instrumented paths reduce to one branch per event. *)
