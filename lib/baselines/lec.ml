open Monsoon_util
open Monsoon_storage
open Monsoon_relalg
open Monsoon_stats

(* One sampled statistics environment: every unknown distinct count resolves
   to a prior draw, memoized per (term, predicate) so the sample is
   internally consistent; result counts memoize per mask as usual. *)
let sampled_env rng prior catalog q =
  let raw =
    Array.map
      (fun r -> float_of_int (Table.cardinality (Catalog.find catalog r.Query.table)))
      (Query.rels q)
  in
  let counts = Hashtbl.create 32 in
  let distincts : (int * int option, float) Hashtbl.t = Hashtbl.create 16 in
  { Cost_model.count_of = (fun mask -> Hashtbl.find_opt counts mask);
    raw_count = (fun i -> raw.(i));
    distinct_of =
      (fun ~term ~pred ~c_own ~c_partner ->
        let key = (term.Term.id, pred) in
        match Hashtbl.find_opt distincts key with
        | Some d -> d
        | None ->
          let d = Prior.sample prior rng ~c_own ~c_partner in
          Hashtbl.replace distincts key d;
          d);
    record_count = (fun mask c -> Hashtbl.replace counts mask c) }

let choose_plan ?(k = 12) ?(k2 = 40) ~rng ~prior catalog q =
  (* Candidate generation: the optimal plan under each of k sampled
     worlds. *)
  let candidates = Hashtbl.create 8 in
  for _ = 1 to k do
    let plan = Planner.best_plan q (sampled_env rng prior catalog q) in
    Hashtbl.replace candidates (Expr.key plan) plan
  done;
  (* Scoring: common random numbers — every candidate is costed under the
     same k2 fresh worlds. *)
  let worlds = Array.init k2 (fun _ -> sampled_env rng prior catalog q) in
  let expected_cost plan =
    Array.fold_left (fun acc env -> acc +. Cost_model.cost q env plan) 0.0 worlds
    /. float_of_int k2
  in
  Hashtbl.fold (fun _ plan acc -> plan :: acc) candidates []
  |> List.map (fun p -> (p, expected_cost p))
  |> List.sort (fun (_, a) (_, b) -> compare a b)
  |> function
  | (best, _) :: _ -> best
  | [] -> invalid_arg "Lec.choose_plan: no candidates"

let strategy prior =
  { Strategy.name = "LEC";
    applicable = (fun _ -> true);
    run =
      (fun ?env ~rng ~budget catalog q ->
        let t0 = Timer.now () in
        let plan, plan_time =
          Timer.time (fun () -> choose_plan ~rng ~prior catalog q)
        in
        Strategy.execute_plan ?env ~t0 ~plan_time
          ~stats_cost:0.0 ~budget catalog q plan) }
