open Monsoon_util
open Monsoon_relalg
open Monsoon_exec

type config = {
  rng : Rng.t;
  initial_slice : float;
  growth : float;
  exploration : float;
}

let default_config ~rng =
  { rng; initial_slice = 10_000.0; growth = 2.0; exploration = sqrt 2.0 }

type outcome = {
  cost : float;
  timed_out : bool;
  episodes : int;
  result_card : float;
}

(* UCT statistics over left-deep order prefixes. *)
type node = {
  mutable visits : int;
  mutable total : float;
  children : (int, node) Hashtbl.t;
}

let fresh_node () = { visits = 0; total = 0.0; children = Hashtbl.create 4 }

(* Choose the next instance of a left-deep order: prefer connected
   extensions (no needless cross products), pick by UCT among tried ones
   with untried ones first. *)
let choose config q node ~used_mask ~remaining =
  let connected_first =
    let conn = List.filter (fun i -> used_mask = 0 || Query.connected q used_mask (Relset.singleton i)) remaining in
    if conn <> [] then conn else remaining
  in
  let untried =
    List.filter (fun i -> not (Hashtbl.mem node.children i)) connected_first
  in
  match untried with
  | _ :: _ -> List.nth untried (Rng.int config.rng (List.length untried))
  | [] ->
    let score i =
      let c = Hashtbl.find node.children i in
      let mean = c.total /. float_of_int (max 1 c.visits) in
      mean
      +. config.exploration
         *. sqrt (log (float_of_int (max 1 node.visits)) /. float_of_int (max 1 c.visits))
    in
    List.fold_left
      (fun best i ->
        match best with
        | None -> Some i
        | Some b -> if score i > score b then Some i else best)
      None connected_first
    |> Option.get

let left_deep_expr order =
  match order with
  | [] -> invalid_arg "Skinner: empty order"
  | first :: rest ->
    List.fold_left (fun acc i -> Expr.join acc (Expr.base i)) (Expr.base first) rest

let run ?(env = Env.default) config ~budget catalog q =
  let deadline = Env.deadline env in
  let n = Query.n_rels q in
  let root = fresh_node () in
  let total_cost = ref 0.0 in
  let episodes = ref 0 in
  let slice = ref config.initial_slice in
  let result = ref None in
  let overall_exhausted () = !total_cost >= budget in
  (* Episode boundary doubles as the deadline batch boundary: an expired
     token ends the search with a timed-out outcome instead of raising. *)
  while
    !result = None && (not (overall_exhausted ())) && not (Deadline.expired deadline)
  do
    incr episodes;
    (* Descend the prefix tree to pick a full order. *)
    let rec build node used_mask remaining path =
      if remaining = [] then List.rev path
      else begin
        let i = choose config q node ~used_mask ~remaining in
        let child =
          match Hashtbl.find_opt node.children i with
          | Some c -> c
          | None ->
            let c = fresh_node () in
            Hashtbl.replace node.children i c;
            c
        in
        build child (Relset.add i used_mask)
          (List.filter (fun j -> j <> i) remaining)
          ((i, child) :: path)
      end
    in
    let path = build root 0 (List.init n Fun.id) [] in
    let order = List.map fst path in
    let plan = left_deep_expr order in
    (* Fresh executor every episode: a batch engine restarts from scratch,
       discarding all partial work. *)
    let this_slice = Float.min !slice (budget -. !total_cost) in
    let exec = Executor.create ~env catalog q (Executor.budget this_slice) in
    let reward =
      match Executor.execute exec plan with
      | exception (Executor.Timeout | Deadline.Expired) ->
        total_cost := !total_cost +. Executor.total_produced exec;
        (* Progress-based reward: how deep did the pipeline get? *)
        let completed =
          List.length
            (List.filter
               (fun (a, b) ->
                 Executor.materialized exec (Relset.union a b) <> None)
               (Expr.join_nodes plan))
        in
        float_of_int completed /. float_of_int (max 1 (n - 1))
      | _cost, _obs ->
        total_cost := !total_cost +. Executor.total_produced exec;
        (match Executor.materialized exec (Query.all_mask q) with
        | Some inter ->
          result := Some (float_of_int (Intermediate.cardinality inter))
        | None -> ());
        1.0 +. (this_slice -. Executor.total_produced exec) /. Float.max 1.0 this_slice
    in
    root.visits <- root.visits + 1;
    List.iter
      (fun (_, node) ->
        node.visits <- node.visits + 1;
        node.total <- node.total +. reward)
      path;
    slice := !slice *. config.growth
  done;
  match !result with
  | Some card ->
    { cost = !total_cost; timed_out = false; episodes = !episodes; result_card = card }
  | None -> { cost = budget; timed_out = true; episodes = !episodes; result_card = 0.0 }
