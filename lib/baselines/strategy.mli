(** The seven optimization strategies of the paper's evaluation (Sec 6.2.2),
    under one interface. Every strategy is charged the same way: statistics
    acquisition plus intermediate objects produced by real execution, against
    a shared tuple budget standing in for the paper's 20-minute timeout. *)

open Monsoon_storage
open Monsoon_relalg

type outcome = {
  cost : float;  (** objects charged: acquisition + intermediates *)
  timed_out : bool;
  wall : float;  (** seconds, end to end *)
  plan_time : float;  (** seconds spent planning (MCTS / DP / sampling) *)
  stats_cost : float;  (** objects attributable to statistics gathering *)
  result_card : float;
  degraded : int;
      (** EXECUTE steps that survived a fault by degrading to a fallback
          plan (only Monsoon degrades; 0 for every baseline) *)
  plan : string;  (** human-readable plan or action trace *)
}

type t = {
  name : string;
  applicable : Query.t -> bool;
      (** the paper drops some options on some benchmarks (e.g. On-Demand
          with multi-instance UDFs) *)
  run :
    ?env:Monsoon_util.Env.t ->
    rng:Monsoon_util.Rng.t -> budget:float -> Catalog.t -> Query.t -> outcome;
      (** The environment threads the observability context (metrics,
          spans, recorder) into the executor — and, for Monsoon, the driver
          and MCTS; {!Monsoon_util.Env.default} keeps the strategy silent.
          [env.fault] arms the executor's fault checkpoints; Monsoon
          degrades to a fallback plan on injection, every other strategy
          lets [Monsoon_util.Fault.Injected] escape for the harness to
          retry. [env.deadline] cooperatively bounds the run; expiry
          reports a timed-out outcome. *)
}

val postgres : t
(** Full statistics computed offline and not charged — the paper's upper
    baseline. *)

val defaults : t
val greedy : t
val on_demand : t
val sampling : t
val skinner : t

val monsoon :
  ?iterations:int ->
  ?scale_with_size:bool ->
  ?selection:Monsoon_mcts.Mcts.selection ->
  ?mcts_workers:int ->
  ?stats_repo:Monsoon_stats_repo.Stats_repo.t ->
  Monsoon_stats.Prior.t ->
  t
(** The Monsoon optimizer with the given prior (2000 MCTS iterations and
    UCT(√2) by default). [scale_with_size] (default true) multiplies the
    iteration budget for 6- and 7-instance queries, whose action spaces are
    much larger. [mcts_workers] (default 1) turns on root-parallel planning
    ({!Monsoon_core.Driver.config.mcts_workers}). [stats_repo] attaches a
    cross-query statistics repository: measured statistics are flushed at
    every query's end and warm-start the next run's MDP
    ({!Monsoon_stats_repo.Stats_repo}); omitted, runs are byte-identical
    to builds without the repository. *)

val fixed_plan : name:string -> (Query.t -> Expr.t) -> t
(** Execute a externally supplied plan (the OTT benchmark's hand-written
    plans). *)

val execute_plan :
  ?env:Monsoon_util.Env.t ->
  t0:float ->
  plan_time:float ->
  stats_cost:float ->
  budget:float ->
  Catalog.t ->
  Query.t ->
  Expr.t ->
  outcome
(** Shared execution tail for plan-once strategies: charges [stats_cost]
    against the budget up front, then runs the plan. Used by strategy
    implementations living in other modules (e.g. {!Lec}). *)

val standard_seven : Monsoon_stats.Prior.t -> t list
(** Postgres, Defaults, Greedy, Monsoon, On-Demand, Sampling, SkinnerDB —
    the lineup of Tables 3–6. *)
