open Monsoon_util
open Monsoon_storage
open Monsoon_relalg
open Monsoon_exec

type outcome = {
  cost : float;
  timed_out : bool;
  wall : float;
  plan_time : float;
  stats_cost : float;
  result_card : float;
  degraded : int;
  plan : string;
}

type t = {
  name : string;
  applicable : Query.t -> bool;
  run :
    ?env:Env.t -> rng:Rng.t -> budget:float -> Catalog.t -> Query.t -> outcome;
}

let always_applicable _ = true

(* Execute a chosen plan, charging [stats_cost] up front against the
   budget. An expired deadline is a timeout; an injected fault propagates
   (plan-once strategies have no alternative plan — the harness retries the
   whole cell). *)
let execute_plan ?env ~t0 ~plan_time ~stats_cost ~budget
    catalog q plan =
  let bud = Executor.budget (budget -. stats_cost) in
  let exec = Executor.create ?env catalog q bud in
  let timed_out_outcome () =
    { cost = budget;
      timed_out = true;
      wall = Timer.now () -. t0;
      plan_time;
      stats_cost;
      result_card = 0.0;
      degraded = 0;
      plan = Expr.describe q plan }
  in
  match Executor.execute exec plan with
  | exception Executor.Timeout -> timed_out_outcome ()
  | exception Deadline.Expired -> timed_out_outcome ()
  | cost, _obs ->
    let result_card =
      match Executor.materialized exec (Query.all_mask q) with
      | Some inter -> float_of_int (Intermediate.cardinality inter)
      | None -> 0.0
    in
    { cost = cost +. stats_cost;
      timed_out = false;
      wall = Timer.now () -. t0;
      plan_time;
      stats_cost;
      result_card;
      degraded = 0;
      plan = Expr.describe q plan }

(* A plan-once strategy: build a statistics source, run the DP, execute. *)
let classical name ~applicable source =
  { name;
    applicable;
    run =
      (fun ?env ~rng ~budget catalog q ->
        let t0 = Timer.now () in
        let (src : Stats_source.t), src_time =
          Timer.time (fun () -> source rng catalog q)
        in
        let plan, dp_time = Timer.time (fun () -> Planner.best_plan q src.Stats_source.env) in
        execute_plan ?env ~t0 ~plan_time:(src_time +. dp_time)
          ~stats_cost:src.Stats_source.acquisition_cost ~budget catalog q plan) }

let postgres =
  classical "Postgres"
    ~applicable:(fun q -> not (Stats_source.has_multi_instance_terms q))
    (fun _rng catalog q -> Stats_source.exact catalog q)

let defaults =
  classical "Defaults" ~applicable:always_applicable (fun _rng catalog q ->
      Stats_source.defaults catalog q)

(* On-Demand cannot handle multi-instance UDFs without materializing cross
   products; the paper drops it there. *)
let on_demand =
  classical "On Demand"
    ~applicable:(fun q -> not (Stats_source.has_multi_instance_terms q))
    (fun _rng catalog q -> Stats_source.on_demand catalog q)

let sampling =
  classical "Sampling" ~applicable:always_applicable (fun rng catalog q ->
      Stats_source.sampling rng catalog q)

(* Greedy (paper Sec 6.2.2): start from the smallest instance; repeatedly
   attach the smallest not-yet-joined instance that avoids a cross product
   (unless a cross product is unavoidable). Left-deep; uses only set
   sizes. *)
let greedy_plan catalog q =
  let n = Query.n_rels q in
  let size i =
    Table.cardinality (Catalog.find catalog (Query.rel_by_id q i).Query.table)
  in
  let by_size = List.sort (fun a b -> compare (size a) (size b)) (List.init n Fun.id) in
  match by_size with
  | [] -> invalid_arg "greedy: empty query"
  | first :: _ ->
    let rec go acc mask remaining =
      if remaining = [] then acc
      else begin
        let connected =
          List.filter (fun i -> Query.connected q mask (Relset.singleton i)) remaining
        in
        let pool = if connected <> [] then connected else remaining in
        let next = List.hd pool (* pools keep the by-size order *) in
        go (Expr.join acc (Expr.base next))
          (Relset.add next mask)
          (List.filter (fun j -> j <> next) remaining)
      end
    in
    go (Expr.base first) (Relset.singleton first)
      (List.filter (fun j -> j <> first) by_size)

let greedy =
  { name = "Greedy";
    applicable = always_applicable;
    run =
      (fun ?env ~rng:_ ~budget catalog q ->
        let t0 = Timer.now () in
        let plan, plan_time = Timer.time (fun () -> greedy_plan catalog q) in
        execute_plan ?env ~t0 ~plan_time ~stats_cost:0.0
          ~budget catalog q plan) }

let skinner =
  { name = "SkinnerDB";
    applicable = always_applicable;
    run =
      (fun ?(env = Env.default) ~rng ~budget catalog q ->
        let t0 = Timer.now () in
        (* Skinner ignores the telemetry slot, as before. *)
        let env = Env.with_ctx env Env.Null_ctx in
        let out =
          Skinner.run ~env (Skinner.default_config ~rng) ~budget catalog q
        in
        { cost = out.Skinner.cost;
          timed_out = out.Skinner.timed_out;
          wall = Timer.now () -. t0;
          plan_time = 0.0;
          stats_cost = 0.0;
          result_card = out.Skinner.result_card;
          degraded = 0;
          plan = Printf.sprintf "%d episodes" out.Skinner.episodes }) }

let monsoon ?(iterations = 2000) ?(scale_with_size = true)
    ?(selection = Monsoon_mcts.Mcts.Uct (sqrt 2.0)) ?(mcts_workers = 1)
    ?stats_repo prior =
  { name = "Monsoon";
    applicable = always_applicable;
    run =
      (fun ?env ~rng ~budget catalog q ->
        (* The repository rides the env so it survives the Runner's
           per-attempt env reconstruction; [None] leaves the env untouched
           and the run byte-identical to a repository-free build. *)
        let env =
          match stats_repo with
          | None -> env
          | Some repo ->
            let base = Option.value env ~default:Env.default in
            Some (Monsoon_stats_repo.Stats_repo.to_env ~env:base repo)
        in
        (* MCTS effort scales with the size of the join-order problem: the
           action space roughly squares with the instance count. *)
        let iterations =
          if not scale_with_size then iterations
          else if Query.n_rels q >= 7 then iterations * 3
          else if Query.n_rels q >= 6 then iterations * 2
          else iterations
        in
        let mcts =
          { (Monsoon_mcts.Mcts.default_config ~rng) with
            Monsoon_mcts.Mcts.iterations;
            selection }
        in
        let config =
          { Monsoon_core.Driver.prior;
            prior_of = None;
            known_distincts = [];
            mcts;
            mcts_workers;
            budget;
            max_steps = 200 }
        in
        let out = Monsoon_core.Driver.run ?env config catalog q in
        { cost = out.Monsoon_core.Driver.cost;
          timed_out = out.Monsoon_core.Driver.timed_out;
          wall = out.Monsoon_core.Driver.wall;
          plan_time = out.Monsoon_core.Driver.mcts_time;
          stats_cost = out.Monsoon_core.Driver.stats_cost;
          result_card = out.Monsoon_core.Driver.result_card;
          degraded = out.Monsoon_core.Driver.degraded;
          plan = String.concat " | " out.Monsoon_core.Driver.actions }) }

let fixed_plan ~name plan_of =
  { name;
    applicable = always_applicable;
    run =
      (fun ?env ~rng:_ ~budget catalog q ->
        let t0 = Timer.now () in
        execute_plan ?env ~t0 ~plan_time:0.0 ~stats_cost:0.0
          ~budget catalog q (plan_of q)) }

let standard_seven prior =
  [ postgres; defaults; greedy; monsoon prior; on_demand; sampling; skinner ]
