(** A faithful-in-spirit simulation of SkinnerDB's generic variant
    (Skinner-G) running on top of a batch engine.

    Skinner-G learns a left-deep join order online: execution proceeds in
    episodes with geometrically growing time slices; each episode picks an
    order via UCT over order prefixes and runs it from scratch (a batch
    engine cannot pause and resume partial joins — exactly the mismatch the
    paper identifies), discarding partial work when the slice expires. The
    total objects processed across every episode is the strategy's cost. *)

open Monsoon_storage
open Monsoon_relalg

type config = {
  rng : Monsoon_util.Rng.t;
  initial_slice : float;  (** tuple budget of the first episode *)
  growth : float;  (** slice multiplier per episode (2.0 = doubling) *)
  exploration : float;  (** UCT weight over order prefixes *)
}

val default_config : rng:Monsoon_util.Rng.t -> config

type outcome = {
  cost : float;  (** objects processed across all episodes *)
  timed_out : bool;
  episodes : int;
  result_card : float;
}

val run :
  ?env:Monsoon_util.Env.t ->
  config -> budget:float -> Catalog.t -> Query.t -> outcome
(** [env.fault] arms the per-episode executor's checkpoints; an injected
    fault escapes (the harness retries). [env.deadline] is checked at every
    episode boundary and inside the executor; expiry yields a timed-out
    outcome. Defaults off ({!Monsoon_util.Env.default}). *)
