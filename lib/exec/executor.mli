(** Tuple-budgeted plan execution over real data.

    Executes an RA expression bottom-up: filtered base scans, hash
    equi-joins on computed UDF keys (with post-join filters for straddling
    or multi-instance predicates), cross products when no predicate
    connects the sides, and the Σ statistics-collection pass via
    HyperLogLog.

    Execution is batch-at-a-time over typed columnar chunks
    ({!Monsoon_storage.Column} / {!Chunk}): identity-projection terms are
    evaluated directly against Bigarray-backed columns with selection
    vectors, hash-join keys are hashed and verified unboxed, and Σ feeds
    column hashes straight into HyperLogLog. Opaque (non-identity) UDF
    terms and armed fault plans take the scalar row path, which is
    observationally identical — the differential suite pins charged cost,
    [stat_obs], counters and checkpoint draw order against the frozen
    {!Row_engine}.

    Cost accounting matches {!Monsoon_relalg.Cost_model}: each join node is
    charged its output cardinality, a Σ node an extra pass over its input,
    base scans are free, and the complete query's final result is not
    charged. The *budget* is stricter than the cost: every emitted tuple
    (including final results and scan outputs) draws it down, so a runaway
    plan raises {!Timeout} promptly. *)

open Monsoon_storage
open Monsoon_relalg

exception Timeout

type budget = { mutable remaining : float }

val budget : float -> budget

type t
(** Execution context: one query over one catalog, with a cache of
    materialized intermediates keyed by instance mask. Persists across the
    multiple EXECUTE steps of a Monsoon run. *)

val create : ?env:Monsoon_util.Env.t -> Catalog.t -> Query.t -> budget -> t
(** The execution environment bundles the telemetry context, fault plan
    and deadline; [Monsoon_util.Env.default] (the default) is all Null
    sinks. With a packed context ([Monsoon_telemetry.Ctx.to_env]),
    per-operator tuple counters land in the context's registry
    ([exec.tuples_scanned]/[_built]/[_probed]/[_emitted],
    [exec.sigma_objects], [exec.budget_spent]) and every [execute] call and
    Σ pass emits a span ([exec.execute] with [objects]/[sigma_objects]
    attributes — set even when the call raises {!Timeout} — and
    [exec.sigma]).

    With a packed profile collector ([Profile.to_env]), every [execute]
    call additionally records one {!Profile.node} per plan node it
    materializes — kind, path taken, representation mix, rows,
    selectivity, batch counts, chain shape, budget drawn and wall time —
    and each node's wall time lands on the [exec.node_ms] histogram.
    Fused-path hits and scalar fallbacks are counted on
    [exec.fused_ops] / [exec.scalar_fallbacks] regardless of profiling.

    With an armed [env.fault], the plan is consulted at three checkpoints —
    each compiled UDF evaluation, each scanned base row, each hash-join
    build — and a firing checkpoint aborts the call with
    [Monsoon_util.Fault.Injected] (counted on the [fault.injected]
    counter); an armed plan also pins execution to the scalar row path so
    the checkpoint draw order is exactly the row engine's. With
    [env.deadline] set, every plan node of an [execute] call cooperatively
    checks the token and raises [Monsoon_util.Deadline.Expired] once it
    trips. Defaults are the Null sinks: one branch per checkpoint when
    off. *)

val set_budget : t -> budget -> unit

val profile : t -> Profile.t
(** The profile collector this executor writes to — the one packed in the
    creation [env], or [Profile.disabled]. Lets direct embedders (tests,
    bench) read {!Profile.nodes} without going through the driver. *)

type stat_obs = {
  obs_counts : (Relset.t * float) list;
      (** true cardinalities of every expression materialized by this call *)
  obs_distincts : (int * float) list;
      (** term id → HLL distinct estimate, for Σ-topped expressions *)
  obs_stats_cost : float;
      (** portion of the charged cost due to Σ passes (paper Table 8) *)
  obs_nodes : (Expr.t * float) list;
      (** plan node → observed cardinality, one entry per expression this
          call actually materialized (cache hits excluded), in completion
          order. The flight recorder joins these against the plan-time
          predictions to compute per-node q-errors. *)
}

val execute : t -> Expr.t -> float * stat_obs
(** Materializes the expression (caching every intermediate), returning the
    charged cost and the statistics observed. Raises {!Timeout} when the
    budget runs out; the cache keeps whatever was completed. *)

val materialized : t -> Relset.t -> Intermediate.t option

val result_rows : t -> Expr.t -> Table.row array
(** Rows of a previously executed expression. *)

val total_produced : t -> float
(** Total tuples emitted by this context so far (diagnostics). *)

val sigma_objects : t -> float
(** Total objects processed by Σ passes over this context's lifetime,
    including passes cut short by {!Timeout}. Unlike the shared
    [exec.sigma_objects] counter this is private to the instance, so it
    stays exact when many executors share one telemetry context across
    domains. *)

val udf_observations : t -> (int * float * float) list
(** [(term id, rows evaluated, observed fraction)] per UDF-term evaluation
    site this context has executed, in occurrence order: filtered base
    scans contribute the select term's pass fraction, Σ passes the
    distinct-value fraction [d / card]. Purely observational — the
    accumulator feeds the cross-query statistics repository and alters no
    cost, RNG draw, or checkpoint order, so the {!Row_engine} differential
    contract is untouched. *)
