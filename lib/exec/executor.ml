open Monsoon_util
open Monsoon_storage
open Monsoon_relalg
open Monsoon_sketch
open Monsoon_telemetry

exception Timeout

type budget = { mutable remaining : float }

let budget r = { remaining = r }

(* Per-operator tuple counters, resolved once per execution context so the
   hot paths pay one float store per event. *)
type counters = {
  m_scanned : Metric.Counter.t;  (* base-table rows read *)
  m_built : Metric.Counter.t;  (* rows inserted into hash-join build tables *)
  m_probed : Metric.Counter.t;  (* rows driven through hash-join probes *)
  m_emitted : Metric.Counter.t;  (* join / cross-product output rows *)
  m_sigma : Metric.Counter.t;  (* objects processed by Σ passes *)
  m_budget : Metric.Counter.t;  (* budget consumed *)
  m_fault : Metric.Counter.t;  (* injected faults that escaped [execute] *)
  m_fused : Metric.Counter.t;  (* fused fast-path activations *)
  m_scalar : Metric.Counter.t;  (* scalar (per-row) fallback activations *)
  h_node : Metric.Histogram.t;  (* per-plan-node wall milliseconds *)
}

type t = {
  catalog : Catalog.t;
  query : Query.t;
  mutable bud : budget;
  store : (Relset.t, Intermediate.t) Hashtbl.t;
  chunks : (Relset.t, Chunk.t) Hashtbl.t;
  mutable produced : float;
  mutable sigma_total : float;
  mutable udf_obs : (int * float * float) list;  (* term, evals, fraction *)
  fault : Fault.t;
  deadline : Deadline.t;
  tel : Ctx.t;
  prof : Profile.t;
  m : counters;
}

let create ?(env = Env.default) catalog query bud =
  let tel = Ctx.of_env env in
  let m =
    { m_scanned = Ctx.counter tel "exec.tuples_scanned";
      m_built = Ctx.counter tel "exec.tuples_built";
      m_probed = Ctx.counter tel "exec.tuples_probed";
      m_emitted = Ctx.counter tel "exec.tuples_emitted";
      m_sigma = Ctx.counter tel "exec.sigma_objects";
      m_budget = Ctx.counter tel "exec.budget_spent";
      m_fault = Ctx.counter tel "fault.injected";
      m_fused = Ctx.counter tel "exec.fused_ops";
      m_scalar = Ctx.counter tel "exec.scalar_fallbacks";
      h_node = Ctx.histogram tel "exec.node_ms" }
  in
  { catalog;
    query;
    bud;
    store = Hashtbl.create 16;
    chunks = Hashtbl.create 16;
    produced = 0.0;
    sigma_total = 0.0;
    udf_obs = [];
    fault = Env.fault env;
    deadline = Env.deadline env;
    tel;
    prof = Profile.of_env env;
    m }

let profile t = t.prof

let set_budget t bud = t.bud <- bud

type stat_obs = {
  obs_counts : (Relset.t * float) list;
  obs_distincts : (int * float) list;
  obs_stats_cost : float;
  obs_nodes : (Expr.t * float) list;
}

let materialized t mask = Hashtbl.find_opt t.store mask

let total_produced t = t.produced

let sigma_objects t = t.sigma_total

let udf_observations t = List.rev t.udf_obs

let spend t n =
  t.produced <- t.produced +. n;
  Metric.Counter.add t.m.m_budget n;
  t.bud.remaining <- t.bud.remaining -. n;
  if t.bud.remaining < 0.0 then raise Timeout

(* Chunk (batch view) of a materialized relation, keyed like the store. *)
let chunk_of ?table t (inter : Intermediate.t) =
  match Hashtbl.find_opt t.chunks inter.Intermediate.mask with
  | Some c when c.Chunk.rows == inter.Intermediate.rows -> c
  | _ ->
    let c = Chunk.of_intermediate ?table t.query t.catalog inter in
    Hashtbl.replace t.chunks inter.Intermediate.mask c;
    c

(* Local slot of an identity term within [inter], when vectorizable. *)
let identity_slot t (inter : Intermediate.t) (tm : Term.t) =
  match tm.Term.args with
  | [ (rel, col) ] when Udf.is_identity tm.Term.udf ->
    Some (Intermediate.col_index t.query t.catalog inter ~rel ~col)
  | _ -> None

let compile_term t inter tm =
  let ev =
    Term.compile tm
      ~col_index:(fun ~rel ~col ->
        Intermediate.col_index t.query t.catalog inter ~rel ~col)
  in
  (* UDF checkpoint: the wrapper exists only when a plan is armed, so the
     disabled path keeps the bare compiled evaluator. *)
  if Fault.armed t.fault then (fun row ->
    Fault.udf t.fault;
    ev row)
  else ev

(* Predicate checkers over a single intermediate's rows. *)
let compile_filter t inter pid =
  match Query.pred t.query pid with
  | Predicate.Select { term = tm; value; _ } ->
    let ev = compile_term t inter tm in
    fun row -> Value.equal (ev row) value
  | Predicate.Join { left; right; _ } ->
    let evl = compile_term t inter left and evr = compile_term t inter right in
    fun row -> Value.equal (evl row) (evr row)

(* Vectorized filters over one chunk: every term of every predicate must
   be an identity projection, else the scan falls back to the scalar
   row loop. Returns per-index predicates in predicate order. *)
let vector_filters t (inter : Intermediate.t) chunk pids =
  let exception Fallback in
  let slot tm =
    match identity_slot t inter tm with
    | Some s -> s
    | None -> raise Fallback
  in
  try
    Some
      (List.map
         (fun pid ->
           match Query.pred t.query pid with
           | Predicate.Select { term = tm; value; _ } ->
             Chunk.eq_const (Chunk.column chunk (slot tm)) value
           | Predicate.Join { left; right; _ } ->
             let eq =
               Chunk.eq_cols
                 (Chunk.column chunk (slot left))
                 (Chunk.column chunk (slot right))
             in
             fun i -> eq i i)
         pids)
  with Fallback -> None

let scan_base t rel =
  let mask = Relset.singleton rel in
  match Hashtbl.find_opt t.store mask with
  | Some inter -> inter
  | None ->
    let table = Catalog.find t.catalog (Query.rel_by_id t.query rel).Query.table in
    let raw = Table.rows table in
    Metric.Counter.add t.m.m_scanned (float_of_int (Array.length raw));
    (* Row checkpoint: one draw per scanned base row. A poisoned row aborts
       the scan — corrupt data is detected, not silently propagated. *)
    if Fault.armed t.fault then Array.iter (fun _ -> Fault.row t.fault) raw;
    let inter0 = Intermediate.of_base t.query t.catalog ~rows:raw rel in
    let pids = Query.select_preds_of_rel t.query rel in
    Profile.set_input t.prof
      ~rows:(float_of_int (Array.length raw))
      ~denom:(float_of_int (Array.length raw));
    let inter =
      if pids = [] then begin
        Profile.set_path t.prof "raw";
        inter0
      end
      else begin
        let vectorized =
          if Fault.armed t.fault then None
          else begin
            let chunk = chunk_of ~table t inter0 in
            match vector_filters t inter0 chunk pids with
            | None -> None
            | Some preds ->
              Profile.add_batches t.prof 1;
              (* Representation mix of every predicate slot this scan
                 touches; Chunk.column memoizes, so the profiled lookups
                 just reread the cached views. *)
              if Profile.live t.prof then
                List.iter
                  (fun pid ->
                    let slot_repr tm =
                      match identity_slot t inter0 tm with
                      | Some s -> Profile.add_repr t.prof (Chunk.column chunk s)
                      | None -> ()
                    in
                    match Query.pred t.query pid with
                    | Predicate.Select { term = tm; _ } -> slot_repr tm
                    | Predicate.Join { left; right; _ } ->
                      slot_repr left;
                      slot_repr right)
                  pids;
              (* Selection-vector refinement in predicate order — the same
                 accepted set as the scalar short-circuit conjunction. The
                 first predicate is fused into the selection build when it
                 is a plain [col = const] (vector_filters succeeding means
                 every term is an identity projection). *)
              let n = Array.length raw in
              let sel =
                match (Query.pred t.query (List.hd pids), preds) with
                | Predicate.Select { term = tm; value; _ }, _ :: rest ->
                  let slot =
                    match identity_slot t inter0 tm with
                    | Some s -> s
                    | None -> assert false
                  in
                  let sel =
                    Chunk.sel_eq_const (Chunk.column chunk slot) value n
                  in
                  Metric.Counter.inc t.m.m_fused;
                  Profile.set_path t.prof "sel_eq_const";
                  Profile.set_sel_density t.prof ~kept:sel.Chunk.n ~of_:n;
                  List.iter (fun p -> Chunk.refine p sel) rest;
                  sel
                | _ ->
                  Profile.set_path t.prof "refine";
                  let sel = Chunk.sel_all n in
                  List.iter (fun p -> Chunk.refine p sel) preds;
                  sel
              in
              Some (Chunk.gather raw sel)
          end
        in
        let rows =
          match vectorized with
          | Some rows -> rows
          | None ->
            Metric.Counter.inc t.m.m_scalar;
            Profile.set_path t.prof "scalar";
            Profile.add_repr_rows t.prof;
            let filters = List.map (compile_filter t inter0) pids in
            let keep =
              List.fold_left
                (fun acc f row -> acc row && f row)
                (fun _ -> true) filters
            in
            Array.of_seq (Seq.filter keep (Array.to_seq raw))
        in
        spend t (float_of_int (Array.length rows));
        (* Selectivity observations for the repository: each select term on
           this scan evaluated every raw row and kept this fraction. *)
        let n_in = float_of_int (Array.length raw) in
        let frac =
          if n_in = 0.0 then 0.0 else float_of_int (Array.length rows) /. n_in
        in
        List.iter
          (fun pid ->
            match Query.pred t.query pid with
            | Predicate.Select { term = tm; _ } ->
              t.udf_obs <- (tm.Term.id, n_in, frac) :: t.udf_obs
            | Predicate.Join _ -> ())
          pids;
        Intermediate.of_base t.query t.catalog ~rows rel
      end
    in
    Hashtbl.replace t.store mask inter;
    if not (Fault.armed t.fault) then begin
      let table = if inter.Intermediate.rows == raw then Some table else None in
      ignore (chunk_of ?table t inter)
    end;
    inter

(* Orientation of a connecting join predicate: which term keys which side. *)
let orient_pred t lm pid =
  match Query.pred t.query pid with
  | Predicate.Join { left; right; _ } ->
    if Relset.subset (Term.rels left) lm then (left, right) else (right, left)
  | Predicate.Select _ -> assert false

(* Growable output-row buffer (emission order preserved). *)
type rowbuf = { mutable data : Table.row array; mutable len : int }

let rowbuf () = { data = Array.make 1024 [||]; len = 0 }

let rowbuf_push b row =
  if b.len = Array.length b.data then begin
    let d = Array.make (2 * b.len) [||] in
    Array.blit b.data 0 d 0 b.len;
    b.data <- d
  end;
  b.data.(b.len) <- row;
  b.len <- b.len + 1

let rowbuf_contents b = Array.init b.len (fun i -> b.data.(i))

(* The scalar join loops — the armed-fault path (checkpoint draw order is
   part of the contract) and the fallback for non-identity key or filter
   terms. Byte-for-byte the row engine's semantics. *)
let hash_join_scalar t (la : Intermediate.t) (rb : Intermediate.t) ~conn
    ~filter_pids ~mask ~offsets ~width =
  let out = ref [] in
  let emit lrow rrow =
    let row = Array.make width Value.Null in
    Array.blit lrow 0 row 0 la.Intermediate.width;
    Array.blit rrow 0 row la.Intermediate.width rb.Intermediate.width;
    row
  in
  (* Filters run on the combined layout; build a template intermediate to
     compile them against. *)
  let combined_proto = { Intermediate.mask; offsets; width; rows = [||] } in
  let filters = List.map (compile_filter t combined_proto) filter_pids in
  let accept row = List.for_all (fun f -> f row) filters in
  if conn = [] then begin
    (* Cross product (with any straddling filters). *)
    Metric.Counter.add t.m.m_probed
      (float_of_int (Intermediate.cardinality la));
    Array.iter
      (fun lrow ->
        Array.iter
          (fun rrow ->
            let row = emit lrow rrow in
            if accept row then begin
              spend t 1.0;
              Metric.Counter.inc t.m.m_emitted;
              out := row :: !out
            end)
          rb.Intermediate.rows)
      la.Intermediate.rows
  end
  else begin
    (* Hash join on the composite key of all connecting predicates. Build on
       the smaller input. *)
    let build, probe, build_is_left =
      if Intermediate.cardinality la <= Intermediate.cardinality rb then
        (la, rb, true)
      else (rb, la, false)
    in
    let build_mask = build.Intermediate.mask in
    let keyers_build, keyers_probe =
      List.split
        (List.map
           (fun pid ->
             let bt, pt = orient_pred t build_mask pid in
             (compile_term t build bt, compile_term t probe pt))
           conn)
    in
    let key_of keyers row = List.map (fun k -> k row) keyers in
    Metric.Counter.add t.m.m_built
      (float_of_int (Intermediate.cardinality build));
    Metric.Counter.add t.m.m_probed
      (float_of_int (Intermediate.cardinality probe));
    (* Build checkpoint: one draw per hash-join build. *)
    Fault.build t.fault;
    let table = Hashtbl.create (Intermediate.cardinality build * 2) in
    Array.iter
      (fun row -> Hashtbl.add table (key_of keyers_build row) row)
      build.Intermediate.rows;
    Array.iter
      (fun prow ->
        let k = key_of keyers_probe prow in
        List.iter
          (fun brow ->
            let row =
              if build_is_left then emit brow prow else emit prow brow
            in
            if accept row then begin
              spend t 1.0;
              Metric.Counter.inc t.m.m_emitted;
              out := row :: !out
            end)
          (Hashtbl.find_all table k))
      probe.Intermediate.rows
  end;
  Array.of_list (List.rev !out)

(* Straddling filters as (left-index, right-index) predicates: every term
   must be an identity projection on one side. *)
let pair_filters t (la : Intermediate.t) (rb : Intermediate.t) chunk_la
    chunk_rb filter_pids =
  let exception Fallback in
  let loc tm =
    match tm.Term.args with
    | [ (rel, col) ] when Udf.is_identity tm.Term.udf ->
      if Relset.mem rel la.Intermediate.mask then
        (true, Intermediate.col_index t.query t.catalog la ~rel ~col)
      else (false, Intermediate.col_index t.query t.catalog rb ~rel ~col)
    | _ -> raise Fallback
  in
  let col (on_left, s) = Chunk.column (if on_left then chunk_la else chunk_rb) s in
  try
    Some
      (List.map
         (fun pid ->
           match Query.pred t.query pid with
           | Predicate.Select { term = tm; value; _ } ->
             let ((on_left, _) as l) = loc tm in
             let p = Chunk.eq_const (col l) value in
             fun li ri -> p (if on_left then li else ri)
           | Predicate.Join { left; right; _ } ->
             let ((left_l, _) as l1) = loc left in
             let ((left_r, _) as l2) = loc right in
             let eq = Chunk.eq_cols (col l1) (col l2) in
             fun li ri ->
               eq (if left_l then li else ri) (if left_r then li else ri))
         filter_pids)
  with Fallback -> None

let next_pow2 n =
  let rec go k = if k >= n then k else go (k * 2) in
  go 16

(* Vectorized hash join / cross product over chunked inputs. Returns None
   (fall back to the scalar loop) unless every key and filter term is an
   identity projection. Parity notes: counters, the build checkpoint, the
   per-emitted-row budget draw and the emission order (probe-major,
   reverse-insertion within equal keys — exactly [Hashtbl.find_all]) all
   replicate the scalar loop. *)
let hash_join_fast t (la : Intermediate.t) (rb : Intermediate.t) ~conn
    ~filter_pids ~width =
  let chunk_la = chunk_of t la and chunk_rb = chunk_of t rb in
  match pair_filters t la rb chunk_la chunk_rb filter_pids with
  | None -> None
  | Some accepts ->
    Profile.add_batches t.prof 2;
    let emit li ri =
      let row = Array.make width Value.Null in
      Array.blit la.Intermediate.rows.(li) 0 row 0 la.Intermediate.width;
      Array.blit rb.Intermediate.rows.(ri) 0 row la.Intermediate.width
        rb.Intermediate.width;
      row
    in
    let accept li ri = List.for_all (fun f -> f li ri) accepts in
    let out = rowbuf () in
    (* Per-row budget accounting stays inline (the Timeout point is part of
       the contract); the atomic metric counters are batched and flushed at
       loop exit — including the Timeout exit, so totals are unchanged. *)
    let spent = ref 0.0 and emitted = ref 0.0 in
    let flush_counters () =
      if !spent > 0.0 then Metric.Counter.add t.m.m_budget !spent;
      if !emitted > 0.0 then Metric.Counter.add t.m.m_emitted !emitted;
      spent := 0.0;
      emitted := 0.0
    in
    let emit_accepted li ri =
      t.produced <- t.produced +. 1.0;
      spent := !spent +. 1.0;
      t.bud.remaining <- t.bud.remaining -. 1.0;
      if t.bud.remaining < 0.0 then begin
        flush_counters ();
        raise Timeout
      end;
      emitted := !emitted +. 1.0;
      rowbuf_push out (emit li ri)
    in
    if conn = [] then begin
      Metric.Counter.add t.m.m_probed
        (float_of_int (Intermediate.cardinality la));
      Profile.set_path t.prof "cross";
      let nl = Intermediate.cardinality la
      and nr = Intermediate.cardinality rb in
      for li = 0 to nl - 1 do
        for ri = 0 to nr - 1 do
          if accept li ri then emit_accepted li ri
        done
      done;
      flush_counters ();
      Some (rowbuf_contents out)
    end
    else begin
      let build_is_left =
        Intermediate.cardinality la <= Intermediate.cardinality rb
      in
      let build, probe, cbuild, cprobe =
        if build_is_left then (la, rb, chunk_la, chunk_rb)
        else (rb, la, chunk_rb, chunk_la)
      in
      let keyed =
        let exception Fallback in
        try
          Some
            (List.map
               (fun pid ->
                 let bt, pt = orient_pred t build.Intermediate.mask pid in
                 match
                   (identity_slot t build bt, identity_slot t probe pt)
                 with
                 | Some bs, Some ps ->
                   let bc = Chunk.column cbuild bs
                   and pc = Chunk.column cprobe ps in
                   let bh, ph = Chunk.key_hash_pair bc pc in
                   ((bc, pc), (bh, ph, Chunk.eq_cols bc pc))
                 | _ -> raise Fallback)
               conn)
        with Fallback -> None
      in
      match keyed with
      | None -> None
      | Some keyed ->
        let key_cols, keyed = List.split keyed in
        let keyed = Array.of_list keyed in
        let nk = Array.length keyed in
        (* Native-int combine: only bucket assignment depends on it. The
           single-key case (the common one) skips the combine loop. *)
        let hash_row side i =
          let h = ref 0 in
          for c = 0 to nk - 1 do
            let hb, hp, _ = keyed.(c) in
            let hc = if side then hb i else hp i in
            h := (!h * 0x3C79AC492BA7B653) lxor hc
          done;
          !h
        in
        let hash_build, hash_probe, verify =
          if nk = 1 then
            let hb, hp, eq = keyed.(0) in
            (hb, hp, eq)
          else
            ( hash_row true,
              hash_row false,
              fun bi pi ->
                let ok = ref true in
                let c = ref 0 in
                while !ok && !c < nk do
                  let _, _, eq = keyed.(!c) in
                  (if not (eq bi pi) then ok := false);
                  incr c
                done;
                !ok )
        in
        let nb = Intermediate.cardinality build
        and np = Intermediate.cardinality probe in
        Metric.Counter.add t.m.m_built (float_of_int nb);
        Metric.Counter.add t.m.m_probed (float_of_int np);
        (* Build checkpoint: one draw per hash-join build. *)
        Fault.build t.fault;
        (* A single int key with no straddling filters takes the fully
           fused loop (same pairs, same order — see {!Chunk.join_ints}).
           The path is attributed (and the fused counter bumped) before
           the loop runs, so an early Timeout exit still reports the path
           that was executing. *)
        let fusable =
          match key_cols, accepts with
          | [ (bc, pc) ], [] -> (
            match (bc, pc) with
            | ( Column.Ints { kind = ka; _ },
                Column.Ints { kind = kb; _ } ) ->
              ka = kb
            | _ -> false)
          | _ -> false
        in
        let fused =
          match key_cols, accepts with
          | [ (bc, pc) ], [] when fusable ->
            Metric.Counter.inc t.m.m_fused;
            Profile.set_path t.prof "join_ints";
            let on_index =
              if Profile.live t.prof then begin
                Profile.add_repr t.prof bc;
                Profile.add_repr t.prof pc;
                Some (Profile.observe_chains t.prof)
              end
              else None
            in
            Chunk.join_ints ?on_index bc pc (fun bi pi ->
                let li = if build_is_left then bi else pi
                and ri = if build_is_left then pi else bi in
                emit_accepted li ri)
          | _ -> false
        in
        if fused then begin
          flush_counters ();
          Some (rowbuf_contents out)
        end
        else begin
        Profile.set_path t.prof "chained";
        if Profile.live t.prof then
          List.iter
            (fun (bc, pc) ->
              Profile.add_repr t.prof bc;
              Profile.add_repr t.prof pc)
            key_cols;
        (* Chained-bucket index: chains run latest-insertion-first, the
           same order [Hashtbl.find_all] yields equal keys in. *)
        let sz = next_pow2 (2 * max 1 nb) in
        let msk = sz - 1 in
        let head = Array.make sz (-1) in
        let next = Array.make (max 1 nb) (-1) in
        let hashes = Array.make (max 1 nb) 0 in
        for bi = 0 to nb - 1 do
          let h = hash_build bi in
          hashes.(bi) <- h;
          let b = h land msk in
          next.(bi) <- head.(b);
          head.(b) <- bi
        done;
        if Profile.live t.prof then Profile.observe_chains t.prof ~head ~next;
        for pi = 0 to np - 1 do
          let h = hash_probe pi in
          let c = ref head.(h land msk) in
          while !c >= 0 do
            let bi = !c in
            if hashes.(bi) = h && verify bi pi then begin
              let li = if build_is_left then bi else pi
              and ri = if build_is_left then pi else bi in
              if accept li ri then emit_accepted li ri
            end;
            c := next.(bi)
          done
        done;
        flush_counters ();
        Some (rowbuf_contents out)
        end
    end

let hash_join t (la : Intermediate.t) (rb : Intermediate.t) =
  let q = t.query in
  let conn = Query.connecting q la.Intermediate.mask rb.Intermediate.mask in
  let newly =
    Query.newly_evaluable q ~left:la.Intermediate.mask
      ~right:rb.Intermediate.mask
  in
  let filter_pids = List.filter (fun p -> not (List.mem p conn)) newly in
  let mask, offsets, width = Intermediate.combined_layout la rb in
  let nl = Intermediate.cardinality la and nr = Intermediate.cardinality rb in
  (* Join selectivity is measured against the cross-product size. *)
  let set_io () =
    Profile.set_input t.prof
      ~rows:(float_of_int (nl + nr))
      ~denom:(float_of_int nl *. float_of_int nr);
    if conn = [] then Profile.set_kind t.prof Profile.Cross
  in
  set_io ();
  let rows =
    let fast =
      if Fault.armed t.fault then None
      else hash_join_fast t la rb ~conn ~filter_pids ~width
    in
    match fast with
    | Some rows -> rows
    | None ->
      Metric.Counter.inc t.m.m_scalar;
      (* The failed fast attempt may have left scratch behind (batches,
         key representations): restart the node's detail for the path
         that will actually produce the rows. *)
      Profile.reset t.prof;
      set_io ();
      Profile.set_path t.prof (if conn = [] then "cross-scalar" else "scalar");
      Profile.add_repr_rows t.prof;
      hash_join_scalar t la rb ~conn ~filter_pids ~mask ~offsets ~width
  in
  { Intermediate.mask; offsets; width; rows }

let stats_pass t (inter : Intermediate.t) =
  (* One extra pass over the materialized input computes an HLL distinct
     count for every predicate-relevant term it can evaluate. *)
  let card = Intermediate.cardinality inter in
  Ctx.with_span t.tel "exec.sigma"
    ~attrs:[ ("objects", Span.Int card) ]
    (fun _ ->
      let vec = not (Fault.armed t.fault) in
      Profile.set_input t.prof ~rows:(float_of_int card)
        ~denom:(float_of_int card);
      (* Attributed before the budget draw so a Σ pass that trips Timeout
         still reports which path it was on. *)
      Profile.set_path t.prof (if vec then "column" else "row");
      spend t (float_of_int card);
      Metric.Counter.add t.m.m_sigma (float_of_int card);
      t.sigma_total <- t.sigma_total +. float_of_int card;
      let terms = Query.interesting_terms t.query inter.Intermediate.mask in
      let row_terms = ref 0 and col_terms = ref 0 in
      let ds =
        List.map
          (fun tm ->
            let hll = Hyperloglog.create ~p:14 () in
            (match (if vec then identity_slot t inter tm else None) with
            | Some slot ->
              (* Column path: the HLL register updates are the same values in
                 the same order as hashing the boxed rows. *)
              let col = Chunk.column (chunk_of t inter) slot in
              if !col_terms = 0 then Profile.add_batches t.prof 1;
              incr col_terms;
              Profile.add_repr t.prof col;
              for i = 0 to card - 1 do
                Hyperloglog.add_hash hll (Column.value_hash col i)
              done
            | None ->
              incr row_terms;
              Profile.add_repr_rows t.prof;
              let ev = compile_term t inter tm in
              Array.iter
                (fun row -> Hyperloglog.add_hash hll (Value.hash (ev row)))
                inter.Intermediate.rows);
            let d = Float.max 1.0 (Float.round (Hyperloglog.count hll)) in
            t.udf_obs <-
              (tm.Term.id, float_of_int card,
               if card = 0 then 0.0 else d /. float_of_int card)
              :: t.udf_obs;
            (tm.Term.id, d))
          terms
      in
      (* A Σ pass that had to evaluate any term per-row (opaque UDF or an
         armed fault plan) counts as one scalar fallback. *)
      if !row_terms > 0 then begin
        Metric.Counter.inc t.m.m_scalar;
        if !col_terms > 0 then Profile.set_path t.prof "mixed"
        else Profile.set_path t.prof "row"
      end;
      ds)

let execute t expr =
  Ctx.with_span t.tel "exec.execute" (fun span ->
  let cost = ref 0.0 in
  let stats_cost = ref 0.0 in
  let obs_counts = ref [] in
  let obs_distincts = ref [] in
  let obs_nodes = ref [] in
  let full = Query.all_mask t.query in
  let record e mask inter =
    Hashtbl.replace t.store mask inter;
    let c = float_of_int (Intermediate.cardinality inter) in
    obs_counts := (mask, c) :: !obs_counts;
    obs_nodes := (e, c) :: !obs_nodes
  in
  (* One plan node's materialization, profiled: the self time (children
     are materialized outside [f]) lands on the exec.node_ms histogram,
     the profile collector freezes a node — complete or not — on every
     exit path, and a non-Null tracer gets one child span per plan node
     under exec.execute, so Perfetto timelines show the operator
     breakdown. Cache hits never pass through here, matching
     [obs_nodes]. *)
  let run_node : 'a. Expr.t -> Profile.kind -> rows_out:('a -> float)
      -> (unit -> 'a) -> 'a =
   fun e default_kind ~rows_out f ->
    Profile.reset t.prof;
    let b0 = t.produced in
    let t0 = Timer.now () in
    let finish span ~complete ~out =
      let dt = Timer.now () -. t0 in
      Metric.Histogram.observe t.m.h_node (dt *. 1000.0);
      Profile.finish t.prof ~expr:e ~mask:(Expr.mask e) ~default_kind
        ~rows_out:out ~budget:(t.produced -. b0) ~complete ~seconds:dt;
      match span with
      | None -> ()
      | Some s ->
        Span.set_attr s "rows_out" (Span.Float out);
        Span.set_attr s "complete" (Span.Bool complete)
    in
    let body span =
      match f () with
      | v ->
        finish span ~complete:true ~out:(rows_out v);
        v
      | exception ex ->
        (* Timeout / Deadline.Expired / Fault.Injected mid-operator: the
           in-flight node is still flushed (rows_out 0, budget = what it
           drew) so profiles stay consistent with the exec.* counters. *)
        finish span ~complete:false ~out:0.0;
        raise ex
    in
    if Ctx.tracing t.tel then
      Ctx.with_span t.tel "exec.node"
        ~attrs:[ ("node", Span.Str (Expr.describe t.query e)) ]
        (fun s -> body (Some s))
    else body None
  in
  let inter_card inter = float_of_int (Intermediate.cardinality inter) in
  let rec go ~is_root e : Intermediate.t =
    (* Batch boundary: one cooperative deadline check per plan node. *)
    Deadline.check t.deadline;
    match e with
    | Expr.Stats inner ->
      let inter = go ~is_root inner in
      let card = float_of_int (Intermediate.cardinality inter) in
      let ds =
        run_node e Profile.Sigma ~rows_out:(fun _ -> card) (fun () ->
            stats_pass t inter)
      in
      cost := !cost +. card;
      stats_cost := !stats_cost +. card;
      obs_distincts := ds @ !obs_distincts;
      inter
    | Expr.Leaf m -> (
      match Hashtbl.find_opt t.store m with
      | Some inter -> inter
      | None -> (
        match Relset.to_list m with
        | [ i ] ->
          let inter =
            run_node e Profile.Scan ~rows_out:inter_card (fun () ->
                scan_base t i)
          in
          let c = float_of_int (Intermediate.cardinality inter) in
          obs_counts := (m, c) :: !obs_counts;
          obs_nodes := (e, c) :: !obs_nodes;
          inter
        | _ -> invalid_arg "Executor.execute: unmaterialized intermediate leaf"))
    | Expr.Join (a, b) -> (
      let m = Expr.mask e in
      match Hashtbl.find_opt t.store m with
      | Some inter -> inter
      | None ->
        let ia = go ~is_root:false a in
        let ib = go ~is_root:false b in
        let inter =
          run_node e Profile.Join ~rows_out:inter_card (fun () ->
              hash_join t ia ib)
        in
        let c = float_of_int (Intermediate.cardinality inter) in
        (* Final result of the complete query is not charged as cost. *)
        if not (is_root && Relset.equal m full) then cost := !cost +. c;
        record e m inter;
        inter)
  in
  (* Attributes reflect whatever was charged, even when the budget runs
     out mid-plan — the trace then shows where the run died. *)
  let close_attrs () =
    Span.set_attr span "objects" (Span.Float !cost);
    Span.set_attr span "sigma_objects" (Span.Float !stats_cost)
  in
  match go ~is_root:true expr with
  | _ ->
    close_attrs ();
    ( !cost,
      { obs_counts = !obs_counts;
        obs_distincts = !obs_distincts;
        obs_stats_cost = !stats_cost;
        obs_nodes = List.rev !obs_nodes } )
  | exception e ->
    (match e with
    | Fault.Injected _ -> Metric.Counter.inc t.m.m_fault
    | _ -> ());
    close_attrs ();
    raise e)

let result_rows t expr =
  match materialized t (Expr.mask expr) with
  | Some inter -> inter.Intermediate.rows
  | None -> invalid_arg "Executor.result_rows: not materialized"
