(** Batch views for the vectorized executor.

    A chunk pairs a materialized relation's rows with gather-once typed
    {!Monsoon_storage.Column} views and selection-vector machinery. The
    executor's vectorized operators (filtered scan, hash-join build/probe,
    cross product, Σ pass) work on chunks; each column of a relation is
    materialized at most once per executor, and unfiltered base tables
    borrow the columns cached on the {!Monsoon_storage.Table} itself. *)

open Monsoon_storage
open Monsoon_relalg

type t = {
  rows : Table.row array;
  tys : Value.ty array;
  cols : Column.t option array;
  table : Table.t option;
}

val of_intermediate : ?table:Table.t -> Query.t -> Catalog.t -> Intermediate.t -> t
(** Pass [?table] only when the intermediate's rows are exactly the
    table's backing rows (an unfiltered base scan): the chunk then shares
    the table's cached columns instead of gathering. *)

val length : t -> int

val column : t -> int -> Column.t
(** Column at an absolute slot, gathered on first access. *)

(** {2 Vectorized predicates}

    Index predicates replicating [Value.equal] semantics exactly (NaN
    equals NaN, [0.] equals [-0.], cross-constructor comparisons false). *)

val eq_const : Column.t -> Value.t -> int -> bool
val eq_cols : Column.t -> Column.t -> int -> int -> bool

val key_hash : Column.t -> int -> int64
(** Bucketing hash for join keys: values equal under [Stdlib.compare]
    hash equally (floats normalized), so one hash index serves both build
    and probe sides. Not [Value.hash] — Σ passes use
    {!Monsoon_storage.Column.value_hash} for that. *)

val key_hash_pair : Column.t -> Column.t -> (int -> int) * (int -> int)
(** Cheapest consistent bucketing hashes for one join key's (build, probe)
    column pair: equal values bucket equally across the two sides. When
    both sides share a typed representation the hash is allocation-free
    native-int mixing; otherwise it falls back to {!key_hash}. Safe to
    vary per pair because only bucket assignment depends on it — the
    emitted-row order comes from chain insertion order. *)

(** {2 Selection vectors} *)

type sel = { mutable idx : int array; mutable n : int }

val sel_all : int -> sel
val refine : (int -> bool) -> sel -> unit
val gather : Table.row array -> sel -> Table.row array

val sel_eq_const : Column.t -> Value.t -> int -> sel
(** [sel_eq_const col v n] is [sel_all n] refined by [eq_const col v],
    fused into one direct loop over the column representation. *)

val join_ints :
  ?on_index:(head:int array -> next:int array -> unit) ->
  Column.t -> Column.t -> (int -> int -> unit) -> bool
(** [join_ints build probe emit] runs a fully fused chained-bucket hash
    join over two int columns of the same kind, calling [emit bi pi] for
    every key-equal pair — probe-major, latest-insertion-first within
    equal keys (the [Hashtbl.find_all] order). Returns [false] without
    emitting when the columns are not both [Ints] of one kind.

    [?on_index] is called once after the build loop with the chained
    index's [head]/[next] arrays (-1-terminated chains) so a profiler
    can observe bucket-chain shape; pass it only when profiling — the
    arrays must not be mutated. *)
