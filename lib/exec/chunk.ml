open Monsoon_storage
open Monsoon_relalg

(* A batch view over one materialized relation: the boxed rows it was
   materialized as, plus gather-once typed columns for each slot the
   vectorized operators touch. When the relation is an unfiltered base
   table the view borrows the table's own cached columns, so repeated
   executions over one catalog never re-materialize a base column. *)
type t = {
  rows : Table.row array;
  tys : Value.ty array;  (* declared type per absolute slot *)
  cols : Column.t option array;
  table : Table.t option;  (* set only when [rows == Table.rows table] *)
}

let slot_types q catalog (inter : Intermediate.t) =
  let tys = Array.make inter.Intermediate.width Value.TInt in
  Array.iteri
    (fun rel off ->
      if off >= 0 then begin
        let tbl =
          Catalog.find catalog (Query.rel_by_id q rel).Query.table
        in
        Array.iteri
          (fun j (c : Schema.column) -> tys.(off + j) <- c.Schema.ty)
          (Schema.columns (Table.schema tbl))
      end)
    inter.Intermediate.offsets;
  tys

let of_intermediate ?table q catalog (inter : Intermediate.t) =
  { rows = inter.Intermediate.rows;
    tys = slot_types q catalog inter;
    cols = Array.make inter.Intermediate.width None;
    table }

let length t = Array.length t.rows

let column t slot =
  match t.cols.(slot) with
  | Some c -> c
  | None ->
    let c =
      match t.table with
      | Some tbl -> Table.column_at tbl slot
      | None ->
        Column.of_values t.tys.(slot)
          (Array.map (fun r -> Array.unsafe_get r slot) t.rows)
    in
    t.cols.(slot) <- Some c;
    c

(* {2 Vectorized predicates}

   Each builder specializes on the column representation once and returns
   a per-index closure; the closures replicate [Value.equal] /
   [Stdlib.compare _ _ = 0] semantics exactly (NaN equals NaN, 0. equals
   -0., cross-constructor comparisons are false). *)

let feq a b = a = b || (Float.is_nan a && Float.is_nan b)

(* [Value.equal (col.(i)) v] as an index predicate. *)
let eq_const (col : Column.t) (v : Value.t) : int -> bool =
  match col, v with
  | Column.Ints { kind = Column.KInt; data }, Value.Int x ->
    fun i -> Bigarray.Array1.unsafe_get data i = x
  | Column.Ints { kind = Column.KDate; data }, Value.Date x ->
    fun i -> Bigarray.Array1.unsafe_get data i = x
  | Column.Ints { kind = Column.KBool; data }, Value.Bool b ->
    let x = if b then 1 else 0 in
    fun i -> Bigarray.Array1.unsafe_get data i = x
  | Column.Floats data, Value.Float f ->
    fun i -> feq (Bigarray.Array1.unsafe_get data i) f
  | Column.Dict { codes; strs; _ }, Value.Str s ->
    let code = ref (-1) in
    Array.iteri (fun c e -> if !code < 0 && String.equal e s then code := c) strs;
    let code = !code in
    if code < 0 then fun _ -> false
    else fun i -> Bigarray.Array1.unsafe_get codes i = code
  | Column.Boxed vs, v -> fun i -> Value.equal vs.(i) v
  | (Column.Ints _ | Column.Floats _ | Column.Dict _), _ ->
    (* Constructor mismatch: never equal. *)
    fun _ -> false

(* [Value.equal a.(i) b.(j)] as a pair predicate (hash-join key
   verification and straddling join filters). *)
let eq_cols (a : Column.t) (b : Column.t) : int -> int -> bool =
  match a, b with
  | Column.Ints { kind = ka; data = da }, Column.Ints { kind = kb; data = db }
    ->
    if ka <> kb then fun _ _ -> false
    else
      fun i j ->
        Bigarray.Array1.unsafe_get da i = Bigarray.Array1.unsafe_get db j
  | Column.Floats da, Column.Floats db ->
    fun i j ->
      feq (Bigarray.Array1.unsafe_get da i) (Bigarray.Array1.unsafe_get db j)
  | Column.Dict { codes = ca; strs = sa; _ }, Column.Dict { codes = cb; strs = sb; _ }
    ->
    fun i j ->
      let x = sa.(Bigarray.Array1.unsafe_get ca i)
      and y = sb.(Bigarray.Array1.unsafe_get cb j) in
      x == y || String.equal x y
  | _ ->
    (* At least one side boxed or mismatched: decode and compare. *)
    fun i j -> Value.equal (Column.get a i) (Column.get b j)

(* Bucketing hash for join keys: equal values (by [Stdlib.compare]) must
   hash equally, so floats are normalized (-0. to +0., every NaN to one
   canonical NaN) before mixing — unlike {!Column.value_hash}, which is
   pinned to [Value.hash]'s raw bits for Σ parity. *)
let nan_hash = Monsoon_util.Hashing.combine 2L 0x7FF8_0000_0000_0001L

let key_hash (col : Column.t) : int -> int64 =
  let open Monsoon_util in
  match col with
  | Column.Floats data ->
    fun i ->
      let f = Bigarray.Array1.unsafe_get data i in
      if Float.is_nan f then nan_hash
      else Hashing.combine 2L (Hashing.mix (Int64.bits_of_float (f +. 0.0)))
  | Column.Boxed vs ->
    fun i ->
      (match vs.(i) with
      | Value.Float f ->
        if Float.is_nan f then nan_hash
        else Hashing.combine 2L (Hashing.mix (Int64.bits_of_float (f +. 0.0)))
      | v -> Value.hash v)
  | c -> fun i -> Column.value_hash c i

(* Native-int finalizer for bucketing (splitmix-style, truncated to
   OCaml's 63-bit int). Equal ints in, equal buckets out — and since
   emission order comes from chain order, never from hash bits, the
   bucketing hash is free to avoid Int64 boxing entirely. *)
let mix_int x =
  let x = x lxor (x lsr 33) in
  let x = x * 0x2545F4914F6CDD1D in
  let x = x lxor (x lsr 29) in
  let x = x * 0x1B03738712FAD5C9 in
  x lxor (x lsr 32)

(* Per-pair bucketing hashes for one join key: all that matters is that
   values equal under [Stdlib.compare] bucket equally across the two
   sides. Matching typed representations get an allocation-free
   native-int scheme; Boxed or mismatched pairs fall back to the Int64
   {!key_hash} path (which is representation-independent). *)
let key_hash_pair (a : Column.t) (b : Column.t) : (int -> int) * (int -> int)
    =
  let generic c =
    let h = key_hash c in
    fun i -> Int64.to_int (h i)
  in
  let float_hash data i =
    let f = Bigarray.Array1.unsafe_get data i in
    if Float.is_nan f then 0x7ff8_0000
    else mix_int (Int64.to_int (Int64.bits_of_float (f +. 0.0)))
  in
  match a, b with
  | Column.Ints { kind = ka; data = da }, Column.Ints { kind = kb; data = db }
    when ka = kb ->
    ( (fun i -> mix_int (Bigarray.Array1.unsafe_get da i)),
      fun i -> mix_int (Bigarray.Array1.unsafe_get db i) )
  | Column.Floats da, Column.Floats db -> (float_hash da, float_hash db)
  | ( Column.Dict { codes = ca; strs = sa; _ },
      Column.Dict { codes = cb; strs = sb; _ } ) ->
    ( (fun i -> mix_int (Hashtbl.hash sa.(Bigarray.Array1.unsafe_get ca i))),
      fun i -> mix_int (Hashtbl.hash sb.(Bigarray.Array1.unsafe_get cb i)) )
  | _ -> (generic a, generic b)

(* {2 Selection vectors} *)

type sel = { mutable idx : int array; mutable n : int }

let sel_all n = { idx = Array.init n (fun i -> i); n }

(* In-place refinement: keep the selected indices satisfying [p]. *)
let refine p sel =
  let k = ref 0 in
  for i = 0 to sel.n - 1 do
    let r = Array.unsafe_get sel.idx i in
    if p r then begin
      Array.unsafe_set sel.idx !k r;
      incr k
    end
  done;
  sel.n <- !k

let gather (rows : Table.row array) sel =
  Array.init sel.n (fun k -> rows.(sel.idx.(k)))

let next_pow2 n =
  let rec go k = if k >= n then k else go (k * 2) in
  go 16

(* Fully fused single-int-key hash join: build a chained-bucket index over
   the build column and probe it, calling [emit bi pi] for every key-equal
   (build, probe) pair — probe-major, latest-insertion-first within equal
   keys, i.e. exactly the order the generic chunked loop (and
   [Hashtbl.find_all] in the scalar engine) yields. Bucketing uses the
   splitmix finalizer written out inline; chain entries are confirmed by
   comparing the keys themselves, so hash choice affects buckets only.
   Returns [false] when the pair is not two int columns of the same kind
   (caller falls back to the generic loop). *)
let join_ints ?on_index (b : Column.t) (p : Column.t) emit =
  match b, p with
  | Column.Ints { kind = kb; data = db }, Column.Ints { kind = kp; data = dp }
    when kb = kp ->
    let nb = Bigarray.Array1.dim db and np = Bigarray.Array1.dim dp in
    let sz = next_pow2 (2 * max 1 nb) in
    let msk = sz - 1 in
    let head = Array.make sz (-1) in
    let next = Array.make (max 1 nb) (-1) in
    (* Multiplicative (Fibonacci) bucketing — one multiply, take high
       bits. Collisions are confirmed by the key compare below, so a
       weaker-but-cheap hash only ever costs chain-walk time. *)
    for bi = 0 to nb - 1 do
      let x = Bigarray.Array1.unsafe_get db bi * 0x2545F4914F6CDD1D in
      let h = (x lsr 32) land msk in
      Array.unsafe_set next bi (Array.unsafe_get head h);
      Array.unsafe_set head h bi
    done;
    (match on_index with
    | Some f -> f ~head ~next
    | None -> ());
    for pi = 0 to np - 1 do
      let k = Bigarray.Array1.unsafe_get dp pi in
      let x = k * 0x2545F4914F6CDD1D in
      let c = ref (Array.unsafe_get head ((x lsr 32) land msk)) in
      while !c >= 0 do
        let bi = !c in
        if Bigarray.Array1.unsafe_get db bi = k then emit bi pi;
        c := Array.unsafe_get next bi
      done
    done;
    true
  | _ -> false

(* Fused first-predicate scan: equivalent to
   [let s = sel_all n in refine (eq_const col v) s; s], but the common
   typed representations run a direct loop — no identity-vector
   initialization and no per-index closure call on rejected rows. *)
let sel_eq_const (col : Column.t) (v : Value.t) n : sel =
  let idx = Array.make (max 1 n) 0 in
  let k = ref 0 in
  let keep i =
    Array.unsafe_set idx !k i;
    incr k
  in
  (match col, v with
  | Column.Ints { kind = Column.KInt; data }, Value.Int x
  | Column.Ints { kind = Column.KDate; data }, Value.Date x ->
    for i = 0 to n - 1 do
      if Bigarray.Array1.unsafe_get data i = x then keep i
    done
  | Column.Floats data, Value.Float f ->
    for i = 0 to n - 1 do
      if feq (Bigarray.Array1.unsafe_get data i) f then keep i
    done
  | Column.Dict { codes; strs; _ }, Value.Str s ->
    let code = ref (-1) in
    Array.iteri
      (fun c e -> if !code < 0 && String.equal e s then code := c)
      strs;
    let code = !code in
    if code >= 0 then
      for i = 0 to n - 1 do
        if Bigarray.Array1.unsafe_get codes i = code then keep i
      done
  | _ ->
    let p = eq_const col v in
    for i = 0 to n - 1 do
      if p i then keep i
    done);
  { idx; n = !k }
