open Monsoon_storage
open Monsoon_relalg

(* The per-plan-node execution profile collector. One collector accompanies
   one executor; the executor's operators write scratch detail (path taken,
   representations touched, chain shape) while a node runs and [finish]
   freezes the scratch into an immutable node record. Everything except
   [n_seconds] is a pure function of the execution, which profiling never
   perturbs — so profiles are byte-identical (modulo time) across worker
   counts and audited/unaudited runs.

   The disabled collector follows the Null-sink rule: every mutator is one
   load-and-branch, so the instrumented hot paths cost noise when
   profiling is off (bench-gated, like [Fault.disabled]). *)

type kind = Scan | Join | Cross | Sigma

let kind_label = function
  | Scan -> "scan"
  | Join -> "hash-join"
  | Cross -> "cross"
  | Sigma -> "sigma"

type node = {
  n_expr : Expr.t;
  n_mask : Relset.t;
  n_kind : kind;
  n_path : string;
  n_repr : string list;
  n_rows_in : float;
  n_rows_out : float;
  n_selectivity : float;
  n_batches : int;
  n_sel_density : float;
  n_chain_max : int;
  n_chain_mean : float;
  n_budget : float;
  n_complete : bool;
  n_seconds : float;
}

type t = {
  live : bool;
  mutable rev_nodes : node list;  (* newest first *)
  mutable drained : int;  (* how many of rev_nodes were already drained *)
  (* scratch for the in-flight node, reset per node *)
  mutable c_kind : kind option;
  mutable c_path : string;
  mutable c_rows_in : float;
  mutable c_denom : float;  (* selectivity denominator *)
  mutable c_batches : int;
  mutable c_rev_repr : string list;
  mutable c_sel_density : float;  (* < 0 = unset *)
  mutable c_chain_max : int;
  mutable c_chain_mean : float;
}

let make live =
  { live;
    rev_nodes = [];
    drained = 0;
    c_kind = None;
    c_path = "";
    c_rows_in = 0.0;
    c_denom = 0.0;
    c_batches = 0;
    c_rev_repr = [];
    c_sel_density = -1.0;
    c_chain_max = 0;
    c_chain_mean = 0.0 }

let disabled = make false
let create () = make true
let live t = t.live

let reset t =
  if t.live then begin
    t.c_kind <- None;
    t.c_path <- "";
    t.c_rows_in <- 0.0;
    t.c_denom <- 0.0;
    t.c_batches <- 0;
    t.c_rev_repr <- [];
    t.c_sel_density <- -1.0;
    t.c_chain_max <- 0;
    t.c_chain_mean <- 0.0
  end

let set_kind t k = if t.live then t.c_kind <- Some k
let set_path t p = if t.live then t.c_path <- p

let set_input t ~rows ~denom =
  if t.live then begin
    t.c_rows_in <- rows;
    t.c_denom <- denom
  end

let add_batches t n = if t.live then t.c_batches <- t.c_batches + n

let repr_label = function
  | Column.Ints _ -> "ints"
  | Column.Floats _ -> "floats"
  | Column.Dict _ -> "dict"
  | Column.Boxed _ -> "boxed"

let add_repr t col =
  if t.live then t.c_rev_repr <- repr_label col :: t.c_rev_repr

let add_repr_rows t = if t.live then t.c_rev_repr <- "rows" :: t.c_rev_repr

let set_sel_density t ~kept ~of_ =
  if t.live then
    t.c_sel_density <-
      (if of_ <= 0 then 1.0 else float_of_int kept /. float_of_int of_)

(* Chain shape of a chained-bucket join index: [head]/[next] as built by
   the executor (and {!Chunk.join_ints}), -1-terminated. Mean is over
   non-empty buckets. Only called on the live path. *)
let observe_chains t ~head ~next =
  if t.live then begin
    let max_chain = ref 0 and entries = ref 0 and buckets = ref 0 in
    Array.iter
      (fun h ->
        if h >= 0 then begin
          incr buckets;
          let len = ref 0 in
          let c = ref h in
          while !c >= 0 do
            incr len;
            c := next.(!c)
          done;
          entries := !entries + !len;
          if !len > !max_chain then max_chain := !len
        end)
      head;
    t.c_chain_max <- !max_chain;
    t.c_chain_mean <-
      (if !buckets = 0 then 0.0
       else float_of_int !entries /. float_of_int !buckets)
  end

let finish t ~expr ~mask ~default_kind ~rows_out ~budget ~complete ~seconds =
  if t.live then begin
    let kind = match t.c_kind with Some k -> k | None -> default_kind in
    let selectivity =
      if t.c_denom <= 0.0 then 1.0 else rows_out /. t.c_denom
    in
    let node =
      { n_expr = expr;
        n_mask = mask;
        n_kind = kind;
        n_path = t.c_path;
        n_repr = List.rev t.c_rev_repr;
        n_rows_in = t.c_rows_in;
        n_rows_out = rows_out;
        n_selectivity = selectivity;
        n_batches = t.c_batches;
        n_sel_density =
          (if t.c_sel_density < 0.0 then selectivity else t.c_sel_density);
        n_chain_max = t.c_chain_max;
        n_chain_mean = t.c_chain_mean;
        n_budget = budget;
        n_complete = complete;
        n_seconds = seconds }
    in
    t.rev_nodes <- node :: t.rev_nodes
  end

let nodes t = List.rev t.rev_nodes

let drain t =
  let total = List.length t.rev_nodes in
  let fresh = total - t.drained in
  t.drained <- total;
  if fresh <= 0 then []
  else List.rev (List.filteri (fun i _ -> i < fresh) t.rev_nodes)

(* --- rendering --- *)

let to_recorder n =
  { Monsoon_telemetry.Recorder.p_kind = kind_label n.n_kind;
    p_path = n.n_path;
    p_repr = String.concat "," n.n_repr;
    p_rows_in = n.n_rows_in;
    p_rows_out = n.n_rows_out;
    p_selectivity = n.n_selectivity;
    p_batches = n.n_batches;
    p_sel_density = n.n_sel_density;
    p_chain_max = n.n_chain_max;
    p_chain_mean = n.n_chain_mean;
    p_budget = n.n_budget;
    p_complete = n.n_complete;
    p_ms = n.n_seconds *. 1000.0 }

(* A deterministic one-line fingerprint of a node: everything except the
   wall time, with floats printed as hex so equality is bit-exact. The
   byte-identity tests (jobs-invariance, audited-vs-unaudited) compare
   concatenations of these. *)
let fingerprint q n =
  Printf.sprintf
    "%s kind=%s path=%s repr=%s in=%h out=%h sel=%h batches=%d dens=%h \
     chain=%d/%h budget=%h complete=%b"
    (Expr.describe q n.n_expr) (kind_label n.n_kind) n.n_path
    (String.concat "," n.n_repr)
    n.n_rows_in n.n_rows_out n.n_selectivity n.n_batches n.n_sel_density
    n.n_chain_max n.n_chain_mean n.n_budget n.n_complete

(* --- Env packing (mirrors Ctx.to_env / of_env) --- *)

type Monsoon_util.Env.profile += Packed of t

let to_env ?(env = Monsoon_util.Env.default) t =
  Monsoon_util.Env.with_profile env (Packed t)

let of_env (env : Monsoon_util.Env.t) =
  match Monsoon_util.Env.profile env with Packed t -> t | _ -> disabled
