(** Frozen row-at-a-time reference executor.

    The pre-columnar engine, kept verbatim as the oracle the differential
    suite and the bench speedup kernels compare {!Executor} against. Same
    contract as {!Executor} — cost accounting, [stat_obs], budget, caching
    by instance mask, fault/deadline checkpoints — interpreted one boxed
    row at a time. Not called by any production path. *)

open Monsoon_storage
open Monsoon_relalg

exception Timeout

type budget = { mutable remaining : float }

val budget : float -> budget

type t

val create : ?env:Monsoon_util.Env.t -> Catalog.t -> Query.t -> budget -> t

val set_budget : t -> budget -> unit

type stat_obs = {
  obs_counts : (Relset.t * float) list;
  obs_distincts : (int * float) list;
  obs_stats_cost : float;
  obs_nodes : (Expr.t * float) list;
}

val execute : t -> Expr.t -> float * stat_obs
val materialized : t -> Relset.t -> Intermediate.t option
val result_rows : t -> Expr.t -> Table.row array
val total_produced : t -> float
val sigma_objects : t -> float
