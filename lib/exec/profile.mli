(** Per-plan-node execution profiles for the vectorized executor.

    A collector rides in the execution environment
    ([Env.with_profile] via {!to_env}); when live, {!Executor.execute}
    records one {!node} per plan node it materializes — operator kind,
    wall time (on the {!Monsoon_util.Timer} monotonic clock, the span
    clock), rows in/out, observed selectivity, chunk/batch counts, the
    column-representation mix per input slot, selection-vector density,
    the fused-vs-scalar path taken, join bucket-chain shape, and budget
    spent — in completion order, including a final incomplete node when
    the operator died to {!Executor.Timeout}, an expired deadline, or an
    injected fault.

    {b Determinism contract.} Every field except [n_seconds] is a pure
    function of the execution, and profiling never perturbs execution
    (it only reads), so {!fingerprint}s are byte-identical across
    [--jobs] worker counts and audited/unaudited runs; rows and
    selectivities agree exactly with the scalar {!Row_engine} oracle
    (pinned by the differential suite).

    {b Null-path rule.} {!disabled} is the one-branch no-op collector:
    every mutator is a single [live] load-and-branch, like
    [Fault.disabled] and the Null span sink, so instrumented hot paths
    cost noise when profiling is off (bench-gated). *)

open Monsoon_storage
open Monsoon_relalg

type kind = Scan | Join | Cross | Sigma

val kind_label : kind -> string
(** ["scan"] / ["hash-join"] / ["cross"] / ["sigma"]. *)

type node = {
  n_expr : Expr.t;  (** the plan node *)
  n_mask : Relset.t;
  n_kind : kind;
  n_path : string;
      (** path attribution: ["sel_eq_const"] / ["refine"] / ["raw"] /
          ["scalar"] for scans, ["join_ints"] / ["chained"] / ["scalar"]
          for joins, ["cross"] / ["cross-scalar"], ["column"] / ["row"]
          for Σ *)
  n_repr : string list;
      (** representation per input slot touched, in touch order *)
  n_rows_in : float;
  n_rows_out : float;  (** 0 when [n_complete] is false *)
  n_selectivity : float;
      (** rows out over the input domain (cross-product size for joins) *)
  n_batches : int;  (** chunk views consumed; 0 on the scalar path *)
  n_sel_density : float;
      (** selection-vector density after the first fused predicate, or
          the overall selectivity when nothing was fused *)
  n_chain_max : int;
  n_chain_mean : float;  (** over non-empty buckets; joins only *)
  n_budget : float;  (** budget drawn while this node ran *)
  n_complete : bool;
  n_seconds : float;  (** the only nondeterministic field *)
}

type t

val disabled : t
(** The shared no-op collector ({!live} = false). *)

val create : unit -> t
val live : t -> bool

(** {2 Producer interface (the executor)} *)

val reset : t -> unit
(** Clear the in-flight scratch; called when a node starts. *)

val set_kind : t -> kind -> unit
val set_path : t -> string -> unit

val set_input : t -> rows:float -> denom:float -> unit
(** Input cardinality and the selectivity denominator. *)

val add_batches : t -> int -> unit

val add_repr : t -> Column.t -> unit
(** Append the column's representation label to the input-slot mix. *)

val add_repr_rows : t -> unit
(** The scalar path touched boxed rows, not a column. *)

val set_sel_density : t -> kept:int -> of_:int -> unit

val observe_chains : t -> head:int array -> next:int array -> unit
(** Record bucket-chain shape from a chained index's [head]/[next]
    arrays (-1-terminated chains). Walks the index, so callers guard
    with {!live}. *)

val finish :
  t ->
  expr:Expr.t ->
  mask:Relset.t ->
  default_kind:kind ->
  rows_out:float ->
  budget:float ->
  complete:bool ->
  seconds:float ->
  unit
(** Freeze the scratch into a {!node} (kind from {!set_kind} when set,
    else [default_kind]) and append it in completion order. *)

(** {2 Consumer interface (driver, tests)} *)

val nodes : t -> node list
(** All nodes, completion order. *)

val drain : t -> node list
(** Nodes recorded since the previous [drain], completion order. The
    driver drains after every [Executor.execute] call — including the
    early-exit paths — so each Executed event carries exactly its own
    step's profiles. *)

val to_recorder : node -> Monsoon_telemetry.Recorder.node_profile
(** Render to the telemetry layer's plain-string/number form. *)

val fingerprint : Query.t -> node -> string
(** Deterministic one-line digest of everything except the wall time
    (hex floats, so equality is bit-exact) — the byte-identity tests
    compare concatenations of these. *)

(** {2 Env packing (mirrors [Ctx.to_env] / [Ctx.of_env])} *)

type Monsoon_util.Env.profile += Packed of t

val to_env : ?env:Monsoon_util.Env.t -> t -> Monsoon_util.Env.t
val of_env : Monsoon_util.Env.t -> t
(** The packed collector, or {!disabled} for an unpacked slot. *)
