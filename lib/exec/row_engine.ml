(* The frozen pre-columnar executor: one tuple at a time over boxed
   [Value.t] rows. This module is NOT part of the execution path — nothing
   in the library calls it. It exists as the reference implementation the
   differential suite ([test_differential]) and the bench speedup kernels
   pin {!Executor} against: identical cost accounting, identical stat_obs,
   identical fault/deadline checkpoints, row at a time. Do not "improve"
   it; its value is that it stays exactly what the columnar engine must
   reproduce. *)

open Monsoon_util
open Monsoon_storage
open Monsoon_relalg
open Monsoon_sketch
open Monsoon_telemetry

exception Timeout

type budget = { mutable remaining : float }

let budget r = { remaining = r }

(* Per-operator tuple counters, resolved once per execution context so the
   hot paths pay one float store per event. *)
type counters = {
  m_scanned : Metric.Counter.t;  (* base-table rows read *)
  m_built : Metric.Counter.t;  (* rows inserted into hash-join build tables *)
  m_probed : Metric.Counter.t;  (* rows driven through hash-join probes *)
  m_emitted : Metric.Counter.t;  (* join / cross-product output rows *)
  m_sigma : Metric.Counter.t;  (* objects processed by Σ passes *)
  m_budget : Metric.Counter.t;  (* budget consumed *)
  m_fault : Metric.Counter.t;  (* injected faults that escaped [execute] *)
}

type t = {
  catalog : Catalog.t;
  query : Query.t;
  mutable bud : budget;
  store : (Relset.t, Intermediate.t) Hashtbl.t;
  mutable produced : float;
  mutable sigma_total : float;
  fault : Fault.t;
  deadline : Deadline.t;
  tel : Ctx.t;
  m : counters;
}

let create ?(env = Env.default) catalog query bud =
  let fault = Env.fault env and deadline = Env.deadline env in
  let tel = Ctx.of_env env in
  let m =
    { m_scanned = Ctx.counter tel "exec.tuples_scanned";
      m_built = Ctx.counter tel "exec.tuples_built";
      m_probed = Ctx.counter tel "exec.tuples_probed";
      m_emitted = Ctx.counter tel "exec.tuples_emitted";
      m_sigma = Ctx.counter tel "exec.sigma_objects";
      m_budget = Ctx.counter tel "exec.budget_spent";
      m_fault = Ctx.counter tel "fault.injected" }
  in
  { catalog;
    query;
    bud;
    store = Hashtbl.create 16;
    produced = 0.0;
    sigma_total = 0.0;
    fault;
    deadline;
    tel;
    m }

let set_budget t bud = t.bud <- bud

type stat_obs = {
  obs_counts : (Relset.t * float) list;
  obs_distincts : (int * float) list;
  obs_stats_cost : float;
  obs_nodes : (Expr.t * float) list;
}

let materialized t mask = Hashtbl.find_opt t.store mask

let total_produced t = t.produced

let sigma_objects t = t.sigma_total

let spend t n =
  t.produced <- t.produced +. n;
  Metric.Counter.add t.m.m_budget n;
  t.bud.remaining <- t.bud.remaining -. n;
  if t.bud.remaining < 0.0 then raise Timeout

let compile_term t inter tm =
  let ev =
    Term.compile tm
      ~col_index:(fun ~rel ~col ->
        Intermediate.col_index t.query t.catalog inter ~rel ~col)
  in
  (* UDF checkpoint: the wrapper exists only when a plan is armed, so the
     disabled path keeps the bare compiled evaluator. *)
  if Fault.armed t.fault then (fun row ->
    Fault.udf t.fault;
    ev row)
  else ev

(* Predicate checkers over a single intermediate's rows. *)
let compile_filter t inter pid =
  match Query.pred t.query pid with
  | Predicate.Select { term = tm; value; _ } ->
    let ev = compile_term t inter tm in
    fun row -> Value.equal (ev row) value
  | Predicate.Join { left; right; _ } ->
    let evl = compile_term t inter left and evr = compile_term t inter right in
    fun row -> Value.equal (evl row) (evr row)

let scan_base t rel =
  let mask = Relset.singleton rel in
  match Hashtbl.find_opt t.store mask with
  | Some inter -> inter
  | None ->
    let table = Catalog.find t.catalog (Query.rel_by_id t.query rel).Query.table in
    let raw = Table.rows table in
    Metric.Counter.add t.m.m_scanned (float_of_int (Array.length raw));
    (* Row checkpoint: one draw per scanned base row. A poisoned row aborts
       the scan — corrupt data is detected, not silently propagated. *)
    if Fault.armed t.fault then Array.iter (fun _ -> Fault.row t.fault) raw;
    let inter0 = Intermediate.of_base t.query t.catalog ~rows:raw rel in
    let filters =
      List.map (compile_filter t inter0) (Query.select_preds_of_rel t.query rel)
    in
    let inter =
      if filters = [] then inter0
      else begin
        let keep = List.fold_left (fun acc f row -> acc row && f row) (fun _ -> true) filters in
        let rows =
          Array.of_seq (Seq.filter keep (Array.to_seq raw))
        in
        spend t (float_of_int (Array.length rows));
        Intermediate.of_base t.query t.catalog ~rows rel
      end
    in
    Hashtbl.replace t.store mask inter;
    inter

(* Orientation of a connecting join predicate: which term keys which side. *)
let orient_pred t lm pid =
  match Query.pred t.query pid with
  | Predicate.Join { left; right; _ } ->
    if Relset.subset (Term.rels left) lm then (left, right) else (right, left)
  | Predicate.Select _ -> assert false

let hash_join t (la : Intermediate.t) (rb : Intermediate.t) =
  let q = t.query in
  let conn = Query.connecting q la.Intermediate.mask rb.Intermediate.mask in
  let newly = Query.newly_evaluable q ~left:la.Intermediate.mask ~right:rb.Intermediate.mask in
  let filter_pids = List.filter (fun p -> not (List.mem p conn)) newly in
  let mask, offsets, width = Intermediate.combined_layout la rb in
  let out = ref [] in
  let n_out = ref 0 in
  let emit lrow rrow =
    let row = Array.make width Value.Null in
    Array.blit lrow 0 row 0 la.Intermediate.width;
    Array.blit rrow 0 row la.Intermediate.width rb.Intermediate.width;
    row
  in
  (* Filters run on the combined layout; build a template intermediate to
     compile them against. *)
  let combined_proto =
    { Intermediate.mask; offsets; width; rows = [||] }
  in
  let filters = List.map (compile_filter t combined_proto) filter_pids in
  let accept row = List.for_all (fun f -> f row) filters in
  if conn = [] then begin
    (* Cross product (with any straddling filters). *)
    Metric.Counter.add t.m.m_probed
      (float_of_int (Intermediate.cardinality la));
    Array.iter
      (fun lrow ->
        Array.iter
          (fun rrow ->
            let row = emit lrow rrow in
            if accept row then begin
              spend t 1.0;
              Metric.Counter.inc t.m.m_emitted;
              incr n_out;
              out := row :: !out
            end)
          rb.Intermediate.rows)
      la.Intermediate.rows
  end
  else begin
    (* Hash join on the composite key of all connecting predicates. Build on
       the smaller input. *)
    let build, probe, build_is_left =
      if Intermediate.cardinality la <= Intermediate.cardinality rb then
        (la, rb, true)
      else (rb, la, false)
    in
    let build_mask = build.Intermediate.mask in
    let keyers_build, keyers_probe =
      List.split
        (List.map
           (fun pid ->
             let bt, pt = orient_pred t build_mask pid in
             (compile_term t build bt, compile_term t probe pt))
           conn)
    in
    let key_of keyers row = List.map (fun k -> k row) keyers in
    Metric.Counter.add t.m.m_built
      (float_of_int (Intermediate.cardinality build));
    Metric.Counter.add t.m.m_probed
      (float_of_int (Intermediate.cardinality probe));
    (* Build checkpoint: one draw per hash-join build. *)
    Fault.build t.fault;
    let table = Hashtbl.create (Intermediate.cardinality build * 2) in
    Array.iter
      (fun row -> Hashtbl.add table (key_of keyers_build row) row)
      build.Intermediate.rows;
    Array.iter
      (fun prow ->
        let k = key_of keyers_probe prow in
        List.iter
          (fun brow ->
            let row =
              if build_is_left then emit brow prow else emit prow brow
            in
            if accept row then begin
              spend t 1.0;
              Metric.Counter.inc t.m.m_emitted;
              incr n_out;
              out := row :: !out
            end)
          (Hashtbl.find_all table k))
      probe.Intermediate.rows
  end;

  let rows = Array.of_list (List.rev !out) in
  { Intermediate.mask; offsets; width; rows }

let stats_pass t (inter : Intermediate.t) =
  (* One extra pass over the materialized input computes an HLL distinct
     count for every predicate-relevant term it can evaluate. *)
  let card = Intermediate.cardinality inter in
  Ctx.with_span t.tel "exec.sigma"
    ~attrs:[ ("objects", Span.Int card) ]
    (fun _ ->
      spend t (float_of_int card);
      Metric.Counter.add t.m.m_sigma (float_of_int card);
      t.sigma_total <- t.sigma_total +. float_of_int card;
      let terms = Query.interesting_terms t.query inter.Intermediate.mask in
      List.map
        (fun tm ->
          let ev = compile_term t inter tm in
          let hll = Hyperloglog.create ~p:14 () in
          Array.iter
            (fun row -> Hyperloglog.add_hash hll (Value.hash (ev row)))
            inter.Intermediate.rows;
          (tm.Term.id, Float.max 1.0 (Float.round (Hyperloglog.count hll))))
        terms)

let execute t expr =
  Ctx.with_span t.tel "exec.execute" (fun span ->
  let cost = ref 0.0 in
  let stats_cost = ref 0.0 in
  let obs_counts = ref [] in
  let obs_distincts = ref [] in
  let obs_nodes = ref [] in
  let full = Query.all_mask t.query in
  let record e mask inter =
    Hashtbl.replace t.store mask inter;
    let c = float_of_int (Intermediate.cardinality inter) in
    obs_counts := (mask, c) :: !obs_counts;
    obs_nodes := (e, c) :: !obs_nodes
  in
  let rec go ~is_root e : Intermediate.t =
    (* Batch boundary: one cooperative deadline check per plan node. *)
    Deadline.check t.deadline;
    match e with
    | Expr.Stats inner ->
      let inter = go ~is_root inner in
      let ds = stats_pass t inter in
      cost := !cost +. float_of_int (Intermediate.cardinality inter);
      stats_cost := !stats_cost +. float_of_int (Intermediate.cardinality inter);
      obs_distincts := ds @ !obs_distincts;
      inter
    | Expr.Leaf m -> (
      match Hashtbl.find_opt t.store m with
      | Some inter -> inter
      | None -> (
        match Relset.to_list m with
        | [ i ] ->
          let inter = scan_base t i in
          let c = float_of_int (Intermediate.cardinality inter) in
          obs_counts := (m, c) :: !obs_counts;
          obs_nodes := (e, c) :: !obs_nodes;
          inter
        | _ -> invalid_arg "Executor.execute: unmaterialized intermediate leaf"))
    | Expr.Join (a, b) -> (
      let m = Expr.mask e in
      match Hashtbl.find_opt t.store m with
      | Some inter -> inter
      | None ->
        let ia = go ~is_root:false a in
        let ib = go ~is_root:false b in
        let inter = hash_join t ia ib in
        let c = float_of_int (Intermediate.cardinality inter) in
        (* Final result of the complete query is not charged as cost. *)
        if not (is_root && Relset.equal m full) then cost := !cost +. c;
        record e m inter;
        inter)
  in
  (* Attributes reflect whatever was charged, even when the budget runs
     out mid-plan — the trace then shows where the run died. *)
  let close_attrs () =
    Span.set_attr span "objects" (Span.Float !cost);
    Span.set_attr span "sigma_objects" (Span.Float !stats_cost)
  in
  match go ~is_root:true expr with
  | _ ->
    close_attrs ();
    ( !cost,
      { obs_counts = !obs_counts;
        obs_distincts = !obs_distincts;
        obs_stats_cost = !stats_cost;
        obs_nodes = List.rev !obs_nodes } )
  | exception e ->
    (match e with
    | Fault.Injected _ -> Metric.Counter.inc t.m.m_fault
    | _ -> ());
    close_attrs ();
    raise e)

let result_rows t expr =
  match materialized t (Expr.mask expr) with
  | Some inter -> inter.Intermediate.rows
  | None -> invalid_arg "Executor.result_rows: not materialized"
