(* Prometheus / OpenMetrics text exposition over a Registry.

   The registry's dotted metric names ("driver.steps") become legal
   Prometheus names by sanitizing every character outside
   [a-zA-Z0-9_] to '_' and prefixing "monsoon_"; counters additionally
   get the conventional "_total" suffix ("driver.steps" ->
   "monsoon_driver_steps_total"). Output order is Registry.to_list
   order — sorted by raw name then labels — so the exposition is stable
   across scrapes and testable against goldens. *)

let content_type = "text/plain; version=0.0.4; charset=utf-8"

let num v =
  if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_nan v then "NaN"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let metric_name ?(counter = false) raw =
  let s = sanitize raw in
  let s =
    if String.starts_with ~prefix:"monsoon_" s then s else "monsoon_" ^ s
  in
  if counter && not (String.ends_with ~suffix:"_total" s) then s ^ "_total"
  else s

(* Label-value escaping per the exposition format: backslash, double
   quote, and newline. *)
let escape_label v =
  let buf = Buffer.create (String.length v + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "%s=\"%s\"" (sanitize k) (escape_label v))
           labels)
    ^ "}"

(* The same label set with one extra pair appended (for le / quantile). *)
let render_labels_plus labels (k, v) = render_labels (labels @ [ (k, v) ])

let quantiles = [ 0.5; 0.95; 0.99 ]

let kind_of = function
  | Registry.Counter _ -> "counter"
  | Registry.Gauge _ -> "gauge"
  | Registry.Histogram _ -> "histogram"

(* Groups Registry.to_list's sorted output by (raw name, kind): one
   HELP/TYPE header per group, every labeled instance under it. *)
let group_instruments reg =
  let rec go = function
    | [] -> []
    | ((k : Registry.key), inst) :: rest ->
      let same (k' : Registry.key) inst' =
        k'.Registry.name = k.Registry.name && kind_of inst' = kind_of inst
      in
      let members, rest' =
        List.partition (fun (k', i') -> same k' i') rest
      in
      (k.Registry.name, kind_of inst, (k, inst) :: members) :: go rest'
  in
  go (Registry.to_list reg)

let render_histogram buf base labels h =
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let cum = ref 0 in
  List.iter
    (fun (bounds, c) ->
      cum := !cum + c;
      let le =
        match bounds with None -> "0" | Some (_, hi) -> num hi
      in
      add "%s_bucket%s %d\n" base (render_labels_plus labels ("le", le)) !cum)
    (Metric.Histogram.buckets h);
  add "%s_bucket%s %d\n" base
    (render_labels_plus labels ("le", "+Inf"))
    (Metric.Histogram.count h);
  add "%s_sum%s %s\n" base (render_labels labels)
    (num (Metric.Histogram.sum h));
  add "%s_count%s %d\n" base (render_labels labels) (Metric.Histogram.count h)

let render reg =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun (raw, kind, members) ->
      let base = metric_name ~counter:(kind = "counter") raw in
      add "# HELP %s Monsoon metric %s\n" base (sanitize raw);
      add "# TYPE %s %s\n" base kind;
      List.iter
        (fun ((k : Registry.key), inst) ->
          let labels = k.Registry.labels in
          match inst with
          | Registry.Counter c ->
            add "%s%s %s\n" base (render_labels labels)
              (num (Metric.Counter.value c))
          | Registry.Gauge g ->
            add "%s%s %s\n" base (render_labels labels)
              (num (Metric.Gauge.value g))
          | Registry.Histogram h -> render_histogram buf base labels h)
        members;
      (* p50/p95/p99 companion lines: a gauge family next to each
         histogram, since log-bucketed histograms carry no native
         quantile series. *)
      if kind = "histogram" then begin
        add "# TYPE %s_quantile gauge\n" base;
        List.iter
          (fun ((k : Registry.key), inst) ->
            match inst with
            | Registry.Histogram h ->
              List.iter
                (fun q ->
                  add "%s_quantile%s %s\n" base
                    (render_labels_plus k.Registry.labels
                       ("quantile", num q))
                    (num (Metric.Histogram.quantile h q)))
                quantiles
            | _ -> ())
          members
      end)
    (group_instruments reg);
  Buffer.contents buf
