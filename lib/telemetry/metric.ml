module Counter = struct
  type t = { v : float Atomic.t }

  let create () = { v = Atomic.make 0.0 }

  (* Lock-free add: CAS on the boxed float. [compare_and_set] compares the
     box physically, and we hand back the exact value we read, so a failed
     CAS means precisely that another domain got in between. *)
  let rec add c x =
    let old = Atomic.get c.v in
    if not (Atomic.compare_and_set c.v old (old +. x)) then add c x

  let inc c = add c 1.0
  let value c = Atomic.get c.v
end

module Gauge = struct
  type t = { v : float Atomic.t }

  let create () = { v = Atomic.make 0.0 }
  let set g x = Atomic.set g.v x
  let value g = Atomic.get g.v
end

module Histogram = struct
  type t = {
    base : float;
    log_base : float;
    lock : Mutex.t;
    counts : (int, int) Hashtbl.t;  (* bucket index -> count, v > 0 only *)
    mutable underflow : int;  (* v <= 0 *)
    mutable n : int;
    mutable total : float;
    mutable mn : float;
    mutable mx : float;
  }

  let create ?(base = 2.0) () =
    if base <= 1.0 then invalid_arg "Histogram.create: base must be > 1";
    { base;
      log_base = Float.log base;
      lock = Mutex.create ();
      counts = Hashtbl.create 16;
      underflow = 0;
      n = 0;
      total = 0.0;
      mn = infinity;
      mx = neg_infinity }

  let locked h f =
    Mutex.lock h.lock;
    match f () with
    | x ->
      Mutex.unlock h.lock;
      x
    | exception e ->
      Mutex.unlock h.lock;
      raise e

  let base h = h.base

  (* floor(log_base v), corrected against float log imprecision so that
     exact powers of the base land in the bucket they open. *)
  let index_of h v =
    let i = ref (int_of_float (Float.floor (Float.log v /. h.log_base))) in
    while h.base ** float_of_int !i > v do
      decr i
    done;
    while h.base ** float_of_int (!i + 1) <= v do
      incr i
    done;
    !i

  let bucket_index h v = if v <= 0.0 then None else Some (index_of h v)

  let bucket_bounds h i =
    (h.base ** float_of_int i, h.base ** float_of_int (i + 1))

  let observe h v =
    locked h @@ fun () ->
    h.n <- h.n + 1;
    h.total <- h.total +. v;
    if v < h.mn then h.mn <- v;
    if v > h.mx then h.mx <- v;
    if v <= 0.0 then h.underflow <- h.underflow + 1
    else begin
      let i = index_of h v in
      Hashtbl.replace h.counts i
        (1 + Option.value ~default:0 (Hashtbl.find_opt h.counts i))
    end

  let count h = locked h @@ fun () -> h.n
  let sum h = locked h @@ fun () -> h.total

  let mean h =
    locked h @@ fun () -> if h.n = 0 then 0.0 else h.total /. float_of_int h.n

  let min_value h = locked h @@ fun () -> h.mn
  let max_value h = locked h @@ fun () -> h.mx

  let buckets_unlocked h =
    let positive =
      Hashtbl.fold (fun i c acc -> (i, c) :: acc) h.counts []
      |> List.sort compare
      |> List.map (fun (i, c) -> (Some (bucket_bounds h i), c))
    in
    if h.underflow > 0 then (None, h.underflow) :: positive else positive

  let buckets h = locked h @@ fun () -> buckets_unlocked h

  let quantile h q =
    locked h @@ fun () ->
    if h.n = 0 then 0.0
    else begin
      let rank = Float.max 1.0 (Float.round (q *. float_of_int h.n)) in
      let rec walk acc = function
        | [] -> h.mx  (* q = 1 rounding *)
        | (bounds, c) :: rest ->
          let acc = acc + c in
          if float_of_int acc >= rank then
            match bounds with None -> 0.0 | Some (_, hi) -> hi
          else walk acc rest
      in
      walk 0 (buckets_unlocked h)
    end

  let merge a b =
    if a.base <> b.base then invalid_arg "Histogram.merge: different bases";
    let m = create ~base:a.base () in
    (* [m] is private until returned, so blending under each input's own
       lock (one at a time, never nested) is race-free. *)
    let blend (h : t) =
      locked h @@ fun () ->
      Hashtbl.iter
        (fun i c ->
          Hashtbl.replace m.counts i
            (c + Option.value ~default:0 (Hashtbl.find_opt m.counts i)))
        h.counts;
      m.underflow <- m.underflow + h.underflow;
      m.n <- m.n + h.n;
      m.total <- m.total +. h.total;
      if h.mn < m.mn then m.mn <- h.mn;
      if h.mx > m.mx then m.mx <- h.mx
    in
    blend a;
    blend b;
    m
end
