(** EXPLAIN ANALYZE-style rendering of a recorded query trajectory.

    Takes the events captured by a {!Recorder} and produces the
    repo-standard ASCII report: a step timeline (one row per MDP decision,
    with the MCTS statistics of the chosen action), the executed plan trees
    with predicted / observed cardinality and the derived q-error per
    node, a worst-misestimate ranking, and the statistics that hardened
    into the catalog along the way. All tables use {!Snapshot.table}, so
    the output is visually identical to every other report in the repo. *)

val timeline_table : Recorder.t -> string
(** One row per {!Recorder.Decision}: step, chosen action, visit count and
    mean return of the choice, legal-action count, planning seconds. *)

val plan_tables : Recorder.t -> string
(** One table per {!Recorder.Executed} step: the plan tree (indented by
    node depth) with predicted / observed / q-error columns. When the run
    was profiled (nodes carry {!Recorder.node_profile}), each plan table
    is followed by an "Operator profile" table — operator kind, path
    taken, per-event time share, rows in/out, selectivity,
    selection-vector density, representation mix and join chain shape.
    Unprofiled recordings render byte-identically to before. *)

val misestimate_table : ?top:int -> Recorder.t -> string
(** The [top] (default 10) worst cardinality misestimates across the whole
    run, ranked by q-error descending. Empty string when no node carries a
    q-error. *)

val report : ?top:int -> ?trace:string -> Recorder.t -> string
(** The full report: summary header, timeline, plan trees, misestimates,
    and hardened-statistics summary. Empty recorder: a one-line note.
    [?trace] prints the request's trace id under the header, so a capture
    joins its {!Qlog} record and Perfetto spans on one key. *)
