type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- printing --- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num v ->
    if Float.is_nan v || v = Float.infinity || v = Float.neg_infinity then
      Buffer.add_string buf "null"
    else Buffer.add_string buf (number v)
  | Str s -> escape buf s
  | Arr xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  write buf v;
  Buffer.contents buf

(* --- parsing: plain recursive descent --- *)

exception Parse of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        if !pos >= n then fail "unterminated escape";
        (match s.[!pos] with
        | '"' -> Buffer.add_char buf '"'; advance ()
        | '\\' -> Buffer.add_char buf '\\'; advance ()
        | '/' -> Buffer.add_char buf '/'; advance ()
        | 'b' -> Buffer.add_char buf '\b'; advance ()
        | 'f' -> Buffer.add_char buf '\012'; advance ()
        | 'n' -> Buffer.add_char buf '\n'; advance ()
        | 'r' -> Buffer.add_char buf '\r'; advance ()
        | 't' -> Buffer.add_char buf '\t'; advance ()
        | 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let code = int_of_string ("0x" ^ String.sub s !pos 4) in
          pos := !pos + 4;
          (* Encode the code point as UTF-8 (surrogates are passed through
             as-is; traces never contain them). *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
        | c -> fail (Printf.sprintf "bad escape \\%c" c));
        go ()
      | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numeric c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && numeric s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin advance (); Arr [] end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); items (v :: acc)
          | Some ']' -> advance (); List.rev (v :: acc)
          | _ -> fail "expected , or ]"
        in
        Arr (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin advance (); Obj [] end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec fields acc =
          let f = field () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields (f :: acc)
          | Some '}' -> advance (); List.rev (f :: acc)
          | _ -> fail "expected , or }"
        in
        Obj (fields [])
      end
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing input";
    v
  with
  | v -> Ok v
  | exception Parse (p, msg) -> Error (Printf.sprintf "at %d: %s" p msg)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_float = function Num v -> Some v | _ -> None
let to_int = function Num v -> Some (int_of_float v) | _ -> None
let to_str = function Str s -> Some s | _ -> None
