(** Metric primitives: counters, gauges, and log-bucketed histograms.

    All three are domain-safe: counters and gauges are a single [Atomic]
    float (an update is one load plus a CAS — cheap enough to leave enabled
    on hot executor/MCTS paths, uncontended or not), and histograms take a
    short per-instance mutex around each observation. Updates from several
    domains never lose increments; readers see a consistent snapshot.
    Instances are normally interned through {!Registry} so snapshots can
    find them; nothing stops standalone use in tests. *)

module Counter : sig
  type t

  val create : unit -> t
  val inc : t -> unit
  val add : t -> float -> unit
  val value : t -> float
end

module Gauge : sig
  type t

  val create : unit -> t
  val set : t -> float -> unit
  val value : t -> float
end

module Histogram : sig
  type t
  (** Log-bucketed histogram: bucket [i] covers values in
      [[base^i, base^(i+1))] for any integer [i] (negative indices cover
      (0,1)); values ≤ 0 land in a dedicated underflow bucket. The default
      base is 2. *)

  val create : ?base:float -> unit -> t
  (** [base] must be > 1. *)

  val base : t -> float
  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val mean : t -> float  (** 0 when empty *)

  val min_value : t -> float
  (** Smallest observed value; [infinity] when empty. *)

  val max_value : t -> float
  (** Largest observed value; [neg_infinity] when empty. *)

  val bucket_index : t -> float -> int option
  (** [None] for the underflow (≤ 0) bucket. *)

  val bucket_bounds : t -> int -> float * float
  (** [(base^i, base^(i+1))] — the half-open range of bucket [i]. *)

  val buckets : t -> ((float * float) option * int) list
  (** Non-empty buckets in increasing order as [(bounds, count)];
      [None] bounds identify the underflow bucket (listed first). *)

  val quantile : t -> float -> float
  (** [quantile h q] for q ∈ [0,1]: the upper bound of the bucket holding
      the q-th observation (0 for the underflow bucket; 0 when empty).
      Accuracy is bounded by the bucket width, i.e. a factor of [base]. *)

  val merge : t -> t -> t
  (** Combined histogram; both inputs are left untouched.
      @raise Invalid_argument when the bases differ. *)
end
