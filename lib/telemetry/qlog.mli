(** The append-only query audit log: one JSONL record per driver run or
    served request.

    While the explain ring keeps the last N full captures and the span
    sinks keep timings, the qlog is the durable, compact, per-query
    record: which query ran, under which strategy, how it ended, what it
    cost in intermediate objects, how often it replanned, and how wrong
    its cardinality estimates were. Every producer (the Runner's cells,
    [monsoon serve]'s requests, [monsoon chaos]) emits the same schema —
    derived from the {!Recorder}'s [Query_finish] trajectory — so one
    aggregator ({!report}) and one regression differ ({!diff_report})
    cover them all.

    A record's [trace] field is the request's trace id
    ({!Ctx.with_trace_id}), so qlog records, Perfetto spans, and explain
    captures join on one key.

    Writers are domain-safe: each line is appended whole under the
    process-wide JSONL line lock ({!Span.with_line_lock}). The file is
    bounded: when an append would push it past [max_bytes] the current
    file rotates to [path ^ ".1"] (replacing any previous rotation) and a
    fresh file starts — the two files together never exceed roughly twice
    the bound. *)

type qnode = {
  qn_expr : string;  (** plan node, as {!Recorder.exec_node.node_expr} *)
  qn_kind : string;  (** operator kind: scan / hash-join / cross / sigma *)
  qn_path : string;  (** execution path taken (e.g. [join_ints], [scalar]) *)
  qn_repr : string;  (** comma-joined input representation mix *)
  qn_rows_in : float;
  qn_rows_out : float;
  qn_selectivity : float;
  qn_ms : float;  (** operator wall time — the one nondeterministic field *)
}
(** One operator's compact profile: the deterministic core of a
    {!Recorder.node_profile} plus wall time. Present only on profiled
    runs. *)

type record = {
  r_trace : string;  (** request trace id; joins spans and explains *)
  r_query : string;  (** query fingerprint (the suite name, e.g. ["iq7"]) *)
  r_strategy : string;  (** strategy (Runner cell) or serving entry point *)
  r_outcome : string;  (** {!Slo.outcome_label} token: ok/degraded/… *)
  r_latency : float;  (** end-to-end seconds (wall — varies run to run) *)
  r_queue_wait : float;  (** seconds queued at admission (server only) *)
  r_cost : float;  (** intermediate objects charged (the paper's measure) *)
  r_result_card : float;
  r_steps : int;  (** MDP steps taken *)
  r_replans : int;  (** planning invocations ({!Recorder.Decision} count) *)
  r_executes : int;  (** EXECUTE steps ({!Recorder.Executed} count) *)
  r_degraded : int;  (** faults survived on a fallback plan *)
  r_fault_detail : string list;
      (** one ["reason -> fallback"] entry per degradation, in order *)
  r_worst_q_error : float option;
      (** worst per-node q-error of the run; [None] when nothing was
          predicted *)
  r_detail : string;  (** failure reason, or extra server detail *)
  r_plan : string;  (** compact plan summary (truncated to 200 chars) *)
  r_nodes : qnode list;
      (** per-operator profiles in completion order, [[]] when the run
          was not profiled. The JSON field ([nodes]) is omitted entirely
          for the empty list, so unprofiled lines are byte-identical to
          the pre-profile schema and old files load fine. *)
}

val of_events :
  trace:string ->
  query:string ->
  strategy:string ->
  outcome:string ->
  latency:float ->
  queue_wait:float ->
  ?cost:float ->
  ?result_card:float ->
  ?plan:string ->
  ?detail:string ->
  Recorder.event list ->
  record
(** Builds a record from a recorded trajectory. [steps], [cost] and
    [result_card] come from the [Query_finish] event when present
    (falling back to the [?cost] / [?result_card] arguments, default 0 —
    the path for outcomes that never reached a recorder, e.g. rejected
    requests); [replans] / [executes] / [degraded] / [worst_q_error] are
    derived by folding over the events. An empty event list is valid. *)

val to_json : record -> Json.t
val of_json : Json.t -> (record, string) result

(** {1 The bounded writer} *)

type t

val create : ?max_bytes:int -> string -> (t, string) result
(** Opens [path] for appending (creating it empty if absent).
    [max_bytes] (default 64 MiB, minimum 4096) bounds the live file;
    crossing it rotates to [path ^ ".1"]. *)

val append : t -> record -> unit
(** Appends one record as a single JSONL line, whole, under the
    process-wide line lock; rotates first when the line would cross the
    size bound. Write errors are swallowed (audit logging must never fail
    a query). *)

val path : t -> string

val close : t -> unit
(** Flushes and closes. Idempotent. Appends after close are dropped. *)

(** {1 Reading and aggregating} *)

val load : string -> (record list, string) result
(** Reads a qlog file back (blank lines skipped); [Error] carries the
    first offending line number. *)

val report : ?top:int -> record list -> string
(** The audit report: a per-class table (one row per query fingerprint —
    requests, outcome mix, mean cost, mean replans, worst q-error), the
    [top] (default 10) slowest records by latency, and the worst
    cardinality misestimates. Aggregation folds records in sorted order,
    so the same multiset of records renders identically regardless of
    append order (parallel runs). *)

val top_nodes : ?top:int -> record list -> string
(** Hottest operators across every profiled record: one row per
    (class, plan node), summing wall time over all occurrences, ranked by
    total ms (ties broken by name, so the layout is stable for a fixed
    dataset). Empty string when no record carries profiles. *)

val diff_report : ?threshold:float -> old_:record list -> record list -> string * int
(** [diff_report ~old_ new_] compares two runs per query class on the
    deterministic fields only — mean cost, outcome counts, mean replans,
    worst q-error; never latency, which varies between byte-identical
    runs — and renders an lt_profile-style regression report. A class
    regresses when its mean cost grows by more than [threshold] (default
    1.1, i.e. +10%) or its run gets strictly worse categorically (new
    timeouts/errors, a lost class). Returns the report and the regression
    count; two runs with identical deterministic fields produce a
    byte-stable report and 0. When both runs carry operator profiles, an
    advisory "time-share shifts" table follows — per-class operator
    wall-time shares that moved by 5 points or more — which never counts
    toward the regression total (wall time varies between byte-identical
    runs). *)
