(* Chrome/Perfetto trace-event export.

   A collector is a span sink (Span.Callback) that records each completed
   span together with the id of the domain that closed it. [to_json]
   renders the Trace Event Format understood by ui.perfetto.dev and
   chrome://tracing: every span becomes a "B" (begin) and an "E" (end)
   event on its domain's tid, timestamps in microseconds, attributes as
   the B event's args.

   B/E events must nest properly per tid. Spans closed on one domain
   always nest in time (with_span opens/closes LIFO on the monotonic
   clock), so per tid we sort spans outermost-first (start ascending,
   stop descending) and run a sweep with an open-span stack: entering a
   span first closes every stacked span that ended at or before its
   start. The produced sequence is balanced and timestamp-ordered by
   construction — which the tests assert by replaying it. *)

type t = {
  lock : Mutex.t;
  mutable rev : (int * Span.t) list;  (* (domain id, span), newest first *)
}

let create () = { lock = Mutex.create (); rev = [] }

let sink t =
  Span.Callback
    (fun s ->
      let tid = (Domain.self () :> int) in
      Mutex.lock t.lock;
      t.rev <- (tid, s) :: t.rev;
      Mutex.unlock t.lock)

let spans t =
  Mutex.lock t.lock;
  let r = t.rev in
  Mutex.unlock t.lock;
  List.rev r

let attr_json = function
  | Span.Bool b -> Json.Bool b
  | Span.Int i -> Json.Num (float_of_int i)
  | Span.Float v -> Json.Num v
  | Span.Str s -> Json.Str s

let usec seconds = Json.Num (seconds *. 1e6)

let begin_event ~pid ~tid (s : Span.t) =
  Json.Obj
    [ ("name", Json.Str s.Span.name);
      ("cat", Json.Str "monsoon");
      ("ph", Json.Str "B");
      ("ts", usec s.Span.start);
      ("pid", Json.Num (float_of_int pid));
      ("tid", Json.Num (float_of_int tid));
      ("args",
       Json.Obj (List.rev_map (fun (k, v) -> (k, attr_json v)) s.Span.attrs))
    ]

let end_event ~pid ~tid ~ts (s : Span.t) =
  Json.Obj
    [ ("name", Json.Str s.Span.name);
      ("ph", Json.Str "E");
      ("ts", usec ts);
      ("pid", Json.Num (float_of_int pid));
      ("tid", Json.Num (float_of_int tid)) ]

let thread_name_event ~pid ~tid =
  Json.Obj
    [ ("name", Json.Str "thread_name");
      ("ph", Json.Str "M");
      ("pid", Json.Num (float_of_int pid));
      ("tid", Json.Num (float_of_int tid));
      ("args", Json.Obj [ ("name", Json.Str (Printf.sprintf "domain %d" tid)) ])
    ]

(* One tid's balanced B/E sequence (timestamp order). *)
let tid_events ~pid ~tid spans =
  let ordered =
    List.sort
      (fun (a : Span.t) (b : Span.t) ->
        if a.Span.start <> b.Span.start then compare a.Span.start b.Span.start
        else compare b.Span.stop a.Span.stop)
      spans
  in
  let out = ref [] in
  let emit e = out := e :: !out in
  let stack = ref [] in
  let rec close_until start =
    match !stack with
    | top :: rest when top.Span.stop <= start ->
      emit (end_event ~pid ~tid ~ts:top.Span.stop top);
      stack := rest;
      close_until start
    | _ -> ()
  in
  List.iter
    (fun (s : Span.t) ->
      close_until s.Span.start;
      emit (begin_event ~pid ~tid s);
      stack := s :: !stack)
    ordered;
  List.iter (fun s -> emit (end_event ~pid ~tid ~ts:s.Span.stop s)) !stack;
  List.rev !out

let to_json ?(pid = 0) t =
  let by_tid : (int, Span.t list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (tid, s) ->
      Hashtbl.replace by_tid tid
        (s :: Option.value ~default:[] (Hashtbl.find_opt by_tid tid)))
    (spans t);
  let tids =
    Hashtbl.fold (fun tid _ acc -> tid :: acc) by_tid [] |> List.sort compare
  in
  let events =
    List.concat_map
      (fun tid ->
        thread_name_event ~pid ~tid
        :: tid_events ~pid ~tid (Hashtbl.find by_tid tid))
      tids
  in
  Json.Obj
    [ ("traceEvents", Json.Arr events); ("displayTimeUnit", Json.Str "ms") ]

let to_string ?pid t = Json.to_string (to_json ?pid t) ^ "\n"
