(** A minimal JSON value type with a printer and a parser.

    Just enough for the telemetry subsystem's JSONL traces and metric
    snapshots — no external dependency. Numbers are floats (as in JSON
    itself); [to_string] prints them with 17 significant digits so a
    write → parse round trip is exact. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string

val of_string : string -> (t, string) result
(** Parses one JSON value (surrounding whitespace allowed); [Error msg]
    carries the character position of the failure. *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on anything else. *)

val to_float : t -> float option
val to_int : t -> int option
val to_str : t -> string option
