let num v = Printf.sprintf "%.6g" v
let opt_num = function None -> "-" | Some v -> num v

let q_cell = function
  | None -> "-"
  | Some q -> Printf.sprintf "%.2f" q

let timeline_table r =
  let rows =
    List.filter_map
      (function
        | Recorder.Decision
            { step; chosen; legal_actions; root_visits; plan_seconds;
              candidates; _ } ->
          let visits, mean =
            match
              List.find_opt
                (fun (c : Recorder.candidate) ->
                  String.equal c.Recorder.cand_action chosen)
                candidates
            with
            | Some c ->
              ( string_of_int c.Recorder.cand_visits,
                num c.Recorder.cand_mean )
            | None -> ("-", "-")
          in
          Some
            [ string_of_int step; chosen; visits; mean;
              string_of_int legal_actions; string_of_int root_visits;
              Printf.sprintf "%.4f" plan_seconds ]
        | Recorder.Executed { step; cost; timed_out; nodes; _ } ->
          Some
            [ string_of_int step;
              Printf.sprintf "  → materialized %d nodes, cost %s%s"
                (List.length nodes) (num cost)
                (if timed_out then " (BUDGET EXHAUSTED)" else "");
              "-"; "-"; "-"; "-"; "-" ]
        | _ -> None)
      (Recorder.events r)
  in
  Snapshot.table ~title:"Decision timeline (MDP steps, chosen via MCTS)"
    ~header:[ "Step"; "Action"; "Visits"; "Mean reward"; "Legal"; "Root"; "Plan s" ]
    rows

let node_rows nodes =
  List.map
    (fun (n : Recorder.exec_node) ->
      [ String.make (2 * n.Recorder.node_depth) ' ' ^ n.Recorder.node_expr;
        opt_num n.Recorder.node_predicted;
        opt_num n.Recorder.node_observed;
        q_cell n.Recorder.node_q_error ])
    nodes

(* One row per profiled node of an Executed event; [None] when the run
   carried no operator profiles, so unprofiled reports render exactly as
   they always did. Time share is over this event's profiled nodes. *)
let profile_rows nodes =
  let profiled =
    List.filter_map
      (fun (n : Recorder.exec_node) ->
        Option.map (fun p -> (n, p)) n.Recorder.node_profile)
      nodes
  in
  match profiled with
  | [] -> None
  | _ ->
    let total_ms =
      List.fold_left
        (fun a (_, p) -> a +. p.Recorder.p_ms)
        0.0 profiled
    in
    Some
      (List.map
         (fun ((n : Recorder.exec_node), (p : Recorder.node_profile)) ->
           [ String.make (2 * n.Recorder.node_depth) ' '
             ^ n.Recorder.node_expr;
             p.Recorder.p_kind;
             (if p.Recorder.p_complete then p.Recorder.p_path
              else p.Recorder.p_path ^ " (killed)");
             (if total_ms > 0.0 then
                Printf.sprintf "%.1f"
                  (100.0 *. p.Recorder.p_ms /. total_ms)
              else "-");
             Printf.sprintf "%.3f" p.Recorder.p_ms;
             num p.Recorder.p_rows_in;
             num p.Recorder.p_rows_out;
             Printf.sprintf "%.3g" p.Recorder.p_selectivity;
             Printf.sprintf "%.3g" p.Recorder.p_sel_density;
             (if p.Recorder.p_repr = "" then "-" else p.Recorder.p_repr);
             (if p.Recorder.p_chain_max = 0 then "-"
              else
                Printf.sprintf "%d/%.2f" p.Recorder.p_chain_max
                  p.Recorder.p_chain_mean) ])
         profiled)

let profile_header =
  [ "Plan node"; "Op"; "Path"; "Time %"; "ms"; "Rows in"; "Rows out";
    "Sel"; "Dens"; "Repr"; "Chain" ]

let plan_tables r =
  let tables =
    List.filter_map
      (function
        | Recorder.Executed { step; nodes; cost; timed_out } ->
          let title =
            Printf.sprintf "EXECUTE at step %d (cost %s%s)" step (num cost)
              (if timed_out then "; budget exhausted mid-plan" else "")
          in
          let plan =
            Snapshot.table ~title
              ~header:[ "Plan node"; "Predicted"; "Observed"; "Q-error" ]
              (node_rows nodes)
          in
          Some
            (match profile_rows nodes with
            | None -> plan
            | Some rows ->
              plan ^ "\n"
              ^ Snapshot.table
                  ~title:(Printf.sprintf "Operator profile for step %d" step)
                  ~header:profile_header rows)
        | _ -> None)
      (Recorder.events r)
  in
  String.concat "\n" tables

let all_nodes r =
  List.concat_map
    (function
      | Recorder.Executed { nodes; _ } -> nodes
      | _ -> [])
    (Recorder.events r)

let misestimate_table ?(top = 10) r =
  (* A node can appear under several planned expressions (e.g. a leaf shared
     by a Σ plan and a join plan); rank each expression once, at its worst. *)
  let seen = Hashtbl.create 16 in
  let ranked =
    all_nodes r
    |> List.filter_map (fun (n : Recorder.exec_node) ->
           Option.map (fun q -> (q, n)) n.Recorder.node_q_error)
    |> List.stable_sort (fun ((a : float), _) (b, _) -> compare b a)
    |> List.filter (fun (_, (n : Recorder.exec_node)) ->
           if Hashtbl.mem seen n.Recorder.node_expr then false
           else begin
             Hashtbl.add seen n.Recorder.node_expr ();
             true
           end)
    |> List.filteri (fun i _ -> i < top)
  in
  if ranked = [] then ""
  else
    Snapshot.table
      ~title:
        (Printf.sprintf "Worst cardinality misestimates (top %d by q-error)"
           (List.length ranked))
      ~header:[ "Rank"; "Plan node"; "Predicted"; "Observed"; "Q-error" ]
      (List.mapi
         (fun i (q, (n : Recorder.exec_node)) ->
           [ string_of_int (i + 1); n.Recorder.node_expr;
             opt_num n.Recorder.node_predicted;
             opt_num n.Recorder.node_observed;
             Printf.sprintf "%.2f" q ])
         ranked)

let hardened_table r =
  let rows =
    List.filter_map
      (function
        | Recorder.Stat_observed { step; subject; pretty; value } ->
          let kind =
            match subject with
            | Recorder.Count _ -> "count"
            | Recorder.Distinct _ -> "distinct"
          in
          Some [ string_of_int step; kind; pretty; num value ]
        | _ -> None)
      (Recorder.events r)
  in
  if rows = [] then ""
  else
    Snapshot.table
      ~title:
        (Printf.sprintf "Statistics hardened into the catalog (%d)"
           (List.length rows))
      ~header:[ "Step"; "Kind"; "Subject"; "Value" ]
      rows

let degradation_table r =
  let rows =
    List.filter_map
      (function
        | Recorder.Degraded { step; reason; fallback } ->
          Some [ string_of_int step; reason; fallback ]
        | _ -> None)
      (Recorder.events r)
  in
  if rows = [] then ""
  else
    Snapshot.table
      ~title:
        (Printf.sprintf "Degraded execution (%d fault%s survived)"
           (List.length rows)
           (if List.length rows = 1 then "" else "s"))
      ~header:[ "Step"; "Fault"; "Fallback plan" ]
      rows

let summary ?trace r =
  let start =
    List.find_map
      (function
        | Recorder.Query_start { query; n_rels; _ } -> Some (query, n_rels)
        | _ -> None)
      (Recorder.events r)
  in
  let finish =
    List.find_map
      (function
        | Recorder.Query_finish { steps; cost; timed_out; result_card } ->
          Some (steps, cost, timed_out, result_card)
        | _ -> None)
      (Recorder.events r)
  in
  let qerrs =
    List.filter_map
      (fun (n : Recorder.exec_node) -> n.Recorder.node_q_error)
      (all_nodes r)
  in
  let buf = Buffer.create 256 in
  (match start with
  | Some (query, n_rels) ->
    Buffer.add_string buf
      (Printf.sprintf "EXPLAIN %s (%d relation instances)\n" query n_rels)
  | None -> Buffer.add_string buf "EXPLAIN (no query_start event)\n");
  (match trace with
  | Some t -> Buffer.add_string buf (Printf.sprintf "  trace %s\n" t)
  | None -> ());
  (match finish with
  | Some (steps, cost, timed_out, result_card) ->
    Buffer.add_string buf
      (Printf.sprintf
         "  %d MDP steps, total cost %s objects, result cardinality %s%s\n"
         steps (num cost) (num result_card)
         (if timed_out then " — TIMED OUT (budget exhausted)" else ""))
  | None -> ());
  (match qerrs with
  | [] -> ()
  | _ ->
    let n = float_of_int (List.length qerrs) in
    let mean = List.fold_left ( +. ) 0.0 qerrs /. n in
    let worst = List.fold_left Float.max 1.0 qerrs in
    Buffer.add_string buf
      (Printf.sprintf
         "  cardinality estimation: %d predictions, mean q-error %.2f, worst %.2f\n"
         (List.length qerrs) mean worst));
  Buffer.contents buf

let report ?top ?trace r =
  if Recorder.events r = [] then "(empty recording)\n"
  else
    let parts =
      [ summary ?trace r; timeline_table r; plan_tables r; degradation_table r;
        misestimate_table ?top r; hardened_table r ]
    in
    String.concat "\n" (List.filter (fun s -> s <> "") parts)
