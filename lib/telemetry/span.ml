open Monsoon_util

type attr =
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

type t = {
  id : int;
  parent : int option;
  name : string;
  start : float;
  mutable stop : float;
  mutable attrs : (string * attr) list;
}

let duration s = s.stop -. s.start

type buffer = {
  block : Mutex.t;
  mutable spans : t list;  (* reverse completion order *)
}

type sink =
  | Null
  | Memory of buffer
  | Jsonl of out_channel
  | Callback of (t -> unit)
  | Multi of sink list

let memory_buffer () = { block = Mutex.create (); spans = [] }

let buffer_spans b =
  Mutex.lock b.block;
  let spans = b.spans in
  Mutex.unlock b.block;
  List.rev spans

let rec sink_enabled = function
  | Null -> false
  | Memory _ | Jsonl _ | Callback _ -> true
  | Multi sinks -> List.exists sink_enabled sinks

(* Span ids come from an atomic counter so concurrent domains never collide;
   the open-span stack is domain-local (each domain nests independently,
   parents never cross domains). The DLS key is allocated only for enabled
   sinks — Null tracers are created per query in bulk and must stay free. *)
type tracer = {
  sink : sink;
  next_id : int Atomic.t;
  stack : int list ref Domain.DLS.key option;
}

let make sink =
  { sink;
    next_id = Atomic.make 0;
    stack =
      (if sink_enabled sink then Some (Domain.DLS.new_key (fun () -> ref []))
       else None) }

let null () = make Null
let sink t = t.sink
let enabled t = sink_enabled t.sink

(* The span handed to thunks when nothing is recording; attribute writes on
   it are dropped so it cannot grow. *)
let dummy =
  { id = -1; parent = None; name = "";
    start = 0.0; stop = 0.0; attrs = [] }

let set_attr s k v =
  if s != dummy then s.attrs <- (k, v) :: List.remove_assoc k s.attrs

let attr_to_json = function
  | Bool b -> Json.Bool b
  | Int i -> Json.Num (float_of_int i)
  | Float v -> Json.Num v
  | Str s -> Json.Str s

let to_json s =
  Json.Obj
    [ ("name", Json.Str s.name);
      ("id", Json.Num (float_of_int s.id));
      ("parent",
       match s.parent with
       | None -> Json.Null
       | Some p -> Json.Num (float_of_int p));
      ("start", Json.Num s.start);
      ("stop", Json.Num s.stop);
      ("attrs",
       Json.Obj (List.rev_map (fun (k, v) -> (k, attr_to_json v)) s.attrs)) ]

let of_json j =
  let ( let* ) r f = Result.bind r f in
  let field name conv =
    match Option.bind (Json.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "span: missing or bad %S" name)
  in
  let* name = field "name" Json.to_str in
  let* id = field "id" Json.to_int in
  let* start = field "start" Json.to_float in
  let* stop = field "stop" Json.to_float in
  let parent = Option.bind (Json.member "parent" j) Json.to_int in
  let attrs =
    match Json.member "attrs" j with
    | Some (Json.Obj fields) ->
      List.filter_map
        (fun (k, v) ->
          match v with
          | Json.Bool b -> Some (k, Bool b)
          | Json.Num x ->
            Some (k, if Float.is_integer x then Int (int_of_float x) else Float x)
          | Json.Str s -> Some (k, Str s)
          | Json.Null | Json.Arr _ | Json.Obj _ -> None)
        fields
    | _ -> []
  in
  Ok { id; parent; name; start; stop; attrs = List.rev attrs }

(* One process-wide lock serialises Jsonl writes: a span's line must not
   interleave with another domain's, whichever tracer owns the channel. *)
let jsonl_lock = Mutex.create ()

let with_line_lock f =
  Mutex.lock jsonl_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock jsonl_lock) f

let rec emit sink s =
  match sink with
  | Null -> ()
  | Memory b ->
    Mutex.lock b.block;
    b.spans <- s :: b.spans;
    Mutex.unlock b.block
  | Jsonl oc ->
    let line = Json.to_string (to_json s) in
    Mutex.lock jsonl_lock;
    output_string oc line;
    output_char oc '\n';
    Mutex.unlock jsonl_lock
  | Callback f -> f s
  | Multi sinks -> List.iter (fun snk -> emit snk s) sinks

(* Pushing buffered Jsonl lines to the OS (under the same line lock, so a
   flush never tears a line) makes tailing the trace file during a long
   run work; the runner calls this at query boundaries and the monitor on
   every sampler tick. *)
let rec flush = function
  | Null | Memory _ | Callback _ -> ()
  | Jsonl oc ->
    Mutex.lock jsonl_lock;
    (try Stdlib.flush oc with Sys_error _ -> ());
    Mutex.unlock jsonl_lock
  | Multi sinks -> List.iter flush sinks

let with_span tr ?(attrs = []) name f =
  match tr.stack with
  | None -> f dummy
  | Some key ->
    let stack = Domain.DLS.get key in
    let id = Atomic.fetch_and_add tr.next_id 1 in
    let parent = match !stack with [] -> None | p :: _ -> Some p in
    let s = { id; parent; name; start = Timer.now (); stop = nan; attrs } in
    stack := id :: !stack;
    let close () =
      s.stop <- Timer.now ();
      (stack := (match !stack with _ :: rest -> rest | [] -> []));
      emit tr.sink s
    in
    (match f s with
    | x -> close (); x
    | exception e ->
      set_attr s "error" (Str (Printexc.to_string e));
      close ();
      raise e)

let load_jsonl path =
  let ( let* ) r f = Result.bind r f in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc lineno =
        match input_line ic with
        | exception End_of_file -> Ok (List.rev acc)
        | "" -> go acc (lineno + 1)
        | line ->
          let* j =
            Result.map_error
              (fun e -> Printf.sprintf "line %d: %s" lineno e)
              (Json.of_string line)
          in
          let* s =
            Result.map_error
              (fun e -> Printf.sprintf "line %d: %s" lineno e)
              (of_json j)
          in
          go (s :: acc) (lineno + 1)
      in
      go [] 1)
