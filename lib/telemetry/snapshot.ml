(* The ASCII table layout every report in the repo uses (formerly private
   to Monsoon_harness.Report, which now delegates here). *)

let pad width s =
  let n = String.length s in
  if n >= width then s else s ^ String.make (width - n) ' '

let table ~title ~header rows =
  let all = header :: rows in
  let n_cols = List.length header in
  let widths =
    List.init n_cols (fun i ->
        List.fold_left
          (fun acc row ->
            match List.nth_opt row i with
            | Some cell -> max acc (String.length cell)
            | None -> acc)
          0 all)
  in
  let render_row row = "  " ^ String.concat "  " (List.map2 pad widths row) in
  let sep = "  " ^ String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (title ^ "\n");
  Buffer.add_string buf (render_row header ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (render_row r ^ "\n")) rows;
  Buffer.contents buf

(* --- metric snapshots --- *)

let num v = Printf.sprintf "%.6g" v

let labels_cell labels =
  String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)

let instrument_cells = function
  | Registry.Counter c -> ("counter", num (Metric.Counter.value c))
  | Registry.Gauge g -> ("gauge", num (Metric.Gauge.value g))
  | Registry.Histogram h ->
    ( "histogram",
      if Metric.Histogram.count h = 0 then "empty"
      else
        Printf.sprintf "n=%d mean=%s p50=%s p99=%s max=%s"
          (Metric.Histogram.count h)
          (num (Metric.Histogram.mean h))
          (num (Metric.Histogram.quantile h 0.5))
          (num (Metric.Histogram.quantile h 0.99))
          (num (Metric.Histogram.max_value h)) )

let metrics_rows reg =
  List.map
    (fun ((k : Registry.key), inst) ->
      let kind, value = instrument_cells inst in
      [ k.Registry.name; labels_cell k.Registry.labels; kind; value ])
    (Registry.to_list reg)

let metrics_table ?(title = "Telemetry metrics") reg =
  table ~title ~header:[ "Metric"; "Labels"; "Kind"; "Value" ] (metrics_rows reg)

let metrics_json reg =
  let instrument_json = function
    | Registry.Counter c ->
      Json.Obj
        [ ("kind", Json.Str "counter");
          ("value", Json.Num (Metric.Counter.value c)) ]
    | Registry.Gauge g ->
      Json.Obj
        [ ("kind", Json.Str "gauge");
          ("value", Json.Num (Metric.Gauge.value g)) ]
    | Registry.Histogram h ->
      Json.Obj
        [ ("kind", Json.Str "histogram");
          ("count", Json.Num (float_of_int (Metric.Histogram.count h)));
          ("sum", Json.Num (Metric.Histogram.sum h));
          ("buckets",
           Json.Arr
             (List.map
                (fun (bounds, c) ->
                  let lo, hi =
                    match bounds with
                    | None -> (Json.Null, Json.Num 0.0)
                    | Some (lo, hi) -> (Json.Num lo, Json.Num hi)
                  in
                  Json.Obj
                    [ ("lo", lo); ("hi", hi);
                      ("count", Json.Num (float_of_int c)) ])
                (Metric.Histogram.buckets h))) ]
  in
  Json.Arr
    (List.map
       (fun ((k : Registry.key), inst) ->
         Json.Obj
           [ ("name", Json.Str k.Registry.name);
             ("labels",
              Json.Obj (List.map (fun (l, v) -> (l, Json.Str v)) k.Registry.labels));
             ("instrument", instrument_json inst) ])
       (Registry.to_list reg))

(* --- component breakdown --- *)

type component = {
  comp_name : string;
  comp_spans : int;
  comp_seconds : float;
  comp_objects : float;
}

let objects_attr (s : Span.t) =
  match List.assoc_opt "objects" s.Span.attrs with
  | Some (Span.Float v) -> v
  | Some (Span.Int i) -> float_of_int i
  | _ -> 0.0

let breakdown spans =
  let tbl : (string, component) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (s : Span.t) ->
      let prev =
        Option.value
          ~default:
            { comp_name = s.Span.name; comp_spans = 0; comp_seconds = 0.0;
              comp_objects = 0.0 }
          (Hashtbl.find_opt tbl s.Span.name)
      in
      let d = Span.duration s in
      Hashtbl.replace tbl s.Span.name
        { prev with
          comp_spans = prev.comp_spans + 1;
          comp_seconds = prev.comp_seconds +. (if Float.is_nan d then 0.0 else d);
          comp_objects = prev.comp_objects +. objects_attr s })
    spans;
  Hashtbl.fold (fun _ c acc -> c :: acc) tbl []
  |> List.sort (fun a b -> compare b.comp_seconds a.comp_seconds)

let component name comps =
  List.find_opt (fun c -> c.comp_name = name) comps

let breakdown_table ?(title = "Component breakdown (from spans)") spans =
  let rows =
    List.map
      (fun c ->
        [ c.comp_name;
          string_of_int c.comp_spans;
          Printf.sprintf "%.4f" c.comp_seconds;
          num c.comp_objects ])
      (breakdown spans)
  in
  table ~title ~header:[ "Component"; "Spans"; "Seconds"; "Objects" ] rows

let breakdown_json spans =
  Json.Arr
    (List.map
       (fun c ->
         Json.Obj
           [ ("component", Json.Str c.comp_name);
             ("spans", Json.Num (float_of_int c.comp_spans));
             ("seconds", Json.Num c.comp_seconds);
             ("objects", Json.Num c.comp_objects) ])
       (breakdown spans))
