type t = { registry : Registry.t; tracer : Span.tracer }

let create ?(sink = Span.Null) () =
  { registry = Registry.create (); tracer = Span.make sink }

let null () = create ()

let counter t ?labels name = Registry.counter t.registry ?labels name
let gauge t ?labels name = Registry.gauge t.registry ?labels name

let histogram t ?base ?labels name =
  Registry.histogram t.registry ?base ?labels name

let with_span t ?attrs name f = Span.with_span t.tracer ?attrs name f
