type t = {
  registry : Registry.t;
  tracer : Span.tracer;
  recorder : Recorder.t;
  trace_id : string option;
}

let create ?(sink = Span.Null) ?recorder () =
  { registry = Registry.create ();
    tracer = Span.make sink;
    recorder =
      (match recorder with Some r -> r | None -> Recorder.null ());
    trace_id = None }

let null () = create ()
let with_recorder t recorder = { t with recorder }
let recorder t = t.recorder
let with_trace_id t tid = { t with trace_id = Some tid }
let trace_id t = t.trace_id

let counter t ?labels name = Registry.counter t.registry ?labels name
let gauge t ?labels name = Registry.gauge t.registry ?labels name

let histogram t ?base ?labels name =
  Registry.histogram t.registry ?base ?labels name

(* The trace attribute rides on every span the context opens, so one grep
   (or one Perfetto query) joins a request's spans with its qlog record
   and explain capture. Prepended only when a trace id is set — contexts
   without one (the default everywhere) build the attrs list untouched. *)
let with_span t ?attrs name f =
  let attrs =
    match t.trace_id with
    | None -> attrs
    | Some tid ->
      Some (("trace", Span.Str tid) :: Option.value ~default:[] attrs)
  in
  Span.with_span t.tracer ?attrs name f

let tracing t = Span.enabled t.tracer

let record t event = Recorder.record t.recorder event
let flush t = Span.flush (Span.sink t.tracer)

(* Env packing: the util layer owns the extensible slot, this layer owns
   the only constructor. [of_env] on an unpacked env is the Null context —
   the same default every entry point used to apply to a missing [?ctx]. *)
type Monsoon_util.Env.ctx += Packed of t

let to_env ?(env = Monsoon_util.Env.default) t =
  Monsoon_util.Env.with_ctx env (Packed t)

let of_env (env : Monsoon_util.Env.t) =
  match env.Monsoon_util.Env.ctx with Packed t -> t | _ -> null ()
