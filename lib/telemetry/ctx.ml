type t = {
  registry : Registry.t;
  tracer : Span.tracer;
  recorder : Recorder.t;
}

let create ?(sink = Span.Null) ?recorder () =
  { registry = Registry.create ();
    tracer = Span.make sink;
    recorder =
      (match recorder with Some r -> r | None -> Recorder.null ()) }

let null () = create ()
let with_recorder t recorder = { t with recorder }
let recorder t = t.recorder

let counter t ?labels name = Registry.counter t.registry ?labels name
let gauge t ?labels name = Registry.gauge t.registry ?labels name

let histogram t ?base ?labels name =
  Registry.histogram t.registry ?base ?labels name

let with_span t ?attrs name f = Span.with_span t.tracer ?attrs name f
let record t event = Recorder.record t.recorder event
let flush t = Span.flush (Span.sink t.tracer)
