type key = { name : string; labels : (string * string) list }

type instrument =
  | Counter of Metric.Counter.t
  | Gauge of Metric.Gauge.t
  | Histogram of Metric.Histogram.t

type t = { lock : Mutex.t; tbl : (key, instrument) Hashtbl.t }

let create () = { lock = Mutex.create (); tbl = Hashtbl.create 32 }

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | x ->
    Mutex.unlock t.lock;
    x
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let key name labels =
  { name; labels = List.sort (fun (a, _) (b, _) -> compare a b) labels }

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let intern t name labels ~make =
  let k = key name labels in
  locked t @@ fun () ->
  match Hashtbl.find_opt t.tbl k with
  | Some i -> i
  | None ->
    let i = make () in
    Hashtbl.replace t.tbl k i;
    i

let counter t ?(labels = []) name =
  match
    intern t name labels ~make:(fun () -> Counter (Metric.Counter.create ()))
  with
  | Counter c -> c
  | other ->
    invalid_arg
      (Printf.sprintf "Registry.counter: %s is a %s" name (kind_name other))

let gauge t ?(labels = []) name =
  match
    intern t name labels ~make:(fun () -> Gauge (Metric.Gauge.create ()))
  with
  | Gauge g -> g
  | other ->
    invalid_arg
      (Printf.sprintf "Registry.gauge: %s is a %s" name (kind_name other))

let histogram t ?base ?(labels = []) name =
  match
    intern t name labels
      ~make:(fun () -> Histogram (Metric.Histogram.create ?base ()))
  with
  | Histogram h -> h
  | other ->
    invalid_arg
      (Printf.sprintf "Registry.histogram: %s is a %s" name (kind_name other))

let find t ?(labels = []) name =
  locked t @@ fun () -> Hashtbl.find_opt t.tbl (key name labels)

let to_list t =
  locked t @@ fun () -> Hashtbl.fold (fun k i acc -> (k, i) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
