(** The observability context callers thread through the stack: one metric
    {!Registry.t}, one span {!Span.tracer}, and one decision flight
    {!Recorder.t}.

    Every instrumented entry point ([Executor.create], [Mcts.plan],
    [Driver.run], [Runner.run_suite], …) takes a single optional
    [?env:Monsoon_util.Env.t] carrying a context packed via {!to_env};
    omitting it gets a fresh Null-sink, null-recorder context, so
    uninstrumented callers keep working and pay only counter updates.
    There is exactly one way to ask for observability — no separate
    [?recorder] arguments anywhere.

    Registries, tracers, and metrics are domain-safe and may be shared
    across a worker pool. The recorder is the exception: it buffers events
    for a single query run and must be owned by one domain at a time —
    attach a fresh one per query via {!with_recorder}. *)

type t = {
  registry : Registry.t;
  tracer : Span.tracer;
  recorder : Recorder.t;
  trace_id : string option;
      (** request identity: when set, every span opened through
          {!with_span} carries a ["trace"] attribute with this id *)
}

val create : ?sink:Span.sink -> ?recorder:Recorder.t -> unit -> t
(** Default sink: {!Span.Null}; default recorder: {!Recorder.null}. *)

val null : unit -> t
(** Fresh context that records metrics but drops spans and events. *)

val with_recorder : t -> Recorder.t -> t
(** Same registry and tracer, different recorder — the per-query handle for
    EXPLAIN-style capture. *)

val recorder : t -> Recorder.t

val with_trace_id : t -> string -> t
(** Same registry, tracer, and recorder, with the given request trace id:
    every span subsequently opened through {!with_span} carries a
    ["trace"] attribute, so Perfetto timelines, JSONL trace lines, and the
    {!Qlog} record of one request join on one key. *)

val trace_id : t -> string option

val counter : t -> ?labels:(string * string) list -> string -> Metric.Counter.t
val gauge : t -> ?labels:(string * string) list -> string -> Metric.Gauge.t

val histogram :
  t -> ?base:float -> ?labels:(string * string) list -> string ->
  Metric.Histogram.t

val with_span :
  t -> ?attrs:(string * Span.attr) list -> string -> (Span.t -> 'a) -> 'a

val tracing : t -> bool
(** [Span.enabled] on the context's tracer: [false] when spans go to the
    Null sink. Lets producers skip building expensive span attributes
    (pretty-printed plan nodes) that no sink would record. *)

val record : t -> Recorder.event -> unit
(** Shorthand for [Recorder.record (recorder t)] — a single branch when the
    recorder is null. *)

val flush : t -> unit
(** {!Span.flush} on the context's span sink: pushes buffered JSONL trace
    lines to the OS. The driver calls this when a query finishes and the
    {!Monitor} on every sampler tick, so `tail -f` on a trace file tracks
    a long run instead of seeing everything at exit. *)

(** {2 Execution environments}

    [Monsoon_util.Env.t] is how contexts travel: engine entry points take
    one [?env] instead of a [?ctx]/[?fault]/[?deadline] triple. The
    telemetry slot of an env is an extensible variant owned by the util
    layer; these two functions are its only constructor and destructor. *)

type Monsoon_util.Env.ctx += Packed of t

val to_env : ?env:Monsoon_util.Env.t -> t -> Monsoon_util.Env.t
(** [to_env t] is {!Monsoon_util.Env.default} carrying [t]; pass [?env] to
    set the slot on an existing environment instead. *)

val of_env : Monsoon_util.Env.t -> t
(** The packed context, or {!null} for an unpacked slot — the same default
    a missing [?ctx] used to get. *)
