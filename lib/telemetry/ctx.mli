(** The telemetry context callers thread through the stack: one metric
    {!Registry.t} plus one span {!Span.tracer}.

    Every instrumented entry point ([Executor.create], [Mcts.plan],
    [Driver.run], [Runner.run_suite], …) takes an optional [?telemetry]
    context; omitting it gets a fresh Null-sink context, so uninstrumented
    callers keep working and pay only counter updates. *)

type t = { registry : Registry.t; tracer : Span.tracer }

val create : ?sink:Span.sink -> unit -> t
(** Default sink: {!Span.Null}. *)

val null : unit -> t
(** Fresh context that records metrics but drops spans. *)

val counter : t -> ?labels:(string * string) list -> string -> Metric.Counter.t
val gauge : t -> ?labels:(string * string) list -> string -> Metric.Gauge.t

val histogram :
  t -> ?base:float -> ?labels:(string * string) list -> string ->
  Metric.Histogram.t

val with_span :
  t -> ?attrs:(string * Span.attr) list -> string -> (Span.t -> 'a) -> 'a
