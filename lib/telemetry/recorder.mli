(** The per-query decision flight recorder.

    While {!Span} answers "where did the time go", the recorder answers
    "why did the optimizer do that": it captures the full optimize/execute
    trajectory of one driver run as structured events — every MDP decision
    with the MCTS root statistics of all candidate actions, every EXECUTE
    with predicted (prior-sampled at plan time) vs observed cardinalities
    and the derived q-error, and every statistic as it hardens into the
    catalog.

    The recorder is deliberately generic: events carry pretty-printed
    strings and plain numbers, never relational-algebra values, so the
    telemetry layer stays dependency-free and the producers (driver,
    executor) do the rendering. A {!null} recorder drops everything;
    [record] on it is a single branch, so the instrumented paths cost
    nothing when recording is off.

    Unlike the rest of the telemetry layer, a recorder is {b not}
    domain-safe: it buffers one query's trajectory and must be owned by a
    single domain at a time. Parallel harnesses attach a fresh recorder per
    query ({!Ctx.with_recorder}) instead of sharing one.

    Consumers: {!Explain} renders the ASCII EXPLAIN ANALYZE-style report;
    {!to_json} / {!to_dot} export the trajectory and the recorded MCTS
    root decisions for offline inspection ([dot -Tsvg] renders the
    search-tree view). *)

type candidate = {
  cand_action : string;  (** pretty-printed action *)
  cand_visits : int;  (** MCTS visits through the root edge *)
  cand_mean : float;  (** mean raw (unnormalized) return of the edge *)
}

(** One plan node's execution profile, as captured by
    [Monsoon_exec.Profile] and rendered to plain strings/numbers by the
    driver. Every field except [p_ms] is deterministic — byte-identical
    across worker counts and audited/unaudited runs. *)
type node_profile = {
  p_kind : string;  (** operator kind: ["scan"]/["hash-join"]/["cross"]/["sigma"] *)
  p_path : string;
      (** fused-vs-scalar path attribution, e.g. ["join_ints"],
          ["chained"], ["sel_eq_const"], ["refine"], ["scalar"] *)
  p_repr : string;
      (** comma-joined column representation per input slot touched, in
          touch order (["ints"]/["floats"]/["dict"]/["boxed"]/["rows"]) *)
  p_rows_in : float;  (** input rows (both sides summed for joins) *)
  p_rows_out : float;  (** output cardinality (0 for incomplete nodes) *)
  p_selectivity : float;
      (** rows out over the operator's input domain (the cross-product
          size for joins, the scan input for scans, 1 for Σ) *)
  p_batches : int;  (** chunk views consumed (0 on the scalar path) *)
  p_sel_density : float;
      (** selection-vector density after the first fused predicate;
          defaults to the overall selectivity when nothing was fused *)
  p_chain_max : int;  (** longest hash-join bucket chain (joins only) *)
  p_chain_mean : float;  (** mean chain length over non-empty buckets *)
  p_budget : float;  (** budget drawn while this node ran *)
  p_complete : bool;
      (** [false] when the node died to Timeout / deadline / fault *)
  p_ms : float;  (** wall milliseconds — the only nondeterministic field *)
}

type exec_node = {
  node_expr : string;  (** pretty-printed (sub-)expression *)
  node_mask : int;  (** relation-instance mask of the node *)
  node_depth : int;  (** depth in its plan tree (0 = root), for rendering *)
  node_predicted : float option;
      (** cardinality the planner expected, sampled from the prior over the
          statistics known at plan time; [None] when the count was already
          measured (nothing was predicted) *)
  node_observed : float option;
      (** measured result cardinality; [None] when the budget died before
          the node materialized *)
  node_q_error : float option;
      (** [q_error ~predicted ~observed] when both sides are present *)
  node_profile : node_profile option;
      (** operator-level execution profile, when the run was profiled and
          this node was materialized (not served from the cache) *)
}

type stat_subject =
  | Count of int  (** a result count, keyed by instance mask *)
  | Distinct of int  (** a Σ-measured distinct count, keyed by term id *)

type event =
  | Query_start of { query : string; n_rels : int; state_key : string }
      (** always first: the initial MDP state *)
  | Decision of {
      step : int;
      state_key : string;
      legal_actions : int;
      chosen : string;
      selection : string;  (** MCTS selection strategy, e.g. ["uct(w=1.41)"] *)
      root_visits : int;
      plan_seconds : float;
      candidates : candidate list;  (** root statistics, expansion order *)
    }
  | Executed of {
      step : int;
      nodes : exec_node list;  (** per planned expression, pre-order *)
      cost : float;  (** objects charged by this EXECUTE *)
      timed_out : bool;
    }
  | Stat_observed of {
      step : int;
      subject : stat_subject;
      pretty : string;  (** rendered mask or term *)
      value : float;
    }  (** a statistic hardening into the catalog *)
  | Degraded of { step : int; reason : string; fallback : string }
      (** an EXECUTE step died to an injected (or real) fault and the
          driver fell back to the named plan — [reason] is the fault
          class, [fallback] the pretty-printed replacement expression *)
  | Note of { step : int; message : string }
  | Query_finish of {
      steps : int;
      cost : float;
      timed_out : bool;
      result_card : float;
    }  (** always last *)

type t

val create : unit -> t
(** A recording recorder with an empty event buffer. *)

val null : unit -> t
(** Records nothing; {!record} is a no-op. *)

val enabled : t -> bool

val record : t -> event -> unit
val events : t -> event list
(** In recording order. *)

val clear : t -> unit

val q_error : predicted:float -> observed:float -> float
(** [max (p/o) (o/p)] with both sides clamped to ≥ 1 — the standard
    cardinality-estimation error factor ("How Good Are Query Optimizers,
    Really?"). Always ≥ 1; 1 means the estimate was exact. *)

val to_json : t -> Json.t
(** The full trajectory as a JSON array, one object per event. *)

val to_dot : t -> string
(** Graphviz digraph of the recorded MCTS root decisions: one cluster of
    candidate nodes per {!Decision} (labeled with visits and mean reward,
    the chosen edge bold), chained along the trajectory. Accepted by
    [dot -Tsvg]. *)
