(** Prometheus / OpenMetrics text exposition over a {!Registry}.

    [render reg] produces the scrape body the {!Monitor}'s [/metrics]
    endpoint serves: one [# HELP] / [# TYPE] header per (name, kind)
    group, one sample line per labeled instrument. Counters become
    [monsoon_<name>_total], gauges [monsoon_<name>]; histograms emit
    cumulative [_bucket{le="..."}] lines (the underflow bucket as
    [le="0"], a closing [le="+Inf"]), [_sum], [_count], and a companion
    [<name>_quantile] gauge family with p50/p95/p99 (the log-bucketed
    histogram's bucket upper bounds, accurate to a factor of the base).

    Output order follows {!Registry.to_list} — sorted by raw name, then
    labels — so the exposition is byte-stable for a given registry
    state and safe to golden-test. *)

val content_type : string
(** The HTTP [Content-Type] for {!render} output
    (text exposition format 0.0.4). *)

val metric_name : ?counter:bool -> string -> string
(** Sanitized exposition name: characters outside [[a-zA-Z0-9_]] become
    ['_'], a ["monsoon_"] prefix is ensured, and [~counter:true] appends
    ["_total"] (unless already present). E.g.
    [metric_name ~counter:true "driver.steps" =
    "monsoon_driver_steps_total"]. *)

val escape_label : string -> string
(** Label-value escaping: backslash, double quote, newline. *)

val render : Registry.t -> string
