(** Chrome/Perfetto trace-event export for spans.

    A collector gathers completed spans with the id of the domain that
    closed them ({!sink} is a {!Span.sink.Callback}, so attribution is
    free) and renders the Trace Event Format JSON that
    [ui.perfetto.dev] / [chrome://tracing] load directly: a ["B"]/["E"]
    event pair per span with [tid] = domain id, [ts] in microseconds on
    the span clock, attributes as the begin event's [args], plus one
    [thread_name] metadata event per domain.

    Per tid the emitted sequence is balanced and timestamp-ordered by
    construction (spans on one domain always nest in time; the renderer
    replays them outermost-first with an open-span sweep), so a
    consumer that matches B/E pairs with a stack never underflows.

    Selected on the CLI with [--trace FILE --trace-format perfetto]. *)

type t

val create : unit -> t

val sink : t -> Span.sink
(** The collecting sink; domain-safe (a mutex-guarded buffer). Combine
    with other sinks via {!Span.sink.Multi}. *)

val spans : t -> (int * Span.t) list
(** [(domain id, span)] in completion order. *)

val to_json : ?pid:int -> t -> Json.t
(** [{"traceEvents": [...], "displayTimeUnit": "ms"}]; [pid] defaults
    to 0. *)

val to_string : ?pid:int -> t -> string
(** [to_json] printed, newline-terminated — the file to open in
    Perfetto. *)
