(** A global-free metric registry.

    Callers thread a registry explicitly (usually inside a {!Ctx.t});
    nothing in the library touches process-global state, so concurrent
    runs, tests, and nested experiments cannot observe each other. One
    registry may be shared across domains: interning and lookups take a
    per-registry mutex, so two domains asking for the same (name, labels)
    always receive the same instrument. Hot paths should still resolve
    instruments once and hold on to the result.

    [counter]/[gauge]/[histogram] intern by (name, labels): the first call
    creates the instrument, later calls return the same one, so hot paths
    should resolve once and hold on to the result. Asking for an existing
    name with a different instrument kind raises [Invalid_argument]. *)

type t

type key = private {
  name : string;
  labels : (string * string) list;  (** sorted by label name *)
}

type instrument =
  | Counter of Metric.Counter.t
  | Gauge of Metric.Gauge.t
  | Histogram of Metric.Histogram.t

val create : unit -> t

val counter : t -> ?labels:(string * string) list -> string -> Metric.Counter.t
val gauge : t -> ?labels:(string * string) list -> string -> Metric.Gauge.t

val histogram :
  t -> ?base:float -> ?labels:(string * string) list -> string ->
  Metric.Histogram.t
(** [base] only applies when the call creates the histogram. *)

val find : t -> ?labels:(string * string) list -> string -> instrument option

val to_list : t -> (key * instrument) list
(** Sorted by name, then labels — the iteration order of snapshots. *)
