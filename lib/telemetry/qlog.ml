(* One operator's compact profile inside a record: the deterministic core
   of a [Recorder.node_profile] plus its wall time. Only profiled runs
   carry these; the JSON field is omitted entirely when empty, so
   unprofiled lines are byte-identical to the pre-profile schema. *)
type qnode = {
  qn_expr : string;
  qn_kind : string;
  qn_path : string;
  qn_repr : string;
  qn_rows_in : float;
  qn_rows_out : float;
  qn_selectivity : float;
  qn_ms : float;
}

type record = {
  r_trace : string;
  r_query : string;
  r_strategy : string;
  r_outcome : string;
  r_latency : float;
  r_queue_wait : float;
  r_cost : float;
  r_result_card : float;
  r_steps : int;
  r_replans : int;
  r_executes : int;
  r_degraded : int;
  r_fault_detail : string list;
  r_worst_q_error : float option;
  r_detail : string;
  r_plan : string;
  r_nodes : qnode list;
}

(* The plan column is a summary, not an archive: explain captures keep the
   full tree, the qlog keeps enough to tell plans apart. *)
let truncate_plan s =
  if String.length s <= 200 then s else String.sub s 0 197 ^ "..."

let of_events ~trace ~query ~strategy ~outcome ~latency ~queue_wait
    ?(cost = 0.0) ?(result_card = 0.0) ?(plan = "") ?(detail = "") events =
  let steps = ref 0 in
  let cost = ref cost in
  let result_card = ref result_card in
  let replans = ref 0 in
  let executes = ref 0 in
  let degraded = ref 0 in
  let fault_detail = ref [] in
  let worst_q = ref None in
  let rev_nodes = ref [] in
  List.iter
    (fun (ev : Recorder.event) ->
      match ev with
      | Recorder.Decision _ -> incr replans
      | Recorder.Executed { nodes; _ } ->
        incr executes;
        List.iter
          (fun (n : Recorder.exec_node) ->
            (match n.Recorder.node_profile with
            | None -> ()
            | Some p ->
              rev_nodes :=
                { qn_expr = n.Recorder.node_expr;
                  qn_kind = p.Recorder.p_kind;
                  qn_path = p.Recorder.p_path;
                  qn_repr = p.Recorder.p_repr;
                  qn_rows_in = p.Recorder.p_rows_in;
                  qn_rows_out = p.Recorder.p_rows_out;
                  qn_selectivity = p.Recorder.p_selectivity;
                  qn_ms = p.Recorder.p_ms }
                :: !rev_nodes);
            match n.Recorder.node_q_error with
            | None -> ()
            | Some q ->
              worst_q :=
                Some (match !worst_q with None -> q | Some w -> Float.max w q))
          nodes
      | Recorder.Degraded { reason; fallback; _ } ->
        incr degraded;
        fault_detail := Printf.sprintf "%s -> %s" reason fallback :: !fault_detail
      | Recorder.Query_finish { steps = s; cost = c; result_card = rc; _ } ->
        steps := s;
        cost := c;
        result_card := rc
      | Recorder.Query_start _ | Recorder.Stat_observed _ | Recorder.Note _ ->
        ())
    events;
  { r_trace = trace;
    r_query = query;
    r_strategy = strategy;
    r_outcome = outcome;
    r_latency = latency;
    r_queue_wait = queue_wait;
    r_cost = !cost;
    r_result_card = !result_card;
    r_steps = !steps;
    r_replans = !replans;
    r_executes = !executes;
    r_degraded = !degraded;
    r_fault_detail = List.rev !fault_detail;
    r_worst_q_error = !worst_q;
    r_detail = detail;
    r_plan = truncate_plan plan;
    r_nodes = List.rev !rev_nodes }

(* --- JSON --- *)

let qnode_json n =
  Json.Obj
    [ ("expr", Json.Str n.qn_expr);
      ("kind", Json.Str n.qn_kind);
      ("path", Json.Str n.qn_path);
      ("repr", Json.Str n.qn_repr);
      ("rows_in", Json.Num n.qn_rows_in);
      ("rows_out", Json.Num n.qn_rows_out);
      ("selectivity", Json.Num n.qn_selectivity);
      ("ms", Json.Num n.qn_ms) ]

let qnode_of_json j =
  let str name d =
    Option.value ~default:d (Option.bind (Json.member name j) Json.to_str)
  in
  let num name =
    Option.value ~default:0.0 (Option.bind (Json.member name j) Json.to_float)
  in
  { qn_expr = str "expr" "?";
    qn_kind = str "kind" "?";
    qn_path = str "path" "";
    qn_repr = str "repr" "";
    qn_rows_in = num "rows_in";
    qn_rows_out = num "rows_out";
    qn_selectivity = num "selectivity";
    qn_ms = num "ms" }

let to_json r =
  Json.Obj
    ([ ("trace", Json.Str r.r_trace);
      ("query", Json.Str r.r_query);
      ("strategy", Json.Str r.r_strategy);
      ("outcome", Json.Str r.r_outcome);
      ("latency_s", Json.Num r.r_latency);
      ("queue_wait_s", Json.Num r.r_queue_wait);
      ("cost", Json.Num r.r_cost);
      ("result_card", Json.Num r.r_result_card);
      ("steps", Json.Num (float_of_int r.r_steps));
      ("replans", Json.Num (float_of_int r.r_replans));
      ("executes", Json.Num (float_of_int r.r_executes));
      ("degraded", Json.Num (float_of_int r.r_degraded));
      ("fault_detail", Json.Arr (List.map (fun s -> Json.Str s) r.r_fault_detail));
      ("worst_q_error",
       match r.r_worst_q_error with None -> Json.Null | Some q -> Json.Num q);
      ("detail", Json.Str r.r_detail);
      ("plan", Json.Str r.r_plan) ]
    @
    (* Omitted, not empty, when unprofiled: pre-profile consumers (and the
       byte-stability tests) see the exact old line shape. *)
    match r.r_nodes with
    | [] -> []
    | ns -> [ ("nodes", Json.Arr (List.map qnode_json ns)) ])

let of_json j =
  let ( let* ) r f = Result.bind r f in
  let str name =
    match Option.bind (Json.member name j) Json.to_str with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "qlog record: missing or bad %S" name)
  in
  let num name =
    match Option.bind (Json.member name j) Json.to_float with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "qlog record: missing or bad %S" name)
  in
  let int name = Result.map int_of_float (num name) in
  let* trace = str "trace" in
  let* query = str "query" in
  let* strategy = str "strategy" in
  let* outcome = str "outcome" in
  let* latency = num "latency_s" in
  let* queue_wait = num "queue_wait_s" in
  let* cost = num "cost" in
  let* result_card = num "result_card" in
  let* steps = int "steps" in
  let* replans = int "replans" in
  let* executes = int "executes" in
  let* degraded = int "degraded" in
  let* detail = str "detail" in
  let* plan = str "plan" in
  let fault_detail =
    match Json.member "fault_detail" j with
    | Some (Json.Arr items) -> List.filter_map Json.to_str items
    | _ -> []
  in
  let worst_q_error = Option.bind (Json.member "worst_q_error" j) Json.to_float in
  let nodes =
    match Json.member "nodes" j with
    | Some (Json.Arr items) -> List.map qnode_of_json items
    | _ -> []
  in
  Ok
    { r_trace = trace;
      r_query = query;
      r_strategy = strategy;
      r_outcome = outcome;
      r_latency = latency;
      r_queue_wait = queue_wait;
      r_cost = cost;
      r_result_card = result_card;
      r_steps = steps;
      r_replans = replans;
      r_executes = executes;
      r_degraded = degraded;
      r_fault_detail = fault_detail;
      r_worst_q_error = worst_q_error;
      r_detail = detail;
      r_plan = plan;
      r_nodes = nodes }

(* --- the bounded writer --- *)

type t = {
  w_path : string;
  max_bytes : int;
  mutable oc : out_channel option;
  mutable bytes : int;  (* size of the live file, maintained on append *)
}

let create ?(max_bytes = 64 * 1024 * 1024) path =
  if path = "" then Error "qlog: empty path"
  else
    try
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
      let bytes =
        try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0
      in
      Ok { w_path = path; max_bytes = max 4096 max_bytes; oc = Some oc; bytes }
    with Sys_error msg -> Error (Printf.sprintf "qlog: cannot open %s: %s" path msg)

let path t = t.w_path

let rotate t oc =
  (try close_out oc with Sys_error _ -> ());
  (* POSIX rename replaces the previous rotation, so disk use is bounded
     by roughly twice [max_bytes] however long the process runs. *)
  (try Sys.rename t.w_path (t.w_path ^ ".1") with Sys_error _ -> ());
  match open_out_gen [ Open_append; Open_creat ] 0o644 t.w_path with
  | oc ->
    t.oc <- Some oc;
    t.bytes <- 0
  | exception Sys_error _ -> t.oc <- None

let append t r =
  let line = Json.to_string (to_json r) ^ "\n" in
  Span.with_line_lock (fun () ->
      (match t.oc with
      | Some oc when t.bytes > 0 && t.bytes + String.length line > t.max_bytes
        ->
        rotate t oc
      | _ -> ());
      match t.oc with
      | None -> ()
      | Some oc -> (
        try
          output_string oc line;
          t.bytes <- t.bytes + String.length line
        with Sys_error _ -> ()))

let close t =
  Span.with_line_lock (fun () ->
      match t.oc with
      | None -> ()
      | Some oc ->
        t.oc <- None;
        (try close_out oc with Sys_error _ -> ()))

let load p =
  let ( let* ) r f = Result.bind r f in
  match open_in p with
  | exception Sys_error msg -> Error (Printf.sprintf "qlog: cannot read: %s" msg)
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc lineno =
          match input_line ic with
          | exception End_of_file -> Ok (List.rev acc)
          | "" -> go acc (lineno + 1)
          | line ->
            let* j =
              Result.map_error
                (fun e -> Printf.sprintf "line %d: %s" lineno e)
                (Json.of_string line)
            in
            let* r =
              Result.map_error
                (fun e -> Printf.sprintf "line %d: %s" lineno e)
                (of_json j)
            in
            go (r :: acc) (lineno + 1)
        in
        go [] 1)

(* --- aggregation --- *)

let num v = Printf.sprintf "%.6g" v

(* Canonical fold order: aggregates (float sums included) are identical
   for any append order of the same record multiset, so reports over
   parallel runs are byte-stable. *)
let canonical records =
  List.stable_sort
    (fun a b ->
      compare
        (a.r_query, a.r_strategy, a.r_trace, a.r_cost)
        (b.r_query, b.r_strategy, b.r_trace, b.r_cost))
    records

type class_agg = {
  a_n : int;
  a_ok : int;
  a_degraded : int;
  a_timeout : int;
  a_error : int;
  a_rejected : int;
  a_cost_sum : float;
  a_replans_sum : int;
  a_worst_q : float option;
}

let empty_agg =
  { a_n = 0; a_ok = 0; a_degraded = 0; a_timeout = 0; a_error = 0;
    a_rejected = 0; a_cost_sum = 0.0; a_replans_sum = 0; a_worst_q = None }

(* Rejected requests never executed anything: their zero cost would skew
   the per-class mean, so cost and replans aggregate over served records
   only (the outcome columns still count them). *)
let add_record a r =
  let served = r.r_outcome <> "rejected" in
  { a_n = a.a_n + 1;
    a_ok = (a.a_ok + if r.r_outcome = "ok" then 1 else 0);
    a_degraded = (a.a_degraded + if r.r_outcome = "degraded" then 1 else 0);
    a_timeout = (a.a_timeout + if r.r_outcome = "timeout" then 1 else 0);
    a_error = (a.a_error + if r.r_outcome = "error" then 1 else 0);
    a_rejected = (a.a_rejected + if r.r_outcome = "rejected" then 1 else 0);
    a_cost_sum = (a.a_cost_sum +. if served then r.r_cost else 0.0);
    a_replans_sum = (a.a_replans_sum + if served then r.r_replans else 0);
    a_worst_q =
      (match (r.r_worst_q_error, a.a_worst_q) with
      | None, w -> w
      | Some q, None -> Some q
      | Some q, Some w -> Some (Float.max q w)) }

let served a = a.a_n - a.a_rejected

let mean_cost a =
  if served a = 0 then 0.0 else a.a_cost_sum /. float_of_int (served a)

let mean_replans a =
  if served a = 0 then 0.0
  else float_of_int a.a_replans_sum /. float_of_int (served a)

let by_class records =
  let tbl : (string, class_agg) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let prev =
        Option.value ~default:empty_agg (Hashtbl.find_opt tbl r.r_query)
      in
      Hashtbl.replace tbl r.r_query (add_record prev r))
    (canonical records);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let q_cell = function None -> "-" | Some q -> Printf.sprintf "%.2f" q

let class_table records =
  let rows =
    List.map
      (fun (klass, a) ->
        [ klass; string_of_int a.a_n; string_of_int a.a_ok;
          string_of_int a.a_degraded; string_of_int a.a_timeout;
          string_of_int a.a_error; string_of_int a.a_rejected;
          num (mean_cost a); Printf.sprintf "%.1f" (mean_replans a);
          q_cell a.a_worst_q ])
      (by_class records)
  in
  Snapshot.table ~title:"Per-class summary"
    ~header:
      [ "Class"; "N"; "OK"; "Degr"; "TO"; "Err"; "Rej"; "Mean cost";
        "Replans"; "Worst q-err" ]
    rows

let top_slow ?(top = 10) records =
  let slow =
    List.stable_sort (fun a b -> compare b.r_latency a.r_latency)
      (canonical records)
    |> List.filteri (fun i _ -> i < top)
  in
  if slow = [] then ""
  else
    Snapshot.table
      ~title:(Printf.sprintf "Slowest requests (top %d by latency)" (List.length slow))
      ~header:[ "Trace"; "Class"; "Strategy"; "Outcome"; "Latency"; "Cost" ]
      (List.map
         (fun r ->
           [ r.r_trace; r.r_query; r.r_strategy; r.r_outcome;
             Printf.sprintf "%.4gs" r.r_latency; num r.r_cost ])
         slow)

let worst_misestimates ?(top = 10) records =
  let ranked =
    canonical records
    |> List.filter_map (fun r -> Option.map (fun q -> (q, r)) r.r_worst_q_error)
    |> List.stable_sort (fun ((a : float), _) (b, _) -> compare b a)
    |> List.filteri (fun i _ -> i < top)
  in
  if ranked = [] then ""
  else
    Snapshot.table
      ~title:
        (Printf.sprintf "Worst cardinality misestimates (top %d by q-error)"
           (List.length ranked))
      ~header:[ "Trace"; "Class"; "Strategy"; "Q-error"; "Cost" ]
      (List.map
         (fun (q, r) ->
           [ r.r_trace; r.r_query; r.r_strategy; Printf.sprintf "%.2f" q;
             num r.r_cost ])
         ranked)

(* Hottest operators across every profiled record: one row per
   (class, plan node), summing wall time over all occurrences. Empty when
   no record carries profiles, so unprofiled reports are untouched. *)
let top_nodes ?(top = 10) records =
  let tbl : (string * string, int * float * float * string * string) Hashtbl.t
      =
    Hashtbl.create 32
  in
  List.iter
    (fun r ->
      List.iter
        (fun n ->
          let key = (r.r_query, n.qn_expr) in
          let count, ms, rows =
            match Hashtbl.find_opt tbl key with
            | Some (c, m, rw, _, _) -> (c, m, rw)
            | None -> (0, 0.0, 0.0)
          in
          Hashtbl.replace tbl key
            ( count + 1, ms +. n.qn_ms, rows +. n.qn_rows_out, n.qn_kind,
              n.qn_path ))
        r.r_nodes)
    (canonical records);
  let ranked =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.stable_sort (fun (ka, (_, ma, _, _, _)) (kb, (_, mb, _, _, _)) ->
           match compare (mb : float) ma with 0 -> compare ka kb | c -> c)
    |> List.filteri (fun i _ -> i < top)
  in
  if ranked = [] then ""
  else
    Snapshot.table
      ~title:
        (Printf.sprintf "Hottest operators (top %d by total wall time)"
           (List.length ranked))
      ~header:
        [ "Class"; "Plan node"; "Op"; "Path"; "Hits"; "Total ms"; "Rows out" ]
      (List.map
         (fun ((klass, expr), (count, ms, rows, kind, path)) ->
           [ klass; expr; kind; path; string_of_int count;
             Printf.sprintf "%.3f" ms; num rows ])
         ranked)

let report ?top records =
  if records = [] then "Query log: no records\n"
  else begin
    let n = List.length records in
    let classes = List.length (by_class records) in
    let header =
      Printf.sprintf "Query log: %d records over %d classes\n" n classes
    in
    let parts =
      [ header; class_table records; top_slow ?top records;
        worst_misestimates ?top records ]
    in
    String.concat "\n" (List.filter (fun s -> s <> "") parts)
  end

(* --- the regression differ --- *)

(* class -> plan node -> summed wall ms, over profiled records. *)
let node_ms_by_class records =
  let tbl : (string, (string, float) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun r ->
      List.iter
        (fun n ->
          let inner =
            match Hashtbl.find_opt tbl r.r_query with
            | Some h -> h
            | None ->
              let h = Hashtbl.create 8 in
              Hashtbl.replace tbl r.r_query h;
              h
          in
          Hashtbl.replace inner n.qn_expr
            (n.qn_ms
            +. Option.value ~default:0.0 (Hashtbl.find_opt inner n.qn_expr)))
        r.r_nodes)
    (canonical records);
  tbl

(* Operator time-share shifts between two profiled runs: for each class
   present on both sides, compare every plan node's share of the class's
   total operator wall time and surface shifts of >= [min_shift] share
   points. Wall time varies between byte-identical runs, so this section
   is advisory only — it never counts toward the regression total and is
   absent entirely when either side is unprofiled. *)
let time_share_table ?(min_shift = 0.05) ~old_ new_ =
  let old_ms = node_ms_by_class old_ and new_ms = node_ms_by_class new_ in
  let total h = Hashtbl.fold (fun _ v a -> a +. v) h 0.0 in
  let shifts = ref [] in
  Hashtbl.iter
    (fun klass new_h ->
      match Hashtbl.find_opt old_ms klass with
      | None -> ()
      | Some old_h ->
        let t_old = total old_h and t_new = total new_h in
        if t_old > 0.0 && t_new > 0.0 then begin
          let exprs =
            List.sort_uniq compare
              (Hashtbl.fold
                 (fun k _ a -> k :: a)
                 old_h
                 (Hashtbl.fold (fun k _ a -> k :: a) new_h []))
          in
          List.iter
            (fun e ->
              let share h t =
                Option.value ~default:0.0 (Hashtbl.find_opt h e) /. t
              in
              let so = share old_h t_old and sn = share new_h t_new in
              if Float.abs (sn -. so) >= min_shift then
                shifts := (Float.abs (sn -. so), klass, e, so, sn) :: !shifts)
            exprs
        end)
    new_ms;
  let ranked =
    List.stable_sort (fun a b -> compare b a) !shifts
    |> List.filteri (fun i _ -> i < 10)
  in
  if ranked = [] then ""
  else
    Snapshot.table
      ~title:
        "Operator time-share shifts (advisory — wall time, never counted \
         as regressions)"
      ~header:[ "Class"; "Plan node"; "Share old"; "Share new"; "Delta" ]
      (List.map
         (fun (_, klass, e, so, sn) ->
           [ klass; e;
             Printf.sprintf "%.1f%%" (100.0 *. so);
             Printf.sprintf "%.1f%%" (100.0 *. sn);
             Printf.sprintf "%+.1f pts" (100.0 *. (sn -. so)) ])
         ranked)

let diff_report ?(threshold = 1.1) ~old_ new_ =
  let old_by = by_class old_ and new_by = by_class new_ in
  let classes =
    List.sort_uniq compare (List.map fst old_by @ List.map fst new_by)
  in
  let regressions = ref 0 and improvements = ref 0 in
  let rows =
    List.map
      (fun klass ->
        let o = List.assoc_opt klass old_by in
        let n = List.assoc_opt klass new_by in
        match (o, n) with
        | None, None -> assert false
        | Some _, None ->
          incr regressions;
          [ klass; "-"; "missing"; "-"; "-"; "-"; "REGRESSED (lost)" ]
        | None, Some n ->
          [ klass; "new"; num (mean_cost n); "-"; "-"; "-"; "new" ]
        | Some o, Some n ->
          (* +1 on both sides: zero-cost classes (everything rejected or
             pruned) diff as flat instead of dividing by zero. *)
          let ratio = (mean_cost n +. 1.0) /. (mean_cost o +. 1.0) in
          let worse_outcomes =
            n.a_timeout > o.a_timeout || n.a_error > o.a_error
          in
          let verdict =
            if ratio > threshold || worse_outcomes then begin
              incr regressions;
              "REGRESSED"
            end
            else if ratio < 1.0 /. threshold then begin
              incr improvements;
              "improved"
            end
            else "ok"
          in
          [ klass; num (mean_cost o); num (mean_cost n);
            Printf.sprintf "%+.1f%%" (100.0 *. (ratio -. 1.0));
            Printf.sprintf "%d->%d" o.a_timeout n.a_timeout;
            Printf.sprintf "%d->%d" o.a_error n.a_error; verdict ])
      classes
  in
  let table =
    Snapshot.table ~title:"Per-class cost diff (old vs new)"
      ~header:[ "Class"; "Cost old"; "Cost new"; "Delta"; "TO"; "Err"; "Verdict" ]
      rows
  in
  let summary =
    Printf.sprintf
      "Qlog diff: %d classes, %d regressions, %d improvements (threshold \
       %.2fx; deterministic fields only — latency never compared)\n"
      (List.length classes) !regressions !improvements threshold
  in
  let advisory = time_share_table ~old_ new_ in
  let body =
    if advisory = "" then table else table ^ "\n" ^ advisory
  in
  (summary ^ "\n" ^ body, !regressions)
