(** Live monitoring: periodic sampling, differential reports, and a
    [/metrics] HTTP endpoint.

    A monitor owns one sampler thread that every [interval] seconds
    snapshots the registry (every counter, gauge, and histogram
    count/sum) together with [Gc.quick_stat] into a bounded ring, and —
    optionally — one server thread exposing the registry over HTTP on
    loopback. Threads, not domains: an extra domain — even one asleep in
    [select] — drags every minor GC of the workload into a cross-domain
    stop-the-world barrier (tens of percent of wall clock on
    allocation-heavy runs under OCaml 5.1), while a sleeping thread
    releases the runtime lock and costs nothing. Endpoints:

    - [/metrics] — Prometheus text exposition ({!Exporter.render});
    - [/healthz] — ["ok"], 200;
    - [/snapshot.json] — {!Snapshot.metrics_json}.

    Two samples diff into an lt_profile-style report ({!diff_report}):
    per-metric deltas and rates per second over the window, top movers
    first, plus a GC section. The CLI surfaces this as
    [monsoon profile --watch] and [--serve PORT].

    GC numbers come from [Gc.quick_stat] on the domain hosting the
    sampling thread (the creator's domain): major heap words/collections
    are process-wide, minor words/collections are that domain's own —
    documented, not hidden. *)

(** {1 Samples} *)

type probe_kind =
  | Cumulative  (** monotone: counters, histogram count/sum — has a rate *)
  | Level  (** instantaneous: gauges — diffed, never rated *)

type probe = { p_key : string; p_kind : probe_kind; p_value : float }

type sample = {
  s_time : float;  (** {!Monsoon_util.Timer.now} at capture *)
  s_minor_words : float;
  s_promoted_words : float;
  s_major_words : float;
  s_minor_collections : int;
  s_major_collections : int;
  s_compactions : int;
  s_heap_words : int;
  s_probes : probe list;  (** registry state, {!Registry.to_list} order *)
}

val sample_now : Registry.t -> sample
(** One synchronous snapshot (usable without a monitor). Histograms
    yield two probes, [<key>.count] and [<key>.sum]. *)

val diff_report : ?top:int -> sample -> sample -> string
(** [diff_report a b] renders the movement between two samples ([a]
    taken before [b]) as ASCII tables: the [top] (default 20) metrics
    by absolute delta with from/to/delta and — for cumulative probes —
    rate per second, followed by the GC deltas. *)

val tick_line : sample -> sample -> string
(** One-line summary of the window between two consecutive samples (the
    top three cumulative rates), for [--watch] streaming. *)

val preregister : Registry.t -> unit
(** Interns the instrumented stack's well-known metrics (driver, MCTS,
    executor, runner, pool, GC) so [/metrics] is fully populated — at
    zero — from the first scrape, before any query has run. *)

(** {1 The monitor} *)

type t

val create :
  ?interval:float ->
  ?ring:int ->
  ?on_tick:(sample -> unit) ->
  ?flush:(unit -> unit) ->
  Registry.t ->
  t
(** Takes the first sample synchronously, then starts the sampler
    thread ticking every [interval] seconds (default 1.0, must be
    positive). The ring keeps the last [ring] samples (default 600, at
    least 2). Per tick, [flush] then [on_tick] run on the sampler
    thread — both must be thread-safe; [flush] is the hook for draining
    Jsonl span sinks. Raises [Invalid_argument] on a non-positive
    interval or a ring smaller than 2. *)

val serve : t -> port:int -> (int, string) result
(** Binds [127.0.0.1:port] ([port = 0] picks an ephemeral port) and
    starts the accept-loop thread. Returns the bound port, or an error
    message if the bind fails or the monitor is already serving or
    stopped. Requests are served sequentially; each response closes its
    connection. *)

val stop : t -> unit
(** Joins the sampler, takes one final synchronous sample (so the
    ring's last sample covers the full run even for runs shorter than
    one interval), joins the server thread, closes the sockets.
    Idempotent. *)

val interval : t -> float

val port : t -> int option
(** The bound port once {!serve} succeeded. *)

val samples : t -> sample list
(** Ring contents, oldest first. *)

val first : t -> sample option

val latest : t -> sample option
