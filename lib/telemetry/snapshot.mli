(** Rendering a registry / trace to reports.

    The ASCII layout is the repo's standard table format (title line,
    two-space indent, dash separator) — {!Monsoon_harness.Report.table}
    delegates to {!table} so every report in the repo stays visually
    identical. *)

val pad : int -> string -> string
val table : title:string -> header:string list -> string list list -> string

(** {1 Metric snapshots} *)

val metrics_rows : Registry.t -> string list list
(** One row per instrument: name, labels, kind, value summary. Histograms
    summarize as count/mean/p50/p99/max. *)

val metrics_table : ?title:string -> Registry.t -> string
val metrics_json : Registry.t -> Json.t

(** {1 Component breakdown from spans} *)

type component = {
  comp_name : string;  (** span name *)
  comp_spans : int;
  comp_seconds : float;  (** summed span durations *)
  comp_objects : float;  (** summed ["objects"] attributes *)
}

val breakdown : Span.t list -> component list
(** Groups completed spans by name (descending total duration). The
    Table-8-style MCTS / Σ / execution split falls out of the span names
    the instrumented stack emits: ["mcts.plan"], ["exec.sigma"],
    ["exec.execute"], ["driver.run"], ["query"]. *)

val component : string -> component list -> component option

val breakdown_table : ?title:string -> Span.t list -> string
val breakdown_json : Span.t list -> Json.t
