(** Nested trace spans on the monotonic clock, emitted to a pluggable sink.

    A {!tracer} hands out span ids and tracks the open-span stack so
    children find their parent implicitly. Completed spans go to the
    tracer's sink:

    - {!sink.Null} (the default everywhere) records nothing: [with_span]
      reduces to calling the thunk with a shared dummy span, so
      uninstrumented runs pay essentially nothing;
    - [Memory] keeps completed spans in order for tests and in-process
      reports;
    - [Jsonl] appends one JSON object per completed span to a channel, for
      offline analysis;
    - [Multi] fans out to several sinks.

    Spans close in LIFO order; an exception escaping the thunk still closes
    the span (tagged with an ["error"] attribute) and re-raises.

    A tracer may be shared across domains: ids come from an atomic counter,
    the open-span stack is domain-local (so parent/child nesting is tracked
    per domain and never crosses domains), [Memory] buffers are
    mutex-guarded, and [Jsonl] lines are written whole under a process-wide
    lock. The [Null] fast path stays allocation- and lock-free. *)

type attr =
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

type t = {
  id : int;
  parent : int option;  (** id of the enclosing span, if any *)
  name : string;
  start : float;  (** {!Monsoon_util.Timer.now} seconds (monotonic) *)
  mutable stop : float;  (** [nan] while the span is open *)
  mutable attrs : (string * attr) list;
}

val duration : t -> float

type buffer

type sink =
  | Null
  | Memory of buffer
  | Jsonl of out_channel
  | Callback of (t -> unit)
      (** Called once per completed span, on the domain that closed it
          (so the callback may read [Domain.self ()] for attribution).
          The callback must be domain-safe; see {!Trace_event.sink}. *)
  | Multi of sink list

val memory_buffer : unit -> buffer

val buffer_spans : buffer -> t list
(** Completed spans in completion order (children before their parent). *)

type tracer

val make : sink -> tracer
val null : unit -> tracer
val sink : tracer -> sink

val enabled : tracer -> bool
(** [false] for a [Null]-sink tracer: spans will not be recorded. *)

val set_attr : t -> string -> attr -> unit
(** Replaces an existing attribute of the same name. No-op on the dummy
    span that [with_span] passes under a [Null] sink. *)

val with_span :
  tracer -> ?attrs:(string * attr) list -> string -> (t -> 'a) -> 'a

val flush : sink -> unit
(** Pushes buffered [Jsonl] output to the OS so the trace file can be
    tailed during a run; a no-op on every other sink. Safe from any
    domain (takes the process-wide line lock, so it never tears a line). *)

val with_line_lock : (unit -> 'a) -> 'a
(** Runs [f] under the process-wide JSONL line lock — the same lock the
    [Jsonl] sink serialises span lines with. Other line-oriented appenders
    ({!Qlog}) take it so their lines never interleave with a trace line
    (or each other's) when several domains write at once. *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

val load_jsonl : string -> (t list, string) result
(** Reads a JSONL trace file back into spans (blank lines skipped). *)
