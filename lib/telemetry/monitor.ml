(* Live monitoring: a sampler thread snapshotting the registry + GC into
   a bounded ring, an lt_profile-style differential report over two
   samples, and a stdlib-Unix HTTP server exposing /metrics (Prometheus
   text via Exporter), /healthz, and /snapshot.json.

   The sampler and server are systhreads, not domains, on purpose: an
   extra domain — even one asleep in [select] — turns every minor GC of
   the workload into a cross-domain stop-the-world barrier, which costs
   tens of percent on allocation-heavy single-domain runs (measured ~90%
   on the bench suite under OCaml 5.1). A thread sleeping in [select]
   releases the runtime lock and adds no GC coordination; the ~3 µs
   ticks steal negligible mutator time. The sampler waits on a pipe with
   a select timeout, so stop wakes it immediately. *)

type probe_kind = Cumulative | Level

type probe = { p_key : string; p_kind : probe_kind; p_value : float }

type sample = {
  s_time : float;
  s_minor_words : float;
  s_promoted_words : float;
  s_major_words : float;
  s_minor_collections : int;
  s_major_collections : int;
  s_compactions : int;
  s_heap_words : int;
  s_probes : probe list;
}

let probe_key (k : Registry.key) suffix =
  k.Registry.name ^ suffix
  ^
  match k.Registry.labels with
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat "," (List.map (fun (l, v) -> l ^ "=" ^ v) labels)
    ^ "}"

let sample_now reg =
  let gc = Gc.quick_stat () in
  let probes =
    List.concat_map
      (fun ((k : Registry.key), inst) ->
        match inst with
        | Registry.Counter c ->
          [ { p_key = probe_key k "";
              p_kind = Cumulative;
              p_value = Metric.Counter.value c } ]
        | Registry.Gauge g ->
          [ { p_key = probe_key k "";
              p_kind = Level;
              p_value = Metric.Gauge.value g } ]
        | Registry.Histogram h ->
          [ { p_key = probe_key k ".count";
              p_kind = Cumulative;
              p_value = float_of_int (Metric.Histogram.count h) };
            { p_key = probe_key k ".sum";
              p_kind = Cumulative;
              p_value = Metric.Histogram.sum h } ])
      (Registry.to_list reg)
  in
  { s_time = Monsoon_util.Timer.now ();
    s_minor_words = gc.Gc.minor_words;
    s_promoted_words = gc.Gc.promoted_words;
    s_major_words = gc.Gc.major_words;
    s_minor_collections = gc.Gc.minor_collections;
    s_major_collections = gc.Gc.major_collections;
    s_compactions = gc.Gc.compactions;
    s_heap_words = gc.Gc.heap_words;
    s_probes = probes }

(* --- differential report (lt_profile-style: two snapshots -> rates) --- *)

let fnum v = Printf.sprintf "%.6g" v

let top_movers a b =
  let a_probes = List.map (fun p -> (p.p_key, p)) a.s_probes in
  List.filter_map
    (fun pb ->
      let from =
        match List.assoc_opt pb.p_key a_probes with
        | Some pa -> pa.p_value
        | None -> 0.0 (* appeared inside the window *)
      in
      let delta = pb.p_value -. from in
      if delta = 0.0 then None else Some (pb, from, delta))
    b.s_probes
  |> List.sort (fun (_, _, d1) (_, _, d2) ->
         compare (Float.abs d2) (Float.abs d1))

let diff_report ?(top = 20) a b =
  let dt = b.s_time -. a.s_time in
  let rate delta =
    if dt > 0.0 then fnum (delta /. dt) else "-"
  in
  let metric_rows =
    top_movers a b
    |> List.filteri (fun i _ -> i < top)
    |> List.map (fun (pb, from, delta) ->
           [ pb.p_key;
             (match pb.p_kind with
             | Cumulative -> "cumulative"
             | Level -> "level");
             fnum from; fnum pb.p_value; fnum delta;
             (match pb.p_kind with Cumulative -> rate delta | Level -> "-") ])
  in
  let gc_row name from_v to_v ~cumulative =
    let delta = to_v -. from_v in
    [ name; fnum from_v; fnum to_v; fnum delta;
      (if cumulative then rate delta else "-") ]
  in
  let fi = float_of_int in
  let gc_rows =
    [ gc_row "minor words" a.s_minor_words b.s_minor_words ~cumulative:true;
      gc_row "promoted words" a.s_promoted_words b.s_promoted_words
        ~cumulative:true;
      gc_row "major words" a.s_major_words b.s_major_words ~cumulative:true;
      gc_row "minor collections" (fi a.s_minor_collections)
        (fi b.s_minor_collections) ~cumulative:true;
      gc_row "major collections" (fi a.s_major_collections)
        (fi b.s_major_collections) ~cumulative:true;
      gc_row "compactions" (fi a.s_compactions) (fi b.s_compactions)
        ~cumulative:true;
      gc_row "heap words" (fi a.s_heap_words) (fi b.s_heap_words)
        ~cumulative:false ]
  in
  let header = Printf.sprintf "Differential runtime report (%.2fs window)" dt in
  let metrics_table =
    if metric_rows = [] then
      header ^ "\n  (no metric movement in the window)\n"
    else
      Snapshot.table
        ~title:(header ^ " — top movers")
        ~header:[ "Metric"; "Kind"; "From"; "To"; "Delta"; "Rate/s" ]
        metric_rows
  in
  let gc_table =
    Snapshot.table ~title:"GC (sampling domain minor/major; shared heap)"
      ~header:[ "Stat"; "From"; "To"; "Delta"; "Rate/s" ]
      gc_rows
  in
  metrics_table ^ "\n" ^ gc_table

let tick_line a b =
  let dt = b.s_time -. a.s_time in
  let movers =
    top_movers a b
    |> List.filter (fun (pb, _, _) -> pb.p_kind = Cumulative)
    |> List.filteri (fun i _ -> i < 3)
    |> List.map (fun (pb, _, delta) ->
           Printf.sprintf "%s %s/s" pb.p_key
             (fnum (if dt > 0.0 then delta /. dt else 0.0)))
  in
  Printf.sprintf "[monitor] +%.1fs  %s" dt
    (match movers with [] -> "idle" | ms -> String.concat "  " ms)

(* --- pre-registration ---

   Interning the instrumented stack's well-known metrics up front means
   /metrics and /snapshot.json are fully populated (at zero) from the
   very first scrape, before any query has run — CI smoke tests and
   dashboards need not race the first driver run. The list mirrors the
   names used in driver.ml / mcts.ml / executor.ml / runner.ml and the
   serving layer (lib/server: admission.ml / slo.ml). *)

let preregister reg =
  List.iter
    (fun n -> ignore (Registry.counter reg n))
    [ "driver.steps"; "driver.replans"; "driver.executes";
      "driver.mcts_seconds"; "driver.degraded"; "mcts.plans";
      "mcts.iterations"; "mcts.expansions"; "exec.tuples_scanned";
      "exec.tuples_built"; "exec.tuples_probed"; "exec.tuples_emitted";
      "exec.sigma_objects"; "exec.budget_spent"; "exec.fused_ops";
      "exec.scalar_fallbacks"; "fault.injected";
      "mcts.transpositions"; "runner.cells"; "runner.retries";
      "runner.quarantined"; "monitor.ticks"; "server.requests"; "server.ok";
      "server.degraded"; "server.rejected"; "server.timeout"; "server.error";
      "repo.lookups"; "repo.hits"; "repo.warm_starts"; "repo.flushes";
      "repo.entries_written" ];
  List.iter
    (fun n -> ignore (Registry.gauge reg n))
    [ "runner.cells_expected"; "pool.queued"; "pool.in_flight";
      "pool.completed"; "pool.respawned"; "gc.heap_words"; "gc.minor_words";
      "gc.major_words"; "gc.minor_collections"; "gc.major_collections";
      "server.queue_depth"; "server.in_flight" ];
  List.iter
    (fun n -> ignore (Registry.histogram reg n))
    [ "driver.q_error"; "driver.replans_per_query"; "mcts.tree_depth";
      "exec.node_ms"; "server.latency"; "server.queue_wait" ]

(* --- the monitor itself --- *)

type t = {
  reg : Registry.t;
  interval : float;
  ring : int;
  lock : Mutex.t;
  samples : sample Queue.t;  (* oldest first, at most [ring] *)
  stopped : bool Atomic.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  on_tick : (sample -> unit) option;
  flush_hook : (unit -> unit) option;
  mutable sampler : Thread.t option;
  mutable server : Thread.t option;
  mutable listen_fd : Unix.file_descr option;
  mutable bound_port : int option;
}

let export_gc t (s : sample) =
  let set name v = Metric.Gauge.set (Registry.gauge t.reg name) v in
  set "gc.heap_words" (float_of_int s.s_heap_words);
  set "gc.minor_words" s.s_minor_words;
  set "gc.major_words" s.s_major_words;
  set "gc.minor_collections" (float_of_int s.s_minor_collections);
  set "gc.major_collections" (float_of_int s.s_major_collections)

let tick t =
  let s = sample_now t.reg in
  Metric.Counter.inc (Registry.counter t.reg "monitor.ticks");
  export_gc t s;
  Mutex.lock t.lock;
  Queue.push s t.samples;
  if Queue.length t.samples > t.ring then ignore (Queue.pop t.samples);
  Mutex.unlock t.lock;
  (match t.flush_hook with Some f -> f () | None -> ());
  match t.on_tick with Some f -> f s | None -> ()

(* Periodic ticks only: the initial sample is taken synchronously by
   [create] and the final one by [stop], so even a run shorter than one
   interval ends with a (first, last) pair to diff. *)
let rec sampler_loop t =
  if not (Atomic.get t.stopped) then
    match Unix.select [ t.wake_r ] [] [] t.interval with
    | [], _, _ ->
      if not (Atomic.get t.stopped) then begin
        tick t;
        sampler_loop t
      end
    | _ -> () (* woken for stop: [stop] takes the final sample *)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> sampler_loop t

let create ?(interval = 1.0) ?(ring = 600) ?on_tick ?flush reg =
  if interval <= 0.0 then invalid_arg "Monitor.create: interval must be > 0";
  if ring < 2 then invalid_arg "Monitor.create: ring must hold >= 2 samples";
  let wake_r, wake_w = Unix.pipe () in
  let t =
    { reg;
      interval;
      ring;
      lock = Mutex.create ();
      samples = Queue.create ();
      stopped = Atomic.make false;
      wake_r;
      wake_w;
      on_tick;
      flush_hook = flush;
      sampler = None;
      server = None;
      listen_fd = None;
      bound_port = None }
  in
  tick t;
  t.sampler <- Some (Thread.create sampler_loop t);
  t

let interval t = t.interval
let port t = t.bound_port

let samples t =
  Mutex.lock t.lock;
  let s = List.of_seq (Queue.to_seq t.samples) in
  Mutex.unlock t.lock;
  s

let first t = match samples t with [] -> None | s :: _ -> Some s

let latest t =
  match List.rev (samples t) with [] -> None | s :: _ -> Some s

(* --- HTTP --- *)

let http_response ~code ~reason ~content_type body =
  Printf.sprintf
    "HTTP/1.1 %d %s\r\n\
     Content-Type: %s\r\n\
     Content-Length: %d\r\n\
     Connection: close\r\n\
     \r\n\
     %s"
    code reason content_type (String.length body) body

let contains s needle =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  go 0

(* Reads until the header terminator (we never need a body), a cap, or a
   read timeout; returns the raw request text. *)
let read_request fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec go () =
    if
      Buffer.length buf < 8192
      && not (contains (Buffer.contents buf) "\r\n\r\n")
    then
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> ()
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ();
  Buffer.contents buf

let request_path raw =
  match String.split_on_char '\r' raw with
  | [] -> None
  | line :: _ -> (
    match String.split_on_char ' ' line with
    | _meth :: target :: _ ->
      let path =
        match String.index_opt target '?' with
        | Some i -> String.sub target 0 i
        | None -> target
      in
      Some path
    | _ -> None)

let respond t path =
  match path with
  | Some "/metrics" ->
    http_response ~code:200 ~reason:"OK" ~content_type:Exporter.content_type
      (Exporter.render t.reg)
  | Some "/healthz" ->
    http_response ~code:200 ~reason:"OK" ~content_type:"text/plain" "ok\n"
  | Some "/snapshot.json" ->
    http_response ~code:200 ~reason:"OK" ~content_type:"application/json"
      (Json.to_string (Snapshot.metrics_json t.reg) ^ "\n")
  | Some _ | None ->
    http_response ~code:404 ~reason:"Not Found" ~content_type:"text/plain"
      "not found\n"

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let handle t conn =
  Unix.setsockopt_float conn Unix.SO_RCVTIMEO 5.0;
  let raw = read_request conn in
  if raw <> "" then write_all conn (respond t (request_path raw))

let rec accept_loop t fd =
  match Unix.accept fd with
  | conn, _ ->
    if Atomic.get t.stopped then ( try Unix.close conn with Unix.Unix_error _ -> ())
    else begin
      (try handle t conn with _ -> ());
      (try Unix.close conn with Unix.Unix_error _ -> ());
      accept_loop t fd
    end
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop t fd
  | exception Unix.Unix_error (_, _, _) ->
    (* the listen socket was shut down by [stop] *)
    ()

let serve t ~port =
  if Atomic.get t.stopped then Error "monitor already stopped"
  else if t.listen_fd <> None then Error "monitor already serving"
  else
    match
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt fd Unix.SO_REUSEADDR true;
         Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
         Unix.listen fd 16
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      fd
    with
    | fd ->
      let bound =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      t.listen_fd <- Some fd;
      t.bound_port <- Some bound;
      t.server <- Some (Thread.create (accept_loop t) fd);
      Ok bound
    | exception Unix.Unix_error (err, _, _) ->
      Error (Unix.error_message err)

let stop t =
  if not (Atomic.exchange t.stopped true) then begin
    (* Wake the sampler for its final tick, then join it. *)
    (try ignore (Unix.write_substring t.wake_w "x" 0 1)
     with Unix.Unix_error _ -> ());
    (match t.sampler with Some d -> Thread.join d | None -> ());
    t.sampler <- None;
    (* The final sample, taken here so the ring always covers the whole
       run even when it was shorter than one interval. *)
    tick t;
    (* Waking a thread blocked in accept needs more than close(2):
       shutdown the listening socket (returns EINVAL from accept on
       Linux) and self-connect as a fallback wake (the loop sees
       [stopped] on the accepted connection and exits). Only then is
       joining the server thread safe; the fd closes after the join. *)
    (match (t.listen_fd, t.bound_port) with
    | Some fd, port ->
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      (match port with
      | Some p -> (
        try
          let c = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          (try
             Unix.connect c (Unix.ADDR_INET (Unix.inet_addr_loopback, p))
           with Unix.Unix_error _ -> ());
          try Unix.close c with Unix.Unix_error _ -> ()
        with Unix.Unix_error _ -> ())
      | None -> ());
      (match t.server with Some d -> Thread.join d | None -> ());
      t.server <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ())
    | None, _ -> ());
    t.listen_fd <- None;
    List.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      [ t.wake_r; t.wake_w ]
  end
