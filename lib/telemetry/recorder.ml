type candidate = {
  cand_action : string;
  cand_visits : int;
  cand_mean : float;
}

type node_profile = {
  p_kind : string;
  p_path : string;
  p_repr : string;
  p_rows_in : float;
  p_rows_out : float;
  p_selectivity : float;
  p_batches : int;
  p_sel_density : float;
  p_chain_max : int;
  p_chain_mean : float;
  p_budget : float;
  p_complete : bool;
  p_ms : float;
}

type exec_node = {
  node_expr : string;
  node_mask : int;
  node_depth : int;
  node_predicted : float option;
  node_observed : float option;
  node_q_error : float option;
  node_profile : node_profile option;
}

type stat_subject = Count of int | Distinct of int

type event =
  | Query_start of { query : string; n_rels : int; state_key : string }
  | Decision of {
      step : int;
      state_key : string;
      legal_actions : int;
      chosen : string;
      selection : string;
      root_visits : int;
      plan_seconds : float;
      candidates : candidate list;
    }
  | Executed of {
      step : int;
      nodes : exec_node list;
      cost : float;
      timed_out : bool;
    }
  | Stat_observed of {
      step : int;
      subject : stat_subject;
      pretty : string;
      value : float;
    }
  | Degraded of { step : int; reason : string; fallback : string }
  | Note of { step : int; message : string }
  | Query_finish of {
      steps : int;
      cost : float;
      timed_out : bool;
      result_card : float;
    }

type t = { recording : bool; mutable rev_events : event list }

let create () = { recording = true; rev_events = [] }
let null () = { recording = false; rev_events = [] }
let enabled t = t.recording
let record t ev = if t.recording then t.rev_events <- ev :: t.rev_events
let events t = List.rev t.rev_events
let clear t = t.rev_events <- []

let q_error ~predicted ~observed =
  let p = Float.max 1.0 predicted and o = Float.max 1.0 observed in
  Float.max (p /. o) (o /. p)

(* --- JSON export --- *)

let opt_num = function None -> Json.Null | Some v -> Json.Num v

let candidate_json c =
  Json.Obj
    [ ("action", Json.Str c.cand_action);
      ("visits", Json.Num (float_of_int c.cand_visits));
      ("mean", Json.Num c.cand_mean) ]

let profile_json p =
  Json.Obj
    [ ("kind", Json.Str p.p_kind);
      ("path", Json.Str p.p_path);
      ("repr", Json.Str p.p_repr);
      ("rows_in", Json.Num p.p_rows_in);
      ("rows_out", Json.Num p.p_rows_out);
      ("selectivity", Json.Num p.p_selectivity);
      ("batches", Json.Num (float_of_int p.p_batches));
      ("sel_density", Json.Num p.p_sel_density);
      ("chain_max", Json.Num (float_of_int p.p_chain_max));
      ("chain_mean", Json.Num p.p_chain_mean);
      ("budget", Json.Num p.p_budget);
      ("complete", Json.Bool p.p_complete);
      ("ms", Json.Num p.p_ms) ]

let node_json n =
  Json.Obj
    ([ ("expr", Json.Str n.node_expr);
       ("mask", Json.Num (float_of_int n.node_mask));
       ("depth", Json.Num (float_of_int n.node_depth));
       ("predicted", opt_num n.node_predicted);
       ("observed", opt_num n.node_observed);
       ("q_error", opt_num n.node_q_error) ]
    @
    match n.node_profile with
    | None -> []
    | Some p -> [ ("profile", profile_json p) ])

let event_json = function
  | Query_start { query; n_rels; state_key } ->
    Json.Obj
      [ ("event", Json.Str "query_start");
        ("query", Json.Str query);
        ("n_rels", Json.Num (float_of_int n_rels));
        ("state", Json.Str state_key) ]
  | Decision
      { step; state_key; legal_actions; chosen; selection; root_visits;
        plan_seconds; candidates } ->
    Json.Obj
      [ ("event", Json.Str "decision");
        ("step", Json.Num (float_of_int step));
        ("state", Json.Str state_key);
        ("legal_actions", Json.Num (float_of_int legal_actions));
        ("chosen", Json.Str chosen);
        ("selection", Json.Str selection);
        ("root_visits", Json.Num (float_of_int root_visits));
        ("plan_seconds", Json.Num plan_seconds);
        ("candidates", Json.Arr (List.map candidate_json candidates)) ]
  | Executed { step; nodes; cost; timed_out } ->
    Json.Obj
      [ ("event", Json.Str "executed");
        ("step", Json.Num (float_of_int step));
        ("cost", Json.Num cost);
        ("timed_out", Json.Bool timed_out);
        ("nodes", Json.Arr (List.map node_json nodes)) ]
  | Stat_observed { step; subject; pretty; value } ->
    let kind, key =
      match subject with
      | Count m -> ("count", float_of_int m)
      | Distinct tid -> ("distinct", float_of_int tid)
    in
    Json.Obj
      [ ("event", Json.Str "stat_observed");
        ("step", Json.Num (float_of_int step));
        ("kind", Json.Str kind);
        ("key", Json.Num key);
        ("subject", Json.Str pretty);
        ("value", Json.Num value) ]
  | Degraded { step; reason; fallback } ->
    Json.Obj
      [ ("event", Json.Str "degraded");
        ("step", Json.Num (float_of_int step));
        ("reason", Json.Str reason);
        ("fallback", Json.Str fallback) ]
  | Note { step; message } ->
    Json.Obj
      [ ("event", Json.Str "note");
        ("step", Json.Num (float_of_int step));
        ("message", Json.Str message) ]
  | Query_finish { steps; cost; timed_out; result_card } ->
    Json.Obj
      [ ("event", Json.Str "query_finish");
        ("steps", Json.Num (float_of_int steps));
        ("cost", Json.Num cost);
        ("timed_out", Json.Bool timed_out);
        ("result_card", Json.Num result_card) ]

let to_json t = Json.Arr (List.map event_json (events t))

(* --- Graphviz export of the recorded MCTS root decisions --- *)

let dot_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_dot t =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "digraph monsoon_decisions {\n";
  pr "  rankdir=LR;\n";
  pr "  node [shape=box, fontsize=10, fontname=\"monospace\"];\n";
  let decisions =
    List.filter_map (function Decision _ as d -> Some d | _ -> None) (events t)
  in
  let chosen_node = ref None in
  List.iter
    (function
      | Decision { step; chosen; root_visits; candidates; _ } ->
        let root_id = Printf.sprintf "s%d" step in
        pr "  %s [label=\"step %d\\n%d visits\", style=filled, fillcolor=lightgrey];\n"
          root_id step root_visits;
        (* The previous step's chosen action leads to this state. *)
        (match !chosen_node with
        | Some prev -> pr "  %s -> %s [style=dashed];\n" prev root_id
        | None -> ());
        chosen_node := Some root_id;
        List.iteri
          (fun i c ->
            let cand_id = Printf.sprintf "s%d_c%d" step i in
            let is_chosen = String.equal c.cand_action chosen in
            pr "  %s [label=\"%s\\nvisits=%d mean=%.4g\"%s];\n" cand_id
              (dot_escape c.cand_action) c.cand_visits c.cand_mean
              (if is_chosen then ", penwidth=2, color=red" else "");
            pr "  %s -> %s [label=\"%d\"%s];\n" root_id cand_id c.cand_visits
              (if is_chosen then ", penwidth=2, color=red" else ", color=grey");
            if is_chosen then chosen_node := Some cand_id)
          candidates
      | _ -> ())
    decisions;
  pr "}\n";
  Buffer.contents buf
