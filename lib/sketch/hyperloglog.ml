open Monsoon_util

type t = { p : int; regs : Bytes.t }

let create ?(p = 12) () =
  assert (p >= 4 && p <= 18);
  { p; regs = Bytes.make (1 lsl p) '\000' }

let clear t = Bytes.fill t.regs 0 (Bytes.length t.regs) '\000'

let add_hash t h =
  (* Native-int arithmetic on the two pieces of the hash: the low [p] bits
     survive [Int64.to_int] truncation untouched (p <= 18), and the
     logically-shifted remainder has at most 60 significant bits (p >= 4),
     so both fit OCaml's 63-bit int. Register updates are bit-identical to
     doing the same arithmetic in [Int64] — this path runs once per object
     per term in every Σ pass. *)
  let idx = Int64.to_int h land ((1 lsl t.p) - 1) in
  let rest = Int64.to_int (Int64.shift_right_logical h t.p) in
  (* Position of the leftmost 1-bit in the remaining (64 - p) bits,
     counting from 1; all-zero remainder scores 64 - p + 1. *)
  let rank =
    if rest = 0 then 64 - t.p + 1
    else begin
      let r = ref 1 in
      let v = ref rest in
      while !v land 1 = 0 do
        incr r;
        v := !v lsr 1
      done;
      !r
    end
  in
  let cur = Char.code (Bytes.get t.regs idx) in
  if rank > cur then Bytes.set t.regs idx (Char.chr rank)

let add_string t s = add_hash t (Hashing.string s)
let add_int t i = add_hash t (Hashing.int i)

let alpha m =
  match m with
  | 16 -> 0.673
  | 32 -> 0.697
  | 64 -> 0.709
  | _ -> 0.7213 /. (1.0 +. (1.079 /. float_of_int m))

let count t =
  let m = 1 lsl t.p in
  let sum = ref 0.0 in
  let zeros = ref 0 in
  for i = 0 to m - 1 do
    let r = Char.code (Bytes.get t.regs i) in
    if r = 0 then incr zeros;
    sum := !sum +. (1.0 /. float_of_int (1 lsl r))
  done;
  let mf = float_of_int m in
  let raw = alpha m *. mf *. mf /. !sum in
  if raw <= 2.5 *. mf && !zeros > 0 then
    (* Linear counting for the small range. *)
    mf *. log (mf /. float_of_int !zeros)
  else raw

let merge a b =
  assert (a.p = b.p);
  let t = create ~p:a.p () in
  for i = 0 to Bytes.length a.regs - 1 do
    let m = max (Char.code (Bytes.get a.regs i)) (Char.code (Bytes.get b.regs i)) in
    Bytes.set t.regs i (Char.chr m)
  done;
  t
