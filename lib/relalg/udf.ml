open Monsoon_storage

type t = { name : string; fn : Value.t array -> Value.t; is_identity : bool }

let make name fn = { name; fn; is_identity = false }

let identity hint =
  { name = Printf.sprintf "id(%s)" hint;
    fn =
      (function
      | [| v |] -> v
      | args ->
        invalid_arg
          (Printf.sprintf "identity UDF applied to %d args" (Array.length args)));
    is_identity = true;
  }

let apply t args = t.fn args
let name t = t.name
let is_identity t = t.is_identity
