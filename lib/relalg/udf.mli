(** Opaque user-defined functions.

    A UDF is a named black-box closure over runtime values. The optimizer
    never inspects [fn]; all it may learn about a UDF's output distribution
    is what a statistics-collection pass reveals. A registry of reusable
    UDFs (identity projections, string extractors, the multi-table
    combiners used by the UDF benchmark) lives in {!Udf_library}. *)

open Monsoon_storage

type t = { name : string; fn : Value.t array -> Value.t; is_identity : bool }

val make : string -> (Value.t array -> Value.t) -> t

val identity : string -> t
(** [identity col_hint] passes its single argument through — how plain
    column references are represented so that the optimizer genuinely cannot
    distinguish "just an attribute" from opaque code. *)

val apply : t -> Value.t array -> Value.t
val name : t -> string

val is_identity : t -> bool
(** True only for {!identity}. An execution-layer concession: the
    vectorized executor reads the referenced column directly instead of
    boxing an argument buffer per row. The optimizer never consults this —
    planning still treats every term as opaque. *)
