(** Runs strategies over a workload's query suite and aggregates results the
    way the paper's tables do. *)

open Monsoon_baselines
open Monsoon_workloads

type config = {
  budget : float;
      (** tuple budget per (strategy, query) — the timeout stand-in *)
  seed : int;
  queries : string list option;  (** restrict the suite; [None] = all *)
  jobs : int;
      (** domains running (strategy, query) cells: 1 = in-process
          sequential (the default), [n > 1] = a pool of [n] domains, [0] =
          one domain per recommended core
          ({!Monsoon_util.Pool.default_jobs}). Results are identical for
          every value — each cell's RNG derives only from
          [(seed, strategy, query)] (see {!cell_rng}). *)
}

val default_config : config
(** Budget 5e7, seed 42, all queries, [jobs = 1]. *)

val cell_rng :
  seed:int -> strategy:string -> query:string -> Monsoon_util.Rng.t
(** The deterministic per-cell stream [run_suite] hands each
    (strategy, query) run. Exposed so out-of-suite reruns (e.g. the
    EXPLAIN entry point) can reproduce a cell exactly. *)

type cell = {
  query : string;
  outcome : Strategy.outcome option;  (** [None]: strategy not applicable *)
}

type row = { strategy : string; cells : cell list }

val run_suite :
  ?ctx:Monsoon_telemetry.Ctx.t ->
  config -> Strategy.t list -> Workload.t -> row list
(** One row per strategy, one cell per query (in suite order). The
    hand-written plans, when the workload has them, can be included by
    adding a {!Strategy.fixed_plan} to the list.

    With [?ctx], the context is threaded into every strategy run and each
    (strategy, query) cell executes under a ["query"] root span carrying
    [strategy] / [query] / [cost] / [timed_out] attributes; with
    [config.jobs > 1] cells run concurrently, so the context's metrics and
    spans must be (and are) domain-safe — only span ordering varies between
    [jobs] settings, never the returned rows. *)

type agg = {
  agg_name : string;
  timeouts : int;
  mean : float option;  (** [None] when any query timed out (paper: N/A) *)
  median : float;  (** timeouts included at the budget value *)
  max_ : float option;  (** [None] = "TO" *)
  n : int;  (** applicable queries *)
}

val aggregate : budget:float -> row -> agg

val relative_buckets : baseline:row -> row -> float * float * float
(** Shares of queries with cost <0.9, within [0.9,1.1), and >1.1 of the
    baseline's cost on the same query (paper Table 4). Timeouts land in the
    last bucket. *)

val top_k_by : baseline:row -> k:int -> string list
(** Names of the [k] most expensive queries under the baseline row —
    the paper's "20 most expensive IMDB queries" selector. *)

val filter_queries : row -> string list -> row
