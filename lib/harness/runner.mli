(** Runs strategies over a workload's query suite and aggregates results the
    way the paper's tables do. *)

open Monsoon_util
open Monsoon_baselines
open Monsoon_workloads

type config = {
  budget : float;
      (** tuple budget per (strategy, query) — the timeout stand-in *)
  seed : int;
  queries : string list option;  (** restrict the suite; [None] = all *)
  jobs : int;
      (** domains running (strategy, query) cells: 1 = in-process
          sequential (the default), [n > 1] = a pool of [n] domains, [0] =
          one domain per recommended core
          ({!Monsoon_util.Pool.default_jobs}). Results are identical for
          every value — each cell's RNG derives only from
          [(seed, strategy, query)] (see {!cell_rng}). *)
  faults : Fault.spec option;
      (** arm the fault plane: every cell attempt gets a private
          [Fault.plan] derived from (a copy of) its cell RNG, so the same
          seed + spec fires identically across runs and [jobs] values, and
          a rate-0 spec is byte-identical to [None]. [worker_kills] are
          injected into the pool when [jobs > 1]. Default [None]. *)
  retries : int;
      (** extra attempts for a cell killed by a fault, each on a
          deterministically salted RNG after a fixed exponential backoff;
          a cell failing every attempt is quarantined ([outcome = None],
          [error = Some _]). Attempt 0 always uses the unsalted
          {!cell_rng}, so fault-free cells are untouched. Default 2. *)
  cell_deadline : float option;
      (** wall-clock seconds per cell attempt, enforced cooperatively by
          the strategy/executor/MCTS; expiry yields a timed-out outcome
          (never a retry). Wall-clock bounds trade away run-to-run
          determinism — leave [None] (the default) when comparing runs. *)
  qlog : Monsoon_telemetry.Qlog.t option;
      (** audit log: when set, every cell attempt appends one
          {!Monsoon_telemetry.Qlog} record (per-attempt recorder, trace id
          derived from [(seed, strategy, query, attempt)]). [None] (the
          default) leaves the run's context — and hence its results —
          byte-identical to an unaudited run. *)
}

val default_config : config
(** Budget 5e7, seed 42, all queries, [jobs = 1], no faults, 2 retries,
    no deadline, no qlog. *)

val cell_rng :
  seed:int -> strategy:string -> query:string -> Monsoon_util.Rng.t
(** The deterministic per-cell stream [run_suite] hands each
    (strategy, query) run. Exposed so out-of-suite reruns (e.g. the
    EXPLAIN entry point) can reproduce a cell exactly. *)

type cell = {
  query : string;
  outcome : Strategy.outcome option;
      (** [None]: strategy not applicable, or quarantined (see [error]) *)
  error : string option;
      (** [Some fault_class] when the cell faulted on every attempt and
          was quarantined *)
  attempts : int;  (** runs taken: 1 normally, 0 when not applicable *)
}

type row = { strategy : string; cells : cell list }

val run_suite :
  ?env:Monsoon_util.Env.t -> config -> Strategy.t list -> Workload.t -> row list
(** One row per strategy, one cell per query (in suite order). The
    hand-written plans, when the workload has them, can be included by
    adding a {!Strategy.fixed_plan} to the list.

    [?env] carries the suite-level environment. Its context is threaded
    into every strategy run and each (strategy, query) cell executes under
    a ["query"] root span carrying [strategy] / [query] / [attempt] /
    [cost] / [timed_out] attributes; with [config.jobs > 1] cells run
    concurrently, so the context's metrics and spans must be (and are)
    domain-safe — only span ordering varies between [jobs] settings, never
    the returned rows. [Monsoon_util.Env.default] (the default) leaves the
    run byte-identical to an unaudited run.

    [env]'s deadline abandons the whole suite: once the token trips, cells
    not yet started stop running and the call raises
    [Monsoon_util.Deadline.Expired] — after the pool has drained and every
    worker domain is joined, so cancellation never leaks domains. (Per-cell
    fault plans and deadlines are the suite's own business: they derive
    from [config.faults] / [config.cell_deadline], never from [env].)

    Resilience counters: [runner.cells], [runner.retries],
    [runner.quarantined] (plus the [pool.respawned] gauge when faults kill
    workers). *)

type agg = {
  agg_name : string;
  timeouts : int;
  mean : float option;  (** [None] when any query timed out (paper: N/A) *)
  median : float;  (** timeouts included at the budget value *)
  max_ : float option;  (** [None] = "TO" *)
  n : int;  (** applicable queries that produced an outcome *)
  errors : int;  (** quarantined cells (faulted on every attempt) *)
}

val aggregate : budget:float -> row -> agg

val relative_buckets : baseline:row -> row -> float * float * float
(** Shares of queries with cost <0.9, within [0.9,1.1), and >1.1 of the
    baseline's cost on the same query (paper Table 4). Timeouts land in the
    last bucket. *)

val top_k_by : baseline:row -> k:int -> string list
(** Names of the [k] most expensive queries under the baseline row —
    the paper's "20 most expensive IMDB queries" selector. *)

val filter_queries : row -> string list -> row
