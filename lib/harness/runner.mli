(** Runs strategies over a workload's query suite and aggregates results the
    way the paper's tables do. *)

open Monsoon_baselines
open Monsoon_workloads

type config = {
  budget : float;
      (** tuple budget per (strategy, query) — the timeout stand-in *)
  seed : int;
  queries : string list option;  (** restrict the suite; [None] = all *)
  telemetry : Monsoon_telemetry.Ctx.t;
      (** threaded into every strategy run; each (strategy, query) cell
          executes under a ["query"] root span carrying [strategy] /
          [query] / [cost] / [timed_out] attributes. Use
          [Monsoon_telemetry.Ctx.null ()] to run silently. *)
}

type cell = {
  query : string;
  outcome : Strategy.outcome option;  (** [None]: strategy not applicable *)
}

type row = { strategy : string; cells : cell list }

val run_suite : config -> Strategy.t list -> Workload.t -> row list
(** One row per strategy, one cell per query (in suite order). The
    hand-written plans, when the workload has them, can be included by
    adding a {!Strategy.fixed_plan} to the list. *)

type agg = {
  agg_name : string;
  timeouts : int;
  mean : float option;  (** [None] when any query timed out (paper: N/A) *)
  median : float;  (** timeouts included at the budget value *)
  max_ : float option;  (** [None] = "TO" *)
  n : int;  (** applicable queries *)
}

val aggregate : budget:float -> row -> agg

val relative_buckets : baseline:row -> row -> float * float * float
(** Shares of queries with cost <0.9, within [0.9,1.1), and >1.1 of the
    baseline's cost on the same query (paper Table 4). Timeouts land in the
    last bucket. *)

val top_k_by : baseline:row -> k:int -> string list
(** Names of the [k] most expensive queries under the baseline row —
    the paper's "20 most expensive IMDB queries" selector. *)

val filter_queries : row -> string list -> row
