open Monsoon_util
open Monsoon_server
open Monsoon_telemetry

type arrival = Closed of int | Open of float

type stop = Requests of int | Duration of float

type config = { arrival : arrival; stop : stop; seed : int }

type sample = {
  s_index : int;
  s_client : int;
  s_query : string;
  s_status : string;
  s_code : int;
  s_latency : float;
}

type result = { samples : sample list; wall : float }

let validate config ~queries =
  if queries = [] then invalid_arg "Loadgen: empty query list";
  (match config.arrival with
  | Closed n when n < 1 -> invalid_arg "Loadgen: clients must be >= 1"
  | Open r when r <= 0.0 -> invalid_arg "Loadgen: rate must be > 0"
  | _ -> ());
  match config.stop with
  | Requests n when n < 0 -> invalid_arg "Loadgen: count must be >= 0"
  | Duration d when d <= 0.0 -> invalid_arg "Loadgen: duration must be > 0"
  | _ -> ()

let schedule config ~queries =
  validate config ~queries;
  match config.stop with
  | Duration _ -> []
  | Requests count ->
    let qs = Array.of_list queries in
    let rng = Rng.create config.seed in
    let clients = match config.arrival with Closed n -> n | Open _ -> 1 in
    List.init count (fun i ->
        (i, i mod clients, qs.(Rng.int rng (Array.length qs))))

(* One issued request, timed on the client side. *)
let issue client ~index ~client_id qname =
  let t0 = Timer.now () in
  let status, code =
    match Load_client.query client qname with
    | Ok o -> (o.Load_client.o_status, o.Load_client.o_code)
    | Error _ -> ("transport", 0)
  in
  { s_index = index;
    s_client = client_id;
    s_query = qname;
    s_status = status;
    s_code = code;
    s_latency = Timer.now () -. t0 }

let run_closed_requests client config ~queries n_clients =
  let sched = schedule config ~queries in
  let results = Array.make (List.length sched) None in
  let per_client c =
    List.iter
      (fun (i, owner, q) ->
        if owner = c then
          results.(i) <- Some (issue client ~index:i ~client_id:c q))
      sched
  in
  let threads =
    List.init n_clients (fun c -> Thread.create per_client c)
  in
  List.iter Thread.join threads;
  (* Flattened in schedule order, independent of thread interleaving. *)
  Array.to_list results |> List.filter_map Fun.id

let run_closed_duration client config ~queries n_clients d =
  let qs = Array.of_list queries in
  let base = Rng.create config.seed in
  let streams = List.init n_clients (fun _ -> Rng.split base) in
  let t_end = Timer.now () +. d in
  let buckets = Array.make n_clients [] in
  let per_client (c, rng) =
    let rec go () =
      if Timer.now () < t_end then begin
        let q = qs.(Rng.int rng (Array.length qs)) in
        buckets.(c) <- issue client ~index:0 ~client_id:c q :: buckets.(c);
        go ()
      end
    in
    go ()
  in
  let threads =
    List.mapi (fun c rng -> Thread.create per_client (c, rng)) streams
  in
  List.iter Thread.join threads;
  Array.to_list buckets
  |> List.concat_map List.rev
  |> List.mapi (fun i s -> { s with s_index = i })

let run_open client config ~queries rate =
  let qs = Array.of_list queries in
  let rng = Rng.create config.seed in
  let stop_at, max_n =
    match config.stop with
    | Duration d -> (Timer.now () +. d, max_int)
    | Requests n -> (infinity, n)
  in
  let results : sample option array =
    Array.make (match config.stop with Requests n -> n | Duration _ -> 0) None
  in
  let overflow = ref [] in
  let overflow_lock = Mutex.create () in
  let threads = ref [] in
  let rec dispatch i t_next =
    if i < max_n && t_next < stop_at then begin
      let now = Timer.now () in
      if t_next > now then Thread.delay (t_next -. now);
      let q = qs.(Rng.int rng (Array.length qs)) in
      let th =
        Thread.create
          (fun () ->
            let s = issue client ~index:i ~client_id:i q in
            if i < Array.length results then results.(i) <- Some s
            else begin
              Mutex.lock overflow_lock;
              overflow := s :: !overflow;
              Mutex.unlock overflow_lock
            end)
          ()
      in
      threads := th :: !threads;
      (* Exponential inter-arrival gap: a seeded Poisson process. *)
      let gap = -.log (1.0 -. Rng.float rng 1.0) /. rate in
      dispatch (i + 1) (t_next +. gap)
    end
  in
  dispatch 0 (Timer.now ());
  List.iter Thread.join !threads;
  let fixed = Array.to_list results |> List.filter_map Fun.id in
  fixed
  @ (List.rev !overflow
    |> List.sort (fun a b -> compare a.s_index b.s_index))

let run client config ~queries =
  validate config ~queries;
  let t0 = Timer.now () in
  let samples =
    match (config.arrival, config.stop) with
    | Closed n, Requests _ -> run_closed_requests client config ~queries n
    | Closed n, Duration d -> run_closed_duration client config ~queries n d
    | Open rate, _ -> run_open client config ~queries rate
  in
  { samples; wall = Timer.now () -. t0 }

(* --- aggregation --- *)

let statuses = [ "ok"; "degraded"; "rejected"; "timeout"; "error"; "transport" ]

type agg = {
  a_query : string;
  a_count : int;
  a_by_status : (string * int) list;
  a_latencies : float array;  (* sorted ascending *)
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (ceil (p *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) rank))

let aggregate samples =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun s ->
      if not (Hashtbl.mem tbl s.s_query) then begin
        Hashtbl.replace tbl s.s_query [];
        order := s.s_query :: !order
      end;
      Hashtbl.replace tbl s.s_query (s :: Hashtbl.find tbl s.s_query))
    samples;
  (* Fingerprints in name order: the report must not depend on arrival
     order of the first sample of each query. *)
  List.sort compare !order
  |> List.map (fun q ->
         let ss = Hashtbl.find tbl q in
         let lats =
           List.map (fun s -> s.s_latency) ss |> Array.of_list
         in
         Array.sort compare lats;
         { a_query = q;
           a_count = List.length ss;
           a_by_status =
             List.map
               (fun st ->
                 ( st,
                   List.length (List.filter (fun s -> s.s_status = st) ss) ))
               statuses;
           a_latencies = lats })

let secs v = Printf.sprintf "%.4gs" v

let agg_row a =
  let count st = string_of_int (List.assoc st a.a_by_status) in
  [ a.a_query; string_of_int a.a_count ]
  @ List.map count statuses
  @ [ secs (percentile a.a_latencies 0.5);
      secs (percentile a.a_latencies 0.95);
      secs (percentile a.a_latencies 0.99) ]

let totals_row samples =
  let lats = List.map (fun s -> s.s_latency) samples |> Array.of_list in
  Array.sort compare lats;
  let count st =
    string_of_int (List.length (List.filter (fun s -> s.s_status = st) samples))
  in
  [ "TOTAL"; string_of_int (List.length samples) ]
  @ List.map count statuses
  @ [ secs (percentile lats 0.5);
      secs (percentile lats 0.95);
      secs (percentile lats 0.99) ]

let report r =
  let n = List.length r.samples in
  if n = 0 then "Load run: no requests issued\n"
  else
    let throughput = if r.wall > 0.0 then float_of_int n /. r.wall else 0.0 in
    let header =
      [ "Query"; "Count" ]
      @ List.map String.capitalize_ascii statuses
      @ [ "p50"; "p95"; "p99" ]
    in
    Printf.sprintf "Load run: %d requests in %.2fs (%.1f req/s)\n\n%s" n r.wall
      throughput
      (Report.table ~title:"Per-fingerprint breakdown" ~header
         (List.map agg_row (aggregate r.samples) @ [ totals_row r.samples ]))

let to_json r =
  let n = List.length r.samples in
  let count st ss =
    List.length (List.filter (fun s -> s.s_status = st) ss)
  in
  Json.Obj
    [ ("requests", Json.Num (float_of_int n));
      ("wall_s", Json.Num r.wall);
      ( "throughput_rps",
        Json.Num (if r.wall > 0.0 then float_of_int n /. r.wall else 0.0) );
      ( "by_status",
        Json.Obj
          (List.map
             (fun st -> (st, Json.Num (float_of_int (count st r.samples))))
             statuses) );
      ( "per_query",
        Json.Arr
          (List.map
             (fun a ->
               Json.Obj
                 ([ ("query", Json.Str a.a_query);
                    ("count", Json.Num (float_of_int a.a_count)) ]
                 @ List.map
                     (fun (st, c) -> (st, Json.Num (float_of_int c)))
                     a.a_by_status
                 @ [ ("p50_s", Json.Num (percentile a.a_latencies 0.5));
                     ("p95_s", Json.Num (percentile a.a_latencies 0.95));
                     ("p99_s", Json.Num (percentile a.a_latencies 0.99)) ]))
             (aggregate r.samples)) ) ]
