(** The workload driver behind [monsoon load]: replays a benchmark query
    suite against a server through {!Monsoon_server.Load_client}, in
    closed- or open-loop mode, and renders a per-query-fingerprint
    latency/error breakdown.

    {b Closed loop} ([Closed n]): [n] clients, each issuing its next
    request the moment the previous response lands — the classic
    concurrency-limited driver. With a [Requests] stop, the whole run is
    laid out up front by {!schedule}: request [i] belongs to client
    [i mod n] and its query is drawn from one seeded stream, so the
    request ordering and the per-fingerprint counts are a pure function of
    [(seed, count, clients, queries)] — byte-stable across runs and across
    thread interleavings (the determinism contract the tests pin down).
    With a [Duration] stop, each client draws from its own split stream
    until the clock runs out; counts then depend on timing.

    {b Open loop} ([Open rate]): arrivals come from a seeded Poisson
    process ([rate] req/s, exponential inter-arrival gaps); each arrival
    gets its own thread, so a slow server does not throttle the arrival
    process — queue growth and 429s are the point of the exercise.

    Latencies in the {!report} are client-observed and exactly ranked
    (sorted samples, not histogram buckets); the server-side view lives in
    the SLO report. *)

type arrival =
  | Closed of int  (** concurrent clients, each one-request-at-a-time *)
  | Open of float  (** arrival rate in requests/second *)

type stop =
  | Requests of int  (** issue exactly this many requests *)
  | Duration of float  (** issue requests for this many seconds *)

type config = { arrival : arrival; stop : stop; seed : int }

val schedule : config -> queries:string list -> (int * int * string) list
(** [(index, client, query)] per request, in issue order — the
    deterministic layout used by closed-loop [Requests] runs (and by the
    open-loop dispatcher for its query choices). Empty for [Duration]
    stops, which cannot be laid out ahead of time.
    @raise Invalid_argument when [queries] is empty, [Closed n < 1] or
    [Open rate <= 0]. *)

type sample = {
  s_index : int;  (** issue-order position *)
  s_client : int;  (** issuing client (dispatch index in open loop) *)
  s_query : string;
  s_status : string;
      (** {!Monsoon_server.Slo.outcome_label} token, or ["transport"] for a
          client-side failure (connection refused, short read, …) *)
  s_code : int;  (** HTTP status; 0 on transport failure *)
  s_latency : float;  (** client-observed seconds *)
}

type result = {
  samples : sample list;  (** in issue order *)
  wall : float;  (** seconds, first issue to last response *)
}

val run :
  Monsoon_server.Load_client.t -> config -> queries:string list -> result
(** Blocks until every issued request has a response. Transport failures
    become ["transport"] samples, never exceptions. *)

val report : result -> string
(** The per-fingerprint table (count, per-outcome counts, exact
    p50/p95/p99 client latency) plus a totals row and a throughput line. *)

val to_json : result -> Monsoon_telemetry.Json.t
(** Machine-readable twin of {!report} ([monsoon load --json]): overall
    counts and throughput plus one object per fingerprint. *)
