open Monsoon_util
open Monsoon_baselines
open Monsoon_workloads
open Monsoon_telemetry

type config = {
  budget : float;
  seed : int;
  queries : string list option;
  jobs : int;
  faults : Fault.spec option;
  retries : int;
  cell_deadline : float option;
  qlog : Qlog.t option;
}

let default_config =
  { budget = 5e7;
    seed = 42;
    queries = None;
    jobs = 1;
    faults = None;
    retries = 2;
    cell_deadline = None;
    qlog = None }

(* A fresh deterministic stream per (strategy, query) cell. The split
   decouples the stream from the raw hash seed, and — because each cell's
   rng derives only from (seed, strategy, query) — makes the suite's
   results independent of the order and the parallelism cells run with. *)
let cell_rng ~seed ~strategy ~query =
  Rng.split (Rng.create (Hashtbl.hash (seed, strategy, query)))

(* Retry attempts re-derive the stream from a salted seed, so attempt k is
   deterministic too but explores a different trajectory than the one that
   faulted. Attempt 0 is exactly [cell_rng] — a fault-free run is untouched
   by the retry machinery. *)
let attempt_rng ~seed ~strategy ~query ~attempt =
  if attempt = 0 then cell_rng ~seed ~strategy ~query
  else cell_rng ~seed:(Hashtbl.hash (seed, attempt)) ~strategy ~query

(* Deterministic backoff before retry [k] (k ≥ 1): fixed exponential
   schedule, no jitter — chaos runs must be reproducible. *)
let backoff_seconds k = 0.01 *. (2.0 ** float_of_int (k - 1))

type cell = {
  query : string;
  outcome : Strategy.outcome option;
  error : string option;
  attempts : int;
}

type row = { strategy : string; cells : cell list }

let selected_queries config (w : Workload.t) =
  match config.queries with
  | None -> w.Workload.queries
  | Some names ->
    List.map (fun n -> (n, Workload.find_query w n)) names

let run_suite ?(env = Monsoon_util.Env.default) config strategies
    (w : Workload.t) =
  let tel = Ctx.of_env env in
  (* The environment's deadline is the suite-level cancellation token;
     per-cell deadlines come from [config.cell_deadline] and per-cell fault
     plans from [config.faults], so both stay derivable from the cell tuple
     alone (determinism and jobs-invariance). *)
  let cancel = Env.deadline env in
  let queries = selected_queries config w in
  let c_cells = Ctx.counter tel "runner.cells" in
  let c_retries = Ctx.counter tel "runner.retries" in
  let c_quarantined = Ctx.counter tel "runner.quarantined" in
  let run_cell ((s : Strategy.t), qname, q) =
    if not (s.Strategy.applicable q) then begin
      Metric.Counter.inc c_cells;
      { query = qname; outcome = None; error = None; attempts = 0 }
    end
    else begin
      (* One qlog record per attempt, under a trace id derived from the same
         tuple the attempt RNG derives from — so two fixed-seed runs mint
         identical trace ids and their qlogs diff byte-stably. *)
      let trace_for k =
        Printf.sprintf "r-%08x"
          (Hashtbl.hash (config.seed, s.Strategy.name, qname, k)
          land 0xffffffff)
      in
      let qlog_append ~trace ~outcome ?(detail = "") ?(latency = 0.0) ?cost
          ?result_card ?plan events =
        match config.qlog with
        | None -> ()
        | Some qlog ->
          Qlog.append qlog
            (Qlog.of_events ~trace ~query:qname ~strategy:s.Strategy.name
               ~outcome ~latency ~queue_wait:0.0 ?cost ?result_card ?plan
               ~detail events)
      in
      let run_attempt k =
        let rng =
          attempt_rng ~seed:config.seed ~strategy:s.Strategy.name ~query:qname
            ~attempt:k
        in
        (* The plan draws from a split of a *copy* of the cell stream: the
           strategy's own stream is untouched, so a rate-0 plan (or no plan)
           leaves every drawn number — and hence every result — identical. *)
        let fault =
          match config.faults with
          | None -> Fault.disabled
          | Some spec -> Fault.plan spec (Rng.split (Rng.copy rng))
        in
        let deadline =
          match config.cell_deadline with
          | None -> Deadline.none
          | Some s -> Deadline.after s
        in
        let trace = trace_for k in
        (* With no qlog the context is passed through untouched — the
           audit path must leave an unaudited run byte-identical. The
           recorder attachment itself never perturbs the strategy's RNG
           (the driver records unconditionally). *)
        let recorder, tel_attempt =
          match config.qlog with
          | None -> (None, tel)
          | Some _ ->
            let r = Recorder.create () in
            (Some r, Ctx.with_trace_id (Ctx.with_recorder tel r) trace)
        in
        let events () =
          match recorder with None -> [] | Some r -> Recorder.events r
        in
        Ctx.with_span tel_attempt "query"
          ~attrs:
            [ ("strategy", Span.Str s.Strategy.name);
              ("query", Span.Str qname);
              ("attempt", Span.Int k) ]
        @@ fun span ->
        let env_attempt =
          Env.with_deadline
            (Env.with_fault (Ctx.to_env tel_attempt) fault)
            deadline
        in
        let o =
          match
            s.Strategy.run ~env:env_attempt ~rng ~budget:config.budget
              w.Workload.catalog q
          with
          | o -> o
          | exception Deadline.Expired ->
            qlog_append ~trace ~outcome:"timeout" ~detail:"deadline expired"
              (events ());
            raise Deadline.Expired
          | exception Fault.Injected reason ->
            qlog_append ~trace ~outcome:"error" ~detail:reason (events ());
            raise (Fault.Injected reason)
        in
        qlog_append ~trace
          ~outcome:
            (if o.Strategy.timed_out then "timeout"
             else if o.Strategy.degraded > 0 then "degraded"
             else "ok")
          ~latency:o.Strategy.wall ~cost:o.Strategy.cost
          ~result_card:o.Strategy.result_card ~plan:o.Strategy.plan
          (events ());
        Span.set_attr span "cost" (Span.Float o.Strategy.cost);
        Span.set_attr span "timed_out" (Span.Bool o.Strategy.timed_out);
        o
      in
      let rec attempt k =
        match run_attempt k with
        | o -> { query = qname; outcome = Some o; error = None; attempts = k + 1 }
        | exception Deadline.Expired ->
          (* A deadline that escapes the strategy is a timeout, not a fault:
             retrying a too-slow cell would just time out again. *)
          { query = qname;
            outcome =
              Some
                { Strategy.cost = config.budget;
                  timed_out = true;
                  wall = 0.0;
                  plan_time = 0.0;
                  stats_cost = 0.0;
                  result_card = 0.0;
                  degraded = 0;
                  plan = "(abandoned: deadline expired)" };
            error = None;
            attempts = k + 1 }
        | exception Fault.Injected reason ->
          if k < config.retries then begin
            Metric.Counter.inc c_retries;
            Unix.sleepf (backoff_seconds (k + 1));
            attempt (k + 1)
          end
          else begin
            Metric.Counter.inc c_quarantined;
            { query = qname;
              outcome = None;
              error = Some reason;
              attempts = k + 1 }
          end
      in
      let cell = attempt 0 in
      Metric.Counter.inc c_cells;
      Ctx.flush tel;
      cell
    end
  in
  (* Cells are independent (catalog and queries are read-only during runs,
     every per-cell rng is derived above), so the flattened strategy-major
     cell list can fan out across a domain pool. Sequential and parallel
     runs produce the same cells in the same order. *)
  let tasks =
    List.concat_map
      (fun (s : Strategy.t) -> List.map (fun (qn, q) -> (s, qn, q)) queries)
      strategies
  in
  Metric.Gauge.set
    (Ctx.gauge tel "runner.cells_expected")
    (float_of_int (List.length tasks));
  let cells =
    if config.jobs = 1 then
      List.map
        (fun task ->
          Deadline.check cancel;
          run_cell task)
        tasks
    else begin
      let n = if config.jobs < 1 then Pool.default_jobs () else config.jobs in
      let g_queued = Ctx.gauge tel "pool.queued" in
      let g_in_flight = Ctx.gauge tel "pool.in_flight" in
      let g_completed = Ctx.gauge tel "pool.completed" in
      let g_respawned = Ctx.gauge tel "pool.respawned" in
      Pool.with_pool n (fun pool ->
          (* Export pool occupancy at cell boundaries so /metrics tracks
             progress without a hot-path hook inside the pool itself. *)
          let export () =
            let st = Pool.stats pool in
            Metric.Gauge.set g_queued (float_of_int st.Pool.queued);
            Metric.Gauge.set g_in_flight (float_of_int st.Pool.in_flight);
            Metric.Gauge.set g_completed (float_of_int st.Pool.completed);
            Metric.Gauge.set g_respawned (float_of_int (Pool.respawned pool))
          in
          (* Worker kills from the fault spec land here: each token makes
             one worker die between cells and respawn a replacement, so the
             suite exercises worker churn without losing a cell. *)
          (match config.faults with
          | Some spec when spec.Fault.worker_kills > 0 ->
            Pool.inject_kills pool spec.Fault.worker_kills
          | _ -> ());
          let out =
            Pool.map ~cancel pool
              (fun task ->
                export ();
                let cell = run_cell task in
                export ();
                cell)
              tasks
          in
          export ();
          out)
    end
  in
  let per_row = List.length queries in
  let rec chunk cells strategies =
    match strategies with
    | [] -> []
    | (s : Strategy.t) :: rest ->
      let row_cells = List.filteri (fun i _ -> i < per_row) cells in
      let remainder = List.filteri (fun i _ -> i >= per_row) cells in
      { strategy = s.Strategy.name; cells = row_cells } :: chunk remainder rest
  in
  chunk cells strategies

type agg = {
  agg_name : string;
  timeouts : int;
  mean : float option;
  median : float;
  max_ : float option;
  n : int;
  errors : int;
}

let aggregate ~budget row =
  let outcomes = List.filter_map (fun c -> c.outcome) row.cells in
  let n = List.length outcomes in
  let errors =
    List.length (List.filter (fun c -> c.error <> None) row.cells)
  in
  let timeouts = List.length (List.filter (fun o -> o.Strategy.timed_out) outcomes) in
  let costs =
    Array.of_list
      (List.map
         (fun o -> if o.Strategy.timed_out then budget else o.Strategy.cost)
         outcomes)
  in
  let mean =
    if timeouts > 0 || n = 0 then None else Some (Dist.mean costs)
  in
  let median = if n = 0 then 0.0 else Dist.median costs in
  let max_ =
    if timeouts > 0 then None
    else if n = 0 then Some 0.0
    else Some (Array.fold_left Float.max 0.0 costs)
  in
  { agg_name = row.strategy; timeouts; mean; median; max_; n; errors }

let cost_by_query row =
  List.filter_map
    (fun c ->
      match c.outcome with
      | Some o -> Some (c.query, o)
      | None -> None)
    row.cells

let relative_buckets ~baseline row =
  let base = cost_by_query baseline in
  let low = ref 0 and mid = ref 0 and high = ref 0 in
  let n = ref 0 in
  List.iter
    (fun c ->
      match c.outcome with
      | None -> ()
      | Some o -> (
        match List.assoc_opt c.query base with
        | None -> ()
        | Some b ->
          incr n;
          if o.Strategy.timed_out then incr high
          else begin
            let ratio = (o.Strategy.cost +. 1.0) /. (b.Strategy.cost +. 1.0) in
            if ratio < 0.9 then incr low
            else if ratio < 1.1 then incr mid
            else incr high
          end))
    row.cells;
  let f x = 100.0 *. float_of_int x /. float_of_int (max 1 !n) in
  (f !low, f !mid, f !high)

let top_k_by ~baseline ~k =
  let costs =
    List.filter_map
      (fun c ->
        match c.outcome with
        | Some o -> Some (c.query, o.Strategy.cost)
        | None -> None)
      baseline.cells
  in
  List.sort (fun (_, a) (_, b) -> compare b a) costs
  |> List.filteri (fun i _ -> i < k)
  |> List.map fst

let filter_queries row names =
  { row with cells = List.filter (fun c -> List.mem c.query names) row.cells }
