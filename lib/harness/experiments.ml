open Monsoon_util
open Monsoon_relalg
open Monsoon_stats
open Monsoon_core
open Monsoon_baselines
open Monsoon_workloads
open Monsoon_telemetry
module Stats_repo = Monsoon_stats_repo.Stats_repo

type profile = {
  label : string;
  seed : int;
  imdb_scale : float;
  tpch_scale : float;
  ott_scale : float;
  udf_imdb_scale : float;
  udf_tpch_scale : float;
  imdb_budget : float;
  tpch_budget : float;
  ott_budget : float;
  udf_budget : float;
  monsoon_iterations : int;
  tpch_queries : string list option;
  imdb_queries : string list option;
  jobs : int;  (* domains for the (strategy, query) grid; 0 = all cores *)
  ctx : Ctx.t;
}

let quick =
  { label = "quick";
    seed = 42;
    imdb_scale = 0.1;
    tpch_scale = 0.1;
    ott_scale = 0.15;
    udf_imdb_scale = 0.08;
    udf_tpch_scale = 0.08;
    imdb_budget = 1e6;
    tpch_budget = 1e6;
    ott_budget = 3e5;
    udf_budget = 1e6;
    monsoon_iterations = 150;
    tpch_queries = Some [ "tq1"; "tq2"; "tq9"; "tq12" ];
    imdb_queries = Some [ "iq1"; "iq7"; "iq13"; "iq22"; "iq31"; "iq46"; "iq51"; "iq58" ];
    jobs = 1;
    ctx = Ctx.null () }

let full =
  { label = "full";
    seed = 1729;
    imdb_scale = 0.5;
    tpch_scale = 0.4;
    ott_scale = 0.5;
    udf_imdb_scale = 0.25;
    udf_tpch_scale = 0.25;
    (* Budgets follow the paper's proportions: the 20-minute timeout was
       ~1.2x the full-statistics baseline's worst query. *)
    imdb_budget = 3e6;
    tpch_budget = 2e6;
    ott_budget = 2e6;
    udf_budget = 2e6;
    monsoon_iterations = 400;
    tpch_queries = None;
    imdb_queries = None;
    jobs = 1;
    ctx = Ctx.null () }

(* --- Shared pieces of the Sec 2.3 walkthrough (Table 1, Figure 1) --- *)

let sec23_query () =
  let b = Query.Builder.create ~name:"sec2.3" in
  let r = Query.Builder.rel b ~table:"R" ~alias:"R" in
  let s = Query.Builder.rel b ~table:"S" ~alias:"S" in
  let t = Query.Builder.rel b ~table:"T" ~alias:"T" in
  let f1 = Query.Builder.term b (Udf.identity "a") [ (r, "a") ] in
  let f2 = Query.Builder.term b (Udf.identity "b") [ (s, "b") ] in
  let f3 = Query.Builder.term b (Udf.identity "c") [ (r, "c") ] in
  let f4 = Query.Builder.term b (Udf.identity "d") [ (t, "d") ] in
  Query.Builder.join_pred b f1 f2;
  Query.Builder.join_pred b f3 f4;
  Query.Builder.build b

let sec23_raw = [| 1e6; 1e4; 1e4 |]

let sec23_env ~d_s ~d_t =
  { Cost_model.count_of = (fun _ -> None);
    raw_count = (fun i -> sec23_raw.(i));
    distinct_of =
      (fun ~term ~pred:_ ~c_own:_ ~c_partner:_ ->
        match term.Term.id with
        | 0 | 2 -> 1000.0
        | 1 -> d_s
        | 3 -> d_t
        | _ -> assert false);
    record_count = (fun _ _ -> ()) }

let table1 () =
  let q = sec23_query () in
  let plan_rs_t = Expr.join (Expr.join (Expr.base 0) (Expr.base 1)) (Expr.base 2) in
  let plan_rt_s = Expr.join (Expr.join (Expr.base 0) (Expr.base 2)) (Expr.base 1) in
  let rows =
    List.map
      (fun (d_s, d_t) ->
        let env = sec23_env ~d_s ~d_t in
        let c1 = Cost_model.cost q env plan_rs_t in
        let c2 = Cost_model.cost q env plan_rt_s in
        let optimal =
          if c1 < c2 then "((R⨝S)⨝T)"
          else if c2 < c1 then "((R⨝T)⨝S)"
          else "Both"
        in
        [ Printf.sprintf "%.0f" d_s; Printf.sprintf "%.0f" d_t; optimal;
          Report.cost (Float.min c1 c2) ])
      [ (1.0, 1.0); (1.0, 1e4); (1e4, 1.0); (1e4, 1e4) ]
  in
  Report.table ~title:"Table 1: enumerating attribute cardinalities (Sec 2.3)"
    ~header:[ "d(F2,S)"; "d(F4,T)"; "Optimal Plan"; "Int. Tuples" ]
    rows
  ^ "  paper: rows are (1,1,Both,10M) (1,1e4,(R⨝T)⨝S,1M) (1e4,1,(R⨝S)⨝T,1M) (1e4,1e4,Both,1M)\n"

let two_point =
  Prior.custom ~name:"two-point"
    ~sample:(fun rng ~c_own ~c_partner:_ ->
      if Rng.bool rng then 1.0 else Float.min 10_000.0 c_own)
    ()

let point v =
  Prior.custom ~name:"point" ~sample:(fun _ ~c_own:_ ~c_partner:_ -> v) ()

let sec23_mdp ~seed =
  let ctx = { Mdp.query = sec23_query (); raw_counts = sec23_raw } in
  let state = Mdp.init_state ctx in
  Stats_catalog.set_distinct state.Mdp.stats ~term:0 ~scope:Stats_catalog.Wildcard 1000.0;
  Stats_catalog.set_distinct state.Mdp.stats ~term:2 ~scope:Stats_catalog.Wildcard 1000.0;
  let sim =
    Simulator.create_with ctx
      ~prior_of:(function 1 | 3 -> two_point | _ -> point 1000.0)
      (Rng.create seed)
  in
  (ctx, state, sim)

let figure1 () =
  let ctx, state, sim = sec23_mdp ~seed:7 in
  let r = Relset.singleton 0 and s = Relset.singleton 1 and t = Relset.singleton 2 in
  let after edits =
    List.fold_left (fun st a -> Mdp.apply_plan_edit st a) state edits
  in
  let guess_rs =
    Simulator.expected_execute_cost sim
      (after
         [ Mdp.Join_exec (r, s);
           Mdp.Join_mixed (t, Expr.join (Expr.leaf r) (Expr.leaf s)) ])
      ~n:4000
  in
  let sigma_s = after [ Mdp.Add_stats_of_exec s ] in
  (* Expected total of the statistics-first strategy: pay the scan, then
     execute the optimal order for whatever the scan reveals. *)
  let n = 2000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    let st', rwd = Simulator.step sim sigma_s Mdp.Execute in
    let best =
      Float.min
        (Simulator.expected_execute_cost sim
           (Mdp.apply_plan_edit
              (Mdp.apply_plan_edit st' (Mdp.Join_exec (r, s)))
              (Mdp.Join_mixed (t, Expr.join (Expr.leaf r) (Expr.leaf s))))
           ~n:1)
        (Simulator.expected_execute_cost sim
           (Mdp.apply_plan_edit
              (Mdp.apply_plan_edit st' (Mdp.Join_exec (r, t)))
              (Mdp.Join_mixed (s, Expr.join (Expr.leaf r) (Expr.leaf t))))
           ~n:1)
    in
    total := !total -. rwd +. best
  done;
  let sigma_first = !total /. float_of_int n in
  let cfg =
    { (Monsoon_mcts.Mcts.default_config ~rng:(Rng.create 42)) with
      Monsoon_mcts.Mcts.iterations = 20_000 }
  in
  let chosen =
    match Monsoon_mcts.Mcts.plan cfg (Simulator.problem sim) state with
    | Some (a, _) -> Mdp.describe_action ctx a
    | None -> "(terminal)"
  in
  Report.series ~title:"Figure 1: the Sec 2.3 MDP — expected strategy costs"
    ~x_label:"strategy" ~y_label:"expected intermediate objects"
    [ ("guess ((R⨝S)⨝T) immediately", guess_rs);
      ("Σ(S) first, then optimal order", sigma_first) ]
  ^ Printf.sprintf
      "  paper: guessing ≈ 5.5M expected; Σ-first ≈ 0.01M + 3.25M.\n\
      \  MCTS from the start state chooses: %s\n"
      chosen

let figure2 () =
  let xs = List.init 19 (fun i -> 0.05 *. float_of_int (i + 1)) in
  let priors =
    [ Prior.uniform; Prior.increasing; Prior.decreasing; Prior.u_shaped;
      Prior.low_biased ]
  in
  let header = "x (= d / c(r))" :: List.map Prior.name priors in
  let rows =
    List.map
      (fun x ->
        Printf.sprintf "%.2f" x
        :: List.map (fun p -> Printf.sprintf "%.3f" (Prior.density p ~x)) priors)
      xs
  in
  Report.table ~title:"Figure 2: prior densities over the distinct-count fraction"
    ~header rows
  ^ "  (Spike-and-Slab adds 10% point masses at c(r) and c(s); Discrete is a\n\
    \   point mass at 0.1*c(r).)\n"

(* --- Benchmark-driven tables --- *)

let monsoon_strategy profile prior =
  Strategy.monsoon ~iterations:profile.monsoon_iterations prior

let run_workload profile ~budget ?queries strategies workload =
  Runner.run_suite ~env:(Ctx.to_env profile.ctx)
    { Runner.default_config with
      Runner.budget;
      seed = profile.seed;
      queries;
      jobs = profile.jobs }
    strategies workload

let table2 profile =
  let skews = [ Tpch.Plain; Tpch.Low; Tpch.High; Tpch.Mixed ] in
  (* 28 Monsoon configurations over 4 databases: run each at half the MCTS
     effort (and without the query-size multiplier) to keep the sweep
     tractable. *)
  let monsoon prior =
    Strategy.monsoon
      ~iterations:(max 100 (profile.monsoon_iterations / 2))
      ~scale_with_size:false prior
  in
  let results =
    List.map
      (fun skew ->
        let w =
          Tpch.workload
            { Tpch.seed = profile.seed; scale = profile.tpch_scale; skew }
        in
        let rows =
          run_workload profile ~budget:profile.tpch_budget
            ?queries:profile.tpch_queries
            (List.map monsoon Prior.all)
            w
        in
        (* run_suite names every row "Monsoon"; pair them back with the
           priors by position. *)
        List.map2
          (fun prior row ->
            (Prior.name prior, Runner.aggregate ~budget:profile.tpch_budget row))
          Prior.all rows)
      skews
  in
  let header = "Prior" :: List.map Tpch.skew_name skews in
  let rows =
    List.map
      (fun prior ->
        Prior.name prior
        :: List.map
             (fun per_skew ->
               let agg = List.assoc (Prior.name prior) per_skew in
               Runner.(
                 match agg.mean with
                 | Some m -> Report.cost m
                 | None -> "N/A"))
             results)
      Prior.all
  in
  Report.table
    ~title:
      "Table 2: average Monsoon cost per prior across TPC-H skew variants\n\
      \  (N/A: a query timed out; paper shape: Spike-and-Slab consistently near the top)"
    ~header rows

let seven profile = Strategy.standard_seven Prior.spike_and_slab
  |> List.map (fun (s : Strategy.t) ->
         if s.Strategy.name = "Monsoon" then monsoon_strategy profile Prior.spike_and_slab
         else s)

(* Tables 3/4/5 share one IMDB run and Table 7/Figure 3 one UDF run; cache
   them so `run all` does not repeat multi-minute suites. *)
let memo_cache : (string, string * string * string) Hashtbl.t = Hashtbl.create 4

let memoized key compute =
  match Hashtbl.find_opt memo_cache key with
  | Some v -> v
  | None ->
    let v = compute () in
    Hashtbl.replace memo_cache key v;
    v

let tables3_4_5_uncached profile =
  let w = Imdb.workload { Imdb.seed = profile.seed; scale = profile.imdb_scale } in
  let rows =
    run_workload profile ~budget:profile.imdb_budget ?queries:profile.imdb_queries
      (seven profile) w
  in
  let budget = profile.imdb_budget in
  let t3 =
    Report.agg_table
      ~title:"Table 3: performance on the IMDB-like benchmark (objects; TO = budget exhausted)"
      ~budget
      (List.map (Runner.aggregate ~budget) rows)
  in
  let baseline =
    List.find (fun (r : Runner.row) -> r.Runner.strategy = "Postgres") rows
  in
  let t4 =
    Report.table
      ~title:"Table 4: share of IMDB queries relative to Postgres (full statistics)"
      ~header:[ "Impl."; "<0.9"; "[0.9,1.1)"; ">1.1" ]
      (List.filter_map
         (fun (r : Runner.row) ->
           if r.Runner.strategy = "Postgres" then None
           else begin
             let low, mid, high = Runner.relative_buckets ~baseline r in
             Some
               [ r.Runner.strategy; Printf.sprintf "%.1f%%" low;
                 Printf.sprintf "%.1f%%" mid; Printf.sprintf "%.1f%%" high ]
           end)
         rows)
  in
  let top =
    Runner.top_k_by ~baseline ~k:(min 20 (List.length baseline.Runner.cells))
  in
  let t5 =
    Report.agg_table
      ~title:"Table 5: the most expensive IMDB queries (top-20 by Postgres cost)"
      ~budget
      (List.map
         (fun r -> Runner.aggregate ~budget (Runner.filter_queries r top))
         rows)
  in
  (t3, t4, t5)

let tables3_4_5 profile =
  memoized ("t345-" ^ profile.label) (fun () -> tables3_4_5_uncached profile)

let table6 profile =
  let cfg = { Ott.seed = profile.seed; scale = profile.ott_scale; domain = 100 } in
  let w = Ott.workload cfg in
  let strategies =
    Strategy.fixed_plan ~name:"Hand-written" (fun q -> Ott.hand_written (Query.name q) q)
    :: seven profile
  in
  let rows = run_workload profile ~budget:profile.ott_budget strategies w in
  Report.agg_table
    ~title:
      "Table 6: Optimizer Torture Tests (correlated columns; every result is empty)"
    ~budget:profile.ott_budget
    (List.map (Runner.aggregate ~budget:profile.ott_budget) rows)

let udf_strategies profile =
  (* Postgres and On-Demand are dropped on the UDF benchmark (paper
     Sec 6.2.2). *)
  [ Strategy.defaults; Strategy.greedy;
    monsoon_strategy profile Prior.spike_and_slab; Strategy.sampling;
    Strategy.skinner ]

let table7_figure3_uncached profile =
  let w =
    Udf_bench.workload
      { Udf_bench.seed = profile.seed;
        imdb_scale = profile.udf_imdb_scale;
        tpch_scale = profile.udf_tpch_scale }
  in
  let rows = run_workload profile ~budget:profile.udf_budget (udf_strategies profile) w in
  let t7 =
    Report.agg_table ~title:"Table 7: queries with UDFs (incl. multi-instance UDFs)"
      ~budget:profile.udf_budget
      (List.map (Runner.aggregate ~budget:profile.udf_budget) rows)
  in
  let monsoon_row =
    List.find (fun (r : Runner.row) -> r.Runner.strategy = "Monsoon") rows
  in
  let order =
    List.filter_map
      (fun (c : Runner.cell) ->
        Option.map
          (fun o ->
            ( c.Runner.query,
              if o.Strategy.timed_out then profile.udf_budget else o.Strategy.cost ))
          c.Runner.outcome)
      monsoon_row.Runner.cells
    |> List.sort (fun (_, a) (_, b) -> compare a b)
  in
  let cell_for (r : Runner.row) qname =
    match List.find_opt (fun c -> c.Runner.query = qname) r.Runner.cells with
    | Some { Runner.outcome = Some o; _ } ->
      if o.Strategy.timed_out then "TO" else Report.cost o.Strategy.cost
    | Some { Runner.outcome = None; _ } | None -> "-"
  in
  let fig3 =
    Report.table
      ~title:
        "Figure 3: per-query cost on the UDF benchmark, sorted by Monsoon\n\
        \  (paper: Monsoon's curve stays lowest on the expensive tail)"
      ~header:("query" :: List.map (fun (r : Runner.row) -> r.Runner.strategy) rows)
      (List.map
         (fun (qname, _) -> qname :: List.map (fun r -> cell_for r qname) rows)
         order)
  in
  (t7, fig3)

let table7_figure3 profile =
  let t7, f3 =
    let pair =
      memoized ("t7f3-" ^ profile.label) (fun () ->
          let a, b = table7_figure3_uncached profile in
          (a, b, ""))
    in
    match pair with a, b, _ -> (a, b)
  in
  (t7, f3)

let table8 profile =
  let monsoon = monsoon_strategy profile Prior.spike_and_slab in
  let bench ~name ~budget ?queries w =
    (* Each benchmark runs under a fresh in-memory trace; the row is
       derived from the spans the instrumented stack emits (MCTS planning
       wall-time, Σ-pass objects, executed objects) rather than from
       per-outcome accumulator fields. *)
    let buf = Span.memory_buffer () in
    let tel = Ctx.create ~sink:(Span.Memory buf) () in
    let rows =
      Runner.run_suite ~env:(Ctx.to_env tel)
        { Runner.default_config with
          Runner.budget;
          seed = profile.seed;
          queries;
          jobs = profile.jobs }
        [ monsoon ] w
    in
    match rows with
    | [ row ] ->
      let outs = List.filter_map (fun c -> c.Runner.outcome) row.Runner.cells in
      let n = float_of_int (max 1 (List.length outs)) in
      let comps = Snapshot.breakdown (Span.buffer_spans buf) in
      let seconds_of nm =
        match Snapshot.component nm comps with
        | Some c -> c.Snapshot.comp_seconds
        | None -> 0.0
      in
      let objects_of nm =
        match Snapshot.component nm comps with
        | Some c -> c.Snapshot.comp_objects
        | None -> 0.0
      in
      let sigma = objects_of "exec.sigma" in
      (* [exec.execute] spans carry the full charged cost, Σ included. *)
      let execution = Float.max 0.0 (objects_of "exec.execute" -. sigma) in
      [ name;
        Report.seconds (seconds_of "mcts.plan" /. n);
        Report.cost (sigma /. n);
        Report.cost (execution /. n) ]
    | _ -> assert false
  in
  let imdb = Imdb.workload { Imdb.seed = profile.seed; scale = profile.imdb_scale } in
  let imdb_row = bench ~name:"IMDB" ~budget:profile.imdb_budget ?queries:profile.imdb_queries imdb in
  let top20 =
    (* IMDB-20 as in Table 5: the most expensive queries under Postgres. *)
    let rows =
      run_workload profile ~budget:profile.imdb_budget ?queries:profile.imdb_queries
        [ Strategy.postgres ] imdb
    in
    Runner.top_k_by ~baseline:(List.hd rows) ~k:(min 20 (List.length (List.hd rows).Runner.cells))
  in
  let imdb20_row =
    bench ~name:"IMDB-20" ~budget:profile.imdb_budget ~queries:top20 imdb
  in
  let ott_row =
    bench ~name:"OTT" ~budget:profile.ott_budget
      (Ott.workload { Ott.seed = profile.seed; scale = profile.ott_scale; domain = 100 })
  in
  let udf_row =
    bench ~name:"UDF" ~budget:profile.udf_budget
      (Udf_bench.workload
         { Udf_bench.seed = profile.seed;
           imdb_scale = profile.udf_imdb_scale;
           tpch_scale = profile.udf_tpch_scale })
  in
  Report.table
    ~title:
      "Table 8: Monsoon component breakdown per query\n\
      \  (MCTS: planning wall-time; Σ and Execution: objects processed)"
    ~header:[ "Benchmark"; "MCTS"; "Σ"; "Execution" ]
    [ imdb_row; imdb20_row; ott_row; udf_row ]

(* --- Ablations (beyond the paper's tables) --- *)

let ablation_workload profile =
  let w = Imdb.workload { Imdb.seed = profile.seed; scale = profile.imdb_scale } in
  let queries =
    match profile.imdb_queries with
    | Some qs -> Some qs
    | None -> Some [ "iq1"; "iq7"; "iq13"; "iq22"; "iq31"; "iq46"; "iq51"; "iq58" ]
  in
  (w, queries)

let ablation_selection profile =
  let w, queries = ablation_workload profile in
  let strategies =
    [ Strategy.monsoon ~iterations:profile.monsoon_iterations
        ~selection:(Monsoon_mcts.Mcts.Uct (sqrt 2.0))
        Prior.spike_and_slab;
      Strategy.monsoon ~iterations:profile.monsoon_iterations
        ~selection:Monsoon_mcts.Mcts.Epsilon_greedy Prior.spike_and_slab ]
  in
  let rows = run_workload profile ~budget:profile.imdb_budget ?queries strategies w in
  let aggs = List.map (Runner.aggregate ~budget:profile.imdb_budget) rows in
  let named = List.map2 (fun n a -> { a with Runner.agg_name = n })
      [ "Monsoon (UCT, w=sqrt 2)"; "Monsoon (eps-greedy)" ] aggs in
  Report.agg_table ~title:"Ablation: MCTS selection strategy (IMDB subset)"
    ~budget:profile.imdb_budget named

let ablation_iterations profile =
  let w, queries = ablation_workload profile in
  let iteration_counts = [ 50; 200; 800 ] in
  let strategies =
    List.map (fun i -> Strategy.monsoon ~iterations:i Prior.spike_and_slab) iteration_counts
  in
  let rows = run_workload profile ~budget:profile.imdb_budget ?queries strategies w in
  let aggs = List.map (Runner.aggregate ~budget:profile.imdb_budget) rows in
  let named =
    List.map2
      (fun i a -> { a with Runner.agg_name = Printf.sprintf "%d iterations" i })
      iteration_counts aggs
  in
  Report.agg_table ~title:"Ablation: MCTS iteration budget (IMDB subset)"
    ~budget:profile.imdb_budget named

(* Least-expected-cost optimization (the paper's closest prior work) under
   the same prior: measures what interleaved statistics collection buys
   over picking one expected-cost-optimal plan up front. *)
let ablation_lec profile =
  let w, queries = ablation_workload profile in
  let strategies =
    [ Strategy.monsoon ~iterations:profile.monsoon_iterations Prior.spike_and_slab;
      Lec.strategy Prior.spike_and_slab;
      Strategy.postgres ]
  in
  let rows = run_workload profile ~budget:profile.imdb_budget ?queries strategies w in
  Report.agg_table
    ~title:
      "Ablation: Monsoon (multi-step) vs least-expected-cost (plan once under\n\
      \  the same prior) vs full statistics (IMDB subset)"
    ~budget:profile.imdb_budget
    (List.map (Runner.aggregate ~budget:profile.imdb_budget) rows)

let spike_free =
  Prior.custom ~name:"Slab only"
    ~sample:(fun rng ~c_own ~c_partner:_ ->
      1.0 +. Rng.float rng (Float.max 0.0 (c_own -. 1.0)))
    ~density:(fun ~x -> if x > 0.0 && x < 1.0 then 1.0 else 0.0)
    ()

let ablation_prior_spikes profile =
  let w, queries = ablation_workload profile in
  let strategies =
    [ Strategy.monsoon ~iterations:profile.monsoon_iterations Prior.spike_and_slab;
      Strategy.monsoon ~iterations:profile.monsoon_iterations spike_free ]
  in
  let rows = run_workload profile ~budget:profile.imdb_budget ?queries strategies w in
  let aggs = List.map (Runner.aggregate ~budget:profile.imdb_budget) rows in
  let named =
    List.map2 (fun n a -> { a with Runner.agg_name = n })
      [ "Spike and Slab"; "Slab only (no FK spikes)" ] aggs
  in
  Report.agg_table
    ~title:"Ablation: foreign-key spikes in the spike-and-slab prior (IMDB subset)"
    ~budget:profile.imdb_budget named

(* --- Cold vs warm: the cross-query statistics repository --- *)

(* A fresh-start guarantee for the cold phase: drop the observation log and
   every snapshot so a rerun (or a previous experiment on the same path)
   cannot leak history into the "cold" regime. *)
let reset_repo path =
  let r = Stats_repo.open_ path in
  List.iter
    (fun p -> try Sys.remove p with Sys_error _ -> ())
    (Stats_repo.snapshots r);
  if Sys.file_exists path then (try Sys.remove path with Sys_error _ -> ())

let warmstart ?repo_path profile =
  let repo_path =
    match repo_path with
    | Some p -> p
    | None -> (
      match Sys.getenv_opt "MONSOON_REPO" with
      | Some p -> p
      | None ->
        Filename.concat
          (Filename.get_temp_dir_name ())
          "monsoon-warmstart.jsonl")
  in
  reset_repo repo_path;
  let w, queries = ablation_workload profile in
  (* Each regime runs under its own null-sink context so the replans and
     warm-start counters read back per regime. Counter values are sums of
     exact small integers, so they are identical for every [jobs]
     setting. *)
  let regime repo =
    let tel = Ctx.null () in
    let rows =
      Runner.run_suite ~env:(Ctx.to_env tel)
        { Runner.default_config with
          Runner.budget = profile.imdb_budget;
          seed = profile.seed;
          queries;
          jobs = profile.jobs }
        [ Strategy.monsoon ~iterations:profile.monsoon_iterations
            ~stats_repo:repo Prior.spike_and_slab ]
        w
    in
    let row = match rows with [ r ] -> r | _ -> assert false in
    let counter n = int_of_float (Metric.Counter.value (Ctx.counter tel n)) in
    (row, counter "driver.replans", counter "repo.warm_starts")
  in
  (* Cold: the repository exists but is empty, so every lookup misses and
     the run both plans from scratch and seeds the log. Warm: reopening the
     same path freezes the cold run's observations as the baseline. *)
  let cold_repo = Stats_repo.open_ repo_path in
  let cold_row, cold_replans, _ = regime cold_repo in
  let snap_cold = Stats_repo.snapshot cold_repo in
  let warm_repo = Stats_repo.open_ repo_path in
  let warm_row, warm_replans, warm_seeds = regime warm_repo in
  let snap_warm = Stats_repo.snapshot warm_repo in
  let objects (c : Runner.cell) =
    match c.Runner.outcome with
    | Some o ->
      if o.Strategy.timed_out then profile.imdb_budget else o.Strategy.cost
    | None -> profile.imdb_budget
  in
  let stats_objects (c : Runner.cell) =
    match c.Runner.outcome with
    | Some o -> o.Strategy.stats_cost
    | None -> 0.0
  in
  let cells = List.combine cold_row.Runner.cells warm_row.Runner.cells in
  let table_rows =
    List.map
      (fun ((cc : Runner.cell), (wc : Runner.cell)) ->
        let co = objects cc and wo = objects wc in
        [ cc.Runner.query; Report.cost co; Report.cost wo;
          (if wo < co then "better" else if wo > co then "WORSE" else "same") ])
      cells
  in
  let total f l = List.fold_left (fun acc c -> acc +. f c) 0.0 l in
  let cold_total = total objects cold_row.Runner.cells in
  let warm_total = total objects warm_row.Runner.cells in
  let cold_sigma = total stats_objects cold_row.Runner.cells in
  let warm_sigma = total stats_objects warm_row.Runner.cells in
  let nq = float_of_int (max 1 (List.length cells)) in
  let diff_report =
    match (snap_cold, snap_warm) with
    | Ok a, Ok b -> (
      match Stats_repo.diff ~old_:a ~new_:b with
      | Ok d -> d
      | Error e -> "diff failed: " ^ e ^ "\n")
    | Error e, _ | _, Error e -> "snapshot failed: " ^ e ^ "\n"
  in
  Report.table
    ~title:
      (Printf.sprintf
         "Warm-start: cold vs warm Monsoon on the repeated %s subset (seed %d)"
         w.Workload.name profile.seed)
    ~header:[ "Query"; "Cold objects"; "Warm objects"; "Verdict" ]
    table_rows
  ^ Printf.sprintf
      "  totals: objects cold %s warm %s; Σ objects cold %s warm %s\n\
      \  replans/query: cold %.2f warm %.2f; warm-start seeds: %d\n"
      (Report.cost cold_total) (Report.cost warm_total)
      (Report.cost cold_sigma) (Report.cost warm_sigma)
      (float_of_int cold_replans /. nq)
      (float_of_int warm_replans /. nq)
      warm_seeds
  ^ Printf.sprintf "  WARMSTART DOMINANCE: objects=%s replans=%s\n\n"
      (if warm_total < cold_total then "yes" else "no")
      (if warm_replans < cold_replans then "yes" else "no")
  ^ diff_report

(* --- The flight-recorder entry point (`monsoon explain`) --- *)

let workload_for profile id =
  match String.lowercase_ascii id with
  | "table2" | "tpch" ->
    Some
      ( Tpch.workload
          { Tpch.seed = profile.seed; scale = profile.tpch_scale; skew = Tpch.Plain },
        profile.tpch_budget,
        profile.tpch_queries )
  | "table3" | "table4" | "table5" | "imdb" ->
    Some
      ( Imdb.workload { Imdb.seed = profile.seed; scale = profile.imdb_scale },
        profile.imdb_budget,
        profile.imdb_queries )
  | "table6" | "ott" ->
    Some
      ( Ott.workload
          { Ott.seed = profile.seed; scale = profile.ott_scale; domain = 100 },
        profile.ott_budget,
        None )
  | "table7" | "figure3" | "udf" ->
    Some
      ( Udf_bench.workload
          { Udf_bench.seed = profile.seed;
            imdb_scale = profile.udf_imdb_scale;
            tpch_scale = profile.udf_tpch_scale },
        profile.udf_budget,
        None )
  | _ -> None

let explain ?(op_profile = false) profile ~experiment ~query =
  match workload_for profile experiment with
  | None ->
    Error
      (Printf.sprintf
         "unknown experiment %S; explainable: tpch (table2), imdb \
          (table3/table4/table5), ott (table6), udf (table7/figure3)"
         experiment)
  | Some (w, budget, _queries) -> (
    match List.assoc_opt query w.Workload.queries with
    | None ->
      Error
        (Printf.sprintf "unknown query %S in %s; available: %s" query
           w.Workload.name
           (String.concat ", " (List.map fst w.Workload.queries)))
    | Some q ->
      (* Mirror the Runner's per-(strategy, query) seeding and the Monsoon
         strategy's size-scaled MCTS effort, so the explained run is the
         same run an experiment table would have measured. *)
      let rng =
        Runner.cell_rng ~seed:profile.seed ~strategy:"Monsoon" ~query
      in
      let iterations =
        let i = profile.monsoon_iterations in
        if Query.n_rels q >= 7 then i * 3
        else if Query.n_rels q >= 6 then i * 2
        else i
      in
      let mcts =
        { (Monsoon_mcts.Mcts.default_config ~rng) with
          Monsoon_mcts.Mcts.iterations }
      in
      let config =
        { Driver.prior = Prior.spike_and_slab;
          prior_of = None;
          known_distincts = [];
          mcts;
          mcts_workers = 1;
          budget;
          max_steps = 200 }
      in
      let recorder = Recorder.create () in
      let env = Ctx.to_env (Ctx.with_recorder profile.ctx recorder) in
      (* Operator profiling is opt-in: a packed collector turns on the
         per-node scratch in the executor, and the driver joins the
         drained nodes onto the Executed events the report renders. *)
      let env =
        if op_profile then
          Monsoon_exec.Profile.to_env ~env (Monsoon_exec.Profile.create ())
        else env
      in
      let _outcome = Driver.run ~env config w.Workload.catalog q in
      Ok recorder)

(* --- The serving handler (`monsoon serve` / `monsoon load`) --- *)

let service profile ~experiment ?(faults = Fault.no_faults) ?stats_repo () =
  match workload_for profile experiment with
  | None ->
    Error
      (Printf.sprintf
         "unknown experiment %S; servable: tpch (table2), imdb \
          (table3/table4/table5), ott (table6), udf (table7/figure3)"
         experiment)
  | Some (w, budget, queries) ->
    let names =
      match queries with
      | Some qs -> List.filter (fun q -> List.mem_assoc q w.Workload.queries) qs
      | None -> List.map fst w.Workload.queries
    in
    let strategy =
      Strategy.monsoon ~iterations:profile.monsoon_iterations ?stats_repo
        Prior.spike_and_slab
    in
    let handler ~id:_ ~rng ~env ~recorder ~trace qname =
      match List.assoc_opt qname w.Workload.queries with
      | None ->
        Error
          (`Unknown_query
            (Printf.sprintf "unknown query %S; GET /queries lists the suite"
               qname))
      | Some q ->
        (* The Runner idiom: the fault plan splits off a copy, so a
           rate-zero spec leaves the request's stream byte-identical to an
           unfaulted run. Worker kills are a pool-level concern
           (Server.inject_kills), not a per-request one. *)
        let fault = Fault.plan faults (Rng.split (Rng.copy rng)) in
        let ctx =
          Ctx.with_trace_id (Ctx.with_recorder profile.ctx recorder) trace
        in
        let env = Env.with_fault (Ctx.to_env ~env ctx) fault in
        let o = strategy.Strategy.run ~env ~rng ~budget w.Workload.catalog q in
        Ok
          { Monsoon_server.Server.x_cost = o.Strategy.cost;
            x_timed_out = o.Strategy.timed_out;
            x_degraded = o.Strategy.degraded > 0;
            x_plan = o.Strategy.plan }
    in
    Ok (handler, names)

(* --- Deterministic chaos runs (`monsoon chaos`) --- *)

let chaos profile ~experiment ~faults ~retries ~cell_deadline ?qlog () =
  match workload_for profile experiment with
  | None ->
    Error
      (Printf.sprintf
         "unknown experiment %S; chaos targets: tpch (table2), imdb \
          (table3/table4/table5), ott (table6), udf (table7/figure3)"
         experiment)
  | Some (w, budget, queries) ->
    let config =
      { Runner.budget;
        seed = profile.seed;
        queries;
        jobs = profile.jobs;
        faults = Some faults;
        retries;
        cell_deadline;
        qlog }
    in
    let rows = Runner.run_suite ~env:(Ctx.to_env profile.ctx) config (seven profile) w in
    (* Everything below is derived from the returned cells and the metric
       registry — no wall-clock numbers — so the same seed + spec renders a
       byte-identical report across runs and across [jobs] settings. *)
    let survival =
      List.map
        (fun (r : Runner.row) ->
          let applicable =
            List.filter (fun (c : Runner.cell) -> c.Runner.attempts > 0) r.cells
          in
          let ok, timeouts, degraded =
            List.fold_left
              (fun (ok, t, d) (c : Runner.cell) ->
                match c.Runner.outcome with
                | Some o when o.Strategy.timed_out -> (ok, t + 1, d + o.Strategy.degraded)
                | Some o -> (ok + 1, t, d + o.Strategy.degraded)
                | None -> (ok, t, d))
              (0, 0, 0) applicable
          in
          let retried =
            List.fold_left
              (fun acc (c : Runner.cell) -> acc + max 0 (c.Runner.attempts - 1))
              0 applicable
          in
          let quarantined =
            List.length
              (List.filter (fun (c : Runner.cell) -> c.Runner.error <> None) applicable)
          in
          [ r.Runner.strategy;
            string_of_int (List.length applicable);
            string_of_int ok;
            string_of_int timeouts;
            string_of_int degraded;
            string_of_int retried;
            string_of_int quarantined ])
        rows
    in
    let sum i =
      List.fold_left (fun acc row -> acc + int_of_string (List.nth row i)) 0 survival
    in
    let cells = sum 1 and ok = sum 2 and timeouts = sum 3 in
    let quarantined = sum 6 in
    let counter n =
      int_of_float (Metric.Counter.value (Ctx.counter profile.ctx n))
    in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (* No jobs (or any wall-clock number) in the report: it must be
         byte-identical across --jobs settings. *)
      (Printf.sprintf
         "Chaos run: %s under faults [%s] (seed %d, retries %d%s)\n\n"
         w.Workload.name
         (Fault.spec_to_string faults)
         profile.seed retries
         (match cell_deadline with
         | None -> ""
         | Some s -> Printf.sprintf ", deadline %gs" s));
    Buffer.add_string buf
      (Report.table ~title:"Survival by implementation"
         ~header:
           [ "Implementation"; "Cells"; "OK"; "TO"; "Degraded"; "Retried";
             "Quarantined" ]
         survival);
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Report.agg_table ~title:"Costs under chaos (quarantined cells excluded)"
         ~budget
         (List.map (Runner.aggregate ~budget) rows));
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Printf.sprintf
         "Survived %d/%d cells (%d completed, %d timed out, %d quarantined)\n"
         (ok + timeouts) cells ok timeouts quarantined);
    Buffer.add_string buf
      (Printf.sprintf
         "Counters: fault.injected=%d driver.degraded=%d runner.retries=%d \
          runner.quarantined=%d\n"
         (counter "fault.injected") (counter "driver.degraded")
         (counter "runner.retries") (counter "runner.quarantined"));
    Ctx.flush profile.ctx;
    Ok (Buffer.contents buf)

(* Runs one experiment under an "experiment" span (so Perfetto traces
   and span breakdowns group whole tables) and counts it, flushing any
   Jsonl trace sink when the table is done. *)
let run profile ~id fn =
  let out =
    Ctx.with_span profile.ctx "experiment" ~attrs:[ ("id", Span.Str id) ]
    @@ fun _span ->
    Metric.Counter.inc (Ctx.counter profile.ctx "harness.experiments");
    fn profile
  in
  Ctx.flush profile.ctx;
  out

let all =
  [ ("table1", "Sec 2.3 cardinality scenarios", fun _ -> table1 ());
    ("figure1", "the example MDP's strategy costs", fun _ -> figure1 ());
    ("figure2", "prior densities", fun _ -> figure2 ());
    ("table2", "priors x TPC-H skews", table2);
    ("table3", "IMDB benchmark", fun p -> let t, _, _ = tables3_4_5 p in t);
    ("table4", "IMDB relative to Postgres", fun p -> let _, t, _ = tables3_4_5 p in t);
    ("table5", "20 most expensive IMDB queries", fun p -> let _, _, t = tables3_4_5 p in t);
    ("table6", "Optimizer Torture Tests", table6);
    ("table7", "UDF benchmark", fun p -> fst (table7_figure3 p));
    ("figure3", "per-query UDF costs", fun p -> snd (table7_figure3 p));
    ("table8", "Monsoon component breakdown", table8);
    ("warmstart", "cold vs warm repeated workload (statistics repository)",
     fun p -> warmstart p);
    ("ablation-selection", "UCT vs eps-greedy", ablation_selection);
    ("ablation-iterations", "MCTS iteration sweep", ablation_iterations);
    ("ablation-prior", "spike-and-slab vs slab-only", ablation_prior_spikes);
    ("ablation-lec", "multi-step vs least-expected-cost", ablation_lec) ]
