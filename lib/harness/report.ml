(* The generic ASCII layout lives with the telemetry snapshots so metric
   and trace reports share it; this module keeps the harness-facing name. *)
let pad = Monsoon_telemetry.Snapshot.pad
let table = Monsoon_telemetry.Snapshot.table

let cost c =
  if c >= 1e9 then Printf.sprintf "%.2fG" (c /. 1e9)
  else if c >= 1e6 then Printf.sprintf "%.2fM" (c /. 1e6)
  else if c >= 1e4 then Printf.sprintf "%.1fk" (c /. 1e3)
  else Printf.sprintf "%.0f" c

let opt_cost = function None -> "N/A" | Some c -> cost c

let seconds s =
  if s >= 1.0 then Printf.sprintf "%.2fs" s else Printf.sprintf "%.0fms" (s *. 1000.0)

let agg_table ~title ~budget aggs =
  ignore budget;
  (* Quarantined-cell counts only appear when something actually faulted, so
     the paper tables keep their exact five-column shape. *)
  let with_errors =
    List.exists (fun (a : Runner.agg) -> a.Runner.errors > 0) aggs
  in
  let rows =
    List.map
      (fun (a : Runner.agg) ->
        [ a.Runner.agg_name;
          string_of_int a.Runner.timeouts;
          opt_cost a.Runner.mean;
          cost a.Runner.median;
          (match a.Runner.max_ with None -> "TO" | Some m -> cost m) ]
        @ (if with_errors then [ string_of_int a.Runner.errors ] else []))
      aggs
  in
  let header =
    [ "Implementation"; "TO"; "Mean"; "Median"; "Max" ]
    @ if with_errors then [ "Err" ] else []
  in
  table ~title ~header rows

let series ~title ~x_label ~y_label points =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%s\n  (%s vs %s)\n" title x_label y_label);
  let max_v = List.fold_left (fun acc (_, v) -> Float.max acc v) 1e-9 points in
  let label_w =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 points
  in
  List.iter
    (fun (label, v) ->
      let bar_len = int_of_float (40.0 *. v /. max_v) in
      Buffer.add_string buf
        (Printf.sprintf "  %s  %s %s\n" (pad label_w label)
           (String.make (max 0 bar_len) '#')
           (cost v)))
    points;
  Buffer.contents buf
