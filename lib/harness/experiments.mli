(** The per-table / per-figure experiment registry (see DESIGN.md §4).

    Every experiment returns a rendered report. [profile] controls data
    scale, tuple budgets and MCTS effort so the whole evaluation can run as
    a quick smoke test or as the full reproduction. *)

type profile = {
  label : string;
  seed : int;
  imdb_scale : float;
  tpch_scale : float;
  ott_scale : float;
  udf_imdb_scale : float;
  udf_tpch_scale : float;
  imdb_budget : float;
  tpch_budget : float;
  ott_budget : float;
  udf_budget : float;
  monsoon_iterations : int;
  tpch_queries : string list option;  (** Table 2 subset; [None] = all 12 *)
  imdb_queries : string list option;  (** [None] = all 60 *)
  jobs : int;
      (** domains running (strategy, query) cells per suite
          ({!Runner.config.jobs}): 1 = sequential (the presets), [0] = one
          per recommended core. Table values are identical for every
          setting. *)
  ctx : Monsoon_telemetry.Ctx.t;
      (** threaded through every suite run (spans, counters); the presets
          use a silent Null-sink context — override with a record update to
          trace an experiment *)
}

val quick : profile
val full : profile

val table1 : unit -> string
(** Sec 2.3 scenario enumeration — exact reproduction of the paper's
    numbers. *)

val figure1 : unit -> string
(** The example MDP: expected costs of guessing vs collecting statistics
    first, and the action MCTS actually picks. *)

val figure2 : unit -> string
(** The five continuous prior densities. *)

val table2 : profile -> string
(** Priors × TPC-H skew variants, average Monsoon cost. *)

val tables3_4_5 : profile -> string * string * string
(** One IMDB run shared by Table 3 (all queries), Table 4 (relative to
    Postgres) and Table 5 (20 most expensive). *)

val table6 : profile -> string
val table7_figure3 : profile -> string * string

val table8 : profile -> string
(** Monsoon component breakdown (MCTS / Σ / Execution). Each benchmark runs
    under a fresh [Memory]-sink telemetry context and the columns are
    derived from the emitted spans ([mcts.plan] durations, [exec.sigma] and
    [exec.execute] object attributes). *)

val warmstart : ?repo_path:string -> profile -> string
(** Cold-vs-warm repeated workload over the cross-query statistics
    repository ({!Monsoon_stats_repo.Stats_repo}): the IMDB ablation subset
    runs once against an empty repository (cold — every warm lookup misses,
    every measured statistic is flushed), a snapshot is taken, then the
    same suite runs again with the repository reopened (warm — tight
    history seeds the MDP's catalog and the Σ action becomes a lookup),
    and a second snapshot is taken. The report shows per-query intermediate
    objects for both regimes, total replans per query, the dominance
    verdict line (greppable: ["WARMSTART DOMINANCE: objects=... replans=..."])
    and the deterministic snapshot diff. [repo_path] defaults to
    [$MONSOON_REPO] or a fixed file under the system temp directory; the
    path is reset before the cold phase so the regimes are exactly
    reproducible, and no path, timestamp, or wall-clock number appears in
    the report, which is byte-identical for every [profile.jobs] value. *)

val ablation_selection : profile -> string
(** UCT vs ε-greedy (both Sec 5.1 strategies). *)

val ablation_iterations : profile -> string
(** MCTS iteration budget sweep. *)

val ablation_prior_spikes : profile -> string
(** Spike-and-slab with and without its foreign-key point masses. *)

val all : (string * string * (profile -> string)) list
(** (id, description, run) for every experiment, in paper order. *)

val run : profile -> id:string -> (profile -> string) -> string
(** [run profile ~id fn] invokes one experiment under an ["experiment"]
    span carrying the id, bumps the [harness.experiments] counter, and
    flushes the profile's trace sink when the table is done — the entry
    point the CLI uses so traces and live metrics cover whole tables. *)

val explain :
  ?op_profile:bool ->
  profile ->
  experiment:string ->
  query:string ->
  (Monsoon_telemetry.Recorder.t, string) result
(** Re-run Monsoon on one query of a benchmark experiment with the decision
    flight recorder attached, reproducing the exact run the experiment
    table would have measured (same per-query rng seeding, same size-scaled
    MCTS effort, same budget). [experiment] names a benchmark-backed
    experiment ([tpch]/[table2], [imdb]/[table3..5], [ott]/[table6],
    [udf]/[table7]/[figure3]). [Error] carries a usage message listing
    valid ids or queries. With [op_profile] (default false, the CLI's
    [--profile]) an execution profile collector rides the env, so the
    report's plan tables gain per-operator rows (time share, rows,
    selectivity, representation mix, path taken) — profiling only reads,
    so the run's decisions and costs are unchanged. Render the result
    with {!Monsoon_telemetry.Explain.report},
    {!Monsoon_telemetry.Recorder.to_dot} or [to_json]. *)

val service :
  profile ->
  experiment:string ->
  ?faults:Monsoon_util.Fault.spec ->
  ?stats_repo:Monsoon_stats_repo.Stats_repo.t ->
  unit ->
  (Monsoon_server.Server.handler * string list, string) result
(** The serving-side face of a benchmark experiment: a
    {!Monsoon_server.Server.handler} that answers the experiment's query
    names with the Monsoon strategy (per-request RNG and deadline come from
    the server; faults follow the Runner idiom — the per-request plan
    splits off a copy of the stream, so a rate-zero spec is byte-identical
    to no faults), plus the query-name list to advertise on [GET /queries].
    [experiment] accepts the same ids as {!explain}. Worker kills in
    [faults] are not applied here — the serve entry point passes them to
    {!Monsoon_server.Server.inject_kills}. *)

val chaos :
  profile ->
  experiment:string ->
  faults:Monsoon_util.Fault.spec ->
  retries:int ->
  cell_deadline:float option ->
  ?qlog:Monsoon_telemetry.Qlog.t ->
  unit ->
  (string, string) result
(** Run a benchmark experiment's suite (all seven implementations) with the
    fault plane armed and render a survival report: per-implementation
    OK / timeout / degraded / retried / quarantined counts, the cost table,
    and the resilience counters. The report contains no wall-clock numbers,
    so the same seed + spec produces a byte-identical report across runs
    and across [profile.jobs] settings. [experiment] accepts the same ids
    as {!explain}. [?qlog] audits every cell attempt
    ({!Monsoon_harness.Runner.config}[.qlog]). *)
