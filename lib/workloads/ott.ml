open Monsoon_util
open Monsoon_storage
open Monsoon_relalg

type config = { seed : int; scale : float; domain : int }

let default_config = { seed = 16_180_339; scale = 1.0; domain = 100 }

let table_sizes = [| 4_000; 6_000; 8_000; 10_000; 12_000; 14_000 |]
let table_name i = Printf.sprintf "ott%d" (i + 1)

let generate cfg =
  let rng = Rng.create cfg.seed in
  let cat = Catalog.create () in
  Array.iteri
    (fun i base ->
      let n = max 1 (int_of_float (float_of_int base *. cfg.scale)) in
      let schema =
        Schema.make
          [ { Schema.name = "pk"; ty = Value.TInt };
            { Schema.name = "x"; ty = Value.TInt };
            { Schema.name = "y"; ty = Value.TInt } ]
      in
      let rows =
        Array.init n (fun j ->
            (* y is a deterministic function of x: perfectly correlated. *)
            let x = 1 + Rng.int rng cfg.domain in
            [| Value.Int (j + 1); Value.Int x; Value.Int x |])
      in
      Catalog.add cat (Table.of_row_array ~name:(table_name i) schema rows))
    table_sizes;
  List.iter Table.prime_columns (Catalog.tables cat);
  cat

(* One torture query: a chain over [tables] (indices into the six OTT
   tables); consecutive instances are joined on BOTH x and y; [y] is pinned
   to two different constants at chain positions [f1] and [f2]. *)
let make_query ~name ~tables ~f1 ~f2 ~c1 ~c2 =
  let b = Query.Builder.create ~name in
  let rels =
    List.mapi
      (fun pos ti ->
        Query.Builder.rel b ~table:(table_name ti)
          ~alias:(Printf.sprintf "%s_%d" (table_name ti) pos))
      tables
  in
  let at rel col = Query.Builder.term b (Udf.identity col) [ (rel, col) ] in
  let rec chain = function
    | a :: (b' :: _ as rest) ->
      Query.Builder.join_pred b (at a "x") (at b' "x");
      Query.Builder.join_pred b (at a "y") (at b' "y");
      chain rest
    | [ _ ] | [] -> ()
  in
  chain rels;
  Query.Builder.select_pred b (at (List.nth rels f1) "y") (Value.Int c1);
  Query.Builder.select_pred b (at (List.nth rels f2) "y") (Value.Int c2);
  Query.Builder.build b

let specs =
  (* (tables, filter position 1, filter position 2, constants). The two
     constants always differ, so the result is empty. *)
  [ ([ 0; 1; 2 ], 0, 1, 1, 2);
    ([ 1; 2; 3 ], 0, 2, 3, 4);
    ([ 2; 3; 4 ], 1, 2, 5, 6);
    ([ 3; 4; 5 ], 0, 1, 7, 8);
    ([ 0; 2; 4 ], 0, 2, 9, 10);
    ([ 1; 3; 5 ], 1, 2, 11, 12);
    ([ 0; 1; 2; 3 ], 0, 1, 1, 3);
    ([ 1; 2; 3; 4 ], 0, 3, 2, 4);
    ([ 2; 3; 4; 5 ], 1, 2, 5, 7);
    ([ 0; 1; 3; 5 ], 0, 2, 6, 8);
    ([ 0; 2; 3; 4 ], 2, 3, 9, 11);
    ([ 1; 2; 4; 5 ], 0, 1, 10, 12);
    ([ 0; 3; 4; 5 ], 1, 3, 13, 14);
    ([ 0; 1; 2; 3; 4 ], 0, 1, 1, 5);
    ([ 1; 2; 3; 4; 5 ], 0, 4, 2, 6);
    ([ 0; 1; 2; 4; 5 ], 1, 2, 3, 7);
    ([ 0; 1; 3; 4; 5 ], 2, 4, 4, 8);
    ([ 0; 2; 3; 4; 5 ], 0, 3, 5, 9);
    ([ 0; 1; 2; 3; 5 ], 3, 4, 6, 10);
    ([ 1; 0; 2; 4; 3 ], 0, 1, 7, 11) ]

let queries _cfg =
  List.mapi
    (fun i (tables, f1, f2, c1, c2) ->
      let name = Printf.sprintf "oq%d" (i + 1) in
      (name, make_query ~name ~tables ~f1 ~f2 ~c1 ~c2))
    specs

(* The expert plan. Instance ids follow chain positions, and the two
   filtered instances anchor two cheap sub-chains: grow one side from each
   filter outwards (every extension stays pinned to the filter constant),
   then join the two sides — which is empty, making the whole pipeline
   nearly free. Degenerates to filtered-first left-deep when a side is
   empty. *)
let hand_written _name q =
  let n = Query.n_rels q in
  let filtered =
    List.filter (fun i -> Query.select_preds_of_rel q i <> []) (List.init n Fun.id)
  in
  match filtered with
  | [ f1; f2 ] when f1 < f2 ->
    (* Close the contradiction as early as possible: grow one sub-chain
       from each filter toward the midpoint between them, join the two
       (empty!) and only then attach the outer instances — every later
       join is free. *)
    let mid = (f1 + f2) / 2 in
    let left_deep = function
      | [] -> None
      | first :: rest ->
        Some
          (List.fold_left (fun acc i -> Expr.join acc (Expr.base i)) (Expr.base first) rest)
    in
    let core_a = left_deep (List.init (mid - f1 + 1) (fun k -> f1 + k)) in
    let core_b = left_deep (List.init (f2 - mid) (fun k -> f2 - k)) in
    let core =
      match (core_a, core_b) with
      | Some a, Some b -> Expr.join a b
      | Some a, None -> a
      | None, Some b -> b
      | None, None -> invalid_arg "Ott.hand_written: empty query"
    in
    let outer =
      List.init f1 (fun k -> f1 - 1 - k)  (* f1-1 down to 0 *)
      @ List.init (n - f2 - 1) (fun k -> f2 + 1 + k)
    in
    List.fold_left (fun acc i -> Expr.join acc (Expr.base i)) core outer
  | _ -> (
    (* Fallback: filtered instances first, then chain order. *)
    let unfiltered =
      List.filter (fun i -> not (List.mem i filtered)) (List.init n Fun.id)
    in
    match filtered @ unfiltered with
    | [] -> invalid_arg "Ott.hand_written: empty query"
    | first :: rest ->
      List.fold_left (fun acc i -> Expr.join acc (Expr.base i)) (Expr.base first) rest)

let workload cfg =
  { Workload.name = "OTT";
    catalog = generate cfg;
    queries = queries cfg;
    hand_written = Some hand_written }
