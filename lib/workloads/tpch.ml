open Monsoon_util
open Monsoon_storage
open Monsoon_relalg

type skew = Plain | Low | High | Mixed

let skew_name = function
  | Plain -> "TPC-H"
  | Low -> "Low"
  | High -> "High"
  | Mixed -> "Mixed"

type config = { seed : int; scale : float; skew : skew }

let default_config = { seed = 20_200_614; scale = 1.0; skew = Plain }

(* Per-column value source: uniform under Plain, Zipf otherwise. The Mixed
   variant draws a fresh z for every column, as the paper describes. *)
let column_z rng = function
  | Plain -> 0.0
  | Low -> 1.0
  | High -> 4.0
  | Mixed -> Rng.float rng 4.0

(* A categorical/FK column over [1, n] with the workload's skew. *)
let make_col rng cfg n =
  let z = column_z rng cfg.skew in
  if z = 0.0 then fun () -> 1 + Rng.int rng n
  else begin
    let dist = Dist.zipf_make ~n ~z in
    fun () -> Dist.zipf_draw rng dist
  end

let ic i = Value.Int i

let table name cols n rowgen =
  let schema =
    Schema.make (List.map (fun (c, ty) -> { Schema.name = c; ty }) cols)
  in
  Table.of_row_array ~name schema (Array.init n rowgen)

let generate cfg =
  let rng = Rng.create cfg.seed in
  let s = cfg.scale in
  let n x = max 1 (int_of_float (float_of_int x *. s)) in
  let n_region = 5 and n_nation = 25 in
  let n_supplier = n 200 and n_part = n 2000 and n_partsupp = n 8000 in
  let n_customer = n 1500 and n_orders = n 15_000 and n_lineitem = n 60_000 in
  let cat = Catalog.create () in
  let add t = Catalog.add cat t in
  add
    (table "region" [ ("r_regionkey", Value.TInt); ("r_name", Value.TInt) ]
       n_region (fun i -> [| ic (i + 1); ic (i + 1) |]));
  let nation_region = make_col rng cfg n_region in
  add
    (table "nation"
       [ ("n_nationkey", Value.TInt); ("n_regionkey", Value.TInt); ("n_name", Value.TInt) ]
       n_nation (fun i -> [| ic (i + 1); ic (nation_region ()); ic (i + 1) |]));
  let supp_nation = make_col rng cfg n_nation in
  let acctbal = make_col rng cfg 10_000 in
  add
    (table "supplier"
       [ ("s_suppkey", Value.TInt); ("s_nationkey", Value.TInt); ("s_acctbal", Value.TInt) ]
       n_supplier (fun i -> [| ic (i + 1); ic (supp_nation ()); ic (acctbal ()) |]));
  let p_brand = make_col rng cfg 25 in
  let p_type = make_col rng cfg 150 in
  let p_size = make_col rng cfg 50 in
  let p_container = make_col rng cfg 40 in
  add
    (table "part"
       [ ("p_partkey", Value.TInt); ("p_brand", Value.TInt); ("p_type", Value.TInt);
         ("p_size", Value.TInt); ("p_container", Value.TInt) ]
       n_part
       (fun i -> [| ic (i + 1); ic (p_brand ()); ic (p_type ()); ic (p_size ()); ic (p_container ()) |]));
  let ps_part = make_col rng cfg n_part in
  let ps_supp = make_col rng cfg n_supplier in
  let ps_qty = make_col rng cfg 10_000 in
  add
    (table "partsupp"
       [ ("ps_partkey", Value.TInt); ("ps_suppkey", Value.TInt); ("ps_availqty", Value.TInt) ]
       n_partsupp (fun _ -> [| ic (ps_part ()); ic (ps_supp ()); ic (ps_qty ()) |]));
  let c_nation = make_col rng cfg n_nation in
  let c_mkt = make_col rng cfg 5 in
  add
    (table "customer"
       [ ("c_custkey", Value.TInt); ("c_nationkey", Value.TInt);
         ("c_mktsegment", Value.TInt); ("c_acctbal", Value.TInt) ]
       n_customer
       (fun i -> [| ic (i + 1); ic (c_nation ()); ic (c_mkt ()); ic (acctbal ()) |]));
  let o_cust = make_col rng cfg n_customer in
  let o_priority = make_col rng cfg 5 in
  let o_date = make_col rng cfg 30 in
  let o_total = make_col rng cfg 100_000 in
  add
    (table "orders"
       [ ("o_orderkey", Value.TInt); ("o_custkey", Value.TInt);
         ("o_orderpriority", Value.TInt); ("o_orderdate", Value.TDate);
         ("o_totalprice", Value.TInt) ]
       n_orders
       (fun i ->
         [| ic (i + 1); ic (o_cust ()); ic (o_priority ());
            Value.Date (10_000 + o_date ()); ic (o_total ()) |]));
  let l_order = make_col rng cfg n_orders in
  let l_part = make_col rng cfg n_part in
  let l_supp = make_col rng cfg n_supplier in
  let l_qty = make_col rng cfg 50 in
  let l_ship = make_col rng cfg 30 in
  let l_disc = make_col rng cfg 11 in
  let l_flag = make_col rng cfg 3 in
  add
    (table "lineitem"
       [ ("l_orderkey", Value.TInt); ("l_partkey", Value.TInt); ("l_suppkey", Value.TInt);
         ("l_quantity", Value.TInt); ("l_shipdate", Value.TDate);
         ("l_discount", Value.TInt); ("l_returnflag", Value.TInt) ]
       n_lineitem
       (fun _ ->
         [| ic (l_order ()); ic (l_part ()); ic (l_supp ()); ic (l_qty ());
            Value.Date (10_000 + l_ship ()); ic (l_disc ()); ic (l_flag ()) |]));
  List.iter Table.prime_columns (Catalog.tables cat);
  cat

(* --- Query suite --- *)

(* Builder helpers: every attribute reference is wrapped in an identity UDF,
   so none of its statistics are visible to the optimizer. *)
let jp b t1 t2 = Query.Builder.join_pred b t1 t2
let at b rel col = Query.Builder.term b (Udf.identity col) [ (rel, col) ]
let sel b rel col v = Query.Builder.select_pred b (at b rel col) (Value.Int v)
let seld b rel col v = Query.Builder.select_pred b (at b rel col) (Value.Date v)

let q name f =
  let b = Query.Builder.create ~name in
  f b;
  (name, Query.Builder.build b)

let queries () =
  [ (* Q3 shape: customer x orders x lineitem. *)
    q "tq1" (fun b ->
        let c = Query.Builder.rel b ~table:"customer" ~alias:"c" in
        let o = Query.Builder.rel b ~table:"orders" ~alias:"o" in
        let l = Query.Builder.rel b ~table:"lineitem" ~alias:"l" in
        jp b (at b c "c_custkey") (at b o "o_custkey");
        jp b (at b o "o_orderkey") (at b l "l_orderkey");
        sel b c "c_mktsegment" 1;
        sel b o "o_orderpriority" 2);
    (* Q10 shape: customer x orders x lineitem x nation. *)
    q "tq2" (fun b ->
        let c = Query.Builder.rel b ~table:"customer" ~alias:"c" in
        let o = Query.Builder.rel b ~table:"orders" ~alias:"o" in
        let l = Query.Builder.rel b ~table:"lineitem" ~alias:"l" in
        let n = Query.Builder.rel b ~table:"nation" ~alias:"n" in
        jp b (at b c "c_custkey") (at b o "o_custkey");
        jp b (at b o "o_orderkey") (at b l "l_orderkey");
        jp b (at b c "c_nationkey") (at b n "n_nationkey");
        sel b l "l_returnflag" 2);
    (* Q5 shape: 6-way with region. *)
    q "tq3" (fun b ->
        let c = Query.Builder.rel b ~table:"customer" ~alias:"c" in
        let o = Query.Builder.rel b ~table:"orders" ~alias:"o" in
        let l = Query.Builder.rel b ~table:"lineitem" ~alias:"l" in
        let su = Query.Builder.rel b ~table:"supplier" ~alias:"s" in
        let n = Query.Builder.rel b ~table:"nation" ~alias:"n" in
        let r = Query.Builder.rel b ~table:"region" ~alias:"r" in
        jp b (at b c "c_custkey") (at b o "o_custkey");
        jp b (at b o "o_orderkey") (at b l "l_orderkey");
        jp b (at b l "l_suppkey") (at b su "s_suppkey");
        jp b (at b su "s_nationkey") (at b n "n_nationkey");
        jp b (at b n "n_regionkey") (at b r "r_regionkey");
        sel b r "r_name" 2);
    (* Q2 shape: part x partsupp x supplier x nation x region. *)
    q "tq4" (fun b ->
        let p = Query.Builder.rel b ~table:"part" ~alias:"p" in
        let ps = Query.Builder.rel b ~table:"partsupp" ~alias:"ps" in
        let su = Query.Builder.rel b ~table:"supplier" ~alias:"s" in
        let n = Query.Builder.rel b ~table:"nation" ~alias:"n" in
        let r = Query.Builder.rel b ~table:"region" ~alias:"r" in
        jp b (at b p "p_partkey") (at b ps "ps_partkey");
        jp b (at b ps "ps_suppkey") (at b su "s_suppkey");
        jp b (at b su "s_nationkey") (at b n "n_nationkey");
        jp b (at b n "n_regionkey") (at b r "r_regionkey");
        sel b p "p_size" 15);
    (* Q7 shape: two nation instances. *)
    q "tq5" (fun b ->
        let su = Query.Builder.rel b ~table:"supplier" ~alias:"s" in
        let l = Query.Builder.rel b ~table:"lineitem" ~alias:"l" in
        let o = Query.Builder.rel b ~table:"orders" ~alias:"o" in
        let c = Query.Builder.rel b ~table:"customer" ~alias:"c" in
        let n1 = Query.Builder.rel b ~table:"nation" ~alias:"n1" in
        let n2 = Query.Builder.rel b ~table:"nation" ~alias:"n2" in
        jp b (at b su "s_suppkey") (at b l "l_suppkey");
        jp b (at b l "l_orderkey") (at b o "o_orderkey");
        jp b (at b o "o_custkey") (at b c "c_custkey");
        jp b (at b su "s_nationkey") (at b n1 "n_nationkey");
        jp b (at b c "c_nationkey") (at b n2 "n_nationkey");
        sel b n1 "n_name" 3;
        sel b n2 "n_name" 7);
    (* Q8 shape: 7-way. *)
    q "tq6" (fun b ->
        let p = Query.Builder.rel b ~table:"part" ~alias:"p" in
        let l = Query.Builder.rel b ~table:"lineitem" ~alias:"l" in
        let su = Query.Builder.rel b ~table:"supplier" ~alias:"s" in
        let o = Query.Builder.rel b ~table:"orders" ~alias:"o" in
        let c = Query.Builder.rel b ~table:"customer" ~alias:"c" in
        let n = Query.Builder.rel b ~table:"nation" ~alias:"n" in
        let r = Query.Builder.rel b ~table:"region" ~alias:"r" in
        jp b (at b p "p_partkey") (at b l "l_partkey");
        jp b (at b l "l_suppkey") (at b su "s_suppkey");
        jp b (at b l "l_orderkey") (at b o "o_orderkey");
        jp b (at b o "o_custkey") (at b c "c_custkey");
        jp b (at b c "c_nationkey") (at b n "n_nationkey");
        jp b (at b n "n_regionkey") (at b r "r_regionkey");
        sel b p "p_type" 40;
        sel b r "r_name" 1);
    (* Q9 shape: part x partsupp x lineitem x supplier x orders x nation. *)
    q "tq7" (fun b ->
        let p = Query.Builder.rel b ~table:"part" ~alias:"p" in
        let ps = Query.Builder.rel b ~table:"partsupp" ~alias:"ps" in
        let l = Query.Builder.rel b ~table:"lineitem" ~alias:"l" in
        let su = Query.Builder.rel b ~table:"supplier" ~alias:"s" in
        let o = Query.Builder.rel b ~table:"orders" ~alias:"o" in
        let n = Query.Builder.rel b ~table:"nation" ~alias:"n" in
        jp b (at b p "p_partkey") (at b l "l_partkey");
        jp b (at b ps "ps_partkey") (at b l "l_partkey");
        jp b (at b ps "ps_suppkey") (at b l "l_suppkey");
        jp b (at b l "l_suppkey") (at b su "s_suppkey");
        jp b (at b l "l_orderkey") (at b o "o_orderkey");
        jp b (at b su "s_nationkey") (at b n "n_nationkey");
        sel b p "p_brand" 12);
    (* Chain: region -> nation -> supplier -> partsupp -> part. *)
    q "tq8" (fun b ->
        let r = Query.Builder.rel b ~table:"region" ~alias:"r" in
        let n = Query.Builder.rel b ~table:"nation" ~alias:"n" in
        let su = Query.Builder.rel b ~table:"supplier" ~alias:"s" in
        let ps = Query.Builder.rel b ~table:"partsupp" ~alias:"ps" in
        let p = Query.Builder.rel b ~table:"part" ~alias:"p" in
        jp b (at b r "r_regionkey") (at b n "n_regionkey");
        jp b (at b n "n_nationkey") (at b su "s_nationkey");
        jp b (at b su "s_suppkey") (at b ps "ps_suppkey");
        jp b (at b ps "ps_partkey") (at b p "p_partkey");
        sel b p "p_container" 9);
    (* Orders x lineitem x part with selective part filter. *)
    q "tq9" (fun b ->
        let o = Query.Builder.rel b ~table:"orders" ~alias:"o" in
        let l = Query.Builder.rel b ~table:"lineitem" ~alias:"l" in
        let p = Query.Builder.rel b ~table:"part" ~alias:"p" in
        jp b (at b o "o_orderkey") (at b l "l_orderkey");
        jp b (at b l "l_partkey") (at b p "p_partkey");
        sel b p "p_type" 77;
        sel b o "o_orderpriority" 1);
    (* Star on lineitem. *)
    q "tq10" (fun b ->
        let l = Query.Builder.rel b ~table:"lineitem" ~alias:"l" in
        let o = Query.Builder.rel b ~table:"orders" ~alias:"o" in
        let p = Query.Builder.rel b ~table:"part" ~alias:"p" in
        let su = Query.Builder.rel b ~table:"supplier" ~alias:"s" in
        jp b (at b l "l_orderkey") (at b o "o_orderkey");
        jp b (at b l "l_partkey") (at b p "p_partkey");
        jp b (at b l "l_suppkey") (at b su "s_suppkey");
        sel b p "p_brand" 3;
        seld b o "o_orderdate" 10_005);
    (* Two lineitem instances through part (self-join flavor). *)
    q "tq11" (fun b ->
        let l1 = Query.Builder.rel b ~table:"lineitem" ~alias:"l1" in
        let l2 = Query.Builder.rel b ~table:"lineitem" ~alias:"l2" in
        let p = Query.Builder.rel b ~table:"part" ~alias:"p" in
        jp b (at b l1 "l_partkey") (at b p "p_partkey");
        jp b (at b l2 "l_partkey") (at b p "p_partkey");
        sel b l1 "l_returnflag" 1;
        sel b l2 "l_returnflag" 3;
        sel b p "p_size" 21);
    (* Customer geography chain with orders fan-out. *)
    q "tq12" (fun b ->
        let r = Query.Builder.rel b ~table:"region" ~alias:"r" in
        let n = Query.Builder.rel b ~table:"nation" ~alias:"n" in
        let c = Query.Builder.rel b ~table:"customer" ~alias:"c" in
        let o = Query.Builder.rel b ~table:"orders" ~alias:"o" in
        jp b (at b r "r_regionkey") (at b n "n_regionkey");
        jp b (at b n "n_nationkey") (at b c "c_nationkey");
        jp b (at b c "c_custkey") (at b o "o_custkey");
        sel b r "r_name" 4;
        sel b o "o_orderpriority" 3) ]

let workload cfg =
  { Workload.name = skew_name cfg.skew;
    catalog = generate cfg;
    queries = queries ();
    hand_written = None }
