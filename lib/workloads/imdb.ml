open Monsoon_util
open Monsoon_storage
open Monsoon_relalg

type config = { seed : int; scale : float }

let default_config = { seed = 19_930_401; scale = 1.0 }

let ic i = Value.Int i
let sc s = Value.Str s

let table name cols n rowgen =
  let schema =
    Schema.make (List.map (fun (c, ty) -> { Schema.name = c; ty }) cols)
  in
  Table.of_row_array ~name schema (Array.init n rowgen)

let generate cfg =
  let rng = Rng.create cfg.seed in
  let s = cfg.scale in
  let n x = max 1 (int_of_float (float_of_int x *. s)) in
  let n_title = n 20_000 and n_company = n 2_500 and n_name = n 25_000 in
  let n_mc = n 30_000 and n_ci = n 60_000 and n_mi = n 40_000 in
  let n_keyword = n 5_000 and n_mk = n 30_000 in
  let cat = Catalog.create () in
  let add t = Catalog.add cat t in
  (* Dimension tables. *)
  add (table "kind_type" [ ("id", Value.TInt); ("kind", Value.TInt) ] 7
         (fun i -> [| ic (i + 1); ic (i + 1) |]));
  add (table "info_type" [ ("id", Value.TInt); ("info", Value.TInt) ] 20
         (fun i -> [| ic (i + 1); ic (i + 1) |]));
  add (table "company_type" [ ("id", Value.TInt); ("kind", Value.TInt) ] 4
         (fun i -> [| ic (i + 1); ic (i + 1) |]));
  add (table "role_type" [ ("id", Value.TInt); ("role", Value.TInt) ] 12
         (fun i -> [| ic (i + 1); ic (i + 1) |]));
  (* title: production year is *correlated* with kind (movies of different
     kinds cluster in different eras), and kinds are heavily skewed. *)
  let kind_dist = Dist.zipf_make ~n:7 ~z:1.3 in
  let year_spread = Dist.zipf_make ~n:40 ~z:0.8 in
  let title_kind = Array.make n_title 0 in
  add
    (table "title"
       [ ("id", Value.TInt); ("kind_id", Value.TInt);
         ("production_year", Value.TInt); ("phonetic_code", Value.TInt);
         ("id_str", Value.TStr) ]
       n_title
       (fun i ->
         let kind = Dist.zipf_draw rng kind_dist in
         title_kind.(i) <- kind;
         let base = 1880 + (kind * 15) in
         let year = min 2019 (base + Dist.zipf_draw rng year_spread + Rng.int rng 40) in
         [| ic (i + 1); ic kind; ic year; ic (1 + Rng.int rng 300);
            sc (Printf.sprintf "id=%d;y=%d" (i + 1) year) |]));
  (* company_name: country correlates with company id ranges and is very
     head-heavy (a "US" takes a big share). *)
  let country_dist = Dist.zipf_make ~n:60 ~z:1.5 in
  add
    (table "company_name"
       [ ("id", Value.TInt); ("country_code", Value.TInt); ("name_str", Value.TStr) ]
       n_company
       (fun i ->
         let country = Dist.zipf_draw rng country_dist in
         [| ic (i + 1); ic country; sc (Printf.sprintf "Co#%d (%02d)" (i + 1) country) |]));
  (* name: gender 1/2 with a rare 3; phonetic codes skewed. *)
  let pcode_dist = Dist.zipf_make ~n:500 ~z:1.0 in
  add
    (table "name"
       [ ("id", Value.TInt); ("gender", Value.TInt); ("name_pcode", Value.TInt);
         ("id_str", Value.TStr) ]
       n_name
       (fun i ->
         let gender = if Rng.int rng 100 < 2 then 3 else 1 + Rng.int rng 2 in
         [| ic (i + 1); ic gender; ic (Dist.zipf_draw rng pcode_dist);
            sc (Printf.sprintf "p:%d;g=%d" (i + 1) gender) |]));
  (* Heavy-tailed movie references: popular titles accumulate most of the
     cast, company, keyword, and info rows. Cast and info share one
     popularity ranking (correlated heads, the JOB trap); companies and
     keywords use a permuted ranking so not every satellite pair is
     head-aligned. *)
  let movie_ref = Dist.zipf_make ~n:n_title ~z:0.85 in
  let movie_perm = Array.init n_title (fun i -> i + 1) in
  Rng.shuffle rng movie_perm;
  let movie_ref_permuted () = movie_perm.(Dist.zipf_draw rng movie_ref - 1) in
  let company_ref = Dist.zipf_make ~n:n_company ~z:1.0 in
  let person_ref = Dist.zipf_make ~n:n_name ~z:0.9 in
  let ctype_dist = Dist.zipf_make ~n:4 ~z:1.0 in
  add
    (table "movie_companies"
       [ ("movie_id", Value.TInt); ("company_id", Value.TInt);
         ("company_type_id", Value.TInt); ("movie_ref", Value.TStr) ]
       n_mc
       (fun _ ->
         let movie = movie_ref_permuted () in
         [| ic movie; ic (Dist.zipf_draw rng company_ref);
            ic (Dist.zipf_draw rng ctype_dist); sc (Printf.sprintf "m:%d" movie) |]));
  let role_dist = Dist.zipf_make ~n:12 ~z:1.4 in
  add
    (table "cast_info"
       [ ("movie_id", Value.TInt); ("person_id", Value.TInt); ("role_id", Value.TInt);
         ("person_ref", Value.TStr); ("movie_ref", Value.TStr) ]
       n_ci
       (fun _ ->
         let person = Dist.zipf_draw rng person_ref in
         let movie = Dist.zipf_draw rng movie_ref in
         [| ic movie; ic person; ic (Dist.zipf_draw rng role_dist);
            sc (Printf.sprintf "ref(p%d)" person); sc (Printf.sprintf "m:%d" movie) |]));
  (* movie_info: the value *determines* its info type (the JOB-style
     correlation trap — independence across the two columns is badly
     wrong). *)
  let itype_dist = Dist.zipf_make ~n:20 ~z:1.0 in
  let ival_dist = Dist.zipf_make ~n:300 ~z:1.2 in
  add
    (table "movie_info"
       [ ("movie_id", Value.TInt); ("info_type_id", Value.TInt); ("info_val", Value.TInt) ]
       n_mi
       (fun _ ->
         let ty = Dist.zipf_draw rng itype_dist in
         [| ic (Dist.zipf_draw rng movie_ref); ic ty;
            ic ((ty * 1000) + Dist.zipf_draw rng ival_dist) |]));
  let keyword_code = Dist.zipf_make ~n:800 ~z:1.1 in
  add
    (table "keyword" [ ("id", Value.TInt); ("keyword_code", Value.TInt) ] n_keyword
       (fun i -> [| ic (i + 1); ic (Dist.zipf_draw rng keyword_code) |]));
  let kw_ref = Dist.zipf_make ~n:n_keyword ~z:1.0 in
  add
    (table "movie_keyword" [ ("movie_id", Value.TInt); ("keyword_id", Value.TInt) ] n_mk
       (fun _ ->
         [| ic (movie_ref_permuted ()); ic (Dist.zipf_draw rng kw_ref) |]));
  List.iter Table.prime_columns (Catalog.tables cat);
  cat

(* --- JOB-style query suite --- *)

let jp b t1 t2 = Query.Builder.join_pred b t1 t2
let at b rel col = Query.Builder.term b (Udf.identity col) [ (rel, col) ]
let sel b rel col v = Query.Builder.select_pred b (at b rel col) (Value.Int v)

let template1 v b =
  (* title x movie_companies x company_name. *)
  let t = Query.Builder.rel b ~table:"title" ~alias:"t" in
  let mc = Query.Builder.rel b ~table:"movie_companies" ~alias:"mc" in
  let cn = Query.Builder.rel b ~table:"company_name" ~alias:"cn" in
  jp b (at b t "id") (at b mc "movie_id");
  jp b (at b mc "company_id") (at b cn "id");
  sel b cn "country_code" (1 + (v * 3));
  if v mod 2 = 0 then sel b t "kind_id" (1 + v)

let template2 v b =
  (* title x cast_info x name. *)
  let t = Query.Builder.rel b ~table:"title" ~alias:"t" in
  let ci = Query.Builder.rel b ~table:"cast_info" ~alias:"ci" in
  let n = Query.Builder.rel b ~table:"name" ~alias:"n" in
  jp b (at b t "id") (at b ci "movie_id");
  jp b (at b ci "person_id") (at b n "id");
  sel b n "gender" (1 + (v mod 3));
  sel b t "production_year" (1930 + (v * 17))

let template3 v b =
  (* title x movie_info x info_type x kind_type. *)
  let t = Query.Builder.rel b ~table:"title" ~alias:"t" in
  let mi = Query.Builder.rel b ~table:"movie_info" ~alias:"mi" in
  let it = Query.Builder.rel b ~table:"info_type" ~alias:"it" in
  let kt = Query.Builder.rel b ~table:"kind_type" ~alias:"kt" in
  jp b (at b t "id") (at b mi "movie_id");
  jp b (at b mi "info_type_id") (at b it "id");
  jp b (at b t "kind_id") (at b kt "id");
  sel b it "info" (1 + (v * 4));
  sel b kt "kind" (1 + (v mod 7))

let template4 v b =
  (* title x movie_keyword x keyword x kind_type. *)
  let t = Query.Builder.rel b ~table:"title" ~alias:"t" in
  let mk = Query.Builder.rel b ~table:"movie_keyword" ~alias:"mk" in
  let k = Query.Builder.rel b ~table:"keyword" ~alias:"k" in
  let kt = Query.Builder.rel b ~table:"kind_type" ~alias:"kt" in
  jp b (at b t "id") (at b mk "movie_id");
  jp b (at b mk "keyword_id") (at b k "id");
  jp b (at b t "kind_id") (at b kt "id");
  sel b k "keyword_code" (2 + (v * 30))

let template5 v b =
  (* title x movie_companies x company_name x company_type x kind_type. *)
  let t = Query.Builder.rel b ~table:"title" ~alias:"t" in
  let mc = Query.Builder.rel b ~table:"movie_companies" ~alias:"mc" in
  let cn = Query.Builder.rel b ~table:"company_name" ~alias:"cn" in
  let ct = Query.Builder.rel b ~table:"company_type" ~alias:"ct" in
  let kt = Query.Builder.rel b ~table:"kind_type" ~alias:"kt" in
  jp b (at b t "id") (at b mc "movie_id");
  jp b (at b mc "company_id") (at b cn "id");
  jp b (at b mc "company_type_id") (at b ct "id");
  jp b (at b t "kind_id") (at b kt "id");
  sel b ct "kind" (1 + (v mod 4));
  sel b cn "country_code" (1 + v)

let template6 v b =
  (* title x cast_info x name x role_type x movie_info. *)
  let t = Query.Builder.rel b ~table:"title" ~alias:"t" in
  let ci = Query.Builder.rel b ~table:"cast_info" ~alias:"ci" in
  let n = Query.Builder.rel b ~table:"name" ~alias:"n" in
  let rt = Query.Builder.rel b ~table:"role_type" ~alias:"rt" in
  let mi = Query.Builder.rel b ~table:"movie_info" ~alias:"mi" in
  jp b (at b t "id") (at b ci "movie_id");
  jp b (at b ci "person_id") (at b n "id");
  jp b (at b ci "role_id") (at b rt "id");
  jp b (at b t "id") (at b mi "movie_id");
  sel b rt "role" (1 + (v mod 12));
  sel b mi "info_val" (((1 + (v mod 5)) * 1000) + 1 + v)

let template7 v b =
  (* 6-way: companies and cast around title. *)
  let t = Query.Builder.rel b ~table:"title" ~alias:"t" in
  let mc = Query.Builder.rel b ~table:"movie_companies" ~alias:"mc" in
  let cn = Query.Builder.rel b ~table:"company_name" ~alias:"cn" in
  let ci = Query.Builder.rel b ~table:"cast_info" ~alias:"ci" in
  let n = Query.Builder.rel b ~table:"name" ~alias:"n" in
  let kt = Query.Builder.rel b ~table:"kind_type" ~alias:"kt" in
  jp b (at b t "id") (at b mc "movie_id");
  jp b (at b mc "company_id") (at b cn "id");
  jp b (at b t "id") (at b ci "movie_id");
  jp b (at b ci "person_id") (at b n "id");
  jp b (at b t "kind_id") (at b kt "id");
  sel b cn "country_code" (1 + (v * 2));
  sel b n "gender" (1 + (v mod 2))

let template8 v b =
  (* 6-way: info and keywords around title. *)
  let t = Query.Builder.rel b ~table:"title" ~alias:"t" in
  let mi = Query.Builder.rel b ~table:"movie_info" ~alias:"mi" in
  let it = Query.Builder.rel b ~table:"info_type" ~alias:"it" in
  let mk = Query.Builder.rel b ~table:"movie_keyword" ~alias:"mk" in
  let k = Query.Builder.rel b ~table:"keyword" ~alias:"k" in
  let kt = Query.Builder.rel b ~table:"kind_type" ~alias:"kt" in
  jp b (at b t "id") (at b mi "movie_id");
  jp b (at b mi "info_type_id") (at b it "id");
  jp b (at b t "id") (at b mk "movie_id");
  jp b (at b mk "keyword_id") (at b k "id");
  jp b (at b t "kind_id") (at b kt "id");
  sel b it "info" (3 + (v * 3));
  sel b k "keyword_code" (1 + (v * 50))

let template9 v b =
  (* 7-way star around title. *)
  let t = Query.Builder.rel b ~table:"title" ~alias:"t" in
  let mc = Query.Builder.rel b ~table:"movie_companies" ~alias:"mc" in
  let cn = Query.Builder.rel b ~table:"company_name" ~alias:"cn" in
  let mk = Query.Builder.rel b ~table:"movie_keyword" ~alias:"mk" in
  let k = Query.Builder.rel b ~table:"keyword" ~alias:"k" in
  let mi = Query.Builder.rel b ~table:"movie_info" ~alias:"mi" in
  let it = Query.Builder.rel b ~table:"info_type" ~alias:"it" in
  jp b (at b t "id") (at b mc "movie_id");
  jp b (at b mc "company_id") (at b cn "id");
  jp b (at b t "id") (at b mk "movie_id");
  jp b (at b mk "keyword_id") (at b k "id");
  jp b (at b t "id") (at b mi "movie_id");
  jp b (at b mi "info_type_id") (at b it "id");
  sel b cn "country_code" (1 + v);
  sel b k "keyword_code" (5 + (v * 20));
  sel b it "info" (1 + (v * 2))

let template10 v b =
  (* Two movie_info instances (the classic JOB self-join shape). *)
  let t = Query.Builder.rel b ~table:"title" ~alias:"t" in
  let mi1 = Query.Builder.rel b ~table:"movie_info" ~alias:"mi1" in
  let it1 = Query.Builder.rel b ~table:"info_type" ~alias:"it1" in
  let mi2 = Query.Builder.rel b ~table:"movie_info" ~alias:"mi2" in
  let it2 = Query.Builder.rel b ~table:"info_type" ~alias:"it2" in
  jp b (at b t "id") (at b mi1 "movie_id");
  jp b (at b mi1 "info_type_id") (at b it1 "id");
  jp b (at b t "id") (at b mi2 "movie_id");
  jp b (at b mi2 "info_type_id") (at b it2 "id");
  sel b it1 "info" (1 + v);
  sel b it2 "info" (10 + v)

let template11 v b =
  (* People and companies: 5-way chain. *)
  let ci = Query.Builder.rel b ~table:"cast_info" ~alias:"ci" in
  let t = Query.Builder.rel b ~table:"title" ~alias:"t" in
  let n = Query.Builder.rel b ~table:"name" ~alias:"n" in
  let mc = Query.Builder.rel b ~table:"movie_companies" ~alias:"mc" in
  let cn = Query.Builder.rel b ~table:"company_name" ~alias:"cn" in
  jp b (at b ci "movie_id") (at b t "id");
  jp b (at b ci "person_id") (at b n "id");
  jp b (at b t "id") (at b mc "movie_id");
  jp b (at b mc "company_id") (at b cn "id");
  sel b t "production_year" (1950 + (v * 13));
  sel b cn "country_code" (1 + (v mod 4))

let template12 v b =
  (* 7-way with people, companies, keywords. *)
  let t = Query.Builder.rel b ~table:"title" ~alias:"t" in
  let ci = Query.Builder.rel b ~table:"cast_info" ~alias:"ci" in
  let n = Query.Builder.rel b ~table:"name" ~alias:"n" in
  let mc = Query.Builder.rel b ~table:"movie_companies" ~alias:"mc" in
  let cn = Query.Builder.rel b ~table:"company_name" ~alias:"cn" in
  let mk = Query.Builder.rel b ~table:"movie_keyword" ~alias:"mk" in
  let k = Query.Builder.rel b ~table:"keyword" ~alias:"k" in
  jp b (at b t "id") (at b ci "movie_id");
  jp b (at b ci "person_id") (at b n "id");
  jp b (at b t "id") (at b mc "movie_id");
  jp b (at b mc "company_id") (at b cn "id");
  jp b (at b t "id") (at b mk "movie_id");
  jp b (at b mk "keyword_id") (at b k "id");
  sel b n "name_pcode" (1 + (v * 7));
  sel b k "keyword_code" (1 + (v * 11))

let templates =
  [ template1; template2; template3; template4; template5; template6;
    template7; template8; template9; template10; template11; template12 ]

let queries () =
  List.concat
    (List.mapi
       (fun ti template ->
         List.init 5 (fun v ->
             let name = Printf.sprintf "iq%d" ((ti * 5) + v + 1) in
             let b = Query.Builder.create ~name in
             template v b;
             (name, Query.Builder.build b)))
       templates)

let workload cfg =
  { Workload.name = "IMDB";
    catalog = generate cfg;
    queries = queries ();
    hand_written = None }
