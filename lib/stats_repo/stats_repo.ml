open Monsoon_util
open Monsoon_relalg
open Monsoon_stats
open Monsoon_telemetry

(* --- Fingerprints (DESIGN.md §16: the determinism contract) ---

   Keys are derived only from catalog/query structure — table names, column
   names, UDF names, query names — never from seeds, rng draws, addresses
   or wall clock, so repeated runs of the same workload write identical
   keys and a repository written with [--jobs 4] is indistinguishable from
   one written sequentially (the line *order* differs; the multiset of
   lines does not, and every reader folds in canonical order). *)

let term_fp query (tm : Term.t) =
  let arg (rid, col) =
    let r = Query.rel_by_id query rid in
    r.Query.table ^ "." ^ col
  in
  Udf.name tm.Term.udf ^ "("
  ^ String.concat "," (List.map arg tm.Term.args)
  ^ ")"

let mask_fp query mask =
  Relset.to_list mask
  |> List.map (fun rid ->
         let r = Query.rel_by_id query rid in
         r.Query.table ^ ":" ^ r.Query.alias)
  |> String.concat ","

let count_key query mask = Query.name query ^ "|" ^ mask_fp query mask

(* Distinct counts and UDF observations are measured over query-specific
   intermediates (a Σ pass runs on whatever relation state the plan has
   reached), so the same term measured under two different queries yields
   genuinely different values — pooling them across queries seeds wrong
   numbers and makes warm plans *worse*. Scoping by query name keeps every
   entry exact for the workload that produced it; cross-query sharing
   happens at the repository level (one file, many queries), not by
   aliasing measurements between unrelated predicate contexts. *)
let distinct_key query tm = Query.name query ^ "|" ^ term_fp query tm
let udf_key query tm = Query.name query ^ "|" ^ term_fp query tm

(* --- Observation log --- *)

(* One JSON object per observation: {"k":kind,"key":fingerprint,"v":value}.
   Kinds: "c" result count, "d" measured distinct count, "u" observed UDF
   selectivity (kept fraction), "uc" UDF evaluation cost (rows evaluated). *)

type agg = { n : int; sum : float; lo : float; hi : float }

type entry = {
  e_kind : string;
  e_key : string;
  e_n : int;
  e_mean : float;
  e_lo : float;
  e_hi : float;
}

type t = {
  path : string;
  baseline : (string * string, agg) Hashtbl.t;
      (* (kind, key) -> aggregate; loaded once at [open_], immutable for the
         handle's lifetime so warm-start lookups never depend on what this
         run has flushed so far (jobs-invariance). *)
}

let kinds = [ "c"; "d"; "u"; "uc" ]

let parse_line line =
  match Json.of_string line with
  | Error _ -> None
  | Ok j -> (
    match (Json.member "k" j, Json.member "key" j, Json.member "v" j) with
    | Some k, Some key, Some v -> (
      match (Json.to_str k, Json.to_str key, Json.to_float v) with
      | Some k, Some key, Some v when List.mem k kinds -> Some (k, key, v)
      | _ -> None)
    | _ -> None)

let read_lines path =
  match open_in path with
  | exception Sys_error _ -> []
  | ic ->
    let rec go acc =
      match input_line ic with
      | line -> go (match parse_line line with Some o -> o :: acc | None -> acc)
      | exception End_of_file -> List.rev acc
    in
    let obs = go [] in
    close_in_noerr ic;
    obs

(* Canonical fold: append order varies across [--jobs] settings, so sort
   the observation multiset before summing — float addition is not
   commutative enough to skip this. *)
let aggregate obs =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (k, key, v) ->
      let cur = Hashtbl.find_opt tbl (k, key) in
      let agg =
        match cur with
        | None -> { n = 1; sum = v; lo = v; hi = v }
        | Some a ->
          { n = a.n + 1;
            sum = a.sum +. v;
            lo = Float.min a.lo v;
            hi = Float.max a.hi v }
      in
      Hashtbl.replace tbl (k, key) agg)
    (List.sort compare obs);
  tbl

let open_ path = { path; baseline = aggregate (read_lines path) }
let path t = t.path

let kind_name = function
  | "c" -> "count"
  | "d" -> "distinct"
  | "u" -> "udf-sel"
  | "uc" -> "udf-cost"
  | k -> k

let entries t =
  Hashtbl.fold
    (fun (k, key) a acc ->
      { e_kind = kind_name k;
        e_key = key;
        e_n = a.n;
        e_mean = a.sum /. float_of_int a.n;
        e_lo = a.lo;
        e_hi = a.hi }
      :: acc)
    t.baseline []
  |> List.sort compare

(* --- Flushing (the driver's Query_finish hook) --- *)

let flush_query t ~query ~counts ~distincts ~udf =
  let line k key v =
    Json.to_string
      (Json.Obj [ ("k", Json.Str k); ("key", Json.Str key); ("v", Json.Num v) ])
  in
  let lines =
    List.map (fun (m, c) -> line "c" (count_key query m) c) counts
    @ List.map
        (fun (tid, d) -> line "d" (distinct_key query (Query.term query tid)) d)
        distincts
    @ List.concat_map
        (fun (tid, evals, frac) ->
          let key = udf_key query (Query.term query tid) in
          [ line "uc" key evals; line "u" key frac ])
        udf
  in
  if lines <> [] then
    (* One lock hold per query keeps a query's lines contiguous and never
       torn by another domain's flush (the Qlog append idiom). *)
    Span.with_line_lock (fun () ->
        match open_out_gen [ Open_append; Open_creat ] 0o644 t.path with
        | exception Sys_error _ -> ()
        | oc ->
          List.iter
            (fun l ->
              output_string oc l;
              output_char oc '\n')
            lines;
          close_out_noerr oc);
  List.length lines

(* --- Warm-start (DESIGN.md §16: the fallback ladder) --- *)

type warm = Known of float | Hint of Prior.t | Cold

let warm_of_agg a =
  let mean = a.sum /. float_of_int a.n in
  (* Confidence gate: a tight history (every observation within 10% of the
     mean) is treated as a known value — the Σ action for the term becomes
     pointless and the MDP prunes it. A dispersed history still informs the
     prior but keeps the buy-statistics action on the table. *)
  if a.hi -. a.lo <= 0.1 *. Float.max 1.0 mean then Known mean
  else Hint (Prior.empirical ~name:"Repository" ~mean ~lo:a.lo ~hi:a.hi)

let lookup_distinct t ~query ~term =
  match Hashtbl.find_opt t.baseline ("d", distinct_key query term) with
  | None -> Cold
  | Some a -> warm_of_agg a

let lookup_udf t ~query ~term =
  match
    ( Hashtbl.find_opt t.baseline ("uc", udf_key query term),
      Hashtbl.find_opt t.baseline ("u", udf_key query term) )
  with
  | Some c, Some s ->
    Some (c.sum /. float_of_int c.n, s.sum /. float_of_int s.n)
  | _ -> None

(* --- Snapshots, retention, diff --- *)

let snap_re = ".snap-"

let snapshot_id name =
  (* "<base>.snap-000012.json" -> Some 12 *)
  match String.rindex_opt name '-' with
  | None -> None
  | Some i ->
    let tail = String.sub name (i + 1) (String.length name - i - 1) in
    if Filename.check_suffix tail ".json" then
      int_of_string_opt (Filename.chop_suffix tail ".json")
    else None

let snapshots t =
  let dir = Filename.dirname t.path in
  let base = Filename.basename t.path in
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names
    |> List.filter_map (fun name ->
           if
             String.length name > String.length base
             && String.sub name 0 (String.length base) = base
             && String.length name > String.length base + String.length snap_re
             && String.sub name (String.length base) (String.length snap_re)
                = snap_re
           then
             Option.map (fun id -> (id, Filename.concat dir name)) (snapshot_id name)
           else None)
    |> List.sort compare
    |> List.map snd

let entry_json e =
  Json.Obj
    [ ("kind", Json.Str e.e_kind);
      ("key", Json.Str e.e_key);
      ("n", Json.Num (float_of_int e.e_n));
      ("mean", Json.Num e.e_mean);
      ("lo", Json.Num e.e_lo);
      ("hi", Json.Num e.e_hi) ]

let snapshot t =
  (* Snapshot the *log*, not the in-memory baseline: the handle's baseline
     is frozen at [open_] while the log keeps growing; a snapshot taken
     after a run must see that run's flushes. *)
  let tbl = aggregate (read_lines t.path) in
  let es = entries { t with baseline = tbl } in
  let next =
    1
    + List.fold_left
        (fun acc p ->
          match snapshot_id (Filename.basename p) with
          | Some id -> max acc id
          | None -> acc)
        0 (snapshots t)
  in
  let path = Printf.sprintf "%s%s%06d.json" t.path snap_re next in
  match open_out path with
  | exception Sys_error e -> Error e
  | oc ->
    output_string oc
      (Json.to_string (Json.Obj [ ("entries", Json.Arr (List.map entry_json es)) ]));
    output_char oc '\n';
    close_out_noerr oc;
    Ok path

let gc t ~keep =
  let snaps = snapshots t in
  let excess = List.length snaps - max 0 keep in
  if excess <= 0 then 0
  else begin
    let victims = List.filteri (fun i _ -> i < excess) snaps in
    List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) victims;
    List.length victims
  end

let load_snapshot path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
    let buf = Buffer.create 4096 in
    (try
       while true do
         Buffer.add_channel buf ic 4096
       done
     with End_of_file -> ());
    close_in_noerr ic;
    (match Json.of_string (Buffer.contents buf) with
    | Error e -> Error (path ^ ": " ^ e)
    | Ok j -> (
      match Json.member "entries" j with
      | Some (Json.Arr es) ->
        Ok
          (List.filter_map
             (fun e ->
               match
                 ( Option.bind (Json.member "kind" e) Json.to_str,
                   Option.bind (Json.member "key" e) Json.to_str,
                   Option.bind (Json.member "n" e) Json.to_int,
                   Option.bind (Json.member "mean" e) Json.to_float,
                   Option.bind (Json.member "lo" e) Json.to_float,
                   Option.bind (Json.member "hi" e) Json.to_float )
               with
               | Some kind, Some key, Some n, Some mean, Some lo, Some hi ->
                 Some
                   { e_kind = kind; e_key = key; e_n = n; e_mean = mean;
                     e_lo = lo; e_hi = hi }
               | _ -> None)
             es)
      | _ -> Error (path ^ ": no \"entries\" array")))

(* Deterministic snapshot diff, the Qlog diff_report idiom: one row per
   (kind, key) in canonical order, +1-smoothed drift ratios, and a verdict
   column; no timestamps or wall-clock numbers, so the same two snapshots
   render byte-identical reports forever. *)
let diff ~old_ ~new_ =
  match (load_snapshot old_, load_snapshot new_) with
  | Error e, _ | _, Error e -> Error e
  | Ok olds, Ok news ->
    let by_key es =
      List.map (fun e -> ((e.e_kind, e.e_key), e)) es |> List.sort compare
    in
    let o = by_key olds and n = by_key news in
    let keys =
      List.sort_uniq compare (List.map fst o @ List.map fst n)
    in
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      (Printf.sprintf "Repository diff: %s -> %s\n"
         (Filename.basename old_) (Filename.basename new_));
    let new_n = ref 0 and changed = ref 0 and lost = ref 0 and same = ref 0 in
    List.iter
      (fun k ->
        let kind, key = k in
        match (List.assoc_opt k o, List.assoc_opt k n) with
        | None, Some e ->
          incr new_n;
          Buffer.add_string buf
            (Printf.sprintf "  %-8s %-48s new (n=%d mean=%.6g)\n" kind key
               e.e_n e.e_mean)
        | Some e, None ->
          incr lost;
          Buffer.add_string buf
            (Printf.sprintf "  %-8s %-48s LOST (was n=%d mean=%.6g)\n" kind key
               e.e_n e.e_mean)
        | Some a, Some b ->
          if a.e_n = b.e_n && a.e_mean = b.e_mean && a.e_lo = b.e_lo
             && a.e_hi = b.e_hi
          then incr same
          else begin
            incr changed;
            let drift = (b.e_mean +. 1.0) /. (a.e_mean +. 1.0) in
            Buffer.add_string buf
              (Printf.sprintf
                 "  %-8s %-48s n %d->%d mean %.6g->%.6g drift x%.3f\n" kind key
                 a.e_n b.e_n a.e_mean b.e_mean drift)
          end
        | None, None -> assert false)
      keys;
    Buffer.add_string buf
      (Printf.sprintf "%d new, %d changed, %d lost, %d unchanged\n" !new_n
         !changed !lost !same);
    Ok (Buffer.contents buf)

let show t =
  let es = entries { t with baseline = aggregate (read_lines t.path) } in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "Statistics repository %s: %d keys\n" t.path
       (List.length es));
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "  %-8s %-48s n=%-4d mean=%-12.6g lo=%-12.6g hi=%.6g\n"
           e.e_kind e.e_key e.e_n e.e_mean e.e_lo e.e_hi))
    es;
  Buffer.contents buf

(* --- Env plumbing (the Ctx.to_env / of_env packer pattern) --- *)

type Env.repo += Packed of t

let to_env ?(env = Env.default) t = Env.with_repo env (Packed t)
let of_env env = match Env.repo env with Packed t -> Some t | _ -> None
