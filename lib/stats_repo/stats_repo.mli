(** The persistent cross-query statistics repository (DESIGN.md §16).

    MONSOON re-learns every distinct count from scratch on every query,
    even when the same (relation, term) pair was measured minutes earlier.
    This module makes the observations durable: at every query's end the
    driver flushes what the run *measured* — result counts, Σ-pass distinct
    counts, per-UDF cost and selectivity — to a JSONL observation log, and
    at the start of a later run the same keys answer the MDP's
    buy-statistics question without paying for the Σ pass.

    {2 Determinism contract}

    Keys are fingerprints of catalog/query structure only (table names,
    column names, UDF names, query names) — never seeds, addresses or wall
    clock — so repeated runs of the same workload write identical keys.
    Appends from parallel domains interleave lines but never tear them
    (each query's lines go out under the process-wide JSONL line lock),
    and every reader sorts the observation multiset canonically before
    folding, so aggregates, snapshots and diffs are byte-identical for
    every [--jobs] value.

    A handle's baseline is frozen at {!open_}: flushes performed during a
    run become visible only to handles opened afterwards, which keeps warm
    lookups independent of cell scheduling order.

    {2 Warm-start fallback ladder}

    For each interesting term, {!lookup_distinct} answers one of:
    - [Known d] — history exists and is tight (all observations within 10%
      of the mean): the driver seeds [d] as a measured Wildcard entry, so
      the MDP prunes the Σ action for the term;
    - [Hint p] — history exists but is dispersed: [p] is
      {!Monsoon_stats.Prior.empirical} (point mass ± observed spread), the
      Σ action stays available;
    - [Cold] — no history: the caller falls back to its configured prior
      (spike-and-slab by default). *)

open Monsoon_relalg
open Monsoon_stats

type t

val open_ : string -> t
(** [open_ path] loads the observation log at [path] (a missing file is an
    empty repository) and freezes the aggregate baseline. *)

val path : t -> string

(** {2 Fingerprints} *)

val count_key : Query.t -> Relset.t -> string
(** ["<query>|<table:alias>,..."] — result counts are per query instance. *)

val distinct_key : Query.t -> Term.t -> string
(** ["udf(table.col,...)"] — alias-free, so a term measured under one
    query warms every query applying the same UDF to the same columns. *)

val udf_key : Query.t -> Term.t -> string
(** Same fingerprint as {!distinct_key}; UDF cost/selectivity entries are
    stored under separate kinds. *)

(** {2 Recording} *)

val flush_query :
  t ->
  query:Query.t ->
  counts:(Relset.t * float) list ->
  distincts:(int * float) list ->
  udf:(int * float * float) list ->
  int
(** Appends one run's measured observations — [counts] from the statistics
    catalog, [distincts] as (term id, measured d) for genuinely measured
    Wildcard entries (warm-start seeds excluded by the caller), [udf] as
    (term id, rows evaluated, observed fraction) from
    [Executor.udf_observations] — as JSONL lines under one line-lock hold.
    Returns the number of lines written. Write errors are swallowed (the
    repository is an accelerator, never a correctness dependency). *)

(** {2 Warm-start lookups} *)

type warm = Known of float | Hint of Prior.t | Cold

val lookup_distinct : t -> query:Query.t -> term:Term.t -> warm

val lookup_udf : t -> query:Query.t -> term:Term.t -> (float * float) option
(** [(mean rows evaluated, mean kept fraction)] when both cost and
    selectivity history exist for the term's UDF fingerprint. *)

(** {2 Aggregates, snapshots, retention, diff} *)

type entry = {
  e_kind : string;  (** "count" | "distinct" | "udf-sel" | "udf-cost" *)
  e_key : string;
  e_n : int;
  e_mean : float;
  e_lo : float;
  e_hi : float;
}

val entries : t -> entry list
(** The frozen baseline in canonical order. *)

val show : t -> string
(** Deterministic rendering of the *current* log (re-read, not the frozen
    baseline), one row per key. *)

val snapshot : t -> (string, string) result
(** Writes the current log's aggregate to ["<path>.snap-NNNNNN.json"]
    (monotone ids, canonical entry order) and returns the file written. *)

val snapshots : t -> string list
(** Existing snapshot files, oldest first. *)

val gc : t -> keep:int -> int
(** Deletes all but the newest [keep] snapshots; returns how many were
    removed. *)

val diff : old_:string -> new_:string -> (string, string) result
(** Deterministic report between two snapshot files: new / changed / lost
    keys with +1-smoothed estimate drift, in canonical key order, no
    wall-clock content — the [qlog --diff] idiom. *)

(** {2 Env plumbing} *)

type Monsoon_util.Env.repo += Packed of t

val to_env : ?env:Monsoon_util.Env.t -> t -> Monsoon_util.Env.t
val of_env : Monsoon_util.Env.t -> t option
(** [None] when the env carries no repository ([Env.No_repo]) — every
    consumer must behave byte-identically to a repository-free build in
    that case. *)
