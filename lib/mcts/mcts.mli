(** Generic Monte-Carlo tree search over a sampled decision process
    (paper Sec 5.1).

    The planner is *online*: given a state, it runs a fixed number of
    rollouts through a simulator of the process and returns the action whose
    estimated long-term reward is best. Both selection strategies evaluated
    in the paper are provided: UCT (Kocsis–Szepesvári) with the paper's
    weight w = √2, and adaptive ε-greedy with a 0.1 floor. Rewards are
    min–max-normalized across the rollouts of one planning call, as the
    paper prescribes for UCT. *)

type ('s, 'a) problem = {
  actions : 's -> 'a list;
      (** Legal actions; must be non-empty for non-terminal states. *)
  step : 's -> 'a -> 's * float;
      (** Samples one transition from the process model; returns the next
          state and the immediate reward (negated cost). Must not mutate the
          input state. *)
  is_terminal : 's -> bool;
  key : 's -> string;
      (** Canonical state fingerprint: identical keys mean identical states
          (used to share chance-node children). *)
  rollout_policy : (Monsoon_util.Rng.t -> 's -> 'a list -> 'a) option;
      (** The "predefined policy" driving simulations below the tree
          (Sec 5.1). [None] picks uniformly at random. *)
}

type selection =
  | Uct of float  (** exploration weight; the paper uses [sqrt 2.] *)
  | Epsilon_greedy  (** ε from 1.0 down to the 0.1 floor *)

type config = {
  iterations : int;
  selection : selection;
  rng : Monsoon_util.Rng.t;
  max_rollout_steps : int;
      (** safety cap on rollout length; generous values never bind for the
          Monsoon MDP, whose episodes are structurally finite *)
  deadline : Monsoon_util.Deadline.t;
      (** checked between iterations: an expired or cancelled token ends
          the search early with the partial tree (no exception), so a
          cell abandoned by the harness never spins in the planner.
          Default [Deadline.none] — and note wall-clock deadlines trade
          away run-to-run determinism *)
}

val default_config : rng:Monsoon_util.Rng.t -> config
(** 2000 iterations, UCT(√2), rollout cap 10_000, no deadline. *)

type 'a candidate = {
  cand_action : 'a;
  cand_visits : int;
  cand_mean : float;  (** mean raw (unnormalized) return through the edge *)
}

type 'a stats = {
  chosen_visits : int;
  chosen_mean : float;  (** mean raw (unnormalized) return of the choice *)
  root_visits : int;
  candidates : 'a candidate list;
      (** root statistics of *every* expanded root action, in expansion
          order — the flight recorder's view of the decision, not just its
          winner *)
}

val plan :
  ?env:Monsoon_util.Env.t ->
  ?workers:int ->
  ?problem_of:(Monsoon_util.Rng.t -> ('s, 'a) problem) ->
  config -> ('s, 'a) problem -> 's -> ('a * 'a stats) option
(** [plan cfg p s] returns the preferred action from [s], or [None] when
    [s] is terminal. The returned stats carry the full root-child
    statistics ([candidates]) so callers (e.g. the driver's flight
    recorder) can report why the action won.

    [?workers] (default 1) enables root-parallel search: [k > 1] runs [k]
    independent trees on [k] domains, each with [iterations / k] (at least
    1) simulations and an RNG split from [cfg.rng] in worker order before
    any tree starts, then pools the per-action root visit counts and return
    totals before the final best-mean choice. [workers <= 1] is exactly the
    sequential search ([root_visits = iterations]).

    [?problem_of] builds a private problem replica per worker from that
    worker's RNG. Required whenever the problem closures are not
    domain-safe (the Monsoon {!Monsoon_core.Simulator} is not: it owns an
    RNG and memo tables); without it all workers share [p].

    With a context packed into [?env] (the planner's deadline lives on
    {!config}, not the environment), each call bumps [mcts.plans] / [mcts.iterations] /
    [mcts.expansions] counters, observes per-iteration tree depth in the
    [mcts.tree_depth] histogram, and emits an [mcts.plan] span carrying
    iteration, worker, expansion, and selection attributes
    ([root_visits], [chosen_visits], [chosen_mean]). *)
