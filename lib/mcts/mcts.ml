open Monsoon_util

type ('s, 'a) problem = {
  actions : 's -> 'a list;
  step : 's -> 'a -> 's * float;
  is_terminal : 's -> bool;
  key : 's -> string;
  rollout_policy : (Rng.t -> 's -> 'a list -> 'a) option;
}

type selection = Uct of float | Epsilon_greedy

type config = {
  iterations : int;
  selection : selection;
  rng : Rng.t;
  max_rollout_steps : int;
  deadline : Deadline.t;
}

let default_config ~rng =
  { iterations = 2000;
    selection = Uct (sqrt 2.0);
    rng;
    max_rollout_steps = 10_000;
    deadline = Deadline.none }

type 'a candidate = { cand_action : 'a; cand_visits : int; cand_mean : float }

type 'a stats = {
  chosen_visits : int;
  chosen_mean : float;
  root_visits : int;
  candidates : 'a candidate list;
}

type ('s, 'a) node = {
  state : 's;
  mutable untried : 'a list;
  mutable edges : ('s, 'a) edge list;  (* in expansion order *)
  mutable visits : int;
}

and ('s, 'a) edge = {
  action : 'a;
  mutable e_visits : int;
  mutable e_total : float;  (* sum of raw returns through this edge *)
  children : (string, ('s, 'a) node) Hashtbl.t;
}

let make_node p state = { state; untried = p.actions state; edges = []; visits = 0 }

let edge_mean e = if e.e_visits = 0 then 0.0 else e.e_total /. float_of_int e.e_visits

(* Rollout: uniformly random actions until a terminal state; the return is
   the (undiscounted, γ = 1) sum of rewards. *)
let rollout cfg p state =
  let pick =
    match p.rollout_policy with
    | Some policy -> policy cfg.rng
    | None ->
      fun _state acts -> List.nth acts (Rng.int cfg.rng (List.length acts))
  in
  let rec go state steps acc =
    if p.is_terminal state || steps >= cfg.max_rollout_steps then acc
    else
      match p.actions state with
      | [] -> acc
      | acts ->
        let a = pick state acts in
        let state', r = p.step state a in
        go state' (steps + 1) (acc +. r)
  in
  go state 0 0.0

let select_uct w ~norm node =
  let log_vp = log (float_of_int (max 1 node.visits)) in
  let score e =
    if e.e_visits = 0 then infinity
    else
      norm (edge_mean e) +. (w *. sqrt (log_vp /. float_of_int e.e_visits))
  in
  List.fold_left
    (fun best e -> match best with
      | None -> Some e
      | Some b -> if score e > score b then Some e else best)
    None node.edges
  |> Option.get

let select_eps cfg ~progress node =
  let eps = Float.max 0.1 (1.0 -. progress) in
  if Rng.unit_float cfg.rng < eps then
    List.nth node.edges (Rng.int cfg.rng (List.length node.edges))
  else
    List.fold_left
      (fun best e -> match best with
        | None -> Some e
        | Some b -> if edge_mean e > edge_mean b then Some e else best)
      None node.edges
    |> Option.get

(* One complete tree search: [cfg.iterations] simulations from a fresh root.
   Returns the root node and the expansion count. [observe_depth] receives
   the deepest tree level of each iteration (it must be domain-safe — the
   shared histogram is). *)
let search cfg p root_state ~observe_depth =
  let root = make_node p root_state in
  let expansions = ref 0 in
  let transpositions = ref 0 in
  let depth_reached = ref 0 in
  (* Global return bounds for [0,1] normalization of the exploitation
     term, as the paper prescribes. *)
  let gmin = ref infinity and gmax = ref neg_infinity in
  let observe g =
    if g < !gmin then gmin := g;
    if g > !gmax then gmax := g
  in
  let norm v =
    if !gmax -. !gmin < 1e-12 then 0.5 else (v -. !gmin) /. (!gmax -. !gmin)
  in
  let child_of edge state' =
    let k = p.key state' in
    match Hashtbl.find_opt edge.children k with
    | Some n ->
      (* Transposition: a stochastic step reproduced an already-expanded
         state under this edge, so its subtree statistics are shared. *)
      incr transpositions;
      n
    | None ->
      let n = make_node p state' in
      Hashtbl.replace edge.children k n;
      n
  in
  let backup node edge g =
    node.visits <- node.visits + 1;
    edge.e_visits <- edge.e_visits + 1;
    edge.e_total <- edge.e_total +. g
  in
  let rec simulate ~progress node depth =
    if depth > !depth_reached then depth_reached := depth;
    if p.is_terminal node.state || depth >= cfg.max_rollout_steps then 0.0
    else
      match node.untried with
      | a :: rest ->
        (* Expansion: try one unvisited action, then roll out. *)
        node.untried <- rest;
        incr expansions;
        let edge = { action = a; e_visits = 0; e_total = 0.0; children = Hashtbl.create 4 } in
        node.edges <- node.edges @ [ edge ];
        let state', r = p.step node.state a in
        let child = child_of edge state' in
        let g = r +. rollout cfg p state' in
        ignore child;
        backup node edge g;
        g
      | [] ->
        if node.edges = [] then 0.0  (* dead end: no legal actions *)
        else begin
          let edge =
            match cfg.selection with
            | Uct w -> select_uct w ~norm node
            | Epsilon_greedy -> select_eps cfg ~progress node
          in
          let state', r = p.step node.state edge.action in
          let child = child_of edge state' in
          let g = r +. simulate ~progress child (depth + 1) in
          backup node edge g;
          g
        end
  in
  (* An expiring deadline ends the search between iterations instead of
     raising: the partial tree is still a valid (if weaker) plan, and
     parallel trees stay mergeable. *)
  (try
     for i = 0 to cfg.iterations - 1 do
       if Deadline.expired cfg.deadline then raise Exit;
       let progress = float_of_int i /. float_of_int (max 1 cfg.iterations) in
       depth_reached := 0;
       let g = simulate ~progress root 0 in
       observe_depth (float_of_int !depth_reached);
       observe g
     done
   with Exit -> ());
  (root, !expansions, !transpositions)

(* Root statistics detached from the (mutable, tree-owning) nodes, so trees
   built in worker domains can be summarized after the domains join. *)
type 'a root_edge = { re_action : 'a; re_visits : int; re_total : float }

let re_mean e =
  if e.re_visits = 0 then 0.0 else e.re_total /. float_of_int e.re_visits

let root_edges root =
  List.map
    (fun e -> { re_action = e.action; re_visits = e.e_visits; re_total = e.e_total })
    root.edges

(* Root-parallel merge: pool visit counts and return totals of the same
   action across trees, keeping first-seen (expansion) order. Actions are
   compared structurally. *)
let merge_root_edges per_tree =
  let merged = ref [] in
  List.iter
    (fun edges ->
      List.iter
        (fun e ->
          match List.find_opt (fun m -> m.re_action = e.re_action) !merged with
          | Some m ->
            merged :=
              List.map
                (fun m' ->
                  if m' == m then
                    { m' with
                      re_visits = m'.re_visits + e.re_visits;
                      re_total = m'.re_total +. e.re_total }
                  else m')
                !merged
          | None -> merged := !merged @ [ e ])
        edges)
    per_tree;
  !merged

let plan ?(env = Env.default) ?(workers = 1) ?problem_of cfg p root_state =
  if p.is_terminal root_state then None
  else begin
    let tel = Monsoon_telemetry.Ctx.of_env env in
    let open Monsoon_telemetry in
    let c_plans = Ctx.counter tel "mcts.plans" in
    let c_iterations = Ctx.counter tel "mcts.iterations" in
    let c_expansions = Ctx.counter tel "mcts.expansions" in
    let c_transpositions = Ctx.counter tel "mcts.transpositions" in
    let h_depth = Ctx.histogram tel "mcts.tree_depth" in
    let observe_depth d = Metric.Histogram.observe h_depth d in
    Ctx.with_span tel "mcts.plan" (fun span ->
    let edges, root_visits, expansions, transpositions, iterations_run =
      if workers <= 1 then begin
        let root, ex, tr = search cfg p root_state ~observe_depth in
        (root_edges root, root.visits, ex, tr, cfg.iterations)
      end
      else begin
        (* Root-parallel MCTS: [workers] independent trees on split RNG
           streams, iteration budget divided among them, root statistics
           pooled before the final choice. RNGs are split here, in worker
           order, before any tree runs — results do not depend on domain
           scheduling. *)
        let per_tree = max 1 (cfg.iterations / workers) in
        let rngs = List.init workers (fun _ -> Rng.split cfg.rng) in
        let replica =
          match problem_of with Some f -> f | None -> fun _rng -> p
        in
        let domains =
          List.map
            (fun rng ->
              Domain.spawn (fun () ->
                  let p_w = replica rng in
                  let cfg_w = { cfg with iterations = per_tree; rng } in
                  let root, ex, tr = search cfg_w p_w root_state ~observe_depth in
                  (root_edges root, root.visits, ex, tr)))
            rngs
        in
        (* Join every domain before re-raising anything a worker threw
           (e.g. a failing rollout policy) — an early re-raise would leak
           the remaining domains. *)
        let joined =
          List.map
            (fun d ->
              match Domain.join d with
              | r -> Ok r
              | exception e -> Error (e, Printexc.get_raw_backtrace ()))
            domains
        in
        let results =
          List.map
            (function
              | Ok r -> r
              | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
            joined
        in
        let edges = merge_root_edges (List.map (fun (e, _, _, _) -> e) results) in
        let visits = List.fold_left (fun a (_, v, _, _) -> a + v) 0 results in
        let ex = List.fold_left (fun a (_, _, x, _) -> a + x) 0 results in
        let tr = List.fold_left (fun a (_, _, _, t) -> a + t) 0 results in
        (edges, visits, ex, tr, per_tree * workers)
      end
    in
    Metric.Counter.inc c_plans;
    Metric.Counter.add c_iterations (float_of_int iterations_run);
    Metric.Counter.add c_expansions (float_of_int expansions);
    Metric.Counter.add c_transpositions (float_of_int transpositions);
    Span.set_attr span "iterations" (Span.Int iterations_run);
    Span.set_attr span "workers" (Span.Int (max 1 workers));
    Span.set_attr span "expansions" (Span.Int expansions);
    Span.set_attr span "transpositions" (Span.Int transpositions);
    Span.set_attr span "root_visits" (Span.Int root_visits);
    (* Final choice: best mean return; ties broken toward more visits. *)
    let best =
      List.fold_left
        (fun best e ->
          match best with
          | None -> Some e
          | Some b ->
            let me = re_mean e and mb = re_mean b in
            if me > mb || (Float.equal me mb && e.re_visits > b.re_visits) then
              Some e
            else best)
        None edges
    in
    match best with
    | None -> None
    | Some e ->
      Span.set_attr span "chosen_visits" (Span.Int e.re_visits);
      Span.set_attr span "chosen_mean" (Span.Float (re_mean e));
      let candidates =
        List.map
          (fun e ->
            { cand_action = e.re_action;
              cand_visits = e.re_visits;
              cand_mean = re_mean e })
          edges
      in
      Some
        ( e.re_action,
          { chosen_visits = e.re_visits;
            chosen_mean = re_mean e;
            root_visits;
            candidates } ))
  end
