(** Bounded admission for the serving layer: a concurrency limit plus a
    bounded wait queue, the two knobs that keep an overloaded server
    shedding load (429) instead of queueing without bound.

    At most [max_concurrent] requests hold an execution slot at once.
    A request arriving with every slot taken waits in the queue — up to
    [queue_bound] waiters — and is woken when a slot frees. A request
    arriving with the queue already full is {!Rejected} immediately: the
    caller turns that into [429 Retry-After], never into latency.

    The controller is a [Mutex]/[Condition] pair shared by the server's
    connection threads; it performs no execution itself (admitted requests
    run on a {!Monsoon_util.Pool} sized to [max_concurrent], so the two
    bounds agree). Queue wakeup order is unspecified — under a saturated
    server every waiter's wait is dominated by execution time, not by
    position.

    With a [?ctx], the controller keeps the [server.queue_depth] and
    [server.in_flight] gauges current on every transition, so /metrics
    shows live occupancy. *)

type t

type decision =
  | Admitted of float
      (** holds an execution slot; the payload is seconds spent queued
          (0 when a slot was free on arrival). Balance with {!release}. *)
  | Rejected  (** queue at its bound — shed the request (429) *)
  | Timed_out
      (** the request's deadline expired while it waited in the queue
          (504); the slot was never held *)
  | Closed  (** draining or closed — no new work (503) *)

val create :
  ?ctx:Monsoon_telemetry.Ctx.t ->
  max_concurrent:int ->
  queue_bound:int ->
  unit ->
  t
(** @raise Invalid_argument when [max_concurrent < 1] or [queue_bound < 0]. *)

val admit : deadline:Monsoon_util.Deadline.t -> t -> decision
(** Blocks only in the {!Admitted}-after-queueing case
    ([Monsoon_util.Deadline.none] never trips). The deadline is
    checked on entry and at every wakeup; a queued request whose deadline
    trips resolves to {!Timed_out} at the next slot handoff. *)

val release : t -> unit
(** Give an admitted request's slot back, waking one waiter.
    @raise Invalid_argument when no slot is held (unbalanced release). *)

val close : t -> unit
(** Stop admitting: subsequent {!admit}s (and every current waiter) resolve
    to {!Closed}. In-flight requests keep their slots. Idempotent. *)

val drain : t -> unit
(** {!close}, then block until every held slot is released — the graceful-
    shutdown barrier between "stop accepting" and "stop the pool". *)

val in_flight : t -> int
(** Slots currently held. *)

val queued : t -> int
(** Requests currently waiting. *)

val max_concurrent : t -> int
