open Monsoon_telemetry

type outcome = Ok_ | Degraded | Rejected | Timed_out | Failed

let outcome_label = function
  | Ok_ -> "ok"
  | Degraded -> "degraded"
  | Rejected -> "rejected"
  | Timed_out -> "timeout"
  | Failed -> "error"

(* Per-class instruments: one labeled latency histogram and one labeled
   counter per outcome, interned in the same registry the unlabeled
   aggregates live in — so /metrics carries server_latency{class="iq7"}
   rows with no extra exporter work. *)
type class_stats = {
  k_latency : Metric.Histogram.t;
  k_requests : Metric.Counter.t;
  k_ok : Metric.Counter.t;
  k_degraded : Metric.Counter.t;
  k_rejected : Metric.Counter.t;
  k_timeout : Metric.Counter.t;
  k_error : Metric.Counter.t;
}

type t = {
  latency_target : float;
  availability_target : float;
  tel : Ctx.t;
  h_latency : Metric.Histogram.t;
  h_queue_wait : Metric.Histogram.t;
  c_requests : Metric.Counter.t;
  c_ok : Metric.Counter.t;
  c_degraded : Metric.Counter.t;
  c_rejected : Metric.Counter.t;
  c_timeout : Metric.Counter.t;
  c_error : Metric.Counter.t;
  class_lock : Mutex.t;
  by_class : (string, class_stats) Hashtbl.t;
}

let create ?ctx ?(latency_target = 1.0) ?(availability_target = 0.99) () =
  if latency_target <= 0.0 then
    invalid_arg "Slo.create: latency_target must be > 0";
  if availability_target < 0.0 || availability_target > 1.0 then
    invalid_arg "Slo.create: availability_target must be in [0,1]";
  let tel = match ctx with Some c -> c | None -> Ctx.null () in
  { latency_target;
    availability_target;
    tel;
    h_latency = Ctx.histogram tel "server.latency";
    h_queue_wait = Ctx.histogram tel "server.queue_wait";
    c_requests = Ctx.counter tel "server.requests";
    c_ok = Ctx.counter tel "server.ok";
    c_degraded = Ctx.counter tel "server.degraded";
    c_rejected = Ctx.counter tel "server.rejected";
    c_timeout = Ctx.counter tel "server.timeout";
    c_error = Ctx.counter tel "server.error";
    class_lock = Mutex.create ();
    by_class = Hashtbl.create 16 }

let counter_for t = function
  | Ok_ -> t.c_ok
  | Degraded -> t.c_degraded
  | Rejected -> t.c_rejected
  | Timed_out -> t.c_timeout
  | Failed -> t.c_error

let class_stats t klass =
  Mutex.lock t.class_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.class_lock)
    (fun () ->
      match Hashtbl.find_opt t.by_class klass with
      | Some s -> s
      | None ->
        let labels = [ ("class", klass) ] in
        let s =
          { k_latency = Ctx.histogram t.tel ~labels "server.latency";
            k_requests = Ctx.counter t.tel ~labels "server.requests";
            k_ok = Ctx.counter t.tel ~labels "server.ok";
            k_degraded = Ctx.counter t.tel ~labels "server.degraded";
            k_rejected = Ctx.counter t.tel ~labels "server.rejected";
            k_timeout = Ctx.counter t.tel ~labels "server.timeout";
            k_error = Ctx.counter t.tel ~labels "server.error" }
        in
        Hashtbl.replace t.by_class klass s;
        s)

let class_counter s = function
  | Ok_ -> s.k_ok
  | Degraded -> s.k_degraded
  | Rejected -> s.k_rejected
  | Timed_out -> s.k_timeout
  | Failed -> s.k_error

let record t ?klass outcome ~latency ~queue_wait =
  Metric.Counter.inc t.c_requests;
  Metric.Counter.inc (counter_for t outcome);
  Metric.Histogram.observe t.h_latency latency;
  Metric.Histogram.observe t.h_queue_wait queue_wait;
  match klass with
  | None -> ()
  | Some klass ->
    let s = class_stats t klass in
    Metric.Counter.inc s.k_requests;
    Metric.Counter.inc (class_counter s outcome);
    Metric.Histogram.observe s.k_latency latency

let mean_latency t = Metric.Histogram.mean t.h_latency

type counts = {
  total : int;
  ok : int;
  degraded : int;
  rejected : int;
  timed_out : int;
  failed : int;
}

let counts t =
  let v c = int_of_float (Metric.Counter.value c) in
  { total = v t.c_requests;
    ok = v t.c_ok;
    degraded = v t.c_degraded;
    rejected = v t.c_rejected;
    timed_out = v t.c_timeout;
    failed = v t.c_error }

(* --- report --- *)

let secs v = Printf.sprintf "%.4gs" v
let pct v = Printf.sprintf "%.2f%%" v

let quantile_row name h =
  let q p = secs (Metric.Histogram.quantile h p) in
  let maxv =
    if Metric.Histogram.count h = 0 then secs 0.0
    else secs (Metric.Histogram.max_value h)
  in
  [ name; q 0.5; q 0.95; q 0.99; maxv ]

let report t =
  let c = counts t in
  if c.total = 0 then "SLO report: no requests recorded\n"
  else begin
    let share n = pct (100.0 *. float_of_int n /. float_of_int c.total) in
    let outcome_table =
      Snapshot.table ~title:"Outcomes"
        ~header:[ "Outcome"; "Count"; "Share" ]
        [ [ "ok"; string_of_int c.ok; share c.ok ];
          [ "degraded"; string_of_int c.degraded; share c.degraded ];
          [ "rejected"; string_of_int c.rejected; share c.rejected ];
          [ "timeout"; string_of_int c.timed_out; share c.timed_out ];
          [ "error"; string_of_int c.failed; share c.failed ] ]
    in
    let latency_table =
      Snapshot.table
        ~title:
          "Latency (log-bucketed: quantiles are bucket upper bounds)"
        ~header:[ "Metric"; "p50"; "p95"; "p99"; "Max" ]
        [ quantile_row "latency" t.h_latency;
          quantile_row "queue wait" t.h_queue_wait ]
    in
    let achieved_p95 = Metric.Histogram.quantile t.h_latency 0.95 in
    let availability =
      float_of_int (c.ok + c.degraded) /. float_of_int c.total
    in
    let failure_share = 1.0 -. availability in
    let budget = 1.0 -. t.availability_target in
    let budget_spent =
      if budget <= 0.0 then
        if failure_share > 0.0 then infinity else 0.0
      else 100.0 *. failure_share /. budget
    in
    let status ok = if ok then "met" else "MISSED" in
    let objective_table =
      Snapshot.table ~title:"Objectives"
        ~header:[ "Objective"; "Target"; "Achieved"; "Status" ]
        [ [ "p95 latency"; secs t.latency_target; secs achieved_p95;
            status (achieved_p95 <= t.latency_target) ];
          [ "availability"; pct (100.0 *. t.availability_target);
            pct (100.0 *. availability);
            status (availability >= t.availability_target) ];
          [ "error budget"; pct (100.0 *. budget); pct (100.0 *. failure_share);
            (if budget_spent = infinity then "spent inf"
             else Printf.sprintf "spent %.1f%%" budget_spent) ] ]
    in
    let classes =
      Mutex.lock t.class_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.class_lock)
        (fun () -> Hashtbl.fold (fun k s acc -> (k, s) :: acc) t.by_class [])
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    (* Appended only when classes were recorded, so class-less callers
       (and their golden tests) render the exact pre-existing report. *)
    let class_table =
      if classes = [] then ""
      else
        "\n"
        ^ Snapshot.table ~title:"Per-class outcomes and latency"
            ~header:
              [ "Class"; "N"; "OK"; "Degr"; "Rej"; "TO"; "Err"; "p95"; "Max" ]
            (List.map
               (fun (klass, s) ->
                 let v c = string_of_int (int_of_float (Metric.Counter.value c)) in
                 let maxv =
                   if Metric.Histogram.count s.k_latency = 0 then secs 0.0
                   else secs (Metric.Histogram.max_value s.k_latency)
                 in
                 [ klass; v s.k_requests; v s.k_ok; v s.k_degraded;
                   v s.k_rejected; v s.k_timeout; v s.k_error;
                   secs (Metric.Histogram.quantile s.k_latency 0.95); maxv ])
               classes)
    in
    Printf.sprintf "SLO report (%d requests)\n\n%s\n%s\n%s%s" c.total
      outcome_table latency_table objective_table class_table
  end
