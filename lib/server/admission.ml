open Monsoon_util
open Monsoon_telemetry

type t = {
  max_concurrent : int;
  queue_bound : int;
  lock : Mutex.t;
  slot_freed : Condition.t;
  mutable in_flight : int;
  mutable queued : int;
  mutable closing : bool;
  g_depth : Metric.Gauge.t;
  g_in_flight : Metric.Gauge.t;
}

type decision = Admitted of float | Rejected | Timed_out | Closed

let create ?ctx ~max_concurrent ~queue_bound () =
  if max_concurrent < 1 then
    invalid_arg "Admission.create: max_concurrent must be >= 1";
  if queue_bound < 0 then
    invalid_arg "Admission.create: queue_bound must be >= 0";
  let tel = match ctx with Some c -> c | None -> Ctx.null () in
  { max_concurrent;
    queue_bound;
    lock = Mutex.create ();
    slot_freed = Condition.create ();
    in_flight = 0;
    queued = 0;
    closing = false;
    g_depth = Ctx.gauge tel "server.queue_depth";
    g_in_flight = Ctx.gauge tel "server.in_flight" }

(* Gauge updates happen under the lock, so /metrics never observes a
   transient where a request is counted both queued and in flight. *)
let export t =
  Metric.Gauge.set t.g_depth (float_of_int t.queued);
  Metric.Gauge.set t.g_in_flight (float_of_int t.in_flight)

let admit ~deadline t =
  Mutex.lock t.lock;
  let decision =
    if t.closing then Closed
    else if t.in_flight < t.max_concurrent then begin
      t.in_flight <- t.in_flight + 1;
      export t;
      Admitted 0.0
    end
    else if t.queued >= t.queue_bound then Rejected
    else if Deadline.expired deadline then Timed_out
    else begin
      let t0 = Timer.now () in
      t.queued <- t.queued + 1;
      export t;
      (* Wait for a slot. The deadline is re-checked at every wakeup: a
         condvar has no timed wait, but on a loaded server wakeups arrive
         at completion rate, and an idle queue means no one is waiting. *)
      let rec wait () =
        if t.closing then Closed
        else if Deadline.expired deadline then Timed_out
        else if t.in_flight < t.max_concurrent then begin
          t.in_flight <- t.in_flight + 1;
          Admitted (Timer.now () -. t0)
        end
        else begin
          Condition.wait t.slot_freed t.lock;
          wait ()
        end
      in
      let d = wait () in
      t.queued <- t.queued - 1;
      export t;
      (* A waiter that resolved without taking the slot must pass the
         wakeup on, or a concurrent release could strand another waiter. *)
      (match d with Admitted _ -> () | _ -> Condition.signal t.slot_freed);
      d
    end
  in
  Mutex.unlock t.lock;
  decision

let release t =
  Mutex.lock t.lock;
  if t.in_flight <= 0 then begin
    Mutex.unlock t.lock;
    invalid_arg "Admission.release: no slot held"
  end;
  t.in_flight <- t.in_flight - 1;
  export t;
  (* Broadcast, not signal: waiters also wake to notice tripped deadlines
     and closing, and [drain] shares the condvar — waking everyone is the
     simple way to guarantee no waiter is stranded. The queue is bounded,
     so the thundering herd is too. *)
  Condition.broadcast t.slot_freed;
  Mutex.unlock t.lock

let close t =
  Mutex.lock t.lock;
  t.closing <- true;
  Condition.broadcast t.slot_freed;
  Mutex.unlock t.lock

let drain t =
  close t;
  Mutex.lock t.lock;
  while t.in_flight > 0 do
    Condition.wait t.slot_freed t.lock
  done;
  Mutex.unlock t.lock

let in_flight t =
  Mutex.lock t.lock;
  let n = t.in_flight in
  Mutex.unlock t.lock;
  n

let queued t =
  Mutex.lock t.lock;
  let n = t.queued in
  Mutex.unlock t.lock;
  n

let max_concurrent t = t.max_concurrent
