open Monsoon_telemetry

type t = In_process of Server.t | Http of { host : string; port : int }

let in_process s = In_process s
let http ?(host = "127.0.0.1") ~port () = Http { host; port }

type outcome = {
  o_query : string;
  o_status : string;
  o_code : int;
  o_cost : float;
  o_latency : float;
  o_queue_wait : float;
}

(* --- raw HTTP/1.1, one connection per request --- *)

let find_substring s needle =
  let n = String.length needle and m = String.length s in
  let rec go i =
    if i + n > m then None
    else if String.sub s i n = needle then Some i
    else go (i + 1)
  in
  go 0

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let read_to_eof fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ();
  Buffer.contents buf

let header_value headers name =
  String.split_on_char '\n' headers
  |> List.find_map (fun line ->
         match String.index_opt line ':' with
         | None -> None
         | Some i ->
           if String.lowercase_ascii (String.trim (String.sub line 0 i)) = name
           then
             Some
               (String.trim
                  (String.sub line (i + 1) (String.length line - i - 1)))
           else None)

(* The server answers [Connection: close], so read-to-EOF delimits the
   response; the Content-Length check then catches short reads. *)
let parse_response raw =
  match find_substring raw "\r\n\r\n" with
  | None -> Error "malformed response: no header terminator"
  | Some i -> (
    let headers = String.sub raw 0 i in
    let body = String.sub raw (i + 4) (String.length raw - i - 4) in
    match
      Option.bind (header_value headers "content-length") int_of_string_opt
    with
    | Some want when want <> String.length body ->
      Error
        (Printf.sprintf "short read: Content-Length %d, body %d bytes" want
           (String.length body))
    | _ -> (
      match
        String.split_on_char ' ' (List.hd (String.split_on_char '\r' headers))
      with
      | _http :: code :: _ -> (
        match int_of_string_opt code with
        | Some c -> Ok (c, body)
        | None -> Error ("malformed status line: " ^ code))
      | _ -> Error "malformed status line"))

let http_request ~host ~port ~meth ~path ~body =
  match
    try
      Ok
        (try Unix.inet_addr_of_string host
         with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0))
    with Not_found -> Error ("unknown host: " ^ host)
  with
  | Error _ as e -> e
  | Ok addr -> (
    match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
    | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
    | fd -> (
      let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
      match
        Fun.protect ~finally (fun () ->
            Unix.connect fd (Unix.ADDR_INET (addr, port));
            Unix.setsockopt_float fd Unix.SO_RCVTIMEO 60.0;
            write_all fd
              (Printf.sprintf
                 "%s %s HTTP/1.1\r\n\
                  Host: %s:%d\r\n\
                  Content-Type: application/json\r\n\
                  Content-Length: %d\r\n\
                  Connection: close\r\n\
                  \r\n\
                  %s"
                 meth path host port (String.length body) body);
            read_to_eof fd)
      with
      | raw -> parse_response raw
      | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
      ))

(* --- the interface --- *)

let parse_outcome qname code body =
  match Json.of_string body with
  | Error m -> Error ("unparseable response body: " ^ m)
  | Ok j -> (
    let str k = Option.bind (Json.member k j) Json.to_str in
    let num k = Option.bind (Json.member k j) Json.to_float in
    match (str "status", num "cost", num "latency_s", num "queue_wait_s") with
    | Some st, Some c, Some l, Some qw ->
      Ok
        { o_query = qname;
          o_status = st;
          o_code = code;
          o_cost = c;
          o_latency = l;
          o_queue_wait = qw }
    | _ -> Error "response body missing fields")

let query t qname =
  match t with
  | In_process s ->
    let r = Server.submit s qname in
    Ok
      { o_query = qname;
        o_status = Slo.outcome_label r.Server.rs_outcome;
        o_code = r.Server.rs_code;
        o_cost = r.Server.rs_cost;
        o_latency = r.Server.rs_latency;
        o_queue_wait = r.Server.rs_queue_wait }
  | Http { host; port } -> (
    let body = Json.to_string (Json.Obj [ ("query", Json.Str qname) ]) in
    match http_request ~host ~port ~meth:"POST" ~path:"/query" ~body with
    | Error _ as e -> e
    | Ok (code, body) -> parse_outcome qname code body)

let queries t =
  match t with
  | In_process s -> Ok (Server.queries s)
  | Http { host; port } -> (
    match http_request ~host ~port ~meth:"GET" ~path:"/queries" ~body:"" with
    | Error _ as e -> e
    | Ok (200, body) -> (
      match Json.of_string body with
      | Ok (Json.Arr items) ->
        Ok (List.filter_map Json.to_str items)
      | Ok _ -> Error "expected a JSON array of query names"
      | Error m -> Error ("unparseable /queries body: " ^ m))
    | Ok (code, _) -> Error (Printf.sprintf "/queries answered %d" code))

let slo_report t =
  match t with
  | In_process s -> Ok (Slo.report (Server.slo s))
  | Http { host; port } -> (
    match http_request ~host ~port ~meth:"GET" ~path:"/slo" ~body:"" with
    | Error _ as e -> e
    | Ok (200, body) -> Ok body
    | Ok (code, _) -> Error (Printf.sprintf "/slo answered %d" code))
