open Monsoon_telemetry

type http_state = {
  host : string;
  port : int;
  pool_lock : Mutex.t;
  idle : Unix.file_descr Queue.t;  (* connections the server kept alive *)
  mutable connects : int;  (* fresh TCP connects made so far *)
}

type t = In_process of Server.t | Http of http_state

let in_process s = In_process s

let http ?(host = "127.0.0.1") ~port () =
  Http
    { host; port; pool_lock = Mutex.create (); idle = Queue.create ();
      connects = 0 }

let connections = function
  | In_process _ -> 0
  | Http state ->
    Mutex.lock state.pool_lock;
    let n = state.connects in
    Mutex.unlock state.pool_lock;
    n

type outcome = {
  o_query : string;
  o_status : string;
  o_code : int;
  o_cost : float;
  o_latency : float;
  o_queue_wait : float;
}

(* --- raw HTTP/1.1 with keep-alive connection reuse --- *)

let find_substring s needle =
  let n = String.length needle and m = String.length s in
  let rec go i =
    if i + n > m then None
    else if String.sub s i n = needle then Some i
    else go (i + 1)
  in
  go 0

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let header_value headers name =
  String.split_on_char '\n' headers
  |> List.find_map (fun line ->
         match String.index_opt line ':' with
         | None -> None
         | Some i ->
           if String.lowercase_ascii (String.trim (String.sub line 0 i)) = name
           then
             Some
               (String.trim
                  (String.sub line (i + 1) (String.length line - i - 1)))
           else None)

(* Reads one HTTP response. When the headers carry a Content-Length the
   body is delimited by it — the path that lets a kept-alive connection
   hand back exactly one response without waiting for EOF. Without one,
   fall back to read-to-EOF (close-delimited). Returns the raw response
   and whether the server agreed to keep the connection alive. *)
let read_response fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  (* true when [stop] matched, false on EOF first *)
  let rec read_until stop =
    if stop (Buffer.contents buf) then true
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> stop (Buffer.contents buf)
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        read_until stop
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_until stop
  in
  if not (read_until (fun s -> find_substring s "\r\n\r\n" <> None)) then
    Error "eof before response headers"
  else begin
    let i =
      match find_substring (Buffer.contents buf) "\r\n\r\n" with
      | Some i -> i
      | None -> assert false
    in
    let headers = String.sub (Buffer.contents buf) 0 i in
    let keep_alive =
      match header_value headers "connection" with
      | Some v -> String.lowercase_ascii v = "keep-alive"
      | None -> false
    in
    match
      Option.bind (header_value headers "content-length") int_of_string_opt
    with
    | Some want ->
      if read_until (fun s -> String.length s - (i + 4) >= want) then
        Ok (Buffer.contents buf, keep_alive)
      else Error "eof before response body"
    | None ->
      (* no length to trust the connection with — drain and close *)
      ignore (read_until (fun _ -> false));
      Ok (Buffer.contents buf, false)
  end

(* The Content-Length check catches short (or over-long) reads. *)
let parse_response raw =
  match find_substring raw "\r\n\r\n" with
  | None -> Error "malformed response: no header terminator"
  | Some i -> (
    let headers = String.sub raw 0 i in
    let body = String.sub raw (i + 4) (String.length raw - i - 4) in
    match
      Option.bind (header_value headers "content-length") int_of_string_opt
    with
    | Some want when want <> String.length body ->
      Error
        (Printf.sprintf "short read: Content-Length %d, body %d bytes" want
           (String.length body))
    | _ -> (
      match
        String.split_on_char ' ' (List.hd (String.split_on_char '\r' headers))
      with
      | _http :: code :: _ -> (
        match int_of_string_opt code with
        | Some c -> Ok (c, body)
        | None -> Error ("malformed status line: " ^ code))
      | _ -> Error "malformed status line"))

let take_idle state =
  Mutex.lock state.pool_lock;
  let fd = Queue.take_opt state.idle in
  Mutex.unlock state.pool_lock;
  fd

let return_idle state fd =
  Mutex.lock state.pool_lock;
  Queue.push fd state.idle;
  Mutex.unlock state.pool_lock

let connect_fresh state =
  match
    try
      Ok
        (try Unix.inet_addr_of_string state.host
         with Failure _ ->
           (Unix.gethostbyname state.host).Unix.h_addr_list.(0))
    with Not_found -> Error ("unknown host: " ^ state.host)
  with
  | Error _ as e -> e
  | Ok addr -> (
    match Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 with
    | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
    | fd -> (
      match
        Unix.connect fd (Unix.ADDR_INET (addr, state.port));
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO 60.0
      with
      | () ->
        Mutex.lock state.pool_lock;
        state.connects <- state.connects + 1;
        Mutex.unlock state.pool_lock;
        Ok fd
      | exception Unix.Unix_error (err, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error (Unix.error_message err)))

(* One request-response exchange. Connections the server keeps alive go
   back to the idle pool for the next request; a reused connection that
   fails (the server may have closed it between requests) is retried once
   on a fresh one before the failure is reported. *)
let http_request state ~meth ~path ~body =
  let exchange fd =
    match
      write_all fd
        (Printf.sprintf
           "%s %s HTTP/1.1\r\n\
            Host: %s:%d\r\n\
            Content-Type: application/json\r\n\
            Content-Length: %d\r\n\
            Connection: keep-alive\r\n\
            \r\n\
            %s"
           meth path state.host state.port (String.length body) body);
      read_response fd
    with
    | r -> r
    | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
  in
  let rec go ~may_retry fd =
    match exchange fd with
    | Ok (raw, keep_alive) -> (
      match parse_response raw with
      | Ok _ as r ->
        if keep_alive then return_idle state fd
        else (try Unix.close fd with Unix.Unix_error _ -> ());
        r
      | Error _ as e -> retry ~may_retry fd e)
    | Error _ as e -> retry ~may_retry fd e
  and retry ~may_retry fd e =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    if may_retry then
      match connect_fresh state with
      | Error _ as e -> e
      | Ok fd -> go ~may_retry:false fd
    else e
  in
  match take_idle state with
  | Some fd -> go ~may_retry:true fd
  | None -> (
    match connect_fresh state with
    | Error _ as e -> e
    | Ok fd -> go ~may_retry:false fd)

(* --- the interface --- *)

let parse_outcome qname code body =
  match Json.of_string body with
  | Error m -> Error ("unparseable response body: " ^ m)
  | Ok j -> (
    let str k = Option.bind (Json.member k j) Json.to_str in
    let num k = Option.bind (Json.member k j) Json.to_float in
    match (str "status", num "cost", num "latency_s", num "queue_wait_s") with
    | Some st, Some c, Some l, Some qw ->
      Ok
        { o_query = qname;
          o_status = st;
          o_code = code;
          o_cost = c;
          o_latency = l;
          o_queue_wait = qw }
    | _ -> Error "response body missing fields")

let query t qname =
  match t with
  | In_process s ->
    let r = Server.submit s qname in
    Ok
      { o_query = qname;
        o_status = Slo.outcome_label r.Server.rs_outcome;
        o_code = r.Server.rs_code;
        o_cost = r.Server.rs_cost;
        o_latency = r.Server.rs_latency;
        o_queue_wait = r.Server.rs_queue_wait }
  | Http state -> (
    let body = Json.to_string (Json.Obj [ ("query", Json.Str qname) ]) in
    match http_request state ~meth:"POST" ~path:"/query" ~body with
    | Error _ as e -> e
    | Ok (code, body) -> parse_outcome qname code body)

let queries t =
  match t with
  | In_process s -> Ok (Server.queries s)
  | Http state -> (
    match http_request state ~meth:"GET" ~path:"/queries" ~body:"" with
    | Error _ as e -> e
    | Ok (200, body) -> (
      match Json.of_string body with
      | Ok (Json.Arr items) ->
        Ok (List.filter_map Json.to_str items)
      | Ok _ -> Error "expected a JSON array of query names"
      | Error m -> Error ("unparseable /queries body: " ^ m))
    | Ok (code, _) -> Error (Printf.sprintf "/queries answered %d" code))

let slo_report t =
  match t with
  | In_process s -> Ok (Slo.report (Server.slo s))
  | Http state -> (
    match http_request state ~meth:"GET" ~path:"/slo" ~body:"" with
    | Error _ as e -> e
    | Ok (200, body) -> Ok body
    | Ok (code, _) -> Error (Printf.sprintf "/slo answered %d" code))
