(** One client-side door to a running server, in process or over HTTP.

    The load generator speaks this interface so the same driver loop can
    hammer a {!Server.t} living in the same process (deterministic — no
    sockets, no kernel scheduling in the measured path) or a server across
    a socket ([monsoon serve] in another process). Every call issues one
    request and blocks until its response. *)

type t

val in_process : Server.t -> t

val http : ?host:string -> port:int -> unit -> t
(** Raw stdlib-Unix HTTP/1.1 with keep-alive connection reuse: requests
    ask for [Connection: keep-alive]; a connection the server keeps open
    (responses are Content-Length-delimited) returns to an idle pool for
    the next request, and a reused connection that fails — the server may
    close it between requests — is retried once on a fresh one. Servers
    that answer [Connection: close] degrade to one connection per request.
    Default host ["127.0.0.1"]. *)

val connections : t -> int
(** Fresh TCP connections made so far (0 for in-process clients) — the
    observable that shows keep-alive reuse working: far fewer connects
    than requests. *)

type outcome = {
  o_query : string;
  o_status : string;  (** {!Slo.outcome_label} token, e.g. ["ok"] *)
  o_code : int;  (** HTTP status (mapped, also in in-process mode) *)
  o_cost : float;
  o_latency : float;  (** server-measured seconds *)
  o_queue_wait : float;  (** server-measured seconds *)
}

val query : t -> string -> (outcome, string) result
(** Issue one named query. [Error] is a transport or protocol failure
    (connection refused, short read, unparseable response) — a served
    429/500/504 is an [Ok] outcome carrying that code. *)

val queries : t -> (string list, string) result
(** The query names the server advertises ([GET /queries]). *)

val slo_report : t -> (string, string) result
(** The server's live SLO report ([GET /slo]). *)
