open Monsoon_util
open Monsoon_telemetry

type exec_outcome = {
  x_cost : float;
  x_timed_out : bool;
  x_degraded : bool;
  x_plan : string;
}

type handler_error = [ `Unknown_query of string | `Failed of string ]

type handler =
  id:int ->
  rng:Rng.t ->
  env:Env.t ->
  recorder:Recorder.t ->
  trace:string ->
  string ->
  (exec_outcome, handler_error) result

type config = {
  max_concurrent : int;
  queue_bound : int;
  request_timeout : float option;
  seed : int;
  explain_ring : int;
  latency_target : float;
  availability_target : float;
  slow_query : float option;
  qlog : Qlog.t option;
}

let default_config =
  { max_concurrent = 4;
    queue_bound = 16;
    request_timeout = Some 30.0;
    seed = 42;
    explain_ring = 64;
    latency_target = 1.0;
    availability_target = 0.99;
    slow_query = None;
    qlog = None }

type t = {
  config : config;
  ctx : Ctx.t;
  env : Env.t;  (* creation env; handler envs derive from it *)
  queries : string list;
  handler : handler;
  pool : Pool.t;
  adm : Admission.t;
  slo_ : Slo.t;
  next_id : int Atomic.t;
  explain_lock : Mutex.t;
  explains : (int * string) Queue.t;  (* oldest first, ≤ explain_ring *)
  slow_explains : (int * string) Queue.t;
      (* slow-query captures, retained outside the ring (≤ slow_retain) *)
  stopped : bool Atomic.t;
  live_conns : int Atomic.t;
  mutable listen_fd : Unix.file_descr option;
  mutable bound_port : int option;
  mutable acceptor : Thread.t option;
}

let create ?(env = Env.default) ?(queries = []) config handler =
  if config.explain_ring < 0 then
    invalid_arg "Server.create: explain_ring must be >= 0";
  (match config.request_timeout with
  | Some s when s <= 0.0 ->
    invalid_arg "Server.create: request_timeout must be > 0"
  | _ -> ());
  let ctx = Ctx.of_env env in
  { config;
    ctx;
    env;
    queries;
    handler;
    pool = Pool.create config.max_concurrent;
    adm =
      Admission.create ~ctx ~max_concurrent:config.max_concurrent
        ~queue_bound:config.queue_bound ();
    slo_ =
      Slo.create ~ctx ~latency_target:config.latency_target
        ~availability_target:config.availability_target ();
    next_id = Atomic.make 0;
    explain_lock = Mutex.create ();
    explains = Queue.create ();
    slow_explains = Queue.create ();
    stopped = Atomic.make false;
    live_conns = Atomic.make 0;
    listen_fd = None;
    bound_port = None;
    acceptor = None }

let slo t = t.slo_
let queries t = t.queries
let admission t = t.adm
let requests t = Atomic.get t.next_id
let inject_kills t n = Pool.inject_kills t.pool n

(* --- explain ring --- *)

let store_explain t id ~trace recorder =
  if t.config.explain_ring > 0 && Recorder.events recorder <> [] then begin
    let rendered = Explain.report ~trace recorder in
    Mutex.lock t.explain_lock;
    Queue.push (id, rendered) t.explains;
    if Queue.length t.explains > t.config.explain_ring then
      ignore (Queue.pop t.explains);
    Mutex.unlock t.explain_lock
  end

(* Slow requests are the ones worth auditing after the fact, and exactly
   the ones a busy ring evicts fastest — so breaching the slow-query
   threshold pins the capture in its own bounded store. *)
let slow_retain = 256

let store_slow t id ~trace recorder =
  if Recorder.events recorder <> [] then begin
    let rendered = Explain.report ~trace recorder in
    Mutex.lock t.explain_lock;
    Queue.push (id, rendered) t.slow_explains;
    if Queue.length t.slow_explains > slow_retain then
      ignore (Queue.pop t.slow_explains);
    Mutex.unlock t.explain_lock
  end

let explain t id =
  let find q =
    Queue.fold (fun acc (i, r) -> if i = id then Some r else acc) None q
  in
  Mutex.lock t.explain_lock;
  let found =
    match find t.slow_explains with
    | Some _ as r -> r
    | None -> find t.explains
  in
  Mutex.unlock t.explain_lock;
  found

(* --- the request path --- *)

type response = {
  rs_id : int;
  rs_query : string;
  rs_trace : string;
  rs_outcome : Slo.outcome;
  rs_code : int;
  rs_cost : float;
  rs_latency : float;
  rs_queue_wait : float;
  rs_detail : string;
}

let submit t qname =
  let id = Atomic.fetch_and_add t.next_id 1 in
  let t0 = Timer.now () in
  (* Deterministic per-request identity from the same (seed, id) pair the
     request RNG derives from: two runs of a fixed workload mint the same
     trace ids, so their qlogs diff byte-stably. *)
  let trace =
    Printf.sprintf "t-%d-%08x" id (Hashtbl.hash (t.config.seed, id) land 0xffffffff)
  in
  (* The recorder exists before admission so even rejected requests reach
     [finish] with a (possibly empty) trajectory to audit. *)
  let recorder =
    if
      t.config.explain_ring > 0 || t.config.slow_query <> None
      || t.config.qlog <> None
    then Recorder.create ()
    else Recorder.null ()
  in
  let finish outcome code ~cost ~queue_wait ~detail =
    let latency = Timer.now () -. t0 in
    Slo.record t.slo_ ~klass:qname outcome ~latency ~queue_wait;
    (match t.config.slow_query with
    | Some threshold when latency >= threshold -> store_slow t id ~trace recorder
    | _ -> ());
    (match t.config.qlog with
    | None -> ()
    | Some qlog ->
      let plan = if code = 200 then detail else "" in
      let fail_detail = if code = 200 then "" else detail in
      Qlog.append qlog
        (Qlog.of_events ~trace ~query:qname ~strategy:"serve"
           ~outcome:(Slo.outcome_label outcome) ~latency ~queue_wait ~cost
           ~plan ~detail:fail_detail
           (Recorder.events recorder)));
    { rs_id = id;
      rs_query = qname;
      rs_trace = trace;
      rs_outcome = outcome;
      rs_code = code;
      rs_cost = cost;
      rs_latency = latency;
      rs_queue_wait = queue_wait;
      rs_detail = detail }
  in
  let deadline =
    match t.config.request_timeout with
    | None -> Deadline.none
    | Some s -> Deadline.after s
  in
  match Admission.admit ~deadline t.adm with
  | Admission.Rejected ->
    finish Slo.Rejected 429 ~cost:0.0 ~queue_wait:0.0 ~detail:"queue full"
  | Admission.Closed ->
    finish Slo.Rejected 503 ~cost:0.0 ~queue_wait:0.0 ~detail:"shutting down"
  | Admission.Timed_out ->
    finish Slo.Timed_out 504 ~cost:0.0 ~queue_wait:(Timer.now () -. t0)
      ~detail:"deadline expired in queue"
  | Admission.Admitted queue_wait ->
    Fun.protect
      ~finally:(fun () -> Admission.release t.adm)
      (fun () ->
        let rng = Rng.create (Hashtbl.hash (t.config.seed, id)) in
        let verdict =
          (* The handler runs on a pool worker domain; every exception is a
             request failure, never a server failure. *)
          match
            Pool.run t.pool (fun () ->
                (* The handler env derives from the creation env, so
                   anything the embedder packed into it — a telemetry
                   context, a profile collector — reaches every request. *)
                t.handler ~id ~rng
                  ~env:(Env.with_deadline t.env deadline)
                  ~recorder ~trace qname)
          with
          | Ok o -> `Done o
          | Error e -> `Err e
          | exception Deadline.Expired -> `Deadline
          | exception Fault.Injected reason ->
            `Err (`Failed ("fault injected: " ^ reason))
          | exception e -> `Err (`Failed (Printexc.to_string e))
        in
        store_explain t id ~trace recorder;
        match verdict with
        | `Done o when o.x_timed_out ->
          finish Slo.Timed_out 504 ~cost:o.x_cost ~queue_wait ~detail:o.x_plan
        | `Done o when o.x_degraded ->
          finish Slo.Degraded 200 ~cost:o.x_cost ~queue_wait ~detail:o.x_plan
        | `Done o ->
          finish Slo.Ok_ 200 ~cost:o.x_cost ~queue_wait ~detail:o.x_plan
        | `Deadline ->
          finish Slo.Timed_out 504 ~cost:0.0 ~queue_wait
            ~detail:"deadline expired"
        | `Err (`Unknown_query msg) ->
          finish Slo.Failed 404 ~cost:0.0 ~queue_wait ~detail:msg
        | `Err (`Failed msg) ->
          finish Slo.Failed 500 ~cost:0.0 ~queue_wait ~detail:msg)

let response_json r =
  Json.Obj
    [ ("id", Json.Num (float_of_int r.rs_id));
      ("query", Json.Str r.rs_query);
      ("trace", Json.Str r.rs_trace);
      ("status", Json.Str (Slo.outcome_label r.rs_outcome));
      ("code", Json.Num (float_of_int r.rs_code));
      ("cost", Json.Num r.rs_cost);
      ("latency_s", Json.Num r.rs_latency);
      ("queue_wait_s", Json.Num r.rs_queue_wait);
      ("detail", Json.Str r.rs_detail) ]

(* --- HTTP front end --- *)

let reason_of_code = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | 504 -> "Gateway Timeout"
  | _ -> "Unknown"

let http_response ?(extra_headers = []) ?(keep_alive = false) ~code
    ~content_type body =
  let headers =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) extra_headers)
  in
  Printf.sprintf
    "HTTP/1.1 %d %s\r\n\
     Content-Type: %s\r\n\
     Content-Length: %d\r\n\
     %sConnection: %s\r\n\
     \r\n\
     %s"
    code (reason_of_code code) content_type (String.length body) headers
    (if keep_alive then "keep-alive" else "close")
    body

let find_substring s needle =
  let n = String.length needle and m = String.length s in
  let rec go i =
    if i + n > m then None
    else if String.sub s i n = needle then Some i
    else go (i + 1)
  in
  go 0

let header_value headers name =
  String.split_on_char '\n' headers
  |> List.find_map (fun line ->
         match String.index_opt line ':' with
         | None -> None
         | Some i ->
           let n = String.lowercase_ascii (String.trim (String.sub line 0 i)) in
           if n = name then
             Some
               (String.trim
                  (String.sub line (i + 1) (String.length line - i - 1)))
           else None)

let content_length headers =
  Option.value ~default:0
    (Option.bind (header_value headers "content-length") int_of_string_opt)

(* Keep-alive is strictly opt-in: only a client that says
   [Connection: keep-alive] gets connection reuse; everything else
   (curl's default, the existing tests) keeps close semantics. *)
let wants_keep_alive headers =
  match header_value headers "connection" with
  | Some v -> String.lowercase_ascii v = "keep-alive"
  | None -> false

(* Reads request line + headers + (for POST) a Content-Length body.
   Bounded: 8 KiB of headers, 64 KiB of body — a query name plus slack. *)
let read_request fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec read_more stop =
    if not (stop (Buffer.contents buf)) then
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> ()
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        read_more stop
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_more stop
  in
  read_more (fun s ->
      String.length s > 8192 || find_substring s "\r\n\r\n" <> None);
  let raw = Buffer.contents buf in
  match find_substring raw "\r\n\r\n" with
  | None -> None
  | Some i ->
    let headers = String.sub raw 0 i in
    let body_start = i + 4 in
    let want = min (content_length headers) 65536 in
    read_more (fun s -> String.length s - body_start >= want);
    let raw = Buffer.contents buf in
    let have = String.length raw - body_start in
    let body = String.sub raw body_start (min want have) in
    (match String.split_on_char ' ' (List.hd (String.split_on_char '\r' raw))
     with
    | meth :: target :: _ ->
      let path =
        match String.index_opt target '?' with
        | Some q -> String.sub target 0 q
        | None -> target
      in
      Some (meth, path, body, wants_keep_alive headers)
    | _ -> None)

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* GET /query/ID/explain *)
let explain_target path =
  match String.split_on_char '/' path with
  | [ ""; "query"; id; "explain" ] -> int_of_string_opt id
  | _ -> None

(* Retry-After from what the server actually observes: with [q] requests
   already queued and [slots] workers draining them at the mean observed
   latency, a retry earlier than ceil(mean * (q+1) / slots) seconds just
   rejoins the same full queue. Clamped to [1, 60]; before any request
   has finished (mean 0) the floor keeps the old behavior of "1". *)
let retry_after t =
  let queued = Admission.queued t.adm in
  let slots = max 1 t.config.max_concurrent in
  let mean = Slo.mean_latency t.slo_ in
  let est = ceil (mean *. float_of_int (queued + 1) /. float_of_int slots) in
  max 1 (min 60 (int_of_float est))

let respond t ~keep_alive meth path body =
  let http_response ?extra_headers ~code ~content_type body =
    http_response ?extra_headers ~keep_alive ~code ~content_type body
  in
  match (meth, path) with
  | "POST", "/query" -> (
    match Json.of_string body with
    | Error msg ->
      http_response ~code:400 ~content_type:"text/plain"
        (Printf.sprintf "bad request body: %s\n" msg)
    | Ok j -> (
      match Option.bind (Json.member "query" j) Json.to_str with
      | None ->
        http_response ~code:400 ~content_type:"text/plain"
          "bad request body: expected {\"query\": NAME}\n"
      | Some qname ->
        let r = submit t qname in
        let extra_headers =
          ("X-Monsoon-Trace", r.rs_trace)
          ::
          (if r.rs_code = 429 then
             [ ("Retry-After", string_of_int (retry_after t)) ]
           else [])
        in
        http_response ~extra_headers ~code:r.rs_code
          ~content_type:"application/json"
          (Json.to_string (response_json r) ^ "\n")))
  | "GET", "/metrics" ->
    http_response ~code:200 ~content_type:Exporter.content_type
      (Exporter.render t.ctx.Ctx.registry)
  | "GET", "/healthz" ->
    http_response ~code:200 ~content_type:"text/plain" "ok\n"
  | "GET", "/snapshot.json" ->
    http_response ~code:200 ~content_type:"application/json"
      (Json.to_string (Snapshot.metrics_json t.ctx.Ctx.registry) ^ "\n")
  | "GET", "/slo" ->
    http_response ~code:200 ~content_type:"text/plain" (Slo.report t.slo_)
  | "GET", "/queries" ->
    http_response ~code:200 ~content_type:"application/json"
      (Json.to_string (Json.Arr (List.map (fun q -> Json.Str q) t.queries))
      ^ "\n")
  | "GET", p -> (
    match explain_target p with
    | Some id -> (
      match explain t id with
      | Some report ->
        http_response ~code:200 ~content_type:"text/plain" report
      | None ->
        http_response ~code:404 ~content_type:"text/plain"
          "no explain retained for that request id\n")
    | None ->
      http_response ~code:404 ~content_type:"text/plain" "not found\n")
  | _ -> http_response ~code:404 ~content_type:"text/plain" "not found\n"

let handle_conn t conn =
  let finally () =
    (try Unix.close conn with Unix.Unix_error _ -> ());
    Atomic.decr t.live_conns
  in
  Fun.protect ~finally (fun () ->
      Unix.setsockopt_float conn Unix.SO_RCVTIMEO 5.0;
      (* Loop while the client keeps the connection alive; an idle reused
         connection times out at SO_RCVTIMEO and closes cleanly. *)
      let rec serve_one () =
        match read_request conn with
        | Some (meth, path, body, keep_alive) ->
          let keep_alive = keep_alive && not (Atomic.get t.stopped) in
          (match write_all conn (respond t ~keep_alive meth path body) with
          | () -> if keep_alive then serve_one ()
          | exception Unix.Unix_error _ -> ())
        | None -> ()
      in
      serve_one ())

(* One thread per connection: a slow query must not head-of-line-block a
   /metrics scrape, and the admission queue — not the accept backlog — is
   where requests are meant to wait. *)
let rec accept_loop t fd =
  match Unix.accept fd with
  | conn, _ ->
    if Atomic.get t.stopped then (
      (try Unix.close conn with Unix.Unix_error _ -> ());
      ())
    else begin
      Atomic.incr t.live_conns;
      ignore (Thread.create (fun () -> try handle_conn t conn with _ -> ()) ());
      accept_loop t fd
    end
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop t fd
  | exception Unix.Unix_error (_, _, _) ->
    (* the listen socket was shut down by [stop] *)
    ()

let listen t ~port =
  if Atomic.get t.stopped then Error "server already stopped"
  else if t.listen_fd <> None then Error "server already listening"
  else
    match
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt fd Unix.SO_REUSEADDR true;
         Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
         Unix.listen fd 64
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      fd
    with
    | fd ->
      let bound =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      t.listen_fd <- Some fd;
      t.bound_port <- Some bound;
      t.acceptor <- Some (Thread.create (accept_loop t) fd);
      Ok bound
    | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)

let port t =
  match t.bound_port with
  | Some p -> p
  | None -> invalid_arg "Server.port: not listening"

let stop t =
  if not (Atomic.exchange t.stopped true) then begin
    (* 1. Stop accepting: shut the listener down and self-connect as a
       fallback wake (the accept loop sees [stopped] and exits), exactly
       the Monitor.stop dance. *)
    (match (t.listen_fd, t.bound_port) with
    | Some fd, bound ->
      (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      (match bound with
      | Some p -> (
        try
          let c = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          (try Unix.connect c (Unix.ADDR_INET (Unix.inet_addr_loopback, p))
           with Unix.Unix_error _ -> ());
          try Unix.close c with Unix.Unix_error _ -> ()
        with Unix.Unix_error _ -> ())
      | None -> ());
      (match t.acceptor with Some th -> Thread.join th | None -> ());
      t.acceptor <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ())
    | None, _ -> ());
    t.listen_fd <- None;
    (* 2. Drain: every in-flight request finishes and releases its slot;
       queued waiters resolve 503 (shed, not crashed). *)
    Admission.drain t.adm;
    (* 3. Let connection threads flush their responses. Reads are bounded
       by SO_RCVTIMEO, so this terminates; the cap is belt and braces. *)
    let waited = ref 0.0 in
    while Atomic.get t.live_conns > 0 && !waited < 10.0 do
      Thread.delay 0.01;
      waited := !waited +. 0.01
    done;
    (* 4. Only now is the pool idle by construction. *)
    Pool.shutdown t.pool
  end
