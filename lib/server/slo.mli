(** Per-request outcome accounting and SLO reporting for the serving
    layer.

    Every finished request is {!record}ed once with its outcome, its
    end-to-end latency, and the part of that latency spent in the admission
    queue. Recording feeds the registry — so /metrics carries the numbers
    live — and the same instruments render the end-of-run report: achieved
    p50/p95/p99 vs the latency target, achieved availability vs the
    availability target, and how much of the error budget the run spent.

    Metric names (all preregistered by {!Monsoon_telemetry.Monitor}):
    counters [server.requests] (total) and [server.ok] / [server.degraded]
    / [server.rejected] / [server.timeout] / [server.error] (one per
    outcome); histograms [server.latency] and [server.queue_wait]
    (seconds, log-bucketed — quantiles are accurate to the bucket base).

    The report text is a pure function of the recorded values (no
    wall-clock reads), so fixed inputs render byte-identically — the
    golden-test hook the harness relies on. *)

type outcome =
  | Ok_  (** served within its deadline *)
  | Degraded
      (** served, but an injected fault forced the fallback plan — counts
          as availability, shows up in its own column *)
  | Rejected  (** shed at admission (429) *)
  | Timed_out  (** deadline expired, queued or executing (504) *)
  | Failed  (** execution error (500) *)

val outcome_label : outcome -> string
(** ["ok"] / ["degraded"] / ["rejected"] / ["timeout"] / ["error"] — the
    wire and report token. *)

type t

val create :
  ?ctx:Monsoon_telemetry.Ctx.t ->
  ?latency_target:float ->
  ?availability_target:float ->
  unit ->
  t
(** [latency_target] (default 1.0) is the p95 latency objective in
    seconds; [availability_target] (default 0.99) the fraction of requests
    that must succeed (ok or degraded). The complement of the availability
    target is the error budget. *)

val record :
  t -> ?klass:string -> outcome -> latency:float -> queue_wait:float -> unit
(** [?klass] is the request's query class (its fingerprint, e.g. the suite
    query name): when given, the request also lands in that class's
    labeled instruments — [server_latency{class="iq7"}] on /metrics, a
    per-class row in the report. Class-less recording leaves the report
    byte-identical to the pre-class format. *)

val mean_latency : t -> float
(** Mean end-to-end latency over everything recorded so far; 0 before the
    first request. The admission layer uses it to derive [Retry-After]. *)

type counts = {
  total : int;
  ok : int;
  degraded : int;
  rejected : int;
  timed_out : int;
  failed : int;
}

val counts : t -> counts

val report : t -> string
(** The end-of-run SLO report: outcome table, latency and queue-wait
    quantiles, and target-vs-achieved lines with error-budget spend.
    Renders a one-line note when nothing was recorded. *)
