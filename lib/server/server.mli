(** The long-running query service: admission → pool → deadline → degrade,
    over HTTP or in process.

    A server pairs a query {!handler} (supplied by the harness — the thing
    that actually plans and executes a named benchmark query) with the
    serving machinery this library provides: a bounded {!Admission}
    controller in front of a {!Monsoon_util.Pool} of [max_concurrent]
    worker domains, a per-request {!Monsoon_util.Deadline}, per-request
    flight-recorder capture, and {!Slo} accounting for every outcome.

    The request path ({!submit}) is the same whether a request arrives over
    HTTP or from an in-process client ({!Load_client}):

    + admission — free slot: run; full queue: 429; draining: 503; deadline
      tripped while queued: 504;
    + execution — the handler runs on one pool worker under the request's
      deadline and a per-request RNG derived from [(seed, request id)];
    + classification — handler outcome to {!Slo.outcome} (degraded
      executions are successes), recorded with latency and queue wait.

    The HTTP front end ({!listen}) is the stdlib-Unix accept-loop pattern
    of [Monitor.serve], extended with POST bodies and one thread per
    connection so slow queries do not head-of-line-block /metrics scrapes:

    - [POST /query] — body [{"query": NAME}]; answers the response JSON
      with the outcome's HTTP code (200 / 404 / 429+Retry-After / 500 /
      503 / 504);
    - [GET /query/ID/explain] — the captured flight-recorder report of
      request ID (the last [explain_ring] requests are retained);
    - [GET /queries] — the query names this server answers, as JSON;
    - [GET /slo] — the live {!Slo.report};
    - [GET /metrics], [/healthz], [/snapshot.json] — as [Monitor.serve].

    [POST /query] responses carry the request's trace id as
    [X-Monsoon-Trace]; a 429's [Retry-After] is derived from the observed
    queue depth and mean service latency. Connections close after one
    request unless the client asks for [Connection: keep-alive], in which
    case the socket is reused until the client closes or idles past the
    read timeout.

    {!stop} is drain-then-stop: close the listener, let every in-flight
    request finish (queued requests resolve 503 — shed, not crashed), then
    shut the pool down. Idempotent. *)

open Monsoon_util
open Monsoon_telemetry

type exec_outcome = {
  x_cost : float;  (** objects charged (the paper's cost measure) *)
  x_timed_out : bool;  (** budget or deadline exhausted — reported 504 *)
  x_degraded : bool;  (** survived a fault on the fallback plan — 200 *)
  x_plan : string;  (** human-readable plan / action trace *)
}

type handler_error =
  [ `Unknown_query of string  (** 404 *)
  | `Failed of string  (** 500 *) ]

type handler =
  id:int ->
  rng:Rng.t ->
  env:Env.t ->
  recorder:Recorder.t ->
  trace:string ->
  string ->
  (exec_outcome, handler_error) result
(** Runs one named query on a pool worker domain. [rng] is the request's
    private deterministic stream; [env] is the request's execution
    environment — its deadline is the request timeout (enrich the
    environment, don't replace it: [Monsoon_telemetry.Ctx.to_env ~env] and
    [Monsoon_util.Env.with_fault] layer the handler's context and fault
    plan over the request deadline); [recorder] captures the decision
    trajectory when the server retains explains (a null recorder
    otherwise); [trace] is the request's trace id — thread it into the
    handler's context ({!Monsoon_telemetry.Ctx.with_trace_id}) so the spans
    it opens join the request's qlog record and explain capture. Exceptions — including
    {!Monsoon_util.Deadline.Expired} and {!Monsoon_util.Fault.Injected} —
    are caught and classified by the server; they fail the request, never
    the server. *)

type config = {
  max_concurrent : int;  (** pool workers = execution slots *)
  queue_bound : int;  (** admission queue bound; 0 = reject when busy *)
  request_timeout : float option;  (** per-request deadline, seconds *)
  seed : int;  (** per-request RNG derivation base *)
  explain_ring : int;  (** recorder captures retained; 0 disables capture *)
  latency_target : float;  (** SLO: p95 latency objective, seconds *)
  availability_target : float;  (** SLO: success-share objective *)
  slow_query : float option;
      (** latency threshold, seconds: a request at or over it pins its
          explain capture outside the ring (last 256 kept); [None] off *)
  qlog : Monsoon_telemetry.Qlog.t option;
      (** audit log: every finished request appends one
          {!Monsoon_telemetry.Qlog} record; [None] off *)
}

val default_config : config
(** 4 slots, queue bound 16, 30 s timeout, seed 42, 64 explains retained,
    p95 target 1.0 s, availability target 0.99, no slow-query retention,
    no qlog. *)

type t

val create : ?env:Env.t -> ?queries:string list -> config -> handler -> t
(** Spawns the worker pool. [queries] is the advertised name list for
    [GET /queries] (purely informational — the handler remains the
    authority). The registry of [env]'s packed context
    ({!Monsoon_telemetry.Ctx.to_env}) carries every server metric. *)

type response = {
  rs_id : int;
  rs_query : string;
  rs_trace : string;
      (** the request's trace id — minted deterministically from
          [(seed, id)], echoed over HTTP as [X-Monsoon-Trace] *)
  rs_outcome : Slo.outcome;
  rs_code : int;  (** the HTTP status this outcome maps to *)
  rs_cost : float;
  rs_latency : float;  (** seconds, admission entry to classification *)
  rs_queue_wait : float;  (** seconds of [rs_latency] spent queued *)
  rs_detail : string;  (** plan on success, reason otherwise *)
}

val submit : t -> string -> response
(** The full request path, in process — what POST /query calls. Safe from
    any thread. After {!stop} every submit resolves to a 503. *)

val response_json : response -> Json.t

val explain : t -> int -> string option
(** The captured flight-recorder report of a recent request id — from the
    slow-query store when the request breached the threshold, otherwise
    from the ring. *)

val slo : t -> Slo.t

val queries : t -> string list
(** The advertised query-name list (as passed to {!create}). *)

val admission : t -> Admission.t

val requests : t -> int
(** Requests accepted so far (monotone id counter). *)

val inject_kills : t -> int -> unit
(** Chaos hook: kill-and-respawn [n] pool workers ({!Monsoon_util.Pool.inject_kills}). *)

val listen : t -> port:int -> (int, string) result
(** Bind [127.0.0.1:port] ([0] picks an ephemeral port) and start the
    accept loop. Returns the bound port — the programmatic alternative to
    scraping stderr. *)

val port : t -> int
(** The bound port. @raise Invalid_argument when not listening. *)

val stop : t -> unit
(** Drain-then-stop; blocks until in-flight requests finished and the pool
    joined. Idempotent. *)
