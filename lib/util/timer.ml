(* Monotonic time base. OCaml's Unix library exposes no clock_gettime, so
   the CLOCK_MONOTONIC read comes from bechamel's no-alloc stub; the epoch
   is arbitrary (boot time on Linux) but never jumps backwards, so span
   durations and component breakdowns cannot go negative on wall-clock
   adjustments. Unix.gettimeofday remains the fallback if the stub ever
   reports an unusable clock. *)

let monotonic_ok =
  (* Paranoia: a broken stub would return 0 forever. *)
  Monotonic_clock.now () > 0L

let now () =
  if monotonic_ok then Int64.to_float (Monotonic_clock.now ()) *. 1e-9
  else Unix.gettimeofday ()

let time f =
  let t0 = now () in
  let x = f () in
  (x, now () -. t0)

type accum = { mutable sum : float }

let accum () = { sum = 0.0 }

let add_to acc f =
  let x, dt = time f in
  acc.sum <- acc.sum +. dt;
  x

let total acc = acc.sum
let reset acc = acc.sum <- 0.0
