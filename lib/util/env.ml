type ctx = ..
type ctx += Null_ctx

type t = { ctx : ctx; fault : Fault.t; deadline : Deadline.t }

let default = { ctx = Null_ctx; fault = Fault.disabled; deadline = Deadline.none }
let with_ctx t ctx = { t with ctx }
let with_fault t fault = { t with fault }
let with_deadline t deadline = { t with deadline }
let ctx t = t.ctx
let fault t = t.fault
let deadline t = t.deadline
