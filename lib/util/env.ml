type ctx = ..
type ctx += Null_ctx

type profile = ..
type profile += No_profile

type repo = ..
type repo += No_repo

type t = {
  ctx : ctx;
  fault : Fault.t;
  deadline : Deadline.t;
  profile : profile;
  repo : repo;
}

let default =
  { ctx = Null_ctx;
    fault = Fault.disabled;
    deadline = Deadline.none;
    profile = No_profile;
    repo = No_repo }

let with_ctx t ctx = { t with ctx }
let with_fault t fault = { t with fault }
let with_deadline t deadline = { t with deadline }
let with_profile t profile = { t with profile }
let with_repo t repo = { t with repo }
let ctx t = t.ctx
let fault t = t.fault
let deadline t = t.deadline
let profile t = t.profile
let repo t = t.repo
