exception Injected of string

type spec = {
  udf_rate : float;
  row_rate : float;
  build_rate : float;
  worker_kills : int;
}

let no_faults =
  { udf_rate = 0.0; row_rate = 0.0; build_rate = 0.0; worker_kills = 0 }

let spec_to_string s =
  Printf.sprintf "udf:%g,row:%g,build:%g,worker:%d" s.udf_rate s.row_rate
    s.build_rate s.worker_kills

let spec_of_string str =
  let parse_rate key v =
    match float_of_string_opt v with
    | Some r when r >= 0.0 && r <= 1.0 -> Ok r
    | _ -> Error (Printf.sprintf "%s rate %S not in [0,1]" key v)
  in
  let rec go spec = function
    | [] -> Ok spec
    | part :: rest -> (
      match String.index_opt part ':' with
      | None ->
        Error (Printf.sprintf "fault %S is not of the form class:value" part)
      | Some i -> (
        let key = String.sub part 0 i in
        let v = String.sub part (i + 1) (String.length part - i - 1) in
        match key with
        | "udf" ->
          Result.bind (parse_rate key v) (fun r ->
              go { spec with udf_rate = r } rest)
        | "row" ->
          Result.bind (parse_rate key v) (fun r ->
              go { spec with row_rate = r } rest)
        | "build" ->
          Result.bind (parse_rate key v) (fun r ->
              go { spec with build_rate = r } rest)
        | "worker" -> (
          match int_of_string_opt v with
          | Some n when n >= 0 -> go { spec with worker_kills = n } rest
          | _ -> Error (Printf.sprintf "worker kill count %S invalid" v))
        | _ ->
          Error
            (Printf.sprintf "unknown fault class %S (udf|row|build|worker)" key)))
  in
  let parts =
    String.split_on_char ',' (String.trim str)
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if parts = [] then Error "empty fault spec" else go no_faults parts

type armed_plan = { spec : spec; rng : Rng.t; mutable fired : int }
type t = Disabled | Armed of armed_plan

let disabled = Disabled
let armed = function Disabled -> false | Armed _ -> true
let plan spec rng = Armed { spec; rng; fired = 0 }

let fire a kind =
  a.fired <- a.fired + 1;
  raise (Injected kind)

(* One draw per checkpoint whose rate is positive: a rate-0 class never
   touches the RNG, so enabling one class cannot shift another's stream
   relative to a spec that omits it. *)
let check t kind rate_of =
  match t with
  | Disabled -> ()
  | Armed a ->
    let rate = rate_of a.spec in
    if rate > 0.0 && Rng.unit_float a.rng < rate then fire a kind

let udf t = check t "udf" (fun s -> s.udf_rate)
let row t = check t "row" (fun s -> s.row_rate)
let build t = check t "build" (fun s -> s.build_rate)

let injected = function Disabled -> 0 | Armed a -> a.fired
let worker_kills = function Disabled -> 0 | Armed a -> a.spec.worker_kills
