type t = {
  queue : (unit -> unit) Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable closing : bool;
  mutable workers : unit Domain.t list;
  (* Introspection counters, scraped lock-free by the monitor while the
     pool runs: queued -> in_flight on dequeue, in_flight -> completed
     when the task settles (even by exception). *)
  n_queued : int Atomic.t;
  n_in_flight : int Atomic.t;
  n_completed : int Atomic.t;
  (* Fault plane: pending kill tokens and how many workers died-and-were-
     replaced. A worker claims a token (CAS) at dequeue time — never
     mid-task — spawns its own replacement, and exits. *)
  kills : int Atomic.t;
  n_respawned : int Atomic.t;
}

type stats = { queued : int; in_flight : int; completed : int }

let stats t =
  { queued = Atomic.get t.n_queued;
    in_flight = Atomic.get t.n_in_flight;
    completed = Atomic.get t.n_completed }

let respawned t = Atomic.get t.n_respawned
let default_jobs () = Domain.recommended_domain_count ()

let rec claim_kill t =
  let n = Atomic.get t.kills in
  if n <= 0 then false
  else if Atomic.compare_and_set t.kills n (n - 1) then true
  else claim_kill t

(* Workers block on [nonempty] until a task (or the shutdown flag, or a kill
   token) appears; on shutdown they drain whatever is still queued before
   exiting. A claimed kill token makes the worker exit between tasks, after
   spawning its replacement under the pool lock — so capacity is conserved
   and no queued task is orphaned. *)
let rec worker_loop t =
  Mutex.lock t.lock;
  let rec next () =
    if claim_kill t then `Die
    else
      match Queue.take_opt t.queue with
      | Some task ->
        Atomic.decr t.n_queued;
        Atomic.incr t.n_in_flight;
        `Run task
      | None ->
        if t.closing then `Drained
        else begin
          Condition.wait t.nonempty t.lock;
          next ()
        end
  in
  let decision = next () in
  (match decision with
  | `Die when not t.closing ->
    Atomic.incr t.n_respawned;
    t.workers <- Domain.spawn (fun () -> worker_loop t) :: t.workers
  | _ -> ());
  Mutex.unlock t.lock;
  match decision with
  | `Die | `Drained -> ()
  | `Run task ->
    Fun.protect task ~finally:(fun () ->
        Atomic.decr t.n_in_flight;
        Atomic.incr t.n_completed);
    worker_loop t

let create n =
  if n < 1 then invalid_arg "Pool.create: need at least one worker";
  let t =
    { queue = Queue.create ();
      lock = Mutex.create ();
      nonempty = Condition.create ();
      closing = false;
      workers = [];
      n_queued = Atomic.make 0;
      n_in_flight = Atomic.make 0;
      n_completed = Atomic.make 0;
      kills = Atomic.make 0;
      n_respawned = Atomic.make 0 }
  in
  t.workers <- List.init n (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let size t =
  Mutex.lock t.lock;
  let n = List.length t.workers - Atomic.get t.n_respawned in
  Mutex.unlock t.lock;
  n

let inject_kills t n =
  if n < 0 then invalid_arg "Pool.inject_kills: negative count";
  if n > 0 then begin
    ignore (Atomic.fetch_and_add t.kills n);
    (* Wake idle workers so kills land even when the queue is empty. *)
    Mutex.lock t.lock;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.lock
  end

let submit t task =
  Mutex.lock t.lock;
  if t.closing then begin
    Mutex.unlock t.lock;
    invalid_arg "Pool: shut down"
  end;
  Queue.push task t.queue;
  Atomic.incr t.n_queued;
  Condition.signal t.nonempty;
  Mutex.unlock t.lock

(* One task, synchronously: the serving layer's admission hook. Cheaper
   than a single-item [map] (no arrays, no option boxing) and callable from
   many systhreads at once — each call owns its private completion state. *)
let run t f =
  let lock = Mutex.create () in
  let settled = Condition.create () in
  let result = ref None in
  submit t (fun () ->
      let outcome =
        match f () with
        | y -> Ok y
        | exception e -> Error (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock lock;
      result := Some outcome;
      Condition.signal settled;
      Mutex.unlock lock);
  Mutex.lock lock;
  while !result = None do
    Condition.wait settled lock
  done;
  Mutex.unlock lock;
  match !result with
  | Some (Ok y) -> y
  | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
  | None -> assert false

let map ?(cancel = Deadline.none) t f xs =
  match xs with
  | [] -> []
  | _ ->
    let items = Array.of_list xs in
    let n = Array.length items in
    let results = Array.make n None in
    (* Per-call completion state: its own mutex/condition, so concurrent
       [map] calls on one pool never wake each other. *)
    let lock = Mutex.create () in
    let all_done = Condition.create () in
    let remaining = ref n in
    let error = ref None in
    Array.iteri
      (fun i x ->
        submit t (fun () ->
            let outcome =
              (* A tripped token turns every not-yet-started item into an
                 immediate failure, so an abandoned call settles fast
                 without running its remaining work. *)
              if Deadline.expired cancel then
                Error (Deadline.Expired, Printexc.get_callstack 0)
              else
                match f x with
                | y -> Ok y
                | exception e -> Error (e, Printexc.get_raw_backtrace ())
            in
            Mutex.lock lock;
            (match outcome with
            | Ok y -> results.(i) <- Some y
            | Error (e, bt) -> (
              (* Keep the failure of the earliest input position. *)
              match !error with
              | Some (j, _, _) when j < i -> ()
              | _ -> error := Some (i, e, bt)));
            decr remaining;
            if !remaining = 0 then Condition.signal all_done;
            Mutex.unlock lock))
      items;
    Mutex.lock lock;
    while !remaining > 0 do
      Condition.wait all_done lock
    done;
    Mutex.unlock lock;
    (match !error with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.to_list (Array.map Option.get results)

let iter ?cancel t f xs = ignore (map ?cancel t (fun x -> (f x : unit)) xs)

let shutdown t =
  Mutex.lock t.lock;
  t.closing <- true;
  Condition.broadcast t.nonempty;
  (* Snapshot under the lock: respawning workers mutate [t.workers]. *)
  let workers = t.workers in
  t.workers <- [];
  Mutex.unlock t.lock;
  List.iter Domain.join workers

let with_pool n f =
  let t = create n in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
