exception Expired

type t = { expires_at : float; cancelled : bool Atomic.t }

let none = { expires_at = infinity; cancelled = Atomic.make false }
let after seconds = { expires_at = Timer.now () +. seconds; cancelled = Atomic.make false }
let cancel t = if t != none then Atomic.set t.cancelled true
let is_none t = t == none

let expired t =
  t != none && (Atomic.get t.cancelled || Timer.now () > t.expires_at)

let check t = if expired t then raise Expired

let remaining t =
  if t == none then infinity
  else if Atomic.get t.cancelled then 0.0
  else Float.max 0.0 (t.expires_at -. Timer.now ())
